module genogo

go 1.22
