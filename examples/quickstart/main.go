// Quickstart reproduces Fig. 2 of the paper — the GDM schema and instances
// for NGS ChIP-Seq data — and runs a first GMQL query over it, showing the
// public API end to end: build a dataset, parse a script, execute, inspect.
package main

import (
	"fmt"
	"log"

	"genogo/internal/engine"
	"genogo/internal/gmql"
	"genogo/internal/synth"
)

func main() {
	// The PEAKS dataset exactly as Fig. 2 describes it: two ChIP-seq
	// samples, fixed coordinate attributes + one variable attribute
	// (p_value), metadata as id-attribute-value triples.
	peaks := synth.Figure2Dataset()

	fmt.Println("=== GDM regions (Fig. 2, upper part) ===")
	fmt.Printf("schema: id | chr | left | right | strand | %s\n", peaks.Schema.Names()[0])
	for _, s := range peaks.Samples {
		for _, r := range s.Regions {
			fmt.Printf("  %s | %s | %d | %d | %s | %s\n",
				s.ID, r.Chrom, r.Start, r.Stop, r.Strand, r.Values[0])
		}
	}
	fmt.Println("\n=== GDM metadata (Fig. 2, lower part) ===")
	for _, s := range peaks.Samples {
		for _, p := range s.Meta.Pairs() {
			fmt.Printf("  %s | %s | %s\n", s.ID, p[0], p[1])
		}
	}

	// A first GMQL query: select the cancer sample, keep its strongest
	// peaks, and compute per-sample statistics.
	script := `
CANCER = SELECT(karyotype == 'cancer'; region: p_value < 0.00005) PEAKS;
STATS  = EXTEND(n AS COUNT, best AS MIN(p_value)) CANCER;
MATERIALIZE STATS INTO stats;
`
	prog, err := gmql.Parse(script)
	if err != nil {
		log.Fatal(err)
	}
	runner := gmql.NewRunner(engine.MapCatalog{"PEAKS": peaks})
	results, err := runner.Materialize(prog)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== Query result ===")
	for _, res := range results {
		for _, s := range res.Dataset.Samples {
			fmt.Printf("sample %s: %d strong peaks, best p-value %s\n",
				s.ID, len(s.Regions), s.Meta.First("best"))
			for _, r := range s.Regions {
				fmt.Printf("  %s\n", r)
			}
		}
	}
}
