// encode_map reproduces the paper's Section 2 headline query at synthetic
// scale and extrapolates its cardinalities to the paper's reported numbers
// (2,423 ENCODE samples, 83,899,526 peaks, 131,780 promoters, 29 GB
// result):
//
//	PROMS  = SELECT(annType == 'promoter') ANNOTATIONS;
//	PEAKS  = SELECT(dataType == 'ChipSeq') ENCODE;
//	RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"genogo/internal/engine"
	"genogo/internal/gmql"
	"genogo/internal/synth"
)

// The paper's reported scale.
const (
	paperSamples   = 2423
	paperPeaks     = 83899526
	paperPromoters = 131780
	paperResultGB  = 29.0
)

const script = `
PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;
MATERIALIZE RESULT INTO result;
`

func main() {
	samples := flag.Int("samples", 120, "ENCODE samples to generate")
	meanPeaks := flag.Int("peaks", 600, "peak count scale per sample")
	promoters := flag.Int("promoters", 2000, "promoter count")
	flag.Parse()

	g := synth.New(2016)
	encode := g.Encode(synth.EncodeOptions{Samples: *samples, MeanPeaks: *meanPeaks})
	annotations := g.Annotations(g.Genes(*promoters))
	catalog := engine.MapCatalog{"ENCODE": encode, "ANNOTATIONS": annotations}

	prog, err := gmql.Parse(script)
	if err != nil {
		log.Fatal(err)
	}
	runner := gmql.NewRunner(catalog)
	start := time.Now()
	results, err := runner.Materialize(prog)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	ds := results[0].Dataset

	chipSamples, totalPeaks := 0, 0
	for _, s := range encode.Samples {
		if s.Meta.Matches("dataType", "ChipSeq") {
			chipSamples++
			totalPeaks += len(s.Regions)
		}
	}
	mappedRegions := ds.NumRegions()
	bytes := ds.EstimateBytes()

	fmt.Println("=== Section 2 headline query, synthetic scale ===")
	fmt.Printf("ChipSeq samples selected: %d\n", chipSamples)
	fmt.Printf("peaks mapped:             %d\n", totalPeaks)
	fmt.Printf("promoters:                %d\n", *promoters)
	fmt.Printf("result samples:           %d (one per ChipSeq sample)\n", len(ds.Samples))
	fmt.Printf("result regions:           %d (= samples x promoters: %v)\n",
		mappedRegions, mappedRegions == len(ds.Samples)**promoters)
	fmt.Printf("result size:              %.2f MB in %v\n", float64(bytes)/1e6, elapsed.Round(time.Millisecond))

	// Linear extrapolation to the paper's scale: the MAP cardinality law
	// makes the result size samples x promoters x bytes-per-row.
	bytesPerRow := float64(bytes) / float64(mappedRegions)
	projected := bytesPerRow * float64(paperSamples) * float64(paperPromoters)
	fmt.Println("\n=== Extrapolation to the paper's reported scale ===")
	fmt.Printf("paper: %d samples, %d peaks, %d promoters -> %.0f GB\n",
		paperSamples, paperPeaks, paperPromoters, paperResultGB)
	fmt.Printf("ours:  %.1f bytes/result row -> projected %.1f GB at paper scale\n",
		bytesPerRow, projected/1e9)
	fmt.Printf("ratio vs paper's 29 GB: %.2fx\n", projected/1e9/paperResultGB)
}
