// genomenet demonstrates Section 4.5, the Internet of Genomes: research
// centers publish links to their experimental data with metadata; a
// third-party search service crawls the public links, indexes the metadata,
// caches some dataset bodies, answers keyword and ontological queries with
// snippets, and ranks datasets by computed region features.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"genogo/internal/gdm"
	"genogo/internal/genomenet"
	"genogo/internal/ontology"
	"genogo/internal/synth"
)

func main() {
	// Three labs publish their data; one dataset stays private (the paper:
	// links may be public, i.e. visible to crawler visits, or not).
	var urls []string
	for i := 0; i < 3; i++ {
		g := synth.New(int64(200 + i))
		h := genomenet.NewHost(fmt.Sprintf("lab%d", i+1))
		pub := g.Encode(synth.EncodeOptions{Samples: 10, MeanPeaks: 100})
		pub.Name = fmt.Sprintf("LAB%d_CHIP", i+1)
		h.Publish(pub, true)
		anns := g.Annotations(g.Genes(50))
		anns.Name = fmt.Sprintf("LAB%d_ANNS", i+1)
		h.Publish(anns, true)
		secret := g.Encode(synth.EncodeOptions{Samples: 2, MeanPeaks: 10})
		secret.Name = fmt.Sprintf("LAB%d_UNPUBLISHED", i+1)
		h.Publish(secret, false)
		ts := httptest.NewServer(h.Handler())
		defer ts.Close()
		urls = append(urls, ts.URL)
	}

	// The third-party search service crawls everything public.
	svc := genomenet.NewSearchService(ontology.Biomedical())
	if err := svc.Crawl(context.Background(), urls, genomenet.CrawlOptions{FetchBodies: 1}, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== Crawl ===\nvisited %d hosts, indexed %d public datasets (private links unseen)\n",
		len(urls), svc.NumIndexed())

	// Keyword and ontological search with snippets.
	for _, q := range []struct {
		term string
		onto bool
	}{{"CTCF", false}, {"cancer", true}} {
		hits := svc.Search(q.term, q.onto)
		fmt.Printf("\n=== Search %q (ontological=%v): %d hits ===\n", q.term, q.onto, len(hits))
		for i, h := range hits {
			if i >= 5 {
				fmt.Printf("  ... and %d more\n", len(hits)-5)
				break
			}
			repo := "remote"
			if h.InRepo {
				repo = "in-repo"
			}
			fmt.Printf("  [%s] %s sample=%s matched=%q\n", repo, h.Dataset, h.Sample, h.Matched)
		}
	}

	// Feature-based region search: rank cached datasets by computed overlap
	// with the user's regions of interest.
	query := gdm.NewSample("interest")
	query.AddRegion(gdm.NewRegion("chr1", 0, 2_400_000, gdm.StrandNone))
	query.AddRegion(gdm.NewRegion("chr2", 0, 1_000_000, gdm.StrandNone))
	ranked, err := svc.RegionSearch(query, genomenet.FeatureOverlapCount, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Feature-based region search (overlap count, computed on demand) ===")
	for _, r := range ranked {
		fmt.Printf("  %-14s score %.0f (%s)\n", r.Dataset, r.Score, r.HostURL)
	}
}
