// ctcf_loops reproduces the Fig. 3 analysis: testing whether active
// enhancers regulate active genes when both are enclosed within CTCF loops.
// GMQL extracts candidate gene-enhancer pairs by intersecting the CTCF loop
// regions, the three methylation experiments (H3K27ac, H3K4me1, H3K4me3)
// and the RefSeq-like promoters; the synthetic scenario plants ground-truth
// pairs so the pipeline's precision and recall are measurable.
package main

import (
	"flag"
	"fmt"
	"log"

	"genogo/internal/engine"
	"genogo/internal/gmql"
	"genogo/internal/stats"
	"genogo/internal/synth"
)

// The Fig. 3 query: enhancers are H3K4me1 marks carrying H3K27ac (active);
// promoters are active when marked by H3K4me3 and H3K27ac; candidate pairs
// are (active enhancer, active promoter) inside one CTCF loop.
const script = `
K27AC  = SELECT(antibody == 'H3K27ac') MARKS;
K4ME1  = SELECT(antibody == 'H3K4me1') MARKS;
K4ME3  = SELECT(antibody == 'H3K4me3') MARKS;

# Active enhancers: H3K4me1 regions with an H3K27ac region on top.
ACT_ENH = JOIN(DLE(-1); output: LEFT) K4ME1 K27AC;

# Active promoters: promoter annotations marked by H3K4me3 and H3K27ac.
MARKED  = JOIN(DLE(-1); output: LEFT) PROMOTERS K4ME3;
ACT_PROM = JOIN(DLE(-1); output: LEFT) MARKED K27AC;

# Enhancer inside a loop; keep the loop span and the loop id.
ENH_LOOP = JOIN(DLE(0); output: RIGHT) ACT_ENH CTCF_LOOPS;

# Promoter inside the same loop span.
PAIRS = JOIN(DLE(0); output: INT) ENH_LOOP ACT_PROM;
MATERIALIZE PAIRS INTO pairs;
`

func main() {
	loops := flag.Int("loops", 150, "CTCF loops to generate")
	flag.Parse()

	sc := synth.New(33).CTCF(*loops)
	catalog := engine.MapCatalog{
		"CTCF_LOOPS": sc.Loops,
		"MARKS":      sc.Marks,
		"PROMOTERS":  sc.Promoters,
	}
	prog, err := gmql.Parse(script)
	if err != nil {
		log.Fatal(err)
	}
	runner := gmql.NewRunner(catalog)
	results, err := runner.Materialize(prog)
	if err != nil {
		log.Fatal(err)
	}
	pairs := results[0].Dataset

	// Evaluate against the planted truth: a recovered pair is (loop id,
	// gene) — the loop id identifies the enhancer's loop, and planted true
	// pairs are always within one loop, so pair recovery per loop+gene is
	// the right granularity.
	li, ok := pairs.Schema.Index("loop")
	if !ok {
		log.Fatalf("no loop attribute in schema %s", pairs.Schema)
	}
	gi, ok := pairs.Schema.Index("name")
	if !ok {
		log.Fatalf("no gene attribute in schema %s", pairs.Schema)
	}
	found := map[string]bool{}
	for _, s := range pairs.Samples {
		for _, r := range s.Regions {
			found[r.Values[li].Str()+"\x1f"+r.Values[gi].Str()] = true
		}
	}
	// Planted truth at the same granularity.
	truth := map[string]bool{}
	for pair := range sc.TruePairs {
		// ENH0042_1 -> LOOP0042; gene names carry the loop index too.
		var loopIdx, enhIdx int
		var gene string
		if _, err := fmt.Sscanf(pair, "ENH%4d_%d\x1f%s", &loopIdx, &enhIdx, &gene); err == nil {
			truth[fmt.Sprintf("LOOP%04d\x1f%s", loopIdx, gene)] = true
		}
	}
	tp, fp := 0, 0
	for k := range found {
		if truth[k] {
			tp++
		} else {
			fp++
		}
	}
	fn := 0
	for k := range truth {
		if !found[k] {
			fn++
		}
	}
	p, r, f1 := stats.PrecisionRecallF1(tp, fp, fn)

	fmt.Println("=== Fig. 3: enhancer-gene pairs through CTCF loops ===")
	fmt.Printf("loops generated:        %d\n", *loops)
	fmt.Printf("enhancers generated:    %d (true regulating: %d)\n", sc.Enhancers, len(sc.TruePairs))
	fmt.Printf("candidate (loop,gene):  %d recovered\n", len(found))
	fmt.Printf("precision=%.3f recall=%.3f F1=%.3f\n", p, r, f1)
}
