// pipeline walks the three phases of genomic data analysis of Fig. 1:
// primary analysis (simulated reads), secondary analysis (alignment-free
// peak calling on read pileups), and tertiary analysis (multi-sample sense
// making with GMQL). The first two phases are deliberately simple — the
// paper's thesis is that computer science should empower the third.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"genogo/internal/engine"
	"genogo/internal/gdm"
	"genogo/internal/gmql"
	"genogo/internal/intervals"
	"genogo/internal/synth"
)

// primaryAnalysis simulates NGS read production: short reads sampled around
// unknown binding sites ("the machine reads the DNA").
func primaryAnalysis(rng *rand.Rand, genome synth.Genome, sites []gdm.Region, readsPerSite int) []gdm.Region {
	var reads []gdm.Region
	const readLen = 100
	for _, site := range sites {
		for i := 0; i < readsPerSite; i++ {
			offset := rng.Int63n(400) - 200
			start := site.Center() + offset - readLen/2
			if start < 0 {
				start = 0
			}
			reads = append(reads, gdm.NewRegion(site.Chrom, start, start+readLen, gdm.StrandNone))
		}
	}
	// Background noise reads.
	for i := 0; i < len(sites)*readsPerSite/4; i++ {
		c := genome.Chroms[rng.Intn(len(genome.Chroms))]
		start := rng.Int63n(c.Length - readLen)
		reads = append(reads, gdm.NewRegion(c.Name, start, start+readLen, gdm.StrandNone))
	}
	return reads
}

// secondaryAnalysis calls peaks from aligned reads: pileup depth >= minDepth
// becomes a peak (a toy caller — exactly the part the paper declines to
// reinvent).
func secondaryAnalysis(id string, reads []gdm.Region, minDepth int) *gdm.Sample {
	s := gdm.NewSample(id)
	byChrom := map[string][]intervals.Entry{}
	for _, r := range reads {
		byChrom[r.Chrom] = append(byChrom[r.Chrom], intervals.Entry{Start: r.Start, Stop: r.Stop})
	}
	for chrom, es := range byChrom {
		intervals.SortEntries(es)
		for _, seg := range intervals.Coverage(es) {
			if seg.Depth >= minDepth {
				s.AddRegion(gdm.NewRegion(chrom, seg.Start, seg.Stop, gdm.StrandNone,
					gdm.Float(1.0/float64(seg.Depth)), gdm.Float(float64(seg.Depth))))
			}
		}
	}
	s.SortRegions()
	return s
}

const tertiaryScript = `
GENES = SELECT(annType == 'promoter') ANNOTATIONS;
PEAKS = SELECT(dataType == 'ChipSeq') CALLED;
CONSENSUS = COVER(2, ANY) PEAKS;
ONGENES = MAP(peaks AS COUNT) GENES CONSENSUS;
MATERIALIZE ONGENES INTO ongenes;
`

func main() {
	replicas := flag.Int("replicas", 3, "replicate experiments to simulate")
	sites := flag.Int("sites", 80, "true binding sites")
	flag.Parse()

	g := synth.New(66)
	rng := rand.New(rand.NewSource(77))
	genes := g.Genes(100)
	annotations := g.Annotations(genes)

	// Plant true binding sites at some promoters.
	var trueSites []gdm.Region
	for i, gene := range genes {
		if i >= *sites {
			break
		}
		trueSites = append(trueSites, gene.Promoter)
	}

	fmt.Println("=== Phase 1: primary analysis (read production) ===")
	called := gdm.NewDataset("CALLED", synth.PeakSchema)
	totalReads := 0
	for rep := 0; rep < *replicas; rep++ {
		reads := primaryAnalysis(rng, g.Genome, trueSites, 20)
		totalReads += len(reads)
		fmt.Printf("replicate %d: %d reads\n", rep+1, len(reads))

		sample := secondaryAnalysis(fmt.Sprintf("rep%d", rep+1), reads, 5)
		sample.Meta.Add("dataType", "ChipSeq")
		sample.Meta.Add("replicate", fmt.Sprint(rep+1))
		if err := called.Add(sample); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\n=== Phase 2: secondary analysis (peak calling) ===")
	for _, s := range called.Samples {
		fmt.Printf("%s: %d peaks called\n", s.ID, len(s.Regions))
	}

	fmt.Println("\n=== Phase 3: tertiary analysis (GMQL sense making) ===")
	prog, err := gmql.Parse(tertiaryScript)
	if err != nil {
		log.Fatal(err)
	}
	runner := gmql.NewRunner(engine.MapCatalog{"CALLED": called, "ANNOTATIONS": annotations})
	results, err := runner.Materialize(prog)
	if err != nil {
		log.Fatal(err)
	}
	ongenes := results[0].Dataset
	pi, _ := ongenes.Schema.Index("peaks")
	bound := 0
	for _, s := range ongenes.Samples {
		for _, r := range s.Regions {
			if r.Values[pi].Int() > 0 {
				bound++
			}
		}
	}
	fmt.Printf("consensus peaks (>=2 replicas): %d of %d promoters bound\n",
		bound, ongenes.NumRegions())
	fmt.Printf("(planted binding sites at %d gene promoters from %d reads)\n", *sites, totalReads)
}
