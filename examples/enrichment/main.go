// enrichment imitates the GREAT service of Section 4.3 / ref [18]: custom
// queries "augmented with powerful statistics to indicate the significance
// of query results". For a ChIP-seq peak sample, each annotation track is
// scored by the binomial enrichment of peak-annotation overlaps against the
// genomic background fraction the track covers, and ranked by significance.
package main

import (
	"fmt"
	"log"
	"sort"

	"genogo/internal/engine"
	"genogo/internal/expr"
	"genogo/internal/gdm"
	"genogo/internal/stats"
	"genogo/internal/synth"
)

func main() {
	g := synth.New(99)
	genes := g.Genes(400)
	annotations := g.Annotations(genes)
	genomeLen := g.Genome.TotalLength()

	// A peak sample planted to bind promoters: half its peaks sit on
	// promoters, half are background.
	peaks := gdm.NewSample("tf_chip")
	peaks.Meta.Add("antibody", "MYC")
	for i, gene := range genes {
		if i%2 == 0 {
			p := gene.Promoter
			peaks.AddRegion(gdm.NewRegion(p.Chrom, p.Center()-100, p.Center()+100, gdm.StrandNone,
				gdm.Float(0.0001), gdm.Float(5)))
		}
	}
	bg := g.ChipSeq("bg", 200)
	peaks.Regions = append(peaks.Regions, bg.Regions...)
	peaks.SortRegions()
	peakDS := gdm.NewDataset("PEAKS", synth.PeakSchema)
	peakDS.MustAdd(peaks)

	cfg := engine.DefaultConfig()
	type row struct {
		track   string
		covered float64 // genome fraction covered by the track
		hits    int     // peaks overlapping the track
		z       float64
		pUpper  float64
	}
	var rows []row
	n := len(peaks.Regions)

	for _, track := range annotations.Samples {
		// Track coverage fraction of the genome (merged to avoid double
		// counting).
		trackDS := gdm.NewDataset("T", annotations.Schema)
		trackDS.MustAdd(track.Clone())
		merged, err := engine.Cover(cfg, trackDS, engine.CoverArgs{
			Min: engine.CoverBound{Kind: engine.BoundAny},
			Max: engine.CoverBound{Kind: engine.BoundAny},
		})
		if err != nil {
			log.Fatal(err)
		}
		var covered int64
		for _, r := range merged.Samples[0].Regions {
			covered += r.Length()
		}
		p := float64(covered) / float64(genomeLen)

		// Count peaks hitting the track: MAP the peaks onto the merged
		// track and count regions with at least one overlap — then invert:
		// we want per-peak hits, so map track onto peaks.
		mapped, err := engine.Map(cfg, peakDS, merged, engine.MapArgs{
			Aggs: []expr.Aggregate{{Output: "hits", Func: expr.AggCount}},
		})
		if err != nil {
			log.Fatal(err)
		}
		hi, _ := mapped.Schema.Index("hits")
		hits := 0
		for _, r := range mapped.Samples[0].Regions {
			if r.Values[hi].Int() > 0 {
				hits++
			}
		}
		rows = append(rows, row{
			track:   track.ID,
			covered: p,
			hits:    hits,
			z:       stats.BinomialZ(hits, n, p),
			pUpper:  stats.BinomialPUpper(hits, n, p),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].z > rows[j].z })

	fmt.Println("=== GREAT-style enrichment of tf_chip peaks ===")
	fmt.Printf("%d peaks tested against %d annotation tracks\n\n", n, len(rows))
	fmt.Printf("%-12s %-14s %-8s %-10s %s\n", "track", "genome frac", "hits", "z-score", "p-value")
	for _, r := range rows {
		fmt.Printf("%-12s %-14.5f %-8d %-10.1f %.3g\n", r.track, r.covered, r.hits, r.z, r.pUpper)
	}
	fmt.Println("\npromoters should dominate: the sample was planted to bind them.")
}
