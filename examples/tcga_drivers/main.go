// tcga_drivers runs a TCGA-style driver-gene analysis: GMQL selects a
// cancer subtype's patients and maps their somatic mutations onto the gene
// annotation track; the hypergeometric enrichment test (GREAT's gene-based
// statistic) then ranks genes mutated in significantly more patients of the
// subtype than chance allows. The synthetic cohort plants known drivers, so
// recovery is measurable — the genotype-phenotype correlation analysis of
// Section 4.1 end to end.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"genogo/internal/engine"
	"genogo/internal/gmql"
	"genogo/internal/stats"
	"genogo/internal/synth"
)

func main() {
	patients := flag.Int("patients", 150, "cohort size")
	subtype := flag.String("subtype", "BRCA", "cancer subtype to analyze")
	flag.Parse()

	sc := synth.New(2020).TCGA(synth.TCGAOptions{Patients: *patients})
	catalog := engine.MapCatalog{
		"TCGA":        sc.Mutations,
		"ANNOTATIONS": sc.GeneAnnotations,
	}

	// GMQL: per-patient mutation counts over every gene, for the subtype's
	// patients.
	script := fmt.Sprintf(`
GENES = SELECT(annType == 'gene') ANNOTATIONS;
COHORT = SELECT(subtype == '%s') TCGA;
PERGENE = MAP(muts AS COUNT) GENES COHORT;
MATERIALIZE PERGENE;
`, *subtype)
	prog, err := gmql.Parse(script)
	if err != nil {
		log.Fatal(err)
	}
	runner := gmql.NewRunner(catalog)
	results, err := runner.Materialize(prog)
	if err != nil {
		log.Fatal(err)
	}
	perGene := results[0].Dataset

	// Count, per gene, how many cohort patients carry >= 1 mutation in it.
	gi, _ := perGene.Schema.Index("name")
	mi, _ := perGene.Schema.Index("muts")
	patientsWith := map[string]int{}
	cohort := len(perGene.Samples)
	for _, s := range perGene.Samples {
		for _, r := range s.Regions {
			if r.Values[mi].Int() > 0 {
				patientsWith[r.Values[gi].Str()]++
			}
		}
	}

	// Hypergeometric framing (GREAT's gene-based test): the population is
	// every (gene, patient) cell of the cohort matrix, of which
	// mutatedCells are successes; each gene draws one cell per patient.
	// P[X >= k] asks how surprising the gene's k mutated patients are
	// against the cohort-wide mutation density.
	totalCells, mutatedCells := 0, 0
	for _, s := range perGene.Samples {
		for _, r := range s.Regions {
			totalCells++
			if r.Values[mi].Int() > 0 {
				mutatedCells++
			}
		}
	}
	avgMutatedPerGene := float64(mutatedCells) / float64(totalCells) * float64(cohort)

	type hit struct {
		gene string
		k    int
		p    float64
	}
	var hits []hit
	for gene, k := range patientsWith {
		p := stats.HypergeometricPUpper(k, mutatedCells, cohort, totalCells)
		hits = append(hits, hit{gene, k, p})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].p != hits[j].p {
			return hits[i].p < hits[j].p
		}
		return hits[i].k > hits[j].k
	})

	planted := map[string]bool{}
	for _, d := range sc.Drivers[*subtype] {
		planted[d] = true
	}
	fmt.Printf("=== %s cohort: %d patients, %d genes tested ===\n", *subtype, cohort, len(hits))
	fmt.Printf("background: ~%.1f mutated patients per gene\n\n", avgMutatedPerGene)
	fmt.Printf("%-12s %-9s %-12s %s\n", "gene", "patients", "p-value", "planted driver?")
	recovered := 0
	for i, h := range hits {
		if i >= 8 {
			break
		}
		mark := ""
		if planted[h.gene] {
			mark = "YES"
			if i < len(planted) {
				recovered++
			}
		}
		fmt.Printf("%-12s %-9d %-12.3g %s\n", h.gene, h.k, h.p, mark)
	}
	fmt.Printf("\nplanted drivers recovered in top %d: %d of %d\n",
		len(planted), recovered, len(planted))
}
