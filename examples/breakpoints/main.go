// breakpoints reproduces the Section 3 open problem: correlating
// cancer-inducing mutations and DNA string breaks with abnormal gene
// activity under oncogene induction. Exactly as the paper sketches, GMQL
// extracts differentially dis-regulated genes, intersects them with regions
// where string breaks occur, and counts the mutations in the two
// experimental conditions; the synthetic scenario plants fragile genes so
// the pipeline's recovery is measurable.
package main

import (
	"flag"
	"fmt"
	"log"

	"genogo/internal/engine"
	"genogo/internal/gmql"
	"genogo/internal/stats"
	"genogo/internal/synth"
)

const script = `
CONTROL = SELECT(condition == 'control') EXPRESSION;
INDUCED = SELECT(condition == 'oncogene_induced') EXPRESSION;

# Pair each gene's control and induced expression on identical coordinates.
BOTH = JOIN(DLE(-1); output: LEFT) CONTROL INDUCED;

# Differentially dis-regulated: induced expression dropped below 50%.
DISREG = SELECT(; region: right.expression < expression / 2) BOTH;

# Intersect dis-regulated genes with DNA break regions.
BROKEN = JOIN(DLE(0); output: LEFT) DISREG BREAKS;

# Count mutations per candidate gene; MAP pairs the candidate regions with
# each mutation sample (one per condition), so conditions stay separate.
MUTS = MAP(mutations AS COUNT) BROKEN MUTATIONS;
MATERIALIZE MUTS INTO muts;
MATERIALIZE DISREG INTO disreg;
`

func main() {
	genes := flag.Int("genes", 300, "genes in the scenario")
	flag.Parse()

	sc := synth.New(55).Replication(*genes)
	catalog := engine.MapCatalog{
		"EXPRESSION": sc.Expression,
		"BREAKS":     sc.Breakpoints,
		"MUTATIONS":  sc.Mutations,
	}
	prog, err := gmql.Parse(script)
	if err != nil {
		log.Fatal(err)
	}
	runner := gmql.NewRunner(catalog)
	results, err := runner.Materialize(prog)
	if err != nil {
		log.Fatal(err)
	}
	var muts, disreg = results[0].Dataset, results[1].Dataset

	// Dis-regulation recovery vs. planted fragile genes.
	gi, _ := disreg.Schema.Index("gene")
	found := map[string]bool{}
	for _, s := range disreg.Samples {
		for _, r := range s.Regions {
			found[r.Values[gi].Str()] = true
		}
	}
	tp, fp := 0, 0
	for g := range found {
		if sc.FragileGenes[g] {
			tp++
		} else {
			fp++
		}
	}
	fn := 0
	for g := range sc.FragileGenes {
		if !found[g] {
			fn++
		}
	}
	p, r, f1 := stats.PrecisionRecallF1(tp, fp, fn)
	fmt.Println("=== Section 3: dis-regulated genes vs planted fragile genes ===")
	fmt.Printf("planted fragile genes: %d, recovered: %d\n", len(sc.FragileGenes), len(found))
	fmt.Printf("precision=%.3f recall=%.3f F1=%.3f\n", p, r, f1)

	// Mutation enrichment per condition: the MAP result pairs each broken
	// dis-regulated gene with both mutation samples.
	mi, _ := muts.Schema.Index("mutations")
	ggi, _ := muts.Schema.Index("gene")
	perCondition := map[string][]float64{}
	for _, s := range muts.Samples {
		cond := s.Meta.First("right.condition")
		for _, reg := range s.Regions {
			perCondition[cond] = append(perCondition[cond], float64(reg.Values[mi].Int()))
		}
		_ = ggi
	}
	fmt.Println("\n=== Mutations in broken dis-regulated gene bodies, per condition ===")
	for _, cond := range []string{"control", "oncogene_induced"} {
		sum := stats.Describe(perCondition[cond])
		fmt.Printf("%-17s genes=%d mean=%.2f median=%.1f max=%.0f\n",
			cond, sum.N, sum.Mean, sum.Median, sum.Max)
	}
	ctrl := stats.Mean(perCondition["control"])
	ind := stats.Mean(perCondition["oncogene_induced"])
	fmt.Printf("\ninduced/control mutation fold change: %.1fx\n", stats.FoldChange(ctrl, ind))
}
