// gene_network reproduces Fig. 4 end to end: a GMQL MAP query referring
// experiments to gene regions produces a genome space (a tabular space of
// regions vs. experiments), which is then transformed into a gene network
// whose arcs weight gene-to-gene interactions across experiments.
package main

import (
	"flag"
	"fmt"
	"log"

	"genogo/internal/engine"
	"genogo/internal/genospace"
	"genogo/internal/gmql"
	"genogo/internal/synth"
)

const script = `
GENES  = SELECT(annType == 'gene') ANNOTATIONS;
PEAKS  = SELECT(dataType == 'ChipSeq') ENCODE;
SPACE  = MAP(count AS COUNT, strength AS AVG(signal)) GENES PEAKS;
MATERIALIZE SPACE INTO space;
`

func main() {
	genes := flag.Int("genes", 120, "genes in the reference")
	experiments := flag.Int("experiments", 40, "ENCODE samples")
	threshold := flag.Float64("threshold", 0.6, "network edge threshold (correlation)")
	flag.Parse()

	g := synth.New(44)
	catalog := engine.MapCatalog{
		"ANNOTATIONS": g.Annotations(g.Genes(*genes)),
		"ENCODE":      g.Encode(synth.EncodeOptions{Samples: *experiments, MeanPeaks: 800}),
	}
	prog, err := gmql.Parse(script)
	if err != nil {
		log.Fatal(err)
	}
	runner := gmql.NewRunner(catalog)
	results, err := runner.Materialize(prog)
	if err != nil {
		log.Fatal(err)
	}

	// First transformation (Fig. 4): the MAP result as a genome space.
	gs, err := genospace.FromMapResult(results[0].Dataset, "count")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Genome space (Fig. 4, middle) ===")
	fmt.Printf("regions x experiments: %d x %d\n", gs.NumRegions(), gs.NumExperiments())
	fmt.Println("first rows:")
	for i := 0; i < 5 && i < gs.NumRegions(); i++ {
		row := gs.Row(i)
		fmt.Printf("  %-12s", gs.RegionLabel(i))
		for j := 0; j < 6 && j < len(row); j++ {
			fmt.Printf(" %5.0f", row[j])
		}
		fmt.Println(" ...")
	}

	// Second transformation (Fig. 4): genome space -> gene network.
	net, err := gs.BuildNetwork(genospace.MetricCorrelation, *threshold)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Gene network (Fig. 4, right) ===")
	fmt.Printf("nodes: %d, edges: %d (|r| >= %.2f)\n", net.NumNodes(), net.NumEdges(), *threshold)
	comps := net.ConnectedComponents()
	fmt.Printf("connected components: %d (largest %d)\n", len(comps), comps[0])
	fmt.Println("top hubs:")
	for _, h := range net.TopHubs(5) {
		fmt.Printf("  %-12s degree %d\n", h.Node, h.Degree)
	}

	// Genotype-phenotype correlation (Section 4.1): associate genome-space
	// rows with a phenotype read from the experiments' metadata.
	labels := genospace.PhenotypeLabels(results[0].Dataset, "right.karyotype", "cancer")
	cases := 0
	for _, l := range labels {
		if l {
			cases++
		}
	}
	if cases == 0 || cases == len(labels) {
		fmt.Println("\n(no phenotype contrast in this run; skip association)")
		return
	}
	assoc, err := gs.PhenotypeAssociation(labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== Genotype-phenotype association (karyotype=cancer, %d/%d cases) ===\n",
		cases, len(labels))
	for i, a := range assoc {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-12s r=%+.2f (case mean %.1f vs control %.1f)\n",
			a.Region, a.PointBiserial, a.MeanCase, a.MeanControl)
	}
}
