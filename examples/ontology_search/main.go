// ontology_search demonstrates Section 4.3: integrated access to
// repositories through ontology-mediated metadata search. Sample metadata
// is semantically annotated against a compact biomedical ontology (UMLS
// stand-in), the annotations are completed by semantic closure, and
// keyword queries are expanded through the ontology — so searching for
// "cancer" finds HeLa-S3 and K562 samples that never say "cancer".
package main

import (
	"fmt"

	"genogo/internal/meta"
	"genogo/internal/ontology"
	"genogo/internal/synth"
)

func main() {
	g := synth.New(88)
	encode := g.Encode(synth.EncodeOptions{Samples: 400, MeanPeaks: 10})
	store := meta.NewStore()
	store.AddDataset(encode)

	// LIMS curation report: the metadata sloppiness of Section 1.
	fmt.Println("=== Curation report (missing mandatory attributes) ===")
	for attr, missing := range store.CurationReport([]string{"cell", "dataType", "treatment", "karyotype", "sex"}) {
		fmt.Printf("%-10s missing in %3d of %d samples\n", attr, missing, store.Len())
	}

	o := ontology.Biomedical()
	store.AnnotateWith(o)

	// The relevant set for "cancer": every sample from a cancer cell line.
	relevant := map[string]bool{}
	cancerCells := map[string]bool{"HeLa-S3": true, "K562": true, "HepG2": true, "MCF-7": true}
	for _, s := range encode.Samples {
		if cancerCells[s.Meta.First("cell")] {
			relevant["ENCODE/"+s.ID] = true
		}
	}

	fmt.Println("\n=== Query: 'cancer' ===")
	kw := store.SearchKeyword("cancer")
	p1, r1 := meta.PrecisionRecall(kw, relevant)
	fmt.Printf("keyword search:     %4d hits  precision=%.2f recall=%.2f\n", len(kw), p1, r1)
	onto := store.SearchOntological(o, "cancer")
	p2, r2 := meta.PrecisionRecall(onto, relevant)
	fmt.Printf("ontological search: %4d hits  precision=%.2f recall=%.2f\n", len(onto), p2, r2)

	fmt.Println("\n=== Query expansion behind the scenes ===")
	fmt.Printf("'cancer' expands to: %v\n", o.Expand("cancer cell line"))

	fmt.Println("\n=== More queries (hits: keyword vs ontological) ===")
	for _, q := range []string{"histone mark", "sequencing assay", "transcription factor", "leukemia"} {
		kwN := len(store.SearchKeyword(q))
		onN := len(store.SearchOntological(o, q))
		fmt.Printf("%-22s %4d vs %4d\n", q, kwN, onN)
	}
}
