// federation demonstrates Section 4.4: two nodes own their local ENCODE
// slices; a requester ships the same GMQL query to both, gets compile-time
// size estimates, executes remotely, and pulls only the results back in
// staged chunks. The same analysis run the naive way (download everything,
// compute locally) moves far more data — the paper's core argument for
// query shipping.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"genogo/internal/engine"
	"genogo/internal/federation"
	"genogo/internal/synth"
)

const script = `
PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;
MATERIALIZE RESULT;
`

func main() {
	// Two research centers, each owning a slice of the repository.
	urls := make([]string, 2)
	for i := range urls {
		g := synth.New(int64(100 + i))
		enc := g.Encode(synth.EncodeOptions{Samples: 40, MeanPeaks: 400})
		anns := g.Annotations(g.Genes(300))
		node := federation.NewServer(fmt.Sprintf("node%d", i+1), engine.DefaultConfig(), enc, anns)
		ts := httptest.NewServer(node.Handler())
		defer ts.Close()
		urls[i] = ts.URL
	}

	// 1. Discover remote datasets.
	c := federation.NewClient(urls[0])
	infos, err := c.ListDatasets(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Remote datasets at node1 ===")
	for _, info := range infos {
		fmt.Printf("%-12s %3d samples %7d regions ~%.1f MB\n",
			info.Name, info.Samples, info.Regions, float64(info.EstimatedBytes)/1e6)
	}

	// 2. Compile with result-size estimate.
	comp, err := c.Compile(context.Background(), script, "RESULT")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== Compile-time estimate ===\n%d samples, %d regions, ~%.1f MB\n",
		comp.Estimate.Samples, comp.Estimate.Regions, float64(comp.Estimate.Bytes)/1e6)

	// 3. Federated execution: ship the query, pull only results.
	fed := &federation.Federator{Clients: []*federation.Client{
		federation.NewClient(urls[0]), federation.NewClient(urls[1]),
	}}
	result, _, err := fed.Query(context.Background(), script, "RESULT", 8)
	if err != nil {
		log.Fatal(err)
	}
	fedBytes := fed.BytesMoved()

	// 4. Naive baseline: download the inputs, compute locally.
	naive := &federation.Federator{Clients: []*federation.Client{
		federation.NewClient(urls[0]), federation.NewClient(urls[1]),
	}}
	naiveResult, err := naive.QueryNaive(context.Background(), script, "RESULT",
		[]string{"ANNOTATIONS", "ENCODE"}, engine.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	naiveBytes := naive.BytesMoved()

	fmt.Println("\n=== Federated vs naive architecture ===")
	fmt.Printf("result:      %d samples, %d regions (identical in both: %v)\n",
		len(result.Samples), result.NumRegions(),
		len(result.Samples) == len(naiveResult.Samples) &&
			result.NumRegions() == naiveResult.NumRegions())
	fmt.Printf("query  ship: %.2f MB moved\n", float64(fedBytes)/1e6)
	fmt.Printf("data   ship: %.2f MB moved\n", float64(naiveBytes)/1e6)
	fmt.Printf("advantage:   %.1fx less traffic with federation\n",
		float64(naiveBytes)/float64(fedBytes))
}
