// BenchmarkHeadline is the PR-over-PR benchmark trajectory: the Section 2
// headline query on all three backends, untraced and traced, at the smallest
// sweep size so CI can afford it. TestBenchReportPR2 re-runs it through
// testing.Benchmark and writes BENCH_PR2.json — ops, ns/op, allocs per
// backend plus the tracing overhead — so future perf PRs have a baseline to
// diff against.
package genogo_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"genogo/internal/engine"
	"genogo/internal/gmql"
)

var headlineModes = []struct {
	Name string
	Mode engine.Mode
}{
	{"serial", engine.ModeSerial},
	{"batch", engine.ModeBatch},
	{"stream", engine.ModeStream},
}

func runHeadline(b *testing.B, cfg engine.Config, profiled bool) {
	f := load()
	cat := engine.MapCatalog{"ENCODE": f.encode[38], "ANNOTATIONS": f.annotations}
	prog, err := gmql.Parse(headlineScript)
	if err != nil {
		b.Fatal(err)
	}
	runner := &gmql.Runner{Config: cfg, Catalog: cat}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if profiled {
			if _, _, err := runner.MaterializeProfiled(prog); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := runner.Materialize(prog); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkHeadline(b *testing.B) {
	for _, m := range headlineModes {
		cfg := engine.Config{Mode: m.Mode, MetaFirst: true}
		b.Run("engine="+m.Name, func(b *testing.B) { runHeadline(b, cfg, false) })
		b.Run("engine="+m.Name+"/profiled", func(b *testing.B) { runHeadline(b, cfg, true) })
	}
}

// TestBenchReportPR2 writes the machine-readable benchmark report. Gated by
// BENCH_REPORT so ordinary `go test ./...` stays fast; CI sets the variable
// and uploads the JSON as an artifact.
func TestBenchReportPR2(t *testing.T) {
	if os.Getenv("BENCH_REPORT") == "" {
		t.Skip("set BENCH_REPORT=1 to run the JSON benchmark reporter")
	}
	type row struct {
		Name        string  `json:"name"`
		Ops         int     `json:"ops"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
	}
	report := struct {
		PR        int                `json:"pr"`
		Benchmark string             `json:"benchmark"`
		Rows      []row              `json:"rows"`
		Overhead  map[string]float64 `json:"tracing_overhead_pct"`
	}{PR: 2, Benchmark: "BenchmarkHeadline", Overhead: map[string]float64{}}

	toRow := func(name string, r testing.BenchmarkResult) row {
		return row{
			Name:        name,
			Ops:         r.N,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	load() // build fixtures outside any timed region
	// Minimum of three runs per configuration: the minimum estimates the
	// noise-free cost, which is what an overhead comparison needs.
	best := func(cfg engine.Config, profiled bool) testing.BenchmarkResult {
		r := testing.Benchmark(func(b *testing.B) { runHeadline(b, cfg, profiled) })
		for i := 0; i < 2; i++ {
			if n := testing.Benchmark(func(b *testing.B) { runHeadline(b, cfg, profiled) }); n.NsPerOp() < r.NsPerOp() {
				r = n
			}
		}
		return r
	}
	for _, m := range headlineModes {
		cfg := engine.Config{Mode: m.Mode, MetaFirst: true}
		base := best(cfg, false)
		prof := best(cfg, true)
		report.Rows = append(report.Rows, toRow(m.Name, base), toRow(m.Name+"/profiled", prof))
		pct := 100 * (float64(prof.NsPerOp()) - float64(base.NsPerOp())) / float64(base.NsPerOp())
		report.Overhead[m.Name] = pct
		t.Logf("%s: %v/op untraced, %v/op traced, overhead %.2f%%", m.Name, base.NsPerOp(), prof.NsPerOp(), pct)
		if pct > 5 {
			t.Logf("warning: %s tracing overhead %.2f%% exceeds the 5%% budget (noisy host?)", m.Name, pct)
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR2.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Println("wrote BENCH_PR2.json")
}
