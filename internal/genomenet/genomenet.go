// Package genomenet implements the paper's most far-fetching vision
// (Section 4.5): an Internet of Genomes. Research centers publish links to
// their experimental data with metadata under a simple protocol; a third
// party runs crawlers that download the metadata (and, non-intrusively,
// some datasets); a search service indexes everything and answers keyword
// queries with result snippets, plus feature-based region search where
// features are computed on demand and results ranked by them.
package genomenet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"genogo/internal/engine"
	"genogo/internal/expr"
	"genogo/internal/formats"
	"genogo/internal/gdm"
	"genogo/internal/meta"
	"genogo/internal/obs"
	"genogo/internal/ontology"
	"genogo/internal/resilience"
)

// Crawler metrics, registered against the process-wide registry at package
// init so the genomenet binary's /metrics reports them.
var (
	metricPagesCrawled = obs.Default().Counter("genogo_genomenet_pages_crawled_total",
		"Pages (manifests, metadata, dataset bodies) fetched successfully by the crawler.")
	metricHostsSkipped = obs.Default().Counter("genogo_genomenet_hosts_skipped_total",
		"Hosts a degraded crawl gave up on (SkipFailedHosts).")
	metricLinksIndexed = obs.Default().Counter("genogo_genomenet_links_indexed_total",
		"Links (re)fetched and committed to the search index.")
)

// Crawler resilience defaults.
const (
	// DefaultCrawlTimeout bounds each HTTP request of the default crawl
	// client.
	DefaultCrawlTimeout = 30 * time.Second
	// DefaultMaxBodyBytes caps each fetched payload, bounding the memory a
	// misbehaving host can make the crawler allocate.
	DefaultMaxBodyBytes = 256 << 20
)

// ManifestEntry is one published link: the unit of the publishing protocol.
type ManifestEntry struct {
	Name    string `json:"name"`
	MetaURL string `json:"meta_url"`
	DataURL string `json:"data_url"`
	Public  bool   `json:"public"` // visible to crawlers
	Samples int    `json:"samples"`
	Regions int    `json:"regions"`
	// Fingerprint changes whenever the dataset's content changes, letting
	// crawlers skip unchanged links on re-crawls (polite incremental
	// crawling).
	Fingerprint string `json:"fingerprint"`
}

// Host is a research center's publishing endpoint. It follows the protocol
// the paper prescribes: publish a link to genomic data in its native format
// with suitable metadata, optionally making the link public (visible to
// crawler visits).
type Host struct {
	Name string
	mu   sync.Mutex
	data map[string]*gdm.Dataset
	pub  map[string]bool
}

// NewHost builds an empty host.
func NewHost(name string) *Host {
	return &Host{Name: name, data: make(map[string]*gdm.Dataset), pub: make(map[string]bool)}
}

// Publish registers a dataset; public links are visible to crawlers,
// private ones are served only to clients that already know the URL
// (reviewers with a download link, in the paper's telling).
func (h *Host) Publish(ds *gdm.Dataset, public bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.data[ds.Name] = ds
	h.pub[ds.Name] = public
}

// Handler serves the publishing protocol:
//
//	GET /manifest            JSON list of PUBLIC links
//	GET /meta/{name}         metadata of every sample (crawlers index this)
//	GET /data/{name}         full dataset stream (native format)
func (h *Host) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/manifest", func(w http.ResponseWriter, r *http.Request) {
		h.mu.Lock()
		entries := make([]ManifestEntry, 0, len(h.data))
		for name, ds := range h.data {
			if !h.pub[name] {
				continue
			}
			entries = append(entries, ManifestEntry{
				Name:        name,
				MetaURL:     "/meta/" + name,
				DataURL:     "/data/" + name,
				Public:      true,
				Samples:     len(ds.Samples),
				Regions:     ds.NumRegions(),
				Fingerprint: fingerprint(ds),
			})
		}
		h.mu.Unlock()
		sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(entries)
	})
	mux.HandleFunc("/meta/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/meta/")
		h.mu.Lock()
		ds := h.data[name]
		h.mu.Unlock()
		if ds == nil {
			http.Error(w, "unknown dataset", http.StatusNotFound)
			return
		}
		// One line per sample: id<TAB>attr=value;attr=value;...
		var b strings.Builder
		for _, s := range ds.Samples {
			b.WriteString(s.ID)
			b.WriteByte('\t')
			pairs := s.Meta.Pairs()
			for i, p := range pairs {
				if i > 0 {
					b.WriteByte(';')
				}
				b.WriteString(p[0])
				b.WriteByte('=')
				b.WriteString(p[1])
			}
			b.WriteByte('\n')
		}
		w.Header().Set("Content-Type", "text/plain")
		_, _ = io.WriteString(w, b.String())
	})
	mux.HandleFunc("/data/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/data/")
		h.mu.Lock()
		ds := h.data[name]
		h.mu.Unlock()
		if ds == nil {
			http.Error(w, "unknown dataset", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-gdm")
		_ = formats.EncodeDataset(w, ds)
	})
	return mux
}

// fingerprint hashes a dataset's content (schema, sample IDs, region
// coordinates and values, metadata) for change detection.
func fingerprint(ds *gdm.Dataset) string {
	h := fnv.New64a()
	io.WriteString(h, ds.Schema.String())
	for _, s := range ds.Samples {
		io.WriteString(h, s.ID)
		for _, p := range s.Meta.Pairs() {
			io.WriteString(h, p[0])
			io.WriteString(h, p[1])
		}
		for i := range s.Regions {
			io.WriteString(h, s.Regions[i].String())
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// IndexedDataset is one crawled dataset in the search service.
type IndexedDataset struct {
	HostURL string
	Name    string
	Samples int
	Regions int
	// Cached is true when the crawler also downloaded the dataset body
	// (the paper: "storing some of the samples within a large repository").
	Cached bool
}

// Snippet is one search hit, as the paper describes: an indication of the
// dataset, where it lives, and whether the repository holds a copy.
type Snippet struct {
	HostURL string
	Dataset string
	Sample  string
	Matched string // the metadata pair(s) that matched, abbreviated
	InRepo  bool   // dataset body cached in the search repository
	DataURL string // where to download the original, asynchronously
}

// CrawlStats summarizes one crawl pass.
type CrawlStats struct {
	Visited int // public links seen in manifests
	Updated int // links whose metadata was (re)fetched and indexed
	Skipped int // links skipped because their fingerprint was unchanged
	// FailedHosts lists the hosts a degraded crawl (SkipFailedHosts) gave
	// up on, with the failure appended after a tab.
	FailedHosts []string
}

// SearchService is the third-party crawler + index + search system.
type SearchService struct {
	mu           sync.Mutex
	store        *meta.Store
	onto         *ontology.Ontology
	datasets     map[string]IndexedDataset // key: host|name
	cache        map[string]*gdm.Dataset   // cached bodies
	metaOf       map[string]*gdm.Metadata  // key: host|name|sample
	fingerprints map[string]string         // key: host|name
	CrawlLog     []string
	LastCrawl    CrawlStats
}

// NewSearchService builds an empty service. The ontology may be nil
// (keyword-only search).
func NewSearchService(onto *ontology.Ontology) *SearchService {
	return &SearchService{
		store:        meta.NewStore(),
		onto:         onto,
		datasets:     make(map[string]IndexedDataset),
		cache:        make(map[string]*gdm.Dataset),
		metaOf:       make(map[string]*gdm.Metadata),
		fingerprints: make(map[string]string),
	}
}

// CrawlOptions tunes a crawl pass.
type CrawlOptions struct {
	// FetchBodies caches dataset bodies up to this many datasets per host
	// (0 = metadata only). The paper's crawler downloads metadata always
	// and datasets "with an agreed, non-intrusive protocol".
	FetchBodies int
	// Retrier retries transient fetch failures (nil = no retries).
	Retrier *resilience.Retrier
	// SkipFailedHosts degrades instead of aborting: a host whose fetches
	// keep failing is recorded in CrawlStats.FailedHosts and the crawl
	// moves on to the next host. Entries already committed stay indexed.
	SkipFailedHosts bool
	// MaxBodyBytes caps each fetched payload; <= 0 means
	// DefaultMaxBodyBytes.
	MaxBodyBytes int64
}

func (o CrawlOptions) maxBody() int64 {
	if o.MaxBodyBytes > 0 {
		return o.MaxBodyBytes
	}
	return DefaultMaxBodyBytes
}

// defaultCrawlClient is the crawler's own HTTP client — never
// http.DefaultClient, whose missing timeout would let one dead host hang a
// crawl forever.
var defaultCrawlClient = &http.Client{Timeout: DefaultCrawlTimeout}

// Crawl visits every host: fetch manifest, fetch metadata of every public
// link, optionally fetch dataset bodies, and index everything. A link is
// committed to the index only after every fetch it needs has succeeded, so
// a host that dies mid-crawl can never leave partially indexed garbage —
// the index always reflects some consistent set of fully crawled links.
func (s *SearchService) Crawl(ctx context.Context, hostURLs []string, opt CrawlOptions, httpc *http.Client) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if httpc == nil {
		httpc = defaultCrawlClient
	}
	stats := CrawlStats{}
	dirty := false
	finish := func(err error) error {
		if dirty {
			s.rebuildIndex()
		}
		s.mu.Lock()
		s.LastCrawl = stats
		s.mu.Unlock()
		return err
	}
	for _, base := range hostURLs {
		err := s.crawlHost(ctx, base, opt, httpc, &stats, &dirty)
		if err == nil {
			continue
		}
		if !opt.SkipFailedHosts {
			return finish(err)
		}
		metricHostsSkipped.Inc()
		stats.FailedHosts = append(stats.FailedHosts, base+"\t"+err.Error())
	}
	return finish(nil)
}

// crawlHost crawls one host's public links, committing each link only once
// all its fetches succeeded.
func (s *SearchService) crawlHost(ctx context.Context, base string, opt CrawlOptions, httpc *http.Client, stats *CrawlStats, dirty *bool) error {
	entries, err := fetchManifest(ctx, httpc, opt, base)
	if err != nil {
		return fmt.Errorf("genomenet: crawl %s: %w", base, err)
	}
	fetched := 0
	for _, e := range entries {
		if !e.Public {
			continue
		}
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("genomenet: crawl %s: %w", base, cerr)
		}
		stats.Visited++
		key := base + "|" + e.Name
		s.mu.Lock()
		unchanged := e.Fingerprint != "" && s.fingerprints[key] == e.Fingerprint
		s.mu.Unlock()
		if unchanged {
			stats.Skipped++
			continue
		}
		// Fetch everything the link needs BEFORE touching the index.
		metaLines, err := fetchText(ctx, httpc, opt, base+e.MetaURL)
		if err != nil {
			return fmt.Errorf("genomenet: crawl %s/%s: %w", base, e.Name, err)
		}
		var body *gdm.Dataset
		if fetched < opt.FetchBodies {
			body, err = fetchDataset(ctx, httpc, opt, base+e.DataURL)
			if err != nil {
				return fmt.Errorf("genomenet: crawl %s/%s body: %w", base, e.Name, err)
			}
			fetched++
		}
		// Commit the fully fetched link.
		s.indexMeta(base, e, metaLines)
		s.mu.Lock()
		if body != nil {
			s.cache[key] = body
			d := s.datasets[key]
			d.Cached = true
			s.datasets[key] = d
		}
		s.fingerprints[key] = e.Fingerprint
		s.CrawlLog = append(s.CrawlLog, base+"/"+e.Name)
		s.mu.Unlock()
		*dirty = true
		metricLinksIndexed.Inc()
		stats.Updated++
	}
	return nil
}

// rebuildIndex reconstructs the metadata store from the retained per-sample
// metadata, so re-crawled datasets replace (rather than duplicate) their
// previous entries.
func (s *SearchService) rebuildIndex() {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.metaOf))
	for k := range s.metaOf {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s.store = meta.NewStore()
	for _, k := range keys {
		// k is host|name|sample.
		cut := strings.LastIndex(k, "|")
		s.store.Add(meta.Entry{Dataset: k[:cut], Sample: k[cut+1:], Meta: s.metaOf[k]})
	}
	if s.onto != nil {
		s.store.AnnotateWith(s.onto)
	}
}

// fetchBytes performs one capped, optionally retried GET.
func fetchBytes(ctx context.Context, c *http.Client, opt CrawlOptions, url string) ([]byte, error) {
	var body []byte
	op := func(ctx context.Context) error {
		body = nil
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		resp, err := c.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		limit := opt.maxBody()
		b, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
		if err != nil {
			return err
		}
		if int64(len(b)) > limit {
			return fmt.Errorf("%s: response exceeds %d-byte cap", url, limit)
		}
		if resp.StatusCode != http.StatusOK {
			return &resilience.StatusError{Code: resp.StatusCode, Status: resp.Status}
		}
		body = b
		return nil
	}
	if err := opt.Retrier.Do(ctx, op); err != nil {
		return nil, err
	}
	metricPagesCrawled.Inc()
	return body, nil
}

func fetchManifest(ctx context.Context, c *http.Client, opt CrawlOptions, base string) ([]ManifestEntry, error) {
	body, err := fetchBytes(ctx, c, opt, base+"/manifest")
	if err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	var out []ManifestEntry
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, err
	}
	return out, nil
}

func fetchText(ctx context.Context, c *http.Client, opt CrawlOptions, url string) (string, error) {
	body, err := fetchBytes(ctx, c, opt, url)
	if err != nil {
		return "", fmt.Errorf("%s: %w", url, err)
	}
	return string(body), nil
}

func fetchDataset(ctx context.Context, c *http.Client, opt CrawlOptions, url string) (*gdm.Dataset, error) {
	body, err := fetchBytes(ctx, c, opt, url)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", url, err)
	}
	return formats.DecodeDataset(bytes.NewReader(body))
}

// indexMeta parses the host's metadata lines and stores them per sample,
// replacing any previous crawl's entries for the same dataset. The search
// index itself is rebuilt once at the end of the crawl.
func (s *SearchService) indexMeta(hostURL string, e ManifestEntry, lines string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := hostURL + "|" + e.Name
	s.datasets[key] = IndexedDataset{
		HostURL: hostURL, Name: e.Name, Samples: e.Samples, Regions: e.Regions,
		Cached: s.datasets[key].Cached,
	}
	for k := range s.metaOf {
		if strings.HasPrefix(k, key+"|") {
			delete(s.metaOf, k)
		}
	}
	for _, line := range strings.Split(lines, "\n") {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 2)
		md := gdm.NewMetadata()
		if len(parts) == 2 {
			for _, pair := range strings.Split(parts[1], ";") {
				if kv := strings.SplitN(pair, "=", 2); len(kv) == 2 {
					md.Add(kv[0], kv[1])
				}
			}
		}
		s.metaOf[key+"|"+parts[0]] = md
	}
}

// NumIndexed reports how many datasets the service knows.
func (s *SearchService) NumIndexed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.datasets)
}

// Search answers a keyword (or, with an ontology, concept) query with
// snippets.
func (s *SearchService) Search(query string, ontological bool) []Snippet {
	s.mu.Lock()
	defer s.mu.Unlock()
	var hits []meta.Entry
	if ontological && s.onto != nil {
		hits = s.store.SearchOntological(s.onto, query)
	} else {
		hits = s.store.SearchKeyword(query)
	}
	out := make([]Snippet, 0, len(hits))
	for _, h := range hits {
		d := s.datasets[h.Dataset]
		matched := ""
		for _, p := range h.Meta.Pairs() {
			if strings.Contains(strings.ToLower(p[0]+" "+p[1]), strings.ToLower(query)) {
				matched = p[0] + "=" + p[1]
				break
			}
		}
		out = append(out, Snippet{
			HostURL: d.HostURL, Dataset: d.Name, Sample: h.Sample,
			Matched: matched, InRepo: d.Cached,
			DataURL: d.HostURL + "/data/" + d.Name,
		})
	}
	return out
}

// RegionFeature selects the ranking feature of feature-based region search.
type RegionFeature uint8

// Region features.
const (
	// FeatureOverlapCount ranks by how many cached regions overlap the
	// query regions.
	FeatureOverlapCount RegionFeature = iota
	// FeatureCoverage ranks by the fraction of query regions hit at least
	// once.
	FeatureCoverage
)

// RankedDataset is one feature-based search result.
type RankedDataset struct {
	HostURL string
	Dataset string
	Score   float64
}

// RegionSearch implements the paper's feature-based region search: the user
// provides regions of interest; features are COMPUTED over the cached
// datasets (they cannot be pre-indexed for arbitrary queries); datasets are
// ranked by the computed feature and returned best-first.
func (s *SearchService) RegionSearch(query *gdm.Sample, feature RegionFeature, topK int) ([]RankedDataset, error) {
	s.mu.Lock()
	cached := make(map[string]*gdm.Dataset, len(s.cache))
	for k, v := range s.cache {
		cached[k] = v
	}
	s.mu.Unlock()

	ref := gdm.NewDataset("QUERY", gdm.MustSchema())
	q := &gdm.Sample{ID: "query", Meta: gdm.NewMetadata()}
	for _, r := range query.Regions {
		q.Regions = append(q.Regions, gdm.Region{Chrom: r.Chrom, Start: r.Start, Stop: r.Stop, Strand: r.Strand})
	}
	qs := *q
	qs.SortRegions()
	ref.MustAdd(&qs)

	cfg := engine.Config{Mode: engine.ModeSerial, MetaFirst: true}
	var out []RankedDataset
	for key, ds := range cached {
		// Merge the dataset into one sample, then MAP the query onto it.
		merged, err := engine.Merge(cfg, ds, nil)
		if err != nil {
			return nil, fmt.Errorf("genomenet: region search: %w", err)
		}
		mapped, err := engine.Map(cfg, ref, merged, engine.MapArgs{
			Aggs: []expr.Aggregate{{Output: "hits", Func: expr.AggCount}},
		})
		if err != nil {
			return nil, fmt.Errorf("genomenet: region search: %w", err)
		}
		hi, _ := mapped.Schema.Index("hits")
		total, covered := 0.0, 0.0
		for _, sm := range mapped.Samples {
			for _, r := range sm.Regions {
				n := r.Values[hi].Int()
				total += float64(n)
				if n > 0 {
					covered++
				}
			}
		}
		var score float64
		switch feature {
		case FeatureOverlapCount:
			score = total
		case FeatureCoverage:
			if len(query.Regions) > 0 {
				score = covered / float64(len(query.Regions))
			}
		default:
			return nil, fmt.Errorf("genomenet: unknown feature %d", feature)
		}
		idx := s.datasets[key]
		out = append(out, RankedDataset{HostURL: idx.HostURL, Dataset: idx.Name, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].HostURL != out[j].HostURL {
			return out[i].HostURL < out[j].HostURL
		}
		return out[i].Dataset < out[j].Dataset
	})
	if topK > 0 && topK < len(out) {
		out = out[:topK]
	}
	return out, nil
}
