package genomenet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"genogo/internal/synth"
)

// sabotage wraps a host handler and breaks a chosen endpoint.
func sabotage(inner http.Handler, prefix, mode string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, prefix) {
			switch mode {
			case "status":
				http.Error(w, "injected", http.StatusInternalServerError)
				return
			case "garbage":
				_, _ = w.Write([]byte("{{{{not json or gdm"))
				return
			}
		}
		inner.ServeHTTP(w, r)
	})
}

func publishingHost(t *testing.T) *Host {
	t.Helper()
	g := synth.New(13)
	h := NewHost("lab")
	ds := g.Encode(synth.EncodeOptions{Samples: 4, MeanPeaks: 10})
	ds.Name = "CHIP"
	h.Publish(ds, true)
	return h
}

func TestCrawlSurfacesManifestFailure(t *testing.T) {
	ts := httptest.NewServer(sabotage(publishingHost(t).Handler(), "/manifest", "status"))
	defer ts.Close()
	svc := NewSearchService(nil)
	if err := svc.Crawl(context.Background(), []string{ts.URL}, CrawlOptions{}, nil); err == nil {
		t.Fatal("broken manifest swallowed")
	}
}

func TestCrawlSurfacesGarbageManifest(t *testing.T) {
	ts := httptest.NewServer(sabotage(publishingHost(t).Handler(), "/manifest", "garbage"))
	defer ts.Close()
	svc := NewSearchService(nil)
	if err := svc.Crawl(context.Background(), []string{ts.URL}, CrawlOptions{}, nil); err == nil {
		t.Fatal("garbage manifest decoded")
	}
}

func TestCrawlSurfacesMetaFailure(t *testing.T) {
	ts := httptest.NewServer(sabotage(publishingHost(t).Handler(), "/meta/", "status"))
	defer ts.Close()
	svc := NewSearchService(nil)
	if err := svc.Crawl(context.Background(), []string{ts.URL}, CrawlOptions{}, nil); err == nil {
		t.Fatal("broken metadata endpoint swallowed")
	}
}

func TestCrawlSurfacesBodyFailure(t *testing.T) {
	ts := httptest.NewServer(sabotage(publishingHost(t).Handler(), "/data/", "garbage"))
	defer ts.Close()
	svc := NewSearchService(nil)
	// Metadata-only crawls never touch /data and must succeed.
	if err := svc.Crawl(context.Background(), []string{ts.URL}, CrawlOptions{}, nil); err != nil {
		t.Fatalf("metadata-only crawl failed: %v", err)
	}
	// Body-fetching crawls fail loudly.
	svc2 := NewSearchService(nil)
	if err := svc2.Crawl(context.Background(), []string{ts.URL}, CrawlOptions{FetchBodies: 1}, nil); err == nil {
		t.Fatal("garbage dataset body decoded")
	}
}

func TestHostUnknownPaths(t *testing.T) {
	ts := httptest.NewServer(publishingHost(t).Handler())
	defer ts.Close()
	for _, path := range []string{"/meta/NOPE", "/data/NOPE"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s -> %d", path, resp.StatusCode)
		}
	}
}
