package genomenet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"genogo/internal/resilience"
	"genogo/internal/synth"
)

// multiHost publishes n public datasets named D0..D(n-1).
func multiHost(t *testing.T, seed int64, n int) *Host {
	t.Helper()
	g := synth.New(seed)
	h := NewHost("lab")
	for i := 0; i < n; i++ {
		ds := g.Encode(synth.EncodeOptions{Samples: 3, MeanPeaks: 6})
		ds.Name = "D" + string(rune('0'+i))
		h.Publish(ds, true)
	}
	return h
}

// failNth wraps a handler and fails every request whose path has the given
// prefix once the request counter for that prefix passes n (0-based).
type failNth struct {
	inner  http.Handler
	prefix string
	n      int32
	seen   int32
}

func (f *failNth) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, f.prefix) {
		if atomic.AddInt32(&f.seen, 1)-1 >= f.n {
			http.Error(w, "injected mid-crawl failure", http.StatusInternalServerError)
			return
		}
	}
	f.inner.ServeHTTP(w, r)
}

// TestCrawlMidFlightMetaFailureKeepsIndexConsistent: the host dies while
// serving the second dataset's metadata. The first, fully crawled dataset
// stays indexed; the second must not appear anywhere — no datasets entry,
// no metadata, no fingerprint (so a re-crawl retries it).
func TestCrawlMidFlightMetaFailureKeepsIndexConsistent(t *testing.T) {
	host := multiHost(t, 21, 3)
	ts := httptest.NewServer(&failNth{inner: host.Handler(), prefix: "/meta/", n: 1})
	defer ts.Close()
	svc := NewSearchService(nil)
	if err := svc.Crawl(context.Background(), []string{ts.URL}, CrawlOptions{}, nil); err == nil {
		t.Fatal("mid-crawl failure swallowed")
	}
	if got := svc.NumIndexed(); got != 1 {
		t.Fatalf("indexed = %d, want only the fully crawled dataset", got)
	}
	svc.mu.Lock()
	for k := range svc.datasets {
		if !strings.HasSuffix(k, "|D0") {
			t.Errorf("partially crawled dataset committed: %s", k)
		}
	}
	for k := range svc.metaOf {
		if strings.Contains(k, "|D1|") || strings.Contains(k, "|D2|") {
			t.Errorf("partial metadata entry leaked: %s", k)
		}
	}
	if _, ok := svc.fingerprints[ts.URL+"|D1"]; ok {
		t.Error("failed dataset's fingerprint recorded; re-crawl would skip it")
	}
	svc.mu.Unlock()
	// The index over the committed entries still answers queries.
	if hits := svc.Search("D0", false); len(hits) == 0 {
		_ = hits // keyword may not match metadata; consistency is what matters
	}
}

// TestCrawlBodyFailureDoesNotCommitMeta: the metadata fetch succeeds but
// the body fetch fails. The dataset must not be half-committed with
// metadata indexed and no body.
func TestCrawlBodyFailureDoesNotCommitMeta(t *testing.T) {
	host := multiHost(t, 22, 2)
	// First body (D0) succeeds, second (D1) fails.
	ts := httptest.NewServer(&failNth{inner: host.Handler(), prefix: "/data/", n: 1})
	defer ts.Close()
	svc := NewSearchService(nil)
	err := svc.Crawl(context.Background(), []string{ts.URL}, CrawlOptions{FetchBodies: 2}, nil)
	if err == nil {
		t.Fatal("body failure swallowed")
	}
	if got := svc.NumIndexed(); got != 1 {
		t.Fatalf("indexed = %d, want 1", got)
	}
	svc.mu.Lock()
	if _, ok := svc.datasets[ts.URL+"|D1"]; ok {
		t.Error("dataset whose body fetch failed was committed")
	}
	svc.mu.Unlock()
	// A healthy re-crawl picks up everything.
	healthy := httptest.NewServer(host.Handler())
	defer healthy.Close()
	if err := svc.Crawl(context.Background(), []string{healthy.URL}, CrawlOptions{FetchBodies: 2}, nil); err != nil {
		t.Fatal(err)
	}
	if got := svc.NumIndexed(); got != 3 { // 1 old key + 2 under the new URL
		t.Fatalf("after healthy re-crawl indexed = %d", got)
	}
}

// TestCrawlSkipFailedHosts: degraded crawling records the dead host and
// still indexes the healthy one.
func TestCrawlSkipFailedHosts(t *testing.T) {
	good := httptest.NewServer(multiHost(t, 23, 2).Handler())
	defer good.Close()
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer bad.Close()
	svc := NewSearchService(nil)
	err := svc.Crawl(context.Background(), []string{bad.URL, good.URL},
		CrawlOptions{SkipFailedHosts: true}, nil)
	if err != nil {
		t.Fatalf("degraded crawl aborted: %v", err)
	}
	if got := svc.NumIndexed(); got != 2 {
		t.Fatalf("indexed = %d, want the healthy host's 2", got)
	}
	if len(svc.LastCrawl.FailedHosts) != 1 || !strings.HasPrefix(svc.LastCrawl.FailedHosts[0], bad.URL) {
		t.Fatalf("FailedHosts = %v", svc.LastCrawl.FailedHosts)
	}
}

// TestCrawlRetriesAbsorbTransientFaults: a seeded chaos transport with a
// modest fault rate plus retries yields a complete crawl.
func TestCrawlRetriesAbsorbTransientFaults(t *testing.T) {
	ts := httptest.NewServer(multiHost(t, 24, 3).Handler())
	defer ts.Close()
	chaos := &resilience.ChaosTransport{Seed: 77, ErrorRate: 0.15, DropRate: 0.05}
	httpc := &http.Client{Transport: chaos, Timeout: 10 * time.Second}
	svc := NewSearchService(nil)
	err := svc.Crawl(context.Background(), []string{ts.URL}, CrawlOptions{
		FetchBodies: 1,
		Retrier: &resilience.Retrier{
			MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
		},
	}, httpc)
	if err != nil {
		t.Fatalf("crawl failed despite retries: %v (faults injected: %d)", err, chaos.Faults())
	}
	if got := svc.NumIndexed(); got != 3 {
		t.Fatalf("indexed = %d, want 3", got)
	}
	if chaos.Faults() == 0 {
		t.Fatal("chaos transport injected nothing; test proves nothing")
	}
}

// TestCrawlHonorsContextCancellation: a cancelled context stops the crawl
// promptly with a consistent index.
func TestCrawlHonorsContextCancellation(t *testing.T) {
	ts := httptest.NewServer(multiHost(t, 25, 3).Handler())
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	svc := NewSearchService(nil)
	if err := svc.Crawl(ctx, []string{ts.URL}, CrawlOptions{}, nil); err == nil {
		t.Fatal("cancelled crawl reported success")
	}
	if got := svc.NumIndexed(); got != 0 {
		t.Fatalf("cancelled crawl indexed %d datasets", got)
	}
}

// TestCrawlTruncatedBodyNotCommitted: a truncated dataset body is a decode
// error; the dataset must not enter the cache or index.
func TestCrawlTruncatedBodyNotCommitted(t *testing.T) {
	ts := httptest.NewServer(multiHost(t, 26, 1).Handler())
	defer ts.Close()
	chaos := &resilience.ChaosTransport{Seed: 5, TruncateRate: 1}
	httpc := &http.Client{Transport: chaos, Timeout: 10 * time.Second}
	svc := NewSearchService(nil)
	err := svc.Crawl(context.Background(), []string{ts.URL}, CrawlOptions{FetchBodies: 1}, httpc)
	if err == nil {
		t.Fatal("truncated body decoded")
	}
	if got := svc.NumIndexed(); got != 0 {
		t.Fatalf("indexed = %d after truncated crawl", got)
	}
}
