package genomenet

import (
	"context"
	"net/http/httptest"
	"testing"

	"genogo/internal/gdm"
	"genogo/internal/ontology"
	"genogo/internal/synth"
)

// newHost publishes two public datasets and one private one.
func newHost(t *testing.T, name string, seed int64) (*Host, *httptest.Server) {
	t.Helper()
	g := synth.New(seed)
	h := NewHost(name)
	pub1 := g.Encode(synth.EncodeOptions{Samples: 6, MeanPeaks: 20})
	pub1.Name = name + "_CHIP"
	h.Publish(pub1, true)
	pub2 := g.Annotations(g.Genes(30))
	pub2.Name = name + "_ANNS"
	h.Publish(pub2, true)
	private := g.Encode(synth.EncodeOptions{Samples: 2, MeanPeaks: 5})
	private.Name = name + "_SECRET"
	h.Publish(private, false)
	ts := httptest.NewServer(h.Handler())
	t.Cleanup(ts.Close)
	return h, ts
}

func TestManifestHidesPrivateLinks(t *testing.T) {
	_, ts := newHost(t, "lab1", 1)
	svc := NewSearchService(nil)
	if err := svc.Crawl(context.Background(), []string{ts.URL}, CrawlOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	if svc.NumIndexed() != 2 {
		t.Fatalf("indexed = %d, want 2 (private link must stay invisible)", svc.NumIndexed())
	}
	for _, line := range svc.CrawlLog {
		if line == ts.URL+"/lab1_SECRET" {
			t.Error("crawler visited a private link")
		}
	}
}

func TestCrawlAndKeywordSearch(t *testing.T) {
	_, ts1 := newHost(t, "lab1", 2)
	_, ts2 := newHost(t, "lab2", 3)
	svc := NewSearchService(nil)
	if err := svc.Crawl(context.Background(), []string{ts1.URL, ts2.URL}, CrawlOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	if svc.NumIndexed() != 4 {
		t.Fatalf("indexed = %d", svc.NumIndexed())
	}
	hits := svc.Search("ChipSeq", false)
	if len(hits) == 0 {
		t.Fatal("no hits for ChipSeq")
	}
	for _, h := range hits {
		if h.DataURL == "" || h.Dataset == "" || h.Sample == "" {
			t.Errorf("incomplete snippet %+v", h)
		}
		if h.InRepo {
			t.Error("metadata-only crawl claims cached body")
		}
		if h.Matched == "" {
			t.Errorf("snippet without matched pair: %+v", h)
		}
	}
	if hits := svc.Search("flux-capacitor", false); len(hits) != 0 {
		t.Errorf("phantom hits: %v", hits)
	}
}

func TestCrawlWithBodiesAndSnippetInRepo(t *testing.T) {
	_, ts := newHost(t, "lab1", 4)
	svc := NewSearchService(nil)
	if err := svc.Crawl(context.Background(), []string{ts.URL}, CrawlOptions{FetchBodies: 1}, nil); err != nil {
		t.Fatal(err)
	}
	inRepo := 0
	for _, d := range svc.datasets {
		if d.Cached {
			inRepo++
		}
	}
	if inRepo != 1 {
		t.Fatalf("cached bodies = %d, want 1 (non-intrusive limit)", inRepo)
	}
}

func TestOntologicalSearchOverCrawl(t *testing.T) {
	// Deterministic corpus: one sample says "cancer" verbatim, one is a
	// K562 (a cancer cell line, but never says "cancer"), one is normal.
	h := NewHost("lab")
	ds := gdm.NewDataset("CORPUS", gdm.MustSchema())
	verbatim := gdm.NewSample("verbatim")
	verbatim.Meta.Add("karyotype", "cancer")
	ds.MustAdd(verbatim)
	k562 := gdm.NewSample("k562only")
	k562.Meta.Add("cell", "K562")
	ds.MustAdd(k562)
	normal := gdm.NewSample("normal")
	normal.Meta.Add("cell", "GM12878")
	ds.MustAdd(normal)
	h.Publish(ds, true)
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()

	svc := NewSearchService(ontology.Biomedical())
	if err := svc.Crawl(context.Background(), []string{ts.URL}, CrawlOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	plain := svc.Search("cancer", false)
	if len(plain) != 1 || plain[0].Sample != "verbatim" {
		t.Fatalf("keyword cancer = %v", plain)
	}
	onto := svc.Search("cancer", true)
	got := map[string]bool{}
	for _, s := range onto {
		got[s.Sample] = true
	}
	if !got["verbatim"] || !got["k562only"] || got["normal"] {
		t.Errorf("ontological cancer = %v", got)
	}
}

func TestRegionSearchRanking(t *testing.T) {
	// Build two hosts: one whose dataset is dense around the query regions,
	// one far away. Ranking must put the dense one first.
	hotSchema := synth.PeakSchema
	hot := gdm.NewDataset("HOT", hotSchema)
	hs := gdm.NewSample("hs")
	hs.Meta.Add("dataType", "ChipSeq")
	for i := int64(0); i < 50; i++ {
		hs.AddRegion(gdm.NewRegion("chr1", 1000+i*10, 1000+i*10+20, gdm.StrandNone,
			gdm.Float(0.001), gdm.Float(2)))
	}
	hs.SortRegions()
	hot.MustAdd(hs)

	cold := gdm.NewDataset("COLD", hotSchema)
	cs := gdm.NewSample("cs")
	cs.Meta.Add("dataType", "ChipSeq")
	cs.AddRegion(gdm.NewRegion("chr9", 1, 2, gdm.StrandNone, gdm.Float(0.001), gdm.Float(2)))
	cold.MustAdd(cs)

	h1 := NewHost("hot")
	h1.Publish(hot, true)
	ts1 := httptest.NewServer(h1.Handler())
	defer ts1.Close()
	h2 := NewHost("cold")
	h2.Publish(cold, true)
	ts2 := httptest.NewServer(h2.Handler())
	defer ts2.Close()

	svc := NewSearchService(nil)
	if err := svc.Crawl(context.Background(), []string{ts1.URL, ts2.URL}, CrawlOptions{FetchBodies: 10}, nil); err != nil {
		t.Fatal(err)
	}
	query := gdm.NewSample("q")
	query.AddRegion(gdm.NewRegion("chr1", 900, 1600, gdm.StrandNone))
	query.AddRegion(gdm.NewRegion("chr2", 0, 100, gdm.StrandNone))

	ranked, err := svc.RegionSearch(query, FeatureOverlapCount, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 2 {
		t.Fatalf("ranked = %v", ranked)
	}
	if ranked[0].Dataset != "HOT" || ranked[0].Score <= ranked[1].Score {
		t.Errorf("ranking wrong: %v", ranked)
	}
	cov, err := svc.RegionSearch(query, FeatureCoverage, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cov) != 1 || cov[0].Dataset != "HOT" || cov[0].Score != 0.5 {
		t.Errorf("coverage ranking = %v", cov)
	}
	if _, err := svc.RegionSearch(query, RegionFeature(99), 0); err == nil {
		t.Error("unknown feature accepted")
	}
}

func TestSearchPrecisionRecallOnSeededCorpus(t *testing.T) {
	// Plant samples with a known attribute and verify retrieval metrics.
	h := NewHost("lab")
	ds := gdm.NewDataset("SEED", gdm.MustSchema())
	relevant := map[string]bool{}
	for i := 0; i < 20; i++ {
		s := gdm.NewSample(fmtSample(i))
		if i%4 == 0 {
			s.Meta.Add("antibody", "CTCF")
			relevant[s.ID] = true
		} else {
			s.Meta.Add("antibody", "POLR2A")
		}
		ds.MustAdd(s)
	}
	h.Publish(ds, true)
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()
	svc := NewSearchService(nil)
	if err := svc.Crawl(context.Background(), []string{ts.URL}, CrawlOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	hits := svc.Search("CTCF", false)
	if len(hits) != len(relevant) {
		t.Fatalf("hits = %d, want %d", len(hits), len(relevant))
	}
	for _, hit := range hits {
		if !relevant[hit.Sample] {
			t.Errorf("false positive %s", hit.Sample)
		}
	}
}

func fmtSample(i int) string { return "s" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func TestCrawlErrors(t *testing.T) {
	svc := NewSearchService(nil)
	if err := svc.Crawl(context.Background(), []string{"http://127.0.0.1:1"}, CrawlOptions{}, nil); err == nil {
		t.Error("unreachable host crawl succeeded")
	}
}

func TestIncrementalRecrawl(t *testing.T) {
	g := synth.New(41)
	h := NewHost("lab")
	ds := g.Encode(synth.EncodeOptions{Samples: 4, MeanPeaks: 10})
	ds.Name = "CHIP"
	h.Publish(ds, true)
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()

	svc := NewSearchService(nil)
	if err := svc.Crawl(context.Background(), []string{ts.URL}, CrawlOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	if svc.LastCrawl.Updated != 1 || svc.LastCrawl.Skipped != 0 {
		t.Fatalf("first crawl stats = %+v", svc.LastCrawl)
	}
	firstHits := len(svc.Search("ChipSeq", false))
	if firstHits == 0 {
		t.Fatal("nothing indexed")
	}

	// Unchanged re-crawl: everything skipped, index intact.
	if err := svc.Crawl(context.Background(), []string{ts.URL}, CrawlOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	if svc.LastCrawl.Skipped != 1 || svc.LastCrawl.Updated != 0 {
		t.Fatalf("re-crawl stats = %+v", svc.LastCrawl)
	}
	if got := len(svc.Search("ChipSeq", false)); got != firstHits {
		t.Fatalf("re-crawl changed index: %d vs %d hits", got, firstHits)
	}

	// Change the dataset: the fingerprint moves, the crawler re-fetches,
	// and old entries are REPLACED (no duplicates).
	changed := ds.Clone()
	changed.Name = "CHIP"
	for _, s := range changed.Samples {
		s.Meta.Set("dataType", "RnaSeq")
	}
	h.Publish(changed, true)
	if err := svc.Crawl(context.Background(), []string{ts.URL}, CrawlOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	if svc.LastCrawl.Updated != 1 {
		t.Fatalf("changed crawl stats = %+v", svc.LastCrawl)
	}
	if got := len(svc.Search("ChipSeq", false)); got != 0 {
		t.Fatalf("stale entries survived: %d hits", got)
	}
	if got := len(svc.Search("RnaSeq", false)); got != 4 {
		t.Fatalf("new entries missing: %d hits", got)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	g := synth.New(42)
	a := g.Encode(synth.EncodeOptions{Samples: 3, MeanPeaks: 5})
	fp := fingerprint(a)
	if fp != fingerprint(a) {
		t.Error("fingerprint not deterministic")
	}
	b := a.Clone()
	b.Samples[0].Meta.Add("new", "attr")
	if fingerprint(b) == fp {
		t.Error("metadata change not detected")
	}
	c := a.Clone()
	c.Samples[0].Regions[0].Start++
	if fingerprint(c) == fp {
		t.Error("coordinate change not detected")
	}
}
