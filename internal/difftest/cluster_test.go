package difftest

import (
	"encoding/json"
	"os"
	"strconv"
	"testing"
)

// TestFailoverClusterDeterministic pins one mid-kill iteration per scenario:
// seeded chaos must be reproducible, and every scenario must classify
// cleanly against the exactness model.
func TestFailoverClusterDeterministic(t *testing.T) {
	cat := BuildCatalog(1)
	seen := make(map[string]int)
	for fault := int64(0); fault < 20; fault++ {
		res := RunClusterCase(ClusterOptions{
			ScriptSeed: 7,
			FaultSeed:  fault,
			Catalog:    cat,
		})
		if res.Diverged() {
			t.Fatalf("fault seed %d (%s/%s) diverged: %s\nscript:\n%s",
				fault, res.Scenario, res.Placement, res.Divergence, res.Script)
		}
		seen[res.Scenario]++
		// Determinism: the same seeds reproduce the same classification.
		again := RunClusterCase(ClusterOptions{ScriptSeed: 7, FaultSeed: fault, Catalog: cat})
		if again.Scenario != res.Scenario || again.Partial != res.Partial ||
			(again.FedErr != "") != (res.FedErr != "") || again.Diff != res.Diff {
			t.Errorf("fault seed %d not reproducible: %+v vs %+v", fault, res, again)
		}
	}
	for _, sc := range []string{"none", "pre-kill", "mid-kill", "kill-restart", "slow-hedged"} {
		if seen[sc] == 0 {
			t.Errorf("20 fault seeds never drew scenario %q (saw %v)", sc, seen)
		}
	}
}

// TestHedgeClusterExact pins slow-hedged iterations: a hedged query against
// a cluster with one slow member must stay exact.
func TestHedgeClusterExact(t *testing.T) {
	cat := BuildCatalog(1)
	hedged := 0
	for fault := int64(0); fault < 40 && hedged < 3; fault++ {
		res := RunClusterCase(ClusterOptions{ScriptSeed: 11, FaultSeed: fault, Catalog: cat})
		if res.Scenario != "slow-hedged" {
			continue
		}
		hedged++
		if res.Diverged() {
			t.Fatalf("fault seed %d diverged: %s", fault, res.Divergence)
		}
		if res.OracleErr == "" && (res.FedErr != "" || res.Partial || res.Diff != "") {
			t.Fatalf("hedged run not exact: %+v", res)
		}
	}
	if hedged == 0 {
		t.Fatal("no slow-hedged scenario drawn in 40 fault seeds")
	}
}

// TestReplicaClusterSoak is the kill/restart chaos soak: seeded campaigns of
// generated scripts against a real three-member replicated federation with
// members dying, restarting, and lagging mid-query. Zero divergences from
// the single-node oracle required — exact results (not merely partial)
// whenever each replica group keeps a live member, and no double-counted
// samples despite every overlap-placement sample arriving twice.
//
// Default is a short soak; CI runs the long one:
//
//	GENOGO_CLUSTER_SOAK=200 go test -race -run TestReplicaClusterSoak ./internal/difftest
//	GENOGO_CLUSTER_SOAK_REPORT=soak.json  # write the JSON artifact
func TestReplicaClusterSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster soak skipped in -short")
	}
	iters := 25
	if v := os.Getenv("GENOGO_CLUSTER_SOAK"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad GENOGO_CLUSTER_SOAK=%q", v)
		}
		iters = n
	}
	rep := RunClusterCampaign(ClusterCampaignOptions{Start: 1, Iterations: iters})
	if path := os.Getenv("GENOGO_CLUSTER_SOAK_REPORT"); path != "" {
		f, err := os.Create(path)
		if err != nil {
			t.Fatalf("soak report: %v", err)
		}
		if err := rep.WriteJSON(f); err != nil {
			t.Fatalf("soak report: %v", err)
		}
		f.Close()
	}
	if len(rep.Diverged) != 0 {
		b, _ := json.MarshalIndent(rep.Diverged, "", "  ")
		t.Fatalf("%d/%d iterations diverged:\n%s", len(rep.Diverged), iters, b)
	}
	if rep.Agreed != iters {
		t.Fatalf("agreed = %d, want %d", rep.Agreed, iters)
	}
	if rep.Exact == 0 {
		t.Error("soak produced no exact results")
	}
	t.Logf("cluster soak: %d iterations, %d exact, %d partial, %d errored, scenarios %v",
		iters, rep.Exact, rep.Partial, rep.Errored, rep.Scenarios)
}
