package difftest

import (
	"strings"
	"testing"

	"genogo/internal/gdm"
	"genogo/internal/gmql"
)

// TestGenerateDeterministic: the same seed must always yield the same
// script — campaign reports and minimized reproducers depend on it.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a := Generate(seed)
		b := Generate(seed)
		if a.Text() != b.Text() {
			t.Fatalf("seed %d: non-deterministic generation:\n%s\n--- vs ---\n%s", seed, a.Text(), b.Text())
		}
	}
}

// TestGeneratedScriptsParse: the generator's contract is random-but-VALID
// scripts — every one must parse.
func TestGeneratedScriptsParse(t *testing.T) {
	for seed := int64(1); seed <= 300; seed++ {
		s := Generate(seed)
		if _, err := gmql.Parse(s.Text()); err != nil {
			t.Fatalf("seed %d: generated script does not parse: %v\n%s", seed, err, s.Text())
		}
	}
}

// TestGeneratorCoversAllOperators: over a few hundred seeds every operator
// of the grammar must appear — otherwise the oracle is silently blind to an
// operator.
func TestGeneratorCoversAllOperators(t *testing.T) {
	ops := map[string]int{}
	for seed := int64(1); seed <= 300; seed++ {
		for op, n := range Generate(seed).Ops {
			ops[op] += n
		}
	}
	for _, want := range []string{
		"SELECT", "PROJECT", "EXTEND", "MERGE", "GROUP", "ORDER",
		"UNION", "DIFFERENCE", "JOIN", "MAP", "COVER",
	} {
		if ops[want] == 0 {
			t.Errorf("operator %s never generated in 300 seeds (coverage: %v)", want, ops)
		}
	}
}

// TestSmokeCampaign is the tier-1 differential smoke: >= 200 generated
// scripts across the full serial/batch/stream × fusion × workers matrix
// (federation sampled every 25th case), with zero divergences. This is the
// acceptance gate every perf PR runs against.
func TestSmokeCampaign(t *testing.T) {
	seeds := 220
	fedEvery := 25
	if testing.Short() {
		seeds = 40
	}
	rep := RunCampaign(CampaignOptions{
		Start:           1,
		Seeds:           seeds,
		DatasetSeed:     1,
		Federation:      !testing.Short(),
		FederationEvery: fedEvery,
		Jobs:            4,
	})
	if len(rep.Diverged) != 0 {
		for _, d := range rep.Diverged {
			t.Errorf("seed %d diverged:\n%s\nminimized:\n%s\nresults: %+v",
				d.Seed, d.Script, d.Minimized, d.Results)
		}
		t.Fatalf("%d/%d cases diverged", len(rep.Diverged), rep.Seeds)
	}
	if rep.Agreed+rep.OracleErrors != seeds {
		t.Fatalf("case accounting broken: agreed %d + oracle errors %d != %d",
			rep.Agreed, rep.OracleErrors, seeds)
	}
	// Oracle errors mean the generator emitted a script the engine rejects
	// in every mode. A few are tolerable (they still check error-agreement);
	// a flood means the generator is broken and the campaign is hollow.
	if rep.OracleErrors > seeds/10 {
		t.Fatalf("too many oracle errors: %d of %d — generator emits mostly invalid scripts",
			rep.OracleErrors, seeds)
	}
	t.Logf("campaign: %d agreed, %d oracle errors, coverage %v", rep.Agreed, rep.OracleErrors, rep.OpCoverage)
}

// TestNormalizerDetectsDrift: the comparator must actually catch the
// failure classes it claims to — coordinates, values, metadata, sample and
// region counts — and must tolerate float noise below the tolerance.
func TestNormalizerDetectsDrift(t *testing.T) {
	cat := BuildCatalog(1)
	base := cat["ENCODE"]

	mutate := func(f func(ds *gdm.Dataset)) *gdm.Dataset {
		m := base.Clone()
		f(m)
		return m
	}

	cases := []struct {
		name string
		ds   *gdm.Dataset
		want string // substring of the expected diff; "" = no diff
	}{
		{"identical", base.Clone(), ""},
		{"shifted-coordinate", mutate(func(ds *gdm.Dataset) {
			ds.Samples[0].Regions[0].Start++
		}), "coordinates"},
		{"dropped-region", mutate(func(ds *gdm.Dataset) {
			s := ds.Samples[1]
			s.Regions = s.Regions[:len(s.Regions)-1]
		}), "region count"},
		{"dropped-sample", mutate(func(ds *gdm.Dataset) {
			ds.Samples = ds.Samples[:len(ds.Samples)-1]
		}), "sample count"},
		{"changed-value", mutate(func(ds *gdm.Dataset) {
			ds.Samples[0].Regions[0].Values[1] = gdm.Float(999)
		}), "attribute signal"},
		{"changed-meta", mutate(func(ds *gdm.Dataset) {
			ds.Samples[0].Meta.Set("cell", "Hacked")
		}), "metadata"},
		{"float-noise-below-tolerance", mutate(func(ds *gdm.Dataset) {
			v := ds.Samples[0].Regions[0].Values[1].Float()
			ds.Samples[0].Regions[0].Values[1] = gdm.Float(v * (1 + 1e-13))
		}), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diff := Diff(base, tc.ds, 0)
			if tc.want == "" && diff != "" {
				t.Fatalf("unexpected diff: %s", diff)
			}
			if tc.want != "" && !strings.Contains(diff, tc.want) {
				t.Fatalf("diff %q does not mention %q", diff, tc.want)
			}
		})
	}
}

// TestMinimizeFindsEarliestDivergence: given a synthetic failure predicate
// ("any script containing V2 fails"), the minimizer must return V2's
// dependency closure, not the whole script.
func TestMinimizeFindsEarliestDivergence(t *testing.T) {
	// Find a seed whose script has >= 3 statements with a middle variable.
	var script *Script
	for seed := int64(1); seed < 100; seed++ {
		s := Generate(seed)
		if len(s.Stmts) >= 3 {
			script = s
			break
		}
	}
	if script == nil {
		t.Fatal("no >=3-statement script in 100 seeds")
	}
	culprit := script.Stmts[1].Var
	min := Minimize(script, func(text, final string) bool {
		return strings.Contains(text, culprit+" = ")
	})
	if !strings.Contains(min, culprit+" = ") {
		t.Fatalf("minimized script lost the culprit %s:\n%s", culprit, min)
	}
	if !strings.Contains(min, "MATERIALIZE "+culprit+" ") {
		t.Fatalf("minimized script should materialize the culprit %s, got:\n%s", culprit, min)
	}
	// It must be a strict sub-script whenever later statements exist.
	if strings.Count(min, ";") >= strings.Count(script.Text(), ";") {
		t.Fatalf("minimizer did not shrink:\nfull:\n%s\nminimized:\n%s", script.Text(), min)
	}
	// The minimized text must itself parse.
	if _, err := gmql.Parse(min); err != nil {
		t.Fatalf("minimized script does not parse: %v\n%s", err, min)
	}
}

// TestCatalogDeterministic: the dataset seed fully determines the catalog —
// reproducers would be useless otherwise.
func TestCatalogDeterministic(t *testing.T) {
	a := BuildCatalog(7)
	b := BuildCatalog(7)
	for _, name := range []string{"ENCODE", "PEAKS", "ANNOT"} {
		if diff := Diff(a[name], b[name], 0); diff != "" {
			t.Fatalf("catalog %s not deterministic: %s", name, diff)
		}
	}
}
