// Package difftest is the differential execution oracle for the GMQL engine:
// a seeded generator of random-but-valid GMQL scripts, a canonical result
// normalizer, and a harness that runs every script under every execution
// backend (serial / batch / stream × fusion × workers, plus a federation
// round-trip) and compares the results against the serial oracle.
//
// The paper's core claim is that one GMQL script has a single meaning
// regardless of backend (Section 4.2); this package is the machine check of
// that claim. Every future perf PR — sharding, fusion, kernel rewrites —
// runs against this oracle, the way SQLancer-style differential testing
// guards SQL planners.
package difftest

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"genogo/internal/gdm"
)

// Stmt is one generated assignment, kept structured so the minimizer can
// rebuild a script from any statement's dependency closure.
type Stmt struct {
	// Var is the assigned variable (V1, V2, ...).
	Var string
	// Text is the full statement line, terminated by ";".
	Text string
	// Deps lists the generated variables this statement references
	// (base datasets are not listed — they resolve through the catalog).
	Deps []string
	// Op is the operator keyword of the statement, for coverage counting.
	Op string
}

// Script is one generated GMQL program.
type Script struct {
	// Seed reproduces the script via Generate(Seed).
	Seed int64
	// Stmts are the assignments in emission (topological) order.
	Stmts []Stmt
	// Final is the materialized variable the oracle compares.
	Final string
	// Ops counts operator keywords used, for campaign coverage reports.
	Ops map[string]int
}

// Text renders the full script, ending with a MATERIALIZE of Final.
func (s *Script) Text() string {
	var b strings.Builder
	for _, st := range s.Stmts {
		b.WriteString(st.Text)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "MATERIALIZE %s INTO OUT;\n", s.Final)
	return b.String()
}

// TextFor renders the sub-script that materializes one variable: the
// dependency closure of target, in original order. This is the unit the
// minimizer bisects over.
func (s *Script) TextFor(target string) string {
	need := map[string]bool{target: true}
	// Statements are topologically ordered, so one reverse pass closes the set.
	for i := len(s.Stmts) - 1; i >= 0; i-- {
		st := s.Stmts[i]
		if !need[st.Var] {
			continue
		}
		for _, d := range st.Deps {
			need[d] = true
		}
	}
	var b strings.Builder
	for _, st := range s.Stmts {
		if need[st.Var] {
			b.WriteString(st.Text)
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "MATERIALIZE %s INTO OUT;\n", target)
	return b.String()
}

// varInfo tracks what the generator knows about a variable: enough schema
// and metadata information to keep every emitted clause valid.
type varInfo struct {
	name   string
	schema *gdm.Schema
	// metas are metadata attributes likely present on samples (used for
	// predicates, groupby, joinby, order keys).
	metas []string
	// samples is a rough upper bound on the sample count, used to cap the
	// blowup of chained binary operators.
	samples int
}

// encodeMetas are the metadata attributes synth.Encode emits (some samples
// miss the optional ones — predicates over them are still valid GMQL).
var encodeMetas = []string{"dataType", "cell", "antibody", "treatment", "karyotype", "sex"}

// annotMetas are the metadata attributes of synth annotation tracks.
var annotMetas = []string{"annType", "provider"}

// Metadata value vocabularies, mirroring internal/synth so equality
// predicates sometimes hit. Keyed by the unprefixed attribute name.
var metaVocab = map[string][]string{
	"dataType":  {"ChipSeq", "RnaSeq", "DnaseSeq"},
	"cell":      {"HeLa-S3", "K562", "GM12878", "HepG2", "H1-hESC", "MCF-7"},
	"antibody":  {"CTCF", "POLR2A", "MYC", "REST", "EP300", "H3K27ac"},
	"treatment": {"none", "IFNg", "TNFa", "estradiol"},
	"karyotype": {"cancer", "normal"},
	"sex":       {"female", "male"},
	"annType":   {"promoter", "gene"},
	"provider":  {"UCSC", "RefSeq"},
}

// generator holds the in-flight state of one script generation.
type generator struct {
	r     *rand.Rand
	vars  []varInfo // generated variables, in order
	bases []varInfo // catalog datasets
	ops   map[string]int
	stmts []Stmt
	nVar  int
	nAttr int
}

// Generate produces one random-but-valid GMQL script from a seed. The same
// seed always yields the same script (math/rand with a fixed source is
// specified to be stable), which is what makes campaign reports and fuzz
// corpora reproducible.
func Generate(seed int64) *Script {
	g := &generator{r: rand.New(rand.NewSource(seed)), ops: make(map[string]int)}
	g.bases = []varInfo{
		{name: "ENCODE", schema: peakSchema(), metas: encodeMetas, samples: encodeSamples},
		{name: "PEAKS", schema: peakSchema(), metas: encodeMetas, samples: peaksSamples},
		{name: "ANNOT", schema: annotSchema(), metas: annotMetas, samples: 2},
	}
	n := 2 + g.r.Intn(4) // 2..5 statements
	for i := 0; i < n; i++ {
		g.emit()
	}
	return &Script{
		Seed:  seed,
		Stmts: g.stmts,
		Final: g.vars[len(g.vars)-1].name,
		Ops:   g.ops,
	}
}

func peakSchema() *gdm.Schema {
	return gdm.MustSchema(
		gdm.Field{Name: "p_value", Type: gdm.KindFloat},
		gdm.Field{Name: "signal", Type: gdm.KindFloat},
	)
}

func annotSchema() *gdm.Schema {
	return gdm.MustSchema(gdm.Field{Name: "name", Type: gdm.KindString})
}

// freshVar mints the next variable name.
func (g *generator) freshVar() string {
	g.nVar++
	return fmt.Sprintf("V%d", g.nVar)
}

// freshAttr mints a region/metadata attribute name that cannot collide with
// any schema field or metadata attribute the catalog or earlier statements
// produced.
func (g *generator) freshAttr() string {
	g.nAttr++
	return fmt.Sprintf("x%d", g.nAttr)
}

// pickInput chooses the input variable of the next statement: usually the
// most recent one (so scripts form deep chains), sometimes any earlier
// variable or a base dataset (so scripts form DAGs).
func (g *generator) pickInput() varInfo {
	if len(g.vars) > 0 && g.r.Float64() < 0.6 {
		return g.vars[len(g.vars)-1]
	}
	all := append(append([]varInfo(nil), g.bases...), g.vars...)
	return all[g.r.Intn(len(all))]
}

// pickOperand chooses a second operand whose sample-count product with in
// stays under the blowup cap; ok is false when none qualifies.
func (g *generator) pickOperand(in varInfo) (varInfo, bool) {
	all := append(append([]varInfo(nil), g.bases...), g.vars...)
	g.r.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	for _, cand := range all {
		if in.samples*cand.samples <= maxSampleProduct {
			return cand, true
		}
	}
	return varInfo{}, false
}

// maxSampleProduct caps l×r for JOIN/MAP so chained binary operators cannot
// blow the sample count up exponentially.
const maxSampleProduct = 24

// record finalizes one statement.
func (g *generator) record(op string, v varInfo, text string, deps ...string) {
	g.ops[op]++
	// Deduplicate deps and keep only generated variables.
	seen := map[string]bool{}
	var keep []string
	for _, d := range deps {
		if seen[d] || !strings.HasPrefix(d, "V") {
			continue
		}
		seen[d] = true
		keep = append(keep, d)
	}
	g.stmts = append(g.stmts, Stmt{Var: v.name, Text: text, Deps: keep, Op: op})
	g.vars = append(g.vars, v)
}

// numericFields returns the Int/Float fields of a schema — the ones usable
// in arithmetic and comparisons.
func numericFields(s *gdm.Schema) []gdm.Field {
	var out []gdm.Field
	for _, f := range s.Fields() {
		if f.Type == gdm.KindInt || f.Type == gdm.KindFloat {
			out = append(out, f)
		}
	}
	return out
}

// emit appends one random statement.
func (g *generator) emit() {
	in := g.pickInput()
	// Weighted operator choice. Binary operators and region_aggregate GROUPs
	// fall back to SELECT when their preconditions fail.
	type choice struct {
		w  int
		fn func(varInfo)
	}
	choices := []choice{
		{18, g.emitSelect},
		{12, g.emitProject},
		{8, g.emitExtend},
		{6, g.emitMerge},
		{7, g.emitGroup},
		{9, g.emitOrder},
		{7, g.emitUnion},
		{7, g.emitDifference},
		{10, g.emitJoin},
		{10, g.emitMap},
		{9, g.emitCover},
	}
	total := 0
	for _, c := range choices {
		total += c.w
	}
	p := g.r.Intn(total)
	for _, c := range choices {
		if p < c.w {
			c.fn(in)
			return
		}
		p -= c.w
	}
}

// metaPredicate builds a random metadata predicate over the input's
// attributes; returns "" when the coin flip says no predicate.
func (g *generator) metaPredicate(in varInfo) string {
	if len(in.metas) == 0 || g.r.Float64() < 0.25 {
		return ""
	}
	atom := func() string {
		attr := in.metas[g.r.Intn(len(in.metas))]
		base := attr
		if i := strings.LastIndex(attr, "."); i >= 0 {
			base = attr[i+1:]
		}
		vocab, ok := metaVocab[base]
		if !ok || g.r.Float64() < 0.25 {
			return attr // bare attribute: existence test
		}
		op := "=="
		if g.r.Float64() < 0.3 {
			op = "!="
		}
		return fmt.Sprintf("%s %s '%s'", attr, op, vocab[g.r.Intn(len(vocab))])
	}
	pred := atom()
	switch g.r.Intn(4) {
	case 0:
		pred = pred + " AND " + atom()
	case 1:
		pred = pred + " OR " + atom()
	case 2:
		pred = "NOT (" + atom() + ")"
	}
	return pred
}

// regionPredicate builds a random region predicate valid under the schema;
// "" when none.
func (g *generator) regionPredicate(s *gdm.Schema) string {
	var cands []string
	// Coordinate predicates are always available.
	cands = append(cands,
		fmt.Sprintf("right - left > %d", 100+g.r.Intn(400)),
		fmt.Sprintf("left > %d", g.r.Intn(1000000)),
		"chr == 'chr1' OR chr == 'chr2'",
	)
	for _, f := range numericFields(s) {
		switch {
		case f.Name == "p_value" || strings.HasSuffix(f.Name, ".p_value"):
			cands = append(cands, fmt.Sprintf("%s < %g", f.Name, []float64{1e-3, 1e-5, 1e-7}[g.r.Intn(3)]))
		case f.Type == gdm.KindFloat:
			cands = append(cands, fmt.Sprintf("%s > %g", f.Name, 1+4*g.r.Float64()))
		default:
			cands = append(cands, fmt.Sprintf("%s >= %d", f.Name, g.r.Intn(3)))
		}
	}
	p := cands[g.r.Intn(len(cands))]
	if g.r.Float64() < 0.2 {
		q := cands[g.r.Intn(len(cands))]
		if g.r.Intn(2) == 0 {
			p = p + " AND " + q
		} else {
			p = "NOT (" + p + ") AND " + q
		}
	}
	return p
}

func (g *generator) emitSelect(in varInfo) {
	var clauses []string
	if m := g.metaPredicate(in); m != "" {
		clauses = append(clauses, m)
	}
	if g.r.Float64() < 0.6 {
		clauses = append(clauses, "region: "+g.regionPredicate(in.schema))
	}
	deps := []string{in.name}
	if g.r.Float64() < 0.15 && len(in.metas) > 0 {
		ext := g.bases[g.r.Intn(len(g.bases))]
		attr := in.metas[g.r.Intn(len(in.metas))]
		not := ""
		if g.r.Intn(2) == 0 {
			not = "NOT "
		}
		clauses = append(clauses, fmt.Sprintf("semijoin: %s %sIN %s", attr, not, ext.name))
		deps = append(deps, ext.name)
	}
	v := varInfo{name: g.freshVar(), schema: in.schema, metas: in.metas, samples: in.samples}
	text := fmt.Sprintf("%s = SELECT(%s) %s;", v.name, strings.Join(clauses, "; "), in.name)
	g.record("SELECT", v, text, deps...)
}

func (g *generator) emitProject(in varInfo) {
	fields := in.schema.Fields()
	// Keep a random non-empty subset of the fields, in schema order.
	keep := make([]bool, len(fields))
	any := false
	for i := range keep {
		if g.r.Float64() < 0.7 {
			keep[i] = true
			any = true
		}
	}
	if !any && len(fields) > 0 {
		keep[g.r.Intn(len(fields))] = true
	}
	var items []string
	var outFields []gdm.Field
	for i, f := range fields {
		if keep[i] {
			items = append(items, f.Name)
			outFields = append(outFields, f)
		}
	}
	// Maybe add computed items (arithmetic ⇒ Float, comparison ⇒ Bool).
	nums := numericFields(in.schema)
	for i := 0; i < g.r.Intn(3); i++ {
		name := g.freshAttr()
		switch {
		case len(nums) > 0 && g.r.Float64() < 0.6:
			f := nums[g.r.Intn(len(nums))]
			if g.r.Intn(2) == 0 {
				items = append(items, fmt.Sprintf("%s AS %s * 2 + 1", name, f.Name))
				outFields = append(outFields, gdm.Field{Name: name, Type: gdm.KindFloat})
			} else {
				items = append(items, fmt.Sprintf("%s AS %s > 1", name, f.Name))
				outFields = append(outFields, gdm.Field{Name: name, Type: gdm.KindBool})
			}
		default:
			items = append(items, fmt.Sprintf("%s AS right - left", name))
			outFields = append(outFields, gdm.Field{Name: name, Type: gdm.KindFloat})
		}
	}
	if len(items) == 0 {
		// Schema had no fields and no computed item was drawn: synthesize one.
		name := g.freshAttr()
		items = append(items, fmt.Sprintf("%s AS right - left", name))
		outFields = append(outFields, gdm.Field{Name: name, Type: gdm.KindFloat})
	}
	clauses := []string{strings.Join(items, ", ")}
	metas := in.metas
	if g.r.Float64() < 0.3 && len(in.metas) > 0 {
		n := 1 + g.r.Intn(len(in.metas))
		kept := append([]string(nil), in.metas...)
		g.r.Shuffle(len(kept), func(i, j int) { kept[i], kept[j] = kept[j], kept[i] })
		kept = kept[:n]
		sort.Strings(kept)
		clauses = append(clauses, "metadata: "+strings.Join(kept, ", "))
		metas = kept
	}
	v := varInfo{name: g.freshVar(), schema: gdm.MustSchema(outFields...), metas: metas, samples: in.samples}
	text := fmt.Sprintf("%s = PROJECT(%s) %s;", v.name, strings.Join(clauses, "; "), in.name)
	g.record("PROJECT", v, text, in.name)
}

// randomAggs draws n aggregates over the given schema with fresh output
// names, returning the clause text and the output fields.
func (g *generator) randomAggs(s *gdm.Schema, n int) (string, []gdm.Field) {
	var parts []string
	var out []gdm.Field
	nums := numericFields(s)
	all := s.Fields()
	for i := 0; i < n; i++ {
		name := g.freshAttr()
		switch {
		case g.r.Float64() < 0.3 || len(all) == 0:
			parts = append(parts, fmt.Sprintf("%s AS COUNT", name))
			out = append(out, gdm.Field{Name: name, Type: gdm.KindInt})
		case len(nums) > 0 && g.r.Float64() < 0.7:
			f := nums[g.r.Intn(len(nums))]
			fn := []string{"SUM", "AVG", "MIN", "MAX", "MEDIAN", "STD"}[g.r.Intn(6)]
			parts = append(parts, fmt.Sprintf("%s AS %s(%s)", name, fn, f.Name))
			out = append(out, gdm.Field{Name: name, Type: aggResultKind(fn, f.Type)})
		default:
			f := all[g.r.Intn(len(all))]
			parts = append(parts, fmt.Sprintf("%s AS BAG(%s)", name, f.Name))
			out = append(out, gdm.Field{Name: name, Type: gdm.KindString})
		}
	}
	return strings.Join(parts, ", "), out
}

// aggResultKind mirrors expr.AggFunc.ResultKind for the functions the
// generator draws.
func aggResultKind(fn string, input gdm.Kind) gdm.Kind {
	switch fn {
	case "COUNT", "COUNTSAMP":
		return gdm.KindInt
	case "AVG", "MEDIAN", "STD":
		return gdm.KindFloat
	case "SUM":
		if input == gdm.KindInt {
			return gdm.KindInt
		}
		return gdm.KindFloat
	case "MIN", "MAX":
		return input
	case "BAG":
		return gdm.KindString
	}
	return gdm.KindNull
}

func (g *generator) emitExtend(in varInfo) {
	clause, fields := g.randomAggs(in.schema, 1+g.r.Intn(2))
	metas := append([]string(nil), in.metas...)
	for _, f := range fields {
		metas = append(metas, f.Name)
	}
	v := varInfo{name: g.freshVar(), schema: in.schema, metas: metas, samples: in.samples}
	text := fmt.Sprintf("%s = EXTEND(%s) %s;", v.name, clause, in.name)
	g.record("EXTEND", v, text, in.name)
}

func (g *generator) emitMerge(in varInfo) {
	clause := ""
	samples := 1
	if g.r.Float64() < 0.5 && len(in.metas) > 0 {
		attr := in.metas[g.r.Intn(len(in.metas))]
		clause = "groupby: " + attr
		samples = min(in.samples, 4)
	}
	v := varInfo{name: g.freshVar(), schema: in.schema, metas: in.metas, samples: samples}
	text := fmt.Sprintf("%s = MERGE(%s) %s;", v.name, clause, in.name)
	g.record("MERGE", v, text, in.name)
}

func (g *generator) emitGroup(in varInfo) {
	if len(in.metas) == 0 {
		g.emitSelect(in)
		return
	}
	by := in.metas[g.r.Intn(len(in.metas))]
	clauses := []string{by}
	metas := append([]string(nil), in.metas...)
	metas = append(metas, "_group")
	if g.r.Float64() < 0.4 {
		name := g.freshAttr()
		if g.r.Intn(2) == 0 {
			clauses = append(clauses, fmt.Sprintf("%s AS COUNTSAMP", name))
		} else {
			src := in.metas[g.r.Intn(len(in.metas))]
			clauses = append(clauses, fmt.Sprintf("%s AS BAG(%s)", name, src))
		}
		metas = append(metas, name)
	}
	schema := in.schema
	if g.r.Float64() < 0.4 {
		clause, fields := g.randomAggs(in.schema, 1+g.r.Intn(2))
		clauses = append(clauses, "region_aggregate: "+clause)
		schema = gdm.MustSchema(fields...)
	}
	v := varInfo{name: g.freshVar(), schema: schema, metas: metas, samples: in.samples}
	text := fmt.Sprintf("%s = GROUP(%s) %s;", v.name, strings.Join(clauses, "; "), in.name)
	g.record("GROUP", v, text, in.name)
}

func (g *generator) emitOrder(in varInfo) {
	var clauses []string
	samples := in.samples
	hasMetaKeys := len(in.metas) > 0 && g.r.Float64() < 0.8
	if hasMetaKeys {
		var keys []string
		for i := 0; i < 1+g.r.Intn(2); i++ {
			k := in.metas[g.r.Intn(len(in.metas))]
			if g.r.Intn(2) == 0 {
				k += " DESC"
			}
			keys = append(keys, k)
		}
		clauses = append(clauses, strings.Join(keys, ", "))
		if g.r.Float64() < 0.5 {
			top := 1 + g.r.Intn(5)
			clauses = append(clauses, fmt.Sprintf("top: %d", top))
			samples = min(samples, top)
		}
	}
	fields := in.schema.Fields()
	if len(fields) > 0 && (!hasMetaKeys || g.r.Float64() < 0.4) {
		f := fields[g.r.Intn(len(fields))]
		dir := ""
		if g.r.Intn(2) == 0 {
			dir = " DESC"
		}
		clauses = append(clauses, fmt.Sprintf("region_order: %s%s", f.Name, dir))
		if g.r.Float64() < 0.5 {
			clauses = append(clauses, fmt.Sprintf("region_top: %d", 1+g.r.Intn(20)))
		}
	}
	if len(clauses) == 0 {
		g.emitSelect(in)
		return
	}
	metas := append(append([]string(nil), in.metas...), "_order")
	v := varInfo{name: g.freshVar(), schema: in.schema, metas: metas, samples: samples}
	text := fmt.Sprintf("%s = ORDER(%s) %s;", v.name, strings.Join(clauses, "; "), in.name)
	g.record("ORDER", v, text, in.name)
}

// unionMetas merges two meta-attribute lists without duplicates.
func unionMetas(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range append(append([]string(nil), a...), b...) {
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// prefixMetas applies the left./right. provenance prefixes binary region
// operators add.
func prefixMetas(l, r []string) []string {
	var out []string
	for _, m := range l {
		out = append(out, "left."+m)
	}
	for _, m := range r {
		out = append(out, "right."+m)
	}
	return out
}

func (g *generator) emitUnion(in varInfo) {
	other, ok := g.pickOperand(in)
	if !ok {
		g.emitSelect(in)
		return
	}
	v := varInfo{
		name:    g.freshVar(),
		schema:  in.schema, // UNION keeps the left schema
		metas:   unionMetas(in.metas, other.metas),
		samples: in.samples + other.samples,
	}
	text := fmt.Sprintf("%s = UNION() %s %s;", v.name, in.name, other.name)
	g.record("UNION", v, text, in.name, other.name)
}

// commonMeta picks a metadata attribute present on both operands, "" if none.
func (g *generator) commonMeta(a, b varInfo) string {
	var both []string
	seen := map[string]bool{}
	for _, m := range a.metas {
		seen[m] = true
	}
	for _, m := range b.metas {
		if seen[m] {
			both = append(both, m)
		}
	}
	if len(both) == 0 {
		return ""
	}
	return both[g.r.Intn(len(both))]
}

func (g *generator) emitDifference(in varInfo) {
	other, ok := g.pickOperand(in)
	if !ok {
		g.emitSelect(in)
		return
	}
	var clauses []string
	if m := g.commonMeta(in, other); m != "" && g.r.Float64() < 0.3 {
		clauses = append(clauses, "joinby: "+m)
	}
	if g.r.Float64() < 0.3 {
		clauses = append(clauses, "exact: true")
	}
	v := varInfo{name: g.freshVar(), schema: in.schema, metas: in.metas, samples: in.samples}
	text := fmt.Sprintf("%s = DIFFERENCE(%s) %s %s;", v.name, strings.Join(clauses, "; "), in.name, other.name)
	g.record("DIFFERENCE", v, text, in.name, other.name)
}

// genometricPred draws a bounded genometric predicate. Every draw includes a
// DLE or MD condition, so the join never degenerates into the O(n·m)
// all-pairs case.
func (g *generator) genometricPred() string {
	dists := []int{0, 50, 500, 5000, 30000}
	d := dists[g.r.Intn(len(dists))]
	switch g.r.Intn(6) {
	case 0:
		return fmt.Sprintf("DLE(%d)", d)
	case 1:
		dir := "UP"
		if g.r.Intn(2) == 0 {
			dir = "DOWN"
		}
		return fmt.Sprintf("DLE(%d), %s", d, dir)
	case 2:
		return fmt.Sprintf("MD(%d)", 1+g.r.Intn(3))
	case 3:
		return fmt.Sprintf("MD(%d), DLE(%d)", 1+g.r.Intn(3), d)
	case 4:
		return fmt.Sprintf("DGE(%d), DLE(%d)", g.r.Intn(100), 1000+d)
	default:
		return "DLE(-1)" // overlap required
	}
}

func (g *generator) emitJoin(in varInfo) {
	other, ok := g.pickOperand(in)
	if !ok {
		g.emitSelect(in)
		return
	}
	clauses := []string{g.genometricPred()}
	if g.r.Float64() < 0.75 {
		out := []string{"INT", "LEFT", "RIGHT", "CAT"}[g.r.Intn(4)]
		clauses = append(clauses, "output: "+out)
	}
	if m := g.commonMeta(in, other); m != "" && g.r.Float64() < 0.25 {
		clauses = append(clauses, "joinby: "+m)
	}
	merged, err := gdm.MergeSchemas(in.schema, other.schema, "right")
	if err != nil {
		g.emitSelect(in)
		return
	}
	v := varInfo{
		name:    g.freshVar(),
		schema:  merged.Schema,
		metas:   prefixMetas(in.metas, other.metas),
		samples: in.samples * other.samples,
	}
	text := fmt.Sprintf("%s = JOIN(%s) %s %s;", v.name, strings.Join(clauses, "; "), in.name, other.name)
	g.record("JOIN", v, text, in.name, other.name)
}

func (g *generator) emitMap(in varInfo) {
	other, ok := g.pickOperand(in)
	if !ok {
		g.emitSelect(in)
		return
	}
	// Aggregates are always explicit with fresh names: the implicit default
	// ("count AS COUNT") would collide if the reference schema already has a
	// count attribute from an earlier MAP.
	clause, fields := g.randomAggs(other.schema, 1+g.r.Intn(2))
	clauses := []string{clause}
	if m := g.commonMeta(in, other); m != "" && g.r.Float64() < 0.25 {
		clauses = append(clauses, "joinby: "+m)
	}
	outFields := append(append([]gdm.Field(nil), in.schema.Fields()...), fields...)
	v := varInfo{
		name:    g.freshVar(),
		schema:  gdm.MustSchema(outFields...),
		metas:   prefixMetas(in.metas, other.metas),
		samples: in.samples * other.samples,
	}
	text := fmt.Sprintf("%s = MAP(%s) %s %s;", v.name, strings.Join(clauses, "; "), in.name, other.name)
	g.record("MAP", v, text, in.name, other.name)
}

func (g *generator) emitCover(in varInfo) {
	variant := []string{"COVER", "COVER", "FLAT", "SUMMIT", "HISTOGRAM"}[g.r.Intn(5)]
	mins := []string{"1", "2", "ANY", "ALL"}
	maxs := []string{"2", "3", "4", "ANY", "ALL"}
	clauses := []string{mins[g.r.Intn(len(mins))] + ", " + maxs[g.r.Intn(len(maxs))]}
	metas := append([]string(nil), in.metas...)
	samples := 1
	if g.r.Float64() < 0.3 && len(in.metas) > 0 {
		clauses = append(clauses, "groupby: "+in.metas[g.r.Intn(len(in.metas))])
		samples = min(in.samples, 4)
	}
	fields := []gdm.Field{{Name: "acc_index", Type: gdm.KindInt}}
	if g.r.Float64() < 0.4 {
		clause, aggFields := g.randomAggs(in.schema, 1+g.r.Intn(2))
		clauses = append(clauses, "aggregate: "+clause)
		fields = append(fields, aggFields...)
	}
	metas = append(metas, "_cover")
	v := varInfo{name: g.freshVar(), schema: gdm.MustSchema(fields...), metas: metas, samples: samples}
	text := fmt.Sprintf("%s = %s(%s) %s;", v.name, variant, strings.Join(clauses, "; "), in.name)
	g.record(variant, v, text, in.name)
}
