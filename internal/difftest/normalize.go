package difftest

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"genogo/internal/gdm"
)

// DefaultTolerance is the float comparison tolerance of the oracle: wide
// enough to absorb accumulation-order differences of parallel float
// aggregation (and JSON round-trips over the federation wire), tight enough
// that any real semantic drift — an off-by-one boundary, a dropped region —
// is orders of magnitude outside it.
const DefaultTolerance = 1e-9

// Diff compares two materialized results after canonical normalization and
// returns "" when they are equivalent, or a description of the first
// difference found. Normalization rules:
//
//   - dataset Name is ignored (it carries the materialization target);
//   - samples are compared in canonical order (gdm sorts samples by ID, and
//     IDs derive deterministically from the plan, not from scheduling);
//   - metadata is compared as a per-sample multiset of (attr, value) pairs,
//     with numeric values compared under the tolerance;
//   - region coordinates, strand, and chromosome are exact; Int/String/Bool
//     attribute values are exact; Float values compare under the tolerance.
//
// Both datasets are cloned before normalization; the inputs are not mutated.
func Diff(oracle, got *gdm.Dataset, tol float64) string {
	if tol <= 0 {
		tol = DefaultTolerance
	}
	a := oracle.Clone()
	b := got.Clone()
	a.SortRegions()
	b.SortRegions()
	if msg := diffSchemas(a.Schema, b.Schema); msg != "" {
		return msg
	}
	if len(a.Samples) != len(b.Samples) {
		return fmt.Sprintf("sample count: oracle has %d, got %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if msg := diffSamples(a.Samples[i], b.Samples[i], a.Schema, tol); msg != "" {
			return fmt.Sprintf("sample %d (%s): %s", i, a.Samples[i].ID, msg)
		}
	}
	return ""
}

func diffSchemas(a, b *gdm.Schema) string {
	if a.Len() != b.Len() {
		return fmt.Sprintf("schema width: oracle %s, got %s", a, b)
	}
	for i := 0; i < a.Len(); i++ {
		fa, fb := a.Field(i), b.Field(i)
		if fa.Name != fb.Name || fa.Type != fb.Type {
			return fmt.Sprintf("schema field %d: oracle %s:%s, got %s:%s",
				i, fa.Name, fa.Type, fb.Name, fb.Type)
		}
	}
	return ""
}

func diffSamples(a, b *gdm.Sample, schema *gdm.Schema, tol float64) string {
	if a.ID != b.ID {
		return fmt.Sprintf("sample ID: oracle %q, got %q", a.ID, b.ID)
	}
	if msg := diffMeta(a.Meta, b.Meta, tol); msg != "" {
		return msg
	}
	if len(a.Regions) != len(b.Regions) {
		return fmt.Sprintf("region count: oracle %d, got %d", len(a.Regions), len(b.Regions))
	}
	for ri := range a.Regions {
		ra, rb := &a.Regions[ri], &b.Regions[ri]
		if ra.Chrom != rb.Chrom || ra.Start != rb.Start || ra.Stop != rb.Stop || ra.Strand != rb.Strand {
			return fmt.Sprintf("region %d coordinates: oracle %s:%d-%d/%v, got %s:%d-%d/%v",
				ri, ra.Chrom, ra.Start, ra.Stop, ra.Strand, rb.Chrom, rb.Start, rb.Stop, rb.Strand)
		}
		if len(ra.Values) != len(rb.Values) {
			return fmt.Sprintf("region %d value arity: oracle %d, got %d", ri, len(ra.Values), len(rb.Values))
		}
		for vi := range ra.Values {
			if !valuesEqual(ra.Values[vi], rb.Values[vi], tol) {
				name := fmt.Sprintf("#%d", vi)
				if vi < schema.Len() {
					name = schema.Field(vi).Name
				}
				return fmt.Sprintf("region %d (%s:%d-%d) attribute %s: oracle %v, got %v",
					ri, ra.Chrom, ra.Start, ra.Stop, name, ra.Values[vi], rb.Values[vi])
			}
		}
	}
	return ""
}

// diffMeta compares metadata as multisets of (attr, value) pairs.
// Metadata.Pairs returns pairs sorted by attribute then value, so multiset
// equality is positional equality of the pair lists — except that numeric
// values (aggregate results like an AVG rendered to a string) compare under
// the tolerance.
func diffMeta(a, b *gdm.Metadata, tol float64) string {
	pa, pb := a.Pairs(), b.Pairs()
	if len(pa) != len(pb) {
		return fmt.Sprintf("metadata pair count: oracle %d, got %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i][0] != pb[i][0] {
			return fmt.Sprintf("metadata attr: oracle %q, got %q", pa[i][0], pb[i][0])
		}
		if pa[i][1] == pb[i][1] {
			continue
		}
		fa, errA := strconv.ParseFloat(strings.TrimSpace(pa[i][1]), 64)
		fb, errB := strconv.ParseFloat(strings.TrimSpace(pb[i][1]), 64)
		if errA == nil && errB == nil && floatsClose(fa, fb, tol) {
			continue
		}
		return fmt.Sprintf("metadata %s: oracle %q, got %q", pa[i][0], pa[i][1], pb[i][1])
	}
	return ""
}

func valuesEqual(a, b gdm.Value, tol float64) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case gdm.KindFloat:
		return floatsClose(a.Float(), b.Float(), tol)
	case gdm.KindInt:
		return a.Int() == b.Int()
	case gdm.KindBool:
		return a.Bool() == b.Bool()
	default:
		return a.Str() == b.Str()
	}
}

// floatsClose applies a combined absolute/relative tolerance. NaNs compare
// equal to each other (an aggregate over no parseable values is NaN in every
// backend).
func floatsClose(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}
