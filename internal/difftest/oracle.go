package difftest

import (
	"context"
	"fmt"
	"net/http/httptest"

	"genogo/internal/engine"
	"genogo/internal/federation"
	"genogo/internal/gdm"
	"genogo/internal/gmql"
	"genogo/internal/synth"
)

// Catalog sizes. Small on purpose: the oracle's value is breadth of scripts,
// not dataset scale, and JOIN/MAP sample counts multiply.
const (
	encodeSamples = 5
	peaksSamples  = 4
	annotGenes    = 24
)

// BuildCatalog builds the three base datasets every generated script draws
// from, deterministically from one seed:
//
//	ENCODE — 5 ChIP-seq-like samples (p_value, signal) with ENCODE metadata
//	PEAKS  — 4 more of the same shape, independently drawn
//	ANNOT  — promoters + genes annotation tracks (name)
func BuildCatalog(seed int64) engine.MapCatalog {
	g := synth.New(seed)
	enc := g.Encode(synth.EncodeOptions{Samples: encodeSamples, MeanPeaks: 12})
	enc.Name = "ENCODE"
	g2 := synth.New(seed + 1)
	peaks := g2.Encode(synth.EncodeOptions{Samples: peaksSamples, MeanPeaks: 10})
	peaks.Name = "PEAKS"
	ann := g.Annotations(g.Genes(annotGenes))
	ann.Name = "ANNOT"
	return engine.MapCatalog{"ENCODE": enc, "PEAKS": peaks, "ANNOT": ann}
}

// ExecConfig is one execution configuration of the matrix.
type ExecConfig struct {
	Name string
	Cfg  engine.Config
}

// Matrix returns the execution configurations every case runs under. The
// first entry is the oracle (serial reference execution); the rest must
// agree with it. All configurations validate operator-output invariants
// (canonical region order, schema-width arity, typed values) on every plan
// node — the invariant half of the differential check.
func Matrix() []ExecConfig {
	base := func(m engine.Mode, workers int, noFusion bool) engine.Config {
		return engine.Config{
			Mode: m, Workers: workers, MetaFirst: true,
			DisableFusion: noFusion, ValidateOutputs: true,
		}
	}
	return []ExecConfig{
		{Name: "serial", Cfg: base(engine.ModeSerial, 1, false)},
		{Name: "batch/w1", Cfg: base(engine.ModeBatch, 1, false)},
		{Name: "batch/w4", Cfg: base(engine.ModeBatch, 4, false)},
		{Name: "stream/w1", Cfg: base(engine.ModeStream, 1, false)},
		{Name: "stream/w4", Cfg: base(engine.ModeStream, 4, false)},
		{Name: "stream/w1/nofuse", Cfg: base(engine.ModeStream, 1, true)},
		{Name: "stream/w4/nofuse", Cfg: base(engine.ModeStream, 4, true)},
	}
}

// Options parametrizes a differential case run.
type Options struct {
	// DatasetSeed seeds BuildCatalog. Zero means 1.
	DatasetSeed int64
	// Tolerance for float comparison; zero means DefaultTolerance.
	Tolerance float64
	// Federation adds a single-node federation round-trip (execute the
	// script on an HTTP federation node, fetch the result in chunks,
	// compare against the serial oracle).
	Federation bool
	// Catalog, when non-nil, overrides BuildCatalog(DatasetSeed) — the
	// campaign runner shares one catalog across cases.
	Catalog engine.MapCatalog
	// Storage, when non-nil, adds the storage-format axis: the same script
	// read back from disk materializations (text and columnar layouts, the
	// columnar ones through pruned reads), compared to the in-memory oracle.
	Storage *StorageCatalogs
}

// ConfigResult is the outcome of one execution configuration on one case.
type ConfigResult struct {
	Config string `json:"config"`
	// Err is the execution error, if any. An error matching the oracle's
	// error is agreement, not divergence.
	Err string `json:"err,omitempty"`
	// Diff describes the first difference against the oracle; "" is
	// agreement.
	Diff string `json:"diff,omitempty"`
}

// Diverged reports whether this configuration disagreed with the oracle.
func (c ConfigResult) Diverged() bool { return c.Diff != "" }

// CaseResult is the outcome of one generated script across the matrix.
type CaseResult struct {
	Seed        int64          `json:"seed"`
	DatasetSeed int64          `json:"dataset_seed"`
	Script      string         `json:"script"`
	Ops         map[string]int `json:"ops"`
	// OracleErr is the serial execution's error, if any. When the oracle
	// errors, agreement means every configuration errors too (error texts
	// may differ across modes; only the error-ness must agree).
	OracleErr string         `json:"oracle_err,omitempty"`
	Results   []ConfigResult `json:"results,omitempty"`
	// Minimized is the smallest sub-script that still diverges, present
	// only on divergence.
	Minimized string `json:"minimized,omitempty"`
}

// Diverged reports whether any configuration disagreed with the oracle.
func (c *CaseResult) Diverged() bool {
	for _, r := range c.Results {
		if r.Diverged() {
			return true
		}
	}
	return false
}

// RunCase generates the script of one seed and runs it through the whole
// matrix, comparing every configuration against the serial oracle. On
// divergence the result carries a minimized reproducer.
func RunCase(seed int64, opts Options) *CaseResult {
	if opts.DatasetSeed == 0 {
		opts.DatasetSeed = 1
	}
	cat := opts.Catalog
	if cat == nil {
		cat = BuildCatalog(opts.DatasetSeed)
	}
	script := Generate(seed)
	res := &CaseResult{
		Seed:        seed,
		DatasetSeed: opts.DatasetSeed,
		Script:      script.Text(),
		Ops:         script.Ops,
	}
	runMatrix(res, script.Text(), script.Final, cat, opts)
	if res.Diverged() {
		res.Minimized = Minimize(script, func(text, final string) bool {
			probe := &CaseResult{}
			runMatrix(probe, text, final, cat, opts)
			return probe.Diverged()
		})
	}
	return res
}

// runMatrix executes one script text under every configuration and fills
// res.OracleErr / res.Results.
func runMatrix(res *CaseResult, text, final string, cat engine.MapCatalog, opts Options) {
	prog, err := gmql.Parse(text)
	if err != nil {
		// The generator's contract is to emit parseable scripts; a parse
		// error is a harness bug and counts as an oracle error so the case
		// is surfaced, never silently skipped.
		res.OracleErr = fmt.Sprintf("generator emitted unparseable script: %v", err)
		return
	}
	matrix := Matrix()
	oracleCfg := matrix[0]
	oracle, oracleErr := (&gmql.Runner{Config: oracleCfg.Cfg, Catalog: cat}).Eval(prog, final)
	if oracleErr != nil {
		res.OracleErr = oracleErr.Error()
	}
	for _, ec := range matrix[1:] {
		cr := ConfigResult{Config: ec.Name}
		got, err := (&gmql.Runner{Config: ec.Cfg, Catalog: cat}).Eval(prog, final)
		switch {
		case err != nil && oracleErr != nil:
			// Both error: agreement.
			cr.Err = err.Error()
		case err != nil:
			cr.Err = err.Error()
			cr.Diff = fmt.Sprintf("config errored but oracle succeeded: %v", err)
		case oracleErr != nil:
			cr.Diff = "config succeeded but oracle errored: " + oracleErr.Error()
		default:
			cr.Diff = Diff(oracle, got, opts.Tolerance)
		}
		res.Results = append(res.Results, cr)
	}
	for _, sc := range storageMatrix(opts.Storage) {
		cr := ConfigResult{Config: sc.Name}
		got, err := (&gmql.Runner{Config: sc.Cfg, Catalog: sc.Cat}).Eval(prog, final)
		switch {
		case err != nil && oracleErr != nil:
			cr.Err = err.Error()
		case err != nil:
			cr.Err = err.Error()
			cr.Diff = fmt.Sprintf("config errored but oracle succeeded: %v", err)
		case oracleErr != nil:
			cr.Diff = "config succeeded but oracle errored: " + oracleErr.Error()
		default:
			cr.Diff = Diff(oracle, got, opts.Tolerance)
		}
		res.Results = append(res.Results, cr)
	}
	if opts.Federation {
		cr := ConfigResult{Config: "federation"}
		got, err := runFederated(text, final, cat)
		switch {
		case err != nil && oracleErr != nil:
			cr.Err = err.Error()
		case err != nil:
			cr.Err = err.Error()
			cr.Diff = fmt.Sprintf("federation errored but oracle succeeded: %v", err)
		case oracleErr != nil:
			cr.Diff = "federation succeeded but oracle errored: " + oracleErr.Error()
		default:
			cr.Diff = Diff(oracle, got, opts.Tolerance)
		}
		res.Results = append(res.Results, cr)
	}
}

// runFederated executes the script on a single in-process federation node
// (stream mode, 4 workers) and fetches the staged result in small chunks —
// the full execute/stage/chunked-retrieval wire path of Section 4.3.
func runFederated(text, final string, cat engine.MapCatalog) (*gdm.Dataset, error) {
	cfg := engine.Config{Mode: engine.ModeStream, Workers: 4, MetaFirst: true, ValidateOutputs: true}
	srv := federation.NewServer("difftest-node", cfg,
		cat["ENCODE"], cat["PEAKS"], cat["ANNOT"])
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := federation.NewClient(ts.URL)
	ctx := context.Background()
	resp, err := client.Execute(ctx, text, final)
	if err != nil {
		return nil, err
	}
	return client.FetchAll(ctx, resp.ResultID, 3)
}
