package difftest

// Minimize shrinks a diverging script to the smallest sub-script that still
// fails. fails must report whether a candidate script (text + materialized
// variable) still diverges.
//
// The strategy exploits the generator's structure instead of generic
// delta-debugging: every variable's dependency closure is itself a valid
// script, and the closures form a lattice ordered by statement count. Trying
// the variables in increasing closure size finds the earliest diverging
// operator with O(#statements) oracle runs — on a 5-statement script that is
// at most 5 probes, each over a dataset of a few hundred regions.
//
// The returned text is the smallest failing closure, or the full script when
// no strict sub-script reproduces the divergence (e.g. the divergence needs
// the final statement, which depends on everything).
func Minimize(s *Script, fails func(text, final string) bool) string {
	type cand struct {
		v    string
		size int
	}
	// Closure sizes, computed the same way TextFor closes deps.
	closure := make(map[string]map[string]bool, len(s.Stmts))
	for _, st := range s.Stmts {
		set := map[string]bool{st.Var: true}
		for _, d := range st.Deps {
			for v := range closure[d] {
				set[v] = true
			}
		}
		closure[st.Var] = set
	}
	cands := make([]cand, 0, len(s.Stmts))
	for _, st := range s.Stmts {
		cands = append(cands, cand{v: st.Var, size: len(closure[st.Var])})
	}
	// Stable by construction order; sort by closure size ascending so the
	// first failing candidate is minimal.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].size < cands[j-1].size; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	for _, c := range cands {
		text := s.TextFor(c.v)
		if fails(text, c.v) {
			return text
		}
	}
	return s.Text()
}
