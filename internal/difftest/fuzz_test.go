package difftest

import "testing"

// FuzzDifferential feeds generator seeds to the differential oracle: Go's
// fuzzer mutates the seed, the seed deterministically expands into a GMQL
// script, and the script must agree across every backend. Any crasher the
// fuzzer saves IS the reproducer: re-running the seed regenerates the
// script, and the failure message carries the minimized sub-script.
func FuzzDifferential(f *testing.F) {
	for _, s := range []int64{1, 42, 1000, 31337} {
		f.Add(s)
	}
	cat := BuildCatalog(1)
	f.Fuzz(func(t *testing.T, seed int64) {
		res := RunCase(seed, Options{DatasetSeed: 1, Catalog: cat})
		if res.OracleErr != "" {
			// Degenerate scripts (all modes agree on an error) are fine;
			// only disagreement is a finding.
			if res.Diverged() {
				t.Fatalf("seed %d: modes disagree about the error:\n%s\nresults: %+v",
					seed, res.Script, res.Results)
			}
			return
		}
		if res.Diverged() {
			t.Fatalf("seed %d diverged:\n%s\nminimized reproducer:\n%s\nresults: %+v",
				seed, res.Script, res.Minimized, res.Results)
		}
	})
}
