package difftest

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"sync"
)

// CampaignOptions parametrizes a fuzzing campaign: Seeds consecutive
// generator seeds starting at Start, each run through the full matrix.
type CampaignOptions struct {
	// Context, when non-nil, cancels the campaign between cases: workers
	// stop picking up new seeds once it is done, finished cases are kept,
	// and the report comes back marked Canceled. Nil means run to
	// completion.
	Context context.Context
	// Start is the first generator seed; the campaign covers
	// [Start, Start+Seeds).
	Start int64
	// Seeds is the number of cases. Zero means 200.
	Seeds int
	// DatasetSeed seeds the shared catalog (zero means 1).
	DatasetSeed int64
	// Tolerance for float comparison; zero means DefaultTolerance.
	Tolerance float64
	// Federation adds the federation round-trip to every FederationEvery-th
	// case (the HTTP round-trip dominates runtime, so it is sampled).
	Federation bool
	// Storage adds the storage-format axis to every case: the shared catalog
	// is materialized once (text and columnar layouts) into a temporary
	// directory and each script additionally executes against the disk
	// copies, the columnar ones through pruned reads.
	Storage bool
	// FederationEvery samples the federation round-trip; zero means 10.
	FederationEvery int
	// Jobs bounds campaign parallelism; zero means 4. Case-level
	// parallelism is safe: the catalog is shared read-only (operator
	// kernels never mutate their inputs) and each case gets its own
	// engine sessions.
	Jobs int
}

// Report is the machine-readable campaign outcome — the JSON artifact
// cmd/gmqldiff emits and CI uploads.
type Report struct {
	Start       int64 `json:"start"`
	Seeds       int   `json:"seeds"`
	DatasetSeed int64 `json:"dataset_seed"`
	// Agreed counts cases where every configuration matched the oracle.
	Agreed int `json:"agreed"`
	// OracleErrors counts cases whose serial execution errored (every
	// configuration agreed on erroring — these are degenerate scripts, not
	// divergences).
	OracleErrors int `json:"oracle_errors"`
	// Diverged holds every diverging case, with minimized reproducers.
	Diverged []*CaseResult `json:"diverged,omitempty"`
	// OpCoverage counts operator keywords across all generated scripts —
	// the per-operator coverage evidence of the campaign.
	OpCoverage map[string]int `json:"op_coverage"`
	// Configs names the matrix the campaign ran.
	Configs []string `json:"configs"`
	// Federation reports whether the federation round-trip was sampled.
	Federation bool    `json:"federation"`
	Tolerance  float64 `json:"tolerance"`
	// Canceled reports a campaign cut short by its Context; counts cover
	// only the cases that actually ran.
	Canceled bool `json:"canceled,omitempty"`
	// Completed counts the cases that ran (equals Seeds unless Canceled).
	Completed int `json:"completed"`
}

// RunCampaign runs a full campaign and aggregates the report.
func RunCampaign(opts CampaignOptions) *Report {
	if opts.Seeds == 0 {
		opts.Seeds = 200
	}
	if opts.DatasetSeed == 0 {
		opts.DatasetSeed = 1
	}
	if opts.FederationEvery <= 0 {
		opts.FederationEvery = 10
	}
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = 4
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	cat := BuildCatalog(opts.DatasetSeed)
	var storage *StorageCatalogs
	var storageErr error
	if opts.Storage {
		dir, err := os.MkdirTemp("", "gmqldiff-storage-")
		if err == nil {
			defer os.RemoveAll(dir)
			storage, err = BuildStorageCatalogs(dir, cat)
		}
		// A storage axis that cannot be built must fail loudly, not silently
		// shrink the matrix; the error is reported as a synthetic divergence.
		storageErr = err
	}
	results := make([]*CaseResult, opts.Seeds)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					return
				}
				seed := opts.Start + int64(i)
				co := Options{
					DatasetSeed: opts.DatasetSeed,
					Tolerance:   opts.Tolerance,
					Catalog:     cat,
					Storage:     storage,
					Federation:  opts.Federation && i%opts.FederationEvery == 0,
				}
				results[i] = RunCase(seed, co)
			}
		}()
	}
dispatch:
	for i := 0; i < opts.Seeds; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()

	rep := &Report{
		Start:       opts.Start,
		Seeds:       opts.Seeds,
		DatasetSeed: opts.DatasetSeed,
		OpCoverage:  make(map[string]int),
		Federation:  opts.Federation,
		Tolerance:   opts.Tolerance,
	}
	if rep.Tolerance == 0 {
		rep.Tolerance = DefaultTolerance
	}
	for _, ec := range Matrix() {
		rep.Configs = append(rep.Configs, ec.Name)
	}
	if storage != nil {
		rep.Configs = append(rep.Configs, StorageConfigNames()...)
	}
	if opts.Federation {
		rep.Configs = append(rep.Configs, "federation")
	}
	if storageErr != nil {
		rep.Diverged = append(rep.Diverged, &CaseResult{
			Script: "(storage axis setup)",
			Results: []ConfigResult{{
				Config: "storage-setup",
				Err:    storageErr.Error(),
				Diff:   "storage catalogs could not be built: " + storageErr.Error(),
			}},
		})
	}
	rep.Canceled = ctx.Err() != nil
	for _, cr := range results {
		if cr == nil { // seed never ran: campaign canceled
			continue
		}
		rep.Completed++
		for op, n := range cr.Ops {
			rep.OpCoverage[op] += n
		}
		switch {
		case cr.Diverged():
			// Drop the per-config agreement noise from the artifact; keep
			// only what reproduces the bug.
			rep.Diverged = append(rep.Diverged, cr)
		case cr.OracleErr != "":
			rep.OracleErrors++
		default:
			rep.Agreed++
		}
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
