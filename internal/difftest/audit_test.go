package difftest

// Satellite audit of the two most order-sensitive kernels (ISSUE 4): JOIN
// tie-breaking under MD(k) and COVER boundary semantics. These tests pin the
// semantics with hand-built inputs whose expected outputs are computed by
// hand, and assert every backend of the matrix produces exactly them — so a
// future kernel rewrite that changes a tie-break or an off-by-one boundary
// fails here with a readable counterexample, not just in a fuzz campaign.

import (
	"testing"

	"genogo/internal/engine"
	"genogo/internal/gdm"
	"genogo/internal/gmql"
)

// runAcross runs one script on a catalog under every matrix configuration
// and asserts agreement with the serial result, returning the serial result.
func runAcross(t *testing.T, cat engine.MapCatalog, text, final string) *gdm.Dataset {
	t.Helper()
	prog, err := gmql.Parse(text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	matrix := Matrix()
	oracle, err := (&gmql.Runner{Config: matrix[0].Cfg, Catalog: cat}).Eval(prog, final)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for _, ec := range matrix[1:] {
		got, err := (&gmql.Runner{Config: ec.Cfg, Catalog: cat}).Eval(prog, final)
		if err != nil {
			t.Fatalf("%s: %v", ec.Name, err)
		}
		if diff := Diff(oracle, got, 0); diff != "" {
			t.Fatalf("%s diverged from serial: %s", ec.Name, diff)
		}
	}
	return oracle
}

// TestJoinMDTieBreaking: an anchor with two experiment regions at exactly
// equal distance. MD(1) must pick deterministically — ties break by
// canonical region order, so the leftmost equidistant region wins — and
// every backend must pick the same one.
func TestJoinMDTieBreaking(t *testing.T) {
	schema := gdm.MustSchema(gdm.Field{Name: "tag", Type: gdm.KindString})
	anchors := gdm.NewDataset("A", schema)
	sa := gdm.NewSample("a1")
	sa.AddRegion(gdm.NewRegion("chr1", 100, 200, gdm.StrandNone, gdm.Str("anchor")))
	sa.SortRegions()
	anchors.MustAdd(sa)

	exps := gdm.NewDataset("B", schema)
	sb := gdm.NewSample("b1")
	// Both at distance 40 from [100,200): [40,60) on the left, [240,260) on
	// the right.
	sb.AddRegion(gdm.NewRegion("chr1", 40, 60, gdm.StrandNone, gdm.Str("leftward")))
	sb.AddRegion(gdm.NewRegion("chr1", 240, 260, gdm.StrandNone, gdm.Str("rightward")))
	sb.SortRegions()
	exps.MustAdd(sb)

	cat := engine.MapCatalog{"A": anchors, "B": exps}
	out := runAcross(t, cat, "V1 = JOIN(MD(1); output: RIGHT) A B;\nMATERIALIZE V1;\n", "V1")

	if len(out.Samples) != 1 || len(out.Samples[0].Regions) != 1 {
		t.Fatalf("MD(1) should emit exactly one region, got %s", out)
	}
	r := out.Samples[0].Regions[0]
	if r.Start != 40 || r.Stop != 60 {
		t.Fatalf("MD(1) tie must resolve to the canonically first (leftmost) region [40,60), got [%d,%d)", r.Start, r.Stop)
	}
	// tag (anchor) then right.tag (experiment) in the merged schema.
	if got := r.Values[1].Str(); got != "leftward" {
		t.Fatalf("MD(1) tie winner should be %q, got %q", "leftward", got)
	}
}

// TestCoverBoundarySemantics: hand-computed accumulation profile. Two
// overlapping regions [0,100) and [50,150):
//
//	depth 1 on [0,50), depth 2 on [50,100), depth 1 on [100,150)
//
// COVER(2,2) must emit exactly [50,100) (half-open boundaries, no
// off-by-one at the depth transitions), HISTOGRAM(1,ANY) must emit all
// three constant-depth segments, and COVER(1,ANY) must merge the whole
// profile into [0,150) with acc_index = max depth 2.
func TestCoverBoundarySemantics(t *testing.T) {
	schema := gdm.MustSchema(gdm.Field{Name: "v", Type: gdm.KindFloat})
	ds := gdm.NewDataset("D", schema)
	s1 := gdm.NewSample("s1")
	s1.AddRegion(gdm.NewRegion("chr1", 0, 100, gdm.StrandNone, gdm.Float(1)))
	s1.SortRegions()
	s2 := gdm.NewSample("s2")
	s2.AddRegion(gdm.NewRegion("chr1", 50, 150, gdm.StrandNone, gdm.Float(2)))
	s2.SortRegions()
	ds.MustAdd(s1)
	ds.MustAdd(s2)
	cat := engine.MapCatalog{"D": ds}

	type want struct{ start, stop, depth int64 }
	cases := []struct {
		name, script string
		want         []want
	}{
		{"cover-2-2", "V1 = COVER(2, 2) D;\nMATERIALIZE V1;\n",
			[]want{{50, 100, 2}}},
		{"histogram-1-any", "V1 = HISTOGRAM(1, ANY) D;\nMATERIALIZE V1;\n",
			[]want{{0, 50, 1}, {50, 100, 2}, {100, 150, 1}}},
		{"cover-1-any", "V1 = COVER(1, ANY) D;\nMATERIALIZE V1;\n",
			[]want{{0, 150, 2}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := runAcross(t, cat, tc.script, "V1")
			if len(out.Samples) != 1 {
				t.Fatalf("want one output sample, got %d", len(out.Samples))
			}
			regs := out.Samples[0].Regions
			if len(regs) != len(tc.want) {
				t.Fatalf("want %d regions, got %s", len(tc.want), out)
			}
			for i, w := range tc.want {
				r := regs[i]
				if r.Start != w.start || r.Stop != w.stop || r.Values[0].Int() != w.depth {
					t.Fatalf("region %d: want [%d,%d) depth %d, got [%d,%d) depth %d",
						i, w.start, w.stop, w.depth, r.Start, r.Stop, r.Values[0].Int())
				}
			}
		})
	}
}
