package difftest

import (
	"os"
	"path/filepath"

	"genogo/internal/engine"
	"genogo/internal/formats"
)

// StorageCatalogs holds disk materializations of a case catalog in both
// layouts — the storage-format axis of the differential matrix. Built once
// per campaign (the writes are the expensive part); each configuration then
// reads through the real verified-load paths, the columnar ones through the
// partition-level pruned reads.
type StorageCatalogs struct {
	// Text reads the native text materialization (full verified loads).
	Text engine.Catalog
	// Columnar reads the binary columnar materialization through
	// formats.DirCatalog, which implements engine.PrunedCatalog — so
	// SELECT/JOIN/MAP over scans exercise the pruned-read path against the
	// in-memory oracle.
	Columnar engine.Catalog
}

// BuildStorageCatalogs materializes cat into dir (one subtree per layout) and
// returns disk-backed catalogs over the two copies.
func BuildStorageCatalogs(dir string, cat engine.MapCatalog) (*StorageCatalogs, error) {
	textRoot, colRoot := filepath.Join(dir, "text"), filepath.Join(dir, "columnar")
	for _, root := range []string{textRoot, colRoot} {
		if err := os.MkdirAll(root, 0o755); err != nil {
			return nil, err
		}
	}
	for name, ds := range cat {
		if err := formats.WriteDataset(filepath.Join(textRoot, name), ds); err != nil {
			return nil, err
		}
		if err := formats.WriteDatasetColumnar(filepath.Join(colRoot, name), ds); err != nil {
			return nil, err
		}
	}
	return &StorageCatalogs{
		Text:     formats.NewDirCatalog(textRoot),
		Columnar: formats.NewDirCatalog(colRoot),
	}, nil
}

// storageConfig is one storage-axis execution configuration: a backend
// configuration plus the disk catalog it reads.
type storageConfig struct {
	Name string
	Cfg  engine.Config
	Cat  engine.Catalog
}

// storageMatrix is the storage-format axis: the same scripts, read back from
// disk. text-disk proves the text write→read round-trip; the columnar
// entries prove the binary decode and that pruned reads are invisible to
// results under serial and stream×fusion scheduling; the noprune entry pins
// pruned ≡ unpruned over identical bytes.
func storageMatrix(sc *StorageCatalogs) []storageConfig {
	if sc == nil {
		return nil
	}
	base := func(m engine.Mode, workers int, noPrune bool) engine.Config {
		return engine.Config{
			Mode: m, Workers: workers, MetaFirst: true,
			DisablePruning: noPrune, ValidateOutputs: true,
		}
	}
	return []storageConfig{
		{Name: "text-disk/serial", Cfg: base(engine.ModeSerial, 1, false), Cat: sc.Text},
		{Name: "columnar/serial", Cfg: base(engine.ModeSerial, 1, false), Cat: sc.Columnar},
		{Name: "columnar/stream/w4", Cfg: base(engine.ModeStream, 4, false), Cat: sc.Columnar},
		{Name: "columnar/serial/noprune", Cfg: base(engine.ModeSerial, 1, true), Cat: sc.Columnar},
	}
}

// StorageConfigNames lists the storage-axis configuration names, for reports.
func StorageConfigNames() []string {
	var names []string
	for _, sc := range storageMatrix(&StorageCatalogs{}) {
		names = append(names, sc.Name)
	}
	return names
}
