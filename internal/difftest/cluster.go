package difftest

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"genogo/internal/engine"
	"genogo/internal/federation"
	"genogo/internal/gmql"
	"genogo/internal/resilience"
)

// The cluster chaos soak: every iteration stands up a real replicated
// federation (three HTTP members, each holding the full catalog), runs one
// generated script through it while a seeded fault scenario kills, restarts,
// or slows members mid-query, and compares the merged result against the
// serial single-node oracle.
//
// The property under test is the replicated-federation exactness invariant:
// whenever every replica group keeps at least one member that was never
// faulted, the coordinator must return a result byte-identical to the
// no-failure run — failover and hedging are not allowed to lose samples,
// double-count them (the overlap placement makes every sample arrive twice),
// or degrade the answer to a partial one.

// Cluster fault scenarios, drawn per iteration from the fault seed.
const (
	scenarioNone    = iota // no faults: replication must be invisible
	scenarioPreKill        // one member dead before the query; prober steers
	scenarioMidKill        // kill fuse fires mid-query: failover path
	scenarioRestart        // kill then restart under retry: recovery path
	scenarioSlow           // one slow member with hedging on: hedge path
	numScenarios
)

func scenarioName(s int) string {
	switch s {
	case scenarioNone:
		return "none"
	case scenarioPreKill:
		return "pre-kill"
	case scenarioMidKill:
		return "mid-kill"
	case scenarioRestart:
		return "kill-restart"
	case scenarioSlow:
		return "slow-hedged"
	default:
		return "?"
	}
}

// clusterMembers is the federation size of every soak iteration.
const clusterMembers = 3

// ClusterOptions parametrizes one cluster chaos iteration.
type ClusterOptions struct {
	// ScriptSeed seeds the script generator.
	ScriptSeed int64
	// FaultSeed seeds the fault scenario (which members die, when).
	FaultSeed int64
	// DatasetSeed seeds BuildCatalog (zero means 1). Ignored when Catalog is
	// set.
	DatasetSeed int64
	// Catalog, when non-nil, is shared across iterations.
	Catalog engine.MapCatalog
	// Tolerance for float comparison; zero means DefaultTolerance.
	Tolerance float64
}

// ClusterResult is the outcome of one chaos iteration.
type ClusterResult struct {
	ScriptSeed int64  `json:"script_seed"`
	FaultSeed  int64  `json:"fault_seed"`
	Script     string `json:"script"`
	Scenario   string `json:"scenario"`
	Placement  string `json:"placement"`
	// InvariantHeld reports whether every replica group kept at least one
	// never-faulted member — the precondition for demanding exactness.
	InvariantHeld bool   `json:"invariant_held"`
	OracleErr     string `json:"oracle_err,omitempty"`
	FedErr        string `json:"fed_err,omitempty"`
	// Partial reports a successful query that returned a partial-failure
	// report (legal only when the invariant did not hold).
	Partial bool `json:"partial,omitempty"`
	// Diff is the first difference against the oracle ("" is agreement).
	Diff string `json:"diff,omitempty"`
	// Divergence states the violated expectation; "" means the iteration
	// agreed with the model.
	Divergence string `json:"divergence,omitempty"`
}

// Diverged reports whether the iteration violated the exactness model.
func (c *ClusterResult) Diverged() bool { return c.Divergence != "" }

// slowWrap delays every request by d (context-aware, so canceled hedge
// losers do not hold the handler).
func slowWrap(h http.Handler, d time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(d):
		case <-r.Context().Done():
			return
		}
		h.ServeHTTP(w, r)
	})
}

// RunClusterCase runs one chaos iteration: oracle, cluster, faults, query,
// classification.
func RunClusterCase(opts ClusterOptions) *ClusterResult {
	if opts.DatasetSeed == 0 {
		opts.DatasetSeed = 1
	}
	cat := opts.Catalog
	if cat == nil {
		cat = BuildCatalog(opts.DatasetSeed)
	}
	script := Generate(opts.ScriptSeed)
	res := &ClusterResult{
		ScriptSeed: opts.ScriptSeed,
		FaultSeed:  opts.FaultSeed,
		Script:     script.Text(),
	}
	prog, err := gmql.Parse(script.Text())
	if err != nil {
		res.Divergence = "generator emitted unparseable script: " + err.Error()
		return res
	}
	oracle, oracleErr := (&gmql.Runner{
		Config:  engine.Config{Mode: engine.ModeSerial, Workers: 1, MetaFirst: true, ValidateOutputs: true},
		Catalog: cat,
	}).Eval(prog, script.Final)
	if oracleErr != nil {
		res.OracleErr = oracleErr.Error()
	}

	rng := rand.New(rand.NewSource(opts.FaultSeed))
	scenario := rng.Intn(numScenarios)
	res.Scenario = scenarioName(scenario)
	victim := rng.Intn(clusterMembers)

	// Full replication: every member holds the whole catalog, so any leg's
	// surviving replica can serve the complete answer for its units and the
	// exactness invariant applies to arbitrary generated scripts (including
	// cross-sample operators like MERGE and COVER, which are only shard-safe
	// when each replica sees all samples).
	cfg := engine.Config{Mode: engine.ModeStream, Workers: 4, MetaFirst: true, ValidateOutputs: true}
	outages := make([]*resilience.Outage, clusterMembers)
	clients := make([]*federation.Client, clusterMembers)
	for i := 0; i < clusterMembers; i++ {
		srv := federation.NewServer(fmt.Sprintf("chaos-m%d", i), cfg,
			cat["ENCODE"], cat["PEAKS"], cat["ANNOT"])
		outages[i] = resilience.NewOutage()
		var h http.Handler = outages[i].Wrap(srv.Handler())
		if scenario == scenarioSlow && i == victim {
			h = slowWrap(h, 40*time.Millisecond)
		}
		ts := httptest.NewServer(h)
		defer ts.Close()
		clients[i] = federation.NewClient(ts.URL,
			federation.WithRetrier(&resilience.Retrier{
				MaxAttempts: 3,
				BaseDelay:   time.Millisecond,
				MaxDelay:    5 * time.Millisecond,
			}))
	}

	// Placement variant: one fully replicated group, or overlapping pairs.
	// The overlap layout makes every leg return the complete answer, so each
	// sample arrives from multiple legs and the merge's identity dedup is on
	// the critical path of every iteration that uses it.
	var placement *federation.Placement
	if rng.Intn(2) == 0 {
		res.Placement = "single-group-r3"
		placement = federation.NewPlacement().
			Register("ENCODE", 0, 1, 2).
			Register("PEAKS", 0, 1, 2).
			Register("ANNOT", 0, 1, 2)
	} else {
		res.Placement = "overlap-r2"
		placement = federation.NewPlacement().
			Register("ENCODE", 0, 1).
			Register("PEAKS", 1, 2).
			Register("ANNOT", 0, 2)
	}

	// Apply the fault scenario and record which members stay clean.
	faulted := make([]bool, clusterMembers)
	var prober *federation.Prober
	hedge := federation.HedgePolicy{}
	switch scenario {
	case scenarioPreKill:
		outages[victim].Kill()
		faulted[victim] = true
		prober = federation.NewProber(clients)
		prober.Interval = time.Hour
		for i := 0; i < 3; i++ {
			prober.ProbeAll(context.Background())
		}
	case scenarioMidKill:
		// The fuse fires on the n-th request the victim begins — execute,
		// a chunk fetch, or the release — and that request dies with it.
		outages[victim].KillAfter(1 + rng.Intn(5))
		faulted[victim] = true
	case scenarioRestart:
		outages[victim].KillAfter(1 + rng.Intn(3))
		outages[victim].RestartAfter(1 + rng.Intn(3))
		faulted[victim] = true
	case scenarioSlow:
		hedge = federation.HedgePolicy{Enabled: true, Delay: 2 * time.Millisecond}
	}

	res.InvariantHeld = true
	for _, g := range placement.Groups() {
		live := false
		for _, m := range g.Members {
			if !faulted[m] {
				live = true
				break
			}
		}
		if !live {
			res.InvariantHeld = false
		}
	}

	fed := &federation.Federator{
		Clients:   clients,
		Policy:    federation.Policy{AllowPartial: true},
		Placement: placement,
		Prober:    prober,
		Hedge:     hedge,
	}
	got, report, fedErr := fed.Query(context.Background(), script.Text(), script.Final, 3)
	if fedErr != nil {
		res.FedErr = fedErr.Error()
	}
	res.Partial = report != nil

	// Classify against the model.
	switch {
	case oracleErr != nil:
		// A script the oracle rejects must fail on every member, so the
		// federated run must error too (no leg can answer).
		if fedErr == nil {
			res.Divergence = "cluster succeeded but oracle errored: " + res.OracleErr
		}
	case fedErr != nil:
		if res.InvariantHeld {
			res.Divergence = "cluster errored despite a live replica per group: " + res.FedErr
		}
	default:
		res.Diff = Diff(oracle, got, opts.Tolerance)
		if res.Diff != "" {
			// Any successful answer must be exact — partial answers drop whole
			// legs, and with full replication every surviving leg is complete,
			// so even a partial success is byte-comparable to the oracle only
			// when the invariant held.
			if res.InvariantHeld {
				res.Divergence = "result diverged from oracle: " + res.Diff
			} else if !res.Partial {
				res.Divergence = "non-partial result diverged from oracle: " + res.Diff
			}
		}
		if res.Partial && res.InvariantHeld {
			res.Divergence = "partial result despite a live replica per group"
		}
	}
	return res
}

// ClusterCampaignOptions parametrizes a chaos soak campaign.
type ClusterCampaignOptions struct {
	// Start is the first iteration seed; iteration i uses ScriptSeed
	// Start+i and FaultSeed Start+1000+i.
	Start int64
	// Iterations is the soak length. Zero means 50.
	Iterations int
	// DatasetSeed seeds the shared catalog (zero means 1).
	DatasetSeed int64
	// Tolerance for float comparison; zero means DefaultTolerance.
	Tolerance float64
	// Jobs bounds parallelism; zero means 4. Each iteration owns its own
	// cluster, so iterations are independent.
	Jobs int
}

// ClusterReport is the machine-readable soak outcome (the CI artifact).
type ClusterReport struct {
	Start       int64 `json:"start"`
	Iterations  int   `json:"iterations"`
	DatasetSeed int64 `json:"dataset_seed"`
	// Agreed counts iterations matching the exactness model.
	Agreed int `json:"agreed"`
	// Exact counts successful queries with a byte-identical result.
	Exact int `json:"exact"`
	// Partial counts legal partial results (a whole replica group dead).
	Partial int `json:"partial"`
	// Errored counts legal errors (oracle-rejected scripts or dead groups
	// under quorum).
	Errored int `json:"errored"`
	// Scenarios counts iterations per fault scenario.
	Scenarios map[string]int `json:"scenarios"`
	// Diverged holds every iteration that violated the model.
	Diverged  []*ClusterResult `json:"diverged,omitempty"`
	Tolerance float64          `json:"tolerance"`
}

// RunClusterCampaign soaks the replicated federation across seeded chaos
// iterations and aggregates the report.
func RunClusterCampaign(opts ClusterCampaignOptions) *ClusterReport {
	if opts.Iterations == 0 {
		opts.Iterations = 50
	}
	if opts.DatasetSeed == 0 {
		opts.DatasetSeed = 1
	}
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = 4
	}
	cat := BuildCatalog(opts.DatasetSeed)
	results := make([]*ClusterResult, opts.Iterations)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = RunClusterCase(ClusterOptions{
					ScriptSeed:  opts.Start + int64(i),
					FaultSeed:   opts.Start + 1000 + int64(i),
					DatasetSeed: opts.DatasetSeed,
					Catalog:     cat,
					Tolerance:   opts.Tolerance,
				})
			}
		}()
	}
	for i := 0; i < opts.Iterations; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	rep := &ClusterReport{
		Start:       opts.Start,
		Iterations:  opts.Iterations,
		DatasetSeed: opts.DatasetSeed,
		Scenarios:   make(map[string]int),
		Tolerance:   opts.Tolerance,
	}
	if rep.Tolerance == 0 {
		rep.Tolerance = DefaultTolerance
	}
	for _, cr := range results {
		rep.Scenarios[cr.Scenario]++
		if cr.Diverged() {
			rep.Diverged = append(rep.Diverged, cr)
			continue
		}
		rep.Agreed++
		switch {
		case cr.FedErr != "" || cr.OracleErr != "":
			rep.Errored++
		case cr.Partial:
			rep.Partial++
		default:
			rep.Exact++
		}
	}
	return rep
}

// WriteJSON writes the soak report as indented JSON.
func (r *ClusterReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
