package expr

import (
	"math"
	"testing"
	"testing/quick"

	"genogo/internal/gdm"
)

func TestParseAggFunc(t *testing.T) {
	ok := map[string]AggFunc{
		"COUNT": AggCount, "count": AggCount, "COUNTSAMP": AggCountSamp,
		"SUM": AggSum, "AVG": AggAvg, "MEAN": AggAvg,
		"MIN": AggMin, "MAX": AggMax, "MEDIAN": AggMedian,
		"STD": AggStd, "STDEV": AggStd, "BAG": AggBag,
	}
	for in, want := range ok {
		got, err := ParseAggFunc(in)
		if err != nil || got != want {
			t.Errorf("ParseAggFunc(%q) = %v,%v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseAggFunc("FROB"); err == nil {
		t.Error("ParseAggFunc(FROB) succeeded")
	}
}

func TestAggFuncMetadata(t *testing.T) {
	if AggCount.NeedsAttr() || AggCountSamp.NeedsAttr() {
		t.Error("COUNT needs no attribute")
	}
	if !AggSum.NeedsAttr() {
		t.Error("SUM needs an attribute")
	}
	kinds := []struct {
		f    AggFunc
		in   gdm.Kind
		want gdm.Kind
	}{
		{AggCount, gdm.KindString, gdm.KindInt},
		{AggSum, gdm.KindInt, gdm.KindInt},
		{AggSum, gdm.KindFloat, gdm.KindFloat},
		{AggAvg, gdm.KindInt, gdm.KindFloat},
		{AggMedian, gdm.KindInt, gdm.KindFloat},
		{AggStd, gdm.KindFloat, gdm.KindFloat},
		{AggMin, gdm.KindString, gdm.KindString},
		{AggMax, gdm.KindInt, gdm.KindInt},
		{AggBag, gdm.KindFloat, gdm.KindString},
	}
	for _, c := range kinds {
		if got := c.f.ResultKind(c.in); got != c.want {
			t.Errorf("%v.ResultKind(%v) = %v, want %v", c.f, c.in, got, c.want)
		}
	}
	a := Aggregate{Output: "n", Func: AggCount}
	if a.String() != "n AS COUNT" {
		t.Errorf("Aggregate.String = %q", a.String())
	}
	b := Aggregate{Output: "m", Func: AggAvg, Attr: "score"}
	if b.String() != "m AS AVG(score)" {
		t.Errorf("Aggregate.String = %q", b.String())
	}
}

func vals(fs ...float64) []gdm.Value {
	out := make([]gdm.Value, len(fs))
	for i, f := range fs {
		out[i] = gdm.Float(f)
	}
	return out
}

func TestAggregateValues(t *testing.T) {
	cases := []struct {
		fn   AggFunc
		in   []gdm.Value
		want gdm.Value
	}{
		{AggCount, vals(1, 2, 3), gdm.Int(3)},
		{AggCount, nil, gdm.Int(0)},
		{AggSum, vals(1, 2, 3.5), gdm.Float(6.5)},
		{AggSum, []gdm.Value{gdm.Int(2), gdm.Int(3)}, gdm.Int(5)},
		{AggSum, nil, gdm.Null()},
		{AggAvg, vals(2, 4), gdm.Float(3)},
		{AggMin, vals(5, -1, 3), gdm.Float(-1)},
		{AggMax, vals(5, -1, 3), gdm.Float(5)},
		{AggMin, []gdm.Value{gdm.Str("b"), gdm.Str("a")}, gdm.Str("a")},
		{AggMedian, vals(1, 9, 5), gdm.Float(5)},
		{AggMedian, vals(1, 9, 5, 7), gdm.Float(6)},
		{AggStd, vals(2, 2, 2), gdm.Float(0)},
		{AggBag, []gdm.Value{gdm.Str("b"), gdm.Str("a")}, gdm.Str("a,b")},
	}
	for _, c := range cases {
		got := AggregateValues(c.fn, c.in)
		if got.IsNull() != c.want.IsNull() || !gdm.Equal(got, c.want) {
			t.Errorf("%v over %v = %v, want %v", c.fn, c.in, got, c.want)
		}
	}
}

func TestAccumulatorStd(t *testing.T) {
	got := AggregateValues(AggStd, vals(2, 4, 4, 4, 5, 5, 7, 9))
	if math.Abs(got.Float()-2.0) > 1e-9 {
		t.Errorf("STD = %v, want 2", got)
	}
}

func TestAccumulatorSkipsNullsAndBadStrings(t *testing.T) {
	acc := NewAccumulator(AggSum)
	acc.Add(gdm.Null())
	acc.Add(gdm.Float(1))
	acc.Add(gdm.Str("2.5")) // numeric string parses
	acc.Add(gdm.Str("xyz")) // ignored
	if acc.Count() != 2 {
		t.Errorf("Count = %d", acc.Count())
	}
	if got := acc.Result(); got.Float() != 3.5 {
		t.Errorf("Result = %v", got)
	}
	// COUNT counts everything, including nulls.
	c := NewAccumulator(AggCount)
	c.Add(gdm.Null())
	c.Add(gdm.Float(1))
	if c.Result().Int() != 2 {
		t.Errorf("COUNT with null = %v", c.Result())
	}
}

func TestAggregateStrings(t *testing.T) {
	if got := AggregateStrings(AggAvg, []string{"1", "3"}); got.Float() != 2 {
		t.Errorf("AVG strings = %v", got)
	}
	if got := AggregateStrings(AggBag, []string{"x", "y"}); got.Str() != "x,y" {
		t.Errorf("BAG strings = %v", got)
	}
	if got := AggregateStrings(AggMax, []string{"HeLa", "K562"}); got.Str() != "K562" {
		t.Errorf("MAX strings = %v", got)
	}
}

func TestAccumulatorQuickProperties(t *testing.T) {
	// SUM = AVG * COUNT, MIN <= MEDIAN <= MAX, STD >= 0.
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		vs := make([]gdm.Value, len(raw))
		for i, r := range raw {
			vs[i] = gdm.Float(float64(r))
		}
		sum := AggregateValues(AggSum, vs).Float()
		avg := AggregateValues(AggAvg, vs).Float()
		cnt := AggregateValues(AggCount, vs).Int()
		med := AggregateValues(AggMedian, vs).Float()
		mn := AggregateValues(AggMin, vs).Float()
		mx := AggregateValues(AggMax, vs).Float()
		std := AggregateValues(AggStd, vs).Float()
		if math.Abs(sum-avg*float64(cnt)) > 1e-6*(1+math.Abs(sum)) {
			return false
		}
		if mn > med || med > mx {
			return false
		}
		return std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
