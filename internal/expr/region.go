package expr

import (
	"fmt"

	"genogo/internal/gdm"
)

// Node is an unbound region expression: a tree over constants, attribute
// references (fixed or variable), arithmetic, comparisons and boolean
// connectives. Bind compiles it against a schema into a Bound expression
// whose attribute references are positional.
type Node interface {
	Bind(schema *gdm.Schema) (Bound, error)
	String() string
}

// Bound is a compiled region expression, evaluable against one region.
type Bound interface {
	Eval(r *gdm.Region) gdm.Value
}

// Const is a literal value.
type Const struct{ Value gdm.Value }

// Bind implements Node.
func (c Const) Bind(*gdm.Schema) (Bound, error) { return boundConst{c.Value}, nil }

// String implements Node.
func (c Const) String() string {
	if c.Value.Kind() == gdm.KindString {
		return fmt.Sprintf("'%s'", c.Value.Str())
	}
	return c.Value.String()
}

type boundConst struct{ v gdm.Value }

func (b boundConst) Eval(*gdm.Region) gdm.Value { return b.v }

// Attr references a region attribute by name: either one of the fixed
// coordinate attributes (chr, left/start, right/stop, strand) or a variable
// schema attribute.
type Attr struct{ Name string }

// Bind implements Node.
func (a Attr) Bind(schema *gdm.Schema) (Bound, error) {
	if fixed, ok := gdm.CanonicalFixed(a.Name); ok {
		return boundFixed{fixed}, nil
	}
	i, ok := schema.Index(a.Name)
	if !ok {
		return nil, fmt.Errorf("expr: unknown attribute %q in schema %s", a.Name, schema)
	}
	return boundAttr{i}, nil
}

// String implements Node.
func (a Attr) String() string { return a.Name }

type boundFixed struct{ name string }

func (b boundFixed) Eval(r *gdm.Region) gdm.Value {
	switch b.name {
	case gdm.FieldChrom:
		return gdm.Str(r.Chrom)
	case gdm.FieldLeft:
		return gdm.Int(r.Start)
	case gdm.FieldRight:
		return gdm.Int(r.Stop)
	case gdm.FieldStrand:
		return gdm.Str(r.Strand.String())
	default:
		return gdm.Null()
	}
}

type boundAttr struct{ idx int }

func (b boundAttr) Eval(r *gdm.Region) gdm.Value {
	if b.idx >= len(r.Values) {
		return gdm.Null()
	}
	return r.Values[b.idx]
}

// Arith applies an arithmetic operator to two numeric subexpressions.
// Any null operand yields null; division by zero yields null (GMQL treats
// missing values as propagating nulls).
type Arith struct {
	Op          ArithOp
	Left, Right Node
}

// Bind implements Node.
func (a Arith) Bind(schema *gdm.Schema) (Bound, error) {
	l, err := a.Left.Bind(schema)
	if err != nil {
		return nil, err
	}
	r, err := a.Right.Bind(schema)
	if err != nil {
		return nil, err
	}
	return boundArith{a.Op, l, r}, nil
}

// String implements Node.
func (a Arith) String() string { return fmt.Sprintf("(%s %s %s)", a.Left, a.Op, a.Right) }

type boundArith struct {
	op   ArithOp
	l, r Bound
}

func (b boundArith) Eval(reg *gdm.Region) gdm.Value {
	lv, lok := b.l.Eval(reg).AsFloat()
	rv, rok := b.r.Eval(reg).AsFloat()
	if !lok || !rok {
		return gdm.Null()
	}
	switch b.op {
	case OpAdd:
		return gdm.Float(lv + rv)
	case OpSub:
		return gdm.Float(lv - rv)
	case OpMul:
		return gdm.Float(lv * rv)
	case OpDiv:
		if rv == 0 {
			return gdm.Null()
		}
		return gdm.Float(lv / rv)
	default:
		return gdm.Null()
	}
}

// Cmp compares two subexpressions; comparisons against null are false
// (three-valued logic collapsed to false, as in GMQL region predicates).
type Cmp struct {
	Op          CmpOp
	Left, Right Node
}

// Bind implements Node.
func (c Cmp) Bind(schema *gdm.Schema) (Bound, error) {
	l, err := c.Left.Bind(schema)
	if err != nil {
		return nil, err
	}
	r, err := c.Right.Bind(schema)
	if err != nil {
		return nil, err
	}
	return boundCmp{c.Op, l, r}, nil
}

// String implements Node.
func (c Cmp) String() string { return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right) }

type boundCmp struct {
	op   CmpOp
	l, r Bound
}

func (b boundCmp) Eval(reg *gdm.Region) gdm.Value {
	lv := b.l.Eval(reg)
	rv := b.r.Eval(reg)
	if lv.IsNull() || rv.IsNull() {
		return gdm.Bool(false)
	}
	return gdm.Bool(b.op.holds(gdm.Compare(lv, rv)))
}

// And is boolean conjunction.
type And struct{ Left, Right Node }

// Bind implements Node.
func (a And) Bind(schema *gdm.Schema) (Bound, error) {
	l, err := a.Left.Bind(schema)
	if err != nil {
		return nil, err
	}
	r, err := a.Right.Bind(schema)
	if err != nil {
		return nil, err
	}
	return boundBool{l, r, true}, nil
}

// String implements Node.
func (a And) String() string { return fmt.Sprintf("(%s AND %s)", a.Left, a.Right) }

// Or is boolean disjunction.
type Or struct{ Left, Right Node }

// Bind implements Node.
func (o Or) Bind(schema *gdm.Schema) (Bound, error) {
	l, err := o.Left.Bind(schema)
	if err != nil {
		return nil, err
	}
	r, err := o.Right.Bind(schema)
	if err != nil {
		return nil, err
	}
	return boundBool{l, r, false}, nil
}

// String implements Node.
func (o Or) String() string { return fmt.Sprintf("(%s OR %s)", o.Left, o.Right) }

type boundBool struct {
	l, r Bound
	and  bool
}

func (b boundBool) Eval(reg *gdm.Region) gdm.Value {
	lv := b.l.Eval(reg).Bool()
	if b.and {
		if !lv {
			return gdm.Bool(false)
		}
		return gdm.Bool(b.r.Eval(reg).Bool())
	}
	if lv {
		return gdm.Bool(true)
	}
	return gdm.Bool(b.r.Eval(reg).Bool())
}

// Not is boolean negation.
type Not struct{ Inner Node }

// Bind implements Node.
func (n Not) Bind(schema *gdm.Schema) (Bound, error) {
	inner, err := n.Inner.Bind(schema)
	if err != nil {
		return nil, err
	}
	return boundNot{inner}, nil
}

// String implements Node.
func (n Not) String() string { return fmt.Sprintf("NOT %s", n.Inner) }

type boundNot struct{ inner Bound }

func (b boundNot) Eval(reg *gdm.Region) gdm.Value {
	return gdm.Bool(!b.inner.Eval(reg).Bool())
}

// True is the always-true region predicate.
type True struct{}

// Bind implements Node.
func (True) Bind(*gdm.Schema) (Bound, error) { return boundConst{gdm.Bool(true)}, nil }

// String implements Node.
func (True) String() string { return "true" }

// InferType predicts the value kind an expression produces under the given
// schema, for deriving output schemas of PROJECT expressions.
func InferType(n Node, schema *gdm.Schema) (gdm.Kind, error) {
	switch e := n.(type) {
	case Const:
		return e.Value.Kind(), nil
	case Attr:
		if fixed, ok := gdm.CanonicalFixed(e.Name); ok {
			if fixed == gdm.FieldLeft || fixed == gdm.FieldRight {
				return gdm.KindInt, nil
			}
			return gdm.KindString, nil
		}
		i, ok := schema.Index(e.Name)
		if !ok {
			return gdm.KindNull, fmt.Errorf("expr: unknown attribute %q in schema %s", e.Name, schema)
		}
		return schema.Field(i).Type, nil
	case Arith:
		if _, err := InferType(e.Left, schema); err != nil {
			return gdm.KindNull, err
		}
		if _, err := InferType(e.Right, schema); err != nil {
			return gdm.KindNull, err
		}
		return gdm.KindFloat, nil
	case Cmp, And, Or, Not, True:
		return gdm.KindBool, nil
	default:
		return gdm.KindNull, fmt.Errorf("expr: cannot infer type of %T", n)
	}
}
