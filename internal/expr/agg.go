package expr

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"genogo/internal/gdm"
)

// AggFunc enumerates the aggregate functions of GMQL (used by MAP, EXTEND,
// GROUP, COVER attribute computation and the AGGREGATE forms of the paper).
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggCountSamp
	AggSum
	AggAvg
	AggMin
	AggMax
	AggMedian
	AggStd
	AggBag
)

// String renders the function name in GMQL surface syntax.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggCountSamp:
		return "COUNTSAMP"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggMedian:
		return "MEDIAN"
	case AggStd:
		return "STD"
	case AggBag:
		return "BAG"
	default:
		return fmt.Sprintf("AGG(%d)", uint8(f))
	}
}

// ParseAggFunc resolves a GMQL aggregate function name.
func ParseAggFunc(name string) (AggFunc, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "COUNT":
		return AggCount, nil
	case "COUNTSAMP":
		return AggCountSamp, nil
	case "SUM":
		return AggSum, nil
	case "AVG", "MEAN":
		return AggAvg, nil
	case "MIN":
		return AggMin, nil
	case "MAX":
		return AggMax, nil
	case "MEDIAN":
		return AggMedian, nil
	case "STD", "STDEV":
		return AggStd, nil
	case "BAG":
		return AggBag, nil
	default:
		return AggCount, fmt.Errorf("expr: unknown aggregate function %q", name)
	}
}

// NeedsAttr reports whether the function requires an input attribute
// (COUNT and COUNTSAMP count regions/samples and take none).
func (f AggFunc) NeedsAttr() bool { return f != AggCount && f != AggCountSamp }

// ResultKind predicts the kind of the aggregate's result given the input
// attribute kind (ignored for COUNT-like functions).
func (f AggFunc) ResultKind(input gdm.Kind) gdm.Kind {
	switch f {
	case AggCount, AggCountSamp:
		return gdm.KindInt
	case AggAvg, AggMedian, AggStd:
		return gdm.KindFloat
	case AggSum:
		if input == gdm.KindInt {
			return gdm.KindInt
		}
		return gdm.KindFloat
	case AggMin, AggMax:
		return input
	case AggBag:
		return gdm.KindString
	default:
		return gdm.KindNull
	}
}

// Aggregate is one "output AS FUNC(attr)" clause.
type Aggregate struct {
	Output string  // result attribute name
	Func   AggFunc // aggregate function
	Attr   string  // input attribute ("" for COUNT)
}

// String renders the clause in GMQL surface syntax.
func (a Aggregate) String() string {
	if !a.Func.NeedsAttr() {
		return fmt.Sprintf("%s AS %s", a.Output, a.Func)
	}
	return fmt.Sprintf("%s AS %s(%s)", a.Output, a.Func, a.Attr)
}

// Accumulator folds a stream of values into one aggregate result. The zero
// count yields null (except COUNT-like functions, which yield 0).
type Accumulator struct {
	fn      AggFunc
	n       int64
	sumF    float64
	sumSq   float64
	allInt  bool
	sumI    int64
	min     gdm.Value
	max     gdm.Value
	samples []float64 // median only
	bag     []string  // bag only
}

// NewAccumulator returns an empty accumulator for the function.
func NewAccumulator(fn AggFunc) *Accumulator {
	return &Accumulator{fn: fn, allInt: true}
}

// Add folds one value. Null values are skipped (they carry no information),
// except for COUNT-like functions where Add counts occurrences regardless of
// the value passed.
func (a *Accumulator) Add(v gdm.Value) {
	if a.fn == AggCount || a.fn == AggCountSamp {
		a.n++
		return
	}
	if v.IsNull() {
		return
	}
	switch a.fn {
	case AggBag:
		a.n++
		a.bag = append(a.bag, v.String())
		return
	case AggMin:
		if a.n == 0 || gdm.Compare(v, a.min) < 0 {
			a.min = v
		}
		a.n++
		return
	case AggMax:
		if a.n == 0 || gdm.Compare(v, a.max) > 0 {
			a.max = v
		}
		a.n++
		return
	}
	f, ok := v.AsFloat()
	if !ok {
		// Strings in numeric aggregates are parsed when possible; metadata
		// values arrive as strings.
		var err error
		f, err = strconv.ParseFloat(strings.TrimSpace(v.Str()), 64)
		if err != nil {
			return
		}
	}
	if v.Kind() != gdm.KindInt {
		a.allInt = false
	}
	a.n++
	a.sumF += f
	a.sumSq += f * f
	a.sumI += int64(f)
	if a.fn == AggMedian {
		a.samples = append(a.samples, f)
	}
}

// Count returns how many values were folded.
func (a *Accumulator) Count() int64 { return a.n }

// Result returns the aggregate value.
func (a *Accumulator) Result() gdm.Value {
	switch a.fn {
	case AggCount, AggCountSamp:
		return gdm.Int(a.n)
	}
	if a.n == 0 {
		return gdm.Null()
	}
	switch a.fn {
	case AggSum:
		if a.allInt {
			return gdm.Int(a.sumI)
		}
		return gdm.Float(a.sumF)
	case AggAvg:
		return gdm.Float(a.sumF / float64(a.n))
	case AggMin:
		return a.min
	case AggMax:
		return a.max
	case AggMedian:
		s := append([]float64(nil), a.samples...)
		sort.Float64s(s)
		mid := len(s) / 2
		if len(s)%2 == 1 {
			return gdm.Float(s[mid])
		}
		return gdm.Float((s[mid-1] + s[mid]) / 2)
	case AggStd:
		mean := a.sumF / float64(a.n)
		varc := a.sumSq/float64(a.n) - mean*mean
		if varc < 0 {
			varc = 0 // numeric noise
		}
		return gdm.Float(math.Sqrt(varc))
	case AggBag:
		s := append([]string(nil), a.bag...)
		sort.Strings(s)
		return gdm.Str(strings.Join(s, ","))
	default:
		return gdm.Null()
	}
}

// AggregateValues folds a whole slice at once — convenience for tests and
// for operators that already gathered the group.
func AggregateValues(fn AggFunc, vs []gdm.Value) gdm.Value {
	acc := NewAccumulator(fn)
	for _, v := range vs {
		acc.Add(v)
	}
	return acc.Result()
}

// AggregateStrings folds metadata values (strings) — used by EXTEND/GROUP
// aggregates over metadata and by the federation statistics endpoints.
func AggregateStrings(fn AggFunc, vs []string) gdm.Value {
	acc := NewAccumulator(fn)
	for _, v := range vs {
		acc.Add(gdm.Str(v))
	}
	return acc.Result()
}
