package expr

import (
	"fmt"
	"strconv"
	"strings"

	"genogo/internal/gdm"
)

// MetaPredicate is a predicate over a sample's metadata, the form used by
// GMQL SELECT to pick samples before any region is touched (the "meta-first"
// optimization depends on this separation).
type MetaPredicate interface {
	EvalMeta(md *gdm.Metadata) bool
	String() string
}

// MetaCmp compares the values of a metadata attribute against a constant.
// Equality is case-insensitive string matching (the GMQL convention);
// ordering comparisons parse both sides as numbers and are false for
// non-numeric values. A sample satisfies the predicate when ANY value of the
// (possibly multi-valued) attribute does.
type MetaCmp struct {
	Attr  string
	Op    CmpOp
	Value string
}

// EvalMeta implements MetaPredicate.
func (p MetaCmp) EvalMeta(md *gdm.Metadata) bool {
	vs := md.Values(p.Attr)
	for _, v := range vs {
		if p.matches(v) {
			return true
		}
	}
	return false
}

func (p MetaCmp) matches(v string) bool {
	switch p.Op {
	case CmpEq:
		return strings.EqualFold(v, p.Value)
	case CmpNe:
		return !strings.EqualFold(v, p.Value)
	default:
		a, errA := strconv.ParseFloat(strings.TrimSpace(v), 64)
		b, errB := strconv.ParseFloat(strings.TrimSpace(p.Value), 64)
		if errA != nil || errB != nil {
			// Fall back to lexicographic ordering for non-numeric values.
			return p.Op.holds(strings.Compare(strings.ToLower(v), strings.ToLower(p.Value)))
		}
		switch {
		case a < b:
			return p.Op.holds(-1)
		case a > b:
			return p.Op.holds(1)
		default:
			return p.Op.holds(0)
		}
	}
}

// String implements MetaPredicate.
func (p MetaCmp) String() string {
	return fmt.Sprintf("%s %s '%s'", p.Attr, p.Op, p.Value)
}

// MetaExists is satisfied when the attribute is present at all.
type MetaExists struct{ Attr string }

// EvalMeta implements MetaPredicate.
func (p MetaExists) EvalMeta(md *gdm.Metadata) bool { return md.Has(p.Attr) }

// String implements MetaPredicate.
func (p MetaExists) String() string { return fmt.Sprintf("exists(%s)", p.Attr) }

// MetaText is the free-text keyword predicate used by metadata search
// services: true when any attribute name or value contains the keyword.
type MetaText struct{ Keyword string }

// EvalMeta implements MetaPredicate.
func (p MetaText) EvalMeta(md *gdm.Metadata) bool { return md.MatchText(p.Keyword) }

// String implements MetaPredicate.
func (p MetaText) String() string { return fmt.Sprintf("text(%q)", p.Keyword) }

// MetaAnd is the conjunction of its operands.
type MetaAnd struct{ Left, Right MetaPredicate }

// EvalMeta implements MetaPredicate.
func (p MetaAnd) EvalMeta(md *gdm.Metadata) bool {
	return p.Left.EvalMeta(md) && p.Right.EvalMeta(md)
}

// String implements MetaPredicate.
func (p MetaAnd) String() string { return fmt.Sprintf("(%s AND %s)", p.Left, p.Right) }

// MetaOr is the disjunction of its operands.
type MetaOr struct{ Left, Right MetaPredicate }

// EvalMeta implements MetaPredicate.
func (p MetaOr) EvalMeta(md *gdm.Metadata) bool {
	return p.Left.EvalMeta(md) || p.Right.EvalMeta(md)
}

// String implements MetaPredicate.
func (p MetaOr) String() string { return fmt.Sprintf("(%s OR %s)", p.Left, p.Right) }

// MetaNot negates its operand.
type MetaNot struct{ Inner MetaPredicate }

// EvalMeta implements MetaPredicate.
func (p MetaNot) EvalMeta(md *gdm.Metadata) bool { return !p.Inner.EvalMeta(md) }

// String implements MetaPredicate.
func (p MetaNot) String() string { return fmt.Sprintf("NOT %s", p.Inner) }

// MetaTrue accepts every sample; SELECT with no metadata predicate uses it.
type MetaTrue struct{}

// EvalMeta implements MetaPredicate.
func (MetaTrue) EvalMeta(*gdm.Metadata) bool { return true }

// String implements MetaPredicate.
func (MetaTrue) String() string { return "true" }
