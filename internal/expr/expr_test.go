package expr

import (
	"strings"
	"testing"

	"genogo/internal/gdm"
)

func TestCmpOpHoldsAndString(t *testing.T) {
	cases := []struct {
		op   CmpOp
		str  string
		want [3]bool // holds for c = -1, 0, 1
	}{
		{CmpEq, "==", [3]bool{false, true, false}},
		{CmpNe, "!=", [3]bool{true, false, true}},
		{CmpLt, "<", [3]bool{true, false, false}},
		{CmpLe, "<=", [3]bool{true, true, false}},
		{CmpGt, ">", [3]bool{false, false, true}},
		{CmpGe, ">=", [3]bool{false, true, true}},
	}
	for _, c := range cases {
		if c.op.String() != c.str {
			t.Errorf("%v.String() = %q", c.op, c.op.String())
		}
		for i, cmp := range []int{-1, 0, 1} {
			if got := c.op.holds(cmp); got != c.want[i] {
				t.Errorf("%v.holds(%d) = %v", c.op, cmp, got)
			}
		}
	}
}

func TestMetaCmp(t *testing.T) {
	md := gdm.MetadataFrom(map[string]string{
		"dataType": "ChipSeq",
		"p":        "0.05",
	})
	md.Add("antibody", "CTCF")
	md.Add("antibody", "POL2")
	cases := []struct {
		p    MetaPredicate
		want bool
	}{
		{MetaCmp{"dataType", CmpEq, "chipseq"}, true}, // case-insensitive
		{MetaCmp{"dataType", CmpEq, "RnaSeq"}, false},
		{MetaCmp{"dataType", CmpNe, "RnaSeq"}, true},
		{MetaCmp{"antibody", CmpEq, "POL2"}, true}, // any value matches
		{MetaCmp{"p", CmpLt, "0.1"}, true},
		{MetaCmp{"p", CmpGt, "0.1"}, false},
		{MetaCmp{"p", CmpLe, "0.05"}, true},
		{MetaCmp{"missing", CmpEq, "x"}, false},
		{MetaCmp{"dataType", CmpLt, "zzz"}, true}, // lexicographic fallback
		{MetaExists{"antibody"}, true},
		{MetaExists{"nope"}, false},
		{MetaText{"chip"}, true},
		{MetaText{"pol2"}, true},
		{MetaText{"zzz"}, false},
		{MetaAnd{MetaExists{"antibody"}, MetaCmp{"p", CmpLt, "1"}}, true},
		{MetaAnd{MetaExists{"antibody"}, MetaExists{"nope"}}, false},
		{MetaOr{MetaExists{"nope"}, MetaExists{"antibody"}}, true},
		{MetaOr{MetaExists{"nope"}, MetaExists{"nope2"}}, false},
		{MetaNot{MetaExists{"nope"}}, true},
		{MetaTrue{}, true},
	}
	for _, c := range cases {
		if got := c.p.EvalMeta(md); got != c.want {
			t.Errorf("%s = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestMetaPredicateStrings(t *testing.T) {
	p := MetaAnd{
		Left:  MetaNot{MetaCmp{"a", CmpEq, "x"}},
		Right: MetaOr{MetaExists{"b"}, MetaTrue{}},
	}
	s := p.String()
	for _, frag := range []string{"NOT", "a == 'x'", "exists(b)", "AND", "OR", "true"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func testSchema() *gdm.Schema {
	return gdm.MustSchema(
		gdm.Field{Name: "score", Type: gdm.KindFloat},
		gdm.Field{Name: "name", Type: gdm.KindString},
		gdm.Field{Name: "hits", Type: gdm.KindInt},
	)
}

func testRegion() gdm.Region {
	return gdm.NewRegion("chr2", 100, 250, gdm.StrandPlus,
		gdm.Float(0.5), gdm.Str("peak1"), gdm.Int(7))
}

func evalOn(t *testing.T, n Node, r gdm.Region) gdm.Value {
	t.Helper()
	b, err := n.Bind(testSchema())
	if err != nil {
		t.Fatalf("Bind(%s): %v", n, err)
	}
	return b.Eval(&r)
}

func TestAttrFixedAndVariable(t *testing.T) {
	r := testRegion()
	cases := []struct {
		name string
		want gdm.Value
	}{
		{"chr", gdm.Str("chr2")},
		{"chrom", gdm.Str("chr2")},
		{"left", gdm.Int(100)},
		{"start", gdm.Int(100)},
		{"right", gdm.Int(250)},
		{"stop", gdm.Int(250)},
		{"strand", gdm.Str("+")},
		{"score", gdm.Float(0.5)},
		{"name", gdm.Str("peak1")},
		{"hits", gdm.Int(7)},
	}
	for _, c := range cases {
		if got := evalOn(t, Attr{c.name}, r); !gdm.Equal(got, c.want) {
			t.Errorf("Attr(%s) = %v, want %v", c.name, got, c.want)
		}
	}
	if _, err := (Attr{"missing"}).Bind(testSchema()); err == nil {
		t.Error("unknown attribute bound")
	}
}

func TestAttrShortRegion(t *testing.T) {
	// Region with fewer values than the schema position: null, not panic.
	b, err := Attr{"hits"}.Bind(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	short := gdm.NewRegion("chr1", 0, 1, gdm.StrandNone)
	if got := b.Eval(&short); !got.IsNull() {
		t.Errorf("short region eval = %v", got)
	}
}

func TestArith(t *testing.T) {
	r := testRegion()
	cases := []struct {
		n    Node
		want gdm.Value
	}{
		{Arith{OpAdd, Attr{"left"}, Attr{"hits"}}, gdm.Float(107)},
		{Arith{OpSub, Attr{"right"}, Attr{"left"}}, gdm.Float(150)},
		{Arith{OpMul, Attr{"score"}, Const{gdm.Int(4)}}, gdm.Float(2)},
		{Arith{OpDiv, Attr{"hits"}, Const{gdm.Int(2)}}, gdm.Float(3.5)},
		{Arith{OpDiv, Attr{"hits"}, Const{gdm.Int(0)}}, gdm.Null()},
		{Arith{OpAdd, Attr{"name"}, Const{gdm.Int(1)}}, gdm.Null()}, // string operand
	}
	for _, c := range cases {
		got := evalOn(t, c.n, r)
		if got.IsNull() != c.want.IsNull() || !gdm.Equal(got, c.want) {
			t.Errorf("%s = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestCmpAndLogic(t *testing.T) {
	r := testRegion()
	cases := []struct {
		n    Node
		want bool
	}{
		{Cmp{CmpEq, Attr{"chr"}, Const{gdm.Str("chr2")}}, true},
		{Cmp{CmpGt, Attr{"score"}, Const{gdm.Float(0.1)}}, true},
		{Cmp{CmpLt, Attr{"score"}, Const{gdm.Float(0.1)}}, false},
		{Cmp{CmpGe, Attr{"left"}, Const{gdm.Int(100)}}, true},
		{Cmp{CmpNe, Attr{"strand"}, Const{gdm.Str("-")}}, true},
		{And{Cmp{CmpGt, Attr{"score"}, Const{gdm.Float(0)}}, Cmp{CmpEq, Attr{"name"}, Const{gdm.Str("peak1")}}}, true},
		{And{True{}, Cmp{CmpEq, Attr{"name"}, Const{gdm.Str("x")}}}, false},
		{Or{Cmp{CmpEq, Attr{"name"}, Const{gdm.Str("x")}}, True{}}, true},
		{Or{Cmp{CmpEq, Attr{"name"}, Const{gdm.Str("x")}}, Cmp{CmpEq, Attr{"hits"}, Const{gdm.Int(0)}}}, false},
		{Not{True{}}, false},
		{Not{Cmp{CmpEq, Attr{"name"}, Const{gdm.Str("x")}}}, true},
		{True{}, true},
		// Comparison with null collapses to false; its negation is true.
		{Cmp{CmpEq, Arith{OpDiv, Attr{"hits"}, Const{gdm.Int(0)}}, Const{gdm.Int(1)}}, false},
	}
	for _, c := range cases {
		if got := evalOn(t, c.n, r).Bool(); got != c.want {
			t.Errorf("%s = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestBindErrorsPropagate(t *testing.T) {
	bad := Attr{"missing"}
	nodes := []Node{
		Arith{OpAdd, bad, True{}}, Arith{OpAdd, True{}, bad},
		Cmp{CmpEq, bad, True{}}, Cmp{CmpEq, True{}, bad},
		And{bad, True{}}, And{True{}, bad},
		Or{bad, True{}}, Or{True{}, bad},
		Not{bad},
	}
	for _, n := range nodes {
		if _, err := n.Bind(testSchema()); err == nil {
			t.Errorf("%T bound with bad child", n)
		}
	}
}

func TestInferType(t *testing.T) {
	s := testSchema()
	cases := []struct {
		n    Node
		want gdm.Kind
	}{
		{Const{gdm.Int(1)}, gdm.KindInt},
		{Attr{"left"}, gdm.KindInt},
		{Attr{"chr"}, gdm.KindString},
		{Attr{"strand"}, gdm.KindString},
		{Attr{"score"}, gdm.KindFloat},
		{Attr{"name"}, gdm.KindString},
		{Arith{OpAdd, Attr{"left"}, Attr{"hits"}}, gdm.KindFloat},
		{Cmp{CmpEq, Attr{"left"}, Const{gdm.Int(0)}}, gdm.KindBool},
		{And{True{}, True{}}, gdm.KindBool},
		{True{}, gdm.KindBool},
	}
	for _, c := range cases {
		got, err := InferType(c.n, s)
		if err != nil || got != c.want {
			t.Errorf("InferType(%s) = %v,%v; want %v", c.n, got, err, c.want)
		}
	}
	if _, err := InferType(Attr{"zzz"}, s); err == nil {
		t.Error("InferType unknown attr succeeded")
	}
	if _, err := InferType(Arith{OpAdd, Attr{"zzz"}, True{}}, s); err == nil {
		t.Error("InferType bad arith succeeded")
	}
}

func TestNodeStrings(t *testing.T) {
	n := And{
		Left:  Cmp{CmpGe, Attr{"score"}, Const{gdm.Float(0.5)}},
		Right: Or{Not{True{}}, Cmp{CmpEq, Attr{"name"}, Const{gdm.Str("x")}}},
	}
	s := n.String()
	for _, frag := range []string{"score >= 0.5", "NOT true", "name == 'x'", "AND", "OR"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
	a := Arith{OpMul, Attr{"score"}, Const{gdm.Int(2)}}
	if a.String() != "(score * 2)" {
		t.Errorf("arith string = %q", a.String())
	}
}
