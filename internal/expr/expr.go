// Package expr is the evaluable intermediate representation for GMQL
// predicates, region expressions and aggregate functions. The GMQL compiler
// (internal/gmql) produces expr trees; the engine (internal/engine) binds
// them against dataset schemas and evaluates them over regions and metadata.
package expr

import "fmt"

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String renders the operator in GMQL surface syntax.
func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "=="
	case CmpNe:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	default:
		return fmt.Sprintf("cmp(%d)", uint8(op))
	}
}

// holds reports whether the comparison result c (-1/0/1) satisfies op.
func (op CmpOp) holds(c int) bool {
	switch op {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	case CmpGe:
		return c >= 0
	default:
		return false
	}
}

// ArithOp is an arithmetic operator for region projection expressions.
type ArithOp uint8

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
)

// String renders the operator.
func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	default:
		return fmt.Sprintf("arith(%d)", uint8(op))
	}
}
