package ontology

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ParseOBO reads an ontology from the OBO flat-file subset that biomedical
// ontologies (GO, Cell Ontology, UBERON — the vocabularies UMLS integrates)
// are distributed in:
//
//	[Term]
//	id: CL:0000000
//	name: cell
//	synonym: "cellule" EXACT []
//	is_a: CL:0000003 ! native cell
//
// Supported tags: id, name, synonym (the quoted form and the bare form),
// is_a (with optional "! comment" suffix), and is_obsolete (obsolete terms
// are skipped). Unknown tags and non-[Term] stanzas are ignored, so real
// OBO headers parse cleanly. Forward is_a references are allowed: terms are
// linked after the whole file is read.
func ParseOBO(r io.Reader) (*Ontology, error) {
	type term struct {
		id, name string
		synonyms []string
		parents  []string
		obsolete bool
		line     int
	}
	var terms []*term
	var cur *term
	inTerm := false

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	flush := func() {
		if cur != nil && !cur.obsolete {
			terms = append(terms, cur)
		}
		cur = nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "["):
			flush()
			inTerm = line == "[Term]"
			if inTerm {
				cur = &term{line: lineNo}
			}
			continue
		case !inTerm || cur == nil:
			continue
		}
		tag, value, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("ontology: obo line %d: no tag separator in %q", lineNo, line)
		}
		value = strings.TrimSpace(value)
		switch strings.TrimSpace(tag) {
		case "id":
			cur.id = value
		case "name":
			cur.name = value
		case "synonym":
			cur.synonyms = append(cur.synonyms, oboSynonym(value))
		case "is_a":
			// "CL:0000003 ! native cell" — strip the comment.
			if bang := strings.Index(value, "!"); bang >= 0 {
				value = strings.TrimSpace(value[:bang])
			}
			cur.parents = append(cur.parents, value)
		case "is_obsolete":
			cur.obsolete = strings.EqualFold(value, "true")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ontology: obo: %w", err)
	}
	flush()

	// Validate and topologically insert: parents must exist somewhere in
	// the file (Add requires parents first).
	byID := make(map[string]*term, len(terms))
	for _, t := range terms {
		if t.id == "" {
			return nil, fmt.Errorf("ontology: obo term at line %d has no id", t.line)
		}
		if t.name == "" {
			t.name = t.id
		}
		if byID[t.id] != nil {
			return nil, fmt.Errorf("ontology: obo duplicate term %q", t.id)
		}
		byID[t.id] = t
	}
	o := New()
	// Kahn-style insertion; detects cycles and dangling parents.
	pending := make(map[string]*term, len(byID))
	for id, t := range byID {
		for _, p := range t.parents {
			if byID[p] == nil {
				return nil, fmt.Errorf("ontology: obo term %q: unknown parent %q", id, p)
			}
		}
		pending[id] = t
	}
	for len(pending) > 0 {
		var ready []string
		for id, t := range pending {
			ok := true
			for _, p := range t.parents {
				if _, waiting := pending[p]; waiting {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, id)
			}
		}
		if len(ready) == 0 {
			return nil, fmt.Errorf("ontology: obo is_a cycle among %d terms", len(pending))
		}
		sort.Strings(ready)
		for _, id := range ready {
			t := pending[id]
			if err := o.Add(t.id, t.name, t.synonyms, t.parents...); err != nil {
				return nil, err
			}
			delete(pending, id)
		}
	}
	return o, nil
}

// oboSynonym extracts the synonym text: quoted OBO form or bare text.
func oboSynonym(v string) string {
	if strings.HasPrefix(v, `"`) {
		if end := strings.Index(v[1:], `"`); end >= 0 {
			return v[1 : 1+end]
		}
	}
	return v
}

// WriteOBO renders the ontology back to the OBO subset ParseOBO reads, so
// curated stand-ins can be exported, hand-edited and reloaded.
func (o *Ontology) WriteOBO(w io.Writer) error {
	ids := make([]string, 0, len(o.concepts))
	for id := range o.concepts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "format-version: 1.2\n")
	for _, id := range ids {
		c := o.concepts[id]
		fmt.Fprintf(bw, "\n[Term]\nid: %s\nname: %s\n", c.ID, c.Name)
		for _, s := range c.Synonyms {
			fmt.Fprintf(bw, "synonym: %q EXACT []\n", s)
		}
		parents := append([]string(nil), c.Parents...)
		sort.Strings(parents)
		for _, p := range parents {
			fmt.Fprintf(bw, "is_a: %s ! %s\n", p, o.concepts[p].Name)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("ontology: obo: %w", err)
	}
	return nil
}
