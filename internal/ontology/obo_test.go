package ontology

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOBO = `format-version: 1.2
date: 01:01:2016
saved-by: curator

[Term]
id: X:ROOT
name: thing

[Term]
id: X:CELL
name: cell
synonym: "cellule" EXACT []
is_a: X:ROOT ! thing

[Term]
id: X:CANCERCELL
name: cancer cell
synonym: "tumor cell" EXACT []
is_a: X:CELL ! cell

[Term]
id: X:HELA
name: HeLa
is_a: X:CANCERCELL ! cancer cell

[Term]
id: X:OLD
name: deprecated thing
is_obsolete: true

[Typedef]
id: part_of
name: part of
`

func TestParseOBO(t *testing.T) {
	o, err := ParseOBO(strings.NewReader(sampleOBO))
	if err != nil {
		t.Fatal(err)
	}
	if o.Len() != 4 {
		t.Fatalf("Len = %d (obsolete term must be skipped)", o.Len())
	}
	if c := o.Concept("X:HELA"); c == nil || c.Name != "HeLa" {
		t.Fatal("HeLa missing")
	}
	anc := o.Ancestors("X:HELA")
	if len(anc) != 3 {
		t.Errorf("Ancestors = %v", anc)
	}
	if ids := o.Lookup("cellule"); len(ids) != 1 || ids[0] != "X:CELL" {
		t.Errorf("synonym lookup = %v", ids)
	}
	if ids := o.Lookup("tumor cell"); len(ids) != 1 || ids[0] != "X:CANCERCELL" {
		t.Errorf("quoted synonym lookup = %v", ids)
	}
	if o.Concept("X:OLD") != nil {
		t.Error("obsolete term loaded")
	}
	if o.Concept("part_of") != nil {
		t.Error("Typedef stanza loaded as term")
	}
}

func TestParseOBOForwardReference(t *testing.T) {
	// Child defined before its parent: the linker must handle it.
	src := `
[Term]
id: B
name: b
is_a: A

[Term]
id: A
name: a
`
	o, err := ParseOBO(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if anc := o.Ancestors("B"); len(anc) != 1 || anc[0] != "A" {
		t.Errorf("Ancestors(B) = %v", anc)
	}
}

func TestParseOBOErrors(t *testing.T) {
	cases := map[string]string{
		"no-id":        "[Term]\nname: x\n",
		"dup":          "[Term]\nid: A\nname: a\n\n[Term]\nid: A\nname: a2\n",
		"dangling":     "[Term]\nid: A\nname: a\nis_a: MISSING\n",
		"cycle":        "[Term]\nid: A\nname: a\nis_a: B\n\n[Term]\nid: B\nname: b\nis_a: A\n",
		"no-separator": "[Term]\nid: A\nname: a\nbroken line without colon... wait",
	}
	// "no-separator" actually has colons; craft a real one.
	cases["no-separator"] = "[Term]\nid A\n"
	for name, src := range cases {
		if _, err := ParseOBO(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestOBORoundTrip(t *testing.T) {
	orig := Biomedical()
	var buf bytes.Buffer
	if err := orig.WriteOBO(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseOBO(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, buf.String())
	}
	if back.Len() != orig.Len() {
		t.Fatalf("Len %d vs %d", back.Len(), orig.Len())
	}
	// Structure must survive: same ancestors for every concept.
	for id := range orig.concepts {
		a, b := orig.Ancestors(id), back.Ancestors(id)
		if len(a) != len(b) {
			t.Errorf("%s ancestors %v vs %v", id, a, b)
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s ancestor %d: %s vs %s", id, i, a[i], b[i])
			}
		}
	}
	// Synonyms survive too.
	if ids := back.Lookup("neoplasm"); len(ids) != 1 {
		t.Errorf("synonym lost in round trip: %v", ids)
	}
}
