// Package ontology implements the ontological-knowledge mediation of
// Section 4.3 of the paper: a compact biomedical ontology (standing in for
// UMLS) with IS-A edges and synonyms, semantic annotation of sample
// metadata, semantic closure of annotations, and ontological query
// expansion for metadata search.
package ontology

import (
	"fmt"
	"sort"
	"strings"

	"genogo/internal/gdm"
)

// Concept is one ontology node.
type Concept struct {
	ID       string
	Name     string
	Synonyms []string
	Parents  []string // IS-A edges
}

// Ontology is a DAG of concepts with a surface-term index.
type Ontology struct {
	concepts map[string]*Concept
	children map[string][]string
	byTerm   map[string][]string // normalized surface term -> concept IDs
}

// New returns an empty ontology.
func New() *Ontology {
	return &Ontology{
		concepts: make(map[string]*Concept),
		children: make(map[string][]string),
		byTerm:   make(map[string][]string),
	}
}

func norm(term string) string { return strings.ToLower(strings.TrimSpace(term)) }

// Add inserts a concept. Parents must already exist (add roots first), which
// keeps the graph acyclic by construction.
func (o *Ontology) Add(id, name string, synonyms []string, parents ...string) error {
	if id == "" {
		return fmt.Errorf("ontology: empty concept ID")
	}
	if _, dup := o.concepts[id]; dup {
		return fmt.Errorf("ontology: duplicate concept %q", id)
	}
	for _, p := range parents {
		if _, ok := o.concepts[p]; !ok {
			return fmt.Errorf("ontology: concept %q: unknown parent %q", id, p)
		}
	}
	c := &Concept{ID: id, Name: name, Synonyms: synonyms, Parents: parents}
	o.concepts[id] = c
	for _, p := range parents {
		o.children[p] = append(o.children[p], id)
	}
	o.byTerm[norm(name)] = append(o.byTerm[norm(name)], id)
	for _, s := range synonyms {
		o.byTerm[norm(s)] = append(o.byTerm[norm(s)], id)
	}
	return nil
}

// MustAdd is Add for statically known hierarchies.
func (o *Ontology) MustAdd(id, name string, synonyms []string, parents ...string) {
	if err := o.Add(id, name, synonyms, parents...); err != nil {
		panic(err)
	}
}

// Concept returns the concept with the given ID, or nil.
func (o *Ontology) Concept(id string) *Concept { return o.concepts[id] }

// Len returns the number of concepts.
func (o *Ontology) Len() int { return len(o.concepts) }

// Lookup resolves a surface term (name or synonym, case-insensitive) to
// concept IDs.
func (o *Ontology) Lookup(term string) []string {
	ids := append([]string(nil), o.byTerm[norm(term)]...)
	sort.Strings(ids)
	return ids
}

// Ancestors returns the transitive IS-A ancestors of a concept — the
// "semantic closure" of [17] that annotation completion relies on. The
// concept itself is not included.
func (o *Ontology) Ancestors(id string) []string {
	seen := make(map[string]bool)
	var walk func(string)
	walk = func(cur string) {
		c := o.concepts[cur]
		if c == nil {
			return
		}
		for _, p := range c.Parents {
			if !seen[p] {
				seen[p] = true
				walk(p)
			}
		}
	}
	walk(id)
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Descendants returns the transitive children of a concept, excluding
// itself — the concepts a query for the given term should also retrieve.
func (o *Ontology) Descendants(id string) []string {
	seen := make(map[string]bool)
	var walk func(string)
	walk = func(cur string) {
		for _, ch := range o.children[cur] {
			if !seen[ch] {
				seen[ch] = true
				walk(ch)
			}
		}
	}
	walk(id)
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Annotate maps a sample's metadata values (and attribute names) to concept
// IDs and completes them with the semantic closure: every matched concept
// contributes all its ancestors. This is the annotation step of [16].
func (o *Ontology) Annotate(md *gdm.Metadata) []string {
	seen := make(map[string]bool)
	addConcepts := func(term string) {
		for _, id := range o.Lookup(term) {
			if !seen[id] {
				seen[id] = true
				for _, a := range o.Ancestors(id) {
					seen[a] = true
				}
			}
		}
	}
	for _, p := range md.Pairs() {
		addConcepts(p[0])
		addConcepts(p[1])
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Expand performs ontological query expansion: the surface terms of every
// concept matching the query term plus the terms of all its descendants.
// A keyword search with the expanded term set retrieves samples annotated
// with any subclass of the query concept (searching "cancer cell line"
// finds HeLa samples).
func (o *Ontology) Expand(term string) []string {
	terms := make(map[string]bool)
	add := func(id string) {
		c := o.concepts[id]
		if c == nil {
			return
		}
		terms[norm(c.Name)] = true
		for _, s := range c.Synonyms {
			terms[norm(s)] = true
		}
	}
	for _, id := range o.Lookup(term) {
		add(id)
		for _, d := range o.Descendants(id) {
			add(d)
		}
	}
	if len(terms) == 0 {
		// Unknown terms expand to themselves so search degrades gracefully
		// to plain keyword matching.
		return []string{norm(term)}
	}
	out := make([]string, 0, len(terms))
	for t := range terms {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// ConceptsFor returns the concept IDs for a query term together with all
// their descendants — the concept-level counterpart of Expand.
func (o *Ontology) ConceptsFor(term string) []string {
	seen := make(map[string]bool)
	for _, id := range o.Lookup(term) {
		seen[id] = true
		for _, d := range o.Descendants(id) {
			seen[d] = true
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Biomedical builds the compact UMLS stand-in used throughout the repo:
// cell lines, tissues, assays, antibodies/marks and diseases with the IS-A
// structure the Section 4.3 experiments exercise.
func Biomedical() *Ontology {
	o := New()
	// Roots.
	o.MustAdd("C:ENTITY", "biomedical entity", nil)
	o.MustAdd("C:CELL", "cell line", nil, "C:ENTITY")
	o.MustAdd("C:TISSUE", "tissue", nil, "C:ENTITY")
	o.MustAdd("C:ASSAY", "assay", []string{"experiment type"}, "C:ENTITY")
	o.MustAdd("C:DISEASE", "disease", nil, "C:ENTITY")
	o.MustAdd("C:TARGET", "molecular target", nil, "C:ENTITY")

	// Diseases.
	o.MustAdd("C:CANCER", "cancer", []string{"neoplasm", "tumor", "malignancy"}, "C:DISEASE")
	o.MustAdd("C:CERVCA", "cervical carcinoma", nil, "C:CANCER")
	o.MustAdd("C:LEUK", "leukemia", []string{"CML"}, "C:CANCER")
	o.MustAdd("C:HEPCA", "hepatocellular carcinoma", []string{"liver cancer"}, "C:CANCER")
	o.MustAdd("C:BRCA", "breast carcinoma", []string{"breast cancer"}, "C:CANCER")

	// Cell lines.
	o.MustAdd("C:CANCERCELL", "cancer cell line", []string{"tumor cell line"}, "C:CELL")
	o.MustAdd("C:NORMCELL", "normal cell line", nil, "C:CELL")
	o.MustAdd("C:HELA", "HeLa-S3", []string{"HeLa", "hela s3"}, "C:CANCERCELL", "C:CERVCA")
	o.MustAdd("C:K562", "K562", nil, "C:CANCERCELL", "C:LEUK")
	o.MustAdd("C:HEPG2", "HepG2", nil, "C:CANCERCELL", "C:HEPCA")
	o.MustAdd("C:MCF7", "MCF-7", []string{"MCF7"}, "C:CANCERCELL", "C:BRCA")
	o.MustAdd("C:GM12878", "GM12878", nil, "C:NORMCELL")
	o.MustAdd("C:H1", "H1-hESC", []string{"H1", "embryonic stem cell"}, "C:NORMCELL")

	// Assays.
	o.MustAdd("C:SEQ", "sequencing assay", []string{"NGS"}, "C:ASSAY")
	o.MustAdd("C:CHIPSEQ", "ChipSeq", []string{"ChIP-seq", "chromatin immunoprecipitation"}, "C:SEQ")
	o.MustAdd("C:RNASEQ", "RnaSeq", []string{"RNA-seq", "transcriptome profiling"}, "C:SEQ")
	o.MustAdd("C:DNASE", "DnaseSeq", []string{"DNase-seq"}, "C:SEQ")
	o.MustAdd("C:CHIAPET", "ChIA-PET", nil, "C:SEQ")
	o.MustAdd("C:REPLI", "Repli-seq", nil, "C:SEQ")

	// Targets: transcription factors and histone marks.
	o.MustAdd("C:TF", "transcription factor", nil, "C:TARGET")
	o.MustAdd("C:HISTONE", "histone mark", []string{"histone modification"}, "C:TARGET")
	o.MustAdd("C:CTCF", "CTCF", nil, "C:TF")
	o.MustAdd("C:POL2", "POLR2A", []string{"Pol2", "RNA polymerase II"}, "C:TF")
	o.MustAdd("C:MYC", "MYC", []string{"c-Myc"}, "C:TF")
	o.MustAdd("C:REST", "REST", nil, "C:TF")
	o.MustAdd("C:EP300", "EP300", []string{"p300"}, "C:TF")
	o.MustAdd("C:K27AC", "H3K27ac", nil, "C:HISTONE")
	o.MustAdd("C:K4ME1", "H3K4me1", nil, "C:HISTONE")
	o.MustAdd("C:K4ME3", "H3K4me3", nil, "C:HISTONE")

	// Tissues.
	o.MustAdd("C:BLOOD", "blood", nil, "C:TISSUE")
	o.MustAdd("C:LIVER", "liver", nil, "C:TISSUE")
	o.MustAdd("C:CERVIX", "cervix", nil, "C:TISSUE")
	return o
}
