package ontology

import (
	"testing"

	"genogo/internal/gdm"
)

func TestAddAndLookup(t *testing.T) {
	o := New()
	o.MustAdd("R", "root", nil)
	o.MustAdd("A", "alpha", []string{"first letter"}, "R")
	if o.Len() != 2 {
		t.Fatalf("Len = %d", o.Len())
	}
	if ids := o.Lookup("ALPHA"); len(ids) != 1 || ids[0] != "A" {
		t.Errorf("Lookup(ALPHA) = %v", ids)
	}
	if ids := o.Lookup("First Letter"); len(ids) != 1 || ids[0] != "A" {
		t.Errorf("synonym lookup = %v", ids)
	}
	if ids := o.Lookup("nothing"); len(ids) != 0 {
		t.Errorf("unknown lookup = %v", ids)
	}
	if c := o.Concept("A"); c == nil || c.Name != "alpha" {
		t.Error("Concept lookup failed")
	}
}

func TestAddErrors(t *testing.T) {
	o := New()
	o.MustAdd("R", "root", nil)
	if err := o.Add("R", "dup", nil); err == nil {
		t.Error("duplicate accepted")
	}
	if err := o.Add("X", "x", nil, "MISSING"); err == nil {
		t.Error("unknown parent accepted")
	}
	if err := o.Add("", "x", nil); err == nil {
		t.Error("empty ID accepted")
	}
}

func TestAncestorsAndDescendants(t *testing.T) {
	o := Biomedical()
	anc := o.Ancestors("C:HELA")
	want := map[string]bool{
		"C:CANCERCELL": true, "C:CELL": true, "C:CERVCA": true,
		"C:CANCER": true, "C:DISEASE": true, "C:ENTITY": true,
	}
	if len(anc) != len(want) {
		t.Fatalf("Ancestors(HELA) = %v", anc)
	}
	for _, a := range anc {
		if !want[a] {
			t.Errorf("unexpected ancestor %s", a)
		}
	}
	desc := o.Descendants("C:CANCERCELL")
	if len(desc) != 4 {
		t.Errorf("Descendants(cancer cell line) = %v", desc)
	}
	if len(o.Descendants("C:HELA")) != 0 {
		t.Error("leaf has descendants")
	}
	if len(o.Ancestors("UNKNOWN")) != 0 {
		t.Error("unknown concept has ancestors")
	}
}

func TestAnnotateWithClosure(t *testing.T) {
	o := Biomedical()
	md := gdm.MetadataFrom(map[string]string{
		"cell":     "HeLa-S3",
		"dataType": "ChipSeq",
		"note":     "nothing ontological",
	})
	got := map[string]bool{}
	for _, id := range o.Annotate(md) {
		got[id] = true
	}
	// Direct matches.
	for _, id := range []string{"C:HELA", "C:CHIPSEQ"} {
		if !got[id] {
			t.Errorf("missing direct concept %s", id)
		}
	}
	// Closure.
	for _, id := range []string{"C:CANCER", "C:CANCERCELL", "C:SEQ", "C:ASSAY", "C:ENTITY"} {
		if !got[id] {
			t.Errorf("missing closure concept %s", id)
		}
	}
	if got["C:K562"] {
		t.Error("unrelated concept annotated")
	}
}

func TestExpand(t *testing.T) {
	o := Biomedical()
	terms := map[string]bool{}
	for _, tm := range o.Expand("cancer cell line") {
		terms[tm] = true
	}
	for _, want := range []string{"hela-s3", "hela", "k562", "hepg2", "mcf-7", "cancer cell line", "tumor cell line"} {
		if !terms[want] {
			t.Errorf("expansion missing %q (have %v)", want, terms)
		}
	}
	if terms["gm12878"] {
		t.Error("normal cell line leaked into cancer expansion")
	}
	// Unknown terms expand to themselves.
	if got := o.Expand("flux capacitor"); len(got) != 1 || got[0] != "flux capacitor" {
		t.Errorf("unknown expansion = %v", got)
	}
}

func TestExpandViaSynonym(t *testing.T) {
	o := Biomedical()
	terms := map[string]bool{}
	for _, tm := range o.Expand("neoplasm") { // synonym of cancer
		terms[tm] = true
	}
	if !terms["cervical carcinoma"] || !terms["leukemia"] {
		t.Errorf("synonym expansion missing subclasses: %v", terms)
	}
}

func TestConceptsFor(t *testing.T) {
	o := Biomedical()
	ids := map[string]bool{}
	for _, id := range o.ConceptsFor("histone mark") {
		ids[id] = true
	}
	for _, want := range []string{"C:HISTONE", "C:K27AC", "C:K4ME1", "C:K4ME3"} {
		if !ids[want] {
			t.Errorf("ConceptsFor missing %s", want)
		}
	}
	if len(o.ConceptsFor("xyzzy")) != 0 {
		t.Error("unknown term resolved")
	}
}

func TestBiomedicalWellFormed(t *testing.T) {
	o := Biomedical()
	if o.Len() < 30 {
		t.Errorf("biomedical ontology suspiciously small: %d", o.Len())
	}
	// Every concept except the root reaches C:ENTITY.
	for id := range o.concepts {
		if id == "C:ENTITY" {
			continue
		}
		anc := o.Ancestors(id)
		found := false
		for _, a := range anc {
			if a == "C:ENTITY" {
				found = true
			}
		}
		if !found {
			t.Errorf("concept %s not rooted at C:ENTITY", id)
		}
	}
}
