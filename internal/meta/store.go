// Package meta implements the metadata-side services of the paper: an
// indexed store of sample metadata across datasets, keyword search (Section
// 4.5 "metadata search"), ontology-mediated search with semantic closure
// (Section 4.3), precision/recall evaluation, and a LIMS-style curation
// report for the metadata sloppiness Section 1 describes.
package meta

import (
	"sort"
	"strings"

	"genogo/internal/gdm"
	"genogo/internal/ontology"
)

// Entry identifies one sample's metadata inside the store.
type Entry struct {
	Dataset string
	Sample  string
	Meta    *gdm.Metadata
}

// Key returns the unique "dataset/sample" key of the entry.
func (e Entry) Key() string { return e.Dataset + "/" + e.Sample }

// Store indexes sample metadata for search.
type Store struct {
	entries []Entry
	// token index: lower-cased whitespace token -> entry indices (sorted,
	// unique).
	tokens map[string][]int
	// concept index, filled by AnnotateWith.
	concepts  map[string][]int
	annotated bool
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{tokens: make(map[string][]int), concepts: make(map[string][]int)}
}

// AddDataset indexes every sample of the dataset.
func (s *Store) AddDataset(ds *gdm.Dataset) {
	for _, smp := range ds.Samples {
		s.Add(Entry{Dataset: ds.Name, Sample: smp.ID, Meta: smp.Meta})
	}
}

// Add indexes one entry.
func (s *Store) Add(e Entry) {
	idx := len(s.entries)
	s.entries = append(s.entries, e)
	seen := make(map[string]bool)
	for _, p := range e.Meta.Pairs() {
		for _, tok := range tokenize(p[0]) {
			seen[tok] = true
		}
		for _, tok := range tokenize(p[1]) {
			seen[tok] = true
		}
	}
	for tok := range seen {
		s.tokens[tok] = append(s.tokens[tok], idx)
	}
}

// Len returns the number of indexed samples.
func (s *Store) Len() int { return len(s.entries) }

// Entries returns all indexed entries.
func (s *Store) Entries() []Entry { return s.entries }

// tokenize lower-cases and splits on non-alphanumeric boundaries, keeping
// the full normalized string too so multi-word terms match exactly.
func tokenize(text string) []string {
	lower := strings.ToLower(strings.TrimSpace(text))
	if lower == "" {
		return nil
	}
	fields := strings.FieldsFunc(lower, func(r rune) bool {
		return !(r >= 'a' && r <= 'z') && !(r >= '0' && r <= '9')
	})
	out := append(fields, lower)
	return out
}

// SearchKeyword returns the entries whose metadata matches every keyword.
// A keyword matches via the token index when it is a single token, and via
// substring scan otherwise, mirroring free-text search services.
func (s *Store) SearchKeyword(keywords ...string) []Entry {
	if len(keywords) == 0 {
		return nil
	}
	var result map[int]bool
	for _, kw := range keywords {
		matches := s.matchOne(kw)
		if result == nil {
			result = matches
			continue
		}
		for idx := range result {
			if !matches[idx] {
				delete(result, idx)
			}
		}
	}
	return s.collect(result)
}

// SearchAny returns entries matching at least one of the keywords — the
// primitive ontological expansion builds on.
func (s *Store) SearchAny(keywords ...string) []Entry {
	result := make(map[int]bool)
	for _, kw := range keywords {
		for idx := range s.matchOne(kw) {
			result[idx] = true
		}
	}
	return s.collect(result)
}

func (s *Store) matchOne(kw string) map[int]bool {
	out := make(map[int]bool)
	lower := strings.ToLower(strings.TrimSpace(kw))
	if lower == "" {
		return out
	}
	if idxs, ok := s.tokens[lower]; ok {
		for _, i := range idxs {
			out[i] = true
		}
	}
	// Substring fallback catches partial words and multi-word phrases that
	// are not verbatim values.
	for i, e := range s.entries {
		if !out[i] && e.Meta.MatchText(lower) {
			out[i] = true
		}
	}
	return out
}

func (s *Store) collect(set map[int]bool) []Entry {
	idxs := make([]int, 0, len(set))
	for i := range set {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]Entry, len(idxs))
	for i, idx := range idxs {
		out[i] = s.entries[idx]
	}
	return out
}

// AnnotateWith computes the semantic annotation (with closure) of every
// entry against the ontology and builds the concept index — the
// preprocessing step of [16].
func (s *Store) AnnotateWith(o *ontology.Ontology) {
	s.concepts = make(map[string][]int)
	for i, e := range s.entries {
		for _, c := range o.Annotate(e.Meta) {
			s.concepts[c] = append(s.concepts[c], i)
		}
	}
	s.annotated = true
}

// SearchOntological resolves the term against the ontology and returns every
// entry annotated with a matching concept or any of its descendants.
// Entries are found even when their metadata uses a synonym or a subclass
// of the query term (searching "cancer" finds HeLa-S3 samples). Requires
// AnnotateWith first; falls back to keyword search otherwise.
func (s *Store) SearchOntological(o *ontology.Ontology, term string) []Entry {
	if !s.annotated {
		return s.SearchKeyword(term)
	}
	ids := o.ConceptsFor(term)
	if len(ids) == 0 {
		return s.SearchKeyword(term)
	}
	set := make(map[int]bool)
	for _, id := range ids {
		for _, idx := range s.concepts[id] {
			set[idx] = true
		}
	}
	return s.collect(set)
}

// PrecisionRecall computes the classic retrieval measures of Section 4.5
// against a relevant-set keyed by Entry.Key().
func PrecisionRecall(got []Entry, relevant map[string]bool) (precision, recall float64) {
	if len(got) == 0 {
		if len(relevant) == 0 {
			return 1, 1
		}
		return 1, 0
	}
	hit := 0
	for _, e := range got {
		if relevant[e.Key()] {
			hit++
		}
	}
	precision = float64(hit) / float64(len(got))
	if len(relevant) == 0 {
		recall = 1
	} else {
		recall = float64(hit) / float64(len(relevant))
	}
	return precision, recall
}

// CurationReport counts, per mandatory attribute, how many indexed samples
// omit it — the LIMS compliance check Section 1 motivates ("biologists are
// very liberal in omitting most of it").
func (s *Store) CurationReport(mandatory []string) map[string]int {
	out := make(map[string]int, len(mandatory))
	for _, attr := range mandatory {
		missing := 0
		for _, e := range s.entries {
			if !e.Meta.Has(attr) {
				missing++
			}
		}
		out[attr] = missing
	}
	return out
}
