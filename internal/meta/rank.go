package meta

import (
	"math"
	"sort"
	"strings"
)

// RankedEntry is a search hit with a relevance score.
type RankedEntry struct {
	Entry
	Score float64
}

// SearchRanked answers a free-text query with entries ranked by a TF-IDF
// score: each query token contributes its inverse document frequency to
// every entry matching it, so rare, discriminative terms (a specific
// antibody) outweigh ubiquitous ones (the assay name every sample carries).
// This realizes the "classical measures" ranking of the paper's Section 4.5
// metadata search. Entries matching no token are omitted; ties break by
// entry order.
func (s *Store) SearchRanked(query string) []RankedEntry {
	tokens := tokenize(query)
	if len(tokens) == 0 {
		return nil
	}
	n := float64(len(s.entries))
	scores := make(map[int]float64)
	seenToken := make(map[string]bool)
	for _, tok := range tokens {
		if seenToken[tok] {
			continue
		}
		seenToken[tok] = true
		matches := s.matchOne(tok)
		if len(matches) == 0 {
			continue
		}
		idf := math.Log(1 + n/float64(len(matches)))
		for idx := range matches {
			// Term frequency inside one sample's metadata is almost always
			// 0/1 (attributes are near-unique), so the score reduces to a
			// sum of matched idfs weighted by how exactly the token matched.
			weight := 1.0
			if exactTokenMatch(s.entries[idx], tok) {
				weight = 2.0
			}
			scores[idx] += idf * weight
		}
	}
	out := make([]RankedEntry, 0, len(scores))
	for idx, score := range scores {
		out = append(out, RankedEntry{Entry: s.entries[idx], Score: score})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}

// exactTokenMatch reports whether the token equals (rather than merely
// being contained in) one of the entry's metadata tokens.
func exactTokenMatch(e Entry, tok string) bool {
	for _, p := range e.Meta.Pairs() {
		for _, t := range tokenize(p[0]) {
			if t == tok {
				return true
			}
		}
		for _, t := range tokenize(p[1]) {
			if t == tok {
				return true
			}
		}
	}
	return false
}

// Suggest returns up to k attribute values starting with the prefix,
// ordered by how many samples carry them — the type-ahead primitive of a
// search UI over the repository.
func (s *Store) Suggest(prefix string, k int) []string {
	prefix = strings.ToLower(strings.TrimSpace(prefix))
	if prefix == "" || k <= 0 {
		return nil
	}
	counts := make(map[string]int)
	for _, e := range s.entries {
		for _, p := range e.Meta.Pairs() {
			v := p[1]
			if strings.HasPrefix(strings.ToLower(v), prefix) {
				counts[v]++
			}
		}
	}
	vals := make([]string, 0, len(counts))
	for v := range counts {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool {
		if counts[vals[i]] != counts[vals[j]] {
			return counts[vals[i]] > counts[vals[j]]
		}
		return vals[i] < vals[j]
	})
	if k < len(vals) {
		vals = vals[:k]
	}
	return vals
}
