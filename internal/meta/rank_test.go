package meta

import (
	"testing"

	"genogo/internal/gdm"
)

func rankStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	ds := gdm.NewDataset("D", gdm.MustSchema())
	add := func(id string, kv map[string]string) {
		smp := gdm.NewSample(id)
		for k, v := range kv {
			smp.Meta.Add(k, v)
		}
		ds.MustAdd(smp)
	}
	// "ChipSeq" is ubiquitous; "CTCF" is rare and discriminative.
	add("s1", map[string]string{"dataType": "ChipSeq", "antibody": "CTCF"})
	add("s2", map[string]string{"dataType": "ChipSeq", "antibody": "MYC"})
	add("s3", map[string]string{"dataType": "ChipSeq", "antibody": "REST"})
	add("s4", map[string]string{"dataType": "ChipSeq"})
	add("s5", map[string]string{"dataType": "RnaSeq"})
	s.AddDataset(ds)
	return s
}

func TestSearchRankedPrefersRareTerms(t *testing.T) {
	s := rankStore(t)
	hits := s.SearchRanked("ChipSeq CTCF")
	if len(hits) != 4 {
		t.Fatalf("hits = %d", len(hits))
	}
	// s1 matches both tokens, the rare one included: it must rank first
	// with a strictly higher score.
	if hits[0].Sample != "s1" {
		t.Errorf("top hit = %s", hits[0].Sample)
	}
	if hits[0].Score <= hits[1].Score {
		t.Errorf("scores not discriminating: %v vs %v", hits[0].Score, hits[1].Score)
	}
	// Scores are non-increasing.
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Errorf("ranking not sorted at %d", i)
		}
	}
}

func TestSearchRankedEdgeCases(t *testing.T) {
	s := rankStore(t)
	if got := s.SearchRanked(""); got != nil {
		t.Errorf("empty query = %v", got)
	}
	if got := s.SearchRanked("zzz-nothing"); len(got) != 0 {
		t.Errorf("no-match query = %v", got)
	}
	// Repeated tokens count once.
	a := s.SearchRanked("CTCF")
	b := s.SearchRanked("CTCF CTCF CTCF")
	if len(a) != len(b) || a[0].Score != b[0].Score {
		t.Errorf("repeated tokens changed scoring: %v vs %v", a[0].Score, b[0].Score)
	}
}

func TestSuggest(t *testing.T) {
	s := rankStore(t)
	got := s.Suggest("C", 5)
	// "ChipSeq" appears 4 times, "CTCF" once.
	if len(got) != 2 || got[0] != "ChipSeq" || got[1] != "CTCF" {
		t.Errorf("Suggest = %v", got)
	}
	if got := s.Suggest("C", 1); len(got) != 1 || got[0] != "ChipSeq" {
		t.Errorf("Suggest k=1 = %v", got)
	}
	if s.Suggest("", 5) != nil || s.Suggest("C", 0) != nil {
		t.Error("degenerate suggest not nil")
	}
	if got := s.Suggest("zzz", 5); len(got) != 0 {
		t.Errorf("no-prefix suggest = %v", got)
	}
}
