package meta

import (
	"testing"

	"genogo/internal/gdm"
	"genogo/internal/ontology"
	"genogo/internal/synth"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	schema := gdm.MustSchema()
	ds := gdm.NewDataset("ENCODE", schema)
	add := func(id string, kv map[string]string) {
		smp := gdm.NewSample(id)
		for k, v := range kv {
			smp.Meta.Add(k, v)
		}
		ds.MustAdd(smp)
	}
	add("s1", map[string]string{"cell": "HeLa-S3", "dataType": "ChipSeq", "antibody": "CTCF"})
	add("s2", map[string]string{"cell": "K562", "dataType": "ChipSeq", "antibody": "H3K27ac"})
	add("s3", map[string]string{"cell": "GM12878", "dataType": "RnaSeq"})
	add("s4", map[string]string{"cell": "HepG2", "dataType": "DnaseSeq", "treatment": "IFNg"})
	s.AddDataset(ds)
	return s
}

func keys(es []Entry) map[string]bool {
	out := map[string]bool{}
	for _, e := range es {
		out[e.Key()] = true
	}
	return out
}

func TestSearchKeyword(t *testing.T) {
	s := testStore(t)
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	got := keys(s.SearchKeyword("chipseq"))
	if len(got) != 2 || !got["ENCODE/s1"] || !got["ENCODE/s2"] {
		t.Errorf("chipseq = %v", got)
	}
	got = keys(s.SearchKeyword("ChipSeq", "CTCF"))
	if len(got) != 1 || !got["ENCODE/s1"] {
		t.Errorf("AND query = %v", got)
	}
	// Substring matching: "hela" matches HeLa-S3.
	got = keys(s.SearchKeyword("hela"))
	if len(got) != 1 || !got["ENCODE/s1"] {
		t.Errorf("substring = %v", got)
	}
	if len(s.SearchKeyword("nonexistent")) != 0 {
		t.Error("phantom match")
	}
	if s.SearchKeyword() != nil {
		t.Error("empty query returned entries")
	}
}

func TestSearchAny(t *testing.T) {
	s := testStore(t)
	got := keys(s.SearchAny("k562", "gm12878"))
	if len(got) != 2 || !got["ENCODE/s2"] || !got["ENCODE/s3"] {
		t.Errorf("SearchAny = %v", got)
	}
}

func TestOntologicalSearchBeatsKeyword(t *testing.T) {
	s := testStore(t)
	o := ontology.Biomedical()

	// Plain keyword search for "cancer" finds nothing: no sample says
	// "cancer" verbatim.
	kw := s.SearchKeyword("cancer")
	if len(kw) != 0 {
		t.Fatalf("keyword cancer = %v", keys(kw))
	}
	// Ontological search finds the three cancer cell line samples.
	s.AnnotateWith(o)
	got := keys(s.SearchOntological(o, "cancer"))
	want := map[string]bool{"ENCODE/s1": true, "ENCODE/s2": true, "ENCODE/s4": true}
	if len(got) != len(want) {
		t.Fatalf("ontological cancer = %v", got)
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing %s", k)
		}
	}
	// Recall monotonicity (DESIGN.md invariant): expansion only adds.
	for _, term := range []string{"ChipSeq", "K562", "sequencing assay", "histone mark"} {
		kwSet := keys(s.SearchKeyword(term))
		ontSet := keys(s.SearchOntological(o, term))
		for k := range kwSet {
			if !ontSet[k] {
				t.Errorf("term %q: ontological search lost keyword hit %s", term, k)
			}
		}
	}
}

func TestSearchOntologicalFallbacks(t *testing.T) {
	s := testStore(t)
	o := ontology.Biomedical()
	// Without annotation, falls back to keyword.
	if got := s.SearchOntological(o, "K562"); len(got) != 1 {
		t.Errorf("fallback without annotation = %d", len(got))
	}
	s.AnnotateWith(o)
	// Unknown term falls back to keyword search.
	if got := s.SearchOntological(o, "IFNg"); len(got) != 1 {
		t.Errorf("unknown-term fallback = %d", len(got))
	}
}

func TestPrecisionRecall(t *testing.T) {
	entries := []Entry{
		{Dataset: "D", Sample: "a"}, {Dataset: "D", Sample: "b"}, {Dataset: "D", Sample: "c"},
	}
	relevant := map[string]bool{"D/a": true, "D/b": true, "D/x": true}
	p, r := PrecisionRecall(entries, relevant)
	if p < 0.66 || p > 0.67 {
		t.Errorf("precision = %v", p)
	}
	if r < 0.66 || r > 0.67 {
		t.Errorf("recall = %v", r)
	}
	p, r = PrecisionRecall(nil, relevant)
	if p != 1 || r != 0 {
		t.Errorf("empty result: p=%v r=%v", p, r)
	}
	p, r = PrecisionRecall(nil, nil)
	if p != 1 || r != 1 {
		t.Errorf("empty/empty: p=%v r=%v", p, r)
	}
	p, r = PrecisionRecall(entries, nil)
	if p != 0 || r != 1 {
		t.Errorf("irrelevant results: p=%v r=%v", p, r)
	}
}

func TestCurationReport(t *testing.T) {
	s := testStore(t)
	rep := s.CurationReport([]string{"cell", "antibody", "treatment"})
	if rep["cell"] != 0 {
		t.Errorf("cell missing = %d", rep["cell"])
	}
	if rep["antibody"] != 2 {
		t.Errorf("antibody missing = %d", rep["antibody"])
	}
	if rep["treatment"] != 3 {
		t.Errorf("treatment missing = %d", rep["treatment"])
	}
}

func TestStoreWithSyntheticEncode(t *testing.T) {
	s := NewStore()
	ds := synth.New(9).Encode(synth.EncodeOptions{Samples: 300, MeanPeaks: 5})
	s.AddDataset(ds)
	o := ontology.Biomedical()
	s.AnnotateWith(o)
	// Every ChipSeq sample must be retrievable through the assay superclass.
	chip := keys(s.SearchKeyword("ChipSeq"))
	seqAssay := keys(s.SearchOntological(o, "sequencing assay"))
	for k := range chip {
		if !seqAssay[k] {
			t.Fatalf("ChipSeq sample %s not found under 'sequencing assay'", k)
		}
	}
	if len(seqAssay) < len(chip) {
		t.Error("superclass search smaller than subclass search")
	}
}
