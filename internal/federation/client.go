package federation

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"genogo/internal/engine"
	"genogo/internal/formats"
	"genogo/internal/gdm"
)

// Client talks to one federation node. BytesReceived accumulates payload
// traffic so experiments can compare the federated ("ship the query")
// architecture with the naive ("ship the data") one.
type Client struct {
	BaseURL       string
	HTTP          *http.Client
	BytesReceived int64
	BytesSent     int64
}

// NewClient builds a client for the node at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: http.DefaultClient}
}

func (c *Client) getJSON(path string, out any) error {
	resp, err := c.HTTP.Get(c.BaseURL + path)
	if err != nil {
		return fmt.Errorf("federation: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("federation: GET %s: %w", path, err)
	}
	c.BytesReceived += int64(len(body))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("federation: GET %s: %s: %s", path, resp.Status, body)
	}
	return json.Unmarshal(body, out)
}

func (c *Client) postJSON(path string, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("federation: POST %s: %w", path, err)
	}
	c.BytesSent += int64(len(payload))
	resp, err := c.HTTP.Post(c.BaseURL+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("federation: POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("federation: POST %s: %w", path, err)
	}
	c.BytesReceived += int64(len(body))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("federation: POST %s: %s: %s", path, resp.Status, body)
	}
	return json.Unmarshal(body, out)
}

// ListDatasets fetches the node's dataset catalog.
func (c *Client) ListDatasets() ([]DatasetInfo, error) {
	var out []DatasetInfo
	if err := c.getJSON("/datasets", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Compile submits a script for compilation and size estimation.
func (c *Client) Compile(script, varName string) (CompileResponse, error) {
	var out CompileResponse
	err := c.postJSON("/compile", CompileRequest{Script: script, Var: varName}, &out)
	return out, err
}

// Execute runs a query remotely; the result stays staged at the node.
func (c *Client) Execute(script, varName string) (QueryResponse, error) {
	return c.ExecuteWithUserData(script, varName, nil)
}

// ExecuteWithUserData runs a query remotely, shipping a private user dataset
// alongside it. The dataset participates in this query only; the node never
// lists or stores it (Section 4.3's privacy-protected user input samples).
func (c *Client) ExecuteWithUserData(script, varName string, user *gdm.Dataset) (QueryResponse, error) {
	req := QueryRequest{Script: script, Var: varName}
	if user != nil {
		var buf bytes.Buffer
		if err := formats.EncodeDataset(&buf, user); err != nil {
			return QueryResponse{}, fmt.Errorf("federation: encoding user dataset: %w", err)
		}
		req.UserDataset = buf.String()
	}
	var out QueryResponse
	if err := c.postJSON("/query", req, &out); err != nil {
		return out, err
	}
	if !out.OK {
		return out, fmt.Errorf("federation: remote query failed: %s", out.Error)
	}
	return out, nil
}

// FetchChunk retrieves samples [start, start+count) of a staged result,
// returning the chunk and the staged total.
func (c *Client) FetchChunk(resultID string, start, count int) (*gdm.Dataset, int, error) {
	path := fmt.Sprintf("/results/%s?start=%d&count=%d", resultID, start, count)
	resp, err := c.HTTP.Get(c.BaseURL + path)
	if err != nil {
		return nil, 0, fmt.Errorf("federation: fetch %s: %w", resultID, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, fmt.Errorf("federation: fetch %s: %w", resultID, err)
	}
	c.BytesReceived += int64(len(body))
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("federation: fetch %s: %s: %s", resultID, resp.Status, body)
	}
	total, _ := strconv.Atoi(resp.Header.Get("X-Total-Samples"))
	ds, err := formats.DecodeDataset(bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	return ds, total, nil
}

// FetchAll retrieves a whole staged result in chunks of chunkSize samples —
// the "deferred result retrieval through limited staging" of Section 4.3.
func (c *Client) FetchAll(resultID string, chunkSize int) (*gdm.Dataset, error) {
	if chunkSize <= 0 {
		chunkSize = 8
	}
	var out *gdm.Dataset
	start := 0
	for {
		chunk, total, err := c.FetchChunk(resultID, start, chunkSize)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = gdm.NewDataset(chunk.Name, chunk.Schema)
		}
		out.Samples = append(out.Samples, chunk.Samples...)
		start += len(chunk.Samples)
		if start >= total || len(chunk.Samples) == 0 {
			break
		}
	}
	return out, nil
}

// Release frees a staged result at the node.
func (c *Client) Release(resultID string) error {
	req, err := http.NewRequest(http.MethodDelete, c.BaseURL+"/results/"+resultID, nil)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return fmt.Errorf("federation: release %s: %w", resultID, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("federation: release %s: %s", resultID, resp.Status)
	}
	return nil
}

// DownloadDataset pulls a whole remote dataset — the transfer the federated
// architecture exists to avoid; used for the naive baseline and by the
// genome-net crawler.
func (c *Client) DownloadDataset(name string) (*gdm.Dataset, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/datasets/" + name + "/stream")
	if err != nil {
		return nil, fmt.Errorf("federation: download %s: %w", name, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("federation: download %s: %w", name, err)
	}
	c.BytesReceived += int64(len(body))
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("federation: download %s: %s", name, resp.Status)
	}
	return formats.DecodeDataset(bytes.NewReader(body))
}

// Federator coordinates a query across several nodes: it ships the script
// to every node, executes locally there, pulls only results, and merges
// them into one dataset (sample union). This is the query-shipping
// architecture of Section 4.4.
type Federator struct {
	Clients []*Client
}

// BytesMoved totals payload traffic across all member clients.
func (f *Federator) BytesMoved() int64 {
	var total int64
	for _, c := range f.Clients {
		total += c.BytesReceived + c.BytesSent
	}
	return total
}

// Query runs the script on every node and merges the results.
func (f *Federator) Query(script, varName string, chunkSize int) (*gdm.Dataset, error) {
	var merged *gdm.Dataset
	for _, c := range f.Clients {
		qr, err := c.Execute(script, varName)
		if err != nil {
			return nil, err
		}
		ds, err := c.FetchAll(qr.ResultID, chunkSize)
		if err != nil {
			return nil, err
		}
		if err := c.Release(qr.ResultID); err != nil {
			return nil, err
		}
		if merged == nil {
			merged = ds
			continue
		}
		u, err := engine.Union(engine.Config{MetaFirst: true}, merged, ds)
		if err != nil {
			return nil, err
		}
		merged = u
	}
	return merged, nil
}

// QueryNaive is the baseline architecture: download every input dataset the
// script references from every node and evaluate locally. It moves the full
// inputs over the network instead of the results.
func (f *Federator) QueryNaive(script, varName string, datasets []string, cfg engine.Config) (*gdm.Dataset, error) {
	var merged *gdm.Dataset
	for _, c := range f.Clients {
		cat := engine.MapCatalog{}
		for _, name := range datasets {
			ds, err := c.DownloadDataset(name)
			if err != nil {
				return nil, err
			}
			cat[name] = ds
		}
		prog, err := parseScript(script)
		if err != nil {
			return nil, err
		}
		ds, err := evalScript(prog, varName, cfg, cat)
		if err != nil {
			return nil, err
		}
		if merged == nil {
			merged = ds
			continue
		}
		u, err := engine.Union(cfg, merged, ds)
		if err != nil {
			return nil, err
		}
		merged = u
	}
	return merged, nil
}
