package federation

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"genogo/internal/engine"
	"genogo/internal/formats"
	"genogo/internal/gdm"
	"genogo/internal/obs"
	"genogo/internal/resilience"
)

// Client-side resilience defaults.
const (
	// DefaultRequestTimeout bounds each HTTP request of a fresh client.
	DefaultRequestTimeout = 30 * time.Second
	// DefaultMaxBodyBytes caps each response body, bounding the memory a
	// misbehaving or malicious node can make a requester allocate.
	DefaultMaxBodyBytes = 256 << 20
	// releaseTimeout bounds the best-effort Release of a staged result on
	// failure paths whose own context has already expired.
	releaseTimeout = 5 * time.Second
)

// Client talks to one federation node. BytesReceived accumulates payload
// traffic so experiments can compare the federated ("ship the query")
// architecture with the naive ("ship the data") one.
//
// Retrier and Breaker are optional: when set, every request is retried per
// the retrier's policy and gated by the breaker (per-endpoint circuit
// breaking). A Client is safe for concurrent use: under a replica placement,
// legs with overlapping member sets dispatch to the same client at once.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// Retrier retries transient request failures (nil = no retries).
	Retrier *resilience.Retrier
	// Breaker fails fast against an endpoint that keeps failing
	// (nil = no circuit breaking).
	Breaker *resilience.Breaker
	// MaxBodyBytes caps response bodies; <= 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// BytesReceived and BytesSent are accessed atomically (read them via
	// Bytes while requests may be in flight).
	BytesReceived int64
	BytesSent     int64
}

// Bytes totals payload traffic through this client, safe against in-flight
// requests.
func (c *Client) Bytes() int64 {
	return atomic.LoadInt64(&c.BytesReceived) + atomic.LoadInt64(&c.BytesSent)
}

// Option configures a Client built by NewClient.
type Option func(*Client)

// WithHTTPClient substitutes the underlying HTTP client.
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.HTTP = h } }

// WithTransport substitutes the HTTP transport (e.g. a ChaosTransport).
func WithTransport(rt http.RoundTripper) Option {
	return func(c *Client) { c.HTTP.Transport = rt }
}

// WithTimeout sets the per-request timeout.
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.HTTP.Timeout = d } }

// WithRetrier enables retries.
func WithRetrier(r *resilience.Retrier) Option { return func(c *Client) { c.Retrier = r } }

// WithBreaker enables circuit breaking.
func WithBreaker(b *resilience.Breaker) Option { return func(c *Client) { c.Breaker = b } }

// WithMaxBodyBytes caps response bodies.
func WithMaxBodyBytes(n int64) Option { return func(c *Client) { c.MaxBodyBytes = n } }

// NewClient builds a client for the node at baseURL. Each client owns a
// dedicated http.Client with a sane timeout — never http.DefaultClient,
// whose lack of a timeout lets one dead node hang a requester forever.
func NewClient(baseURL string, opts ...Option) *Client {
	c := &Client{
		BaseURL: baseURL,
		HTTP:    &http.Client{Timeout: DefaultRequestTimeout},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

func (c *Client) maxBody() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return DefaultMaxBodyBytes
}

// readAll drains r under the configured body cap.
func (c *Client) readAll(r io.Reader) ([]byte, error) {
	limit := c.maxBody()
	b, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(b)) > limit {
		return nil, fmt.Errorf("response exceeds %d-byte cap", limit)
	}
	return b, nil
}

// truncateBody shortens an error payload for inclusion in error text.
func truncateBody(b []byte) string {
	const max = 256
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}

// do performs one HTTP exchange under the client's resilience policy:
// breaker-gated, retried per the retrier, body capped. It returns the
// response body and headers of the (first) attempt that answered with
// wantStatus; any other status is a *resilience.StatusError.
//
// Trace propagation: when the context carries a query identity
// (obs.WithQueryID) every request is stamped with X-Query-ID, and a
// coordinator span reference (withCallTrace) adds X-Parent-Span — the
// serving node files its execution under that identity in its own query
// registry. The call trace also counts attempts, making retries visible in
// federated profiles.
func (c *Client) do(ctx context.Context, method, path string, payload []byte, wantStatus int) ([]byte, http.Header, error) {
	var body []byte
	var hdr http.Header
	qid := obs.QueryIDFrom(ctx)
	ct := callTraceFrom(ctx)
	op := func(ctx context.Context) error {
		body, hdr = nil, nil
		if ct != nil {
			ct.attempts++
		}
		if err := c.Breaker.Allow(); err != nil {
			return err
		}
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
		if err != nil {
			return err
		}
		if qid != "" {
			req.Header.Set(obs.HeaderQueryID, qid)
		}
		if ct != nil && ct.parent != "" {
			req.Header.Set(obs.HeaderParentSpan, ct.parent)
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
			atomic.AddInt64(&c.BytesSent, int64(len(payload)))
		}
		resp, err := c.HTTP.Do(req)
		if err != nil {
			c.Breaker.Report(err)
			return err
		}
		defer resp.Body.Close()
		b, err := c.readAll(resp.Body)
		if err != nil {
			c.Breaker.Report(err)
			return err
		}
		atomic.AddInt64(&c.BytesReceived, int64(len(b)))
		if resp.StatusCode != wantStatus {
			serr := &resilience.StatusError{
				Code: resp.StatusCode, Status: resp.Status, Body: truncateBody(b),
			}
			// Shed responses (429/503 from the admission gate) say when to
			// come back; carry the hint so the retrier honors it instead of
			// its own backoff schedule.
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, perr := strconv.Atoi(ra); perr == nil && secs > 0 {
					serr.RetryAfter = time.Duration(secs) * time.Second
				}
			}
			c.Breaker.Report(serr)
			return serr
		}
		c.Breaker.Report(nil)
		body, hdr = b, resp.Header
		return nil
	}
	if err := c.Retrier.Do(ctx, op); err != nil {
		return nil, nil, err
	}
	return body, hdr, nil
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	body, _, err := c.do(ctx, http.MethodGet, path, nil, http.StatusOK)
	if err != nil {
		return fmt.Errorf("federation: GET %s: %w", path, err)
	}
	return json.Unmarshal(body, out)
}

func (c *Client) postJSON(ctx context.Context, path string, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("federation: POST %s: %w", path, err)
	}
	body, _, err := c.do(ctx, http.MethodPost, path, payload, http.StatusOK)
	if err != nil {
		return fmt.Errorf("federation: POST %s: %w", path, err)
	}
	return json.Unmarshal(body, out)
}

// ListDatasets fetches the node's dataset catalog.
func (c *Client) ListDatasets(ctx context.Context) ([]DatasetInfo, error) {
	var out []DatasetInfo
	if err := c.getJSON(ctx, "/datasets", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Compile submits a script for compilation and size estimation.
func (c *Client) Compile(ctx context.Context, script, varName string) (CompileResponse, error) {
	var out CompileResponse
	err := c.postJSON(ctx, "/compile", CompileRequest{Script: script, Var: varName}, &out)
	return out, err
}

// Execute runs a query remotely; the result stays staged at the node.
func (c *Client) Execute(ctx context.Context, script, varName string) (QueryResponse, error) {
	return c.execute(ctx, script, varName, nil, false)
}

// ExecuteProfiled runs a query remotely and asks the node to record and
// return its execution span tree (QueryResponse.Profile) — remote
// EXPLAIN ANALYZE.
func (c *Client) ExecuteProfiled(ctx context.Context, script, varName string) (QueryResponse, error) {
	return c.execute(ctx, script, varName, nil, true)
}

// ExecuteWithUserData runs a query remotely, shipping a private user dataset
// alongside it. The dataset participates in this query only; the node never
// lists or stores it (Section 4.3's privacy-protected user input samples).
func (c *Client) ExecuteWithUserData(ctx context.Context, script, varName string, user *gdm.Dataset) (QueryResponse, error) {
	return c.execute(ctx, script, varName, user, false)
}

func (c *Client) execute(ctx context.Context, script, varName string, user *gdm.Dataset, profile bool) (QueryResponse, error) {
	req := QueryRequest{Script: script, Var: varName, Profile: profile}
	if user != nil {
		var buf bytes.Buffer
		if err := formats.EncodeDataset(&buf, user); err != nil {
			return QueryResponse{}, fmt.Errorf("federation: encoding user dataset: %w", err)
		}
		req.UserDataset = buf.String()
	}
	var out QueryResponse
	if err := c.postJSON(ctx, "/query", req, &out); err != nil {
		return out, err
	}
	if !out.OK {
		return out, fmt.Errorf("federation: remote query failed: %s", out.Error)
	}
	return out, nil
}

// FetchChunk retrieves samples [start, start+count) of a staged result,
// returning the chunk and the staged total.
func (c *Client) FetchChunk(ctx context.Context, resultID string, start, count int) (*gdm.Dataset, int, error) {
	path := fmt.Sprintf("/results/%s?start=%d&count=%d", resultID, start, count)
	body, hdr, err := c.do(ctx, http.MethodGet, path, nil, http.StatusOK)
	if err != nil {
		return nil, 0, fmt.Errorf("federation: fetch %s: %w", resultID, err)
	}
	total, _ := strconv.Atoi(hdr.Get("X-Total-Samples"))
	ds, err := formats.DecodeDataset(bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	return ds, total, nil
}

// FetchAll retrieves a whole staged result in chunks of chunkSize samples —
// the "deferred result retrieval through limited staging" of Section 4.3.
//
// When the context carries a span (obs.WithSpan) each chunked-download stage
// records a CHUNK child span with its sample range, data volume, and retry
// attempts, so a federated profile shows exactly how a member's result
// traveled.
func (c *Client) FetchAll(ctx context.Context, resultID string, chunkSize int) (*gdm.Dataset, error) {
	if chunkSize <= 0 {
		chunkSize = 8
	}
	parent := obs.SpanFrom(ctx)
	var out *gdm.Dataset
	start := 0
	for {
		cctx := ctx
		var csp *obs.Span
		var ct *callTrace
		var began time.Time
		if parent != nil {
			csp = obs.NewSpan("CHUNK")
			csp.Detail = fmt.Sprintf("CHUNK %s [%d,%d)", resultID, start, start+chunkSize)
			csp.Mode = "fed"
			parent.AddChild(csp)
			ct = &callTrace{}
			if prev := callTraceFrom(ctx); prev != nil {
				ct.parent = prev.parent
			}
			cctx = withCallTrace(ctx, ct)
			began = time.Now()
		}
		chunk, total, err := c.FetchChunk(cctx, resultID, start, chunkSize)
		if csp != nil && ct.attempts > 1 {
			csp.SetAttr("attempts", strconv.Itoa(ct.attempts))
		}
		if err != nil {
			if csp != nil {
				csp.SetAttr("error", "fetch")
				csp.Finish(began)
			}
			return nil, err
		}
		if csp != nil {
			regions := 0
			for i := range chunk.Samples {
				regions += len(chunk.Samples[i].Regions)
			}
			csp.SetOutput(len(chunk.Samples), regions)
			csp.Finish(began)
		}
		if out == nil {
			out = gdm.NewDataset(chunk.Name, chunk.Schema)
		}
		out.Samples = append(out.Samples, chunk.Samples...)
		start += len(chunk.Samples)
		if start >= total || len(chunk.Samples) == 0 {
			break
		}
	}
	return out, nil
}

// Release frees a staged result at the node.
func (c *Client) Release(ctx context.Context, resultID string) error {
	_, _, err := c.do(ctx, http.MethodDelete, "/results/"+resultID, nil, http.StatusNoContent)
	if err != nil {
		return fmt.Errorf("federation: release %s: %w", resultID, err)
	}
	return nil
}

// DownloadDataset pulls a whole remote dataset — the transfer the federated
// architecture exists to avoid; used for the naive baseline and by the
// genome-net crawler.
func (c *Client) DownloadDataset(ctx context.Context, name string) (*gdm.Dataset, error) {
	body, _, err := c.do(ctx, http.MethodGet, "/datasets/"+name+"/stream", nil, http.StatusOK)
	if err != nil {
		return nil, fmt.Errorf("federation: download %s: %w", name, err)
	}
	return formats.DecodeDataset(bytes.NewReader(body))
}

// NodeFailure records one member's failure during a federated query.
type NodeFailure struct {
	Node  string // the member's base URL
	Stage string // "execute" or "fetch"
	Err   error
}

// String renders the failure for reports and logs.
func (nf NodeFailure) String() string {
	return fmt.Sprintf("%s (%s): %v", nf.Node, nf.Stage, nf.Err)
}

// PartialFailure is the structured degraded-mode report: exactly the
// members whose results are missing from a federated answer, and why.
// QueryID is the federated query's identity, so a partial-failure report
// correlates with the /debug/queries console entry and the slow-log lines
// of every node the query touched.
type PartialFailure struct {
	QueryID string
	Failed  []NodeFailure
}

// Error implements error, so a PartialFailure can travel as the query
// error when the failure is fatal (strict policy or missed quorum).
func (p *PartialFailure) Error() string {
	if p == nil || len(p.Failed) == 0 {
		return "federation: no node failures"
	}
	var b bytes.Buffer
	b.WriteString("federation: ")
	if p.QueryID != "" {
		fmt.Fprintf(&b, "query %s: ", p.QueryID)
	}
	fmt.Fprintf(&b, "%d node(s) failed:", len(p.Failed))
	for _, nf := range p.Failed {
		fmt.Fprintf(&b, " [%s]", nf.String())
	}
	return b.String()
}

// Nodes lists the failed members' base URLs, in client order.
func (p *PartialFailure) Nodes() []string {
	if p == nil {
		return nil
	}
	out := make([]string, len(p.Failed))
	for i, nf := range p.Failed {
		out[i] = nf.Node
	}
	return out
}

// Policy configures degraded-mode federation.
type Policy struct {
	// AllowPartial returns merged results from the reachable members when
	// some fail, instead of aborting the whole query.
	AllowPartial bool
	// Quorum is the minimum number of members that must answer for a
	// partial result to stand; <= 0 means 1.
	Quorum int
	// Deadline bounds the whole query (all members, all chunks); 0 means
	// the caller's context alone governs.
	Deadline time.Duration
}

func (p Policy) quorum() int {
	if p.Quorum > 0 {
		return p.Quorum
	}
	return 1
}

// Federator coordinates a query across several nodes: it ships the script
// to every node, executes locally there, pulls only results, and merges
// them into one dataset (sample union). This is the query-shipping
// architecture of Section 4.4. Members are queried concurrently; the
// Policy decides whether member failures abort the query or degrade it.
type Federator struct {
	Clients []*Client
	Policy  Policy
	// Queries is the registry federated queries register in for the
	// /debug/queries console; nil means the process-wide obs.Queries().
	Queries *obs.QueryRegistry

	// Placement, when non-nil, turns on replicated federation: data units
	// registered on R members collapse into replica groups, the query runs
	// one leg per group (served by any one replica, with failover to the
	// survivors when a member dies mid-query), and the merge dedups samples
	// by identity so overlapping replicas can never double-count. Nil keeps
	// the legacy layout: one leg per member, no failover.
	Placement *Placement
	// Prober, when non-nil, supplies member health for replica ordering:
	// legs try up members before suspect ones before down ones. Nil treats
	// every replica alike.
	Prober *Prober
	// Hedge configures hedged requests within a replica group.
	Hedge HedgePolicy

	// hedgeWin tracks recent leg latencies for the adaptive hedge delay.
	hedgeWin latencyWindow
}

// queries resolves the console registry.
func (f *Federator) queries() *obs.QueryRegistry {
	if f.Queries != nil {
		return f.Queries
	}
	return obs.Queries()
}

// BytesMoved totals payload traffic across all member clients.
func (f *Federator) BytesMoved() int64 {
	var total int64
	for _, c := range f.Clients {
		total += c.Bytes()
	}
	return total
}

// Query runs the script on every member concurrently and merges the
// results (sample union, in member order).
//
// Under the default strict policy any member failure aborts the query:
// the merged dataset is nil and the error carries the failure report.
// With Policy.AllowPartial, the reachable members' results are merged and
// returned together with a PartialFailure naming exactly the members that
// were skipped (nil when every member answered); the query only errors
// when fewer than Policy.Quorum members succeed.
//
// Every federated query gets a QueryID (reused from the context when
// obs.WithQueryID set one), propagated to members as X-Query-ID and
// registered in the query console; QueryProfiled additionally records the
// merged cross-node span tree.
func (f *Federator) Query(ctx context.Context, script, varName string, chunkSize int) (*gdm.Dataset, *PartialFailure, error) {
	ds, _, report, err := f.run(ctx, script, varName, chunkSize, false)
	return ds, report, err
}

// QueryNaive is the baseline architecture: download every input dataset the
// script references from every node and evaluate locally. It moves the full
// inputs over the network instead of the results.
func (f *Federator) QueryNaive(ctx context.Context, script, varName string, datasets []string, cfg engine.Config) (*gdm.Dataset, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var merged *gdm.Dataset
	for _, c := range f.Clients {
		cat := engine.MapCatalog{}
		for _, name := range datasets {
			ds, err := c.DownloadDataset(ctx, name)
			if err != nil {
				return nil, err
			}
			cat[name] = ds
		}
		prog, err := parseScript(script)
		if err != nil {
			return nil, err
		}
		ds, err := evalScript(prog, varName, cfg, cat)
		if err != nil {
			return nil, err
		}
		if merged == nil {
			merged = ds
			continue
		}
		u, err := engine.Union(cfg, merged, ds)
		if err != nil {
			return nil, err
		}
		merged = u
	}
	return merged, nil
}
