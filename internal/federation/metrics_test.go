package federation

import (
	"context"
	"strings"
	"testing"
	"time"

	"genogo/internal/obs"
	"genogo/internal/resilience"
)

// TestMetricsBreakerTransitions drives a breaker-gated client against a node
// behind a fully faulty ChaosTransport and checks the transition counter
// records the closed→open trip (and the half-open probe cycle after the
// cooldown), plus the retry and chaos-injection counters moving. Deltas only:
// the registry is process-global and the CI job runs this with -count=2.
func TestMetricsBreakerTransitions(t *testing.T) {
	_, ts := chaosNode(t, 41, 3)
	chaos := &resilience.ChaosTransport{Seed: 7, DropRate: 1}
	br := &resilience.Breaker{FailureThreshold: 2, Cooldown: 0} // default 5s cooldown
	c := chaosClient(ts.URL, chaos, 3)
	c.Breaker = br

	transitionsOpen := obs.Default().CounterVec("genogo_resilience_breaker_transitions_total",
		"Circuit-breaker state transitions, by destination state.", "to").With("open")
	retries := obs.Default().Counter("genogo_resilience_retries_total",
		"Retry attempts performed after a failed first attempt.")
	injections := obs.Default().Counter("genogo_resilience_chaos_injections_total",
		"Faults injected by ChaosTransport.")
	openBefore := transitionsOpen.Value()
	retriesBefore := retries.Value()
	injBefore := injections.Value()

	_, err := c.Execute(context.Background(), chaosScript, "X")
	if err == nil {
		t.Fatal("expected failure against a fully faulty transport")
	}
	if br.State() != resilience.Open {
		t.Fatalf("breaker state = %s, want open", br.State())
	}
	if d := transitionsOpen.Value() - openBefore; d != 1 {
		t.Errorf("open transitions delta = %d, want 1", d)
	}
	if d := retries.Value() - retriesBefore; d < 1 {
		t.Errorf("retries delta = %d, want >= 1", d)
	}
	if d := injections.Value() - injBefore; d < 2 {
		t.Errorf("chaos injections delta = %d, want >= 2", d)
	}
	// The open circuit fails fast without touching the transport.
	injMid := injections.Value()
	if _, err := c.Execute(context.Background(), chaosScript, "X"); err == nil {
		t.Fatal("expected fail-fast while open")
	}
	if d := injections.Value() - injMid; d != 0 {
		t.Errorf("open circuit still reached the transport (%d injections)", d)
	}
}

// TestMetricsFederationFamilies checks the federation metric families render
// in the exposition even before any series exists, and that a partial-failure
// query moves the member-latency and partial-failure metrics.
func TestMetricsFederationFamilies(t *testing.T) {
	var b strings.Builder
	if err := obs.Default().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		"# TYPE genogo_federation_member_latency_seconds histogram",
		"# TYPE genogo_federation_partial_failures_total counter",
		"# TYPE genogo_resilience_breaker_transitions_total counter",
		"# TYPE genogo_engine_queries_total counter",
	} {
		if !strings.Contains(b.String(), fam) {
			t.Errorf("exposition missing %q", fam)
		}
	}

	partials := obs.Default().Counter("genogo_federation_partial_failures_total",
		"Federated queries that ended with at least one member missing.")
	before := partials.Value()
	_, ts1 := chaosNode(t, 42, 2)
	_, ts2 := chaosNode(t, 43, 2)
	dead := chaosClient(ts2.URL, &resilience.ChaosTransport{Seed: 11, DropRate: 1}, 0)
	fed := &Federator{
		Clients: []*Client{NewClient(ts1.URL), dead},
		Policy:  Policy{AllowPartial: true},
	}
	if _, report, err := fed.Query(context.Background(), chaosScript, "X", 4); err != nil || report == nil {
		t.Fatalf("partial query: report=%v err=%v", report, err)
	}
	if d := partials.Value() - before; d != 1 {
		t.Errorf("partial failures delta = %d, want 1", d)
	}
	b.Reset()
	if err := obs.Default().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `genogo_federation_member_latency_seconds_count{member="`+ts1.URL+`"}`) {
		t.Errorf("member latency series for %s missing from exposition", ts1.URL)
	}
}

// TestMetricsProfileOverTheWire runs a remote query with profiling and checks
// the node ships back a span tree consistent with the staged result.
func TestMetricsProfileOverTheWire(t *testing.T) {
	_, ts := chaosNode(t, 44, 4)
	c := NewClient(ts.URL)
	qr, err := c.ExecuteProfiled(context.Background(), chaosScript, "X")
	if err != nil {
		t.Fatal(err)
	}
	if qr.Profile == nil {
		t.Fatal("no profile in response")
	}
	if qr.Profile.RegionsOut != qr.Regions || qr.Profile.SamplesOut != qr.Samples {
		t.Errorf("profile out = %ds/%dr, staged result = %ds/%dr",
			qr.Profile.SamplesOut, qr.Profile.RegionsOut, qr.Samples, qr.Regions)
	}
	if qr.Profile.Op == "" || len(qr.Profile.Render()) == 0 {
		t.Errorf("profile not renderable: %+v", qr.Profile)
	}
	// Unprofiled queries must not pay for (or leak) a profile.
	qr2, err := c.Execute(context.Background(), chaosScript, "X")
	if err != nil {
		t.Fatal(err)
	}
	if qr2.Profile != nil {
		t.Errorf("unprofiled response carries a profile")
	}
}

// TestMetricsReplicationFamilies checks the replication metric families
// (membership gauge, probe-latency histogram, failover and hedge counters,
// dedup counter) render in the Prometheus 0.0.4 exposition, and that a
// probed + failed-over query produces the expected series. Deltas only: the
// registry is process-global and the CI job runs this with -count=2.
func TestMetricsReplicationFamilies(t *testing.T) {
	var b strings.Builder
	if err := obs.Default().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		"# TYPE genogo_federation_member_up gauge",
		"# TYPE genogo_federation_probe_latency_seconds histogram",
		"# TYPE genogo_federation_failover_total counter",
		"# TYPE genogo_federation_hedges_total counter",
		"# TYPE genogo_federation_dedup_samples_total counter",
	} {
		if !strings.Contains(b.String(), fam) {
			t.Errorf("exposition missing %q", fam)
		}
	}

	rc := newReplCluster(t, [][]string{{"A", "B"}, {"A", "B"}})
	p := NewProber(rc.clients)
	p.Interval = time.Hour
	p.ProbeAll(context.Background())
	rc.outages[0].Kill()
	failoversBefore := metricFailovers.Value()
	fed := &Federator{
		Clients:   rc.clients,
		Policy:    Policy{AllowPartial: true},
		Placement: NewPlacement().Register("ENCODE", 0, 1),
		Prober:    p,
	}
	if _, report, err := fed.Query(context.Background(), replScript, "X", 4); err != nil || report != nil {
		t.Fatalf("err=%v report=%v", err, report)
	}
	if d := metricFailovers.Value() - failoversBefore; d != 1 {
		t.Errorf("failover delta = %d, want 1 (probe round saw it up; kill landed after)", d)
	}

	b.Reset()
	if err := obs.Default().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, series := range []string{
		`genogo_federation_member_up{member="` + rc.urls[0] + `"} 1`,
		`genogo_federation_member_up{member="` + rc.urls[1] + `"} 1`,
		`genogo_federation_probe_latency_seconds_count{member="` + rc.urls[0] + `"}`,
		`genogo_federation_failover_total `,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("exposition missing series %q", series)
		}
	}

	// The next probe round sees the dead member and flips its gauge to 0.
	p.ProbeAll(context.Background())
	b.Reset()
	if err := obs.Default().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `genogo_federation_member_up{member="`+rc.urls[0]+`"} 0`) {
		t.Error("dead member's membership gauge still reads up")
	}
}
