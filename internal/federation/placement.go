package federation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Placement is the federation's replica map: which members hold each
// replicated data unit. A unit is whatever the deployment shards by — a
// whole dataset name ("ENCODE") or a named shard of one ("ENCODE@chr1") —
// and registering it on R members declares that a query leg for it may be
// served by any one of them, because each holds the same samples.
//
// Declared at Federator construction, the placement decides the query's leg
// structure: members with identical unit sets collapse into one replica
// group, and the coordinator runs one leg per group, failing over (and
// hedging) within the group. A nil Placement is the legacy single-copy
// layout: one leg per member, no failover.
//
// Placement is immutable after construction-time Register calls; reads
// during queries need no locking.
type Placement struct {
	units map[string][]int // unit -> ascending member indices
	order []string         // units in first-registration order
}

// NewPlacement returns an empty replica map.
func NewPlacement() *Placement {
	return &Placement{units: make(map[string][]int)}
}

// Register places one data unit on the given member indices (into
// Federator.Clients). Registering the same unit again replaces its member
// set. Duplicate indices collapse; order does not matter. Returns the
// placement for chaining.
func (p *Placement) Register(unit string, members ...int) *Placement {
	set := make(map[int]bool, len(members))
	for _, m := range members {
		set[m] = true
	}
	ms := make([]int, 0, len(set))
	for m := range set {
		ms = append(ms, m)
	}
	sort.Ints(ms)
	if _, seen := p.units[unit]; !seen {
		p.order = append(p.order, unit)
	}
	p.units[unit] = ms
	return p
}

// Members reports the member indices holding a unit (nil when unknown).
func (p *Placement) Members(unit string) []int {
	if p == nil {
		return nil
	}
	return append([]int(nil), p.units[unit]...)
}

// Replicas reports a unit's replication factor (0 when unknown).
func (p *Placement) Replicas(unit string) int {
	if p == nil {
		return 0
	}
	return len(p.units[unit])
}

// Units lists the registered units in registration order.
func (p *Placement) Units() []string {
	if p == nil {
		return nil
	}
	return append([]string(nil), p.order...)
}

// Validate checks every registered member index against the federation size.
func (p *Placement) Validate(members int) error {
	if p == nil {
		return nil
	}
	for _, unit := range p.order {
		ms := p.units[unit]
		if len(ms) == 0 {
			return fmt.Errorf("federation: placement: unit %q has no members", unit)
		}
		for _, m := range ms {
			if m < 0 || m >= members {
				return fmt.Errorf("federation: placement: unit %q names member %d of a %d-member federation", unit, m, members)
			}
		}
	}
	return nil
}

// memberSetKey canonically names a member set ("0,2").
func memberSetKey(ms []int) string {
	var b strings.Builder
	for i, m := range ms {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(m))
	}
	return b.String()
}

// ReplicaGroup is one leg of a replicated federated query: the units that
// live on exactly this member set, servable by any one member of it.
type ReplicaGroup struct {
	// Key canonically names the member set ("0,2").
	Key string
	// Units lists the data units placed on this member set, in registration
	// order.
	Units []string
	// Members are the replica member indices, ascending.
	Members []int
}

// Groups derives the query legs: units with identical member sets collapse
// into one group, in first-registration order. Overlapping member sets
// across groups are legal — a member serving two groups returns its full
// local answer for each, and the coordinator's sample-identity dedup keeps
// the union exact.
func (p *Placement) Groups() []ReplicaGroup {
	if p == nil {
		return nil
	}
	byKey := make(map[string]int)
	var out []ReplicaGroup
	for _, unit := range p.order {
		ms := p.units[unit]
		key := memberSetKey(ms)
		i, seen := byKey[key]
		if !seen {
			i = len(out)
			byKey[key] = i
			out = append(out, ReplicaGroup{Key: key, Members: append([]int(nil), ms...)})
		}
		out[i].Units = append(out[i].Units, unit)
	}
	return out
}
