package federation

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"genogo/internal/engine"
	"genogo/internal/resilience"
	"genogo/internal/synth"
)

const chaosScript = `X = SELECT() ENCODE; MATERIALIZE X;`

// chaosNode builds a node whose transport is wrapped in a seeded
// ChaosTransport, returning the server (for staging assertions), the test
// server, and the chaos transport.
func chaosNode(t *testing.T, seed int64, samples int) (*Server, *httptest.Server) {
	t.Helper()
	g := synth.New(seed)
	srv := NewServer("n", engine.Config{Mode: engine.ModeSerial, MetaFirst: true},
		g.Encode(synth.EncodeOptions{Samples: samples, MeanPeaks: 8}))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func chaosClient(url string, chaos *resilience.ChaosTransport, retries int) *Client {
	opts := []Option{WithTransport(chaos)}
	if retries > 0 {
		opts = append(opts, WithRetrier(&resilience.Retrier{
			MaxAttempts: retries,
			BaseDelay:   time.Millisecond,
			MaxDelay:    5 * time.Millisecond,
		}))
	}
	return NewClient(url, opts...)
}

// TestPartialResultsUnderChaos: one member is completely down; the partial
// policy must return the healthy members' merged results and a report
// naming exactly the dead member.
func TestPartialResultsUnderChaos(t *testing.T) {
	const perNode = 5
	_, ts1 := chaosNode(t, 1, perNode)
	_, ts2 := chaosNode(t, 2, perNode)
	_, ts3 := chaosNode(t, 3, perNode)
	dead := chaosClient(ts2.URL, &resilience.ChaosTransport{Seed: 9, DropRate: 1}, 0)
	fed := &Federator{
		Clients: []*Client{NewClient(ts1.URL), dead, NewClient(ts3.URL)},
		Policy:  Policy{AllowPartial: true},
	}
	ds, report, err := fed.Query(context.Background(), chaosScript, "X", 4)
	if err != nil {
		t.Fatal(err)
	}
	if report == nil || len(report.Failed) != 1 {
		t.Fatalf("report = %+v", report)
	}
	if report.Failed[0].Node != ts2.URL || report.Failed[0].Stage != "execute" {
		t.Errorf("failure = %+v", report.Failed[0])
	}
	if len(ds.Samples) != 2*perNode {
		t.Errorf("merged %d samples from healthy members, want %d", len(ds.Samples), 2*perNode)
	}
}

// TestPartialResultsTransientFaults: every member sits behind a 30% fault
// rate with no retries. Whatever subset fails, the merged result must hold
// exactly the successful members' samples and the report exactly the rest.
func TestPartialResultsTransientFaults(t *testing.T) {
	const perNode, nodes = 4, 4
	var clients []*Client
	urls := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		_, ts := chaosNode(t, int64(10+i), perNode)
		urls[i] = ts.URL
		clients = append(clients, chaosClient(ts.URL,
			&resilience.ChaosTransport{Seed: int64(100 + i), ErrorRate: 0.2, DropRate: 0.1}, 0))
	}
	fed := &Federator{Clients: clients, Policy: Policy{AllowPartial: true}}
	ds, report, err := fed.Query(context.Background(), chaosScript, "X", 2)
	if err != nil {
		t.Fatal(err)
	}
	failed := map[string]bool{}
	if report != nil {
		for _, nf := range report.Failed {
			if failed[nf.Node] {
				t.Errorf("node %s reported twice", nf.Node)
			}
			failed[nf.Node] = true
			found := false
			for _, u := range urls {
				if u == nf.Node {
					found = true
				}
			}
			if !found {
				t.Errorf("report names unknown node %s", nf.Node)
			}
		}
	}
	healthy := nodes - len(failed)
	if healthy == 0 {
		t.Skip("all members failed under this seed; nothing to merge")
	}
	if len(ds.Samples) != healthy*perNode {
		t.Errorf("merged %d samples, want %d (healthy=%d)", len(ds.Samples), healthy*perNode, healthy)
	}
}

// TestRetriesDefeatLowFaultRate: with retries enabled and a <=10% transient
// fault rate, queries succeed fully — no partial report at all.
func TestRetriesDefeatLowFaultRate(t *testing.T) {
	const perNode, nodes = 4, 3
	var clients []*Client
	for i := 0; i < nodes; i++ {
		_, ts := chaosNode(t, int64(20+i), perNode)
		clients = append(clients, chaosClient(ts.URL,
			&resilience.ChaosTransport{Seed: int64(200 + i), ErrorRate: 0.05, DropRate: 0.05}, 5))
	}
	fed := &Federator{Clients: clients, Policy: Policy{AllowPartial: true}}
	ds, report, err := fed.Query(context.Background(), chaosScript, "X", 2)
	if err != nil {
		t.Fatal(err)
	}
	if report != nil {
		t.Fatalf("retries did not absorb the faults: %v", report)
	}
	if len(ds.Samples) != nodes*perNode {
		t.Errorf("samples = %d, want %d", len(ds.Samples), nodes*perNode)
	}
}

// TestStrictPolicyAbortsButReleases: under the strict (default) policy a
// member failure aborts the query — but results already staged at healthy
// members must still be released.
func TestStrictPolicyAbortsButReleases(t *testing.T) {
	srv1, ts1 := chaosNode(t, 30, 4)
	_, ts2 := chaosNode(t, 31, 4)
	dead := chaosClient(ts2.URL, &resilience.ChaosTransport{Seed: 5, DropRate: 1}, 0)
	fed := &Federator{Clients: []*Client{NewClient(ts1.URL), dead}}
	_, report, err := fed.Query(context.Background(), chaosScript, "X", 4)
	if err == nil {
		t.Fatal("strict policy swallowed a member failure")
	}
	if report == nil || len(report.Failed) != 1 || report.Failed[0].Node != ts2.URL {
		t.Fatalf("report = %+v", report)
	}
	if n := srv1.StagedCount(); n != 0 {
		t.Errorf("healthy member leaked %d staged results", n)
	}
}

// getSaboteur fails GET requests under prefix with a 500, leaving other
// methods (in particular DELETE /results/... releases) untouched.
type getSaboteur struct {
	inner   http.Handler
	trigger string
}

func (g *getSaboteur) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, g.trigger) {
		http.Error(w, "injected failure", http.StatusInternalServerError)
		return
	}
	g.inner.ServeHTTP(w, r)
}

// TestFetchFailureReleasesStaging: when execution stages a result but the
// fetch path keeps failing, the staged result must be released on the
// failure path — the leak TestStagingLimit's cap makes fatal.
func TestFetchFailureReleasesStaging(t *testing.T) {
	g := synth.New(40)
	srv := NewServer("n", engine.Config{Mode: engine.ModeSerial, MetaFirst: true},
		g.Encode(synth.EncodeOptions{Samples: 4, MeanPeaks: 8}))
	srv.maxStay = 2
	ts := httptest.NewServer(&getSaboteur{inner: srv.Handler(), trigger: "/results/"})
	t.Cleanup(ts.Close)
	fed := &Federator{Clients: []*Client{NewClient(ts.URL)}, Policy: Policy{AllowPartial: true}}
	// Run more failing queries than the staging cap; without the release
	// the third query would die with "staging area full" at execute.
	for i := 0; i < 5; i++ {
		_, report, err := fed.Query(context.Background(), chaosScript, "X", 4)
		if err == nil {
			t.Fatalf("query %d: fetch failure produced no error (report=%v)", i, report)
		}
		if report == nil || report.Failed[0].Stage != "fetch" {
			t.Fatalf("query %d: failure not at fetch stage: %+v", i, report)
		}
		if n := srv.StagedCount(); n != 0 {
			t.Fatalf("query %d leaked %d staged results", i, n)
		}
	}
}

// TestHungNodeBoundedByDeadline: a member with injected latency far beyond
// the query deadline cannot stall Federator.Query — the healthy members'
// results come back about when the deadline fires.
func TestHungNodeBoundedByDeadline(t *testing.T) {
	const perNode = 3
	_, ts1 := chaosNode(t, 50, perNode)
	_, ts2 := chaosNode(t, 51, perNode)
	hung := chaosClient(ts2.URL, &resilience.ChaosTransport{
		Seed: 1, LatencyRate: 1, Latency: 30 * time.Second,
	}, 0)
	fed := &Federator{
		Clients: []*Client{NewClient(ts1.URL), hung},
		Policy:  Policy{AllowPartial: true, Deadline: 300 * time.Millisecond},
	}
	start := time.Now()
	ds, report, err := fed.Query(context.Background(), chaosScript, "X", 4)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline did not bound the query: took %v", elapsed)
	}
	if len(ds.Samples) != perNode {
		t.Errorf("samples = %d, want %d from the healthy member", len(ds.Samples), perNode)
	}
	if report == nil || len(report.Failed) != 1 || report.Failed[0].Node != ts2.URL {
		t.Fatalf("report = %+v", report)
	}
	if !errors.Is(report.Failed[0].Err, context.DeadlineExceeded) {
		t.Errorf("hung node error = %v", report.Failed[0].Err)
	}
}

// TestQuorumPolicy: quorum below the success count passes, above it fails.
func TestQuorumPolicy(t *testing.T) {
	_, ts1 := chaosNode(t, 60, 3)
	_, ts2 := chaosNode(t, 61, 3)
	dead := func() *Client {
		return chaosClient(ts2.URL, &resilience.ChaosTransport{Seed: 3, DropRate: 1}, 0)
	}
	met := &Federator{
		Clients: []*Client{NewClient(ts1.URL), dead()},
		Policy:  Policy{AllowPartial: true, Quorum: 1},
	}
	if _, _, err := met.Query(context.Background(), chaosScript, "X", 4); err != nil {
		t.Fatalf("quorum 1 of 2 failed: %v", err)
	}
	missed := &Federator{
		Clients: []*Client{NewClient(ts1.URL), dead()},
		Policy:  Policy{AllowPartial: true, Quorum: 2},
	}
	ds, report, err := missed.Query(context.Background(), chaosScript, "X", 4)
	if err == nil || ds != nil {
		t.Fatalf("quorum 2 of 2 passed with a dead member (report=%v)", report)
	}
	var pf *PartialFailure
	if !errors.As(err, &pf) {
		t.Errorf("quorum error does not carry the report: %v", err)
	}
}

// TestBreakerFailsFast: after the breaker trips, requests stop reaching
// the endpoint entirely.
func TestBreakerFailsFast(t *testing.T) {
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL, WithBreaker(&resilience.Breaker{FailureThreshold: 3, Cooldown: time.Hour}))
	for i := 0; i < 3; i++ {
		if _, err := c.ListDatasets(context.Background()); err == nil {
			t.Fatal("500 swallowed")
		}
	}
	if hits != 3 {
		t.Fatalf("server hits before trip = %d", hits)
	}
	_, err := c.ListDatasets(context.Background())
	if !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("tripped breaker error = %v", err)
	}
	if hits != 3 {
		t.Fatalf("open breaker let a request through (hits=%d)", hits)
	}
}
