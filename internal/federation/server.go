// Package federation implements the federated query processing vision of
// Section 4.4 of the paper: each node owns its locally produced datasets;
// GMQL queries move from a requesting node to a remote node, are locally
// executed there, and only the (small) results travel back, with staged
// retrieval so the requester controls staging resources and communication
// load.
//
// The protocol is HTTP+JSON for control messages and the native GDM stream
// encoding for dataset payloads, exactly the three interactions the paper
// lists: dataset information, query compilation with result-size estimates,
// and execution with controlled result transmission.
package federation

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"genogo/internal/catalog"
	"genogo/internal/engine"
	"genogo/internal/formats"
	"genogo/internal/gdm"
	"genogo/internal/gmql"
	"genogo/internal/govern"
	"genogo/internal/obs"
)

// DatasetInfo describes one remote dataset: the metadata a requester needs
// to locate data of interest and formalize queries against its schema.
type DatasetInfo struct {
	Name           string         `json:"name"`
	Samples        int            `json:"samples"`
	Regions        int            `json:"regions"`
	EstimatedBytes int64          `json:"estimated_bytes"`
	Schema         []SchemaField  `json:"schema"`
	MetaAttributes map[string]int `json:"meta_attributes"` // attr -> #samples carrying it
}

// SchemaField is one schema entry on the wire.
type SchemaField struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// CompileRequest asks a node to compile (not run) a query.
type CompileRequest struct {
	Script string `json:"script"`
	Var    string `json:"var"`
}

// CompileResponse reports compilation results, including the result size
// estimate the paper's protocol requires.
type CompileResponse struct {
	OK       bool     `json:"ok"`
	Error    string   `json:"error,omitempty"`
	Explain  string   `json:"explain,omitempty"`
	Estimate Estimate `json:"estimate"`
}

// QueryRequest asks a node to execute a query and stage the result.
//
// UserDataset optionally carries a private input dataset of the requester
// (Section 4.3: "it will be possible to provide user input samples to the
// services, whose privacy will be protected"): the GDM stream encoding of a
// dataset that joins the node's catalog for this request only — it is never
// listed, stored, or visible to other requests.
type QueryRequest struct {
	Script      string `json:"script"`
	Var         string `json:"var"`
	UserDataset string `json:"user_dataset,omitempty"` // formats.EncodeDataset output
	// Profile asks the node to record an execution span tree and return it
	// in QueryResponse.Profile — EXPLAIN ANALYZE over the federation wire.
	Profile bool `json:"profile,omitempty"`
}

// QueryResponse describes a staged result.
type QueryResponse struct {
	OK       bool   `json:"ok"`
	Error    string `json:"error,omitempty"`
	ResultID string `json:"result_id,omitempty"`
	Samples  int    `json:"samples"`
	Regions  int    `json:"regions"`
	Bytes    int64  `json:"bytes"`
	// QueryID is the identity the node filed the execution under — the
	// request's X-Query-ID when present, otherwise minted by the node — and
	// Node names the answering node. Together they let a requester find this
	// execution in the node's /debug/queries console and slow log.
	QueryID string `json:"query_id,omitempty"`
	Node    string `json:"node,omitempty"`
	// Profile is the node-side execution span tree, present only when the
	// request asked for one.
	Profile *obs.Span `json:"profile,omitempty"`
}

// Server is one federation node.
type Server struct {
	name    string
	cfg     engine.Config
	mu      sync.Mutex
	data    map[string]*gdm.Dataset
	staged  map[string]*gdm.Dataset
	nextID  int
	maxStay int // max staged results kept (limited staging)

	// repo is the node's repository catalog: every registered dataset with
	// its zone statistics, served on /debug/repo.
	repo *catalog.Registry
	// statsMemo caches statsOf per dataset name (see Server.stats).
	statsMemo map[string]memoStats

	// SlowLog, when non-nil, receives a structured record for every query
	// this node executes slower than the log's threshold. Set it before
	// serving.
	SlowLog *obs.SlowQueryLog

	// Queries is the registry node-side executions register in for the
	// /debug/queries console; nil means the process-wide obs.Queries(). Set
	// it before serving.
	Queries *obs.QueryRegistry

	// Gate, when non-nil, admission-controls /query: over-capacity requests
	// queue in the gate and are shed with 429 + Retry-After (503 while
	// draining). Set it before serving.
	Gate *govern.Gate

	// Limits are the per-query resource budgets applied to every execution.
	// The zero value disables budgets; cancellation (client disconnect) is
	// always honored.
	Limits engine.Limits

	// Membership, when non-nil, feeds this node's /debug/federation console
	// with a coordinator's membership view (gmqld wires its peer prober
	// here). Nil renders the standalone-node page. Set it before serving.
	Membership func() *MembershipSnapshot
}

// queries resolves the console registry.
func (s *Server) queries() *obs.QueryRegistry {
	if s.Queries != nil {
		return s.Queries
	}
	return obs.Queries()
}

// NewServer builds a node over its local datasets.
func NewServer(name string, cfg engine.Config, datasets ...*gdm.Dataset) *Server {
	s := &Server{
		name: name, cfg: cfg,
		data:   make(map[string]*gdm.Dataset),
		staged: make(map[string]*gdm.Dataset),
		// The paper calls for "a limited amount of staging at the sites
		// hosting the services".
		maxStay:   16,
		repo:      catalog.NewRegistry(),
		statsMemo: make(map[string]memoStats),
	}
	for _, ds := range datasets {
		s.data[ds.Name] = ds
		s.repo.Record(catalog.Info{Name: ds.Name, Source: catalog.SourceMemory, Dataset: ds})
	}
	return s
}

// AddDataset registers one more local dataset. Re-registering a name drops
// its memoized statistics and refiles it in the node catalog.
func (s *Server) AddDataset(ds *gdm.Dataset) {
	s.mu.Lock()
	s.data[ds.Name] = ds
	delete(s.statsMemo, ds.Name)
	s.mu.Unlock()
	s.repo.Record(catalog.Info{Name: ds.Name, Source: catalog.SourceMemory, Dataset: ds})
}

// Repo exposes the node's repository catalog (tests, embedding servers).
func (s *Server) Repo() *catalog.Registry { return s.repo }

// catalog implements engine.Catalog over the node's local data.
func (s *Server) catalog() engine.MapCatalog {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(engine.MapCatalog, len(s.data))
	for k, v := range s.data {
		out[k] = v
	}
	return out
}

// Handler returns the node's HTTP handler. Besides the federation protocol
// it serves the node's live query console on /debug/queries, so an operator
// can inspect what a member is executing (and for whom — entries carry the
// coordinator's QueryID) straight from the node's own port, plus the
// node's recent pprof captures on /debug/prof and its learned per-operator
// costs on /debug/costs.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/datasets", s.handleDatasets)
	mux.HandleFunc("/datasets/", s.handleDatasetStream)
	mux.HandleFunc("/compile", s.handleCompile)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/results/", s.handleResults)
	mux.HandleFunc("/health", s.handleHealth)
	MountFederation(mux, func() *MembershipSnapshot {
		if s.Membership == nil {
			return nil
		}
		return s.Membership()
	})
	obs.MountQueries(mux, s.queries())
	obs.MountProf(mux, obs.Prof())
	obs.MountCosts(mux, obs.Costs())
	catalog.MountRepo(mux, s.repo)
	obs.MountEstimates(mux, obs.Estimates())
	obs.MountIndex(mux)
	return mux
}

// handleHealth answers the membership prober: a cheap liveness probe that
// touches no datasets. It reports the node name and staging occupancy so a
// human probing by hand learns something too.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	staged, datasets := len(s.staged), len(s.data)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok": true, "node": s.name, "datasets": datasets, "staged": staged,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) infos() []DatasetInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DatasetInfo, 0, len(s.data))
	for _, ds := range s.data {
		info := DatasetInfo{
			Name:           ds.Name,
			Samples:        len(ds.Samples),
			Regions:        ds.NumRegions(),
			EstimatedBytes: ds.EstimateBytes(),
			MetaAttributes: make(map[string]int),
		}
		for _, f := range ds.Schema.Fields() {
			info.Schema = append(info.Schema, SchemaField{Name: f.Name, Type: f.Type.String()})
		}
		for _, smp := range ds.Samples {
			for _, attr := range smp.Meta.Attrs() {
				info.MetaAttributes[attr]++
			}
		}
		out = append(out, info)
	}
	return out
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	infos := s.infos()
	// Deterministic order for clients and tests.
	for i := 0; i < len(infos); i++ {
		for j := i + 1; j < len(infos); j++ {
			if infos[j].Name < infos[i].Name {
				infos[i], infos[j] = infos[j], infos[i]
			}
		}
	}
	writeJSON(w, http.StatusOK, infos)
}

// handleDatasetStream serves GET /datasets/{name}/stream — the full-dataset
// transfer a NAIVE (non-federated) architecture needs; the federated path
// never uses it for large inputs. It is also what the Internet-of-Genomes
// crawler downloads.
func (s *Server) handleDatasetStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/datasets/")
	name := strings.TrimSuffix(rest, "/stream")
	if name == rest || name == "" {
		http.Error(w, "want /datasets/{name}/stream", http.StatusNotFound)
		return
	}
	s.mu.Lock()
	ds := s.data[name]
	s.mu.Unlock()
	if ds == nil {
		http.Error(w, "unknown dataset", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-gdm")
	if err := formats.EncodeDataset(w, ds); err != nil {
		// Headers already sent; nothing more to do than drop the conn.
		return
	}
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req CompileRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, CompileResponse{Error: err.Error()})
		return
	}
	prog, err := gmql.Parse(req.Script)
	if err != nil {
		writeJSON(w, http.StatusOK, CompileResponse{Error: err.Error()})
		return
	}
	plan := engine.Optimize(prog.Plan(req.Var))
	est := EstimatePlan(plan, s.stats())
	writeJSON(w, http.StatusOK, CompileResponse{
		OK:       true,
		Explain:  engine.Explain(plan),
		Estimate: est,
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: err.Error()})
		return
	}
	// The execution files under the requester's query identity when the
	// request carries one (trace propagation); otherwise the node mints its
	// own, so direct queries are visible in the console too.
	qid := r.Header.Get(obs.HeaderQueryID)
	if qid == "" {
		qid = obs.NewQueryID()
	}
	entry := s.queries().Begin(qid, s.name, req.Var, req.Script)
	entry.SetParentSpan(r.Header.Get(obs.HeaderParentSpan))
	fail := func(status int, msg string) {
		s.queries().Finish(entry, obs.StatusFailed, msg)
		writeJSON(w, status, QueryResponse{Error: msg, QueryID: qid, Node: s.name})
	}
	if s.Gate != nil {
		release, gerr := s.Gate.Acquire(r.Context(), 1)
		if gerr != nil {
			var serr *govern.ShedError
			reason := "shed"
			if errors.As(gerr, &serr) {
				reason = serr.Reason
			}
			s.queries().Finish(entry, obs.StatusShed, reason)
			s.SlowLog.ObserveKilled(qid, req.Var, string(obs.StatusShed), reason, 0)
			w.Header().Set("Content-Type", "application/json")
			if govern.WriteShed(w, gerr) {
				// Status and Retry-After are out; the JSON body still carries
				// the reason for protocol-level clients.
				_ = json.NewEncoder(w).Encode(QueryResponse{Error: gerr.Error(), QueryID: qid, Node: s.name})
				return
			}
			fail(http.StatusServiceUnavailable, gerr.Error())
			return
		}
		defer release()
	}
	prog, err := gmql.Parse(req.Script)
	if err != nil {
		fail(http.StatusOK, err.Error())
		return
	}
	catalog := s.catalog()
	if req.UserDataset != "" {
		// The private dataset lives only in this request's catalog copy.
		user, err := formats.DecodeDataset(strings.NewReader(req.UserDataset))
		if err != nil {
			fail(http.StatusOK, "user dataset: "+err.Error())
			return
		}
		catalog[user.Name] = user
	}
	runner := &gmql.Runner{
		Config: s.cfg, Catalog: catalog, SlowLog: s.SlowLog,
		QueryID: qid, SpanObserver: entry.SetRoot, Limits: s.Limits,
	}
	metricNodeQueries.Inc()
	// Always profiled: the span tree feeds the live console and the slow
	// log on every execution (profiling overhead is within noise, see
	// EXPERIMENTS.md); the tree goes on the wire only when asked for.
	// Evaluation is governed by the request context, so a disconnected (or
	// deadline-killed) requester cancels the engine workers instead of
	// leaving them burning CPU on an answer nobody will read.
	ds, sp, err := runner.EvalProfiledContext(r.Context(), prog, req.Var)
	if err != nil {
		if reason, ok := engine.Killed(err); ok {
			s.queries().Finish(entry, gmql.KilledStatus(reason), reason+": "+err.Error())
			writeJSON(w, http.StatusOK, QueryResponse{Error: err.Error(), QueryID: qid, Node: s.name})
			return
		}
		fail(http.StatusOK, err.Error())
		return
	}
	s.mu.Lock()
	if len(s.staged) >= s.maxStay {
		s.mu.Unlock()
		fail(http.StatusServiceUnavailable, "staging area full; release results first")
		return
	}
	s.nextID++
	id := fmt.Sprintf("r%06d", s.nextID)
	s.staged[id] = ds
	metricStagedResults.Set(int64(len(s.staged)))
	s.mu.Unlock()
	s.queries().Finish(entry, obs.StatusDone, "")
	resp := QueryResponse{
		OK: true, ResultID: id,
		Samples: len(ds.Samples), Regions: ds.NumRegions(), Bytes: ds.EstimateBytes(),
		QueryID: qid, Node: s.name,
	}
	// Close the estimator's feedback loop: every finished execution files its
	// compile-time prediction against the real result size, so /debug/estimates
	// shows how far off the estimator runs (and in which direction).
	predicted := EstimatePlan(engine.Optimize(prog.Plan(req.Var)), s.stats())
	obs.Estimates().Observe(qid, req.Var,
		map[string]int64{
			obs.EstDimSamples: int64(predicted.Samples),
			obs.EstDimRegions: int64(predicted.Regions),
			obs.EstDimBytes:   predicted.Bytes,
		},
		map[string]int64{
			obs.EstDimSamples: int64(resp.Samples),
			obs.EstDimRegions: int64(resp.Regions),
			obs.EstDimBytes:   resp.Bytes,
		})
	if req.Profile {
		resp.Profile = sp
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleResults serves staged results:
//
//	GET    /results/{id}?start=S&count=N   stream samples [S, S+N)
//	DELETE /results/{id}                   release the staging
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/results/")
	if id == "" {
		http.Error(w, "want /results/{id}", http.StatusNotFound)
		return
	}
	s.mu.Lock()
	ds := s.staged[id]
	s.mu.Unlock()
	switch r.Method {
	case http.MethodDelete:
		s.mu.Lock()
		delete(s.staged, id)
		metricStagedResults.Set(int64(len(s.staged)))
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	case http.MethodGet:
		if ds == nil {
			http.Error(w, "unknown result", http.StatusNotFound)
			return
		}
		start, count := 0, len(ds.Samples)
		if v := r.URL.Query().Get("start"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "bad start", http.StatusBadRequest)
				return
			}
			start = n
		}
		if v := r.URL.Query().Get("count"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "bad count", http.StatusBadRequest)
				return
			}
			count = n
		}
		if start > len(ds.Samples) {
			start = len(ds.Samples)
		}
		end := start + count
		if end > len(ds.Samples) {
			end = len(ds.Samples)
		}
		chunk := gdm.NewDataset(ds.Name, ds.Schema)
		chunk.Samples = ds.Samples[start:end]
		w.Header().Set("Content-Type", "application/x-gdm")
		w.Header().Set("X-Total-Samples", strconv.Itoa(len(ds.Samples)))
		_ = formats.EncodeDataset(w, chunk)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// StagedCount reports how many results are currently staged (for tests and
// capacity monitoring).
func (s *Server) StagedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.staged)
}
