package federation

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"genogo/internal/engine"
	"genogo/internal/synth"
)

// TestNodeDebugEndpoints: every federation node serves the pprof-capture
// ring and the operator cost registry on its protocol port.
func TestNodeDebugEndpoints(t *testing.T) {
	g := synth.New(42)
	srv := NewServer("node", engine.Config{Mode: engine.ModeSerial, MetaFirst: true},
		g.Encode(synth.EncodeOptions{Samples: 2, MeanPeaks: 10}))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{"/debug/prof", "/debug/costs"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s content-type = %q", path, ct)
		}
		if len(body) == 0 {
			t.Errorf("%s returned empty body", path)
		}
	}
}
