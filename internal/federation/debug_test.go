package federation

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"genogo/internal/engine"
	"genogo/internal/obs"
	"genogo/internal/synth"
)

// TestNodeDebugEndpoints: every federation node serves the pprof-capture
// ring and the operator cost registry on its protocol port.
func TestNodeDebugEndpoints(t *testing.T) {
	g := synth.New(42)
	srv := NewServer("node", engine.Config{Mode: engine.ModeSerial, MetaFirst: true},
		g.Encode(synth.EncodeOptions{Samples: 2, MeanPeaks: 10}))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{"/debug/prof", "/debug/costs"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s content-type = %q", path, ct)
		}
		if len(body) == 0 {
			t.Errorf("%s returned empty body", path)
		}
	}
}

// TestFederationConsole: the /debug/federation membership console renders the
// probed member table, breaker positions, and the placement map — as HTML, as
// JSON, and listed on the /debug/ discovery index.
func TestFederationConsole(t *testing.T) {
	rc := newReplCluster(t, [][]string{{"A", "B"}, {"A", "B"}})
	rc.outages[1].Kill()
	p := NewProber(rc.clients)
	p.Interval = time.Hour
	p.ProbeAll(context.Background())
	fed := &Federator{
		Clients: rc.clients,
		Placement: NewPlacement().
			Register("ENCODE@A", 0, 1).
			Register("ENCODE@B", 1),
		Prober: p,
		Hedge:  HedgePolicy{Enabled: true},
	}
	mux := http.NewServeMux()
	MountFederation(mux, func() *MembershipSnapshot {
		s := fed.Membership()
		return &s
	})
	obs.MountIndex(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	get := func(path, accept string) (int, string) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, html := get("/debug/federation", "")
	if code != http.StatusOK {
		t.Fatalf("console status = %d", code)
	}
	for _, want := range []string{
		rc.urls[0], rc.urls[1], "ENCODE@A", "ENCODE@B",
		">up<", ">suspect<", "hedging on", "placement",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("console HTML missing %q", want)
		}
	}

	code, body := get("/debug/federation", "application/json")
	if code != http.StatusOK {
		t.Fatalf("console JSON status = %d", code)
	}
	var snap MembershipSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("console JSON: %v\n%s", err, body)
	}
	if len(snap.Members) != 2 || !snap.Hedging || len(snap.Placement) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Members[0].State != 0 || snap.Members[0].StateName != "up" {
		t.Errorf("member 0 = %+v, want state up", snap.Members[0])
	}
	if snap.Members[1].StateName != "suspect" {
		t.Errorf("member 1 = %+v, want state suspect", snap.Members[1])
	}
	if snap.Members[0].Breaker != "closed" {
		t.Errorf("member 0 breaker = %q", snap.Members[0].Breaker)
	}
	if snap.Placement[0].Replicas != 2 || len(snap.Placement[0].Members) != 2 {
		t.Errorf("placement row 0 = %+v", snap.Placement[0])
	}

	if _, index := get("/debug/", ""); !strings.Contains(index, "/debug/federation") {
		t.Error("/debug/ index does not list the federation console")
	}

	// A process coordinating no federation renders the standalone page.
	solo := http.NewServeMux()
	MountFederation(solo, nil)
	sts := httptest.NewServer(solo)
	defer sts.Close()
	resp, err := http.Get(sts.URL + "/debug/federation")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "standalone node") {
		t.Error("standalone page missing")
	}
}

// TestServerHealthEndpoint: federation nodes answer the prober's GET /health
// with their identity and catalog size.
func TestServerHealthEndpoint(t *testing.T) {
	g := synth.New(42)
	srv := NewServer("node-h", engine.Config{Mode: engine.ModeSerial, MetaFirst: true},
		g.Encode(synth.EncodeOptions{Samples: 2, MeanPeaks: 10}))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/health status = %d", resp.StatusCode)
	}
	var h struct {
		OK       bool   `json:"ok"`
		Node     string `json:"node"`
		Datasets int    `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Node != "node-h" || h.Datasets != 1 {
		t.Errorf("health = %+v", h)
	}
	if resp, err := http.Post(ts.URL+"/health", "text/plain", nil); err == nil {
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Error("POST /health should not be accepted")
		}
	}
}
