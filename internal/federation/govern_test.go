package federation

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"genogo/internal/engine"
	"genogo/internal/govern"
	"genogo/internal/obs"
	"genogo/internal/resilience"
	"genogo/internal/synth"
)

// newGovernedNode builds a node whose engine stalls on the given Staller
// (deterministic "stuck operator"), with its own console registry so the
// test can observe query lifecycle states.
func newGovernedNode(t *testing.T, staller *resilience.Staller) (*Server, *httptest.Server) {
	t.Helper()
	g := synth.New(55)
	enc := g.Encode(synth.EncodeOptions{Samples: 6, MeanPeaks: 10})
	anns := g.Annotations(g.Genes(20))
	cfg := engine.Config{Mode: engine.ModeStream, Workers: 3, MetaFirst: true}
	if staller != nil {
		cfg.Stall = staller.Hook
	}
	srv := NewServer("gov-node", cfg, enc, anns)
	srv.Queries = obs.NewQueryRegistry(16)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// postQuery sends a raw /query request so the test can inspect HTTP status
// and headers the Client abstracts away.
func postQuery(ctx context.Context, url string) (*http.Response, error) {
	body, _ := json.Marshal(QueryRequest{Script: fedScript, Var: "RESULT"})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return http.DefaultClient.Do(req)
}

// waitStatus polls the registry until some entry reaches the wanted status.
func waitStatus(t *testing.T, reg *obs.QueryRegistry, want obs.QueryStatus, timeout time.Duration) *obs.QueryEntry {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, e := range reg.Recent() {
			if e.Status() == want {
				return e
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("no query reached status %q within %v", want, timeout)
	return nil
}

// TestFederationAdmissionShed: with the single execution slot held by a stuck
// query and no queue, the next /query request is shed with 429 + Retry-After
// and a shed entry appears in the console; once the slot frees, queries are
// admitted again.
func TestFederationAdmissionShed(t *testing.T) {
	staller := &resilience.Staller{}
	srv, ts := newGovernedNode(t, staller)
	srv.Gate = govern.NewGate(1, 0, 50*time.Millisecond)

	firstDone := make(chan error, 1)
	go func() {
		resp, err := postQuery(context.Background(), ts.URL)
		if err == nil {
			resp.Body.Close()
		}
		firstDone <- err
	}()
	if !staller.WaitStalled(1, 5*time.Second) {
		t.Fatal("first query never reached the stalled operator")
	}

	resp, err := postQuery(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatalf("shed body is not JSON: %v", err)
	}
	if qr.OK || qr.Error == "" {
		t.Errorf("shed body = %+v, want an error", qr)
	}
	shed := waitStatus(t, srv.Queries, obs.StatusShed, time.Second)
	if !strings.Contains(shed.Err(), govern.ReasonQueueFull) {
		t.Errorf("shed entry reason = %q, want %q", shed.Err(), govern.ReasonQueueFull)
	}

	staller.Release()
	if err := <-firstDone; err != nil {
		t.Fatalf("first query: %v", err)
	}
	if srv.Gate.InFlight() != 0 {
		t.Errorf("in-flight = %d after completion, want 0", srv.Gate.InFlight())
	}

	// The freed slot admits again.
	resp2, err := postQuery(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("post-release status = %d, want 200", resp2.StatusCode)
	}
}

// TestFederationClientDisconnectCancelsQuery: dropping the HTTP request
// mid-execution propagates into the engine — workers stuck in an operator
// unwind, and the console files the query as canceled.
func TestFederationClientDisconnectCancelsQuery(t *testing.T) {
	staller := &resilience.Staller{}
	srv, ts := newGovernedNode(t, staller)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		resp, err := postQuery(ctx, ts.URL)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	if !staller.WaitStalled(1, 5*time.Second) {
		t.Fatal("query never reached the stalled operator")
	}
	cancel()
	if err := <-done; err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("client err = %v, want context.Canceled", err)
	}
	e := waitStatus(t, srv.Queries, obs.StatusCanceled, 5*time.Second)
	if !strings.Contains(e.Err(), "canceled") {
		t.Errorf("canceled entry err = %q", e.Err())
	}
}

// TestFederationBudgetKillInBand: a budget kill is a query-level error, not a
// transport failure — HTTP 200 with the error in-band and a failed console
// entry, exactly like a compile error, so other queries are unaffected.
func TestFederationBudgetKillInBand(t *testing.T) {
	srv, ts := newGovernedNode(t, nil)
	srv.Limits = engine.Limits{MaxOutputRegions: 1}

	resp, err := postQuery(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (in-band error)", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.OK || !strings.Contains(qr.Error, "budget") {
		t.Errorf("response = %+v, want a budget error", qr)
	}
	e := waitStatus(t, srv.Queries, obs.StatusFailed, time.Second)
	if !strings.Contains(e.Err(), "budget") {
		t.Errorf("entry err = %q, want budget reason", e.Err())
	}
}

// TestFederationFetchCancel: cancellation during the staged-retrieval FETCH
// leg surfaces promptly as a context error on the client.
func TestFederationFetchCancel(t *testing.T) {
	_, ts := newGovernedNode(t, nil)
	c := NewClient(ts.URL)
	qr, err := c.Execute(context.Background(), fedScript, "RESULT")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.FetchAll(ctx, qr.ResultID, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("FetchAll err = %v, want context.Canceled", err)
	}
}
