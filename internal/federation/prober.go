package federation

import (
	"context"
	"io"
	"net/http"
	"sync"
	"time"

	"genogo/internal/resilience"
)

// Health is a member's membership state as seen by the prober.
type Health uint8

// Membership states. A member moves Up on any successful probe, Suspect
// after SuspectAfter consecutive probe failures, and Down after DownAfter —
// the classic incremental suspicion ladder, so one lost probe degrades a
// member's placement rank without writing it off.
const (
	HealthUnknown Health = iota // never probed
	HealthUp
	HealthSuspect
	HealthDown
)

// String names the state.
func (h Health) String() string {
	switch h {
	case HealthUp:
		return "up"
	case HealthSuspect:
		return "suspect"
	case HealthDown:
		return "down"
	default:
		return "unknown"
	}
}

// rank orders states for replica selection: prefer Up, then never-probed,
// then Suspect; Down members are the last resort.
func (h Health) rank() int {
	switch h {
	case HealthUp:
		return 0
	case HealthUnknown:
		return 1
	case HealthSuspect:
		return 2
	default:
		return 3
	}
}

// Health probes the node with one bare GET /health — no retries, and past
// the circuit breaker's gate on purpose: probes are how an OPEN breaker
// discovers recovery without a live query paying for the discovery. The
// outcome still feeds the breaker (a successful probe closes it), so by the
// time a query leg reaches a recovered member its circuit is already closed.
func (c *Client) Health(ctx context.Context) (time.Duration, error) {
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/health", nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		c.Breaker.Report(err)
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		serr := &resilience.StatusError{Code: resp.StatusCode, Status: resp.Status}
		c.Breaker.Report(serr)
		return 0, serr
	}
	c.Breaker.Report(nil)
	return time.Since(start), nil
}

// MemberHealth is one member's membership record.
type MemberHealth struct {
	Member string `json:"member"` // base URL
	State  Health `json:"-"`
	// StateName is the JSON rendering of State.
	StateName string        `json:"state"`
	LastProbe time.Time     `json:"last_probe,omitempty"`
	Latency   time.Duration `json:"-"`
	// LatencyMS is the last successful probe's round trip.
	LatencyMS float64 `json:"latency_ms"`
	// Failures counts consecutive probe failures (0 when Up).
	Failures int    `json:"failures,omitempty"`
	Err      string `json:"err,omitempty"`
}

// Prober drives the membership layer: it periodically probes every member
// and maintains per-member up/suspect/down state. Probes bypass the circuit
// breakers' gates but report into them, so breakers recover from probe
// traffic instead of sacrificed queries. The Federator consults the prober
// (when wired) to order replicas within a leg — live members first.
type Prober struct {
	// Clients are the members to probe, index-aligned with
	// Federator.Clients.
	Clients []*Client
	// Interval between probe rounds; <= 0 means DefaultProbeInterval.
	Interval time.Duration
	// Timeout bounds one probe; <= 0 means half the interval, capped at 2s.
	Timeout time.Duration
	// SuspectAfter is the consecutive-failure count that marks a member
	// suspect; <= 0 means 1.
	SuspectAfter int
	// DownAfter is the consecutive-failure count that marks a member down;
	// <= 0 means 3.
	DownAfter int

	mu     sync.Mutex
	states []MemberHealth
}

// DefaultProbeInterval is the probe cadence when Prober.Interval is unset.
const DefaultProbeInterval = 2 * time.Second

// NewProber builds a prober over the federation's member clients.
func NewProber(clients []*Client) *Prober {
	p := &Prober{Clients: clients}
	p.states = make([]MemberHealth, len(clients))
	for i, c := range clients {
		p.states[i] = MemberHealth{Member: c.BaseURL, StateName: HealthUnknown.String()}
	}
	return p
}

func (p *Prober) interval() time.Duration {
	if p.Interval > 0 {
		return p.Interval
	}
	return DefaultProbeInterval
}

func (p *Prober) timeout() time.Duration {
	if p.Timeout > 0 {
		return p.Timeout
	}
	t := p.interval() / 2
	if t > 2*time.Second {
		t = 2 * time.Second
	}
	if t <= 0 {
		t = time.Second
	}
	return t
}

func (p *Prober) suspectAfter() int {
	if p.SuspectAfter > 0 {
		return p.SuspectAfter
	}
	return 1
}

func (p *Prober) downAfter() int {
	if p.DownAfter > 0 {
		return p.DownAfter
	}
	return 3
}

// ProbeAll runs one synchronous probe round over every member (tests and
// the background loop share it). Members are probed concurrently.
func (p *Prober) ProbeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for i := range p.Clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, p.timeout())
			defer cancel()
			lat, err := p.Clients[i].Health(pctx)
			p.record(i, lat, err)
		}(i)
	}
	wg.Wait()
}

// record applies one probe outcome to the member's state machine.
func (p *Prober) record(i int, lat time.Duration, err error) {
	p.mu.Lock()
	st := &p.states[i]
	st.LastProbe = time.Now()
	if err == nil {
		st.State = HealthUp
		st.Failures = 0
		st.Err = ""
		st.Latency = lat
		st.LatencyMS = float64(lat.Microseconds()) / 1e3
		metricProbeLatency.With(st.Member).Observe(lat.Seconds())
	} else {
		st.Failures++
		st.Err = err.Error()
		if st.Failures >= p.downAfter() {
			st.State = HealthDown
		} else if st.Failures >= p.suspectAfter() {
			st.State = HealthSuspect
		}
	}
	st.StateName = st.State.String()
	up := int64(0)
	if st.State == HealthUp {
		up = 1
	}
	p.mu.Unlock()
	metricMemberUp.With(p.Clients[i].BaseURL).Set(up)
}

// Start launches the background probe loop and returns its stop function
// (idempotent; it waits for the loop to exit). The first round fires
// immediately so membership is populated before the first query.
func (p *Prober) Start() (stop func()) {
	stopCh := make(chan struct{})
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		ctx := context.Background()
		p.ProbeAll(ctx)
		t := time.NewTicker(p.interval())
		defer t.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-t.C:
				p.ProbeAll(ctx)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(stopCh) })
		<-doneCh
	}
}

// Status snapshots every member's membership record.
func (p *Prober) Status() []MemberHealth {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]MemberHealth(nil), p.states...)
}

// HealthOf reports one member's state (HealthUnknown for a nil prober or an
// out-of-range index, so an unwired federator treats every replica alike).
func (p *Prober) HealthOf(member int) Health {
	if p == nil {
		return HealthUnknown
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if member < 0 || member >= len(p.states) {
		return HealthUnknown
	}
	return p.states[member].State
}
