package federation

import (
	"genogo/internal/engine"
	"genogo/internal/gdm"
	"genogo/internal/gmql"
)

// parseScript and evalScript isolate the gmql dependency of the naive
// baseline so client.go reads as pure protocol code.

func parseScript(script string) (*gmql.Program, error) {
	return gmql.Parse(script)
}

func evalScript(p *gmql.Program, varName string, cfg engine.Config, cat engine.Catalog) (*gdm.Dataset, error) {
	r := &gmql.Runner{Config: cfg, Catalog: cat}
	return r.Eval(p, varName)
}
