package federation

import "genogo/internal/obs"

// Federation metrics, registered against the process-wide registry at package
// init. Registration alone makes the families visible on /metrics (with HELP
// and TYPE lines), so a node that has not served a federated query yet still
// advertises what it can report.
var (
	metricMemberLatency = obs.Default().HistogramVec("genogo_federation_member_latency_seconds",
		"Wall time of one member's execute+fetch leg of a federated query.", nil, "member")
	metricMemberFailures = obs.Default().CounterVec("genogo_federation_member_failures_total",
		"Member failures during federated queries, by stage.", "stage")
	metricPartialFailures = obs.Default().Counter("genogo_federation_partial_failures_total",
		"Federated queries that ended with at least one member missing.")
	metricNodeQueries = obs.Default().Counter("genogo_federation_node_queries_total",
		"Queries executed by this node on behalf of remote requesters.")
	metricStagedResults = obs.Default().Gauge("genogo_federation_staged_results",
		"Results currently held in this node's staging area.")
)
