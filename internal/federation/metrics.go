package federation

import "genogo/internal/obs"

// Federation metrics, registered against the process-wide registry at package
// init. Registration alone makes the families visible on /metrics (with HELP
// and TYPE lines), so a node that has not served a federated query yet still
// advertises what it can report.
var (
	metricMemberLatency = obs.Default().HistogramVec("genogo_federation_member_latency_seconds",
		"Wall time of one member's execute+fetch leg of a federated query.", nil, "member")
	metricMemberFailures = obs.Default().CounterVec("genogo_federation_member_failures_total",
		"Member failures during federated queries, by stage.", "stage")
	metricPartialFailures = obs.Default().Counter("genogo_federation_partial_failures_total",
		"Federated queries that ended with at least one member missing.")
	metricNodeQueries = obs.Default().Counter("genogo_federation_node_queries_total",
		"Queries executed by this node on behalf of remote requesters.")
	metricStagedResults = obs.Default().Gauge("genogo_federation_staged_results",
		"Results currently held in this node's staging area.")
	metricMemberUp = obs.Default().GaugeVec("genogo_federation_member_up",
		"Membership: 1 while the member's last probe succeeded, 0 otherwise.", "member")
	metricProbeLatency = obs.Default().HistogramVec("genogo_federation_probe_latency_seconds",
		"Round trip of successful health probes, by member.", nil, "member")
	metricFailovers = obs.Default().Counter("genogo_federation_failover_total",
		"Query legs re-dispatched to a surviving replica after a member failed.")
	metricHedges = obs.Default().CounterVec("genogo_federation_hedges_total",
		"Hedged replica requests by outcome: win (hedge answered first), canceled (primary answered first), failed.", "outcome")
	metricDedupSamples = obs.Default().Counter("genogo_federation_dedup_samples_total",
		"Samples dropped by the merge's replica dedup (already merged from an overlapping replica).")
)
