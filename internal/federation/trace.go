package federation

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"genogo/internal/engine"
	"genogo/internal/gdm"
	"genogo/internal/obs"
)

// callTrace rides the context through one logical call (execute, one chunk
// fetch, release) and back: do() counts every HTTP attempt the resilience
// layer makes into it, so retries show up in federated profiles, and parent
// names the coordinator span the remote execution should hang under
// (shipped as X-Parent-Span).
type callTrace struct {
	attempts int
	parent   string
}

type callTraceKey struct{}

// withCallTrace attaches a call trace for do() to fill.
func withCallTrace(ctx context.Context, ct *callTrace) context.Context {
	return context.WithValue(ctx, callTraceKey{}, ct)
}

// callTraceFrom extracts the call trace, nil when the call is untraced.
func callTraceFrom(ctx context.Context) *callTrace {
	if ctx == nil {
		return nil
	}
	ct, _ := ctx.Value(callTraceKey{}).(*callTrace)
	return ct
}

// memberTrace carries one member's observability state through queryNode:
// the MEMBER span under the federated root (nil when the query is
// unprofiled), the console entry's member slot, and the coordinator span
// reference remote executions hang under.
type memberTrace struct {
	span  *obs.Span       // MEMBER span; nil when unprofiled
	entry *obs.QueryEntry // console entry; nil-safe
	idx   int             // member index in Federator.Clients
	ref   string          // X-Parent-Span value ("" when unprofiled)
	state obs.MemberState // accumulated console view of this member
}

// setStage publishes the member's current stage to the console entry.
func (tr *memberTrace) setStage(stage string) {
	tr.state.Stage = stage
	tr.entry.SetMember(tr.idx, tr.state)
}

// child opens a stage span under the MEMBER span; nil when unprofiled.
func (tr *memberTrace) child(op, detail string) *obs.Span {
	if tr.span == nil {
		return nil
	}
	sp := obs.NewSpan(op)
	sp.Detail = detail
	sp.Mode = "fed"
	tr.span.AddChild(sp)
	return sp
}

// leg runs one stage call with attempt counting: the returned context makes
// do() count attempts into ct and stamp X-Parent-Span, and record transfers
// the retry count (attempts beyond the first) onto the stage span and the
// console state once the call returns.
func (tr *memberTrace) leg(ctx context.Context) (context.Context, *callTrace, func(sp *obs.Span)) {
	ct := &callTrace{parent: tr.ref}
	record := func(sp *obs.Span) {
		if ct.attempts > 1 {
			tr.state.Attempts += ct.attempts - 1
			if sp != nil {
				sp.SetAttr("attempts", strconv.Itoa(ct.attempts))
			}
		}
	}
	return withCallTrace(ctx, ct), ct, record
}

// queryNode runs the script on one member and fetches the staged result.
// Whatever happens after staging succeeds — fetch errors, deadline expiry —
// the staged result is released, so failures never leak the node's limited
// staging slots.
//
// The member trace records each stage: an EXECUTE span (with the member's
// own remote span tree grafted underneath when it returned one), a FETCH
// span whose CHUNK children FetchAll hangs via the context, and a RELEASE
// span; the console entry's member slot tracks the same stages live.
func queryNode(ctx context.Context, c *Client, script, varName string, chunkSize int, tr *memberTrace) (ds *gdm.Dataset, fail *NodeFailure) {
	start := time.Now()
	bytesBefore := c.Bytes()
	defer func() {
		metricMemberLatency.With(c.BaseURL).Observe(time.Since(start).Seconds())
		tr.state.Bytes = c.Bytes() - bytesBefore
		tr.state.Breaker = c.Breaker.State().String()
		if fail != nil {
			metricMemberFailures.With(fail.Stage).Inc()
			tr.state.Err = fail.Err.Error()
			tr.setStage("failed:" + fail.Stage)
			if tr.span != nil {
				tr.span.SetAttr("error", fail.Stage)
			}
		} else {
			tr.setStage("done")
		}
		if tr.span != nil {
			tr.span.SetAttr("breaker", tr.state.Breaker)
			tr.span.SetAttr("bytes", strconv.FormatInt(tr.state.Bytes, 10))
			if tr.state.Attempts > 0 {
				tr.span.SetAttr("retries", strconv.Itoa(tr.state.Attempts))
			}
			if ds != nil {
				rs := 0
				for i := range ds.Samples {
					rs += len(ds.Samples[i].Regions)
				}
				tr.span.SetOutput(len(ds.Samples), rs)
			}
			tr.span.Finish(start)
		}
	}()

	tr.setStage("execute")
	execSp := tr.child("EXECUTE", "EXECUTE "+varName)
	ectx, _, record := tr.leg(ctx)
	execStart := time.Now()
	var qr QueryResponse
	var err error
	if tr.span != nil {
		qr, err = c.ExecuteProfiled(ectx, script, varName)
	} else {
		qr, err = c.Execute(ectx, script, varName)
	}
	record(execSp)
	if err != nil {
		if execSp != nil {
			execSp.SetAttr("error", "execute")
			execSp.Finish(execStart)
		}
		return nil, &NodeFailure{Node: c.BaseURL, Stage: "execute", Err: err}
	}
	if execSp != nil {
		if qr.Profile != nil {
			// Graft the member's own execution tree into the merged profile,
			// flagged remote and labeled with the answering node.
			qr.Profile.MarkRemote()
			qr.Profile.SetAttr("node", c.BaseURL)
			execSp.AddChild(qr.Profile)
		}
		execSp.SetOutput(qr.Samples, qr.Regions)
		execSp.Finish(execStart)
	}
	tr.state.Samples, tr.state.Regions = qr.Samples, qr.Regions

	release := func() {
		relSp := tr.child("RELEASE", "RELEASE "+qr.ResultID)
		relStart := time.Now()
		rctx, _, record := tr.leg(ctx)
		if ctx.Err() == nil {
			err := c.Release(rctx, qr.ResultID)
			record(relSp)
			if relSp != nil {
				if err != nil {
					relSp.SetAttr("error", "release")
				}
				relSp.Finish(relStart)
			}
			return
		}
		// The query context is already dead; release in the background
		// under its own deadline rather than stalling the caller or
		// leaking the staging slot.
		if relSp != nil {
			relSp.SetAttr("deferred", "true")
			relSp.Finish(relStart)
		}
		go func() {
			bctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), releaseTimeout)
			defer cancel()
			_ = c.Release(bctx, qr.ResultID)
		}()
	}

	tr.setStage("fetch")
	fetchSp := tr.child("FETCH", "FETCH "+qr.ResultID)
	fetchStart := time.Now()
	fctx, _, _ := tr.leg(ctx) // chunk spans carry their own attempt counts
	fctx = obs.WithSpan(fctx, fetchSp)
	ds, err = c.FetchAll(fctx, qr.ResultID, chunkSize)
	if fetchSp != nil {
		for _, csp := range fetchSp.Children {
			if a := csp.Attr("attempts"); a != "" {
				if n, aerr := strconv.Atoi(a); aerr == nil {
					tr.state.Attempts += n - 1 // first attempt isn't a retry
				}
			}
		}
	}
	if err != nil {
		if fetchSp != nil {
			fetchSp.SetAttr("error", "fetch")
			fetchSp.Finish(fetchStart)
		}
		release()
		return nil, &NodeFailure{Node: c.BaseURL, Stage: "fetch", Err: err}
	}
	if fetchSp != nil {
		rs := 0
		for i := range ds.Samples {
			rs += len(ds.Samples[i].Regions)
		}
		fetchSp.SetInput(qr.Samples, qr.Regions)
		fetchSp.SetOutput(len(ds.Samples), rs)
		fetchSp.Finish(fetchStart)
	}
	tr.setStage("release")
	release()
	return ds, nil
}

// run is the shared federated query path: fan the script out to every
// member, track each leg in the query console, and merge the survivors.
// With profile set it additionally builds the merged cross-node span tree —
// a FEDERATED root over PLAN, one MEMBER subtree per node (remote execution
// trees grafted in), and the final MERGE — which the EXPLAIN ANALYZE
// renderer prints like any local profile.
func (f *Federator) run(ctx context.Context, script, varName string, chunkSize int, profile bool) (*gdm.Dataset, *obs.Span, *PartialFailure, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, qid := obs.EnsureQueryID(ctx)
	if f.Policy.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.Policy.Deadline)
		defer cancel()
	}
	began := time.Now()

	replicated := f.Placement != nil
	var groups []ReplicaGroup
	if replicated {
		var gerr error
		groups, gerr = f.legGroups()
		if gerr != nil {
			return nil, nil, nil, gerr
		}
	}

	entry := f.queries().Begin(qid, "federator", varName, script)
	nodes := make([]string, len(f.Clients))
	for i, c := range f.Clients {
		nodes[i] = c.BaseURL
	}
	entry.InitMembers(nodes)

	var root *obs.Span
	if profile {
		root = obs.NewSpan("FEDERATED")
		root.Detail = fmt.Sprintf("FEDERATED %s (%d members)", varName, len(f.Clients))
		root.Mode = "fed"
		entry.SetRoot(root)

		planStart := time.Now()
		planSp := obs.NewSpan("PLAN")
		planSp.Detail = fmt.Sprintf("PLAN %s digest=%s", varName, obs.ScriptDigest(script))
		planSp.Mode = "fed"
		root.AddChild(planSp)
		if replicated {
			planSp.SetAttr("replicated", "true")
			planSp.SetAttr("legs", strconv.Itoa(len(groups)))
		}
		planSp.SetOutput(len(f.Clients), 0)
		planSp.Finish(planStart)
	}

	var results []legResult
	if replicated {
		results = f.runReplicated(ctx, script, varName, chunkSize, qid, entry, root, groups)
	} else {
		results = f.runLegacy(ctx, script, varName, chunkSize, qid, entry, root)
	}

	finish := func(status obs.QueryStatus, err error) {
		errText := ""
		if err != nil {
			errText = err.Error()
		}
		if root != nil {
			root.Finish(began)
		}
		f.queries().Finish(entry, status, errText)
	}

	mergeStart := time.Now()
	var mergeSp *obs.Span
	if root != nil {
		mergeSp = obs.NewSpan("MERGE")
		mergeSp.Detail = fmt.Sprintf("MERGE %s (sample union)", varName)
		mergeSp.Mode = "fed"
		root.AddChild(mergeSp)
	}
	var merged *gdm.Dataset
	var report *PartialFailure
	successes := 0
	sIn, rIn := 0, 0
	dedup := 0
	var seen map[string]bool
	if replicated {
		seen = make(map[string]bool)
	}
	for _, r := range results {
		if r.ds == nil {
			if report == nil {
				report = &PartialFailure{QueryID: qid}
			}
			if replicated {
				report.Failed = append(report.Failed, r.legFailure())
			} else {
				report.Failed = append(report.Failed, r.fails...)
			}
			continue
		}
		successes++
		ds := r.ds
		if replicated {
			// Overlapping replica groups may return the same sample from two
			// legs; merge each identity exactly once so replication can never
			// double-count.
			var dropped int
			ds, dropped = dedupFilter(seen, ds)
			dedup += dropped
		}
		rs := 0
		for i := range ds.Samples {
			rs += len(ds.Samples[i].Regions)
		}
		sIn += len(ds.Samples)
		rIn += rs
		if merged == nil {
			merged = ds
			continue
		}
		u, err := engine.Union(engine.Config{MetaFirst: true}, merged, ds)
		if err != nil {
			if mergeSp != nil {
				mergeSp.SetAttr("error", "merge")
				mergeSp.Finish(mergeStart)
			}
			finish(obs.StatusFailed, err)
			return nil, root, report, err
		}
		merged = u
	}
	if dedup > 0 {
		metricDedupSamples.Add(int64(dedup))
	}
	if mergeSp != nil {
		mergeSp.SetInput(sIn, rIn)
		if dedup > 0 {
			mergeSp.SetAttr("dedup", strconv.Itoa(dedup))
		}
		if merged != nil {
			rs := 0
			for i := range merged.Samples {
				rs += len(merged.Samples[i].Regions)
			}
			mergeSp.SetOutput(len(merged.Samples), rs)
		}
		mergeSp.Finish(mergeStart)
	}
	if root != nil && merged != nil {
		rs := 0
		for i := range merged.Samples {
			rs += len(merged.Samples[i].Regions)
		}
		root.SetOutput(len(merged.Samples), rs)
	}

	if report == nil {
		finish(obs.StatusDone, nil)
		return merged, root, nil, nil
	}
	metricPartialFailures.Inc()
	if !f.Policy.AllowPartial {
		err := fmt.Errorf("federated query aborted: %w", report)
		finish(obs.StatusFailed, err)
		return nil, root, report, err
	}
	if successes < f.Policy.quorum() {
		var err error
		if replicated {
			err = fmt.Errorf("federated query below quorum (%d/%d legs answered): %w",
				successes, len(results), report)
		} else {
			err = fmt.Errorf("federated query below quorum (%d/%d members answered): %w",
				successes, len(f.Clients), report)
		}
		finish(obs.StatusFailed, err)
		return nil, root, report, err
	}
	finish(obs.StatusPartial, report)
	return merged, root, report, nil
}

// runLegacy is the single-copy fan-out: one leg per member, no failover. A
// member failure costs its samples (degraded mode per the Policy).
func (f *Federator) runLegacy(ctx context.Context, script, varName string, chunkSize int, qid string, entry *obs.QueryEntry, root *obs.Span) []legResult {
	traces := make([]*memberTrace, len(f.Clients))
	for i := range f.Clients {
		traces[i] = &memberTrace{entry: entry, idx: i}
		if root != nil {
			memberSp := obs.NewSpan("MEMBER")
			memberSp.Detail = fmt.Sprintf("MEMBER %d %s", i+1, f.Clients[i].BaseURL)
			memberSp.Mode = "fed"
			root.AddChild(memberSp)
			traces[i].span = memberSp
			traces[i].ref = fmt.Sprintf("%s/member%d", qid, i+1)
		}
	}
	results := make([]legResult, len(f.Clients))
	var wg sync.WaitGroup
	for i, c := range f.Clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			ds, fail := queryNode(ctx, c, script, varName, chunkSize, traces[i])
			results[i] = legResult{ds: ds}
			if fail != nil {
				results[i].fails = []NodeFailure{*fail}
			}
		}(i, c)
	}
	wg.Wait()
	return results
}

// runReplicated fans out one leg per replica group, each with failover and
// (optionally) hedging inside the group.
func (f *Federator) runReplicated(ctx context.Context, script, varName string, chunkSize int, qid string, entry *obs.QueryEntry, root *obs.Span, groups []ReplicaGroup) []legResult {
	legs := make([]*legTrace, len(groups))
	for i, g := range groups {
		legs[i] = &legTrace{entry: entry, qid: qid, group: g}
		if root != nil {
			legSp := obs.NewSpan("LEG")
			legSp.Detail = fmt.Sprintf("LEG %s [%s] x%d", g.Key, strings.Join(g.Units, ","), len(g.Members))
			legSp.Mode = "fed"
			root.AddChild(legSp)
			legs[i].legSp = legSp
		}
	}
	results := make([]legResult, len(groups))
	var wg sync.WaitGroup
	for i := range groups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started := time.Now()
			results[i] = f.runLeg(ctx, script, varName, chunkSize, legs[i])
			if legs[i].legSp != nil {
				if results[i].ds != nil {
					rs := 0
					for _, s := range results[i].ds.Samples {
						rs += len(s.Regions)
					}
					legs[i].legSp.SetOutput(len(results[i].ds.Samples), rs)
				}
				legs[i].legSp.SetAttr("attempts", strconv.Itoa(legs[i].attempts))
				legs[i].legSp.Finish(started)
			}
		}(i)
	}
	wg.Wait()
	return results
}

// QueryProfiled is Query with federated EXPLAIN ANALYZE: it returns the
// merged cross-node span tree alongside the result. The tree's FEDERATED
// root covers coordinator planning, one MEMBER subtree per node — execute
// (with the node's own remote profile grafted in), chunked fetch, release,
// each annotated with retry attempts, breaker state and bytes moved — and
// the final merge. Render it with (*obs.Span).Render, exactly like a local
// profile.
func (f *Federator) QueryProfiled(ctx context.Context, script, varName string, chunkSize int) (*gdm.Dataset, *obs.Span, *PartialFailure, error) {
	return f.run(ctx, script, varName, chunkSize, true)
}
