package federation

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"genogo/internal/gdm"
	"genogo/internal/obs"
)

// HedgePolicy configures hedged requests: after a delay, a leg still waiting
// on its primary replica launches the same work on the next replica and
// takes the first winner, canceling the loser — trading a bounded amount of
// duplicate work for a tail latency set by the second-slowest replica
// instead of the slowest.
type HedgePolicy struct {
	// Enabled turns hedging on (replicated federation only).
	Enabled bool
	// Delay is the floor (and the fallback while the latency window is
	// still cold) for the hedge trigger; <= 0 means DefaultHedgeDelay.
	Delay time.Duration
	// MaxDelay caps the adaptive trigger; <= 0 means DefaultHedgeMaxDelay.
	MaxDelay time.Duration
}

// Hedge delay bounds when HedgePolicy leaves them unset.
const (
	DefaultHedgeDelay    = 50 * time.Millisecond
	DefaultHedgeMaxDelay = 2 * time.Second
)

// latencyWindowSize is the ring of recent leg latencies the adaptive hedge
// delay is computed over.
const latencyWindowSize = 128

// latencyMinSamples is how many observations the window needs before its
// p99 is trusted over HedgePolicy.Delay.
const latencyMinSamples = 8

// latencyWindow is a fixed-size ring of recent successful leg latencies.
// The zero value is ready to use.
type latencyWindow struct {
	mu  sync.Mutex
	buf [latencyWindowSize]time.Duration
	n   int // observations recorded (may exceed len(buf))
}

func (w *latencyWindow) observe(d time.Duration) {
	w.mu.Lock()
	w.buf[w.n%latencyWindowSize] = d
	w.n++
	w.mu.Unlock()
}

// p99 reports the window's 99th-percentile latency; ok is false while the
// window holds fewer than latencyMinSamples observations.
func (w *latencyWindow) p99() (d time.Duration, ok bool) {
	w.mu.Lock()
	n := w.n
	if n > latencyWindowSize {
		n = latencyWindowSize
	}
	sorted := make([]time.Duration, n)
	copy(sorted, w.buf[:n])
	w.mu.Unlock()
	if n < latencyMinSamples {
		return 0, false
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (n*99 + 99) / 100 // ceil(0.99*n)
	if idx > n {
		idx = n
	}
	return sorted[idx-1], true
}

// hedgeDelay resolves the current hedge trigger: the window's p99 when warm
// (clamped to [Delay, MaxDelay]), the configured Delay while cold.
func (f *Federator) hedgeDelay() time.Duration {
	floor := f.Hedge.Delay
	if floor <= 0 {
		floor = DefaultHedgeDelay
	}
	cap := f.Hedge.MaxDelay
	if cap <= 0 {
		cap = DefaultHedgeMaxDelay
	}
	d := floor
	if p99, ok := f.hedgeWin.p99(); ok && p99 > d {
		d = p99
	}
	if d > cap {
		d = cap
	}
	return d
}

// rankReplicas orders a group's members for dispatch: healthiest first
// (up < unknown < suspect < down per the prober), stable by index so the
// order is deterministic when health ties.
func (f *Federator) rankReplicas(members []int) []int {
	out := append([]int(nil), members...)
	if f.Prober == nil {
		return out
	}
	sort.SliceStable(out, func(i, j int) bool {
		return f.Prober.HealthOf(out[i]).rank() < f.Prober.HealthOf(out[j]).rank()
	})
	return out
}

// legGroups resolves the query's leg structure from the placement (nil
// placement is handled by the caller's legacy path).
func (f *Federator) legGroups() ([]ReplicaGroup, error) {
	if err := f.Placement.Validate(len(f.Clients)); err != nil {
		return nil, err
	}
	groups := f.Placement.Groups()
	if len(groups) == 0 {
		return nil, fmt.Errorf("federation: placement registers no data units")
	}
	return groups, nil
}

// legTrace builds the observability for one replica leg: a LEG span under
// the federated root holding one MEMBER attempt span per dispatched replica,
// each annotated with its role (primary, failover, hedge).
type legTrace struct {
	entry    *obs.QueryEntry
	legSp    *obs.Span // nil when unprofiled
	qid      string
	group    ReplicaGroup
	attempts int
}

// attempt opens the observability for one replica attempt and returns the
// memberTrace queryNode drives. role is "primary", "failover", or "hedge".
func (lt *legTrace) attempt(member int, baseURL, role string) *memberTrace {
	lt.attempts++
	tr := &memberTrace{entry: lt.entry, idx: member}
	if lt.legSp != nil {
		sp := obs.NewSpan("MEMBER")
		sp.Detail = fmt.Sprintf("MEMBER %d %s", member+1, baseURL)
		sp.Mode = "fed"
		sp.SetAttr("role", role)
		sp.SetAttr("leg", lt.group.Key)
		lt.legSp.AddChild(sp)
		tr.span = sp
		tr.ref = fmt.Sprintf("%s/leg%s/member%d.%d", lt.qid, lt.group.Key, member+1, lt.attempts)
	}
	return tr
}

// legResult is one leg's outcome: the winning replica's dataset, or the
// failures of every replica tried.
type legResult struct {
	group ReplicaGroup
	ds    *gdm.Dataset
	// fails holds one NodeFailure per replica attempt that failed. The leg
	// failed only when ds is nil; a non-nil ds with fails means failover
	// saved the leg and the result is still exact.
	fails []NodeFailure
}

// runLeg executes one replica group's leg: dispatch to the healthiest
// replica, fail over to the survivors when an attempt dies, and (when
// hedging is on) launch a second replica after the adaptive delay, taking
// the first winner and canceling the loser. The leg fails only when every
// replica has been tried and failed.
func (f *Federator) runLeg(ctx context.Context, script, varName string, chunkSize int, lt *legTrace) legResult {
	res := legResult{group: lt.group}
	order := f.rankReplicas(lt.group.Members)

	type attemptOutcome struct {
		ds   *gdm.Dataset
		fail *NodeFailure
		role string
	}
	outcomes := make(chan attemptOutcome, len(order))
	cancels := make([]context.CancelFunc, 0, len(order))
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	launched := 0
	launch := func(role string) bool {
		if launched >= len(order) {
			return false
		}
		m := order[launched]
		launched++
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		tr := lt.attempt(m, f.Clients[m].BaseURL, role)
		started := time.Now()
		go func() {
			ds, fail := queryNode(actx, f.Clients[m], script, varName, chunkSize, tr)
			if fail == nil {
				f.hedgeWin.observe(time.Since(started))
			}
			outcomes <- attemptOutcome{ds: ds, fail: fail, role: role}
		}()
		return true
	}

	launch("primary")
	pending := 1
	var hedgeC <-chan time.Time
	if f.Hedge.Enabled && len(order) > 1 {
		t := time.NewTimer(f.hedgeDelay())
		defer t.Stop()
		hedgeC = t.C
	}
	hedgeOutstanding := false
	for pending > 0 {
		select {
		case out := <-outcomes:
			pending--
			if out.role == "hedge" {
				hedgeOutstanding = false
			}
			if out.fail == nil {
				// Winner: everything still in flight is a loser — cancel it.
				if out.role == "hedge" {
					metricHedges.With("win").Inc()
				} else if hedgeOutstanding {
					metricHedges.With("canceled").Inc()
				}
				if out.role == "failover" && lt.legSp != nil {
					lt.legSp.SetAttr("failover", "recovered")
				}
				res.ds = out.ds
				return res
			}
			res.fails = append(res.fails, *out.fail)
			if out.role == "hedge" {
				metricHedges.With("failed").Inc()
			}
			if pending == 0 && launch("failover") {
				pending++
				metricFailovers.Inc()
			}
		case <-hedgeC:
			hedgeC = nil
			if launch("hedge") {
				pending++
				hedgeOutstanding = true
			}
		}
	}
	// Every replica tried and failed: the leg is lost.
	if lt.legSp != nil {
		lt.legSp.SetAttr("error", "all replicas failed")
	}
	return res
}

// legFailure summarizes a lost leg for the PartialFailure report: one
// NodeFailure naming the leg's units and every replica that was tried.
func (r legResult) legFailure() NodeFailure {
	nodes := make([]string, len(r.fails))
	for i := range r.fails {
		nodes[i] = r.fails[i].Node
	}
	last := r.fails[len(r.fails)-1]
	return NodeFailure{
		Node:  strings.Join(nodes, "+"),
		Stage: last.Stage,
		Err: fmt.Errorf("leg %s (units %s): all %d replica(s) failed, last: %w",
			r.group.Key, strings.Join(r.group.Units, ","), len(r.fails), last.Err),
	}
}

// dedupFilter drops samples whose identity has already been merged from an
// overlapping replica, preserving order. It returns the filtered dataset
// (the input when nothing was dropped) and the number of duplicates removed.
func dedupFilter(seen map[string]bool, ds *gdm.Dataset) (*gdm.Dataset, int) {
	dropped := 0
	fresh := 0
	for i := range ds.Samples {
		if seen[ds.Samples[i].ID] {
			dropped++
		} else {
			fresh++
		}
	}
	if dropped == 0 {
		for i := range ds.Samples {
			seen[ds.Samples[i].ID] = true
		}
		return ds, 0
	}
	out := gdm.NewDataset(ds.Name, ds.Schema)
	out.Samples = make([]*gdm.Sample, 0, fresh)
	for i := range ds.Samples {
		if seen[ds.Samples[i].ID] {
			continue
		}
		seen[ds.Samples[i].ID] = true
		out.Samples = append(out.Samples, ds.Samples[i])
	}
	return out, dropped
}
