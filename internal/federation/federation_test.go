package federation

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"genogo/internal/engine"
	"genogo/internal/gdm"
	"genogo/internal/synth"
)

// newNode spins up a test node holding a synthetic ENCODE slice plus the
// shared annotations.
func newNode(t *testing.T, name string, seed int64, samples int) (*Server, *httptest.Server) {
	t.Helper()
	g := synth.New(seed)
	enc := g.Encode(synth.EncodeOptions{Samples: samples, MeanPeaks: 30})
	anns := g.Annotations(g.Genes(50))
	srv := NewServer(name, engine.Config{Mode: engine.ModeSerial, MetaFirst: true}, enc, anns)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

const fedScript = `
PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;
MATERIALIZE RESULT;
`

func TestListDatasets(t *testing.T) {
	_, ts := newNode(t, "node1", 1, 20)
	c := NewClient(ts.URL)
	infos, err := c.ListDatasets(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("datasets = %d", len(infos))
	}
	if infos[0].Name != "ANNOTATIONS" || infos[1].Name != "ENCODE" {
		t.Errorf("order = %s,%s", infos[0].Name, infos[1].Name)
	}
	enc := infos[1]
	if enc.Samples != 20 || enc.Regions == 0 || enc.EstimatedBytes == 0 {
		t.Errorf("ENCODE info = %+v", enc)
	}
	if enc.MetaAttributes["dataType"] != 20 {
		t.Errorf("dataType coverage = %d", enc.MetaAttributes["dataType"])
	}
	if len(enc.Schema) != 2 || enc.Schema[0].Name != "p_value" {
		t.Errorf("schema = %v", enc.Schema)
	}
	if c.BytesReceived == 0 {
		t.Error("traffic accounting broken")
	}
}

func TestCompileWithEstimate(t *testing.T) {
	_, ts := newNode(t, "node1", 2, 30)
	c := NewClient(ts.URL)
	resp, err := c.Compile(context.Background(), fedScript, "RESULT")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("compile failed: %s", resp.Error)
	}
	if !strings.Contains(resp.Explain, "MAP") {
		t.Errorf("explain = %q", resp.Explain)
	}
	if resp.Estimate.Samples <= 0 || resp.Estimate.Regions <= 0 || resp.Estimate.Bytes <= 0 {
		t.Errorf("estimate = %+v", resp.Estimate)
	}
	// Broken script: compile error travels back, not an HTTP failure.
	bad, err := c.Compile(context.Background(), "X = FROB() Y;", "X")
	if err != nil {
		t.Fatal(err)
	}
	if bad.OK || bad.Error == "" {
		t.Errorf("bad compile = %+v", bad)
	}
}

func TestExecuteAndStagedRetrieval(t *testing.T) {
	srv, ts := newNode(t, "node1", 3, 25)
	c := NewClient(ts.URL)
	qr, err := c.Execute(context.Background(), fedScript, "RESULT")
	if err != nil {
		t.Fatal(err)
	}
	if qr.ResultID == "" || qr.Samples == 0 || qr.Regions == 0 {
		t.Fatalf("query response = %+v", qr)
	}
	if srv.StagedCount() != 1 {
		t.Errorf("staged = %d", srv.StagedCount())
	}
	// Retrieve in chunks of 3 samples.
	ds, err := c.FetchAll(context.Background(), qr.ResultID, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Samples) != qr.Samples || ds.NumRegions() != qr.Regions {
		t.Errorf("fetched %d samples / %d regions, staged %d / %d",
			len(ds.Samples), ds.NumRegions(), qr.Samples, qr.Regions)
	}
	if err := c.Release(context.Background(), qr.ResultID); err != nil {
		t.Fatal(err)
	}
	if srv.StagedCount() != 0 {
		t.Error("release did not free staging")
	}
	// Fetching a released result fails.
	if _, _, err := c.FetchChunk(context.Background(), qr.ResultID, 0, 1); err == nil {
		t.Error("fetch after release succeeded")
	}
}

func TestChunkBoundaries(t *testing.T) {
	_, ts := newNode(t, "node1", 4, 10)
	c := NewClient(ts.URL)
	qr, err := c.Execute(context.Background(), `X = SELECT() ENCODE; MATERIALIZE X;`, "X")
	if err != nil {
		t.Fatal(err)
	}
	chunk, total, err := c.FetchChunk(context.Background(), qr.ResultID, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if total != 10 || len(chunk.Samples) != 2 {
		t.Errorf("tail chunk = %d of %d", len(chunk.Samples), total)
	}
	beyond, _, err := c.FetchChunk(context.Background(), qr.ResultID, 99, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(beyond.Samples) != 0 {
		t.Error("chunk beyond end non-empty")
	}
}

func TestStagingLimit(t *testing.T) {
	srv, ts := newNode(t, "node1", 5, 5)
	srv.maxStay = 2
	c := NewClient(ts.URL)
	q1, err := c.Execute(context.Background(), `X = SELECT() ENCODE; MATERIALIZE X;`, "X")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(context.Background(), `X = SELECT() ENCODE; MATERIALIZE X;`, "X"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(context.Background(), `X = SELECT() ENCODE; MATERIALIZE X;`, "X"); err == nil {
		t.Error("staging limit not enforced")
	}
	// Releasing frees a slot.
	if err := c.Release(context.Background(), q1.ResultID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(context.Background(), `X = SELECT() ENCODE; MATERIALIZE X;`, "X"); err != nil {
		t.Errorf("slot not freed: %v", err)
	}
}

func TestRemoteQueryError(t *testing.T) {
	_, ts := newNode(t, "node1", 6, 5)
	c := NewClient(ts.URL)
	if _, err := c.Execute(context.Background(), `X = SELECT() NO_SUCH; MATERIALIZE X;`, "X"); err == nil {
		t.Error("remote error not surfaced")
	}
	if _, err := c.Execute(context.Background(), `garbage`, "X"); err == nil {
		t.Error("parse error not surfaced")
	}
}

func TestFederatedVsNaiveEquivalenceAndTraffic(t *testing.T) {
	_, ts1 := newNode(t, "node1", 7, 15)
	_, ts2 := newNode(t, "node2", 8, 15)

	fed := &Federator{Clients: []*Client{NewClient(ts1.URL), NewClient(ts2.URL)}}
	fedResult, partial, err := fed.Query(context.Background(), fedScript, "RESULT", 4)
	if err != nil {
		t.Fatal(err)
	}
	if partial != nil {
		t.Fatalf("healthy members reported failures: %v", partial)
	}
	fedBytes := fed.BytesMoved()

	naive := &Federator{Clients: []*Client{NewClient(ts1.URL), NewClient(ts2.URL)}}
	naiveResult, err := naive.QueryNaive(context.Background(), fedScript, "RESULT",
		[]string{"ANNOTATIONS", "ENCODE"},
		engine.Config{Mode: engine.ModeSerial, MetaFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	naiveBytes := naive.BytesMoved()

	if len(fedResult.Samples) != len(naiveResult.Samples) {
		t.Errorf("architectures disagree: %d vs %d samples",
			len(fedResult.Samples), len(naiveResult.Samples))
	}
	if fedResult.NumRegions() != naiveResult.NumRegions() {
		t.Errorf("architectures disagree: %d vs %d regions",
			fedResult.NumRegions(), naiveResult.NumRegions())
	}
	t.Logf("federated moved %d bytes, naive moved %d bytes", fedBytes, naiveBytes)
	if fedBytes <= 0 || naiveBytes <= 0 {
		t.Fatal("traffic accounting broken")
	}
	// The paper's claim: queries are short texts; shipping them beats
	// shipping the data. The MAP result here is not tiny (it scales with
	// promoters x samples), but input shipping must still dominate the
	// naive bill given the non-selected RnaSeq/DnaseSeq samples travel too.
	if naiveBytes <= fedBytes/2 {
		t.Errorf("expected naive to move far more data: naive=%d federated=%d", naiveBytes, fedBytes)
	}
}

func TestDownloadDatasetRoundTrip(t *testing.T) {
	srv, ts := newNode(t, "node1", 9, 8)
	_ = srv
	c := NewClient(ts.URL)
	ds, err := c.DownloadDataset(context.Background(), "ENCODE")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Samples) != 8 {
		t.Errorf("samples = %d", len(ds.Samples))
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DownloadDataset(context.Background(), "NOPE"); err == nil {
		t.Error("unknown dataset download succeeded")
	}
}

func TestEstimatePlanShapes(t *testing.T) {
	g := synth.New(10)
	enc := g.Encode(synth.EncodeOptions{Samples: 40, MeanPeaks: 30})
	anns := g.Annotations(g.Genes(60))
	stats := func(name string) (DatasetStats, bool) {
		switch name {
		case "ENCODE":
			return statsOf(enc), true
		case "ANNOTATIONS":
			return statsOf(anns), true
		}
		return DatasetStats{}, false
	}
	scan := &engine.Scan{Dataset: "ENCODE"}
	full := EstimatePlan(scan, stats)
	if full.Samples != 40 || full.Regions != enc.NumRegions() {
		t.Errorf("scan estimate = %+v", full)
	}
	sel := EstimatePlan(&engine.SelectOp{Input: scan, Meta: nil, Region: nil}, stats)
	if sel.Regions != full.Regions {
		t.Errorf("trivial select changed estimate: %+v", sel)
	}
	mapEst := EstimatePlan(&engine.MapOp{
		Ref: &engine.Scan{Dataset: "ANNOTATIONS"}, Exp: scan,
	}, stats)
	// 2 annotation samples x 40 experiment samples = 80 output samples.
	if mapEst.Samples != 80 {
		t.Errorf("map estimate samples = %d", mapEst.Samples)
	}
	unknown := EstimatePlan(&engine.Scan{Dataset: "NOPE"}, stats)
	if unknown.Samples != 0 || unknown.Regions != 0 {
		t.Errorf("unknown scan estimate = %+v", unknown)
	}
	union := EstimatePlan(&engine.UnionOp{Left: scan, Right: scan}, stats)
	if union.Samples != 80 {
		t.Errorf("union estimate = %+v", union)
	}
	top := EstimatePlan(&engine.OrderOp{Input: scan,
		Args: engine.OrderArgs{Keys: []engine.OrderKey{{Attr: "x"}}, Top: 5}}, stats)
	if top.Samples != 5 {
		t.Errorf("top estimate = %+v", top)
	}
}

func TestEstimateWithinOrderOfMagnitude(t *testing.T) {
	// The estimator's contract: size staging within ~an order of magnitude.
	g := synth.New(11)
	enc := g.Encode(synth.EncodeOptions{Samples: 20, MeanPeaks: 40})
	anns := g.Annotations(g.Genes(80))
	srv := NewServer("n", engine.Config{Mode: engine.ModeSerial, MetaFirst: true}, enc, anns)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	comp, err := c.Compile(context.Background(), fedScript, "RESULT")
	if err != nil || !comp.OK {
		t.Fatalf("compile: %v %s", err, comp.Error)
	}
	qr, err := c.Execute(context.Background(), fedScript, "RESULT")
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(comp.Estimate.Regions) / float64(qr.Regions)
	if ratio < 0.05 || ratio > 20 {
		t.Errorf("estimate %d vs actual %d regions (ratio %.2f)",
			comp.Estimate.Regions, qr.Regions, ratio)
	}
}

func TestUserDatasetPrivacy(t *testing.T) {
	srv, ts := newNode(t, "node1", 12, 10)
	c := NewClient(ts.URL)

	// A private user dataset: regions of interest the requester does not
	// want stored at the node.
	user := gdm.NewDataset("MY_REGIONS", gdm.MustSchema())
	us := gdm.NewSample("mine")
	us.Meta.Add("owner", "requester")
	us.AddRegion(gdm.NewRegion("chr1", 0, 2_400_000, gdm.StrandNone))
	user.MustAdd(us)

	script := `
PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
HITS = MAP(n AS COUNT) MY_REGIONS PEAKS;
MATERIALIZE HITS;
`
	qr, err := c.ExecuteWithUserData(context.Background(), script, "HITS", user)
	if err != nil {
		t.Fatal(err)
	}
	if qr.Samples == 0 {
		t.Fatal("query over user dataset returned nothing")
	}
	ds, err := c.FetchAll(context.Background(), qr.ResultID, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ds.Schema.Index("n"); !ok {
		t.Errorf("schema = %s", ds.Schema)
	}
	if err := c.Release(context.Background(), qr.ResultID); err != nil {
		t.Fatal(err)
	}

	// Privacy: the user dataset never appears in the node's catalog.
	infos, err := c.ListDatasets(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		if info.Name == "MY_REGIONS" {
			t.Error("private user dataset leaked into the catalog")
		}
	}
	// And a later query cannot see it.
	if _, err := c.Execute(context.Background(), `X = SELECT() MY_REGIONS; MATERIALIZE X;`, "X"); err == nil {
		t.Error("private user dataset persisted across requests")
	}
	_ = srv
}

func TestUserDatasetCorrupt(t *testing.T) {
	_, ts := newNode(t, "node1", 13, 4)
	c := NewClient(ts.URL)
	var out QueryResponse
	err := c.postJSON(context.Background(), "/query", QueryRequest{
		Script: `X = SELECT() ENCODE; MATERIALIZE X;`, Var: "X",
		UserDataset: "GARBAGE",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if out.OK || !strings.Contains(out.Error, "user dataset") {
		t.Errorf("corrupt user dataset accepted: %+v", out)
	}
}
