package federation

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"genogo/internal/engine"
	"genogo/internal/expr"
	"genogo/internal/gdm"
	"genogo/internal/obs"
	"genogo/internal/synth"
)

// zoneDataset builds a dataset whose regions split unevenly across two
// chromosomes, so a zone-aware estimate is distinguishable from the flat
// selectivity constant.
func zoneDataset(t *testing.T, name string) *gdm.Dataset {
	t.Helper()
	schema := gdm.MustSchema(gdm.Field{Name: "score", Type: gdm.KindFloat})
	ds := gdm.NewDataset(name, schema)
	s := gdm.NewSample("s1")
	s.Meta.Add("cell", "HeLa")
	// 9 regions on chr1, 1 on chr2.
	for i := int64(0); i < 9; i++ {
		s.AddRegion(gdm.NewRegion("chr1", i*1000, i*1000+500, gdm.StrandNone, gdm.Float(1)))
	}
	s.AddRegion(gdm.NewRegion("chr2", 0, 500, gdm.StrandNone, gdm.Float(1)))
	s.SortRegions()
	ds.MustAdd(s)
	return ds
}

// TestEstimateZoneAwareSelect: a chromosome-restricted SELECT estimates from
// the zone map (regions actually on that chromosome), not the flat 30%
// constant.
func TestEstimateZoneAwareSelect(t *testing.T) {
	ds := zoneDataset(t, "Z")
	stats := func(name string) (DatasetStats, bool) {
		if name != "Z" {
			return DatasetStats{}, false
		}
		return statsOf(ds), true
	}
	chr2 := expr.Cmp{Op: expr.CmpEq, Left: expr.Attr{Name: "chrom"}, Right: expr.Const{Value: gdm.Str("chr2")}}
	est := EstimatePlan(&engine.SelectOp{Input: &engine.Scan{Dataset: "Z"}, Region: chr2}, stats)
	if est.Regions != 1 {
		t.Errorf("zone-aware estimate = %d regions, want 1 (chr2's share)", est.Regions)
	}
	// Without zones the same plan falls back to the flat constant.
	flat := func(name string) (DatasetStats, bool) {
		st, ok := stats(name)
		st.Zones = nil
		return st, ok
	}
	est = EstimatePlan(&engine.SelectOp{Input: &engine.Scan{Dataset: "Z"}, Region: chr2}, flat)
	if est.Regions != 3 {
		t.Errorf("flat estimate = %d regions, want 3 (30%% of 10)", est.Regions)
	}
}

// TestEstimateZoneAwareJoin: a JOIN whose sides share no chromosome
// estimates (close to) zero emitted regions via the chromosome-coupling
// factor.
func TestEstimateZoneAwareJoin(t *testing.T) {
	schema := gdm.MustSchema(gdm.Field{Name: "score", Type: gdm.KindFloat})
	mk := func(name, chrom string) *gdm.Dataset {
		ds := gdm.NewDataset(name, schema)
		s := gdm.NewSample("s")
		for i := int64(0); i < 5; i++ {
			s.AddRegion(gdm.NewRegion(chrom, i*100, i*100+50, gdm.StrandNone, gdm.Float(1)))
		}
		s.SortRegions()
		ds.MustAdd(s)
		return ds
	}
	l, r := mk("L", "chr1"), mk("R", "chr7")
	stats := func(name string) (DatasetStats, bool) {
		switch name {
		case "L":
			return statsOf(l), true
		case "R":
			return statsOf(r), true
		}
		return DatasetStats{}, false
	}
	join := &engine.JoinOp{Left: &engine.Scan{Dataset: "L"}, Right: &engine.Scan{Dataset: "R"}}
	est := EstimatePlan(join, stats)
	// SharedChromFraction is 0; scaleInt floors a nonzero input at 1.
	if est.Regions > 1 {
		t.Errorf("disjoint-chromosome join estimate = %d regions, want <= 1", est.Regions)
	}
}

// TestEstimateStatsMemoized: the provider computes a dataset's statistics
// once and serves the same block until the name is re-registered.
func TestEstimateStatsMemoized(t *testing.T) {
	srv := NewServer("n", engine.Config{Mode: engine.ModeSerial}, zoneDataset(t, "Z"))
	provider := srv.stats()
	st1, ok := provider("Z")
	if !ok || st1.Zones == nil {
		t.Fatalf("no stats for Z: %+v", st1)
	}
	st2, _ := provider("Z")
	if st1.Zones != st2.Zones {
		t.Error("second lookup recomputed statistics")
	}
	// Re-registration invalidates the memo.
	srv.AddDataset(zoneDataset(t, "Z"))
	st3, ok := provider("Z")
	if !ok || st3.Zones == st1.Zones {
		t.Error("re-registration served the stale memo")
	}
}

// TestEstimateAccuracyFeed: a finished federated execution files its
// (predicted, actual) sample into the estimate registry, visible on
// /debug/estimates.
func TestEstimateAccuracyFeed(t *testing.T) {
	g := synth.New(7)
	srv := NewServer("node", engine.Config{Mode: engine.ModeSerial, MetaFirst: true},
		g.Encode(synth.EncodeOptions{Samples: 6, MeanPeaks: 12}),
		g.Annotations(g.Genes(30)))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := NewClient(ts.URL)
	qr, err := c.Execute(context.Background(), fedScript, "RESULT")
	if err != nil || !qr.OK {
		t.Fatalf("execute: %v %+v", err, qr)
	}

	resp, err := http.Get(ts.URL + "/debug/estimates")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep obs.EstimateReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Queries == 0 {
		t.Fatal("estimate registry saw no queries")
	}
	found := false
	for _, o := range rep.Recent {
		if o.Query == qr.QueryID {
			found = true
			if o.Actual[obs.EstDimRegions] != int64(qr.Regions) {
				t.Errorf("actual regions = %d, response said %d",
					o.Actual[obs.EstDimRegions], qr.Regions)
			}
			if _, ok := o.Predicted[obs.EstDimRegions]; !ok {
				t.Error("observation lacks a predicted region count")
			}
		}
	}
	if !found {
		t.Fatalf("query %s not in recent estimate observations", qr.QueryID)
	}
}

// TestEstimateNodeRepoConsole: the node catalog is served on /debug/repo
// with the registered datasets, and the debug index lists it.
func TestEstimateNodeRepoConsole(t *testing.T) {
	srv := NewServer("node", engine.Config{Mode: engine.ModeSerial}, zoneDataset(t, "ZREPO"))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/repo?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Datasets []struct {
			Name    string `json:"name"`
			Source  string `json:"source"`
			Regions int    `json:"regions"`
		} `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range listing.Datasets {
		if d.Name == "ZREPO" {
			found = true
			if d.Source != "memory" || d.Regions != 10 {
				t.Errorf("ZREPO row = %+v", d)
			}
		}
	}
	if !found {
		t.Fatalf("ZREPO missing from /debug/repo: %+v", listing)
	}
}
