package federation

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"testing"
	"time"

	"genogo/internal/engine"
	"genogo/internal/synth"
)

// TestHedgeExperiment measures the tail-latency effect of hedged reads: the
// same two-replica cluster, one replica with a heavy-tailed stall (10% of
// requests pause 150ms), queried with hedging off and on. Produces the
// hedged-vs-unhedged table in EXPERIMENTS.md. Gated behind HEDGE_REPORT=1 —
// it is a measurement, not a correctness test.
func TestHedgeExperiment(t *testing.T) {
	if os.Getenv("HEDGE_REPORT") == "" {
		t.Skip("set HEDGE_REPORT=1 to run the hedged-read latency experiment")
	}
	g := synth.New(42)
	full := g.Encode(synth.EncodeOptions{Samples: 6, MeanPeaks: 8})
	full.Name = "ENCODE"
	// The tail replica: most requests answer at once, a seeded 10% stall.
	stallRng := rand.New(rand.NewSource(1))
	mk := func(tail bool) string {
		srv := NewServer("m", engine.Config{Mode: engine.ModeSerial, MetaFirst: true}, full)
		h := srv.Handler()
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if tail && stallRng.Float64() < 0.10 {
				select {
				case <-time.After(150 * time.Millisecond):
				case <-r.Context().Done():
					return
				}
			}
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		return ts.URL
	}
	tailURL, steadyURL := mk(true), mk(false)

	run := func(hedge bool) (p50, p99 time.Duration, hedges int64) {
		fed := &Federator{
			Clients:   []*Client{NewClient(tailURL), NewClient(steadyURL)},
			Policy:    Policy{AllowPartial: true},
			Placement: NewPlacement().Register("ENCODE", 0, 1),
			Hedge:     HedgePolicy{Enabled: hedge, Delay: 20 * time.Millisecond},
		}
		before := metricHedges.With("win").Value() + metricHedges.With("canceled").Value()
		const n = 200
		lat := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			start := time.Now()
			if _, report, err := fed.Query(context.Background(), replScript, "X", 4); err != nil || report != nil {
				t.Fatalf("query %d: err=%v report=%v", i, err, report)
			}
			lat = append(lat, time.Since(start))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		hedges = metricHedges.With("win").Value() + metricHedges.With("canceled").Value() - before
		return lat[n/2], lat[n*99/100], hedges
	}

	up50, up99, _ := run(false)
	hp50, hp99, hedges := run(true)
	fmt.Printf("\nhedged-read experiment (200 queries each, 10%% of tail-replica requests stall 150ms):\n")
	fmt.Printf("| mode | p50 | p99 | hedges fired |\n|---|---|---|---|\n")
	fmt.Printf("| unhedged | %.1fms | %.1fms | 0 |\n", float64(up50.Microseconds())/1e3, float64(up99.Microseconds())/1e3)
	fmt.Printf("| hedged (20ms trigger) | %.1fms | %.1fms | %d |\n",
		float64(hp50.Microseconds())/1e3, float64(hp99.Microseconds())/1e3, hedges)
	if hp99 >= up99 {
		t.Errorf("hedging did not improve p99: %v vs %v", hp99, up99)
	}
}
