package federation

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"genogo/internal/engine"
	"genogo/internal/obs"
	"genogo/internal/resilience"
	"genogo/internal/synth"
)

// scrubSpans rewrites the volatile parts of a federated span snapshot —
// member base URLs (random httptest ports) and byte counts — so the rendered
// tree compares byte-for-byte across runs. Everything else (structure,
// operator details, sample/region flow, retry and breaker annotations) must
// already be deterministic.
func scrubSpans(root *obs.Span, urls map[string]string) {
	for _, sp := range root.Flatten() {
		for u, name := range urls {
			sp.Detail = strings.ReplaceAll(sp.Detail, u, name)
			if sp.Attrs["node"] == u {
				sp.Attrs["node"] = name
			}
		}
		if _, ok := sp.Attrs["bytes"]; ok {
			sp.Attrs["bytes"] = "_"
		}
	}
}

// TestTraceFederatedGoldenMergedTree runs a 3-member federated query — one
// member behind a seeded ChaosTransport that faults exactly the first
// execute attempt — and compares the rendered merged span tree, durations
// zeroed, against a golden. The tree must show coordinator planning, all
// three member fan-outs with their remote execution subtrees grafted in, the
// retry annotation on the flaky member's execute leg, chunked-download
// stages, and the final merge.
func TestTraceFederatedGoldenMergedTree(t *testing.T) {
	const perNode = 5
	_, ts1 := chaosNode(t, 1, perNode)
	_, ts2 := chaosNode(t, 2, perNode)
	_, ts3 := chaosNode(t, 3, perNode)
	// Seed 165's first draw is ~0.0006 (< 0.5: fault) and the next seven are
	// all >= 0.5 (pass): the member's first execute attempt answers 503 and
	// every later request of the query succeeds — one retry, deterministic.
	flaky := chaosClient(ts2.URL, &resilience.ChaosTransport{Seed: 165, ErrorRate: 0.5}, 3)
	fed := &Federator{
		Clients: []*Client{NewClient(ts1.URL), flaky, NewClient(ts3.URL)},
		Queries: obs.NewQueryRegistry(8),
	}
	ctx := obs.WithQueryID(context.Background(), "qgolden-1")
	ds, root, report, err := fed.QueryProfiled(ctx, chaosScript, "X", 4)
	if err != nil {
		t.Fatal(err)
	}
	if report != nil {
		t.Fatalf("report = %v", report)
	}
	if root == nil {
		t.Fatal("no merged span tree")
	}
	if len(ds.Samples) != 3*perNode {
		t.Fatalf("merged %d samples, want %d", len(ds.Samples), 3*perNode)
	}

	// Reconcile the grafted remote subtrees with the member responses: each
	// MEMBER's EXECUTE span reports what the node staged (QueryResponse
	// counts), and its grafted remote root must agree; the members must sum
	// to the merged result.
	snap := root.Snapshot()
	var memberSpans []*obs.Span
	for _, c := range snap.Children {
		if c.Op == "MEMBER" {
			memberSpans = append(memberSpans, c)
		}
	}
	if len(memberSpans) != 3 {
		t.Fatalf("tree has %d MEMBER spans, want 3", len(memberSpans))
	}
	sumSamples, sumRegions := 0, 0
	for i, m := range memberSpans {
		if len(m.Children) == 0 || m.Children[0].Op != "EXECUTE" {
			t.Fatalf("member %d first child = %+v", i, m.Children)
		}
		exec := m.Children[0]
		if len(exec.Children) != 1 {
			t.Fatalf("member %d EXECUTE has %d children, want the grafted remote tree", i, len(exec.Children))
		}
		remote := exec.Children[0]
		if !remote.Remote {
			t.Errorf("member %d grafted subtree not marked remote", i)
		}
		if remote.SamplesOut != exec.SamplesOut || remote.RegionsOut != exec.RegionsOut {
			t.Errorf("member %d: remote root out=%ds/%dr, execute reports %ds/%dr",
				i, remote.SamplesOut, remote.RegionsOut, exec.SamplesOut, exec.RegionsOut)
		}
		if m.SamplesOut != exec.SamplesOut || m.RegionsOut != exec.RegionsOut {
			t.Errorf("member %d: member out=%ds/%dr, execute out=%ds/%dr",
				i, m.SamplesOut, m.RegionsOut, exec.SamplesOut, exec.RegionsOut)
		}
		sumSamples += m.SamplesOut
		sumRegions += m.RegionsOut
	}
	if sumSamples != len(ds.Samples) {
		t.Errorf("member spans sum to %d samples, merged dataset has %d", sumSamples, len(ds.Samples))
	}
	rs := 0
	for i := range ds.Samples {
		rs += len(ds.Samples[i].Regions)
	}
	if sumRegions != rs {
		t.Errorf("member spans sum to %d regions, merged dataset has %d", sumRegions, rs)
	}
	// The flaky member's execute leg must carry the retry annotation; the
	// healthy members must not.
	if got := memberSpans[1].Children[0].Attrs["attempts"]; got != "2" {
		t.Errorf("flaky member execute attempts = %q, want 2", got)
	}
	if got := memberSpans[1].Attrs["retries"]; got != "1" {
		t.Errorf("flaky member retries = %q, want 1", got)
	}
	for _, i := range []int{0, 2} {
		if a := memberSpans[i].Children[0].Attrs["attempts"]; a != "" {
			t.Errorf("healthy member %d has attempts=%q", i, a)
		}
	}

	snap.ZeroDurations()
	scrubSpans(snap, map[string]string{ts1.URL: "node1", ts2.URL: "node2", ts3.URL: "node3"})
	got := snap.Render()
	want := `FEDERATED X (3 members)  [fed] time=0.0ms out=15s/108r
  PLAN X digest=b8b6cfbfbed5  [fed] time=0.0ms out=3s/0r
  MEMBER 1 node1  [fed breaker=closed bytes=_] time=0.0ms out=5s/28r
    EXECUTE X  [fed] time=0.0ms out=5s/28r
      SELECT meta: true; region: true  [serial remote node=node1] time=0.0ms in=5s/28r out=5s/28r
        SCAN ENCODE  [serial remote] time=0.0ms out=5s/28r
    FETCH r000001  [fed] time=0.0ms in=5s/28r out=5s/28r
      CHUNK r000001 [0,4)  [fed] time=0.0ms out=4s/25r
      CHUNK r000001 [4,8)  [fed] time=0.0ms out=1s/3r
    RELEASE r000001  [fed] time=0.0ms out=0s/0r
  MEMBER 2 node2  [fed breaker=closed bytes=_ retries=1] time=0.0ms out=5s/28r
    EXECUTE X  [fed attempts=2] time=0.0ms out=5s/28r
      SELECT meta: true; region: true  [serial remote node=node2] time=0.0ms in=5s/28r out=5s/28r
        SCAN ENCODE  [serial remote] time=0.0ms out=5s/28r
    FETCH r000001  [fed] time=0.0ms in=5s/28r out=5s/28r
      CHUNK r000001 [0,4)  [fed] time=0.0ms out=4s/24r
      CHUNK r000001 [4,8)  [fed] time=0.0ms out=1s/4r
    RELEASE r000001  [fed] time=0.0ms out=0s/0r
  MEMBER 3 node3  [fed breaker=closed bytes=_] time=0.0ms out=5s/52r
    EXECUTE X  [fed] time=0.0ms out=5s/52r
      SELECT meta: true; region: true  [serial remote node=node3] time=0.0ms in=5s/52r out=5s/52r
        SCAN ENCODE  [serial remote] time=0.0ms out=5s/52r
    FETCH r000001  [fed] time=0.0ms in=5s/52r out=5s/52r
      CHUNK r000001 [0,4)  [fed] time=0.0ms out=4s/23r
      CHUNK r000001 [4,8)  [fed] time=0.0ms out=1s/29r
    RELEASE r000001  [fed] time=0.0ms out=0s/0r
  MERGE X (sample union)  [fed] time=0.0ms in=15s/108r out=15s/108r
`
	if got != want {
		t.Errorf("merged tree:\n%s\nwant:\n%s", got, want)
	}

	// The console entry finished as done, with the profile attached.
	e := fed.Queries.Get("qgolden-1")
	if e == nil {
		t.Fatal("coordinator registry has no entry")
	}
	if e.Status() != obs.StatusDone {
		t.Errorf("entry status = %s", e.Status())
	}
	for i, m := range e.Members() {
		if m.Stage != "done" {
			t.Errorf("member %d stage = %q", i, m.Stage)
		}
		if m.Breaker != "closed" {
			t.Errorf("member %d breaker = %q", i, m.Breaker)
		}
	}
	if e.Members()[1].Attempts != 1 {
		t.Errorf("flaky member console retries = %d, want 1", e.Members()[1].Attempts)
	}
}

// TestTraceHeaderPropagation: every request of a federated query carries
// X-Query-ID, the execute request carries the coordinator MEMBER span
// reference in X-Parent-Span, and the node files its execution under that
// identity in its own registry.
func TestTraceHeaderPropagation(t *testing.T) {
	nodeReg := obs.NewQueryRegistry(8)
	srv, _ := chaosNode(t, 7, 3)
	srv.Queries = nodeReg

	var mu sync.Mutex
	type seen struct{ path, qid, parent string }
	var requests []seen
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		requests = append(requests, seen{r.URL.Path, r.Header.Get(obs.HeaderQueryID), r.Header.Get(obs.HeaderParentSpan)})
		mu.Unlock()
		srv.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	fed := &Federator{Clients: []*Client{NewClient(ts.URL)}, Queries: obs.NewQueryRegistry(8)}
	ctx := obs.WithQueryID(context.Background(), "qhdr-1")
	if _, _, _, err := fed.QueryProfiled(ctx, chaosScript, "X", 4); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(requests) == 0 {
		t.Fatal("no requests observed")
	}
	sawExecute := false
	for _, r := range requests {
		if r.qid != "qhdr-1" {
			t.Errorf("%s carried X-Query-ID %q", r.path, r.qid)
		}
		if r.path == "/query" {
			sawExecute = true
			if r.parent != "qhdr-1/member1" {
				t.Errorf("execute X-Parent-Span = %q", r.parent)
			}
		}
	}
	if !sawExecute {
		t.Error("no /query request observed")
	}

	// The node filed the execution under the propagated identity.
	e := nodeReg.Get("qhdr-1")
	if e == nil {
		t.Fatal("node registry has no entry for the propagated id")
	}
	if e.ParentSpan() != "qhdr-1/member1" {
		t.Errorf("node entry parent span = %q", e.ParentSpan())
	}
	if e.Status() != obs.StatusDone {
		t.Errorf("node entry status = %s", e.Status())
	}
	if e.Root() == nil {
		t.Error("node entry recorded no profile")
	}
}

// TestTraceUnprofiledQueryRegistersToo: plain Query (no profile) still gets
// an identity, console entry and member states — only the span tree is
// absent.
func TestTraceUnprofiledQueryRegisters(t *testing.T) {
	_, ts := chaosNode(t, 8, 3)
	fed := &Federator{Clients: []*Client{NewClient(ts.URL)}, Queries: obs.NewQueryRegistry(8)}
	if _, _, err := fed.Query(context.Background(), chaosScript, "X", 4); err != nil {
		t.Fatal(err)
	}
	rec := fed.Queries.Recent()
	if len(rec) != 1 {
		t.Fatalf("recent = %d entries", len(rec))
	}
	e := rec[0]
	if e.Status() != obs.StatusDone {
		t.Errorf("status = %s", e.Status())
	}
	if ms := e.Members(); len(ms) != 1 || ms[0].Stage != "done" {
		t.Errorf("members = %+v", e.Members())
	}
	if e.Root() != nil {
		t.Errorf("unprofiled query recorded a span tree")
	}
}

// TestTracePartialFailureCarriesQueryID: the failure report names the query,
// its Error() text leads with it, and the console entry finishes partial.
func TestTracePartialFailureCarriesQueryID(t *testing.T) {
	_, ts1 := chaosNode(t, 9, 3)
	_, ts2 := chaosNode(t, 10, 3)
	dead := chaosClient(ts2.URL, &resilience.ChaosTransport{Seed: 9, DropRate: 1}, 0)
	fed := &Federator{
		Clients: []*Client{NewClient(ts1.URL), dead},
		Policy:  Policy{AllowPartial: true},
		Queries: obs.NewQueryRegistry(8),
	}
	ctx := obs.WithQueryID(context.Background(), "qpart-1")
	_, report, err := fed.Query(ctx, chaosScript, "X", 4)
	if err != nil {
		t.Fatal(err)
	}
	if report == nil {
		t.Fatal("no partial report")
	}
	if report.QueryID != "qpart-1" {
		t.Errorf("report query id = %q", report.QueryID)
	}
	if !strings.Contains(report.Error(), "query qpart-1") {
		t.Errorf("report error lacks the query id: %s", report.Error())
	}
	e := fed.Queries.Get("qpart-1")
	if e == nil || e.Status() != obs.StatusPartial {
		t.Fatalf("entry = %v status = %v", e, e.Status())
	}
	ms := e.Members()
	if ms[0].Stage != "done" || ms[1].Stage != "failed:execute" {
		t.Errorf("member stages = %q, %q", ms[0].Stage, ms[1].Stage)
	}
	if ms[1].Err == "" {
		t.Errorf("failed member has no error text")
	}
}

// holdHandler wraps a node handler and blocks /query requests until
// released, so a test can observe a federated query mid-flight.
type holdHandler struct {
	inner http.Handler
	gate  chan struct{}
	once  sync.Once
	began chan struct{}
}

func (h *holdHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/query" {
		h.once.Do(func() { close(h.began) })
		<-h.gate
	}
	h.inner.ServeHTTP(w, r)
}

// TestConsoleLiveFederatedQuery inspects the coordinator's /debug/queries
// console while a federated query is blocked mid-execute: the entry must be
// listed active with live member states and a snapshot-rendered profile,
// then finish and move to the recent ring once the member is released.
func TestConsoleLiveFederatedQuery(t *testing.T) {
	srv, _ := chaosNode(t, 11, 3)
	hold := &holdHandler{inner: srv.Handler(), gate: make(chan struct{}), began: make(chan struct{})}
	ts := httptest.NewServer(hold)
	t.Cleanup(ts.Close)

	reg := obs.NewQueryRegistry(8)
	fed := &Federator{Clients: []*Client{NewClient(ts.URL)}, Queries: reg}
	console := httptest.NewServer(reg.ConsoleHandler())
	t.Cleanup(console.Close)

	ctx := obs.WithQueryID(context.Background(), "qlive-1")
	done := make(chan error, 1)
	go func() {
		_, _, _, err := fed.QueryProfiled(ctx, chaosScript, "X", 4)
		done <- err
	}()

	select {
	case <-hold.began:
	case <-time.After(10 * time.Second):
		t.Fatal("query never reached the member")
	}

	// Mid-flight: the console lists the query as running, with the member
	// still in its execute stage, and the drill-down renders the (partial)
	// merged tree — the PLAN span is finished, the MEMBER span is not.
	resp, err := http.Get(console.URL + "/debug/queries/qlive-1?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Status   obs.QueryStatus   `json:"status"`
		Members  []obs.MemberState `json:"members"`
		Rendered string            `json:"rendered"`
		Progress obs.Progress      `json:"progress"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out.Status != obs.StatusRunning {
		t.Errorf("mid-flight status = %s", out.Status)
	}
	if len(out.Members) != 1 || out.Members[0].Stage != "execute" {
		t.Errorf("mid-flight members = %+v", out.Members)
	}
	if !strings.Contains(out.Rendered, "FEDERATED X (1 members)") {
		t.Errorf("mid-flight rendered tree:\n%s", out.Rendered)
	}
	if out.Progress.SpansSeen < 2 || out.Progress.SpansDone < 1 {
		t.Errorf("mid-flight progress = %+v", out.Progress)
	}

	close(hold.gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Finished: moved to the recent ring, done, member done.
	resp2, err := http.Get(console.URL + "/debug/queries/qlive-1?format=json")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if out.Status != obs.StatusDone {
		t.Errorf("final status = %s", out.Status)
	}
	if out.Members[0].Stage != "done" {
		t.Errorf("final member stage = %q", out.Members[0].Stage)
	}
	if len(reg.Active()) != 0 {
		t.Errorf("finished query still active")
	}
}

// benchFederator builds a 3-member federation over httptest nodes.
func benchFederator(b *testing.B) *Federator {
	b.Helper()
	var clients []*Client
	for i := 0; i < 3; i++ {
		g := synth.New(int64(70 + i))
		srv := NewServer("n", engine.Config{Mode: engine.ModeSerial, MetaFirst: true},
			g.Encode(synth.EncodeOptions{Samples: 8, MeanPeaks: 16}))
		ts := httptest.NewServer(srv.Handler())
		b.Cleanup(ts.Close)
		clients = append(clients, NewClient(ts.URL))
	}
	return &Federator{Clients: clients, Queries: obs.NewQueryRegistry(8)}
}

// BenchmarkFederatedQuery and BenchmarkFederatedQueryProfiled measure what
// the merged span tree costs on top of a full federated round trip
// (execute + chunked fetch + release per member, over loopback HTTP).
func BenchmarkFederatedQuery(b *testing.B) {
	fed := benchFederator(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fed.Query(context.Background(), chaosScript, "X", 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFederatedQueryProfiled(b *testing.B) {
	fed := benchFederator(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := fed.QueryProfiled(context.Background(), chaosScript, "X", 4); err != nil {
			b.Fatal(err)
		}
	}
}
