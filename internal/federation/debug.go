package federation

import (
	"fmt"
	"html"
	"net/http"
	"strings"

	"genogo/internal/obs"
)

// The /debug/federation membership console: per-member health state (probe
// outcome, latency, breaker position) and the placement map's replica count
// per data unit — the coordinator's live view of the federation, mounted on
// gmqld and on federation servers alike.

// PlacementSnapshot is one data unit's row of the placement table.
type PlacementSnapshot struct {
	Unit     string   `json:"unit"`
	Replicas int      `json:"replicas"`
	Members  []string `json:"members"`
}

// MemberSnapshot is one member's row of the membership table.
type MemberSnapshot struct {
	MemberHealth
	// Breaker is the member client's circuit position.
	Breaker string `json:"breaker"`
}

// MembershipSnapshot is the console's full view.
type MembershipSnapshot struct {
	// Members lists every member with its probed health and breaker state.
	Members []MemberSnapshot `json:"members"`
	// Placement lists every replicated data unit (empty for the legacy
	// single-copy layout).
	Placement []PlacementSnapshot `json:"placement,omitempty"`
	// Hedging reports whether hedged requests are on.
	Hedging bool `json:"hedging"`
}

// Membership snapshots the federator's membership view for the console.
func (f *Federator) Membership() MembershipSnapshot {
	snap := MembershipSnapshot{Hedging: f.Hedge.Enabled}
	probed := f.Prober.Status()
	for i, c := range f.Clients {
		ms := MemberSnapshot{Breaker: c.Breaker.State().String()}
		if i < len(probed) {
			ms.MemberHealth = probed[i]
		} else {
			ms.MemberHealth = MemberHealth{Member: c.BaseURL, StateName: HealthUnknown.String()}
		}
		snap.Members = append(snap.Members, ms)
	}
	for _, unit := range f.Placement.Units() {
		ps := PlacementSnapshot{Unit: unit, Replicas: f.Placement.Replicas(unit)}
		for _, m := range f.Placement.Members(unit) {
			if m >= 0 && m < len(f.Clients) {
				ps.Members = append(ps.Members, f.Clients[m].BaseURL)
			}
		}
		snap.Placement = append(snap.Placement, ps)
	}
	return snap
}

// MountFederation serves the membership console on /debug/federation. snap
// resolves the current membership view per request (so it can be wired
// after mounting); a nil snap — or a snap returning nil — renders the
// standalone-node page (this process coordinates no federation).
func MountFederation(mux *http.ServeMux, snap func() *MembershipSnapshot) {
	mux.HandleFunc("/debug/federation", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var sp *MembershipSnapshot
		if snap != nil {
			sp = snap()
		}
		var s MembershipSnapshot
		if sp != nil {
			s = *sp
		}
		if obs.WantJSON(r) {
			obs.WriteJSON(w, s)
			return
		}
		var b strings.Builder
		b.WriteString(obs.PageHeader("federation"))
		fmt.Fprintf(&b, "<h1>federation membership</h1>")
		if sp == nil {
			b.WriteString("<p>standalone node: this process coordinates no federation members</p>")
			b.WriteString(obs.PageFooter)
			obs.WriteHTML(w, b.String())
			return
		}
		fmt.Fprintf(&b, "<p>%d members, hedging %s</p>", len(s.Members), onOff(s.Hedging))
		b.WriteString("<h2>members</h2><table><tr><th>member</th><th>state</th><th>probe latency</th><th>failures</th><th>breaker</th><th>last error</th></tr>")
		for _, m := range s.Members {
			fmt.Fprintf(&b, "<tr><td>%s</td><td><span class=st-%s>%s</span></td><td>%.1fms</td><td>%d</td><td>%s</td><td>%s</td></tr>",
				html.EscapeString(m.Member), stateClass(m.StateName), html.EscapeString(m.StateName),
				m.LatencyMS, m.Failures, html.EscapeString(m.Breaker), html.EscapeString(m.Err))
		}
		b.WriteString("</table>")
		if len(s.Placement) > 0 {
			b.WriteString("<h2>placement</h2><table><tr><th>data unit</th><th>replicas</th><th>members</th></tr>")
			for _, p := range s.Placement {
				fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td><td>%s</td></tr>",
					html.EscapeString(p.Unit), p.Replicas, html.EscapeString(strings.Join(p.Members, ", ")))
			}
			b.WriteString("</table>")
		} else {
			b.WriteString("<p>no placement map: legacy single-copy layout (one leg per member, no failover)</p>")
		}
		b.WriteString(obs.PageFooter)
		obs.WriteHTML(w, b.String())
	})
	obs.RegisterEndpoint(mux, "/debug/federation",
		"federation membership: per-member health, probe latency, breaker state, replica placement")
}

// stateClass maps a health state to the console's status CSS classes.
func stateClass(state string) string {
	switch state {
	case "up":
		return "done"
	case "suspect":
		return "partial"
	case "down":
		return "failed"
	default:
		return "running"
	}
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
