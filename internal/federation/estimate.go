package federation

import (
	"genogo/internal/engine"
	"genogo/internal/gdm"
)

// Estimate is a compile-time prediction of a query result's size — the
// information the paper's protocol returns with a compilation so the
// requester can plan staging resources before launching execution.
type Estimate struct {
	Samples int   `json:"samples"`
	Regions int   `json:"regions"`
	Bytes   int64 `json:"bytes"`
}

// DatasetStats are the per-dataset statistics estimation runs on.
type DatasetStats struct {
	Samples        int
	Regions        int
	BytesPerRegion float64
}

// StatsProvider resolves dataset statistics by name.
type StatsProvider func(name string) (DatasetStats, bool)

// stats builds a StatsProvider over the server's local data.
func (s *Server) stats() StatsProvider {
	return func(name string) (DatasetStats, bool) {
		s.mu.Lock()
		ds, ok := s.data[name]
		s.mu.Unlock()
		if !ok {
			return DatasetStats{}, false
		}
		return statsOf(ds), true
	}
}

func statsOf(ds *gdm.Dataset) DatasetStats {
	st := DatasetStats{Samples: len(ds.Samples), Regions: ds.NumRegions()}
	if st.Regions > 0 {
		st.BytesPerRegion = float64(ds.EstimateBytes()) / float64(st.Regions)
	} else {
		st.BytesPerRegion = 40
	}
	return st
}

// Selectivity constants of the estimator. These are the classic
// System-R-style magic numbers: crude, but sufficient for the protocol's
// purpose of sizing staging buffers within an order of magnitude.
const (
	selMetaPredicate   = 0.5 // fraction of samples surviving a metadata predicate
	selRegionPredicate = 0.3 // fraction of regions surviving a region predicate
	selJoinPerPair     = 2.0 // emitted regions per anchor region per pair
	selDifference      = 0.7
	coverCompression   = 0.4 // cover output regions vs input regions
)

// EstimatePlan predicts the result cardinality of a plan bottom-up.
// Unknown datasets contribute zero (the node will fail the query at
// execution time anyway; compile-time estimation stays total).
func EstimatePlan(n engine.Node, stats StatsProvider) Estimate {
	e, bpr := estimateNode(n, stats)
	e.Bytes = int64(float64(e.Regions) * bpr)
	return e
}

// estimateNode returns the cardinality estimate plus the running
// bytes-per-region figure.
func estimateNode(n engine.Node, stats StatsProvider) (Estimate, float64) {
	switch op := n.(type) {
	case *engine.Scan:
		st, ok := stats(op.Dataset)
		if !ok {
			return Estimate{}, 40
		}
		return Estimate{Samples: st.Samples, Regions: st.Regions}, st.BytesPerRegion
	case *engine.SelectOp:
		in, bpr := estimateNode(op.Input, stats)
		out := in
		if op.Meta != nil {
			out.Samples = scaleInt(in.Samples, selMetaPredicate)
			out.Regions = scaleInt(in.Regions, selMetaPredicate)
		}
		if op.Region != nil {
			out.Regions = scaleInt(out.Regions, selRegionPredicate)
		}
		return out, bpr
	case *engine.ProjectOp:
		in, bpr := estimateNode(op.Input, stats)
		if op.Args.Regions != nil {
			bpr *= 0.8
		}
		return in, bpr
	case *engine.ExtendOp:
		return estimateNode(op.Input, stats)
	case *engine.MergeOp:
		in, bpr := estimateNode(op.Input, stats)
		groups := 1
		if len(op.GroupBy) > 0 && in.Samples > 0 {
			groups = intMax(in.Samples/4, 1)
		}
		return Estimate{Samples: groups, Regions: in.Regions}, bpr
	case *engine.GroupOp:
		return estimateNode(op.Input, stats)
	case *engine.OrderOp:
		in, bpr := estimateNode(op.Input, stats)
		if op.Args.Top > 0 && op.Args.Top < in.Samples && in.Samples > 0 {
			perSample := in.Regions / in.Samples
			in.Regions = perSample * op.Args.Top
			in.Samples = op.Args.Top
		}
		return in, bpr
	case *engine.UnionOp:
		l, lb := estimateNode(op.Left, stats)
		r, rb := estimateNode(op.Right, stats)
		return Estimate{Samples: l.Samples + r.Samples, Regions: l.Regions + r.Regions},
			maxf(lb, rb)
	case *engine.DifferenceOp:
		l, lb := estimateNode(op.Left, stats)
		return Estimate{Samples: l.Samples, Regions: scaleInt(l.Regions, selDifference)}, lb
	case *engine.MapOp:
		ref, rb := estimateNode(op.Ref, stats)
		exp, _ := estimateNode(op.Exp, stats)
		pairs := ref.Samples * exp.Samples
		perRefSample := 0
		if ref.Samples > 0 {
			perRefSample = ref.Regions / ref.Samples
		}
		// MAP cardinality law: one sample per pair, each with the reference
		// region count, plus the aggregate columns.
		return Estimate{Samples: pairs, Regions: pairs * perRefSample}, rb + 8
	case *engine.JoinOp:
		l, lb := estimateNode(op.Left, stats)
		r, rbr := estimateNode(op.Right, stats)
		pairs := l.Samples * r.Samples
		perLeftSample := 0
		if l.Samples > 0 {
			perLeftSample = l.Regions / l.Samples
		}
		return Estimate{
			Samples: pairs,
			Regions: scaleInt(pairs*perLeftSample, selJoinPerPair),
		}, lb + rbr
	case *engine.CoverOp:
		in, bpr := estimateNode(op.Input, stats)
		groups := 1
		if len(op.Args.GroupBy) > 0 && in.Samples > 0 {
			groups = intMax(in.Samples/4, 1)
		}
		return Estimate{Samples: groups, Regions: scaleInt(in.Regions, coverCompression)}, bpr
	default:
		return Estimate{}, 40
	}
}

func scaleInt(n int, f float64) int {
	v := int(float64(n) * f)
	if n > 0 && v == 0 {
		return 1
	}
	return v
}

func intMax(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
