package federation

import (
	"genogo/internal/catalog"
	"genogo/internal/engine"
	"genogo/internal/gdm"
)

// Estimate is a compile-time prediction of a query result's size — the
// information the paper's protocol returns with a compilation so the
// requester can plan staging resources before launching execution.
type Estimate struct {
	Samples int   `json:"samples"`
	Regions int   `json:"regions"`
	Bytes   int64 `json:"bytes"`
}

// DatasetStats are the per-dataset statistics estimation runs on.
type DatasetStats struct {
	Samples        int
	Regions        int
	BytesPerRegion float64
	// Zones is the per-(sample, chromosome) statistics block from the
	// repository catalog; estimation uses it to replace the flat selectivity
	// constants with zone-derived figures where the plan allows. nil falls
	// back to the constants.
	Zones *catalog.DatasetStats
}

// StatsProvider resolves dataset statistics by name.
type StatsProvider func(name string) (DatasetStats, bool)

// stats builds a StatsProvider over the server's local data. Results are
// memoized per dataset: statsOf scans every region, and before the memo a
// node recomputed it on every /compile and /query. The cache keys on the
// registered *gdm.Dataset, so re-registering a name under AddDataset
// invalidates its entry automatically.
func (s *Server) stats() StatsProvider {
	return func(name string) (DatasetStats, bool) {
		s.mu.Lock()
		defer s.mu.Unlock()
		ds, ok := s.data[name]
		if !ok {
			return DatasetStats{}, false
		}
		if m, hit := s.statsMemo[name]; hit && m.ds == ds {
			return m.st, true
		}
		st := statsOf(ds)
		s.statsMemo[name] = memoStats{ds: ds, st: st}
		return st, true
	}
}

// memoStats is one memoized statsOf result, valid while the name still
// resolves to the same dataset value.
type memoStats struct {
	ds *gdm.Dataset
	st DatasetStats
}

func statsOf(ds *gdm.Dataset) DatasetStats {
	zones := catalog.Compute(ds)
	_, regions, bytes := zones.Totals()
	st := DatasetStats{Samples: len(ds.Samples), Regions: regions, Zones: zones}
	if regions > 0 {
		st.BytesPerRegion = float64(bytes) / float64(regions)
	} else {
		st.BytesPerRegion = 40
	}
	return st
}

// Selectivity constants of the estimator. These are the classic
// System-R-style magic numbers: crude, but sufficient for the protocol's
// purpose of sizing staging buffers within an order of magnitude. Zone
// statistics replace them where the plan has the structure for it.
const (
	selMetaPredicate   = 0.5 // fraction of samples surviving a metadata predicate
	selRegionPredicate = 0.3 // fraction of regions surviving a region predicate
	selJoinPerPair     = 2.0 // emitted regions per anchor region per pair
	selDifference      = 0.7
	coverCompression   = 0.4 // cover output regions vs input regions
)

// EstimatePlan predicts the result cardinality of a plan bottom-up.
// Unknown datasets contribute zero (the node will fail the query at
// execution time anyway; compile-time estimation stays total).
func EstimatePlan(n engine.Node, stats StatsProvider) Estimate {
	e, bpr, _ := estimateNode(n, stats)
	e.Bytes = int64(float64(e.Regions) * bpr)
	return e
}

// estimateNode returns the cardinality estimate, the running
// bytes-per-region figure, and the zone statistics still describing the
// flowing data. Zones survive sample-local operators (the coordinate
// distribution is unchanged or narrowed) and die at shape-changing ones.
func estimateNode(n engine.Node, stats StatsProvider) (Estimate, float64, *catalog.DatasetStats) {
	switch op := n.(type) {
	case *engine.Scan:
		st, ok := stats(op.Dataset)
		if !ok {
			return Estimate{}, 40, nil
		}
		return Estimate{Samples: st.Samples, Regions: st.Regions}, st.BytesPerRegion, st.Zones
	case *engine.SelectOp:
		in, bpr, zones := estimateNode(op.Input, stats)
		out := in
		if op.Meta != nil {
			out.Samples = scaleInt(in.Samples, selMetaPredicate)
			out.Regions = scaleInt(in.Regions, selMetaPredicate)
		}
		if op.Region != nil {
			scaled := false
			if zones != nil {
				if w, ok := catalog.PredicateWindow(op.Region); ok {
					// Zone-derived selectivity: overlap of the predicate's
					// coordinate window with each partition, in place of the
					// flat constant.
					regions, samples := zones.EstimateSelect(w)
					if op.Meta != nil {
						regions = scaleInt(regions, selMetaPredicate)
						samples = scaleInt(samples, selMetaPredicate)
					}
					out.Regions = regions
					if samples < out.Samples {
						out.Samples = samples
					}
					scaled = true
				}
			}
			if !scaled {
				out.Regions = scaleInt(out.Regions, selRegionPredicate)
			}
		}
		return out, bpr, zones
	case *engine.ProjectOp:
		in, bpr, zones := estimateNode(op.Input, stats)
		if op.Args.Regions != nil {
			bpr *= 0.8
		}
		return in, bpr, zones
	case *engine.ExtendOp:
		return estimateNode(op.Input, stats)
	case *engine.MergeOp:
		in, bpr, _ := estimateNode(op.Input, stats)
		groups := 1
		if len(op.GroupBy) > 0 && in.Samples > 0 {
			groups = intMax(in.Samples/4, 1)
		}
		return Estimate{Samples: groups, Regions: in.Regions}, bpr, nil
	case *engine.GroupOp:
		return estimateNode(op.Input, stats)
	case *engine.OrderOp:
		in, bpr, zones := estimateNode(op.Input, stats)
		if op.Args.Top > 0 && op.Args.Top < in.Samples && in.Samples > 0 {
			perSample := in.Regions / in.Samples
			in.Regions = perSample * op.Args.Top
			in.Samples = op.Args.Top
		}
		return in, bpr, zones
	case *engine.UnionOp:
		l, lb, _ := estimateNode(op.Left, stats)
		r, rb, _ := estimateNode(op.Right, stats)
		return Estimate{Samples: l.Samples + r.Samples, Regions: l.Regions + r.Regions},
			maxf(lb, rb), nil
	case *engine.DifferenceOp:
		l, lb, lz := estimateNode(op.Left, stats)
		return Estimate{Samples: l.Samples, Regions: scaleInt(l.Regions, selDifference)}, lb, lz
	case *engine.MapOp:
		ref, rb, _ := estimateNode(op.Ref, stats)
		exp, _, _ := estimateNode(op.Exp, stats)
		pairs := ref.Samples * exp.Samples
		perRefSample := 0
		if ref.Samples > 0 {
			perRefSample = ref.Regions / ref.Samples
		}
		// MAP cardinality law: one sample per pair, each with the reference
		// region count, plus the aggregate columns.
		return Estimate{Samples: pairs, Regions: pairs * perRefSample}, rb + 8, nil
	case *engine.JoinOp:
		l, lb, lz := estimateNode(op.Left, stats)
		r, rbr, rz := estimateNode(op.Right, stats)
		pairs := l.Samples * r.Samples
		perLeftSample := 0
		if l.Samples > 0 {
			perLeftSample = l.Regions / l.Samples
		}
		emitted := scaleInt(pairs*perLeftSample, selJoinPerPair)
		if lz != nil && rz != nil {
			// Anchors on chromosomes the experiment side never populates
			// cannot pair; scale by the chromosome-coupling factor.
			emitted = scaleInt(emitted, lz.SharedChromFraction(rz))
		}
		return Estimate{Samples: pairs, Regions: emitted}, lb + rbr, nil
	case *engine.CoverOp:
		in, bpr, _ := estimateNode(op.Input, stats)
		groups := 1
		if len(op.Args.GroupBy) > 0 && in.Samples > 0 {
			groups = intMax(in.Samples/4, 1)
		}
		return Estimate{Samples: groups, Regions: scaleInt(in.Regions, coverCompression)}, bpr, nil
	default:
		return Estimate{}, 40, nil
	}
}

func scaleInt(n int, f float64) int {
	v := int(float64(n) * f)
	if n > 0 && v == 0 {
		return 1
	}
	return v
}

func intMax(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
