package federation

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"genogo/internal/catalog"
	"genogo/internal/engine"
	"genogo/internal/formats"
	"genogo/internal/gmql"
	"genogo/internal/obs"
	"genogo/internal/synth"
)

// TestRepoObservabilityReport regenerates the EXPERIMENTS.md "Repository
// observability" table: per-workload pruning opportunity (zone-map counts
// from traced runs), estimator log2-ratio error with flat constants vs zone
// statistics, and the write-path overhead of computing the manifest stats
// block. Gated behind REPO_REPORT=1 because it is a measurement, not a
// correctness check.
func TestRepoObservabilityReport(t *testing.T) {
	if os.Getenv("REPO_REPORT") == "" {
		t.Skip("set REPO_REPORT=1 to run the measurement")
	}
	g := synth.New(20)
	enc := g.Encode(synth.EncodeOptions{Samples: 20, MeanPeaks: 200})
	anns := g.Annotations(g.Genes(120))
	cat := engine.MapCatalog{"ENCODE": enc, "ANNOTATIONS": anns}

	workloads := []struct {
		name   string
		script string
	}{
		{"headline MAP (promoter peak counts)", fedScript},
		{"chr1-restricted SELECT", `RESULT = SELECT(; region: chr == 'chr1') ENCODE;
MATERIALIZE RESULT;`},
		{"windowed SELECT (chr2 low coords)", `RESULT = SELECT(; region: chr == 'chr2' AND left < 1000000) ENCODE;
MATERIALIZE RESULT;`},
	}

	zoneStats := func(name string) (DatasetStats, bool) {
		ds, ok := cat[name]
		if !ok {
			return DatasetStats{}, false
		}
		return statsOf(ds), true
	}
	flatStats := func(name string) (DatasetStats, bool) {
		st, ok := zoneStats(name)
		st.Zones = nil
		return st, ok
	}

	fmt.Println("| workload | prunable regions | prunable partitions | est log2err (flat) | est log2err (zones) |")
	fmt.Println("|---|---|---|---|---|")
	for _, w := range workloads {
		prog, err := gmql.Parse(w.script)
		if err != nil {
			t.Fatal(err)
		}
		r := &gmql.Runner{Config: engine.Config{Mode: engine.ModeSerial, MetaFirst: true}, Catalog: cat}
		ds, sp, err := r.EvalProfiled(prog, "RESULT")
		if err != nil {
			t.Fatal(err)
		}
		var consulted, prunableParts int
		var prunableRegions, inRegions int64
		for _, s := range sp.Flatten() {
			if s.PruneParts == 0 {
				continue
			}
			consulted += s.PruneParts
			prunableParts += s.PrunableParts
			prunableRegions += s.PrunableRegions
			inRegions += int64(s.RegionsIn)
		}
		plan := engine.Optimize(prog.Plan("RESULT"))
		actual := int64(ds.NumRegions())
		flatErr := obs.Log2Ratio(int64(EstimatePlan(plan, flatStats).Regions), actual)
		zoneErr := obs.Log2Ratio(int64(EstimatePlan(plan, zoneStats).Regions), actual)
		fmt.Printf("| %s | %d/%d (%.0f%%) | %d/%d | %+.2f | %+.2f |\n",
			w.name, prunableRegions, inRegions, pct(prunableRegions, inRegions),
			prunableParts, consulted, flatErr, zoneErr)
	}

	// Write-path overhead: full WriteDataset (which computes the stats block
	// inline) vs the stats computation alone.
	dir := t.TempDir()
	const rounds = 5
	var writeNS, statsNS int64
	for i := 0; i < rounds; i++ {
		target := filepath.Join(dir, fmt.Sprintf("W%d", i))
		start := time.Now()
		if err := formats.WriteDataset(target, enc); err != nil {
			t.Fatal(err)
		}
		writeNS += time.Since(start).Nanoseconds()
		start = time.Now()
		_ = catalog.Compute(enc)
		statsNS += time.Since(start).Nanoseconds()
	}
	fmt.Printf("\nwrite path: %.1fms/write, stats block %.2fms (%.1f%% of the write)\n",
		float64(writeNS)/float64(rounds)/1e6,
		float64(statsNS)/float64(rounds)/1e6,
		100*float64(statsNS)/float64(writeNS))
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
