package federation

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"genogo/internal/engine"
	"genogo/internal/synth"
)

// flaky wraps a handler, forcing the first n requests per path prefix to
// fail with the given status or corrupted payloads.
type flaky struct {
	inner   http.Handler
	mode    string // "status", "truncate", "garbage"
	trigger string // path prefix to sabotage
	count   int32  // how many times to sabotage
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, f.trigger) && atomic.AddInt32(&f.count, -1) >= 0 {
		switch f.mode {
		case "status":
			http.Error(w, "injected failure", http.StatusInternalServerError)
		case "garbage":
			w.Header().Set("Content-Type", "application/x-gdm")
			_, _ = w.Write([]byte("NOT A DATASET AT ALL\n"))
		case "truncate":
			rec := httptest.NewRecorder()
			f.inner.ServeHTTP(rec, r)
			body := rec.Body.Bytes()
			_, _ = w.Write(body[:len(body)/2])
		}
		return
	}
	f.inner.ServeHTTP(w, r)
}

func flakyNode(t *testing.T, mode, trigger string, times int32) *httptest.Server {
	t.Helper()
	g := synth.New(77)
	srv := NewServer("n", engine.Config{Mode: engine.ModeSerial, MetaFirst: true},
		g.Encode(synth.EncodeOptions{Samples: 6, MeanPeaks: 10}))
	ts := httptest.NewServer(&flaky{inner: srv.Handler(), mode: mode, trigger: trigger, count: times})
	t.Cleanup(ts.Close)
	return ts
}

func TestClientSurvivesServerErrorStatuses(t *testing.T) {
	ts := flakyNode(t, "status", "/datasets", 1)
	c := NewClient(ts.URL)
	if _, err := c.ListDatasets(context.Background()); err == nil {
		t.Fatal("injected 500 not surfaced")
	}
	// The failure was transient; the next call succeeds.
	infos, err := c.ListDatasets(context.Background())
	if err != nil || len(infos) != 1 {
		t.Fatalf("recovery failed: %v %v", infos, err)
	}
}

func TestClientRejectsGarbagePayload(t *testing.T) {
	ts := flakyNode(t, "garbage", "/results/", 1)
	c := NewClient(ts.URL)
	qr, err := c.Execute(context.Background(), `X = SELECT() ENCODE; MATERIALIZE X;`, "X")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.FetchChunk(context.Background(), qr.ResultID, 0, 10); err == nil {
		t.Fatal("garbage payload decoded")
	}
	// Retry succeeds once the sabotage budget is spent.
	if _, _, err := c.FetchChunk(context.Background(), qr.ResultID, 0, 10); err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
}

func TestClientRejectsTruncatedPayload(t *testing.T) {
	ts := flakyNode(t, "truncate", "/results/", 1)
	c := NewClient(ts.URL)
	qr, err := c.Execute(context.Background(), `X = SELECT() ENCODE; MATERIALIZE X;`, "X")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.FetchChunk(context.Background(), qr.ResultID, 0, 100); err == nil {
		t.Fatal("truncated payload decoded")
	}
}

func TestFederatorAbortsOnMemberFailure(t *testing.T) {
	good := flakyNode(t, "status", "/never", 0)
	bad := flakyNode(t, "status", "/query", 99)
	fed := &Federator{Clients: []*Client{NewClient(good.URL), NewClient(bad.URL)}}
	if _, _, err := fed.Query(context.Background(), `X = SELECT() ENCODE; MATERIALIZE X;`, "X", 4); err == nil {
		t.Fatal("member failure swallowed")
	}
}

func TestClientUnreachableHost(t *testing.T) {
	c := NewClient("http://127.0.0.1:1")
	if _, err := c.ListDatasets(context.Background()); err == nil {
		t.Error("unreachable list succeeded")
	}
	if _, err := c.Execute(context.Background(), "X = SELECT() A; MATERIALIZE X;", "X"); err == nil {
		t.Error("unreachable execute succeeded")
	}
	if _, err := c.DownloadDataset(context.Background(), "A"); err == nil {
		t.Error("unreachable download succeeded")
	}
	if err := c.Release(context.Background(), "r1"); err == nil {
		t.Error("unreachable release succeeded")
	}
	if _, _, err := c.FetchChunk(context.Background(), "r1", 0, 1); err == nil {
		t.Error("unreachable fetch succeeded")
	}
}
