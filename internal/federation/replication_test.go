package federation

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"genogo/internal/engine"
	"genogo/internal/gdm"
	"genogo/internal/obs"
	"genogo/internal/resilience"
	"genogo/internal/synth"
)

const replScript = `X = SELECT() ENCODE; MATERIALIZE X;`

// replCluster is a test federation of members serving shards of one logical
// ENCODE dataset, each behind a deterministic Outage injector.
type replCluster struct {
	servers []*Server
	outages []*resilience.Outage
	urls    []string
	clients []*Client
	// full is the complete logical dataset (the union of all shards).
	full *gdm.Dataset
	// shards maps shard name -> its samples.
	shards map[string][]*gdm.Sample
}

// newReplCluster builds one member per layout entry; each entry lists the
// shard names ("A", "B") that member holds. Shard A is the first half of a
// 6-sample synthetic ENCODE dataset, shard B the second half.
func newReplCluster(t *testing.T, layout [][]string) *replCluster {
	t.Helper()
	g := synth.New(42)
	full := g.Encode(synth.EncodeOptions{Samples: 6, MeanPeaks: 8})
	full.Name = "ENCODE"
	rc := &replCluster{
		full: full,
		shards: map[string][]*gdm.Sample{
			"A": full.Samples[:3],
			"B": full.Samples[3:],
		},
	}
	for _, shards := range layout {
		ds := gdm.NewDataset("ENCODE", full.Schema)
		for _, sh := range shards {
			ds.Samples = append(ds.Samples, rc.shards[sh]...)
		}
		srv := NewServer("m", engine.Config{Mode: engine.ModeSerial, MetaFirst: true}, ds)
		out := resilience.NewOutage()
		ts := httptest.NewServer(out.Wrap(srv.Handler()))
		t.Cleanup(ts.Close)
		rc.servers = append(rc.servers, srv)
		rc.outages = append(rc.outages, out)
		rc.urls = append(rc.urls, ts.URL)
		rc.clients = append(rc.clients, NewClient(ts.URL,
			WithRetrier(&resilience.Retrier{
				MaxAttempts: 3,
				BaseDelay:   time.Millisecond,
				MaxDelay:    5 * time.Millisecond,
			})))
	}
	return rc
}

// sampleIDs lists a dataset's sample IDs, sorted.
func sampleIDs(ds *gdm.Dataset) []string {
	ids := make([]string, len(ds.Samples))
	for i, s := range ds.Samples {
		ids[i] = s.ID
	}
	sort.Strings(ids)
	return ids
}

// assertExact requires ds to hold exactly the full dataset's samples, each
// once — the replicated-federation exactness invariant.
func (rc *replCluster) assertExact(t *testing.T, ds *gdm.Dataset) {
	t.Helper()
	if ds == nil {
		t.Fatal("nil dataset")
	}
	want := sampleIDs(rc.full)
	got := sampleIDs(ds)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("merged samples = %v, want exactly %v", got, want)
	}
}

// findSpans walks a span tree collecting spans matching pred.
func findSpans(sp *obs.Span, pred func(*obs.Span) bool) []*obs.Span {
	if sp == nil {
		return nil
	}
	var out []*obs.Span
	if pred(sp) {
		out = append(out, sp)
	}
	for _, c := range sp.Children {
		out = append(out, findSpans(c, pred)...)
	}
	return out
}

func TestReplicaPlacementGroups(t *testing.T) {
	p := NewPlacement().
		Register("ENCODE@A", 1, 0).
		Register("ENCODE@B", 1, 2).
		Register("ANNOT", 0, 1).
		Register("PEAKS", 2, 2, 1)
	groups := p.Groups()
	if len(groups) != 2 {
		t.Fatalf("groups = %+v, want 2", groups)
	}
	g0, g1 := groups[0], groups[1]
	if g0.Key != "0,1" || strings.Join(g0.Units, ",") != "ENCODE@A,ANNOT" {
		t.Errorf("group 0 = %+v", g0)
	}
	if g1.Key != "1,2" || strings.Join(g1.Units, ",") != "ENCODE@B,PEAKS" {
		t.Errorf("group 1 = %+v", g1)
	}
	if p.Replicas("ENCODE@A") != 2 || p.Replicas("nope") != 0 {
		t.Error("Replicas wrong")
	}
	if err := p.Validate(3); err != nil {
		t.Errorf("Validate(3) = %v", err)
	}
	if err := p.Validate(2); err == nil {
		t.Error("Validate(2) accepted member index 2")
	}
	if err := NewPlacement().Validate(0); err != nil {
		t.Errorf("empty placement Validate = %v", err)
	}
}

// TestReplicaShardedExactDedup: overlapping replica groups — member 1 serves
// both legs, so shard A arrives twice and the merge's identity dedup must
// keep the union exact (no renamed duplicates, no double counts).
func TestReplicaShardedExactDedup(t *testing.T) {
	rc := newReplCluster(t, [][]string{{"A"}, {"A", "B"}, {"B"}})
	fed := &Federator{
		Clients: rc.clients,
		Policy:  Policy{AllowPartial: true},
		Placement: NewPlacement().
			Register("ENCODE@A", 0, 1).
			Register("ENCODE@B", 1, 2),
	}
	ds, root, report, err := fed.QueryProfiled(context.Background(), replScript, "X", 4)
	if err != nil {
		t.Fatal(err)
	}
	if report != nil {
		t.Fatalf("report = %v, want exact (nil)", report)
	}
	rc.assertExact(t, ds)
	merges := findSpans(root, func(sp *obs.Span) bool { return sp.Op == "MERGE" })
	if len(merges) != 1 {
		t.Fatalf("MERGE spans = %d", len(merges))
	}
	// Leg {0,1} returns A (member 0) or A+B (member 1); leg {1,2} likewise
	// overlaps. Whichever replicas answered, at least shard A arrived twice.
	if merges[0].Attr("dedup") == "" {
		t.Error("MERGE span missing dedup annotation despite overlapping groups")
	}
	legs := findSpans(root, func(sp *obs.Span) bool { return sp.Op == "LEG" })
	if len(legs) != 2 {
		t.Errorf("LEG spans = %d, want 2", len(legs))
	}
}

// TestFailoverMidQueryExact: the primary replica of one leg is killed; the
// leg must re-dispatch to the surviving replica and the merged result must
// be byte-identical to the no-failure run — exact, not partial.
func TestFailoverMidQueryExact(t *testing.T) {
	rc := newReplCluster(t, [][]string{{"A"}, {"A", "B"}, {"B"}})
	rc.outages[0].Kill()
	failoversBefore := metricFailovers.Value()
	fed := &Federator{
		Clients: rc.clients,
		Policy:  Policy{AllowPartial: true},
		Placement: NewPlacement().
			Register("ENCODE@A", 0, 1).
			Register("ENCODE@B", 1, 2),
	}
	ds, root, report, err := fed.QueryProfiled(context.Background(), replScript, "X", 4)
	if err != nil {
		t.Fatal(err)
	}
	if report != nil {
		t.Fatalf("failover leaked a partial report: %v", report)
	}
	rc.assertExact(t, ds)
	if d := metricFailovers.Value() - failoversBefore; d < 1 {
		t.Errorf("failover counter delta = %d, want >= 1", d)
	}
	fos := findSpans(root, func(sp *obs.Span) bool {
		return sp.Op == "MEMBER" && sp.Attr("role") == "failover"
	})
	if len(fos) == 0 {
		t.Error("no failover-annotated MEMBER span in the merged tree")
	}
	if !strings.Contains(root.Render(), "role=failover") {
		t.Error("EXPLAIN ANALYZE rendering does not show the failover leg")
	}
}

// TestFailoverKillMidFetch: the kill fuse fires on a later request, so the
// member dies between execute and fetch; failover must still deliver the
// exact result.
func TestFailoverKillMidFetch(t *testing.T) {
	rc := newReplCluster(t, [][]string{{"A", "B"}, {"A", "B"}})
	// Request 1 is the execute; the fetch that follows trips the fuse.
	rc.outages[0].KillAfter(2)
	fed := &Federator{
		Clients:   rc.clients,
		Policy:    Policy{AllowPartial: true},
		Placement: NewPlacement().Register("ENCODE", 0, 1),
	}
	ds, report, err := fed.Query(context.Background(), replScript, "X", 4)
	if err != nil {
		t.Fatal(err)
	}
	if report != nil {
		t.Fatalf("report = %v, want exact", report)
	}
	rc.assertExact(t, ds)
}

// TestFailoverAllReplicasDead: a leg whose every replica is dead is lost;
// the other legs' samples still arrive under AllowPartial, and the report
// names the lost leg with all its replicas.
func TestFailoverAllReplicasDead(t *testing.T) {
	rc := newReplCluster(t, [][]string{{"A"}, {"A"}, {"B"}})
	rc.outages[0].Kill()
	rc.outages[1].Kill()
	placement := NewPlacement().
		Register("ENCODE@A", 0, 1).
		Register("ENCODE@B", 2)
	fed := &Federator{
		Clients:   rc.clients,
		Policy:    Policy{AllowPartial: true},
		Placement: placement,
	}
	ds, report, err := fed.Query(context.Background(), replScript, "X", 4)
	if err != nil {
		t.Fatal(err)
	}
	if report == nil || len(report.Failed) != 1 {
		t.Fatalf("report = %+v, want exactly one lost leg", report)
	}
	nf := report.Failed[0]
	if !strings.Contains(nf.Node, rc.urls[0]) || !strings.Contains(nf.Node, rc.urls[1]) {
		t.Errorf("lost leg names %q, want both dead replicas", nf.Node)
	}
	if !strings.Contains(nf.Err.Error(), "ENCODE@A") {
		t.Errorf("lost leg error %q does not name its units", nf.Err)
	}
	want := sampleIDs(&gdm.Dataset{Samples: rc.shards["B"]})
	if got := sampleIDs(ds); strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("partial result = %v, want shard B %v", got, want)
	}

	// Strict policy: the same failure aborts the query.
	strict := &Federator{Clients: rc.clients, Placement: placement}
	if _, _, err := strict.Query(context.Background(), replScript, "X", 4); err == nil {
		t.Error("strict policy returned success with a lost leg")
	}
}

// TestProbeMembershipStateMachine: consecutive probe failures walk a member
// down the suspicion ladder, a successful probe snaps it back up, and probe
// successes close the member's circuit breaker without any query paying.
func TestProbeMembershipStateMachine(t *testing.T) {
	rc := newReplCluster(t, [][]string{{"A"}, {"A"}})
	// Tight breaker so probe failures alone open it.
	rc.clients[0].Breaker = &resilience.Breaker{FailureThreshold: 2, Cooldown: time.Hour}
	p := NewProber(rc.clients)
	p.Interval = time.Hour // manual rounds only

	p.ProbeAll(context.Background())
	st := p.Status()
	if st[0].State != HealthUp || st[1].State != HealthUp {
		t.Fatalf("initial probe states = %v %v", st[0].StateName, st[1].StateName)
	}
	if st[0].LatencyMS <= 0 {
		t.Error("no probe latency recorded")
	}

	rc.outages[0].Kill()
	p.ProbeAll(context.Background())
	if got := p.HealthOf(0); got != HealthSuspect {
		t.Fatalf("after 1 failure: %v, want suspect", got)
	}
	p.ProbeAll(context.Background())
	p.ProbeAll(context.Background())
	if got := p.HealthOf(0); got != HealthDown {
		t.Fatalf("after 3 failures: %v, want down", got)
	}
	if rc.clients[0].Breaker.State() != resilience.Open {
		t.Fatal("probe failures did not open the breaker")
	}

	// Recovery: the probe — not a live query — discovers it and closes the
	// breaker (Health bypasses Allow, so the hour-long cooldown is moot).
	rc.outages[0].Restart()
	p.ProbeAll(context.Background())
	if got := p.HealthOf(0); got != HealthUp {
		t.Fatalf("after restart probe: %v, want up", got)
	}
	if rc.clients[0].Breaker.State() != resilience.Closed {
		t.Error("successful probe did not close the breaker")
	}
	if p.HealthOf(7) != HealthUnknown || (*Prober)(nil).HealthOf(0) != HealthUnknown {
		t.Error("out-of-range / nil prober should report unknown")
	}
}

// TestProbeDirectsReplicaOrdering: with the primary known down, the leg
// must dispatch straight to the live replica — no failover attempt spent on
// discovering what the prober already knew.
func TestProbeDirectsReplicaOrdering(t *testing.T) {
	rc := newReplCluster(t, [][]string{{"A", "B"}, {"A", "B"}})
	rc.outages[0].Kill()
	p := NewProber(rc.clients)
	p.Interval = time.Hour
	for i := 0; i < 3; i++ {
		p.ProbeAll(context.Background())
	}
	if p.HealthOf(0) != HealthDown {
		t.Fatal("member 0 not down after 3 probe rounds")
	}
	failoversBefore := metricFailovers.Value()
	fed := &Federator{
		Clients:   rc.clients,
		Policy:    Policy{AllowPartial: true},
		Placement: NewPlacement().Register("ENCODE", 0, 1),
		Prober:    p,
	}
	ds, root, report, err := fed.QueryProfiled(context.Background(), replScript, "X", 4)
	if err != nil || report != nil {
		t.Fatalf("err=%v report=%v", err, report)
	}
	rc.assertExact(t, ds)
	if d := metricFailovers.Value() - failoversBefore; d != 0 {
		t.Errorf("failover delta = %d, want 0 (prober should have steered the leg)", d)
	}
	members := findSpans(root, func(sp *obs.Span) bool { return sp.Op == "MEMBER" })
	if len(members) != 1 || members[0].Attr("role") != "primary" {
		t.Errorf("attempt spans = %d, want a single primary", len(members))
	}
	if !strings.Contains(members[0].Detail, rc.urls[1]) {
		t.Errorf("primary went to %q, want the live member %q", members[0].Detail, rc.urls[1])
	}
}

// TestHedgeSlowMember: a slow primary is hedged on the second replica after
// the delay; the hedge wins, the result is exact, and the hedge leg is
// annotated in the merged span tree.
func TestHedgeSlowMember(t *testing.T) {
	g := synth.New(42)
	full := g.Encode(synth.EncodeOptions{Samples: 6, MeanPeaks: 8})
	full.Name = "ENCODE"
	mk := func(delay time.Duration) string {
		srv := NewServer("m", engine.Config{Mode: engine.ModeSerial, MetaFirst: true}, full)
		h := srv.Handler()
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if delay > 0 {
				select {
				case <-time.After(delay):
				case <-r.Context().Done():
					return
				}
			}
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		return ts.URL
	}
	slow, fast := mk(300*time.Millisecond), mk(0)
	clients := []*Client{NewClient(slow), NewClient(fast)}
	winsBefore := metricHedges.With("win").Value()
	fed := &Federator{
		Clients:   clients,
		Policy:    Policy{AllowPartial: true},
		Placement: NewPlacement().Register("ENCODE", 0, 1),
		Hedge:     HedgePolicy{Enabled: true, Delay: 5 * time.Millisecond},
	}
	start := time.Now()
	ds, root, report, err := fed.QueryProfiled(context.Background(), replScript, "X", 4)
	took := time.Since(start)
	if err != nil || report != nil {
		t.Fatalf("err=%v report=%v", err, report)
	}
	if got, want := sampleIDs(ds), sampleIDs(full); strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("hedged result = %v, want %v", got, want)
	}
	if took >= 300*time.Millisecond {
		t.Errorf("query took %v: the hedge should have beaten the slow primary", took)
	}
	if d := metricHedges.With("win").Value() - winsBefore; d != 1 {
		t.Errorf("hedge win delta = %d, want 1", d)
	}
	hs := findSpans(root, func(sp *obs.Span) bool {
		return sp.Op == "MEMBER" && sp.Attr("role") == "hedge"
	})
	if len(hs) != 1 {
		t.Fatalf("hedge-annotated MEMBER spans = %d, want 1", len(hs))
	}
	if !strings.Contains(root.Render(), "role=hedge") {
		t.Error("EXPLAIN ANALYZE rendering does not show the hedge leg")
	}
}

// TestHedgeAdaptiveDelay: the trigger follows the leg-latency window's p99,
// clamped to [Delay, MaxDelay], and falls back to Delay while cold.
func TestHedgeAdaptiveDelay(t *testing.T) {
	f := &Federator{Hedge: HedgePolicy{Enabled: true, Delay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond}}
	if got := f.hedgeDelay(); got != 10*time.Millisecond {
		t.Errorf("cold delay = %v, want the configured floor", got)
	}
	for i := 0; i < latencyWindowSize-2; i++ {
		f.hedgeWin.observe(20 * time.Millisecond)
	}
	f.hedgeWin.observe(60 * time.Millisecond)
	f.hedgeWin.observe(60 * time.Millisecond)
	if got := f.hedgeDelay(); got != 60*time.Millisecond {
		t.Errorf("warm delay = %v, want the window p99 (60ms)", got)
	}
	for i := 0; i < latencyWindowSize; i++ {
		f.hedgeWin.observe(5 * time.Second)
	}
	if got := f.hedgeDelay(); got != 100*time.Millisecond {
		t.Errorf("runaway p99 delay = %v, want clamped to MaxDelay", got)
	}
	var w latencyWindow
	for i := 0; i < latencyMinSamples-1; i++ {
		w.observe(time.Second)
	}
	if _, ok := w.p99(); ok {
		t.Error("p99 trusted with too few samples")
	}
	w.observe(time.Second)
	if p, ok := w.p99(); !ok || p != time.Second {
		t.Errorf("p99 = %v ok=%v", p, ok)
	}
}

// TestReplicaPolicyMatrix is the hand-computed availability table: for each
// replication layout × quorum × failed-member set, the query must land on
// exactly the predicted side of exact / partial / error — and live members
// must end with empty staging areas.
func TestReplicaPolicyMatrix(t *testing.T) {
	type outcome int
	const (
		exact outcome = iota
		partial
		errored
	)
	cases := []struct {
		name   string
		layout [][]string // member -> shards held
		place  func() *Placement
		policy Policy
		killed []int
		want   outcome
		// wantShards is the union the result must hold (exact and partial).
		wantShards []string
	}{
		{
			name:       "R1/no-failures",
			layout:     [][]string{{"A"}, {"B"}},
			place:      func() *Placement { return NewPlacement().Register("ENCODE@A", 0).Register("ENCODE@B", 1) },
			policy:     Policy{AllowPartial: true},
			want:       exact,
			wantShards: []string{"A", "B"},
		},
		{
			name:       "R1/one-dead-partial",
			layout:     [][]string{{"A"}, {"B"}},
			place:      func() *Placement { return NewPlacement().Register("ENCODE@A", 0).Register("ENCODE@B", 1) },
			policy:     Policy{AllowPartial: true},
			killed:     []int{0},
			want:       partial,
			wantShards: []string{"B"},
		},
		{
			name:   "R1/one-dead-strict-errors",
			layout: [][]string{{"A"}, {"B"}},
			place:  func() *Placement { return NewPlacement().Register("ENCODE@A", 0).Register("ENCODE@B", 1) },
			killed: []int{0},
			want:   errored,
		},
		{
			name:   "R1/one-dead-quorum2-errors",
			layout: [][]string{{"A"}, {"B"}},
			place:  func() *Placement { return NewPlacement().Register("ENCODE@A", 0).Register("ENCODE@B", 1) },
			policy: Policy{AllowPartial: true, Quorum: 2},
			killed: []int{0},
			want:   errored,
		},
		{
			name:   "R2/one-dead-exact",
			layout: [][]string{{"A"}, {"A", "B"}, {"B"}},
			place: func() *Placement {
				return NewPlacement().Register("ENCODE@A", 0, 1).Register("ENCODE@B", 1, 2)
			},
			policy:     Policy{AllowPartial: true},
			killed:     []int{1},
			want:       exact,
			wantShards: []string{"A", "B"},
		},
		{
			name:   "R2/two-dead-still-exact",
			layout: [][]string{{"A"}, {"A", "B"}, {"B"}},
			place: func() *Placement {
				return NewPlacement().Register("ENCODE@A", 0, 1).Register("ENCODE@B", 1, 2)
			},
			policy:     Policy{AllowPartial: true},
			killed:     []int{0, 2},
			want:       exact,
			wantShards: []string{"A", "B"},
		},
		{
			name:   "R2/leg-wiped-partial",
			layout: [][]string{{"A"}, {"A"}, {"B"}},
			place: func() *Placement {
				return NewPlacement().Register("ENCODE@A", 0, 1).Register("ENCODE@B", 2)
			},
			policy:     Policy{AllowPartial: true},
			killed:     []int{0, 1},
			want:       partial,
			wantShards: []string{"B"},
		},
		{
			name:   "R2/leg-wiped-quorum2-errors",
			layout: [][]string{{"A"}, {"A"}, {"B"}},
			place: func() *Placement {
				return NewPlacement().Register("ENCODE@A", 0, 1).Register("ENCODE@B", 2)
			},
			policy: Policy{AllowPartial: true, Quorum: 2},
			killed: []int{0, 1},
			want:   errored,
		},
		{
			name:   "R3/two-dead-exact",
			layout: [][]string{{"A", "B"}, {"A", "B"}, {"A", "B"}},
			place:  func() *Placement { return NewPlacement().Register("ENCODE", 0, 1, 2) },
			policy: Policy{AllowPartial: true},
			killed: []int{0, 1},
			want:   exact, wantShards: []string{"A", "B"},
		},
		{
			name:   "R3/all-dead-errors",
			layout: [][]string{{"A", "B"}, {"A", "B"}, {"A", "B"}},
			place:  func() *Placement { return NewPlacement().Register("ENCODE", 0, 1, 2) },
			policy: Policy{AllowPartial: true},
			killed: []int{0, 1, 2},
			want:   errored,
		},
		{
			name:   "overlap/dedup-exact",
			layout: [][]string{{"A", "B"}, {"A", "B"}, {"B"}},
			place: func() *Placement {
				return NewPlacement().Register("ENCODE@A", 0, 1).Register("ENCODE@B", 1, 2)
			},
			policy: Policy{AllowPartial: true},
			want:   exact, wantShards: []string{"A", "B"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rc := newReplCluster(t, tc.layout)
			killed := make(map[int]bool)
			for _, k := range tc.killed {
				rc.outages[k].Kill()
				killed[k] = true
			}
			fed := &Federator{Clients: rc.clients, Policy: tc.policy, Placement: tc.place()}
			ds, report, err := fed.Query(context.Background(), replScript, "X", 4)
			switch tc.want {
			case exact:
				if err != nil {
					t.Fatalf("want exact, got error: %v", err)
				}
				if report != nil {
					t.Fatalf("want exact, got partial: %v", report)
				}
			case partial:
				if err != nil {
					t.Fatalf("want partial, got error: %v", err)
				}
				if report == nil {
					t.Fatal("want partial, got exact")
				}
			case errored:
				if err == nil {
					t.Fatal("want error, got success")
				}
				return
			}
			var want []string
			for _, sh := range tc.wantShards {
				for _, s := range rc.shards[sh] {
					want = append(want, s.ID)
				}
			}
			sort.Strings(want)
			if got := sampleIDs(ds); strings.Join(got, "|") != strings.Join(want, "|") {
				t.Errorf("result = %v, want shards %v = %v", got, tc.wantShards, want)
			}
			// Staged-result hygiene: every live member released its staging.
			for i, srv := range rc.servers {
				if killed[i] {
					continue
				}
				if n := srv.StagedCount(); n != 0 {
					t.Errorf("member %d still stages %d results", i, n)
				}
			}
		})
	}
}

// TestReplicaPlacementValidationFails: a placement naming a member outside
// the federation aborts the query with a configuration error, before any
// network traffic.
func TestReplicaPlacementValidationFails(t *testing.T) {
	rc := newReplCluster(t, [][]string{{"A", "B"}})
	fed := &Federator{
		Clients:   rc.clients,
		Placement: NewPlacement().Register("ENCODE", 0, 5),
	}
	if _, _, err := fed.Query(context.Background(), replScript, "X", 4); err == nil ||
		!strings.Contains(err.Error(), "placement") {
		t.Fatalf("err = %v, want placement validation failure", err)
	}
}

// TestClientHonorsRetryAfterHint: a shed response's Retry-After reaches the
// retrier as the sleep before the next attempt (the PR 5 admission gate
// emits integer seconds).
func TestClientHonorsRetryAfterHint(t *testing.T) {
	sheds := 0
	g := synth.New(3)
	ds := g.Encode(synth.EncodeOptions{Samples: 2, MeanPeaks: 4})
	ds.Name = "ENCODE"
	srv := NewServer("m", engine.Config{Mode: engine.ModeSerial, MetaFirst: true}, ds)
	h := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/query" && sheds == 0 {
			sheds++
			w.Header().Set("Retry-After", "7")
			http.Error(w, "shed", http.StatusTooManyRequests)
			return
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	var slept []time.Duration
	c := NewClient(ts.URL, WithRetrier(&resilience.Retrier{
		MaxAttempts: 2,
		BaseDelay:   time.Millisecond,
		Sleep: func(_ context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}))
	if _, err := c.Execute(context.Background(), replScript, "X"); err != nil {
		t.Fatalf("retried execute: %v", err)
	}
	if len(slept) != 1 || slept[0] != 2*time.Second {
		// DefaultMaxDelay (2s) caps the 7s hint.
		t.Fatalf("slept %v, want the capped Retry-After hint [2s]", slept)
	}
}
