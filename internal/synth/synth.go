// Package synth generates the synthetic genomic data this reproduction uses
// in place of the repositories the paper queries (ENCODE, TCGA, annotation
// databases). Every generator is deterministic given its seed.
//
// The generators are calibrated to preserve what the paper's operators are
// sensitive to: region counts per sample (heavy-tailed, like real ChIP-seq
// peak calls), region lengths, overlap densities against annotation tracks,
// and LIMS-style metadata distributions (including the deliberate
// sloppiness — missing attributes — that Section 1 complains about).
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"genogo/internal/gdm"
)

// ChromInfo is one chromosome of the synthetic genome.
type ChromInfo struct {
	Name   string
	Length int64
}

// Genome is the coordinate space data is generated on.
type Genome struct {
	Chroms []ChromInfo
}

// TotalLength returns the genome size in bases.
func (g Genome) TotalLength() int64 {
	var t int64
	for _, c := range g.Chroms {
		t += c.Length
	}
	return t
}

// HumanLike returns a genome with the 24 human chromosomes at 1/100 of
// their real size — large enough that region densities match reality, small
// enough for laptop-scale benchmarking.
func HumanLike() Genome {
	// Real hg19 lengths in Mb, divided by 100 (so chr1 is ~2.5 Mb here).
	mb := []struct {
		name string
		mb   float64
	}{
		{"chr1", 249}, {"chr2", 243}, {"chr3", 198}, {"chr4", 191}, {"chr5", 181},
		{"chr6", 171}, {"chr7", 159}, {"chr8", 146}, {"chr9", 141}, {"chr10", 136},
		{"chr11", 135}, {"chr12", 134}, {"chr13", 115}, {"chr14", 107}, {"chr15", 103},
		{"chr16", 90}, {"chr17", 81}, {"chr18", 78}, {"chr19", 59}, {"chr20", 63},
		{"chr21", 48}, {"chr22", 51}, {"chrX", 155}, {"chrY", 59},
	}
	g := Genome{Chroms: make([]ChromInfo, len(mb))}
	for i, c := range mb {
		g.Chroms[i] = ChromInfo{Name: c.name, Length: int64(c.mb * 1e4)}
	}
	return g
}

// Generator produces synthetic samples and datasets.
type Generator struct {
	rng    *rand.Rand
	Genome Genome
}

// New returns a generator over the human-like genome.
func New(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), Genome: HumanLike()}
}

// randomChrom picks a chromosome weighted by length, so region density is
// uniform along the genome.
func (g *Generator) randomChrom() ChromInfo {
	total := g.Genome.TotalLength()
	p := g.rng.Int63n(total)
	for _, c := range g.Genome.Chroms {
		if p < c.Length {
			return c
		}
		p -= c.Length
	}
	return g.Genome.Chroms[len(g.Genome.Chroms)-1]
}

// PeakSchema is the region schema of synthetic ChIP-seq samples — the PEAKS
// schema of Fig. 2 of the paper (p_value) plus the signal strength real
// callers emit.
var PeakSchema = gdm.MustSchema(
	gdm.Field{Name: "p_value", Type: gdm.KindFloat},
	gdm.Field{Name: "signal", Type: gdm.KindFloat},
)

// Metadata vocabularies, echoing ENCODE controlled terms.
var (
	cells      = []string{"HeLa-S3", "K562", "GM12878", "HepG2", "H1-hESC", "MCF-7"}
	antibodies = []string{"CTCF", "POLR2A", "MYC", "REST", "EP300", "H3K27ac", "H3K4me1", "H3K4me3"}
	treatments = []string{"none", "IFNg", "TNFa", "estradiol"}
	karyotypes = []string{"cancer", "normal"}
	sexes      = []string{"female", "male"}
)

// ChipSeq generates one ChIP-seq peak sample: nPeaks peaks of log-normal
// length at uniform positions, with plausible p-values and signals.
func (g *Generator) ChipSeq(id string, nPeaks int) *gdm.Sample {
	s := gdm.NewSample(id)
	for i := 0; i < nPeaks; i++ {
		c := g.randomChrom()
		length := int64(math.Exp(g.rng.NormFloat64()*0.5+5.5)) + 50 // ~300b median
		start := g.rng.Int63n(max64(c.Length-length, 1))
		s.AddRegion(gdm.NewRegion(c.Name, start, start+length, gdm.StrandNone,
			gdm.Float(math.Pow(10, -2-8*g.rng.Float64())), // p in [1e-10, 1e-2]
			gdm.Float(1+g.rng.ExpFloat64()*5),
		))
	}
	s.SortRegions()
	return s
}

// EncodeOptions tunes the synthetic ENCODE repository.
type EncodeOptions struct {
	Samples int
	// MeanPeaks is the mean of the heavy-tailed per-sample peak count.
	MeanPeaks int
	// ChipFraction is the fraction of samples with dataType ChipSeq
	// (the rest split between RnaSeq and DnaseSeq). Default 0.6.
	ChipFraction float64
	// MissingMeta is the probability that an optional metadata attribute is
	// omitted, reproducing the LIMS sloppiness of Section 1. Default 0.2.
	MissingMeta float64
}

// Encode generates an ENCODE-like dataset: Samples samples whose peak counts
// follow a heavy-tailed distribution around MeanPeaks, with ENCODE-ish
// metadata (dataType, cell, antibody, treatment, karyotype, sex) where some
// optional attributes are randomly missing.
func (g *Generator) Encode(opt EncodeOptions) *gdm.Dataset {
	if opt.ChipFraction == 0 {
		opt.ChipFraction = 0.6
	}
	if opt.MissingMeta == 0 {
		opt.MissingMeta = 0.2
	}
	ds := gdm.NewDataset("ENCODE", PeakSchema)
	for i := 0; i < opt.Samples; i++ {
		// Pareto-ish peak count: most samples small, a few huge (MeanPeaks
		// is the scale; the realized mean is ~1.9x the scale).
		u := g.rng.Float64()
		n := int(float64(opt.MeanPeaks) * 0.4 / (1 - u*0.99))
		if n < 1 {
			n = 1
		}
		s := g.ChipSeq(fmt.Sprintf("enc%05d", i), n)
		switch {
		case g.rng.Float64() < opt.ChipFraction:
			s.Meta.Add("dataType", "ChipSeq")
			s.Meta.Add("antibody", antibodies[g.rng.Intn(len(antibodies))])
		case g.rng.Float64() < 0.5:
			s.Meta.Add("dataType", "RnaSeq")
		default:
			s.Meta.Add("dataType", "DnaseSeq")
		}
		s.Meta.Add("cell", cells[g.rng.Intn(len(cells))])
		if g.rng.Float64() > opt.MissingMeta {
			s.Meta.Add("treatment", treatments[g.rng.Intn(len(treatments))])
		}
		if g.rng.Float64() > opt.MissingMeta {
			s.Meta.Add("karyotype", karyotypes[g.rng.Intn(len(karyotypes))])
		}
		if g.rng.Float64() > opt.MissingMeta {
			s.Meta.Add("sex", sexes[g.rng.Intn(len(sexes))])
		}
		ds.MustAdd(s)
	}
	return ds
}

// AnnotationSchema is the region schema of the synthetic annotation tracks
// (UCSC/RefSeq stand-in): a feature name.
var AnnotationSchema = gdm.MustSchema(
	gdm.Field{Name: "name", Type: gdm.KindString},
)

// Gene is one synthetic gene placement, used by scenario generators to plant
// ground truth.
type Gene struct {
	Name     string
	Chrom    string
	TSS      int64 // transcription start site
	Strand   gdm.Strand
	Length   int64
	Promoter gdm.Region
}

// Genes places nGenes genes at uniform positions with log-normal lengths.
// The promoter of a gene spans [TSS-2000, TSS+200) on its strand.
func (g *Generator) Genes(nGenes int) []Gene {
	genes := make([]Gene, nGenes)
	for i := range genes {
		c := g.randomChrom()
		length := int64(math.Exp(g.rng.NormFloat64()*1.0+9.0)) + 1000 // ~10kb median
		strand := gdm.StrandPlus
		if g.rng.Intn(2) == 1 {
			strand = gdm.StrandMinus
		}
		tss := g.rng.Int63n(max64(c.Length-length-3000, 1)) + 2500
		name := fmt.Sprintf("GENE%05d", i)
		var prom gdm.Region
		if strand == gdm.StrandPlus {
			prom = gdm.NewRegion(c.Name, tss-2000, tss+200, strand, gdm.Str(name))
		} else {
			// TSS of a minus-strand gene is its right end.
			prom = gdm.NewRegion(c.Name, tss+length-200, tss+length+2000, strand, gdm.Str(name))
		}
		genes[i] = Gene{Name: name, Chrom: c.Name, TSS: tss, Strand: strand, Length: length, Promoter: prom}
	}
	sort.Slice(genes, func(a, b int) bool {
		if genes[a].Chrom != genes[b].Chrom {
			return gdm.CompareChrom(genes[a].Chrom, genes[b].Chrom) < 0
		}
		return genes[a].TSS < genes[b].TSS
	})
	return genes
}

// Annotations builds the ANNOTATIONS dataset of the paper's headline query
// from gene placements: a "promoters" sample (annType=promoter), a "genes"
// sample (annType=gene), both with the UCSC-style name attribute.
func (g *Generator) Annotations(genes []Gene) *gdm.Dataset {
	ds := gdm.NewDataset("ANNOTATIONS", AnnotationSchema)
	proms := gdm.NewSample("promoters")
	proms.Meta.Add("annType", "promoter")
	proms.Meta.Add("provider", "UCSC")
	geneSample := gdm.NewSample("genes")
	geneSample.Meta.Add("annType", "gene")
	geneSample.Meta.Add("provider", "RefSeq")
	for _, gene := range genes {
		proms.AddRegion(gene.Promoter)
		geneSample.AddRegion(gdm.NewRegion(gene.Chrom, gene.TSS, gene.TSS+gene.Length,
			gene.Strand, gdm.Str(gene.Name)))
	}
	proms.SortRegions()
	geneSample.SortRegions()
	ds.MustAdd(proms)
	ds.MustAdd(geneSample)
	return ds
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
