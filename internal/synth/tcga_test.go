package synth

import (
	"testing"
)

func TestTCGAScenario(t *testing.T) {
	sc := New(31).TCGA(TCGAOptions{Patients: 120})
	if err := sc.Mutations.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := sc.GeneAnnotations.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sc.Mutations.Samples) != 120 {
		t.Fatalf("patients = %d", len(sc.Mutations.Samples))
	}
	if len(sc.Subtypes) != 3 {
		t.Fatalf("subtypes = %v", sc.Subtypes)
	}
	for _, st := range sc.Subtypes {
		if len(sc.Drivers[st]) != 3 {
			t.Errorf("drivers[%s] = %v", st, sc.Drivers[st])
		}
	}
	// Clinical metadata present on every patient.
	for _, s := range sc.Mutations.Samples {
		for _, attr := range []string{"subtype", "stage", "age", "sex"} {
			if !s.Meta.Has(attr) {
				t.Fatalf("patient %s missing %s", s.ID, attr)
			}
		}
	}
}

func TestTCGADriverEnrichment(t *testing.T) {
	sc := New(32).TCGA(TCGAOptions{Patients: 200})
	gi, _ := sc.Mutations.Schema.Index("gene")
	// For each subtype, its drivers must be mutated in far more of its own
	// patients than in patients of other subtypes.
	mutatedIn := func(gene, subtype string, invert bool) (hit, total int) {
		for _, s := range sc.Mutations.Samples {
			match := s.Meta.Matches("subtype", subtype)
			if invert {
				match = !match
			}
			if !match {
				continue
			}
			total++
			for _, r := range s.Regions {
				if r.Values[gi].Str() == gene {
					hit++
					break
				}
			}
		}
		return hit, total
	}
	for _, st := range sc.Subtypes {
		for _, driver := range sc.Drivers[st] {
			ownHit, ownTotal := mutatedIn(driver, st, false)
			otherHit, otherTotal := mutatedIn(driver, st, true)
			ownRate := float64(ownHit) / float64(ownTotal)
			otherRate := float64(otherHit) / float64(otherTotal)
			if ownRate < 0.5 {
				t.Errorf("%s driver %s mutated in only %.0f%% of own patients", st, driver, 100*ownRate)
			}
			if otherRate > 0.3 {
				t.Errorf("%s driver %s mutated in %.0f%% of other patients", st, driver, 100*otherRate)
			}
		}
	}
}

func TestTCGADeterministic(t *testing.T) {
	a := New(33).TCGA(TCGAOptions{Patients: 20})
	b := New(33).TCGA(TCGAOptions{Patients: 20})
	if a.Mutations.NumRegions() != b.Mutations.NumRegions() {
		t.Error("same seed differs")
	}
	if a.Mutations.Samples[0].ID != b.Mutations.Samples[0].ID {
		t.Error("sample IDs differ")
	}
}
