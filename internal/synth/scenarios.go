package synth

import (
	"fmt"
	"math"

	"genogo/internal/gdm"
)

// Figure2Dataset reproduces Fig. 2 of the paper exactly as described in the
// text: the PEAKS dataset for ChIP-Seq data with two samples whose regions
// fall within two chromosomes, whose variable schema is the single attribute
// P_VALUE, where sample 1 has 5 stranded regions and 4 metadata attributes
// (karyotype "cancer" among them) and sample 2 has 4 unstranded regions and
// 3 metadata attributes (including sex "female"). Coordinate values are
// representative — the paper's figure is an illustration, not data.
func Figure2Dataset() *gdm.Dataset {
	schema := gdm.MustSchema(gdm.Field{Name: "p_value", Type: gdm.KindFloat})
	ds := gdm.NewDataset("PEAKS", schema)

	s1 := gdm.NewSample("1")
	s1.Meta.Add("antibody_target", "CTCF")
	s1.Meta.Add("cell", "HeLa-S3")
	s1.Meta.Add("dataType", "ChipSeq")
	s1.Meta.Add("karyotype", "cancer")
	s1.AddRegion(gdm.NewRegion("chr1", 2756, 2906, gdm.StrandPlus, gdm.Float(0.000012)))
	s1.AddRegion(gdm.NewRegion("chr1", 12924, 13074, gdm.StrandMinus, gdm.Float(0.000073)))
	s1.AddRegion(gdm.NewRegion("chr1", 31312, 31462, gdm.StrandPlus, gdm.Float(0.000032)))
	s1.AddRegion(gdm.NewRegion("chr2", 878, 1028, gdm.StrandMinus, gdm.Float(0.000011)))
	s1.AddRegion(gdm.NewRegion("chr2", 22065, 22215, gdm.StrandPlus, gdm.Float(0.000002)))
	s1.SortRegions()
	ds.MustAdd(s1)

	s2 := gdm.NewSample("2")
	s2.Meta.Add("antibody_target", "CTCF")
	s2.Meta.Add("cell", "GM12878")
	s2.Meta.Add("sex", "female")
	s2.AddRegion(gdm.NewRegion("chr1", 2740, 2890, gdm.StrandNone, gdm.Float(0.000034)))
	s2.AddRegion(gdm.NewRegion("chr1", 40100, 40250, gdm.StrandNone, gdm.Float(0.000051)))
	s2.AddRegion(gdm.NewRegion("chr2", 940, 1090, gdm.StrandNone, gdm.Float(0.000021)))
	s2.AddRegion(gdm.NewRegion("chr2", 22608, 22758, gdm.StrandNone, gdm.Float(0.000066)))
	s2.SortRegions()
	ds.MustAdd(s2)
	return ds
}

// CTCFScenario is the Fig. 3 setting: CTCF loops, three methylation-mark
// experiments identifying enhancers and promoters, gene annotations, and the
// planted enhancer-to-gene regulation pairs a correct analysis must recover.
type CTCFScenario struct {
	// Loops holds one sample of CTCF loop spans (attribute: loop id).
	Loops *gdm.Dataset
	// Marks holds one sample per methylation experiment: H3K27ac (active
	// enhancers and promoters), H3K4me1 (enhancers), H3K4me3 (promoters).
	Marks *gdm.Dataset
	// Promoters is the RefSeq-like promoter annotation (attribute: gene).
	Promoters *gdm.Dataset
	// TruePairs maps "enhancerName\x1fgeneName" for the planted pairs: an
	// active enhancer regulating an active gene within a shared CTCF loop.
	TruePairs map[string]bool
	// Enhancers counts all generated enhancers (for precision accounting).
	Enhancers int
}

// PairKey builds a TruePairs key.
func PairKey(enhancer, gene string) string { return enhancer + "\x1f" + gene }

// CTCF generates the Fig. 3 scenario with nLoops CTCF loops. Inside ~60% of
// the loops it plants an active gene and 1–3 active enhancers (marked by
// H3K27ac+H3K4me1) regulating it; the other loops and the inter-loop space
// receive inactive enhancers and genes that a correct query must not pair.
func (g *Generator) CTCF(nLoops int) *CTCFScenario {
	sc := &CTCFScenario{TruePairs: make(map[string]bool)}
	loopSchema := gdm.MustSchema(gdm.Field{Name: "loop", Type: gdm.KindString})
	loops := gdm.NewDataset("CTCF_LOOPS", loopSchema)
	loopSample := gdm.NewSample("loops")
	loopSample.Meta.Add("assay", "ChIA-PET")
	loopSample.Meta.Add("factor", "CTCF")

	markSchema := gdm.MustSchema(gdm.Field{Name: "signal", Type: gdm.KindFloat})
	marks := gdm.NewDataset("MARKS", markSchema)
	k27 := gdm.NewSample("H3K27ac")
	k27.Meta.Add("antibody", "H3K27ac")
	k27.Meta.Add("dataType", "ChipSeq")
	k4me1 := gdm.NewSample("H3K4me1")
	k4me1.Meta.Add("antibody", "H3K4me1")
	k4me1.Meta.Add("dataType", "ChipSeq")
	k4me3 := gdm.NewSample("H3K4me3")
	k4me3.Meta.Add("antibody", "H3K4me3")
	k4me3.Meta.Add("dataType", "ChipSeq")

	proms := gdm.NewDataset("PROMOTERS", AnnotationSchema)
	promSample := gdm.NewSample("promoters")
	promSample.Meta.Add("annType", "promoter")

	mark := func(s *gdm.Sample, chrom string, start, stop int64) {
		s.AddRegion(gdm.NewRegion(chrom, start, stop, gdm.StrandNone, gdm.Float(1+g.rng.ExpFloat64()*3)))
	}

	for li := 0; li < nLoops; li++ {
		c := g.randomChrom()
		span := int64(50000 + g.rng.Int63n(150000)) // 50-200 kb loops
		start := g.rng.Int63n(max64(c.Length-span, 1))
		loopName := fmt.Sprintf("LOOP%04d", li)
		loopSample.AddRegion(gdm.NewRegion(c.Name, start, start+span, gdm.StrandNone, gdm.Str(loopName)))

		active := g.rng.Float64() < 0.6
		geneName := fmt.Sprintf("LGENE%04d", li)
		// Gene promoter inside the loop.
		ptss := start + span/2 + g.rng.Int63n(span/8)
		prom := gdm.NewRegion(c.Name, ptss-2000, ptss+200, gdm.StrandPlus, gdm.Str(geneName))
		promSample.AddRegion(prom)
		if active {
			// Active promoter: H3K4me3 + H3K27ac at the promoter.
			mark(k4me3, c.Name, ptss-1500, ptss+100)
			mark(k27, c.Name, ptss-1200, ptss+150)
		}
		nEnh := 1 + g.rng.Intn(3)
		for e := 0; e < nEnh; e++ {
			sc.Enhancers++
			eName := fmt.Sprintf("ENH%04d_%d", li, e)
			// Enhancer inside the first half of the loop, away from the
			// promoter.
			epos := start + 2000 + g.rng.Int63n(max64(span/2-6000, 1))
			eStart, eStop := epos, epos+1500
			// Every enhancer gets H3K4me1 (the enhancer mark).
			mark(k4me1, c.Name, eStart, eStop)
			enhActive := active && g.rng.Float64() < 0.8
			if enhActive {
				// Active enhancer: also H3K27ac.
				mark(k27, c.Name, eStart+100, eStop-100)
				sc.TruePairs[PairKey(eName, geneName)] = true
			}
			_ = eName
		}
	}
	// Decoy enhancers outside any loop: active-looking but pairable with no
	// gene through a loop.
	for d := 0; d < nLoops; d++ {
		sc.Enhancers++
		c := g.randomChrom()
		pos := g.rng.Int63n(max64(c.Length-2000, 1))
		mark(k4me1, c.Name, pos, pos+1500)
		if g.rng.Float64() < 0.5 {
			mark(k27, c.Name, pos+100, pos+1400)
		}
	}

	loopSample.SortRegions()
	k27.SortRegions()
	k4me1.SortRegions()
	k4me3.SortRegions()
	promSample.SortRegions()
	loops.MustAdd(loopSample)
	marks.MustAdd(k27)
	marks.MustAdd(k4me1)
	marks.MustAdd(k4me3)
	proms.MustAdd(promSample)
	sc.Loops = loops
	sc.Marks = marks
	sc.Promoters = proms
	return sc
}

// ReplicationScenario is the Section 3 open problem: correlating
// cancer-inducing mutations and DNA breaks with gene dis-regulation under
// oncogene induction.
type ReplicationScenario struct {
	// Expression holds two samples (condition control / induced): gene
	// regions with attributes gene (string) and expression (float).
	Expression *gdm.Dataset
	// Breakpoints holds one sample of DNA break positions.
	Breakpoints *gdm.Dataset
	// Mutations holds two samples of point mutations (condition control /
	// induced).
	Mutations *gdm.Dataset
	// ReplicationTiming holds one signal sample (replication time along the
	// genome).
	ReplicationTiming *gdm.Dataset
	// FragileGenes names the planted dis-regulated genes whose bodies carry
	// breakpoint and mutation enrichment in the induced condition.
	FragileGenes map[string]bool
}

// ExpressionSchema is the schema of expression samples.
var ExpressionSchema = gdm.MustSchema(
	gdm.Field{Name: "gene", Type: gdm.KindString},
	gdm.Field{Name: "expression", Type: gdm.KindFloat},
)

// BreakSchema is the schema of breakpoint samples.
var BreakSchema = gdm.MustSchema(
	gdm.Field{Name: "support", Type: gdm.KindInt},
)

// MutationSchema is the schema of mutation samples (VCF-reduced).
var MutationSchema = gdm.MustSchema(
	gdm.Field{Name: "ref", Type: gdm.KindString},
	gdm.Field{Name: "alt", Type: gdm.KindString},
)

// Replication generates the Section 3 scenario over nGenes genes. A planted
// ~15% of genes are "fragile": upon oncogene induction their expression
// drops sharply and their bodies accumulate breakpoints and mutations; a
// correct GMQL pipeline recovers exactly these genes.
func (g *Generator) Replication(nGenes int) *ReplicationScenario {
	sc := &ReplicationScenario{FragileGenes: make(map[string]bool)}
	genes := g.Genes(nGenes)

	expr := gdm.NewDataset("EXPRESSION", ExpressionSchema)
	control := gdm.NewSample("control")
	control.Meta.Add("condition", "control")
	induced := gdm.NewSample("induced")
	induced.Meta.Add("condition", "oncogene_induced")

	breaks := gdm.NewDataset("BREAKS", BreakSchema)
	bp := gdm.NewSample("breaks")
	bp.Meta.Add("assay", "BLESS")

	muts := gdm.NewDataset("MUTATIONS", MutationSchema)
	mutControl := gdm.NewSample("mut_control")
	mutControl.Meta.Add("condition", "control")
	mutInduced := gdm.NewSample("mut_induced")
	mutInduced.Meta.Add("condition", "oncogene_induced")

	bases := []string{"A", "C", "G", "T"}
	addMut := func(s *gdm.Sample, chrom string, pos int64) {
		ref := bases[g.rng.Intn(4)]
		alt := bases[g.rng.Intn(4)]
		for alt == ref {
			alt = bases[g.rng.Intn(4)]
		}
		s.AddRegion(gdm.NewRegion(chrom, pos, pos+1, gdm.StrandNone, gdm.Str(ref), gdm.Str(alt)))
	}

	for _, gene := range genes {
		base := 5 + g.rng.ExpFloat64()*20
		fragile := g.rng.Float64() < 0.15
		exprInduced := base * (0.8 + g.rng.Float64()*0.4)
		if fragile {
			sc.FragileGenes[gene.Name] = true
			exprInduced = base * (0.05 + g.rng.Float64()*0.15) // sharp drop
		}
		body := gdm.NewRegion(gene.Chrom, gene.TSS, gene.TSS+gene.Length, gene.Strand,
			gdm.Str(gene.Name), gdm.Float(base))
		control.AddRegion(body)
		ib := body
		ib.Values = []gdm.Value{gdm.Str(gene.Name), gdm.Float(exprInduced)}
		induced.AddRegion(ib)

		// Background mutation/breakpoint rate everywhere; strong enrichment
		// in fragile gene bodies.
		nBreaks := g.rng.Intn(2)
		nMuts := g.rng.Intn(3)
		if fragile {
			nBreaks += 4 + g.rng.Intn(5)
			nMuts += 6 + g.rng.Intn(8)
		}
		for b := 0; b < nBreaks; b++ {
			pos := gene.TSS + g.rng.Int63n(gene.Length)
			bp.AddRegion(gdm.NewRegion(gene.Chrom, pos, pos+50, gdm.StrandNone,
				gdm.Int(int64(2+g.rng.Intn(30)))))
		}
		for m := 0; m < nMuts; m++ {
			addMut(mutInduced, gene.Chrom, gene.TSS+g.rng.Int63n(gene.Length))
		}
		// Control condition keeps only the background rate.
		for m := 0; m < g.rng.Intn(3); m++ {
			addMut(mutControl, gene.Chrom, gene.TSS+g.rng.Int63n(gene.Length))
		}
	}

	// Replication timing signal: a smooth wave per chromosome, 100 kb bins.
	timing := gdm.NewDataset("REPLICATION_TIMING", gdm.MustSchema(
		gdm.Field{Name: "value", Type: gdm.KindFloat}))
	ts := gdm.NewSample("repli_seq")
	ts.Meta.Add("assay", "Repli-seq")
	const bin = 100000
	for _, c := range g.Genome.Chroms {
		phase := g.rng.Float64() * 2 * math.Pi
		for pos := int64(0); pos < c.Length; pos += bin {
			stop := pos + bin
			if stop > c.Length {
				stop = c.Length
			}
			v := math.Sin(float64(pos)/5e5+phase)*0.5 + 0.5
			ts.AddRegion(gdm.NewRegion(c.Name, pos, stop, gdm.StrandNone, gdm.Float(v)))
		}
	}
	ts.SortRegions()
	timing.MustAdd(ts)

	for _, s := range []*gdm.Sample{control, induced, bp, mutControl, mutInduced} {
		s.SortRegions()
	}
	expr.MustAdd(control)
	expr.MustAdd(induced)
	breaks.MustAdd(bp)
	muts.MustAdd(mutControl)
	muts.MustAdd(mutInduced)
	sc.Expression = expr
	sc.Breakpoints = breaks
	sc.Mutations = muts
	sc.ReplicationTiming = timing
	return sc
}
