package synth

import (
	"testing"

	"genogo/internal/gdm"
)

func TestHumanLikeGenome(t *testing.T) {
	g := HumanLike()
	if len(g.Chroms) != 24 {
		t.Fatalf("chroms = %d", len(g.Chroms))
	}
	if g.Chroms[0].Name != "chr1" || g.Chroms[23].Name != "chrY" {
		t.Errorf("chrom order wrong: %v", g.Chroms)
	}
	if g.TotalLength() < 25e6 || g.TotalLength() > 35e6 {
		t.Errorf("total length = %d", g.TotalLength())
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := New(7).ChipSeq("s", 100)
	b := New(7).ChipSeq("s", 100)
	if len(a.Regions) != len(b.Regions) {
		t.Fatal("lengths differ")
	}
	for i := range a.Regions {
		if a.Regions[i].String() != b.Regions[i].String() {
			t.Fatalf("region %d differs: %s vs %s", i, a.Regions[i], b.Regions[i])
		}
	}
	c := New(8).ChipSeq("s", 100)
	same := true
	for i := range a.Regions {
		if a.Regions[i].String() != c.Regions[i].String() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestChipSeqSample(t *testing.T) {
	s := New(1).ChipSeq("x", 500)
	if len(s.Regions) != 500 {
		t.Fatalf("regions = %d", len(s.Regions))
	}
	if !s.RegionsSorted() {
		t.Error("regions unsorted")
	}
	for _, r := range s.Regions {
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
		p := r.Values[0].Float()
		if p <= 0 || p > 0.01 {
			t.Fatalf("p_value = %g", p)
		}
		if r.Values[1].Float() < 1 {
			t.Fatalf("signal = %v", r.Values[1])
		}
		if r.Length() < 50 || r.Length() > 100000 {
			t.Fatalf("length = %d", r.Length())
		}
	}
}

func TestEncodeDataset(t *testing.T) {
	ds := New(2).Encode(EncodeOptions{Samples: 200, MeanPeaks: 50})
	if len(ds.Samples) != 200 {
		t.Fatalf("samples = %d", len(ds.Samples))
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	chip, withAntibody, missingMeta := 0, 0, 0
	minPeaks, maxPeaks := 1<<60, 0
	for _, s := range ds.Samples {
		if s.Meta.Matches("dataType", "ChipSeq") {
			chip++
			if s.Meta.Has("antibody") {
				withAntibody++
			}
		}
		if !s.Meta.Has("treatment") || !s.Meta.Has("karyotype") || !s.Meta.Has("sex") {
			missingMeta++
		}
		if n := len(s.Regions); n < minPeaks {
			minPeaks = n
		}
		if n := len(s.Regions); n > maxPeaks {
			maxPeaks = n
		}
	}
	if chip < 80 || chip > 160 {
		t.Errorf("ChipSeq samples = %d, want ~120", chip)
	}
	if withAntibody != chip {
		t.Errorf("ChipSeq without antibody: %d/%d", chip-withAntibody, chip)
	}
	if missingMeta == 0 {
		t.Error("no sample has missing metadata — LIMS sloppiness not reproduced")
	}
	// Heavy tail: max should dwarf min.
	if maxPeaks < 10*minPeaks {
		t.Errorf("peak counts not heavy-tailed: min=%d max=%d", minPeaks, maxPeaks)
	}
}

func TestGenesAndAnnotations(t *testing.T) {
	g := New(3)
	genes := g.Genes(300)
	if len(genes) != 300 {
		t.Fatalf("genes = %d", len(genes))
	}
	seen := map[string]bool{}
	for _, gene := range genes {
		if seen[gene.Name] {
			t.Fatalf("duplicate gene name %s", gene.Name)
		}
		seen[gene.Name] = true
		if gene.Promoter.Chrom != gene.Chrom {
			t.Fatal("promoter on wrong chromosome")
		}
		if gene.Strand == gdm.StrandPlus {
			if gene.Promoter.Start != gene.TSS-2000 || gene.Promoter.Stop != gene.TSS+200 {
				t.Fatalf("plus promoter = %v for TSS %d", gene.Promoter, gene.TSS)
			}
		} else {
			end := gene.TSS + gene.Length
			if gene.Promoter.Start != end-200 || gene.Promoter.Stop != end+2000 {
				t.Fatalf("minus promoter = %v for gene end %d", gene.Promoter, end)
			}
		}
	}
	ds := g.Annotations(genes)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ds.Samples) != 2 {
		t.Fatalf("annotation samples = %d", len(ds.Samples))
	}
	proms := ds.Sample("promoters")
	if proms == nil || !proms.Meta.Matches("annType", "promoter") {
		t.Fatal("promoters sample missing")
	}
	if len(proms.Regions) != 300 {
		t.Errorf("promoter regions = %d", len(proms.Regions))
	}
}

func TestFigure2Dataset(t *testing.T) {
	ds := Figure2Dataset()
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Name != "PEAKS" {
		t.Errorf("name = %q", ds.Name)
	}
	if ds.Schema.Len() != 1 || ds.Schema.Field(0).Name != "p_value" {
		t.Errorf("schema = %s", ds.Schema)
	}
	s1, s2 := ds.Sample("1"), ds.Sample("2")
	if s1 == nil || s2 == nil {
		t.Fatal("samples 1/2 missing")
	}
	// Exactly as the paper describes the figure.
	if len(s1.Regions) != 5 || len(s2.Regions) != 4 {
		t.Errorf("region counts = %d,%d; paper says 5,4", len(s1.Regions), len(s2.Regions))
	}
	if len(s1.Meta.Attrs()) != 4 || len(s2.Meta.Attrs()) != 3 {
		t.Errorf("metadata counts = %d,%d; paper says 4,3", len(s1.Meta.Attrs()), len(s2.Meta.Attrs()))
	}
	if !s1.Meta.Matches("karyotype", "cancer") {
		t.Error("sample 1 must have karyotype cancer")
	}
	if !s2.Meta.Matches("sex", "female") {
		t.Error("sample 2 must be female")
	}
	for _, r := range s1.Regions {
		if r.Strand == gdm.StrandNone {
			t.Error("sample 1 regions must be stranded")
		}
	}
	for _, r := range s2.Regions {
		if r.Strand != gdm.StrandNone {
			t.Error("sample 2 regions must be unstranded")
		}
	}
	chroms := map[string]bool{}
	for _, s := range ds.Samples {
		for _, r := range s.Regions {
			chroms[r.Chrom] = true
		}
	}
	if len(chroms) != 2 || !chroms["chr1"] || !chroms["chr2"] {
		t.Errorf("chromosomes = %v, paper says chr1 and chr2", chroms)
	}
}

func TestCTCFScenario(t *testing.T) {
	sc := New(4).CTCF(80)
	for _, ds := range []*gdm.Dataset{sc.Loops, sc.Marks, sc.Promoters} {
		if err := ds.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if len(sc.Loops.Samples[0].Regions) != 80 {
		t.Errorf("loops = %d", len(sc.Loops.Samples[0].Regions))
	}
	if len(sc.Marks.Samples) != 3 {
		t.Fatalf("mark samples = %d", len(sc.Marks.Samples))
	}
	if len(sc.TruePairs) == 0 {
		t.Fatal("no true pairs planted")
	}
	if sc.Enhancers <= len(sc.TruePairs) {
		t.Error("every enhancer is a true pair — no decoys")
	}
	// Every true pair's enhancer must lie inside some loop together with
	// the gene promoter (check one structural invariant: the loop sample
	// contains spans wide enough).
	for pair := range sc.TruePairs {
		if pair == "" {
			t.Fatal("empty pair key")
		}
	}
}

func TestReplicationScenario(t *testing.T) {
	sc := New(5).Replication(200)
	for _, ds := range []*gdm.Dataset{sc.Expression, sc.Breakpoints, sc.Mutations, sc.ReplicationTiming} {
		if err := ds.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if len(sc.FragileGenes) == 0 || len(sc.FragileGenes) > 80 {
		t.Fatalf("fragile genes = %d", len(sc.FragileGenes))
	}
	control := sc.Expression.Sample("control")
	induced := sc.Expression.Sample("induced")
	if len(control.Regions) != 200 || len(induced.Regions) != 200 {
		t.Fatal("expression samples must cover all genes")
	}
	gi, _ := sc.Expression.Schema.Index("gene")
	ei, _ := sc.Expression.Schema.Index("expression")
	// Fragile genes must show a sharp induced/control expression drop.
	exprOf := func(s *gdm.Sample, gene string) float64 {
		for _, r := range s.Regions {
			if r.Values[gi].Str() == gene {
				return r.Values[ei].Float()
			}
		}
		t.Fatalf("gene %s not found", gene)
		return 0
	}
	checked := 0
	for gene := range sc.FragileGenes {
		ratio := exprOf(induced, gene) / exprOf(control, gene)
		if ratio > 0.5 {
			t.Errorf("fragile gene %s ratio %.2f, want < 0.5", gene, ratio)
		}
		checked++
		if checked >= 10 {
			break
		}
	}
	// Breakpoints must be enriched: fragile genes carry most of them.
	if len(sc.Breakpoints.Samples[0].Regions) < 4*len(sc.FragileGenes) {
		t.Errorf("breakpoints = %d for %d fragile genes",
			len(sc.Breakpoints.Samples[0].Regions), len(sc.FragileGenes))
	}
	// Induced mutations outnumber control mutations.
	mc := sc.Mutations.Sample("mut_control")
	mi := sc.Mutations.Sample("mut_induced")
	if len(mi.Regions) <= len(mc.Regions) {
		t.Errorf("induced %d <= control %d mutations", len(mi.Regions), len(mc.Regions))
	}
	// Timing signal covers every chromosome contiguously.
	ts := sc.ReplicationTiming.Samples[0]
	if len(ts.Regions) < 100 {
		t.Errorf("timing bins = %d", len(ts.Regions))
	}
}
