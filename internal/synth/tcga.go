package synth

import (
	"fmt"
	"math"

	"genogo/internal/gdm"
)

// TCGA-like generation: the paper's second flagship repository is The
// Cancer Genome Atlas — per-patient somatic mutation samples with rich
// clinical metadata. This generator plants driver genes whose mutation
// rates differ per cancer subtype, so genotype-phenotype analyses
// (Section 4.1) have recoverable signal.

// TCGAOptions tunes the synthetic cohort.
type TCGAOptions struct {
	Patients int
	// Genes is the shared gene universe; generated when nil.
	Genes []Gene
	// DriversPerSubtype plants this many driver genes per subtype
	// (default 3).
	DriversPerSubtype int
}

// TCGAScenario is the generated cohort plus its planted ground truth.
type TCGAScenario struct {
	// Mutations holds one sample per patient (schema: gene, ref, alt,
	// vaf float) with clinical metadata: subtype, stage, age, sex, vital.
	Mutations *gdm.Dataset
	// GeneAnnotations is the shared gene track (attribute: name).
	GeneAnnotations *gdm.Dataset
	// Drivers maps subtype -> the planted driver gene names.
	Drivers map[string][]string
	// Subtypes lists the cohort's cancer subtypes.
	Subtypes []string
}

// TCGASchema is the mutation sample schema.
var TCGASchema = gdm.MustSchema(
	gdm.Field{Name: "gene", Type: gdm.KindString},
	gdm.Field{Name: "ref", Type: gdm.KindString},
	gdm.Field{Name: "alt", Type: gdm.KindString},
	gdm.Field{Name: "vaf", Type: gdm.KindFloat}, // variant allele frequency
)

// TCGA generates a synthetic pan-cancer cohort.
func (g *Generator) TCGA(opt TCGAOptions) *TCGAScenario {
	if opt.DriversPerSubtype == 0 {
		opt.DriversPerSubtype = 3
	}
	genes := opt.Genes
	if genes == nil {
		genes = g.Genes(200)
	}
	subtypes := []string{"BRCA", "LUAD", "COAD"}
	sc := &TCGAScenario{
		Mutations: gdm.NewDataset("TCGA", TCGASchema),
		Drivers:   make(map[string][]string),
		Subtypes:  subtypes,
	}
	sc.GeneAnnotations = g.Annotations(genes)

	// Plant disjoint driver sets.
	perm := g.rng.Perm(len(genes))
	next := 0
	driverOf := make(map[string]map[string]bool) // subtype -> gene set
	for _, st := range subtypes {
		set := make(map[string]bool, opt.DriversPerSubtype)
		for d := 0; d < opt.DriversPerSubtype && next < len(perm); d++ {
			name := genes[perm[next]].Name
			next++
			set[name] = true
			sc.Drivers[st] = append(sc.Drivers[st], name)
		}
		driverOf[st] = set
	}

	bases := []string{"A", "C", "G", "T"}
	for p := 0; p < opt.Patients; p++ {
		subtype := subtypes[g.rng.Intn(len(subtypes))]
		s := gdm.NewSample(fmt.Sprintf("TCGA-%02d-%04d", g.rng.Intn(30), p))
		s.Meta.Add("subtype", subtype)
		s.Meta.Add("disease", "cancer")
		s.Meta.Add("stage", []string{"I", "II", "III", "IV"}[g.rng.Intn(4)])
		s.Meta.Add("age", fmt.Sprint(35+g.rng.Intn(50)))
		s.Meta.Add("sex", sexes[g.rng.Intn(len(sexes))])
		if g.rng.Float64() < 0.8 {
			s.Meta.Add("vital_status", []string{"alive", "deceased"}[g.rng.Intn(2)])
		}
		for _, gene := range genes {
			// Background somatic rate ~6%; drivers of the patient's own
			// subtype mutate in ~70% of patients.
			rate := 0.06
			if driverOf[subtype][gene.Name] {
				rate = 0.7
			}
			if g.rng.Float64() >= rate {
				continue
			}
			nMut := 1 + g.rng.Intn(2)
			for m := 0; m < nMut; m++ {
				pos := gene.TSS + g.rng.Int63n(max64(gene.Length, 1))
				ref := bases[g.rng.Intn(4)]
				alt := bases[g.rng.Intn(4)]
				for alt == ref {
					alt = bases[g.rng.Intn(4)]
				}
				vaf := math.Min(0.95, 0.05+g.rng.ExpFloat64()*0.2)
				s.AddRegion(gdm.NewRegion(gene.Chrom, pos, pos+1, gdm.StrandNone,
					gdm.Str(gene.Name), gdm.Str(ref), gdm.Str(alt), gdm.Float(vaf)))
			}
		}
		s.SortRegions()
		sc.Mutations.MustAdd(s)
	}
	return sc
}
