package gmql

import (
	"testing"
)

// FuzzLex: the lexer must never panic — any input, however mangled, either
// tokenizes or returns an error.
func FuzzLex(f *testing.F) {
	for _, s := range fuzzSeedScripts {
		f.Add(s)
	}
	f.Add("'unterminated")
	f.Add("1.2.3e++5")
	f.Add(";;;;")
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lex(src)
		if err != nil {
			return
		}
		// On success the token stream must be EOF-terminated, or the parser
		// would walk off the end.
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatalf("lex(%q) returned a stream without EOF terminator", src)
		}
	})
}

// FuzzParse: the parser must never panic, only return errors — a GMQL
// script arrives over the federation wire from untrusted peers, so a parser
// panic is a remote crash.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeedScripts {
		f.Add(s)
	}
	f.Add("V = SELECT( ENCODE;")
	f.Add("MATERIALIZE ;")
	f.Add("V = JOIN(DLE(-)) A B;")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err == nil && prog == nil {
			t.Fatal("Parse returned nil program without error")
		}
	})
}

// fuzzSeedScripts are valid scripts covering every operator, so the fuzzer
// starts from deep grammar paths instead of discovering the keyword set by
// chance.
var fuzzSeedScripts = []string{
	"V1 = SELECT(dataType == 'ChipSeq' AND NOT (cell == 'K562'); region: p_value < 0.001) ENCODE;\nMATERIALIZE V1 INTO OUT;",
	"V1 = SELECT(semijoin: cell NOT IN PEAKS) ENCODE;\nMATERIALIZE V1;",
	"V1 = PROJECT(p_value, x1 AS signal * 2 + 1, x2 AS right - left; metadata: cell) ENCODE;\nMATERIALIZE V1;",
	"V1 = EXTEND(n AS COUNT, avg AS AVG(signal)) ENCODE;\nMATERIALIZE V1;",
	"V1 = MERGE(groupby: cell) ENCODE;\nMATERIALIZE V1;",
	"V1 = GROUP(cell; g AS COUNTSAMP; region_aggregate: n AS COUNT, m AS MIN(p_value)) ENCODE;\nMATERIALIZE V1;",
	"V1 = ORDER(cell DESC, dataType; top: 3; region_order: signal DESC; region_top: 5) ENCODE;\nMATERIALIZE V1;",
	"V1 = UNION() ENCODE PEAKS;\nMATERIALIZE V1;",
	"V1 = DIFFERENCE(joinby: cell; exact: true) ENCODE PEAKS;\nMATERIALIZE V1;",
	"V1 = JOIN(MD(1), DLE(5000), UP; output: INT; joinby: cell) ANNOT ENCODE;\nMATERIALIZE V1;",
	"V1 = MAP(c AS COUNT, s AS SUM(signal); joinby: cell) ANNOT ENCODE;\nMATERIALIZE V1;",
	"V1 = COVER(2, ANY; groupby: cell; aggregate: a AS AVG(p_value)) ENCODE;\nMATERIALIZE V1;",
	"V1 = HISTOGRAM(1, ALL) ENCODE;\nV2 = SUMMIT(2, 3) ENCODE;\nV3 = FLAT(ANY, ANY) ENCODE;\nMATERIALIZE V3;",
}

// TestFuzzSeedScriptsParse keeps the seed corpus honest: every seed script
// must actually parse, so the fuzzer explores from valid ground.
func TestFuzzSeedScriptsParse(t *testing.T) {
	for i, s := range fuzzSeedScripts {
		if _, err := Parse(s); err != nil {
			t.Errorf("seed script %d does not parse: %v\n%s", i, err, s)
		}
	}
	// And the lexer agrees with the parser on all of them.
	for i, s := range fuzzSeedScripts {
		if _, err := lex(s); err != nil {
			t.Errorf("seed script %d does not lex: %v", i, err)
		}
	}
}
