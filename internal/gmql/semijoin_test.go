package gmql

import (
	"strings"
	"testing"

	"genogo/internal/engine"
)

func TestSemiJoinSelectsMatchingSamples(t *testing.T) {
	// Keep ENCODE samples whose cell matches some RnaSeq sample's cell.
	src := `
RNA = SELECT(dataType == 'RnaSeq') ENCODE;
SAME_CELL = SELECT(dataType == 'ChipSeq'; semijoin: cell IN RNA) ENCODE;
MATERIALIZE SAME_CELL;
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t) // rna1 is HeLa; chip1 is HeLa, chip2 is K562
	for _, mode := range []engine.Mode{engine.ModeSerial, engine.ModeBatch, engine.ModeStream} {
		r := &Runner{Config: engine.Config{Mode: mode, Workers: 2, MetaFirst: true}, Catalog: cat}
		results, err := r.Materialize(prog)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		ds := results[0].Dataset
		if len(ds.Samples) != 1 || ds.Samples[0].ID != "chip1" {
			t.Errorf("%s: samples = %v", mode, ds.Samples)
		}
	}
}

func TestSemiJoinNegated(t *testing.T) {
	src := `
RNA = SELECT(dataType == 'RnaSeq') ENCODE;
OTHER_CELL = SELECT(dataType == 'ChipSeq'; semijoin: cell NOT IN RNA) ENCODE;
MATERIALIZE OTHER_CELL;
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(testCatalog(t))
	results, err := r.Materialize(prog)
	if err != nil {
		t.Fatal(err)
	}
	ds := results[0].Dataset
	if len(ds.Samples) != 1 || ds.Samples[0].ID != "chip2" {
		t.Errorf("samples = %v", ds.Samples)
	}
}

func TestSemiJoinExplain(t *testing.T) {
	prog, err := Parse(`X = SELECT(; semijoin: cell, dataType IN ANNOTATIONS) ENCODE;`)
	if err != nil {
		t.Fatal(err)
	}
	text := engine.Explain(prog.Plan("X"))
	for _, frag := range []string{"semijoin", "cell,dataType", "IN", "SCAN ANNOTATIONS"} {
		if !strings.Contains(text, frag) {
			t.Errorf("explain missing %q:\n%s", frag, text)
		}
	}
}

func TestSemiJoinParseErrors(t *testing.T) {
	cases := []string{
		`X = SELECT(; semijoin: ) ENCODE;`,
		`X = SELECT(; semijoin: cell) ENCODE;`,
		`X = SELECT(; semijoin: cell IN) ENCODE;`,
		`X = SELECT(; semijoin: cell NOT ANNOTATIONS) ENCODE;`,
		`X = SELECT(; semijoin: cell BETWIXT ANNOTATIONS) ENCODE;`,
		`X = SELECT(; semijoin: cell IN ANNOTATIONS extra) ENCODE;`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestSemiJoinOptimizerKeepsSemantics(t *testing.T) {
	src := `
RNA = SELECT(dataType == 'RnaSeq') ENCODE;
A = SELECT(; semijoin: cell IN RNA) ENCODE;
B = SELECT(dataType == 'ChipSeq') A;
MATERIALIZE B;
`
	parse := func() *Program {
		p, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	cat := testCatalog(t)
	opt := NewRunner(cat)
	plain := NewRunner(cat)
	plain.DisableOptimizer = true
	r1, err := opt.Materialize(parse())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := plain.Materialize(parse())
	if err != nil {
		t.Fatal(err)
	}
	a, b := r1[0].Dataset, r2[0].Dataset
	if len(a.Samples) != len(b.Samples) || a.NumRegions() != b.NumRegions() {
		t.Errorf("optimizer changed semijoin semantics: %s vs %s", a, b)
	}
	if len(a.Samples) != 1 || a.Samples[0].ID != "chip1" {
		t.Errorf("samples = %v", a.Samples)
	}
}

func TestOrderRegionClausesFromScript(t *testing.T) {
	src := `X = ORDER(cell ASC; region_order: signal DESC; region_top: 1) ENCODE; MATERIALIZE X;`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(testCatalog(t))
	results, err := r.Materialize(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range results[0].Dataset.Samples {
		if len(s.Regions) > 1 {
			t.Errorf("sample %s kept %d regions, want <= 1", s.ID, len(s.Regions))
		}
	}
	// chip1's strongest signal is its third region (signal 11 at 5150).
	for _, s := range results[0].Dataset.Samples {
		if s.ID == "chip1" && len(s.Regions) == 1 {
			si, _ := results[0].Dataset.Schema.Index("signal")
			if s.Regions[0].Values[si].Float() != 11 {
				t.Errorf("chip1 kept signal %v, want 11", s.Regions[0].Values[si])
			}
		}
	}
	// Parse errors.
	for _, bad := range []string{
		`X = ORDER(region_top: 1) A;`,
		`X = ORDER(region_order: a; region_top: x) A;`,
		`X = ORDER() A;`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestCoverAggregateClauseFromScript(t *testing.T) {
	src := `C = COVER(1, ANY; aggregate: n AS COUNT, avg AS AVG(signal)) ENCODE; MATERIALIZE C;`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(testCatalog(t))
	results, err := r.Materialize(prog)
	if err != nil {
		t.Fatal(err)
	}
	ds := results[0].Dataset
	for _, want := range []string{"acc_index", "n", "avg"} {
		if _, ok := ds.Schema.Index(want); !ok {
			t.Errorf("schema missing %q: %s", want, ds.Schema)
		}
	}
	if _, err := Parse(`C = COVER(1, ANY; aggregate: broken) X;`); err == nil {
		t.Error("bad aggregate clause accepted")
	}
}

func TestGroupRegionAggregateFromScript(t *testing.T) {
	src := `G = GROUP(cell; ns AS COUNTSAMP; region_aggregate: n AS COUNT) ENCODE; MATERIALIZE G;`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(testCatalog(t))
	results, err := r.Materialize(prog)
	if err != nil {
		t.Fatal(err)
	}
	ds := results[0].Dataset
	if ds.Schema.Len() != 1 || ds.Schema.Field(0).Name != "n" {
		t.Errorf("schema = %s", ds.Schema)
	}
	for _, s := range ds.Samples {
		if !s.Meta.Has("ns") || !s.Meta.Has("_group") {
			t.Errorf("sample %s meta = %v", s.ID, s.Meta.Pairs())
		}
	}
	if _, err := Parse(`G = GROUP(a; b AS COUNT; region_aggregate: bad; extra: 1) X;`); err == nil {
		t.Error("bad GROUP clauses accepted")
	}
}
