package gmql

import (
	"strings"
	"testing"
)

func kinds(toks []token) []tokenKind {
	out := make([]tokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.kind
	}
	return out
}

func texts(toks []token) []string {
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.kind != tokEOF {
			out = append(out, t.text)
		}
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := lex(`X = SELECT(a == 'hi'; region: p < 0.05) DS;`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"X", "=", "SELECT", "(", "a", "==", "hi", ";", "region", ":", "p", "<", "0.05", ")", "DS", ";"}
	got := texts(toks)
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexComments(t *testing.T) {
	toks, err := lex("# full line comment\nX = 1; # trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	got := texts(toks)
	if len(got) != 4 || got[0] != "X" {
		t.Errorf("tokens = %v", got)
	}
	// Comment content never leaks.
	for _, tok := range got {
		if strings.Contains(tok, "comment") || strings.Contains(tok, "trailing") {
			t.Errorf("comment leaked into token %q", tok)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string][]string{
		"42":     {"42"},
		"0.5":    {"0.5"},
		"1e-5":   {"1e-5"},
		"2.5E+3": {"2.5E+3"},
		"1..2":   {"1", ".", ".", "2"}, // dots without digits split — but '.' is not a symbol
		"3.hits": {"3", ".", "hits"},
		"chr1":   {"chr1"}, // identifier, not number
		"x1.y2":  {"x1.y2"},
		"10 20":  {"10", "20"},
		"-5":     {"-", "5"},
		"1e5x":   {"1e5", "x"},
	}
	for in, want := range cases {
		toks, err := lex(in)
		if in == "1..2" || in == "3.hits" {
			// '.' outside numbers/identifiers is not a legal symbol.
			if err == nil {
				t.Errorf("lex(%q) succeeded: %v", in, texts(toks))
			}
			continue
		}
		if err != nil {
			t.Errorf("lex(%q): %v", in, err)
			continue
		}
		got := texts(toks)
		if len(got) != len(want) {
			t.Errorf("lex(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("lex(%q)[%d] = %q, want %q", in, i, got[i], want[i])
			}
		}
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := lex(`'single' "double" 'with spaces and #not-a-comment'`)
	if err != nil {
		t.Fatal(err)
	}
	got := texts(toks)
	want := []string{"single", "double", "with spaces and #not-a-comment"}
	for i := range want {
		if got[i] != want[i] || toks[i].kind != tokString {
			t.Errorf("string %d = %q (%v)", i, got[i], toks[i].kind)
		}
	}
	if _, err := lex("'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("'newline\nin string'"); err == nil {
		t.Error("string with newline accepted")
	}
}

func TestLexSymbolsAndPositions(t *testing.T) {
	toks, err := lex("a\n  b <= c")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].line != 1 || toks[0].col != 1 {
		t.Errorf("a at %d:%d", toks[0].line, toks[0].col)
	}
	if toks[1].line != 2 || toks[1].col != 3 {
		t.Errorf("b at %d:%d", toks[1].line, toks[1].col)
	}
	if toks[2].text != "<=" || toks[2].kind != tokSymbol {
		t.Errorf("symbol = %+v", toks[2])
	}
	if _, err := lex("a @ b"); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("bad char error = %v", err)
	}
}

func TestLexDottedIdentifiers(t *testing.T) {
	toks, err := lex("right.score left.cell.line _under")
	if err != nil {
		t.Fatal(err)
	}
	got := texts(toks)
	want := []string{"right.score", "left.cell.line", "_under"}
	for i := range want {
		if got[i] != want[i] || toks[i].kind != tokIdent {
			t.Errorf("ident %d = %q", i, got[i])
		}
	}
}

func TestTokenHelpers(t *testing.T) {
	toks, _ := lex("SELECT select ==")
	if !toks[0].isKeyword("select") || !toks[1].isKeyword("SELECT") {
		t.Error("isKeyword must be case-insensitive")
	}
	if !toks[2].isSymbol("==") || toks[2].isSymbol("=") {
		t.Error("isSymbol wrong")
	}
	if toks[0].isSymbol("SELECT") {
		t.Error("ident treated as symbol")
	}
	eof := toks[len(toks)-1]
	if eof.String() != "end of input" {
		t.Errorf("EOF String = %q", eof.String())
	}
	_ = kinds(toks)
}
