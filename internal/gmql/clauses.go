package gmql

import (
	"fmt"
	"strconv"
	"strings"

	"genogo/internal/engine"
	"genogo/internal/expr"
	"genogo/internal/gdm"
)

// cursor walks a clause's token span.
type cursor struct {
	toks []token
	pos  int
	last token // for error positions at end of clause
}

func newCursor(toks []token) *cursor {
	c := &cursor{toks: toks}
	if len(toks) > 0 {
		c.last = toks[len(toks)-1]
	}
	return c
}

func (c *cursor) peek() token {
	if c.pos < len(c.toks) {
		return c.toks[c.pos]
	}
	return token{kind: tokEOF, line: c.last.line, col: c.last.col}
}

func (c *cursor) next() token {
	t := c.peek()
	if t.kind != tokEOF {
		c.pos++
	}
	return t
}

func (c *cursor) done() bool { return c.pos >= len(c.toks) }

func errAt(t token, format string, args ...any) error {
	return fmt.Errorf("gmql: line %d col %d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

// identList parses "a, b, c".
func identList(toks []token) ([]string, error) {
	c := newCursor(toks)
	var out []string
	for {
		t := c.next()
		if t.kind != tokIdent {
			return nil, errAt(t, "expected attribute name, found %s", t)
		}
		out = append(out, t.text)
		if c.done() {
			return out, nil
		}
		if sep := c.next(); !sep.isSymbol(",") {
			return nil, errAt(sep, "expected ',', found %s", sep)
		}
	}
}

// parseOrderKeys parses "attr [ASC|DESC], ...".
func parseOrderKeys(toks []token) ([]engine.OrderKey, error) {
	c := newCursor(toks)
	var out []engine.OrderKey
	for {
		t := c.next()
		if t.kind != tokIdent {
			return nil, errAt(t, "expected attribute name, found %s", t)
		}
		key := engine.OrderKey{Attr: t.text}
		if c.peek().isKeyword("ASC") {
			c.next()
		} else if c.peek().isKeyword("DESC") {
			c.next()
			key.Desc = true
		}
		out = append(out, key)
		if c.done() {
			return out, nil
		}
		if sep := c.next(); !sep.isSymbol(",") {
			return nil, errAt(sep, "expected ',', found %s", sep)
		}
	}
}

// parseAggList parses "out AS FUNC(attr), out2 AS COUNT, ...".
func parseAggList(toks []token) ([]expr.Aggregate, error) {
	c := newCursor(toks)
	var out []expr.Aggregate
	for {
		name := c.next()
		if name.kind != tokIdent {
			return nil, errAt(name, "expected output attribute name, found %s", name)
		}
		if as := c.next(); !as.isKeyword("AS") {
			return nil, errAt(as, "expected AS, found %s", as)
		}
		fnTok := c.next()
		if fnTok.kind != tokIdent {
			return nil, errAt(fnTok, "expected aggregate function, found %s", fnTok)
		}
		fn, err := expr.ParseAggFunc(fnTok.text)
		if err != nil {
			return nil, errAt(fnTok, "%v", err)
		}
		agg := expr.Aggregate{Output: name.text, Func: fn}
		if c.peek().isSymbol("(") {
			c.next()
			attr := c.next()
			if attr.kind != tokIdent {
				return nil, errAt(attr, "expected attribute name, found %s", attr)
			}
			agg.Attr = attr.text
			if cl := c.next(); !cl.isSymbol(")") {
				return nil, errAt(cl, "expected ')', found %s", cl)
			}
		}
		if fn.NeedsAttr() && agg.Attr == "" {
			return nil, errAt(fnTok, "%s needs an attribute argument", fn)
		}
		if !fn.NeedsAttr() && agg.Attr != "" {
			return nil, errAt(fnTok, "%s takes no attribute argument", fn)
		}
		out = append(out, agg)
		if c.done() {
			return out, nil
		}
		if sep := c.next(); !sep.isSymbol(",") {
			return nil, errAt(sep, "expected ',', found %s", sep)
		}
	}
}

// parseProjectItems parses "attr, out AS <expr>, ...".
func parseProjectItems(toks []token) ([]engine.ProjectItem, error) {
	c := newCursor(toks)
	var out []engine.ProjectItem
	for {
		name := c.next()
		if name.kind != tokIdent {
			return nil, errAt(name, "expected attribute name, found %s", name)
		}
		item := engine.ProjectItem{Name: name.text}
		if c.peek().isKeyword("AS") {
			c.next()
			e, err := parseExprUntilComma(c)
			if err != nil {
				return nil, err
			}
			item.Expr = e
		}
		out = append(out, item)
		if c.done() {
			return out, nil
		}
		if sep := c.next(); !sep.isSymbol(",") {
			return nil, errAt(sep, "expected ',', found %s", sep)
		}
	}
}

// parseExprUntilComma parses a region expression stopping at a top-level
// comma (project item separator).
func parseExprUntilComma(c *cursor) (expr.Node, error) {
	// Find the top-level comma bounding this expression.
	depth := 0
	end := c.pos
	for ; end < len(c.toks); end++ {
		t := c.toks[end]
		if t.isSymbol("(") {
			depth++
		}
		if t.isSymbol(")") {
			depth--
		}
		if t.isSymbol(",") && depth == 0 {
			break
		}
	}
	sub := newCursor(c.toks[c.pos:end])
	e, err := parseOr(sub)
	if err != nil {
		return nil, err
	}
	if !sub.done() {
		return nil, errAt(sub.peek(), "unexpected %s in expression", sub.peek())
	}
	c.pos = end
	return e, nil
}

// parseRegionExpr parses a whole clause as a region predicate/expression.
func parseRegionExpr(toks []token) (expr.Node, error) {
	c := newCursor(toks)
	e, err := parseOr(c)
	if err != nil {
		return nil, err
	}
	if !c.done() {
		return nil, errAt(c.peek(), "unexpected %s after expression", c.peek())
	}
	return e, nil
}

// Region expression grammar (precedence climbing):
//
//	or   := and (OR and)*
//	and  := not (AND not)*
//	not  := NOT not | cmp
//	cmp  := add ((==|!=|<|<=|>|>=) add)?
//	add  := mul ((+|-) mul)*
//	mul  := unary ((*|/) unary)*
//	unary:= - unary | primary
//	prim := number | 'string' | ident | ( or )
func parseOr(c *cursor) (expr.Node, error) {
	l, err := parseAnd(c)
	if err != nil {
		return nil, err
	}
	for c.peek().isKeyword("OR") {
		c.next()
		r, err := parseAnd(c)
		if err != nil {
			return nil, err
		}
		l = expr.Or{Left: l, Right: r}
	}
	return l, nil
}

func parseAnd(c *cursor) (expr.Node, error) {
	l, err := parseNot(c)
	if err != nil {
		return nil, err
	}
	for c.peek().isKeyword("AND") {
		c.next()
		r, err := parseNot(c)
		if err != nil {
			return nil, err
		}
		l = expr.And{Left: l, Right: r}
	}
	return l, nil
}

func parseNot(c *cursor) (expr.Node, error) {
	if c.peek().isKeyword("NOT") {
		c.next()
		inner, err := parseNot(c)
		if err != nil {
			return nil, err
		}
		return expr.Not{Inner: inner}, nil
	}
	return parseCmp(c)
}

func parseCmp(c *cursor) (expr.Node, error) {
	l, err := parseAdd(c)
	if err != nil {
		return nil, err
	}
	t := c.peek()
	var op expr.CmpOp
	switch {
	case t.isSymbol("=="):
		op = expr.CmpEq
	case t.isSymbol("!="):
		op = expr.CmpNe
	case t.isSymbol("<"):
		op = expr.CmpLt
	case t.isSymbol("<="):
		op = expr.CmpLe
	case t.isSymbol(">"):
		op = expr.CmpGt
	case t.isSymbol(">="):
		op = expr.CmpGe
	default:
		return l, nil
	}
	c.next()
	r, err := parseAdd(c)
	if err != nil {
		return nil, err
	}
	return expr.Cmp{Op: op, Left: l, Right: r}, nil
}

func parseAdd(c *cursor) (expr.Node, error) {
	l, err := parseMul(c)
	if err != nil {
		return nil, err
	}
	for {
		t := c.peek()
		var op expr.ArithOp
		switch {
		case t.isSymbol("+"):
			op = expr.OpAdd
		case t.isSymbol("-"):
			op = expr.OpSub
		default:
			return l, nil
		}
		c.next()
		r, err := parseMul(c)
		if err != nil {
			return nil, err
		}
		l = expr.Arith{Op: op, Left: l, Right: r}
	}
}

func parseMul(c *cursor) (expr.Node, error) {
	l, err := parseUnary(c)
	if err != nil {
		return nil, err
	}
	for {
		t := c.peek()
		var op expr.ArithOp
		switch {
		case t.isSymbol("*"):
			op = expr.OpMul
		case t.isSymbol("/"):
			op = expr.OpDiv
		default:
			return l, nil
		}
		c.next()
		r, err := parseUnary(c)
		if err != nil {
			return nil, err
		}
		l = expr.Arith{Op: op, Left: l, Right: r}
	}
}

func parseUnary(c *cursor) (expr.Node, error) {
	if c.peek().isSymbol("-") {
		c.next()
		inner, err := parseUnary(c)
		if err != nil {
			return nil, err
		}
		return expr.Arith{Op: expr.OpSub, Left: expr.Const{Value: gdm.Int(0)}, Right: inner}, nil
	}
	return parsePrimary(c)
}

func parsePrimary(c *cursor) (expr.Node, error) {
	t := c.next()
	switch {
	case t.kind == tokNumber:
		return numberConst(t)
	case t.kind == tokString:
		return expr.Const{Value: gdm.Str(t.text)}, nil
	case t.isKeyword("true"):
		return expr.Const{Value: gdm.Bool(true)}, nil
	case t.isKeyword("false"):
		return expr.Const{Value: gdm.Bool(false)}, nil
	case t.kind == tokIdent:
		return expr.Attr{Name: t.text}, nil
	case t.isSymbol("("):
		e, err := parseOr(c)
		if err != nil {
			return nil, err
		}
		if cl := c.next(); !cl.isSymbol(")") {
			return nil, errAt(cl, "expected ')', found %s", cl)
		}
		return e, nil
	default:
		return nil, errAt(t, "expected expression, found %s", t)
	}
}

func numberConst(t token) (expr.Node, error) {
	if !strings.ContainsAny(t.text, ".eE") {
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err == nil {
			return expr.Const{Value: gdm.Int(n)}, nil
		}
	}
	f, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return nil, errAt(t, "bad number %q", t.text)
	}
	return expr.Const{Value: gdm.Float(f)}, nil
}

// Metadata predicate grammar:
//
//	or   := and (OR and)*
//	and  := not (AND not)*
//	not  := NOT not | ( or ) | atom
//	atom := ident (==|!=|<|<=|>|>=) value | ident     (bare ident = exists)
//	value:= 'string' | number | ident
func parseMetaPredicate(toks []token) (expr.MetaPredicate, error) {
	c := newCursor(toks)
	p, err := parseMetaOr(c)
	if err != nil {
		return nil, err
	}
	if !c.done() {
		return nil, errAt(c.peek(), "unexpected %s after metadata predicate", c.peek())
	}
	return p, nil
}

func parseMetaOr(c *cursor) (expr.MetaPredicate, error) {
	l, err := parseMetaAnd(c)
	if err != nil {
		return nil, err
	}
	for c.peek().isKeyword("OR") {
		c.next()
		r, err := parseMetaAnd(c)
		if err != nil {
			return nil, err
		}
		l = expr.MetaOr{Left: l, Right: r}
	}
	return l, nil
}

func parseMetaAnd(c *cursor) (expr.MetaPredicate, error) {
	l, err := parseMetaNot(c)
	if err != nil {
		return nil, err
	}
	for c.peek().isKeyword("AND") {
		c.next()
		r, err := parseMetaNot(c)
		if err != nil {
			return nil, err
		}
		l = expr.MetaAnd{Left: l, Right: r}
	}
	return l, nil
}

func parseMetaNot(c *cursor) (expr.MetaPredicate, error) {
	t := c.peek()
	switch {
	case t.isKeyword("NOT"):
		c.next()
		inner, err := parseMetaNot(c)
		if err != nil {
			return nil, err
		}
		return expr.MetaNot{Inner: inner}, nil
	case t.isSymbol("("):
		c.next()
		inner, err := parseMetaOr(c)
		if err != nil {
			return nil, err
		}
		if cl := c.next(); !cl.isSymbol(")") {
			return nil, errAt(cl, "expected ')', found %s", cl)
		}
		return inner, nil
	default:
		return parseMetaAtom(c)
	}
}

func parseMetaAtom(c *cursor) (expr.MetaPredicate, error) {
	t := c.next()
	if t.kind != tokIdent {
		return nil, errAt(t, "expected metadata attribute, found %s", t)
	}
	opTok := c.peek()
	var op expr.CmpOp
	switch {
	case opTok.isSymbol("=="):
		op = expr.CmpEq
	case opTok.isSymbol("!="):
		op = expr.CmpNe
	case opTok.isSymbol("<"):
		op = expr.CmpLt
	case opTok.isSymbol("<="):
		op = expr.CmpLe
	case opTok.isSymbol(">"):
		op = expr.CmpGt
	case opTok.isSymbol(">="):
		op = expr.CmpGe
	default:
		// Bare attribute: existence test.
		return expr.MetaExists{Attr: t.text}, nil
	}
	c.next()
	v := c.next()
	if v.kind != tokString && v.kind != tokNumber && v.kind != tokIdent {
		return nil, errAt(v, "expected metadata value, found %s", v)
	}
	return expr.MetaCmp{Attr: t.text, Op: op, Value: v.text}, nil
}

// parseGenometric parses "DLE(1000), MD(1), UP, DGE(0), DOWN".
func parseGenometric(toks []token) (engine.GenometricPred, error) {
	c := newCursor(toks)
	var pred engine.GenometricPred
	for {
		t := c.next()
		if t.kind != tokIdent {
			return pred, errAt(t, "expected genometric clause, found %s", t)
		}
		switch strings.ToUpper(t.text) {
		case "UP", "UPSTREAM":
			pred.Stream = engine.StreamUp
		case "DOWN", "DOWNSTREAM":
			pred.Stream = engine.StreamDown
		case "DLE", "DL", "DGE", "DG", "MD":
			if op := c.next(); !op.isSymbol("(") {
				return pred, errAt(op, "expected '(', found %s", op)
			}
			neg := false
			numTok := c.next()
			if numTok.isSymbol("-") {
				neg = true
				numTok = c.next()
			}
			if numTok.kind != tokNumber {
				return pred, errAt(numTok, "expected distance, found %s", numTok)
			}
			n, err := strconv.ParseInt(numTok.text, 10, 64)
			if err != nil {
				return pred, errAt(numTok, "bad distance %q", numTok.text)
			}
			if neg {
				n = -n
			}
			if cl := c.next(); !cl.isSymbol(")") {
				return pred, errAt(cl, "expected ')', found %s", cl)
			}
			switch strings.ToUpper(t.text) {
			case "DLE":
				pred.Conds = append(pred.Conds, engine.DistCond{Op: engine.DistLE, Dist: n})
			case "DL":
				pred.Conds = append(pred.Conds, engine.DistCond{Op: engine.DistLT, Dist: n})
			case "DGE":
				pred.Conds = append(pred.Conds, engine.DistCond{Op: engine.DistGE, Dist: n})
			case "DG":
				pred.Conds = append(pred.Conds, engine.DistCond{Op: engine.DistGT, Dist: n})
			case "MD":
				if n <= 0 {
					return pred, errAt(numTok, "MD wants a positive count")
				}
				pred.MinDistK = int(n)
			}
		default:
			return pred, errAt(t, "unknown genometric clause %q", t.text)
		}
		if c.done() {
			return pred, nil
		}
		if sep := c.next(); !sep.isSymbol(",") {
			return pred, errAt(sep, "expected ',', found %s", sep)
		}
	}
}

// parseCoverBounds parses "min, max" where each bound is a number, ANY or ALL.
func parseCoverBounds(toks []token) (engine.CoverBound, engine.CoverBound, error) {
	c := newCursor(toks)
	lo, err := parseCoverBound(c)
	if err != nil {
		return lo, lo, err
	}
	if sep := c.next(); !sep.isSymbol(",") {
		return lo, lo, errAt(sep, "expected ',', found %s", sep)
	}
	hi, err := parseCoverBound(c)
	if err != nil {
		return lo, hi, err
	}
	if !c.done() {
		return lo, hi, errAt(c.peek(), "unexpected %s after bounds", c.peek())
	}
	return lo, hi, nil
}

func parseCoverBound(c *cursor) (engine.CoverBound, error) {
	t := c.next()
	switch {
	case t.isKeyword("ANY"):
		return engine.CoverBound{Kind: engine.BoundAny}, nil
	case t.isKeyword("ALL"):
		return engine.CoverBound{Kind: engine.BoundAll}, nil
	case t.kind == tokNumber:
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n < 1 {
			return engine.CoverBound{}, errAt(t, "bad accumulation bound %q", t.text)
		}
		return engine.CoverBound{Kind: engine.BoundN, N: n}, nil
	default:
		return engine.CoverBound{}, errAt(t, "expected accumulation bound, found %s", t)
	}
}
