// Package gmql implements the GenoMetric Query Language of the paper: a
// closed algebra over GDM datasets with classic relational operations
// (SELECT, PROJECT, UNION, DIFFERENCE, ORDER, GROUP, EXTEND, MERGE) and
// domain-specific ones (MAP, genometric JOIN, COVER and its variants).
//
// The package contains the textual front end — lexer, parser, semantic
// checks — and compiles scripts directly into engine plan trees, which any
// of the engine backends can run (the compiler is backend-independent, per
// Section 4.2 of the paper). A Runner executes whole scripts, materializing
// the requested variables.
package gmql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // one of = ( ) ; , : < > <= >= == != + - * /
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return t.text
	}
}

// isSymbol reports whether the token is the exact symbol s.
func (t token) isSymbol(s string) bool { return t.kind == tokSymbol && t.text == s }

// isKeyword reports whether the token is the identifier kw, case-insensitive
// (GMQL keywords are conventionally upper-case but the language is liberal).
func (t token) isKeyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// lex tokenizes a GMQL script. Comments run from '#' to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	adv := func(n int) {
		for k := 0; k < n; k++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				adv(1)
			}
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			adv(1)
		case c == '\'' || c == '"':
			quote := c
			startLine, startCol := line, col
			adv(1)
			var sb strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == quote {
					closed = true
					adv(1)
					break
				}
				if src[i] == '\n' {
					break
				}
				sb.WriteByte(src[i])
				adv(1)
			}
			if !closed {
				return nil, fmt.Errorf("gmql: line %d col %d: unterminated string", startLine, startCol)
			}
			toks = append(toks, token{tokString, sb.String(), startLine, startCol})
		case c >= '0' && c <= '9':
			startLine, startCol := line, col
			j := i
			seenDot, seenExp := false, false
			for j < len(src) {
				d := src[j]
				if d >= '0' && d <= '9' {
					j++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					// A dot is part of the number only when followed by a
					// digit (so "1..2" or "chr1.x" stay separate tokens).
					if j+1 < len(src) && src[j+1] >= '0' && src[j+1] <= '9' {
						seenDot = true
						j++
						continue
					}
					break
				}
				if (d == 'e' || d == 'E') && !seenExp && j+1 < len(src) &&
					(src[j+1] == '+' || src[j+1] == '-' || (src[j+1] >= '0' && src[j+1] <= '9')) {
					seenExp = true
					j++
					if src[j] == '+' || src[j] == '-' {
						j++
					}
					continue
				}
				break
			}
			text := src[i:j]
			adv(j - i)
			toks = append(toks, token{tokNumber, text, startLine, startCol})
		case isIdentStart(rune(c)):
			startLine, startCol := line, col
			j := i
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			text := src[i:j]
			adv(j - i)
			toks = append(toks, token{tokIdent, text, startLine, startCol})
		default:
			startLine, startCol := line, col
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=":
				adv(2)
				toks = append(toks, token{tokSymbol, two, startLine, startCol})
				continue
			}
			switch c {
			case '=', '(', ')', ';', ',', ':', '<', '>', '+', '-', '*', '/':
				adv(1)
				toks = append(toks, token{tokSymbol, string(c), startLine, startCol})
			default:
				return nil, fmt.Errorf("gmql: line %d col %d: unexpected character %q", line, col, string(c))
			}
		}
	}
	toks = append(toks, token{tokEOF, "", line, col})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

// isIdentPart accepts dots inside identifiers so prefixed attribute names
// like "right.score" and metadata names like "left.cell" lex as one token.
func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}
