package gmql

import (
	"context"
	"fmt"
	"time"

	"genogo/internal/engine"
	"genogo/internal/gdm"
	"genogo/internal/obs"
)

// Result is one materialized output of a script.
type Result struct {
	Var     string
	Target  string
	Dataset *gdm.Dataset
}

// Runner executes parsed GMQL programs against a dataset catalog. The
// execution backend (serial / batch / stream) is whatever Config selects —
// the program itself is backend-independent.
type Runner struct {
	Config  engine.Config
	Catalog engine.Catalog
	// DisableOptimizer skips the logical rewrite pass (ablation knob).
	DisableOptimizer bool
	// SlowLog, when non-nil with a positive threshold, receives a structured
	// record for every evaluated variable slower than the threshold. Enabling
	// it turns on profiling for Materialize, since the record inlines the
	// hottest spans.
	SlowLog *obs.SlowQueryLog
	// QueryID is the query's process-spanning identity (obs.NewQueryID):
	// slow-log records carry it so they correlate with /debug/queries console
	// entries and federated trace headers.
	QueryID string
	// SpanObserver, when non-nil, receives each evaluation's root span before
	// execution begins — the hook a live query registry uses to show
	// in-flight progress. Observers must read spans via obs.Span.Snapshot.
	SpanObserver func(*obs.Span)
	// Limits are the per-query resource budgets enforced by the Context
	// variants (engine.Limits semantics; the zero value disables budgets but
	// still honors cancellation).
	Limits engine.Limits
}

// KilledStatus maps an engine kill reason (engine.Killed) to the console
// status a server should record: canceled and deadline kills surface as
// StatusCanceled; budget kills are query failures.
func KilledStatus(reason string) obs.QueryStatus {
	if reason == "budget" {
		return obs.StatusFailed
	}
	return obs.StatusCanceled
}

// queryErr wraps an evaluation error, reporting governance kills to the slow
// log first: a killed query is an operational event worth a record even when
// it never crossed the slow threshold.
func (r *Runner) queryErr(name string, err error, took time.Duration) error {
	if reason, ok := engine.Killed(err); ok {
		r.SlowLog.ObserveKilled(r.QueryID, name, string(KilledStatus(reason)), reason, took)
	}
	return fmt.Errorf("gmql: evaluating %s: %w", name, err)
}

// NewRunner returns a Runner with the default parallel configuration.
func NewRunner(cat engine.Catalog) *Runner {
	return &Runner{Config: engine.DefaultConfig(), Catalog: cat}
}

// plan resolves and optimizes the plan of one variable.
func (r *Runner) plan(p *Program, name string) engine.Node {
	plan := p.Plan(name)
	if !r.DisableOptimizer {
		plan = engine.Optimize(plan)
	}
	return plan
}

// Eval evaluates one variable of the program (whether or not it is
// materialized), returning its dataset.
func (r *Runner) Eval(p *Program, name string) (*gdm.Dataset, error) {
	return r.EvalContext(context.Background(), p, name)
}

// EvalContext is Eval under lifecycle governance: evaluation stops with a
// typed error when ctx is canceled, a deadline expires, or a Limits budget
// trips.
func (r *Runner) EvalContext(ctx context.Context, p *Program, name string) (*gdm.Dataset, error) {
	start := time.Now()
	session := engine.NewSession(r.Config, r.Catalog)
	stop := session.Govern(ctx, r.Limits)
	defer stop()
	ds, err := session.Eval(r.plan(p, name))
	if err != nil {
		return nil, r.queryErr(name, err, time.Since(start))
	}
	out := ds.Clone()
	out.Name = name
	out.SortRegions()
	return out, nil
}

// EvalProfiled is Eval plus the recorded span tree of the execution — the
// EXPLAIN ANALYZE path. The root span is published to SpanObserver (when
// set) before execution starts.
func (r *Runner) EvalProfiled(p *Program, name string) (*gdm.Dataset, *obs.Span, error) {
	return r.EvalProfiledContext(context.Background(), p, name)
}

// EvalProfiledContext is EvalProfiled under lifecycle governance.
func (r *Runner) EvalProfiledContext(ctx context.Context, p *Program, name string) (*gdm.Dataset, *obs.Span, error) {
	start := time.Now()
	session := engine.NewSession(r.Config, r.Catalog)
	stop := session.Govern(ctx, r.Limits)
	defer stop()
	ds, sp, err := session.EvalProfiledLive(r.plan(p, name), r.SpanObserver)
	if err != nil {
		return nil, nil, r.queryErr(name, err, time.Since(start))
	}
	r.SlowLog.ObserveQuery(r.QueryID, name, sp)
	obs.ObserveQueryProfile(sp)
	out := ds.Clone()
	out.Name = name
	out.SortRegions()
	return out, sp, nil
}

// Materialize evaluates every MATERIALIZE statement of the program, sharing
// the work of common subplans across targets, and returns the results in
// statement order.
//
// Note the laziness of GMQL: variables that no materialized result depends
// on are never evaluated.
func (r *Runner) Materialize(p *Program) ([]Result, error) {
	return r.MaterializeContext(context.Background(), p)
}

// MaterializeContext is Materialize under lifecycle governance; one
// context/budget binding spans every target (the session's resident-byte
// budget covers the whole script, matching the shared result cache).
func (r *Runner) MaterializeContext(ctx context.Context, p *Program) ([]Result, error) {
	// Profiling is only paid when the slow-query log needs spans to report.
	results, _, err := r.materialize(ctx, p, r.SlowLog != nil && r.SlowLog.Threshold > 0)
	return results, err
}

// MaterializeProfiled is Materialize plus one span tree per materialized
// target, in statement order.
func (r *Runner) MaterializeProfiled(p *Program) ([]Result, []*obs.Span, error) {
	return r.materialize(context.Background(), p, true)
}

// MaterializeProfiledContext is MaterializeProfiled under lifecycle
// governance.
func (r *Runner) MaterializeProfiledContext(ctx context.Context, p *Program) ([]Result, []*obs.Span, error) {
	return r.materialize(ctx, p, true)
}

func (r *Runner) materialize(ctx context.Context, p *Program, profile bool) ([]Result, []*obs.Span, error) {
	if len(p.Materialized) == 0 {
		return nil, nil, fmt.Errorf("gmql: program materializes nothing")
	}
	start := time.Now()
	session := engine.NewSession(r.Config, r.Catalog)
	stop := session.Govern(ctx, r.Limits)
	defer stop()
	// Optimizing each target's plan in place keeps node identity for shared
	// subtrees, so the session cache still deduplicates their execution.
	results := make([]Result, 0, len(p.Materialized))
	var spans []*obs.Span
	for _, m := range p.Materialized {
		var ds *gdm.Dataset
		var sp *obs.Span
		var err error
		if profile {
			ds, sp, err = session.EvalProfiledLive(r.plan(p, m.Var), r.SpanObserver)
		} else {
			ds, err = session.Eval(r.plan(p, m.Var))
		}
		if err != nil {
			if reason, ok := engine.Killed(err); ok {
				r.SlowLog.ObserveKilled(r.QueryID, m.Var, string(KilledStatus(reason)), reason, time.Since(start))
			}
			return nil, nil, fmt.Errorf("gmql: materializing %s: %w", m.Var, err)
		}
		r.SlowLog.ObserveQuery(r.QueryID, m.Var, sp)
		obs.ObserveQueryProfile(sp)
		out := ds.Clone()
		out.Name = m.Target
		out.SortRegions()
		results = append(results, Result{Var: m.Var, Target: m.Target, Dataset: out})
		if profile {
			spans = append(spans, sp)
		}
	}
	return results, spans, nil
}

// Explain renders the optimized plan of a variable for debugging.
func (r *Runner) Explain(p *Program, name string) string {
	return engine.Explain(r.plan(p, name))
}
