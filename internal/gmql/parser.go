package gmql

import (
	"fmt"
	"strconv"
	"strings"

	"genogo/internal/engine"
	"genogo/internal/expr"
)

// Assign is one "VAR = OP(...) OPERANDS;" statement.
type Assign struct {
	Var  string
	Plan engine.Node
	Line int
}

// Materialize is one "MATERIALIZE VAR [INTO target];" statement.
type Materialize struct {
	Var    string
	Target string
	Line   int
}

// Program is a parsed GMQL script: an ordered list of assignments compiled
// to plan trees, plus the materialization requests.
type Program struct {
	Assignments  []Assign
	Materialized []Materialize
	vars         map[string]engine.Node
}

// Plan returns the compiled plan of a variable. Dataset names that were
// never assigned resolve to catalog scans, matching operand resolution
// inside scripts.
func (p *Program) Plan(name string) engine.Node {
	if n, ok := p.vars[name]; ok {
		return n
	}
	return &engine.Scan{Dataset: name}
}

// Parse compiles a GMQL script. Every assignment is compiled to an engine
// plan immediately, so errors carry the offending line.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prog: &Program{vars: make(map[string]engine.Node)}}
	for !p.peek().isEOF() {
		if err := p.statement(); err != nil {
			return nil, err
		}
	}
	return p.prog, nil
}

func (t token) isEOF() bool { return t.kind == tokEOF }

type parser struct {
	toks []token
	pos  int
	prog *Program
}

func (p *parser) peek() token  { return p.toks[p.pos] }
func (p *parser) peek2() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("gmql: line %d col %d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expectSymbol(s string) error {
	t := p.next()
	if !t.isSymbol(s) {
		return p.errf(t, "expected %q, found %s", s, t)
	}
	return nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.next()
	if t.kind != tokIdent {
		return t, p.errf(t, "expected identifier, found %s", t)
	}
	return t, nil
}

// statement parses one assignment or MATERIALIZE statement.
func (p *parser) statement() error {
	t := p.peek()
	if t.isKeyword("MATERIALIZE") {
		return p.materialize()
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if isReservedOp(name.text) {
		return p.errf(name, "%s is an operator name, not a variable", strings.ToUpper(name.text))
	}
	if err := p.expectSymbol("="); err != nil {
		return err
	}
	opTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	plan, err := p.operator(opTok)
	if err != nil {
		return err
	}
	if err := p.expectSymbol(";"); err != nil {
		return err
	}
	if _, dup := p.prog.vars[name.text]; dup {
		return p.errf(name, "variable %s assigned twice", name.text)
	}
	p.prog.vars[name.text] = plan
	p.prog.Assignments = append(p.prog.Assignments, Assign{Var: name.text, Plan: plan, Line: name.line})
	return nil
}

func isReservedOp(s string) bool {
	switch strings.ToUpper(s) {
	case "SELECT", "PROJECT", "EXTEND", "MERGE", "GROUP", "ORDER", "UNION",
		"DIFFERENCE", "JOIN", "MAP", "COVER", "FLAT", "SUMMIT", "HISTOGRAM",
		"MATERIALIZE":
		return true
	}
	return false
}

func (p *parser) materialize() error {
	kw := p.next() // MATERIALIZE
	v, err := p.expectIdent()
	if err != nil {
		return err
	}
	target := v.text
	if p.peek().isKeyword("INTO") {
		p.next()
		t := p.next()
		if t.kind != tokIdent && t.kind != tokString {
			return p.errf(t, "expected materialization target, found %s", t)
		}
		target = t.text
	}
	if err := p.expectSymbol(";"); err != nil {
		return err
	}
	p.prog.Materialized = append(p.prog.Materialized, Materialize{Var: v.text, Target: target, Line: kw.line})
	return nil
}

// operand resolves one operand: a previously assigned variable or a dataset
// scan.
func (p *parser) operand() (engine.Node, error) {
	t, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return p.prog.Plan(t.text), nil
}

// clauseList splits the parenthesized argument list of an operator into
// clauses at top-level semicolons. Each clause is returned as its token
// span. An empty argument list is allowed.
func (p *parser) clauseSpans() ([][]token, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var clauses [][]token
	var cur []token
	depth := 0
	for {
		t := p.peek()
		if t.isEOF() {
			return nil, p.errf(t, "unterminated operator argument list")
		}
		if t.isSymbol("(") {
			depth++
		}
		if t.isSymbol(")") {
			if depth == 0 {
				p.next()
				break
			}
			depth--
		}
		if t.isSymbol(";") && depth == 0 {
			p.next()
			clauses = append(clauses, cur)
			cur = nil
			continue
		}
		cur = append(cur, p.next())
	}
	if len(cur) > 0 || len(clauses) > 0 {
		clauses = append(clauses, cur)
	}
	return clauses, nil
}

// clause is one operator clause, possibly named ("name: tokens").
type clause struct {
	name string // "" for positional
	toks []token
}

func splitClause(span []token) clause {
	if len(span) >= 2 && span[0].kind == tokIdent && span[1].isSymbol(":") {
		return clause{name: strings.ToLower(span[0].text), toks: span[2:]}
	}
	return clause{toks: span}
}

// operator dispatches on the operator keyword and parses its clauses and
// operands into a plan node.
func (p *parser) operator(opTok token) (engine.Node, error) {
	op := strings.ToUpper(opTok.text)
	spans, err := p.clauseSpans()
	if err != nil {
		return nil, err
	}
	clauses := make([]clause, 0, len(spans))
	for _, s := range spans {
		clauses = append(clauses, splitClause(s))
	}
	switch op {
	case "SELECT":
		return p.selectOp(opTok, clauses)
	case "PROJECT":
		return p.projectOp(opTok, clauses)
	case "EXTEND":
		return p.extendOp(opTok, clauses)
	case "MERGE":
		return p.mergeOp(opTok, clauses)
	case "GROUP":
		return p.groupOp(opTok, clauses)
	case "ORDER":
		return p.orderOp(opTok, clauses)
	case "UNION":
		return p.unionOp(opTok, clauses)
	case "DIFFERENCE":
		return p.differenceOp(opTok, clauses)
	case "JOIN":
		return p.joinOp(opTok, clauses)
	case "MAP":
		return p.mapOp(opTok, clauses)
	case "COVER", "FLAT", "SUMMIT", "HISTOGRAM":
		return p.coverOp(opTok, op, clauses)
	default:
		return nil, p.errf(opTok, "unknown operator %s", opTok.text)
	}
}

func (p *parser) selectOp(opTok token, clauses []clause) (engine.Node, error) {
	var meta expr.MetaPredicate
	var region expr.Node
	var semi *engine.SemiJoin
	for _, c := range clauses {
		switch c.name {
		case "":
			if len(c.toks) == 0 {
				continue
			}
			m, err := parseMetaPredicate(c.toks)
			if err != nil {
				return nil, err
			}
			meta = m
		case "region":
			r, err := parseRegionExpr(c.toks)
			if err != nil {
				return nil, err
			}
			region = r
		case "semijoin":
			sj, err := p.parseSemiJoin(c.toks)
			if err != nil {
				return nil, err
			}
			semi = sj
		default:
			return nil, p.errf(opTok, "SELECT: unknown clause %q", c.name)
		}
	}
	in, err := p.operand()
	if err != nil {
		return nil, err
	}
	return &engine.SelectOp{Input: in, Meta: meta, Region: region, SemiJoin: semi}, nil
}

// parseSemiJoin parses "attr1, attr2 [NOT] IN DATASET".
func (p *parser) parseSemiJoin(toks []token) (*engine.SemiJoin, error) {
	c := newCursor(toks)
	sj := &engine.SemiJoin{}
	for {
		t := c.next()
		if t.kind != tokIdent {
			return nil, errAt(t, "semijoin: expected attribute name, found %s", t)
		}
		sj.Attrs = append(sj.Attrs, t.text)
		sep := c.next()
		switch {
		case sep.isSymbol(","):
			continue
		case sep.isKeyword("NOT"):
			sj.Negated = true
			sep = c.next()
			if !sep.isKeyword("IN") {
				return nil, errAt(sep, "semijoin: expected IN after NOT, found %s", sep)
			}
		case sep.isKeyword("IN"):
		default:
			return nil, errAt(sep, "semijoin: expected ',', IN or NOT IN, found %s", sep)
		}
		break
	}
	ext := c.next()
	if ext.kind != tokIdent {
		return nil, errAt(ext, "semijoin: expected external dataset, found %s", ext)
	}
	if !c.done() {
		return nil, errAt(c.peek(), "semijoin: unexpected %s", c.peek())
	}
	sj.External = p.prog.Plan(ext.text)
	return sj, nil
}

func (p *parser) projectOp(opTok token, clauses []clause) (engine.Node, error) {
	args := engine.ProjectArgs{}
	for _, c := range clauses {
		switch c.name {
		case "region", "":
			if len(c.toks) == 0 {
				continue
			}
			items, err := parseProjectItems(c.toks)
			if err != nil {
				return nil, err
			}
			args.Regions = items
		case "metadata":
			names, err := identList(c.toks)
			if err != nil {
				return nil, err
			}
			args.MetaKeep = names
		default:
			return nil, p.errf(opTok, "PROJECT: unknown clause %q", c.name)
		}
	}
	in, err := p.operand()
	if err != nil {
		return nil, err
	}
	return &engine.ProjectOp{Input: in, Args: args}, nil
}

func (p *parser) extendOp(opTok token, clauses []clause) (engine.Node, error) {
	if len(clauses) != 1 || clauses[0].name != "" {
		return nil, p.errf(opTok, "EXTEND takes one aggregate list")
	}
	aggs, err := parseAggList(clauses[0].toks)
	if err != nil {
		return nil, err
	}
	in, err := p.operand()
	if err != nil {
		return nil, err
	}
	return &engine.ExtendOp{Input: in, Aggs: aggs}, nil
}

func (p *parser) mergeOp(opTok token, clauses []clause) (engine.Node, error) {
	var groupBy []string
	for _, c := range clauses {
		switch c.name {
		case "groupby":
			names, err := identList(c.toks)
			if err != nil {
				return nil, err
			}
			groupBy = names
		case "":
			if len(c.toks) != 0 {
				return nil, p.errf(opTok, "MERGE takes only a groupby clause")
			}
		default:
			return nil, p.errf(opTok, "MERGE: unknown clause %q", c.name)
		}
	}
	in, err := p.operand()
	if err != nil {
		return nil, err
	}
	return &engine.MergeOp{Input: in, GroupBy: groupBy}, nil
}

func (p *parser) groupOp(opTok token, clauses []clause) (engine.Node, error) {
	args := engine.GroupArgs{}
	positional := 0
	for _, c := range clauses {
		switch {
		case c.name == "" && positional == 0:
			names, err := identList(c.toks)
			if err != nil {
				return nil, err
			}
			args.By = names
			positional++
		case c.name == "" && positional == 1:
			aggs, err := parseAggList(c.toks)
			if err != nil {
				return nil, err
			}
			args.MetaAggs = aggs
			positional++
		case c.name == "region_aggregate":
			aggs, err := parseAggList(c.toks)
			if err != nil {
				return nil, err
			}
			args.RegionAggs = aggs
		default:
			return nil, p.errf(opTok, "GROUP takes group attributes, an optional aggregate list and an optional region_aggregate clause")
		}
	}
	in, err := p.operand()
	if err != nil {
		return nil, err
	}
	return &engine.GroupOp{Input: in, Args: args}, nil
}

func (p *parser) orderOp(opTok token, clauses []clause) (engine.Node, error) {
	args := engine.OrderArgs{}
	for _, c := range clauses {
		switch c.name {
		case "":
			keys, err := parseOrderKeys(c.toks)
			if err != nil {
				return nil, err
			}
			args.Keys = keys
		case "top":
			if len(c.toks) != 1 || c.toks[0].kind != tokNumber {
				return nil, p.errf(opTok, "ORDER: top wants a number")
			}
			n, err := strconv.Atoi(c.toks[0].text)
			if err != nil || n < 0 {
				return nil, p.errf(c.toks[0], "ORDER: bad top %q", c.toks[0].text)
			}
			args.Top = n
		case "region_order":
			keys, err := parseOrderKeys(c.toks)
			if err != nil {
				return nil, err
			}
			args.RegionKeys = keys
		case "region_top":
			if len(c.toks) != 1 || c.toks[0].kind != tokNumber {
				return nil, p.errf(opTok, "ORDER: region_top wants a number")
			}
			n, err := strconv.Atoi(c.toks[0].text)
			if err != nil || n < 0 {
				return nil, p.errf(c.toks[0], "ORDER: bad region_top %q", c.toks[0].text)
			}
			args.RegionTop = n
		default:
			return nil, p.errf(opTok, "ORDER: unknown clause %q", c.name)
		}
	}
	if len(args.Keys) == 0 && len(args.RegionKeys) == 0 {
		return nil, p.errf(opTok, "ORDER needs at least one sort key")
	}
	if args.RegionTop > 0 && len(args.RegionKeys) == 0 {
		return nil, p.errf(opTok, "ORDER: region_top needs region_order keys")
	}
	in, err := p.operand()
	if err != nil {
		return nil, err
	}
	return &engine.OrderOp{Input: in, Args: args}, nil
}

func (p *parser) unionOp(opTok token, clauses []clause) (engine.Node, error) {
	for _, c := range clauses {
		if c.name != "" || len(c.toks) != 0 {
			return nil, p.errf(opTok, "UNION takes no arguments")
		}
	}
	l, err := p.operand()
	if err != nil {
		return nil, err
	}
	r, err := p.operand()
	if err != nil {
		return nil, err
	}
	return &engine.UnionOp{Left: l, Right: r}, nil
}

func (p *parser) differenceOp(opTok token, clauses []clause) (engine.Node, error) {
	args := engine.DifferenceArgs{}
	for _, c := range clauses {
		switch c.name {
		case "joinby":
			names, err := identList(c.toks)
			if err != nil {
				return nil, err
			}
			args.JoinBy = names
		case "exact":
			if len(c.toks) != 1 || !(c.toks[0].isKeyword("true") || c.toks[0].isKeyword("false")) {
				return nil, p.errf(opTok, "DIFFERENCE: exact wants true or false")
			}
			args.Exact = c.toks[0].isKeyword("true")
		case "":
			if len(c.toks) != 0 {
				return nil, p.errf(opTok, "DIFFERENCE: unexpected positional clause")
			}
		default:
			return nil, p.errf(opTok, "DIFFERENCE: unknown clause %q", c.name)
		}
	}
	l, err := p.operand()
	if err != nil {
		return nil, err
	}
	r, err := p.operand()
	if err != nil {
		return nil, err
	}
	return &engine.DifferenceOp{Left: l, Right: r, Args: args}, nil
}

func (p *parser) mapOp(opTok token, clauses []clause) (engine.Node, error) {
	args := engine.MapArgs{}
	for _, c := range clauses {
		switch c.name {
		case "":
			if len(c.toks) == 0 {
				continue
			}
			aggs, err := parseAggList(c.toks)
			if err != nil {
				return nil, err
			}
			args.Aggs = aggs
		case "joinby":
			names, err := identList(c.toks)
			if err != nil {
				return nil, err
			}
			args.JoinBy = names
		default:
			return nil, p.errf(opTok, "MAP: unknown clause %q", c.name)
		}
	}
	ref, err := p.operand()
	if err != nil {
		return nil, err
	}
	exp, err := p.operand()
	if err != nil {
		return nil, err
	}
	return &engine.MapOp{Ref: ref, Exp: exp, Args: args}, nil
}

func (p *parser) joinOp(opTok token, clauses []clause) (engine.Node, error) {
	args := engine.JoinArgs{Output: engine.OutCat}
	for _, c := range clauses {
		switch c.name {
		case "":
			if len(c.toks) == 0 {
				continue
			}
			pred, err := parseGenometric(c.toks)
			if err != nil {
				return nil, err
			}
			args.Pred = pred
		case "output":
			if len(c.toks) != 1 || c.toks[0].kind != tokIdent {
				return nil, p.errf(opTok, "JOIN: output wants INT, LEFT, RIGHT or CAT")
			}
			switch strings.ToUpper(c.toks[0].text) {
			case "INT":
				args.Output = engine.OutInt
			case "LEFT":
				args.Output = engine.OutLeft
			case "RIGHT":
				args.Output = engine.OutRight
			case "CAT", "CONTIG":
				args.Output = engine.OutCat
			default:
				return nil, p.errf(c.toks[0], "JOIN: unknown output %q", c.toks[0].text)
			}
		case "joinby":
			names, err := identList(c.toks)
			if err != nil {
				return nil, err
			}
			args.JoinBy = names
		default:
			return nil, p.errf(opTok, "JOIN: unknown clause %q", c.name)
		}
	}
	if len(args.Pred.Conds) == 0 && args.Pred.MinDistK == 0 {
		return nil, p.errf(opTok, "JOIN needs a genometric predicate (e.g. DLE(1000) or MD(1))")
	}
	l, err := p.operand()
	if err != nil {
		return nil, err
	}
	r, err := p.operand()
	if err != nil {
		return nil, err
	}
	return &engine.JoinOp{Left: l, Right: r, Args: args}, nil
}

func (p *parser) coverOp(opTok token, variant string, clauses []clause) (engine.Node, error) {
	args := engine.CoverArgs{}
	switch variant {
	case "COVER":
		args.Variant = engine.CoverStandard
	case "FLAT":
		args.Variant = engine.CoverFlat
	case "SUMMIT":
		args.Variant = engine.CoverSummit
	case "HISTOGRAM":
		args.Variant = engine.CoverHistogram
	}
	boundsSeen := false
	for _, c := range clauses {
		switch c.name {
		case "":
			lo, hi, err := parseCoverBounds(c.toks)
			if err != nil {
				return nil, err
			}
			args.Min, args.Max = lo, hi
			boundsSeen = true
		case "groupby":
			names, err := identList(c.toks)
			if err != nil {
				return nil, err
			}
			args.GroupBy = names
		case "aggregate":
			aggs, err := parseAggList(c.toks)
			if err != nil {
				return nil, err
			}
			args.Aggs = aggs
		default:
			return nil, p.errf(opTok, "%s: unknown clause %q", variant, c.name)
		}
	}
	if !boundsSeen {
		return nil, p.errf(opTok, "%s needs accumulation bounds, e.g. %s(2, ANY)", variant, variant)
	}
	in, err := p.operand()
	if err != nil {
		return nil, err
	}
	return &engine.CoverOp{Input: in, Args: args}, nil
}
