package gmql

import (
	"fmt"
	"testing"

	"genogo/internal/engine"
	"genogo/internal/gdm"
)

// goldenCatalog is a fully hand-computed fixture so every expected value
// below can be verified by inspection.
//
// REFS (one sample "windows", schema: name string):
//
//	chr1 [0,100)   W1
//	chr1 [200,300) W2
//	chr2 [0,100)   W3
//
// EXPS (schema: v float):
//
//	e1 (cell=A, quality=7): chr1 [10,20) v=1; chr1 [50,120) v=2; chr1 [210,220) v=3
//	e2 (cell=B, quality=9): chr1 [90,205) v=4; chr2 [10,30) v=5
//	e3 (cell=A, quality=2): chr2 [40,60) v=6
func goldenCatalog(t *testing.T) engine.MapCatalog {
	t.Helper()
	refSchema := gdm.MustSchema(gdm.Field{Name: "name", Type: gdm.KindString})
	refs := gdm.NewDataset("REFS", refSchema)
	w := gdm.NewSample("windows")
	w.Meta.Add("annType", "window")
	w.AddRegion(gdm.NewRegion("chr1", 0, 100, gdm.StrandNone, gdm.Str("W1")))
	w.AddRegion(gdm.NewRegion("chr1", 200, 300, gdm.StrandNone, gdm.Str("W2")))
	w.AddRegion(gdm.NewRegion("chr2", 0, 100, gdm.StrandNone, gdm.Str("W3")))
	refs.MustAdd(w)

	expSchema := gdm.MustSchema(gdm.Field{Name: "v", Type: gdm.KindFloat})
	exps := gdm.NewDataset("EXPS", expSchema)
	mk := func(id, cell string, quality int, regions ...[3]int64) {
		s := gdm.NewSample(id)
		s.Meta.Add("cell", cell)
		s.Meta.Add("quality", fmt.Sprint(quality))
		for _, r := range regions {
			chrom := "chr1"
			if r[2] < 0 {
				chrom = "chr2"
				r[2] = -r[2]
			}
			s.AddRegion(gdm.NewRegion(chrom, r[0], r[1], gdm.StrandNone, gdm.Float(float64(r[2]))))
		}
		s.SortRegions()
		exps.MustAdd(s)
	}
	mk("e1", "A", 7, [3]int64{10, 20, 1}, [3]int64{50, 120, 2}, [3]int64{210, 220, 3})
	mk("e2", "B", 9, [3]int64{90, 205, 4}, [3]int64{10, 30, -5})
	mk("e3", "A", 2, [3]int64{40, 60, -6})
	return engine.MapCatalog{"REFS": refs, "EXPS": exps}
}

// golden is one end-to-end case: a script, the target, and checks.
type golden struct {
	name    string
	script  string
	samples int
	regions int
	check   func(t *testing.T, ds *gdm.Dataset)
}

func TestGoldenQueries(t *testing.T) {
	cases := []golden{
		{
			name: "map-counts",
			script: `
R = MAP(n AS COUNT, total AS SUM(v)) REFS EXPS;
MATERIALIZE R;`,
			samples: 3, // 1 ref sample x 3 exp samples
			regions: 9, // 3 windows each
			check: func(t *testing.T, ds *gdm.Dataset) {
				ni, _ := ds.Schema.Index("n")
				ti, _ := ds.Schema.Index("total")
				// Hand-computed counts per (exp, window):
				// e1: W1={[10,20),[50,120)}=2 W2={[210,220)}=1 W3=0
				// e2: W1={[90,205)}=1 W2={[90,205)}=1 W3={[10,30)}=1
				// e3: W1=0 W2=0 W3={[40,60)}=1
				want := map[string][3]int64{
					"e1": {2, 1, 0}, "e2": {1, 1, 1}, "e3": {0, 0, 1},
				}
				wantSum := map[string][3]float64{
					"e1": {3, 3, 0}, "e2": {4, 4, 5}, "e3": {0, 0, 6},
				}
				for _, s := range ds.Samples {
					for exp, counts := range want {
						if !s.Meta.Matches("right.cell", "A") && !s.Meta.Matches("right.cell", "B") {
							t.Fatalf("no provenance on %s", s.ID)
						}
						_ = exp
						_ = counts
					}
				}
				// Identify output samples via their quality metadata.
				byQuality := map[string]*gdm.Sample{}
				for _, s := range ds.Samples {
					byQuality[s.Meta.First("right.quality")] = s
				}
				for exp, q := range map[string]string{"e1": "7", "e2": "9", "e3": "2"} {
					s := byQuality[q]
					if s == nil {
						t.Fatalf("output for %s missing", exp)
					}
					for wi := 0; wi < 3; wi++ {
						if got := s.Regions[wi].Values[ni].Int(); got != want[exp][wi] {
							t.Errorf("%s window %d count = %d, want %d", exp, wi, got, want[exp][wi])
						}
						gotSum := s.Regions[wi].Values[ti]
						if want[exp][wi] == 0 {
							if !gotSum.IsNull() {
								t.Errorf("%s window %d sum = %v, want NULL", exp, wi, gotSum)
							}
						} else if gotSum.Float() != wantSum[exp][wi] {
							t.Errorf("%s window %d sum = %v, want %v", exp, wi, gotSum, wantSum[exp][wi])
						}
					}
				}
			},
		},
		{
			name: "cover-histogram",
			script: `
H = HISTOGRAM(1, ANY) EXPS;
MATERIALIZE H;`,
			samples: 1,
			// chr1 segments: [10,20)@1 [50,90)@1 [90,120)@2 [120,205)@1
			//   [210,220)@1 — but [50,120) and [90,205) overlap in [90,120).
			// chr2: [10,30)@1 [40,60)@1.
			regions: 7,
			check: func(t *testing.T, ds *gdm.Dataset) {
				var deep int64
				for _, r := range ds.Samples[0].Regions {
					if r.Values[0].Int() == 2 {
						deep++
						if r.Start != 90 || r.Stop != 120 {
							t.Errorf("depth-2 segment = %v", r)
						}
					}
				}
				if deep != 1 {
					t.Errorf("depth-2 segments = %d", deep)
				}
			},
		},
		{
			name: "join-genometric",
			script: `
J = JOIN(DGE(1), DLE(100); output: CAT) REFS EXPS;
MATERIALIZE J;`,
			samples: 3,
			// Pairs with 1 <= distance <= 100:
			// e1: W1-[210..)? no (W1 ends 100, [210,220) dist 110) ;
			//     W2-[10,20) dist 180 no; W2-[50,120) dist 80 yes;
			//     W1-[50,120)? overlaps (dist<0) no; W1-[10,20) overlap no;
			//     W2-[210,220) overlap no.
			// e2: W1-[90,205)? overlap no; W2-[90,205) overlap no;
			//     W3-[10,30) overlap no.
			// e3: W3-[40,60) overlap no.
			regions: 1,
			check: func(t *testing.T, ds *gdm.Dataset) {
				var all []gdm.Region
				for _, s := range ds.Samples {
					all = append(all, s.Regions...)
				}
				if len(all) != 1 {
					t.Fatalf("joined regions = %v", all)
				}
				// CAT of W2 [200,300) and [50,120): [50,300).
				if all[0].Start != 50 || all[0].Stop != 300 {
					t.Errorf("contig = %v", all[0])
				}
			},
		},
		{
			name: "difference-union-roundtrip",
			script: `
U = UNION() EXPS EXPS;
D = DIFFERENCE() U EXPS;
MATERIALIZE D;`,
			samples: 6,
			regions: 0, // every region overlaps itself in the negative set
			check:   func(t *testing.T, ds *gdm.Dataset) {},
		},
		{
			name: "group-order-pipeline",
			script: `
G = GROUP(cell; n AS COUNTSAMP) EXPS;
O = ORDER(n DESC, quality DESC; top: 1) G;
MATERIALIZE O;`,
			samples: 1,
			regions: 3,
			check: func(t *testing.T, ds *gdm.Dataset) {
				// Group A has 2 samples; within A, e1 has quality 7 > 2.
				s := ds.Samples[0]
				if !s.Meta.Matches("cell", "A") || s.Meta.First("quality") != "7" {
					t.Errorf("top sample meta = %v", s.Meta.Pairs())
				}
				if s.Meta.First("_order") != "1" {
					t.Errorf("_order = %q", s.Meta.First("_order"))
				}
			},
		},
		{
			name: "project-computed",
			script: `
P = PROJECT(region: v, double AS v * 2, len AS right - left) EXPS;
MATERIALIZE P;`,
			samples: 3,
			regions: 6,
			check: func(t *testing.T, ds *gdm.Dataset) {
				di, _ := ds.Schema.Index("double")
				vi, _ := ds.Schema.Index("v")
				li, _ := ds.Schema.Index("len")
				for _, s := range ds.Samples {
					for _, r := range s.Regions {
						if r.Values[di].Float() != 2*r.Values[vi].Float() {
							t.Errorf("double = %v for v = %v", r.Values[di], r.Values[vi])
						}
						if int64(r.Values[li].Float()) != r.Length() {
							t.Errorf("len = %v for %v", r.Values[li], r)
						}
					}
				}
			},
		},
		{
			name: "merge-extend",
			script: `
M = MERGE() EXPS;
E = EXTEND(n AS COUNT, best AS MAX(v)) M;
MATERIALIZE E;`,
			samples: 1,
			regions: 6,
			check: func(t *testing.T, ds *gdm.Dataset) {
				s := ds.Samples[0]
				if s.Meta.First("n") != "6" || s.Meta.First("best") != "6" {
					t.Errorf("meta = %v", s.Meta.Pairs())
				}
			},
		},
	}
	cat := goldenCatalog(t)
	for _, c := range cases {
		for _, mode := range []engine.Mode{engine.ModeSerial, engine.ModeBatch, engine.ModeStream} {
			t.Run(fmt.Sprintf("%s/%s", c.name, mode), func(t *testing.T) {
				prog, err := Parse(c.script)
				if err != nil {
					t.Fatal(err)
				}
				r := &Runner{Config: engine.Config{Mode: mode, Workers: 2, MetaFirst: true}, Catalog: cat}
				results, err := r.Materialize(prog)
				if err != nil {
					t.Fatal(err)
				}
				ds := results[0].Dataset
				if len(ds.Samples) != c.samples {
					t.Fatalf("samples = %d, want %d", len(ds.Samples), c.samples)
				}
				if ds.NumRegions() != c.regions {
					t.Fatalf("regions = %d, want %d", ds.NumRegions(), c.regions)
				}
				if err := ds.Validate(); err != nil {
					t.Fatal(err)
				}
				c.check(t, ds)
			})
		}
	}
}
