package gmql

import (
	"strings"
	"testing"

	"genogo/internal/engine"
	"genogo/internal/gdm"
)

// testCatalog builds the in-memory catalog used throughout the tests: a
// small ANNOTATIONS dataset and a small ENCODE dataset mirroring the
// paper's Section 2 setting.
func testCatalog(t *testing.T) engine.MapCatalog {
	t.Helper()
	annSchema := gdm.MustSchema(gdm.Field{Name: "name", Type: gdm.KindString})
	ann := gdm.NewDataset("ANNOTATIONS", annSchema)
	proms := gdm.NewSample("proms")
	proms.Meta.Add("annType", "promoter")
	proms.AddRegion(gdm.NewRegion("chr1", 0, 1000, gdm.StrandNone, gdm.Str("P1")))
	proms.AddRegion(gdm.NewRegion("chr1", 5000, 6000, gdm.StrandNone, gdm.Str("P2")))
	proms.SortRegions()
	ann.MustAdd(proms)
	genes := gdm.NewSample("genes")
	genes.Meta.Add("annType", "gene")
	genes.AddRegion(gdm.NewRegion("chr1", 100, 9000, gdm.StrandPlus, gdm.Str("G1")))
	ann.MustAdd(genes)

	encSchema := gdm.MustSchema(
		gdm.Field{Name: "p_value", Type: gdm.KindFloat},
		gdm.Field{Name: "signal", Type: gdm.KindFloat},
	)
	enc := gdm.NewDataset("ENCODE", encSchema)
	mk := func(id, dtype, cell string, regions ...[3]int64) {
		s := gdm.NewSample(id)
		s.Meta.Add("dataType", dtype)
		s.Meta.Add("cell", cell)
		for i, r := range regions {
			s.AddRegion(gdm.NewRegion("chr1", r[0], r[1], gdm.StrandNone,
				gdm.Float(0.01), gdm.Float(float64(r[2]+int64(i)))))
		}
		s.SortRegions()
		enc.MustAdd(s)
	}
	mk("chip1", "ChipSeq", "HeLa", [3]int64{100, 200, 5}, [3]int64{5100, 5200, 7}, [3]int64{5150, 5250, 9})
	mk("chip2", "ChipSeq", "K562", [3]int64{900, 1100, 3})
	mk("rna1", "RnaSeq", "HeLa", [3]int64{0, 50, 1})
	return engine.MapCatalog{"ANNOTATIONS": ann, "ENCODE": enc}
}

// headline is the exact query of Section 2 of the paper.
const headline = `
# The paper's Section 2 example.
PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;
MATERIALIZE RESULT INTO result;
`

func TestHeadlineQuery(t *testing.T) {
	prog, err := Parse(headline)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Assignments) != 3 || len(prog.Materialized) != 1 {
		t.Fatalf("assignments=%d materialized=%d", len(prog.Assignments), len(prog.Materialized))
	}
	r := NewRunner(testCatalog(t))
	results, err := r.Materialize(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Target != "result" {
		t.Fatalf("results = %+v", results)
	}
	ds := results[0].Dataset
	// One output sample per ChipSeq sample (2), each with both promoters.
	if len(ds.Samples) != 2 {
		t.Fatalf("samples = %d", len(ds.Samples))
	}
	ci, ok := ds.Schema.Index("peak_count")
	if !ok {
		t.Fatalf("schema = %s", ds.Schema)
	}
	total := int64(0)
	for _, s := range ds.Samples {
		if len(s.Regions) != 2 {
			t.Fatalf("sample %s regions = %d", s.ID, len(s.Regions))
		}
		for _, reg := range s.Regions {
			total += reg.Values[ci].Int()
		}
	}
	// chip1: P1 gets 1 peak, P2 gets 2. chip2: P1 gets 1 (900-1100 overlap).
	if total != 4 {
		t.Errorf("total mapped peaks = %d, want 4", total)
	}
}

func TestAllBackendsAgreeOnScript(t *testing.T) {
	prog, err := Parse(headline)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t)
	var ref *gdm.Dataset
	for _, mode := range []engine.Mode{engine.ModeSerial, engine.ModeBatch, engine.ModeStream} {
		r := &Runner{Config: engine.Config{Mode: mode, Workers: 3, MetaFirst: true}, Catalog: cat}
		results, err := r.Materialize(prog)
		if err != nil {
			t.Fatal(err)
		}
		ds := results[0].Dataset
		if ref == nil {
			ref = ds
			continue
		}
		if len(ds.Samples) != len(ref.Samples) || ds.NumRegions() != ref.NumRegions() {
			t.Errorf("mode %s disagrees: %s vs %s", mode, ds, ref)
		}
	}
}

func TestParseAllOperators(t *testing.T) {
	src := `
S = SELECT(cell == 'HeLa' AND NOT dataType == 'RnaSeq'; region: p_value < 0.05 AND signal > 2) ENCODE;
P = PROJECT(region: signal, len AS right - left; metadata: cell) S;
E = EXTEND(n AS COUNT, top AS MAX(signal)) P;
M = MERGE(groupby: cell) E;
G = GROUP(cell; ns AS COUNTSAMP) E;
O = ORDER(n DESC, cell ASC; top: 3) E;
U = UNION() S ENCODE;
D = DIFFERENCE(joinby: cell; exact: false) S ENCODE;
J = JOIN(DLE(1000), DGE(0), MD(2), UP; output: LEFT; joinby: cell) S ENCODE;
MP = MAP(n AS COUNT, avg AS AVG(signal); joinby: cell) S ENCODE;
C = COVER(2, ANY) ENCODE;
F = FLAT(1, ALL; groupby: cell) ENCODE;
SU = SUMMIT(2, 3) ENCODE;
H = HISTOGRAM(1, ANY) ENCODE;
MATERIALIZE C;
MATERIALIZE J INTO 'joined/output';
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Assignments) != 14 {
		t.Fatalf("assignments = %d", len(prog.Assignments))
	}
	if prog.Materialized[1].Target != "joined/output" {
		t.Errorf("target = %q", prog.Materialized[1].Target)
	}
	// Every assignment must explain without panicking.
	for _, a := range prog.Assignments {
		if engine.Explain(a.Plan) == "" {
			t.Errorf("empty explain for %s", a.Var)
		}
	}
	// And the whole program must actually run.
	r := NewRunner(testCatalog(t))
	if _, err := r.Materialize(prog); err != nil {
		t.Fatalf("materialize: %v", err)
	}
}

func TestEvalUnmaterializedVariable(t *testing.T) {
	prog, err := Parse(`X = SELECT(dataType == 'RnaSeq') ENCODE;`)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(testCatalog(t))
	ds, err := r.Eval(prog, "X")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Samples) != 1 || ds.Samples[0].ID != "rna1" {
		t.Errorf("samples = %v", ds.Samples)
	}
	if ds.Name != "X" {
		t.Errorf("name = %q", ds.Name)
	}
	// Materializing a program with no MATERIALIZE fails.
	if _, err := r.Materialize(prog); err == nil {
		t.Error("empty materialize accepted")
	}
}

func TestLazyEvaluation(t *testing.T) {
	// BAD references a dataset that does not exist, but nothing
	// materialized depends on it, so the program must still succeed.
	src := `
BAD = SELECT() NO_SUCH_DATASET;
OK = SELECT(dataType == 'ChipSeq') ENCODE;
MATERIALIZE OK;
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(testCatalog(t))
	results, err := r.Materialize(prog)
	if err != nil {
		t.Fatalf("lazy evaluation broken: %v", err)
	}
	if len(results[0].Dataset.Samples) != 2 {
		t.Errorf("samples = %d", len(results[0].Dataset.Samples))
	}
}

func TestSharedSubplanEvaluatedOnce(t *testing.T) {
	src := `
BASE = SELECT(dataType == 'ChipSeq') ENCODE;
A = EXTEND(n AS COUNT) BASE;
B = MERGE() BASE;
MATERIALIZE A;
MATERIALIZE B;
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Identity: both plans must reference the same BASE node pointer, so a
	// session evaluates it once.
	aPlan := prog.Plan("A").(*engine.ExtendOp)
	bPlan := prog.Plan("B").(*engine.MergeOp)
	if aPlan.Input != bPlan.Input {
		t.Error("shared variable compiled to distinct nodes")
	}
	r := NewRunner(testCatalog(t))
	if _, err := r.Materialize(prog); err != nil {
		t.Fatal(err)
	}
}

func TestRunnerExplain(t *testing.T) {
	prog, err := Parse(headline)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(testCatalog(t))
	text := r.Explain(prog, "RESULT")
	for _, frag := range []string{"MAP", "SELECT", "SCAN ANNOTATIONS", "SCAN ENCODE"} {
		if !strings.Contains(text, frag) {
			t.Errorf("explain missing %q:\n%s", frag, text)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string // expected error fragment
	}{
		{"X = ;", "expected identifier"},
		{"X = FROBNICATE() A;", "unknown operator"},
		{"SELECT = SELECT() A;", "operator name"},
		{"X = SELECT() A; X = SELECT() B;", "assigned twice"},
		{"X = SELECT(cell == ) A;", "expected metadata value"},
		{"X = SELECT(; region: p_value <) A;", "expected expression"},
		{"X = SELECT(; quux: 1) A;", "unknown clause"},
		{"X = SELECT() A", "expected \";\""},
		{"X = SELECT(", "unterminated"},
		{"X = JOIN() A B;", "genometric predicate"},
		{"X = JOIN(DLE(x)) A B;", "expected distance"},
		{"X = JOIN(DLE(5); output: SIDEWAYS) A B;", "unknown output"},
		{"X = JOIN(MD(0)) A B;", "positive count"},
		{"X = JOIN(WOBBLE(3)) A B;", "unknown genometric clause"},
		{"X = COVER(2) A;", "expected ','"},
		{"X = COVER() A;", "accumulation bounds"},
		{"X = COVER(0, ANY) A;", "bad accumulation bound"},
		{"X = ORDER() A;", "sort key"},
		{"X = ORDER(a; top: x) A;", "top wants a number"},
		{"X = EXTEND(n AS FROB) A;", "unknown aggregate"},
		{"X = EXTEND(n AS SUM) A;", "needs an attribute"},
		{"X = EXTEND(n AS COUNT(x)) A;", "takes no attribute"},
		{"X = UNION(oops) A B;", "takes no arguments"},
		{"X = DIFFERENCE(exact: maybe) A B;", "true or false"},
		{"X = MAP(n AS COUNT) A;", "expected identifier"},
		{"MATERIALIZE ;", "expected identifier"},
		{"MATERIALIZE X INTO ;", "materialization target"},
		{"X = SELECT('unclosed) A;", "unterminated string"},
		{"X = SELECT() A; @", "unexpected character"},
		{"X = GROUP(a; n AS COUNT; extra: 1) A;", "GROUP takes"},
		{"X = MERGE(stuff) A;", "MERGE takes"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q) error %q does not mention %q", c.src, err, c.frag)
		}
	}
}

func TestParseErrorsCarryLineNumbers(t *testing.T) {
	_, err := Parse("A = SELECT() X;\nB = BOGUS() Y;\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v", err)
	}
}

func TestRegionExpressionPrecedence(t *testing.T) {
	src := `X = SELECT(; region: signal + 2 * 3 == 11 OR (signal > 100 AND p_value < 1)) ENCODE;`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sel := prog.Plan("X").(*engine.SelectOp)
	text := sel.Region.String()
	// 2*3 binds tighter than +; AND binds tighter than OR.
	if !strings.Contains(text, "(2 * 3)") {
		t.Errorf("precedence wrong: %s", text)
	}
	// Evaluate: chip1 has signal 5 at the first region -> 5+6 == 11 keeps it.
	r := NewRunner(testCatalog(t))
	ds, err := r.Eval(prog, "X")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range ds.Samples {
		for _, reg := range s.Regions {
			if reg.Start == 100 {
				found = true
			}
		}
	}
	if !found {
		t.Error("region with signal 5 not selected (arith precedence broken?)")
	}
}

func TestMetaPredicateForms(t *testing.T) {
	cases := []struct {
		pred string
		want []string // sample IDs selected from ENCODE
	}{
		{"dataType == 'ChipSeq'", []string{"chip1", "chip2"}},
		{"dataType != 'ChipSeq'", []string{"rna1"}},
		{"cell == 'HeLa' AND dataType == 'ChipSeq'", []string{"chip1"}},
		{"cell == 'HeLa' OR cell == 'K562'", []string{"chip1", "chip2", "rna1"}},
		{"NOT cell == 'HeLa'", []string{"chip2"}},
		{"(cell == 'HeLa' OR cell == 'K562') AND dataType == 'ChipSeq'", []string{"chip1", "chip2"}},
		{"antibody", nil}, // bare ident = exists
		{"cell", []string{"chip1", "chip2", "rna1"}},
		{"cell == HeLa", []string{"chip1", "rna1"}}, // unquoted value
	}
	for _, c := range cases {
		prog, err := Parse("X = SELECT(" + c.pred + ") ENCODE;")
		if err != nil {
			t.Errorf("Parse(%q): %v", c.pred, err)
			continue
		}
		r := NewRunner(testCatalog(t))
		ds, err := r.Eval(prog, "X")
		if err != nil {
			t.Errorf("Eval(%q): %v", c.pred, err)
			continue
		}
		var got []string
		for _, s := range ds.Samples {
			got = append(got, s.ID)
		}
		if len(got) != len(c.want) {
			t.Errorf("%q selected %v, want %v", c.pred, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%q selected %v, want %v", c.pred, got, c.want)
				break
			}
		}
	}
}

func TestCoverVariantsFromScript(t *testing.T) {
	for _, v := range []string{"COVER", "FLAT", "SUMMIT", "HISTOGRAM"} {
		prog, err := Parse("X = " + v + "(1, ANY) ENCODE;")
		if err != nil {
			t.Fatal(err)
		}
		r := NewRunner(testCatalog(t))
		ds, err := r.Eval(prog, "X")
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if len(ds.Samples) != 1 {
			t.Errorf("%s: samples = %d", v, len(ds.Samples))
		}
		if _, ok := ds.Schema.Index("acc_index"); !ok {
			t.Errorf("%s: schema = %s", v, ds.Schema)
		}
	}
}

func TestNegativeDistanceJoin(t *testing.T) {
	// DLE(-50): overlap of at least 50 bases.
	prog, err := Parse(`X = JOIN(DLE(-50); output: INT) ANNOTATIONS ENCODE;`)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(testCatalog(t))
	ds, err := r.Eval(prog, "X")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ds.Samples {
		for _, reg := range s.Regions {
			if reg.Length() < 50 {
				t.Errorf("intersection %v shorter than 50", reg)
			}
		}
	}
}

func TestOptimizerAblationEquivalence(t *testing.T) {
	src := `
A = SELECT(dataType == 'ChipSeq') ENCODE;
B = SELECT(cell == 'HeLa') A;
MATERIALIZE B;
`
	prog1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t)
	opt := NewRunner(cat)
	plain := NewRunner(cat)
	plain.DisableOptimizer = true
	r1, err := opt.Materialize(prog1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := plain.Materialize(prog2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := r1[0].Dataset, r2[0].Dataset
	if len(a.Samples) != len(b.Samples) || a.NumRegions() != b.NumRegions() {
		t.Errorf("optimizer changed semantics: %s vs %s", a, b)
	}
	// The optimized plan must actually have merged the two SELECTs.
	if !strings.Contains(opt.Explain(prog1, "B"), "AND") {
		t.Errorf("selects not merged:\n%s", opt.Explain(prog1, "B"))
	}
}
