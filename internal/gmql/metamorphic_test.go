package gmql

import (
	"fmt"
	"math/rand"
	"testing"

	"genogo/internal/engine"
	"genogo/internal/gdm"
	"genogo/internal/synth"
)

// Metamorphic tests: algebraic identities that must hold for any input.
// Each case runs two scripts over the same random catalog and demands
// equal results (compared structurally, ignoring sample IDs, since several
// identities legitimately change derived IDs).

func randomCatalog(seed int64) engine.MapCatalog {
	g := synth.New(seed)
	return engine.MapCatalog{
		"E": g.Encode(synth.EncodeOptions{Samples: 10, MeanPeaks: 40}),
		"A": g.Annotations(g.Genes(60)),
	}
}

// shapeOf summarizes a dataset ignoring sample identity: the multiset of
// (regions signature, metadata-pair count) per sample.
func shapeOf(t *testing.T, ds *gdm.Dataset) map[string]int {
	t.Helper()
	out := map[string]int{}
	for _, s := range ds.Samples {
		sig := fmt.Sprintf("nreg=%d", len(s.Regions))
		for _, r := range s.Regions {
			sig += "|" + r.String()
		}
		out[sig]++
	}
	return out
}

func evalVar(t *testing.T, cat engine.Catalog, script, v string) *gdm.Dataset {
	t.Helper()
	prog, err := Parse(script)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(cat)
	ds, err := r.Eval(prog, v)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func shapesEqual(t *testing.T, label string, a, b *gdm.Dataset) {
	t.Helper()
	sa, sb := shapeOf(t, a), shapeOf(t, b)
	if len(sa) != len(sb) {
		t.Fatalf("%s: %d vs %d distinct sample shapes", label, len(sa), len(sb))
	}
	for k, n := range sa {
		if sb[k] != n {
			t.Fatalf("%s: shape multiplicity differs (%d vs %d) for a sample", label, n, sb[k])
		}
	}
}

func TestMetamorphicSelectCommutesWithUnion(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		cat := randomCatalog(seed)
		lhs := evalVar(t, cat, `
U = UNION() E E;
X = SELECT(dataType == 'ChipSeq'; region: signal > 3) U;`, "X")
		rhs := evalVar(t, cat, `
S = SELECT(dataType == 'ChipSeq'; region: signal > 3) E;
X = UNION() S S;`, "X")
		shapesEqual(t, fmt.Sprintf("seed %d", seed), lhs, rhs)
	}
}

func TestMetamorphicDoubleSelectEqualsConjunction(t *testing.T) {
	for seed := int64(4); seed <= 6; seed++ {
		cat := randomCatalog(seed)
		lhs := evalVar(t, cat, `
A1 = SELECT(; region: signal > 2) E;
X = SELECT(; region: p_value < 0.001) A1;`, "X")
		rhs := evalVar(t, cat, `
X = SELECT(; region: signal > 2 AND p_value < 0.001) E;`, "X")
		shapesEqual(t, fmt.Sprintf("seed %d", seed), lhs, rhs)
	}
}

func TestMetamorphicDifferenceWithSelfIsEmpty(t *testing.T) {
	cat := randomCatalog(7)
	out := evalVar(t, cat, `X = DIFFERENCE() E E;`, "X")
	if out.NumRegions() != 0 {
		t.Errorf("A - A has %d regions", out.NumRegions())
	}
	if len(out.Samples) != 10 {
		t.Errorf("A - A lost samples: %d", len(out.Samples))
	}
}

func TestMetamorphicDifferenceWithEmptyIsIdentity(t *testing.T) {
	cat := randomCatalog(8)
	// An empty negative set: no sample survives an impossible predicate.
	lhs := evalVar(t, cat, `
NONE = SELECT(dataType == 'NoSuchType') E;
X = DIFFERENCE() E NONE;`, "X")
	rhs := evalVar(t, cat, `X = SELECT() E;`, "X")
	shapesEqual(t, "difference-empty", lhs, rhs)
}

func TestMetamorphicCoverIdempotentAtAny(t *testing.T) {
	// COVER(1,ANY) produces disjoint regions; covering its own output again
	// must be a fixpoint.
	cat := randomCatalog(9)
	once := evalVar(t, cat, `X = COVER(1, ANY) E;`, "X")
	cat2 := engine.MapCatalog{"C": once}
	twice := evalVar(t, cat2, `X = COVER(1, ANY) C;`, "X")
	if once.NumRegions() != twice.NumRegions() {
		t.Fatalf("cover not idempotent: %d vs %d regions", once.NumRegions(), twice.NumRegions())
	}
	for i := range once.Samples[0].Regions {
		a := once.Samples[0].Regions[i]
		b := twice.Samples[0].Regions[i]
		if a.Chrom != b.Chrom || a.Start != b.Start || a.Stop != b.Stop {
			t.Fatalf("cover moved a region: %v vs %v", a, b)
		}
	}
}

func TestMetamorphicMapCountMatchesJoinPairs(t *testing.T) {
	// Total MAP count == number of INT-join pairs (both count overlapping
	// region pairs, strand-compatibly for MAP; use unstranded data).
	g := synth.New(10)
	exp := gdm.NewDataset("E", synth.PeakSchema)
	for i := 0; i < 4; i++ {
		exp.MustAdd(g.ChipSeq(fmt.Sprintf("e%d", i), 50))
	}
	anns := g.Annotations(g.Genes(40))
	cat := engine.MapCatalog{"E": exp, "A": anns}
	mapped := evalVar(t, cat, `
P = SELECT(annType == 'promoter') A;
X = MAP(n AS COUNT) P E;`, "X")
	joined := evalVar(t, cat, `
P = SELECT(annType == 'promoter') A;
X = JOIN(DLE(-1); output: INT) P E;`, "X")
	ni, _ := mapped.Schema.Index("n")
	var total int64
	for _, s := range mapped.Samples {
		for _, r := range s.Regions {
			total += r.Values[ni].Int()
		}
	}
	if total != int64(joined.NumRegions()) {
		t.Errorf("MAP total %d != JOIN INT pairs %d", total, joined.NumRegions())
	}
}

func TestMetamorphicMergePreservesRegionCount(t *testing.T) {
	for seed := int64(11); seed <= 13; seed++ {
		cat := randomCatalog(seed)
		in := evalVar(t, cat, `X = SELECT() E;`, "X")
		merged := evalVar(t, cat, `X = MERGE() E;`, "X")
		if merged.NumRegions() != in.NumRegions() {
			t.Errorf("seed %d: merge changed region count: %d vs %d",
				seed, merged.NumRegions(), in.NumRegions())
		}
	}
}

func TestMetamorphicProjectIdentity(t *testing.T) {
	cat := randomCatalog(14)
	lhs := evalVar(t, cat, `X = PROJECT(region: p_value, signal) E;`, "X")
	rhs := evalVar(t, cat, `X = SELECT() E;`, "X")
	shapesEqual(t, "project-identity", lhs, rhs)
}

func TestMetamorphicRandomizedPipelines(t *testing.T) {
	// Random chains of unary operators: stream (fused) and serial must
	// agree for arbitrary compositions.
	rng := rand.New(rand.NewSource(15))
	pieces := []string{
		`SELECT(; region: signal > 2)`,
		`SELECT(dataType == 'ChipSeq')`,
		`PROJECT(region: p_value, signal)`,
		`EXTEND(n AS COUNT)`,
		`SELECT(; region: p_value < 0.01)`,
	}
	for trial := 0; trial < 6; trial++ {
		depth := 2 + rng.Intn(3)
		script := ""
		prev := "E"
		for d := 0; d < depth; d++ {
			v := fmt.Sprintf("V%d", d)
			script += fmt.Sprintf("%s = %s %s;\n", v, pieces[rng.Intn(len(pieces))], prev)
			prev = v
		}
		cat := randomCatalog(int64(20 + trial))
		prog, err := Parse(script)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, script)
		}
		var ref *gdm.Dataset
		for _, mode := range []engine.Mode{engine.ModeSerial, engine.ModeStream} {
			r := &Runner{Config: engine.Config{Mode: mode, Workers: 2, MetaFirst: true}, Catalog: cat}
			ds, err := r.Eval(prog, prev)
			if err != nil {
				t.Fatalf("trial %d mode %s: %v\n%s", trial, mode, err, script)
			}
			if ref == nil {
				ref = ds
			} else {
				shapesEqual(t, fmt.Sprintf("trial %d\n%s", trial, script), ref, ds)
			}
		}
	}
}
