package gmql

import (
	"testing"

	"genogo/internal/engine"
	"genogo/internal/obs"
)

// TestMetricsGoldenSpanTree pins the rendered profile of the paper's Section 2
// headline query on the serial backend: operator names, plan details, and
// data-volume fields are all stable; durations are zeroed before rendering.
func TestMetricsGoldenSpanTree(t *testing.T) {
	prog, err := Parse(headline)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Config: engine.Config{Mode: engine.ModeSerial, MetaFirst: true}, Catalog: testCatalog(t)}
	results, spans, err := r.MaterializeProfiled(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || len(spans) != 1 {
		t.Fatalf("results=%d spans=%d, want 1 each", len(results), len(spans))
	}
	root := spans[0]
	// The root span's output must agree with the materialized dataset.
	ds := results[0].Dataset
	if root.SamplesOut != len(ds.Samples) || root.RegionsOut != ds.NumRegions() {
		t.Errorf("root out = %ds/%dr, dataset = %ds/%dr",
			root.SamplesOut, root.RegionsOut, len(ds.Samples), ds.NumRegions())
	}
	// Each operator's inputs must total its children's outputs.
	for _, sp := range root.Flatten() {
		if len(sp.Children) == 0 {
			continue
		}
		s, rg := 0, 0
		for _, c := range sp.Children {
			s += c.SamplesOut
			rg += c.RegionsOut
		}
		if sp.SamplesIn != s || sp.RegionsIn != rg {
			t.Errorf("%s: in = %ds/%dr, children total %ds/%dr", sp.Op, sp.SamplesIn, sp.RegionsIn, s, rg)
		}
	}
	root.ZeroDurations()
	want := `MAP peak_count AS COUNT joinby: []  [serial] time=0.0ms in=3s/6r out=2s/4r prunable=0r/0of2p
  SELECT meta: annType == 'promoter'; region: true  [serial] time=0.0ms in=2s/3r out=1s/2r
    SCAN ANNOTATIONS  [serial] time=0.0ms out=2s/3r
  SELECT meta: dataType == 'ChipSeq'; region: true  [serial] time=0.0ms in=3s/5r out=2s/4r
    SCAN ENCODE  [serial] time=0.0ms out=3s/5r
`
	if got := root.Render(); got != want {
		t.Errorf("golden profile mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestMetricsProfiledMatchesUnprofiled checks EvalProfiled returns the same
// dataset as Eval on every backend.
func TestMetricsProfiledMatchesUnprofiled(t *testing.T) {
	prog, err := Parse(headline)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t)
	for _, mode := range []engine.Mode{engine.ModeSerial, engine.ModeBatch, engine.ModeStream} {
		r := &Runner{Config: engine.Config{Mode: mode, Workers: 3, MetaFirst: true}, Catalog: cat}
		plain, err := r.Eval(prog, "RESULT")
		if err != nil {
			t.Fatal(err)
		}
		profiled, sp, err := r.EvalProfiled(prog, "RESULT")
		if err != nil {
			t.Fatal(err)
		}
		if sp == nil || sp.Duration() <= 0 {
			t.Errorf("mode %s: missing or unfinished root span", mode)
		}
		if len(plain.Samples) != len(profiled.Samples) || plain.NumRegions() != profiled.NumRegions() {
			t.Errorf("mode %s: profiled result differs: %s vs %s", mode, profiled, plain)
		}
		if sp.RegionsOut != profiled.NumRegions() {
			t.Errorf("mode %s: span regions_out = %d, dataset = %d", mode, sp.RegionsOut, profiled.NumRegions())
		}
	}
}

// TestTraceLiveSpanObserver exercises the live query console path: the
// SpanObserver receives the root span before execution starts, and a
// watcher goroutine snapshots and renders the tree the whole time the
// stream backend is mutating it. Run with -race, this is the proof that a
// mid-flight profile is safe to read.
func TestTraceLiveSpanObserver(t *testing.T) {
	prog, err := Parse(headline)
	if err != nil {
		t.Fatal(err)
	}
	published := make(chan *obs.Span, 1)
	r := &Runner{
		Config:       engine.Config{Mode: engine.ModeStream, Workers: 4, MetaFirst: true},
		Catalog:      testCatalog(t),
		SpanObserver: func(sp *obs.Span) { published <- sp },
	}
	stop := make(chan struct{})
	watched := make(chan int, 1)
	go func() {
		root := <-published
		n := 0
		for {
			select {
			case <-stop:
				watched <- n
				return
			default:
			}
			snap := root.Snapshot()
			_ = snap.Render()
			n++
		}
	}()
	ds, sp, err := r.EvalProfiled(prog, "RESULT")
	close(stop)
	if err != nil {
		t.Fatal(err)
	}
	if n := <-watched; n == 0 {
		t.Error("watcher never snapshotted the live tree")
	}
	// The observer got the same tree the call returned, and the finished
	// snapshot agrees with the result.
	final := sp.Snapshot()
	if final.SamplesOut != len(ds.Samples) || final.RegionsOut != ds.NumRegions() {
		t.Errorf("final snapshot out = %ds/%dr, dataset = %ds/%dr",
			final.SamplesOut, final.RegionsOut, len(ds.Samples), ds.NumRegions())
	}
}
