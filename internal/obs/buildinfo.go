package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// Build identity and uptime, registered against the default registry at
// package init so every binary that mounts /metrics exports them: dashboards
// join genogo_build_info's labels onto every other series to answer "which
// build was running when this regressed?", and genogo_uptime_seconds
// distinguishes a restart from a counter reset.

var processStart = time.Now()

func init() {
	version, commit := "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		} else {
			version = "devel"
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				commit = s.Value
				if len(commit) > 12 {
					commit = commit[:12]
				}
			}
		}
	}
	Default().GaugeVec("genogo_build_info",
		"Build identity: always 1, with the build's version, Go version, and VCS commit as labels.",
		"version", "go_version", "commit").
		With(version, runtime.Version(), commit).Set(1)

	up := Default().Gauge("genogo_uptime_seconds",
		"Seconds since this process started, refreshed at scrape time.")
	Default().OnScrape(func() {
		up.Set(int64(time.Since(processStart).Seconds()))
	})
}
