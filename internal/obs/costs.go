package obs

import (
	"net/http"
	"sort"
	"sync"
)

// Operator cost registry: rolling cross-query per-operator statistics. Every
// profiled query's span tree is folded into per-(operator, backend, fusion)
// totals — self wall time, self CPU time, self allocations, regions
// processed — from which the unit costs fall out: ns/region, allocs/region,
// bytes/region. That table answers "which kernel dominates?" before anyone
// vectorizes the wrong one, and it is the seed cost model for a distributed
// planner: a node that knows its own ns/region per operator can cost a plan
// fragment before agreeing to run it (the paper's Sec. 4.4 size/cost
// estimates, measured instead of guessed).
//
// Totals are cumulative and monotonic, Prometheus-style: the JSON export
// computes the current ratios, and the genogo_cost_* counters let a scraper
// compute windowed rates of the same quantities.

var (
	metricCostSpans = Default().CounterVec("genogo_cost_spans_total",
		"Operator executions folded into the cost registry, by operator, backend mode, and fusion.", "op", "mode", "fused")
	metricCostRegions = Default().CounterVec("genogo_cost_regions_total",
		"Regions processed by operator executions in the cost registry (input regions, falling back to output for sources).", "op", "mode", "fused")
	metricCostSelfNS = Default().CounterVec("genogo_cost_self_ns_total",
		"Self wall time of operator executions in the cost registry, nanoseconds.", "op", "mode", "fused")
	metricCostCPUNS = Default().CounterVec("genogo_cost_cpu_ns_total",
		"Self CPU time attributed to operator executions in the cost registry, nanoseconds.", "op", "mode", "fused")
	metricCostAllocObjs = Default().CounterVec("genogo_cost_alloc_objs_total",
		"Heap objects attributed to operator executions in the cost registry.", "op", "mode", "fused")
	metricCostAllocBytes = Default().CounterVec("genogo_cost_alloc_bytes_total",
		"Heap bytes attributed to operator executions in the cost registry.", "op", "mode", "fused")
)

// Pruning-opportunity counters: what fraction of the regions traced operators
// loaded could a zone-map-pruning storage engine have skipped (ROADMAP item
// 1's measured target). Fed from the same profiled span trees as the cost
// registry.
var (
	metricPruneChecks = Default().CounterVec("genogo_prune_checked_spans_total",
		"Operator executions whose predicate the zone-map analysis could check.", "op")
	metricPruneParts = Default().CounterVec("genogo_prune_partitions_total",
		"(sample, chromosome) partitions consulted by zone-map analysis, by outcome (prunable: provably zero-output).", "op", "outcome")
	metricPruneRegions = Default().CounterVec("genogo_prune_regions_total",
		"Regions inside consulted partitions, by outcome (prunable: a pruning storage engine would not have loaded them).", "op", "outcome")
)

// Query-level resource histograms: the distribution of what whole queries
// cost, by backend mode. Observed by ObserveQueryProfile on every profiled
// evaluation.
var (
	metricQueryCPU = Default().HistogramVec("genogo_query_cpu_seconds",
		"CPU time attributed to one profiled query.", nil, "mode")
	metricQueryAllocs = Default().HistogramVec("genogo_query_allocs",
		"Heap objects attributed to one profiled query.",
		[]float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}, "mode")
	metricQueryAllocBytes = Default().HistogramVec("genogo_query_alloc_bytes",
		"Heap bytes attributed to one profiled query.",
		[]float64{1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26, 1 << 30, 1 << 34}, "mode")
)

// ObserveQueryProfile folds one finished profiled query into the process-wide
// performance model: the genogo_query_* histograms get the query's attributed
// totals, and the operator cost registry gets every span. The profiled
// evaluation paths (gmql.Runner, federation server) call this once per root.
func ObserveQueryProfile(root *Span) {
	if root == nil {
		return
	}
	res := root.Res()
	mode := root.Mode
	if mode == "" {
		mode = "unknown"
	}
	metricQueryCPU.With(mode).Observe(float64(res.CPUNS) / 1e9)
	metricQueryAllocs.With(mode).Observe(float64(res.AllocObjs))
	metricQueryAllocBytes.With(mode).Observe(float64(res.AllocBytes))
	Costs().ObserveTree(root)
}

// costKey identifies one cost bucket: an operator on a backend, fused or not.
type costKey struct {
	op    string
	mode  string
	fused bool
}

// costCell accumulates one bucket's totals.
type costCell struct {
	spans      int64
	regions    int64
	selfNS     int64
	cpuNS      int64
	allocObjs  int64
	allocBytes int64
	// Zone-map pruning opportunity totals (see Span.PruneParts).
	pruneChecked    int64
	pruneParts      int64
	prunableParts   int64
	prunableRegions int64
}

// OpCost is one exported cost-registry row: cumulative totals plus the
// derived unit costs.
type OpCost struct {
	Op    string `json:"op"`
	Mode  string `json:"mode"`
	Fused bool   `json:"fused"`

	Spans      int64 `json:"spans"`
	Regions    int64 `json:"regions"`
	SelfNS     int64 `json:"self_ns"`
	CPUNS      int64 `json:"cpu_ns"`
	AllocObjs  int64 `json:"alloc_objs"`
	AllocBytes int64 `json:"alloc_bytes"`

	// Pruning opportunity: of PruneParts partitions consulted across
	// PruneChecked zone-checkable executions, PrunableParts (holding
	// PrunableRegions regions) were provably zero-output. PrunableFraction
	// is PrunableRegions over the regions these executions processed.
	PruneChecked     int64   `json:"prune_checked,omitempty"`
	PruneParts       int64   `json:"prune_parts,omitempty"`
	PrunableParts    int64   `json:"prunable_parts,omitempty"`
	PrunableRegions  int64   `json:"prunable_regions,omitempty"`
	PrunableFraction float64 `json:"prunable_fraction,omitempty"`

	// Unit costs per region processed (0 when no regions were seen).
	NSPerRegion     float64 `json:"ns_per_region"`
	CPUNSPerRegion  float64 `json:"cpu_ns_per_region"`
	AllocsPerRegion float64 `json:"allocs_per_region"`
	BytesPerRegion  float64 `json:"bytes_per_region"`
}

// CostRegistry folds span trees into per-operator cost buckets.
type CostRegistry struct {
	mu    sync.Mutex
	cells map[costKey]*costCell
}

// defaultCosts is the process-wide registry profiled queries feed.
var defaultCosts = NewCostRegistry()

// Costs returns the process-wide operator cost registry.
func Costs() *CostRegistry { return defaultCosts }

// NewCostRegistry returns an empty registry.
func NewCostRegistry() *CostRegistry {
	return &CostRegistry{cells: make(map[costKey]*costCell)}
}

// ObserveTree folds a finished query profile into the registry: one
// observation per operator span. Cache hits (no work happened) and remote
// spans (another node's work, counted there) are skipped. Regions processed
// is the span's input size, falling back to output size for sources (SCAN
// reads what it emits).
func (c *CostRegistry) ObserveTree(root *Span) {
	if c == nil || root == nil {
		return
	}
	for _, sp := range root.Flatten() {
		if sp.CacheHit || sp.Remote || sp.Op == "" {
			continue
		}
		regions := int64(sp.RegionsIn)
		if regions == 0 {
			regions = int64(sp.RegionsOut)
		}
		key := costKey{op: sp.Op, mode: sp.Mode, fused: len(sp.Fused) > 0}
		self := sp.SelfRes()
		selfNS := sp.SelfNS()

		c.mu.Lock()
		cell := c.cells[key]
		if cell == nil {
			cell = &costCell{}
			c.cells[key] = cell
		}
		cell.spans++
		cell.regions += regions
		cell.selfNS += selfNS
		cell.cpuNS += self.CPUNS
		cell.allocObjs += self.AllocObjs
		cell.allocBytes += self.AllocBytes
		if sp.PruneParts > 0 {
			cell.pruneChecked++
			cell.pruneParts += int64(sp.PruneParts)
			cell.prunableParts += int64(sp.PrunableParts)
			cell.prunableRegions += sp.PrunableRegions
		}
		c.mu.Unlock()

		fused := "no"
		if key.fused {
			fused = "yes"
		}
		metricCostSpans.With(key.op, key.mode, fused).Inc()
		metricCostRegions.With(key.op, key.mode, fused).Add(regions)
		metricCostSelfNS.With(key.op, key.mode, fused).Add(selfNS)
		metricCostCPUNS.With(key.op, key.mode, fused).Add(self.CPUNS)
		metricCostAllocObjs.With(key.op, key.mode, fused).Add(self.AllocObjs)
		metricCostAllocBytes.With(key.op, key.mode, fused).Add(self.AllocBytes)
		if sp.PruneParts > 0 {
			metricPruneChecks.With(key.op).Inc()
			metricPruneParts.With(key.op, "prunable").Add(int64(sp.PrunableParts))
			metricPruneParts.With(key.op, "kept").Add(int64(sp.PruneParts - sp.PrunableParts))
			metricPruneRegions.With(key.op, "prunable").Add(sp.PrunableRegions)
			kept := regions - sp.PrunableRegions
			if kept < 0 {
				kept = 0
			}
			metricPruneRegions.With(key.op, "kept").Add(kept)
		}
	}
}

// Snapshot returns the current table, sorted by operator, mode, fusion —
// deterministic output for /debug/costs and tests.
func (c *CostRegistry) Snapshot() []OpCost {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := make([]OpCost, 0, len(c.cells))
	for k, cell := range c.cells {
		row := OpCost{
			Op: k.op, Mode: k.mode, Fused: k.fused,
			Spans: cell.spans, Regions: cell.regions,
			SelfNS: cell.selfNS, CPUNS: cell.cpuNS,
			AllocObjs: cell.allocObjs, AllocBytes: cell.allocBytes,
			PruneChecked: cell.pruneChecked, PruneParts: cell.pruneParts,
			PrunableParts: cell.prunableParts, PrunableRegions: cell.prunableRegions,
		}
		if cell.regions > 0 && cell.prunableRegions > 0 {
			row.PrunableFraction = float64(cell.prunableRegions) / float64(cell.regions)
		}
		if cell.regions > 0 {
			r := float64(cell.regions)
			row.NSPerRegion = float64(cell.selfNS) / r
			row.CPUNSPerRegion = float64(cell.cpuNS) / r
			row.AllocsPerRegion = float64(cell.allocObjs) / r
			row.BytesPerRegion = float64(cell.allocBytes) / r
		}
		out = append(out, row)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		if out[i].Mode != out[j].Mode {
			return out[i].Mode < out[j].Mode
		}
		return !out[i].Fused && out[j].Fused
	})
	return out
}

// MountCosts registers GET /debug/costs serving the registry as JSON.
func MountCosts(mux *http.ServeMux, c *CostRegistry) {
	MountState(mux, "/debug/costs",
		"operator cost registry: per-operator time/alloc/row totals from profiled runs",
		func() any { return c.Snapshot() })
}
