package obs

import (
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func slowTestLog() *SlowQueryLog {
	return &SlowQueryLog{
		Threshold: time.Millisecond,
		Logger:    newTextLogger(io.Discard),
		Profiler:  &Profiler{}, // disabled: keep tests from polluting Prof()
	}
}

func slowRoot(id string, took time.Duration) *Span {
	root := NewSpan("MAP")
	root.Detail = "MAP " + id
	root.DurationNS = int64(took)
	return root
}

func TestSlowlogRingRetainsNewestFirst(t *testing.T) {
	l := slowTestLog()
	for i := 0; i < 3; i++ {
		l.ObserveQuery("q", "Q"+string(rune('a'+i)), slowRoot("x", 5*time.Millisecond))
	}
	recs := l.Recent()
	if len(recs) != 3 {
		t.Fatalf("retained %d, want 3", len(recs))
	}
	if recs[0].Query != "Qc" || recs[2].Query != "Qa" {
		t.Errorf("order = %q..%q, want newest first", recs[0].Query, recs[2].Query)
	}
	if recs[0].Status != "slow" || recs[0].TookMS < 4 {
		t.Errorf("record = %+v", recs[0])
	}
}

func TestSlowlogRingEntryCap(t *testing.T) {
	l := slowTestLog()
	l.MaxEntries = 4
	before := metricSlowlogDropped.Value()
	for i := 0; i < 10; i++ {
		l.ObserveKilled("", "K", "killed", "deadline", time.Second)
	}
	if got := len(l.Recent()); got != 4 {
		t.Fatalf("ring holds %d, want 4", got)
	}
	if dropped := metricSlowlogDropped.Value() - before; dropped != 6 {
		t.Errorf("dropped counter advanced %d, want 6", dropped)
	}
}

func TestSlowlogRingByteCap(t *testing.T) {
	l := slowTestLog()
	l.MaxBytes = 2000
	big := strings.Repeat("x", 200)
	for i := 0; i < 50; i++ {
		l.ObserveKilled("", big, "shed", "queue full", 0)
	}
	recs := l.Recent()
	if len(recs) >= 50 {
		t.Fatalf("byte cap did not evict: %d records", len(recs))
	}
	total := 0
	for i := range recs {
		total += recs[i].sizeBytes()
	}
	if total > 2000+recs[0].sizeBytes() {
		t.Errorf("retained ~%d bytes, cap 2000", total)
	}
}

func TestSlowlogQueryTruncation(t *testing.T) {
	l := slowTestLog()
	long := strings.Repeat("SELECT ", 100) // 700 chars
	l.ObserveKilled("", long, "killed", "budget", time.Second)
	recs := l.Recent()
	if len(recs[0].Query) > slowlogMaxQueryLen+3 {
		t.Errorf("stored query length %d, want <= %d", len(recs[0].Query), slowlogMaxQueryLen+3)
	}
	if !strings.HasSuffix(recs[0].Query, "...") {
		t.Errorf("truncated query missing ellipsis")
	}
}

func TestSlowlogRecordsResources(t *testing.T) {
	l := slowTestLog()
	root := slowRoot("r", 10*time.Millisecond)
	root.CPUNS = 7e6
	root.AllocObjs = 42
	root.AllocBytes = 4096
	l.ObserveQuery("q-res", "R = ...", root)
	rec := l.Recent()[0]
	if rec.CPUMS != 7 || rec.AllocObjs != 42 || rec.AllocBytes != 4096 {
		t.Errorf("record resources = %+v", rec)
	}
	if len(rec.Top) == 0 || rec.Top[0].Op != "MAP" {
		t.Errorf("record top spans = %+v", rec.Top)
	}
}

func TestSlowlogRetentionDisabled(t *testing.T) {
	l := slowTestLog()
	l.MaxEntries = -1
	l.ObserveKilled("", "K", "killed", "deadline", time.Second)
	if got := l.Recent(); len(got) != 0 {
		t.Errorf("retention disabled but ring holds %d", len(got))
	}
	var nilLog *SlowQueryLog
	if nilLog.Recent() != nil {
		t.Error("nil log Recent() != nil")
	}
}

func TestSlowlogConcurrent(t *testing.T) {
	l := slowTestLog()
	l.MaxEntries = 8
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if g%2 == 0 {
					l.ObserveKilled("", "K", "shed", "queue full", 0)
				} else {
					l.Recent()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := len(l.Recent()); got > 8 {
		t.Errorf("ring overflowed: %d", got)
	}
}
