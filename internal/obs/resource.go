package obs

import (
	"runtime/metrics"
	"time"
)

// Resource attribution: where did a query's CPU time and allocations go?
//
// Wall time alone cannot answer the questions a perf PR raises — an operator
// can be slow because it burns CPU, because it allocates furiously, or
// because it waits on something. ResUsage snapshots the runtime's own
// counters (runtime/metrics, ~500ns a read) so spans can record the delta
// observed across an operator's execution window:
//
//   - CPU time of user Go code (/cpu/classes/user:cpu-seconds),
//   - heap allocations, objects and bytes (/gc/heap/allocs:*).
//
// The counters are process-wide, which fixes the attribution semantics:
// deltas are exact when operators execute one at a time (the serial and
// batch backends, and any otherwise idle process) and are an upper bound
// when concurrent work overlaps the window (the stream backend's concurrent
// binary-operator inputs, or other queries on a busy server). Self values
// (total minus children) clamp at zero, like SelfNS.

// resNames are the runtime/metrics samples attribution reads, in ResUsage
// field order.
var resNames = [...]string{
	"/cpu/classes/user:cpu-seconds",
	"/gc/heap/allocs:objects",
	"/gc/heap/allocs:bytes",
}

// ResUsage is a point-in-time reading of the process-wide resource counters,
// or (via Sub) the delta between two readings.
type ResUsage struct {
	// CPUNS is CPU time spent running user Go code, in nanoseconds.
	CPUNS int64
	// AllocObjs and AllocBytes are cumulative heap allocations.
	AllocObjs  int64
	AllocBytes int64
}

// ReadRes samples the process's resource counters.
func ReadRes() ResUsage {
	var s [len(resNames)]metrics.Sample
	for i := range s {
		s[i].Name = resNames[i]
	}
	metrics.Read(s[:])
	return ResUsage{
		CPUNS:      int64(s[0].Value.Float64() * float64(time.Second)),
		AllocObjs:  int64(s[1].Value.Uint64()),
		AllocBytes: int64(s[2].Value.Uint64()),
	}
}

// Sub returns the delta u - base, clamping each component at zero (the CPU
// estimate is not guaranteed monotonic between reads).
func (u ResUsage) Sub(base ResUsage) ResUsage {
	d := ResUsage{
		CPUNS:      u.CPUNS - base.CPUNS,
		AllocObjs:  u.AllocObjs - base.AllocObjs,
		AllocBytes: u.AllocBytes - base.AllocBytes,
	}
	if d.CPUNS < 0 {
		d.CPUNS = 0
	}
	if d.AllocObjs < 0 {
		d.AllocObjs = 0
	}
	if d.AllocBytes < 0 {
		d.AllocBytes = 0
	}
	return d
}
