package obs

import (
	"math"
	"net/http"
	"sync"
	"time"
)

// The estimator accuracy registry: every finished federated query folds its
// (predicted, actual) result sizes in here, so /debug/estimates answers the
// question the ROADMAP's planner work depends on — how wrong is the cost
// model, and in which direction? Errors are tracked as log2 ratios
// (log2((actual+1)/(predicted+1))): 0 means exact, +1 means the estimator
// undershot by 2x, -1 overshot by 2x. The +1 smoothing keeps empty results
// finite.

// Estimate dimensions.
const (
	EstDimSamples = "samples"
	EstDimRegions = "regions"
	EstDimBytes   = "bytes"
)

var estDims = []string{EstDimSamples, EstDimRegions, EstDimBytes}

// estBuckets are the log2-ratio histogram bounds shared by the JSON view and
// the Prometheus histogram: symmetric around 0 so over- and under-estimates
// read off the same scale.
var estBuckets = []float64{-6, -4, -2, -1, -0.5, 0, 0.5, 1, 2, 4, 6}

var (
	metricEstQueries = defaultRegistry.Counter("genogo_estimate_queries_total",
		"Federated queries whose result size was compared against the planner's estimate.")
	metricEstErr = defaultRegistry.HistogramVec("genogo_estimate_log2_error",
		"Estimator log2 ratio error log2((actual+1)/(predicted+1)) per dimension; 0 is exact, positive means the estimator undershot.",
		estBuckets, "dim")
)

// EstimateObs is one (predicted, actual) observation from a finished query.
type EstimateObs struct {
	Query string    `json:"query,omitempty"`
	Var   string    `json:"var,omitempty"`
	At    time.Time `json:"at"`
	// Predicted and Actual are keyed by dimension (samples, regions, bytes).
	Predicted map[string]int64 `json:"predicted"`
	Actual    map[string]int64 `json:"actual"`
	// Log2Err is the per-dimension log2 ratio error.
	Log2Err map[string]float64 `json:"log2_err"`
}

// estDimStats accumulates one dimension's error distribution.
type estDimStats struct {
	count   int64
	sum     float64 // sum of log2 errors (signed: mean is the bias)
	sumAbs  float64 // sum of |log2 error| (mean is the accuracy)
	buckets []int64 // len(estBuckets)+1 counts, last is +Inf overflow
}

// EstDimReport is the JSON view of one dimension's accuracy.
type EstDimReport struct {
	Dim   string `json:"dim"`
	Count int64  `json:"count"`
	// MeanLog2 is the mean signed error: positive means the estimator
	// systematically undershoots this dimension.
	MeanLog2 float64 `json:"mean_log2"`
	// MeanAbsLog2 is the mean error magnitude in doublings: 1.0 means the
	// estimate is off by 2x on average.
	MeanAbsLog2 float64 `json:"mean_abs_log2"`
	// Buckets maps histogram upper bounds (and "+Inf") to counts.
	Buckets []EstBucket `json:"buckets"`
}

// EstBucket is one histogram cell of the accuracy report.
type EstBucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// EstimateReport is the /debug/estimates JSON document.
type EstimateReport struct {
	Queries int64          `json:"queries"`
	Dims    []EstDimReport `json:"dims"`
	Recent  []EstimateObs  `json:"recent"`
}

// EstimateRegistry folds (predicted, actual) pairs into per-dimension error
// distributions plus a ring of recent observations.
type EstimateRegistry struct {
	mu      sync.Mutex
	queries int64
	dims    map[string]*estDimStats
	recent  []EstimateObs // newest first, capped
	cap     int
}

// NewEstimateRegistry returns an empty accuracy registry (tests; production
// code uses the process-wide Estimates()).
func NewEstimateRegistry() *EstimateRegistry {
	return &EstimateRegistry{dims: make(map[string]*estDimStats), cap: 64}
}

var defaultEstimates = NewEstimateRegistry()

// Estimates returns the process-wide estimator accuracy registry.
func Estimates() *EstimateRegistry { return defaultEstimates }

// Log2Ratio is the smoothed error metric: log2((actual+1)/(predicted+1)).
func Log2Ratio(predicted, actual int64) float64 {
	if predicted < 0 {
		predicted = 0
	}
	if actual < 0 {
		actual = 0
	}
	return math.Log2(float64(actual+1) / float64(predicted+1))
}

// Observe folds one query's predicted and actual sizes (keyed by dimension)
// into the registry and the genogo_estimate_* metrics.
func (er *EstimateRegistry) Observe(query, varName string, predicted, actual map[string]int64) {
	obs := EstimateObs{
		Query: query, Var: varName, At: time.Now(),
		Predicted: predicted, Actual: actual,
		Log2Err: make(map[string]float64, len(estDims)),
	}
	er.mu.Lock()
	er.queries++
	for _, dim := range estDims {
		p, pok := predicted[dim]
		a, aok := actual[dim]
		if !pok || !aok {
			continue
		}
		e := Log2Ratio(p, a)
		obs.Log2Err[dim] = e
		ds := er.dims[dim]
		if ds == nil {
			ds = &estDimStats{buckets: make([]int64, len(estBuckets)+1)}
			er.dims[dim] = ds
		}
		ds.count++
		ds.sum += e
		ds.sumAbs += math.Abs(e)
		ds.buckets[bucketIdx(e)]++
		if er == defaultEstimates {
			metricEstErr.With(dim).Observe(e)
		}
	}
	er.recent = append([]EstimateObs{obs}, er.recent...)
	if len(er.recent) > er.cap {
		er.recent = er.recent[:er.cap]
	}
	er.mu.Unlock()
	if er == defaultEstimates {
		metricEstQueries.Inc()
	}
}

func bucketIdx(e float64) int {
	for i, b := range estBuckets {
		if e <= b {
			return i
		}
	}
	return len(estBuckets)
}

// Report snapshots the registry for /debug/estimates.
func (er *EstimateRegistry) Report() EstimateReport {
	er.mu.Lock()
	defer er.mu.Unlock()
	rep := EstimateReport{Queries: er.queries, Dims: []EstDimReport{}, Recent: append([]EstimateObs{}, er.recent...)}
	for _, dim := range estDims {
		ds := er.dims[dim]
		if ds == nil {
			continue
		}
		dr := EstDimReport{Dim: dim, Count: ds.count}
		if ds.count > 0 {
			dr.MeanLog2 = ds.sum / float64(ds.count)
			dr.MeanAbsLog2 = ds.sumAbs / float64(ds.count)
		}
		for i, c := range ds.buckets {
			le := "+Inf"
			if i < len(estBuckets) {
				le = formatFloat(estBuckets[i])
			}
			dr.Buckets = append(dr.Buckets, EstBucket{LE: le, Count: c})
		}
		rep.Dims = append(rep.Dims, dr)
	}
	return rep
}

// Count reports how many queries have been folded in (test hook).
func (er *EstimateRegistry) Count() int64 {
	er.mu.Lock()
	defer er.mu.Unlock()
	return er.queries
}

// MountEstimates registers /debug/estimates serving the accuracy report.
func MountEstimates(mux *http.ServeMux, er *EstimateRegistry) {
	MountState(mux, "/debug/estimates",
		"estimator accuracy: predicted vs actual result sizes per finished federated query",
		func() any { return er.Report() })
}
