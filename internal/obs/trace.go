package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one node of a query profile: the execution record of one plan
// operator. The engine builds one span per plan node visited (including
// subtree-cache hits), so the tree mirrors the logical plan and renders as
// an EXPLAIN ANALYZE-style profile. Spans marshal to JSON for the federated
// profile-over-the-wire path.
//
// Concurrent children (the two inputs of a binary operator under the stream
// backend) attach through AddChild, which is mutex-guarded. Identity fields
// (Op, Detail, Mode) are written before the span is published; everything a
// span learns after publication goes through the mutex-guarded setters, so a
// live query console can Snapshot an in-flight tree race-free. Read-side
// helpers (Render, Flatten, SelfNS, JSON marshaling) take no locks: call
// them on finished trees or on the detached copies Snapshot returns.
type Span struct {
	// Op is the operator name (SELECT, MAP, SCAN, ...).
	Op string `json:"op"`
	// Detail is the one-line operator description from the logical plan.
	Detail string `json:"detail,omitempty"`
	// Mode is the backend that executed the operator.
	Mode string `json:"mode,omitempty"`
	// DurationNS is wall time of the operator including its inputs.
	DurationNS int64 `json:"duration_ns"`
	// SamplesIn/RegionsIn total the operator's input datasets.
	SamplesIn int `json:"samples_in"`
	RegionsIn int `json:"regions_in"`
	// SamplesOut/RegionsOut describe the operator's output dataset.
	SamplesOut int `json:"samples_out"`
	RegionsOut int `json:"regions_out"`
	// Workers is the effective parallelism the worker pool could use for
	// this operator (clamped to the input size, 1 for serial execution).
	Workers int `json:"workers,omitempty"`
	// CPUNS is the CPU time (user Go code) the process spent during this
	// operator's execution window, including its inputs. Sampling is
	// process-wide (see ResUsage): exact for serial execution, an upper
	// bound when concurrent work overlaps the window.
	CPUNS int64 `json:"cpu_ns,omitempty"`
	// AllocObjs and AllocBytes are the heap allocations observed during the
	// window, including inputs — same process-wide semantics as CPUNS.
	AllocObjs  int64 `json:"alloc_objs,omitempty"`
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
	// Fused lists the operator names of the fusion chain this span heads
	// (stream backend only); nil for unfused operators.
	Fused []string `json:"fused,omitempty"`
	// PruneParts is the number of (sample, chromosome) partitions the
	// operator's zone-map analysis consulted; PrunableParts of them — holding
	// PrunableRegions regions — provably contribute zero output, so a pruning
	// storage engine would have skipped loading them entirely. All zero when
	// the operator's predicate has no zone-checkable structure (or the run
	// was not traced).
	PruneParts      int   `json:"prune_parts,omitempty"`
	PrunableParts   int   `json:"prunable_parts,omitempty"`
	PrunableRegions int64 `json:"prunable_regions,omitempty"`
	// PartsConsulted is the number of (sample, chromosome) partitions a
	// pruned storage read consulted; PartsSkipped of them — holding
	// RegionsSkipped regions — were proven irrelevant by their zone windows
	// and never read from disk. Where the Prunable* fields above measure the
	// opportunity on an operator, these measure the I/O a pruning scan
	// actually skipped.
	PartsConsulted int   `json:"parts_consulted,omitempty"`
	PartsSkipped   int   `json:"parts_skipped,omitempty"`
	RegionsSkipped int64 `json:"regions_skipped,omitempty"`
	// CacheHit marks a subtree answered from the session's result cache:
	// no work happened here, the output was shared.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Attrs are free-form annotations (retry attempts, breaker state, bytes
	// moved, ...) rendered sorted by key so profiles stay deterministic.
	Attrs map[string]string `json:"attrs,omitempty"`
	// Remote marks a span grafted from another node's profile (the federated
	// merge): the subtree executed there, not in this process.
	Remote bool `json:"remote,omitempty"`
	// Children are the input operators, in plan order.
	Children []*Span `json:"children,omitempty"`

	mu sync.Mutex
	// resBase is the resource baseline StartRes recorded; resArmed guards
	// FinishRes so an unarmed span never reports garbage deltas.
	resBase  ResUsage
	resArmed bool
}

// NewSpan starts a span for one operator.
func NewSpan(op string) *Span { return &Span{Op: op} }

// AddChild attaches an input span. Safe for concurrent use — the two sides
// of a binary operator may run on different goroutines.
func (s *Span) AddChild(c *Span) {
	if s == nil || c == nil {
		return
	}
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
}

// Finish records the wall time since start. Like every setter below it takes
// the span's mutex, so a span published to a live query registry can be
// snapshotted while its operator is still executing.
func (s *Span) Finish(start time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.DurationNS = time.Since(start).Nanoseconds()
	s.mu.Unlock()
}

// StartRes arms resource attribution: the span records the process's
// resource counters now, and FinishRes will attribute the delta to it.
func (s *Span) StartRes() {
	if s == nil {
		return
	}
	base := ReadRes()
	s.mu.Lock()
	s.resBase = base
	s.resArmed = true
	s.mu.Unlock()
}

// FinishRes attributes the resource delta since StartRes to the span. A
// span that was never armed is left untouched.
func (s *Span) FinishRes() {
	if s == nil {
		return
	}
	now := ReadRes()
	s.mu.Lock()
	if s.resArmed {
		d := now.Sub(s.resBase)
		s.CPUNS, s.AllocObjs, s.AllocBytes = d.CPUNS, d.AllocObjs, d.AllocBytes
	}
	s.mu.Unlock()
}

// Res reads the span's attributed resource usage.
func (s *Span) Res() ResUsage {
	if s == nil {
		return ResUsage{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return ResUsage{CPUNS: s.CPUNS, AllocObjs: s.AllocObjs, AllocBytes: s.AllocBytes}
}

// SetOutput records the span's output dataset shape.
func (s *Span) SetOutput(samples, regions int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.SamplesOut, s.RegionsOut = samples, regions
	s.mu.Unlock()
}

// SetInput records the span's input totals.
func (s *Span) SetInput(samples, regions int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.SamplesIn, s.RegionsIn = samples, regions
	s.mu.Unlock()
}

// SetWorkers records the effective parallelism.
func (s *Span) SetWorkers(n int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Workers = n
	s.mu.Unlock()
}

// SetPrunable records the operator's zone-map pruning opportunity: of the
// consulted (sample, chromosome) partitions, prunableParts (holding
// prunableRegions regions) provably contribute zero output.
func (s *Span) SetPrunable(consulted, prunableParts int, prunableRegions int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.PruneParts, s.PrunableParts, s.PrunableRegions = consulted, prunableParts, prunableRegions
	s.mu.Unlock()
}

// SetSkipped records a pruned storage read's realized skip accounting: of
// the consulted partitions, skipped (holding regions regions) were never
// read from disk.
func (s *Span) SetSkipped(consulted, skipped int, regions int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.PartsConsulted, s.PartsSkipped, s.RegionsSkipped = consulted, skipped, regions
	s.mu.Unlock()
}

// SetCacheHit marks the span as answered from a result cache.
func (s *Span) SetCacheHit() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.CacheHit = true
	s.mu.Unlock()
}

// SetFused records the fusion-chain membership of the span.
func (s *Span) SetFused(names []string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Fused = names
	s.mu.Unlock()
}

// SetAttr annotates the span. Attributes render sorted by key.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]string)
	}
	s.Attrs[key] = value
	s.mu.Unlock()
}

// Attr reads one annotation ("" when absent).
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Attrs[key]
}

// MarkRemote flags the whole subtree as grafted from another node.
func (s *Span) MarkRemote() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Remote = true
	kids := s.Children
	s.mu.Unlock()
	for _, c := range kids {
		c.MarkRemote()
	}
}

// Snapshot deep-copies the span tree under each span's mutex, producing a
// detached tree that is safe to render, marshal, or walk while the original
// is still being written by an executing query. Writers that mutate spans
// after publication (AddChild, Finish and the setters) hold the same mutex,
// so a snapshot observes each span atomically: a mid-flight profile shows
// finished operators with their final numbers and unfinished ones with
// zero duration.
func (s *Span) Snapshot() *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	c := &Span{
		Op: s.Op, Detail: s.Detail, Mode: s.Mode,
		DurationNS: s.DurationNS,
		SamplesIn:  s.SamplesIn, RegionsIn: s.RegionsIn,
		SamplesOut: s.SamplesOut, RegionsOut: s.RegionsOut,
		Workers: s.Workers, CacheHit: s.CacheHit, Remote: s.Remote,
		CPUNS: s.CPUNS, AllocObjs: s.AllocObjs, AllocBytes: s.AllocBytes,
		PruneParts: s.PruneParts, PrunableParts: s.PrunableParts,
		PrunableRegions: s.PrunableRegions,
		PartsConsulted:  s.PartsConsulted, PartsSkipped: s.PartsSkipped,
		RegionsSkipped: s.RegionsSkipped,
	}
	if len(s.Fused) > 0 {
		c.Fused = append([]string(nil), s.Fused...)
	}
	if len(s.Attrs) > 0 {
		c.Attrs = make(map[string]string, len(s.Attrs))
		for k, v := range s.Attrs {
			c.Attrs[k] = v
		}
	}
	kids := append([]*Span(nil), s.Children...)
	s.mu.Unlock()
	for _, k := range kids {
		c.Children = append(c.Children, k.Snapshot())
	}
	return c
}

// Duration returns the recorded wall time.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.DurationNS)
}

// SelfNS is the span's own wall time: duration minus the children's (the
// time attributable to this operator's kernel rather than its inputs).
// Concurrent children can make the naive subtraction negative; it clamps
// at zero.
func (s *Span) SelfNS() int64 {
	self := s.DurationNS
	for _, c := range s.Children {
		self -= c.DurationNS
	}
	if self < 0 {
		return 0
	}
	return self
}

// SelfRes is the span's own resource usage: the attributed deltas minus the
// children's (the share of this operator's kernel rather than its inputs).
// Concurrent children can push the naive subtraction negative; each
// component clamps at zero, like SelfNS.
func (s *Span) SelfRes() ResUsage {
	var kids ResUsage
	for _, c := range s.Children {
		kids.CPUNS += c.CPUNS
		kids.AllocObjs += c.AllocObjs
		kids.AllocBytes += c.AllocBytes
	}
	return ResUsage{CPUNS: s.CPUNS, AllocObjs: s.AllocObjs, AllocBytes: s.AllocBytes}.Sub(kids)
}

// ZeroDurations recursively clears every duration and every attributed
// resource delta — golden tests compare span trees structurally, with the
// machine-dependent measurements removed.
func (s *Span) ZeroDurations() {
	if s == nil {
		return
	}
	s.DurationNS = 0
	s.CPUNS, s.AllocObjs, s.AllocBytes = 0, 0, 0
	for _, c := range s.Children {
		c.ZeroDurations()
	}
}

// Flatten returns the span and all descendants, preorder.
func (s *Span) Flatten() []*Span {
	if s == nil {
		return nil
	}
	out := []*Span{s}
	for _, c := range s.Children {
		out = append(out, c.Flatten()...)
	}
	return out
}

// TopBySelf returns the k spans with the largest self time, descending —
// the "where did the time go" summary the slow-query log inlines.
func (s *Span) TopBySelf(k int) []*Span {
	all := s.Flatten()
	sort.SliceStable(all, func(i, j int) bool { return all[i].SelfNS() > all[j].SelfNS() })
	if k > 0 && k < len(all) {
		all = all[:k]
	}
	return all
}

// Render writes the profile as an indented tree, one operator per line:
//
//	MAP peak_count AS COUNT  [stream w=4] time=1.8ms in=41s/8050r out=1s/450r
//	  SELECT annType == 'promoter'  [stream w=1] time=0.2ms in=1s/50r out=1s/45r
//	    SCAN ANNOTATIONS  [stream] time=0.0ms out=1s/50r
//
// Durations render in rounded milliseconds so zeroed golden profiles are
// stable across machines.
func (s *Span) Render() string {
	var b strings.Builder
	s.render(&b, 0)
	return b.String()
}

// sizeString renders a byte count with a binary-ish unit, one decimal.
func sizeString(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func (s *Span) render(b *strings.Builder, indent int) {
	if s == nil {
		return
	}
	pad := strings.Repeat("  ", indent)
	b.WriteString(pad)
	if s.Detail != "" {
		b.WriteString(s.Detail)
	} else {
		b.WriteString(s.Op)
	}
	b.WriteString("  [")
	b.WriteString(s.Mode)
	if s.Workers > 1 {
		fmt.Fprintf(b, " w=%d", s.Workers)
	}
	if len(s.Fused) > 0 {
		fmt.Fprintf(b, " fused=%s", strings.Join(s.Fused, "+"))
	}
	if s.CacheHit {
		b.WriteString(" cached")
	}
	if s.Remote {
		b.WriteString(" remote")
	}
	if len(s.Attrs) > 0 {
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(b, " %s=%s", k, s.Attrs[k])
		}
	}
	b.WriteString("]")
	fmt.Fprintf(b, " time=%.1fms", float64(s.DurationNS)/1e6)
	// Resource attribution prints only when recorded, so profiles without it
	// (and golden trees with measurements zeroed) render exactly as before.
	if s.CPUNS > 0 {
		fmt.Fprintf(b, " cpu=%.1fms", float64(s.CPUNS)/1e6)
	}
	if s.AllocObjs > 0 {
		fmt.Fprintf(b, " allocs=%d/%s", s.AllocObjs, sizeString(s.AllocBytes))
	}
	if s.SamplesIn > 0 || s.RegionsIn > 0 {
		fmt.Fprintf(b, " in=%ds/%dr", s.SamplesIn, s.RegionsIn)
	}
	fmt.Fprintf(b, " out=%ds/%dr", s.SamplesOut, s.RegionsOut)
	// Pruning opportunity prints only when the zone-map analysis consulted
	// partitions, so profiles of unanalyzable plans render exactly as before.
	if s.PruneParts > 0 {
		fmt.Fprintf(b, " prunable=%dr/%dof%dp", s.PrunableRegions, s.PrunableParts, s.PruneParts)
	}
	// Realized pruning prints only on spans of pruned storage reads, so
	// profiles of in-memory or text-layout scans render exactly as before.
	if s.PartsConsulted > 0 {
		fmt.Fprintf(b, " skipped=%dr/%dof%dp", s.RegionsSkipped, s.PartsSkipped, s.PartsConsulted)
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		c.render(b, indent+1)
	}
}
