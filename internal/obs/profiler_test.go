package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestProfiler(ringCap int) *Profiler {
	p := &Profiler{MinGap: -1} // MinGap set pre-Enable so Enable keeps it
	p.Enable(ringCap)
	p.MinGap = 0 // no rate limit in tests
	return p
}

func TestProfilerDisabledIsFree(t *testing.T) {
	var p Profiler
	p.Trigger("slow_query", "q1") // must not capture or panic
	if got := p.ListCaptures(); len(got) != 0 {
		t.Fatalf("disabled profiler captured %d profiles", len(got))
	}
	var nilP *Profiler
	nilP.Trigger("slow_query", "q1")
	if nilP.Enabled() {
		t.Fatal("nil profiler reports enabled")
	}
}

func TestProfilerTriggerCapturesHeap(t *testing.T) {
	p := newTestProfiler(4)
	p.Trigger("slow_query", "q-123")
	caps := p.ListCaptures()
	if len(caps) != 1 {
		t.Fatalf("captures = %d, want 1", len(caps))
	}
	c := caps[0]
	if c.Kind != "heap" || c.Trigger != "slow_query" || c.QueryID != "q-123" {
		t.Errorf("capture meta = %+v", c)
	}
	if c.Bytes <= 0 {
		t.Errorf("capture is empty")
	}
	meta, data, ok := p.Get(c.ID)
	if !ok || len(data) != meta.Bytes || len(data) == 0 {
		t.Fatalf("Get(%d) = %+v, %d bytes, %v", c.ID, meta, len(data), ok)
	}
	// pprof heap profiles are gzipped protobuf: 0x1f 0x8b magic.
	if data[0] != 0x1f || data[1] != 0x8b {
		t.Errorf("capture does not look like a gzipped pprof profile: % x", data[:2])
	}
}

func TestProfilerRingEvictsOldest(t *testing.T) {
	p := newTestProfiler(3)
	for i := 0; i < 5; i++ {
		p.Trigger("slow_query", "")
	}
	caps := p.ListCaptures()
	if len(caps) != 3 {
		t.Fatalf("ring holds %d, want 3", len(caps))
	}
	// Newest first: IDs 5,4,3; 1 and 2 evicted.
	if caps[0].ID != 5 || caps[2].ID != 3 {
		t.Errorf("ring ids = %d..%d, want 5..3", caps[0].ID, caps[2].ID)
	}
	if _, _, ok := p.Get(1); ok {
		t.Errorf("evicted capture 1 still retrievable")
	}
}

func TestProfilerMinGapSuppresses(t *testing.T) {
	p := &Profiler{}
	p.Enable(8) // default MinGap 10s
	p.Trigger("slow_query", "a")
	p.Trigger("slow_query", "b")
	p.Trigger("shed", "c")
	if got := len(p.ListCaptures()); got != 1 {
		t.Fatalf("rate-limited profiler captured %d, want 1", got)
	}
}

func TestProfilerCPUCapture(t *testing.T) {
	p := newTestProfiler(4)
	p.CPUWindow = 20 * time.Millisecond
	p.Trigger("budget_kill", "q-9")
	deadline := time.Now().Add(5 * time.Second)
	for {
		var cpu *Capture
		for _, c := range p.ListCaptures() {
			if c.Kind == "cpu" {
				cc := c
				cpu = &cc
				break
			}
		}
		if cpu != nil {
			if cpu.Trigger != "budget_kill" || cpu.WindowMS != 20 || cpu.Bytes <= 0 {
				t.Errorf("cpu capture = %+v", *cpu)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("cpu capture never landed in the ring")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestProfilerStartSamplesOnInterval(t *testing.T) {
	p := newTestProfiler(8)
	stop := p.Start(10 * time.Millisecond)
	defer stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if caps := p.ListCaptures(); len(caps) >= 2 {
			if caps[0].Trigger != "interval" {
				t.Errorf("trigger = %q, want interval", caps[0].Trigger)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("interval sampler produced no captures")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestProfilerConcurrentTriggerAndList(t *testing.T) {
	p := newTestProfiler(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if g%2 == 0 {
					p.Trigger("slow_query", "q")
				} else {
					for _, c := range p.ListCaptures() {
						p.Get(c.ID)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestMountProf(t *testing.T) {
	p := newTestProfiler(4)
	p.Trigger("slow_query", "q-777")
	mux := http.NewServeMux()
	MountProf(mux, p)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/prof")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("list content-type = %q", ct)
	}
	var listing struct {
		Enabled  bool      `json:"enabled"`
		Captures []Capture `json:"captures"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if !listing.Enabled || len(listing.Captures) != 1 || listing.Captures[0].QueryID != "q-777" {
		t.Fatalf("listing = %+v", listing)
	}

	dl, err := http.Get(srv.URL + "/debug/prof/1")
	if err != nil {
		t.Fatal(err)
	}
	defer dl.Body.Close()
	if dl.StatusCode != http.StatusOK {
		t.Fatalf("download status = %d", dl.StatusCode)
	}
	if ct := dl.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("download content-type = %q", ct)
	}
	if cd := dl.Header.Get("Content-Disposition"); !strings.Contains(cd, "heap-1.pprof") {
		t.Errorf("content-disposition = %q", cd)
	}

	if resp, _ := http.Get(srv.URL + "/debug/prof/999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing capture status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := http.Get(srv.URL + "/debug/prof/xyz"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status = %d, want 400", resp.StatusCode)
	}
}

func TestSlowlogTriggersProfiler(t *testing.T) {
	p := newTestProfiler(8)
	l := &SlowQueryLog{Threshold: time.Millisecond, Profiler: p, Logger: newTextLogger(io.Discard)}

	root := NewSpan("MAP")
	root.DurationNS = int64(5 * time.Millisecond)
	l.ObserveQuery("q-slow", "SLOW = ...", root)

	l.ObserveKilled("q-budget", "BIG = ...", "killed", "budget", time.Second)
	l.ObserveKilled("q-shed", "SHED = ...", string(StatusShed), "queue full", 0)
	l.ObserveKilled("q-cancel", "C = ...", "canceled", "canceled", 0) // no trigger

	byQuery := map[string]string{}
	for _, c := range p.ListCaptures() {
		byQuery[c.QueryID] = c.Trigger
	}
	want := map[string]string{"q-slow": "slow_query", "q-budget": "budget_kill", "q-shed": "shed"}
	for q, trig := range want {
		if byQuery[q] != trig {
			t.Errorf("capture for %s = %q, want %q", q, byQuery[q], trig)
		}
	}
	if _, ok := byQuery["q-cancel"]; ok {
		t.Errorf("canceled query triggered a capture")
	}
}
