package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceNewQueryIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewQueryID()
		if !strings.HasPrefix(id, "q") {
			t.Fatalf("id %q lacks the q prefix", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestTraceQueryIDContext(t *testing.T) {
	if got := QueryIDFrom(nil); got != "" {
		t.Errorf("QueryIDFrom(nil) = %q", got)
	}
	ctx, id := EnsureQueryID(nil)
	if id == "" || QueryIDFrom(ctx) != id {
		t.Fatalf("EnsureQueryID minted %q, context carries %q", id, QueryIDFrom(ctx))
	}
	// A context that already has an identity keeps it.
	ctx2, id2 := EnsureQueryID(ctx)
	if id2 != id {
		t.Errorf("EnsureQueryID replaced %q with %q", id, id2)
	}
	if QueryIDFrom(ctx2) != id {
		t.Errorf("context lost the identity")
	}
}

func TestTraceSpanContext(t *testing.T) {
	if sp := SpanFrom(nil); sp != nil {
		t.Errorf("SpanFrom(nil) = %v", sp)
	}
	ctx, _ := EnsureQueryID(nil)
	if sp := SpanFrom(ctx); sp != nil {
		t.Errorf("span from span-less context = %v", sp)
	}
	root := NewSpan("ROOT")
	if got := SpanFrom(WithSpan(ctx, root)); got != root {
		t.Errorf("SpanFrom returned %v, want the attached span", got)
	}
	// WithSpan(nil) is a no-op, not a nil overwrite.
	withNil := WithSpan(WithSpan(ctx, root), nil)
	if got := SpanFrom(withNil); got != root {
		t.Errorf("WithSpan(nil) clobbered the span: %v", got)
	}
}

// TestTraceSnapshotWhileMutating hammers one span tree with concurrent
// setters while snapshotting and rendering it; run with -race this is the
// console's "profile a live query" guarantee.
func TestTraceSnapshotWhileMutating(t *testing.T) {
	root := NewSpan("ROOT")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		start := time.Now()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c := NewSpan("CHILD")
			c.Detail = "CHILD"
			root.AddChild(c)
			c.SetOutput(i, 2*i)
			c.SetAttr("attempts", "2")
			c.Finish(start)
			root.SetOutput(i, i)
			root.SetWorkers(i%8 + 1)
		}
	}()
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		snap := root.Snapshot()
		_ = snap.Render()
		_ = snap.Flatten()
		if _, err := json.Marshal(snap); err != nil {
			t.Fatalf("marshal: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestTraceRenderAttrsAndRemote(t *testing.T) {
	sp := NewSpan("MEMBER")
	sp.Detail = "MEMBER 1 node1"
	sp.Mode = "fed"
	sp.SetAttr("breaker", "closed")
	sp.SetAttr("attempts", "3")
	child := NewSpan("SCAN")
	child.Detail = "SCAN ENCODE"
	child.Mode = "serial"
	child.MarkRemote()
	sp.AddChild(child)
	sp.SetOutput(4, 40)
	got := sp.Render()
	want := "MEMBER 1 node1  [fed attempts=3 breaker=closed] time=0.0ms out=4s/40r\n" +
		"  SCAN ENCODE  [serial remote] time=0.0ms out=0s/0r\n"
	if got != want {
		t.Errorf("render:\n%s\nwant:\n%s", got, want)
	}
}

func TestTraceMarkRemoteRecursive(t *testing.T) {
	root := NewSpan("A")
	kid := NewSpan("B")
	grand := NewSpan("C")
	kid.AddChild(grand)
	root.AddChild(kid)
	root.MarkRemote()
	for _, sp := range root.Flatten() {
		if !sp.Remote {
			t.Errorf("span %s not marked remote", sp.Op)
		}
	}
}

func TestConsoleRegistryLifecycle(t *testing.T) {
	q := NewQueryRegistry(4)
	e := q.Begin("q1", "node", "X", "X = SELECT() D; MATERIALIZE X;")
	if e.Status() != StatusRunning {
		t.Fatalf("status = %s", e.Status())
	}
	if len(q.Active()) != 1 || q.Active()[0] != e {
		t.Fatalf("active = %v", q.Active())
	}
	if got := q.Get("q1"); got != e {
		t.Fatalf("Get = %v", got)
	}
	if e.Digest != ScriptDigest("X = SELECT() D; MATERIALIZE X;") || len(e.Digest) != 12 {
		t.Errorf("digest = %q", e.Digest)
	}
	q.Finish(e, StatusDone, "")
	if len(q.Active()) != 0 {
		t.Errorf("finished query still active")
	}
	if rec := q.Recent(); len(rec) != 1 || rec[0] != e {
		t.Errorf("recent = %v", rec)
	}
	if got := q.Get("q1"); got != e {
		t.Errorf("Get after finish = %v", got)
	}
	if e.Status() != StatusDone || e.Err() != "" {
		t.Errorf("status=%s err=%q", e.Status(), e.Err())
	}
	took := e.Took()
	time.Sleep(time.Millisecond)
	if e.Took() != took {
		t.Errorf("Took of a finished query still advances")
	}
}

func TestConsoleRingEviction(t *testing.T) {
	q := NewQueryRegistry(2)
	for _, id := range []string{"q1", "q2", "q3"} {
		q.Finish(q.Begin(id, "n", "X", "s"), StatusDone, "")
	}
	rec := q.Recent()
	if len(rec) != 2 {
		t.Fatalf("ring holds %d, want 2", len(rec))
	}
	for _, e := range rec {
		if e.ID == "q1" {
			t.Errorf("oldest entry survived eviction")
		}
	}
	if q.Get("q1") != nil {
		t.Errorf("evicted entry still findable")
	}
}

func TestConsoleNilRegistrySafe(t *testing.T) {
	var q *QueryRegistry
	e := q.Begin("q1", "n", "X", "s")
	if e != nil {
		t.Fatalf("nil registry returned an entry")
	}
	// Every entry method must receive nil safely.
	e.SetRoot(NewSpan("A"))
	e.SetParentSpan("p")
	e.InitMembers([]string{"a"})
	e.SetMember(0, MemberState{})
	_ = e.Members()
	_ = e.Status()
	_ = e.Err()
	_ = e.Took()
	_ = e.Root()
	_ = e.ParentSpan()
	q.Finish(e, StatusDone, "")
	if q.Active() != nil || q.Recent() != nil || q.Get("q1") != nil {
		t.Errorf("nil registry lists entries")
	}
}

func TestConsoleEntryProgress(t *testing.T) {
	q := NewQueryRegistry(4)
	e := q.Begin("q1", "n", "X", "s")
	root := NewSpan("SELECT")
	kid := NewSpan("SCAN")
	kid.SetOutput(3, 30)
	kid.Finish(time.Now().Add(-time.Millisecond)) // finished: nonzero duration
	root.AddChild(kid)
	e.SetRoot(root)
	p := e.Progress()
	if p.SpansSeen != 2 || p.SpansDone != 1 {
		t.Errorf("progress = %+v", p)
	}
	if p.SamplesOut != 3 || p.RegionsOut != 30 {
		t.Errorf("volumes = %+v", p)
	}
}

func TestConsoleHandlerListJSON(t *testing.T) {
	q := NewQueryRegistry(4)
	running := q.Begin("q-live", "node1", "X", "script")
	running.InitMembers([]string{"a", "b"})
	done := q.Begin("q-done", "node1", "Y", "script")
	q.Finish(done, StatusPartial, "")
	ts := httptest.NewServer(q.ConsoleHandler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/queries?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Active []struct {
			ID      string        `json:"id"`
			Status  QueryStatus   `json:"status"`
			Members []MemberState `json:"members"`
		} `json:"active"`
		Recent []struct {
			ID     string      `json:"id"`
			Status QueryStatus `json:"status"`
		} `json:"recent"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Active) != 1 || out.Active[0].ID != "q-live" || out.Active[0].Status != StatusRunning {
		t.Errorf("active = %+v", out.Active)
	}
	if len(out.Active) == 1 && len(out.Active[0].Members) != 2 {
		t.Errorf("members = %+v", out.Active[0].Members)
	}
	if len(out.Recent) != 1 || out.Recent[0].ID != "q-done" || out.Recent[0].Status != StatusPartial {
		t.Errorf("recent = %+v", out.Recent)
	}
}

func TestConsoleHandlerDrilldown(t *testing.T) {
	q := NewQueryRegistry(4)
	e := q.Begin("q-prof", "node1", "X", "script")
	root := NewSpan("SELECT")
	root.Detail = "SELECT region > 5"
	root.Mode = "serial"
	root.SetOutput(2, 20)
	e.SetRoot(root)
	q.Finish(e, StatusDone, "")
	ts := httptest.NewServer(q.ConsoleHandler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/queries/q-prof?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		ID       string `json:"id"`
		Profile  *Span  `json:"profile"`
		Rendered string `json:"rendered"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ID != "q-prof" || out.Profile == nil || out.Profile.Op != "SELECT" {
		t.Errorf("drill-down = %+v", out)
	}
	if !strings.Contains(out.Rendered, "SELECT region > 5") {
		t.Errorf("rendered = %q", out.Rendered)
	}

	// Unknown id is a 404, not an empty page.
	r404, err := http.Get(ts.URL + "/debug/queries/nope")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id status = %d", r404.StatusCode)
	}
}

func TestConsoleHandlerHTML(t *testing.T) {
	q := NewQueryRegistry(4)
	e := q.Begin("q-html", "node<1>", "X", "script")
	q.Finish(e, StatusFailed, "boom <tag>")
	ts := httptest.NewServer(q.ConsoleHandler())
	defer ts.Close()

	for _, path := range []string{"/debug/queries", "/debug/queries/q-html"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body := readAllString(t, resp)
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
			t.Errorf("%s content type = %q", path, ct)
		}
		if !strings.Contains(body, "q-html") {
			t.Errorf("%s does not mention the query", path)
		}
		if strings.Contains(body, "node<1>") {
			t.Errorf("%s leaks unescaped HTML", path)
		}
	}
}

func TestConsoleMountServesRegistry(t *testing.T) {
	mux := http.NewServeMux()
	Mount(mux, Default())
	ts := httptest.NewServer(mux)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/queries?format=json")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("console status = %d", resp.StatusCode)
	}
}

func readAllString(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
