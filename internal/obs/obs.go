// Package obs is the dependency-free observability layer: a metrics
// registry (atomic counters, gauges and histograms with Prometheus text
// exposition), a query span model for EXPLAIN ANALYZE-style profiles, and a
// structured slow-query log.
//
// The paper's Section 4 vision — parallel GMQL execution, federated query
// processing with size estimates, an Internet of Genomes — rests on being
// able to see where a query spends its time: which operator, which backend,
// which node. Every networked subsystem (engine, resilience, federation,
// genomenet) registers its metrics against the Default registry at package
// init, so any binary that imports them can export the whole system's state
// from one /metrics endpoint.
//
// The package deliberately has no third-party dependencies: metric handles
// are plain atomics, the exposition format is written by hand, and profiling
// piggybacks on the evaluator's existing recursion.
package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// defaultRegistry is the process-wide registry every package-level metric
// registers against.
var defaultRegistry = NewRegistry()

// Default returns the process-wide metrics registry.
func Default() *Registry { return defaultRegistry }

// Handler serves the registry in Prometheus text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// Mount registers the observability endpoints on a mux: /metrics serving the
// registry, /debug/queries serving the process-wide query console, /debug/prof
// serving the continuous profiler's capture ring, /debug/costs serving the
// operator cost registry, /debug/estimates serving the estimator accuracy
// registry, the /debug/pprof profiling handlers, and the /debug/ discovery
// index listing everything mounted here. Every serving binary (gmqld,
// genomenet host) calls this so operators get engine profiles, live query
// state, and runtime profiles from the same port the service answers on.
func Mount(mux *http.ServeMux, r *Registry) {
	mux.Handle("/metrics", r.Handler())
	RegisterEndpoint(mux, "/metrics", "Prometheus text exposition of every registered metric")
	MountQueries(mux, Queries())
	MountProf(mux, Prof())
	MountCosts(mux, Costs())
	MountEstimates(mux, Estimates())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	RegisterEndpoint(mux, "/debug/pprof/", "net/http/pprof runtime profiles (heap, cpu, goroutine, trace)")
	MountIndex(mux)
}

// MountQueries registers the live query console for one registry: the list
// view on /debug/queries and per-query drill-down on /debug/queries/{id}.
func MountQueries(mux *http.ServeMux, q *QueryRegistry) {
	h := q.ConsoleHandler()
	mux.Handle("/debug/queries", h)
	mux.Handle("/debug/queries/", h)
	RegisterEndpoint(mux, "/debug/queries", "live query console: active and recent queries with span-tree drill-down")
}

// MountState registers a JSON state endpoint: each GET serves the value fn
// returns at that moment, and desc files the endpoint in the /debug/ index.
// Subsystems obs cannot import (layering) use it to publish their debug
// state next to /metrics — e.g. the storage layer's per-dataset integrity
// reports on /debug/storage.
func MountState(mux *http.ServeMux, path, desc string, fn func() any) {
	mux.HandleFunc(path, func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(fn())
	})
	RegisterEndpoint(mux, path, desc)
}
