package obs

import (
	"strings"
	"testing"
)

// burn does enough heap-allocating work that the runtime counters must move.
// The buffers are parked in a package sink so they escape to the heap.
func burn() int {
	total := 0
	for i := 0; i < 200; i++ {
		buf := make([]byte, 4096)
		for j := range buf {
			buf[j] = byte(i + j)
		}
		for _, b := range buf {
			total += int(b)
		}
		burnBufs[i%len(burnBufs)] = buf
	}
	return total
}

var (
	burnSink int
	burnBufs [8][]byte
)

func TestReadResDeltas(t *testing.T) {
	base := ReadRes()
	for i := 0; i < 50; i++ {
		burnSink = burn()
	}
	d := ReadRes().Sub(base)
	if d.AllocObjs <= 0 {
		t.Errorf("AllocObjs delta = %d, want > 0", d.AllocObjs)
	}
	// 50 iterations × 200 × 4KiB ≈ 40MiB allocated; demand a loose floor.
	if d.AllocBytes < 1<<20 {
		t.Errorf("AllocBytes delta = %d, want >= 1MiB", d.AllocBytes)
	}
	if d.CPUNS < 0 {
		t.Errorf("CPUNS delta = %d, want >= 0", d.CPUNS)
	}
}

func TestResUsageSubClamps(t *testing.T) {
	a := ResUsage{CPUNS: 5, AllocObjs: 10, AllocBytes: 100}
	b := ResUsage{CPUNS: 10, AllocObjs: 3, AllocBytes: 200}
	d := a.Sub(b)
	if d.CPUNS != 0 || d.AllocObjs != 7 || d.AllocBytes != 0 {
		t.Errorf("Sub clamped = %+v, want {0 7 0}", d)
	}
}

func TestSpanResourceAttribution(t *testing.T) {
	sp := NewSpan("SELECT")
	sp.StartRes()
	burnSink = burn()
	sp.FinishRes()
	r := sp.Res()
	if r.AllocObjs <= 0 || r.AllocBytes <= 0 {
		t.Errorf("attributed allocations = %+v, want > 0", r)
	}

	// An unarmed span is left untouched by FinishRes.
	cold := NewSpan("SCAN")
	cold.FinishRes()
	if got := cold.Res(); got != (ResUsage{}) {
		t.Errorf("unarmed span attributed %+v, want zero", got)
	}
}

func TestSpanSelfRes(t *testing.T) {
	root := &Span{Op: "MAP", CPUNS: 100, AllocObjs: 50, AllocBytes: 1000}
	root.Children = []*Span{
		{Op: "SCAN", CPUNS: 30, AllocObjs: 10, AllocBytes: 300},
		{Op: "SCAN", CPUNS: 20, AllocObjs: 45, AllocBytes: 900},
	}
	self := root.SelfRes()
	// Children overlap (concurrent inputs) can exceed the parent's window on
	// some components; each clamps independently.
	want := ResUsage{CPUNS: 50, AllocObjs: 0, AllocBytes: 0}
	if self != want {
		t.Errorf("SelfRes = %+v, want %+v", self, want)
	}
}

func TestZeroDurationsClearsResources(t *testing.T) {
	sp := &Span{Op: "SELECT", DurationNS: 7, CPUNS: 5, AllocObjs: 3, AllocBytes: 11}
	sp.Children = []*Span{{Op: "SCAN", CPUNS: 2}}
	sp.ZeroDurations()
	if sp.Res() != (ResUsage{}) || sp.Children[0].Res() != (ResUsage{}) {
		t.Errorf("ZeroDurations left resources: %+v / %+v", sp.Res(), sp.Children[0].Res())
	}
	if strings.Contains(sp.Render(), "cpu=") {
		t.Errorf("zeroed render still shows cpu=: %q", sp.Render())
	}
}

func TestRenderShowsResources(t *testing.T) {
	sp := &Span{Op: "MAP", Mode: "serial", CPUNS: 2_500_000, AllocObjs: 1234, AllocBytes: 5 << 20}
	got := sp.Render()
	if !strings.Contains(got, "cpu=2.5ms") {
		t.Errorf("render missing cpu: %q", got)
	}
	if !strings.Contains(got, "allocs=1234/5.0MiB") {
		t.Errorf("render missing allocs: %q", got)
	}
}

func TestSizeString(t *testing.T) {
	cases := map[int64]string{
		512:        "512B",
		2048:       "2.0KiB",
		3 << 20:    "3.0MiB",
		1 << 30:    "1.0GiB",
		1536 << 20: "1.5GiB",
		1234567890: "1.1GiB",
	}
	for n, want := range cases {
		if got := sizeString(n); got != want {
			t.Errorf("sizeString(%d) = %q, want %q", n, got, want)
		}
	}
}
