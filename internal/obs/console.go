package obs

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strings"
	"time"
)

// The live query console: /debug/queries lists a process's active and
// recently finished queries; /debug/queries/{id} drills into one, rendering
// its (possibly still growing) span tree — the merged federated profile on a
// coordinator, the local execution profile on a node. Both answer HTML for
// browsers and JSON for tools (?format=json or an Accept: application/json
// header), in the spirit of the Flink/Spark web UIs the ROADMAP's
// production-scale north star calls for.

// querySummary is the JSON shape of one console row.
type querySummary struct {
	ID         string        `json:"id"`
	Node       string        `json:"node"`
	Var        string        `json:"var"`
	Digest     string        `json:"digest"`
	ParentSpan string        `json:"parent_span,omitempty"`
	Status     QueryStatus   `json:"status"`
	Err        string        `json:"err,omitempty"`
	StartedAt  time.Time     `json:"started_at"`
	TookMS     float64       `json:"took_ms"`
	Members    []MemberState `json:"members,omitempty"`
	Progress   Progress      `json:"progress"`
}

func summarize(e *QueryEntry) querySummary {
	return querySummary{
		ID: e.ID, Node: e.Node, Var: e.Var, Digest: e.Digest,
		ParentSpan: e.ParentSpan(),
		Status:     e.Status(), Err: e.Err(),
		StartedAt: e.Start,
		TookMS:    float64(e.Took().Microseconds()) / 1e3,
		Members:   e.Members(),
		Progress:  e.Progress(),
	}
}

// WantJSON reports whether the request asked for the JSON view (a
// ?format=json query or an Accept: application/json header). Debug consoles
// outside this package (the repository catalog) share the convention.
func WantJSON(r *http.Request) bool {
	if r.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

// ConsoleHandler serves the query console over this registry.
func (q *QueryRegistry) ConsoleHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		id := strings.Trim(strings.TrimPrefix(r.URL.Path, "/debug/queries"), "/")
		if id == "" {
			q.serveList(w, r)
			return
		}
		q.serveQuery(w, r, id)
	})
}

func (q *QueryRegistry) serveList(w http.ResponseWriter, r *http.Request) {
	active, recent := q.Active(), q.Recent()
	if WantJSON(r) {
		type listResponse struct {
			Active []querySummary `json:"active"`
			Recent []querySummary `json:"recent"`
		}
		resp := listResponse{Active: []querySummary{}, Recent: []querySummary{}}
		for _, e := range active {
			resp.Active = append(resp.Active, summarize(e))
		}
		for _, e := range recent {
			resp.Recent = append(resp.Recent, summarize(e))
		}
		WriteJSON(w, resp)
		return
	}
	var b strings.Builder
	b.WriteString(consoleHeader)
	fmt.Fprintf(&b, "<h1>queries</h1><p>%d active, %d recent</p>", len(active), len(recent))
	writeTable(&b, "active", active)
	writeTable(&b, "recent", recent)
	b.WriteString(consoleFooter)
	WriteHTML(w, b.String())
}

func (q *QueryRegistry) serveQuery(w http.ResponseWriter, r *http.Request, id string) {
	e := q.Get(id)
	if e == nil {
		http.Error(w, "unknown query "+id, http.StatusNotFound)
		return
	}
	root := e.Root()
	if WantJSON(r) {
		type queryResponse struct {
			querySummary
			Profile  *Span  `json:"profile,omitempty"`
			Rendered string `json:"rendered,omitempty"`
		}
		resp := queryResponse{querySummary: summarize(e), Profile: root}
		if root != nil {
			resp.Rendered = root.Render()
		}
		WriteJSON(w, resp)
		return
	}
	var b strings.Builder
	b.WriteString(consoleHeader)
	s := summarize(e)
	fmt.Fprintf(&b, "<h1>query %s</h1>", html.EscapeString(s.ID))
	fmt.Fprintf(&b, "<p><span class=st-%s>%s</span> node=%s var=%s digest=%s took=%.1fms",
		s.Status, s.Status, html.EscapeString(s.Node), html.EscapeString(s.Var), s.Digest, s.TookMS)
	if s.ParentSpan != "" {
		fmt.Fprintf(&b, " parent=%s", html.EscapeString(s.ParentSpan))
	}
	b.WriteString("</p>")
	if s.Err != "" {
		fmt.Fprintf(&b, "<p class=err>%s</p>", html.EscapeString(s.Err))
	}
	fmt.Fprintf(&b, "<p>progress: %d/%d operators done, %ds/%dr produced, cpu=%.1fms allocs=%d/%s</p>",
		s.Progress.SpansDone, s.Progress.SpansSeen, s.Progress.SamplesOut, s.Progress.RegionsOut,
		s.Progress.CPUMS, s.Progress.AllocObjs, sizeString(s.Progress.AllocBytes))
	if len(s.Members) > 0 {
		b.WriteString("<h2>members</h2><table><tr><th>node</th><th>stage</th><th>samples</th><th>regions</th><th>attempts</th><th>breaker</th><th>bytes</th><th>error</th></tr>")
		for _, m := range s.Members {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%s</td><td>%d</td><td>%s</td></tr>",
				html.EscapeString(m.Node), html.EscapeString(m.Stage), m.Samples, m.Regions,
				m.Attempts, html.EscapeString(m.Breaker), m.Bytes, html.EscapeString(m.Err))
		}
		b.WriteString("</table>")
	}
	if root != nil {
		fmt.Fprintf(&b, "<h2>profile</h2><pre>%s</pre>", html.EscapeString(root.Render()))
	} else {
		b.WriteString("<p>no profile recorded</p>")
	}
	b.WriteString(consoleFooter)
	WriteHTML(w, b.String())
}

func writeTable(b *strings.Builder, title string, entries []*QueryEntry) {
	fmt.Fprintf(b, "<h2>%s</h2>", title)
	if len(entries) == 0 {
		b.WriteString("<p>none</p>")
		return
	}
	b.WriteString("<table><tr><th>id</th><th>status</th><th>node</th><th>var</th><th>digest</th><th>took</th><th>cpu</th><th>allocs</th><th>progress</th><th>members</th></tr>")
	for _, e := range entries {
		s := summarize(e)
		done := 0
		for _, m := range s.Members {
			if m.Stage == "done" || strings.HasPrefix(m.Stage, "failed") {
				done++
			}
		}
		members := ""
		if len(s.Members) > 0 {
			members = fmt.Sprintf("%d/%d", done, len(s.Members))
		}
		fmt.Fprintf(b, "<tr><td><a href=\"/debug/queries/%s\">%s</a></td><td><span class=st-%s>%s</span></td><td>%s</td><td>%s</td><td>%s</td><td>%.1fms</td><td>%.1fms</td><td>%d/%s</td><td>%d/%d ops, %ds/%dr</td><td>%s</td></tr>",
			html.EscapeString(s.ID), html.EscapeString(s.ID), s.Status, s.Status,
			html.EscapeString(s.Node), html.EscapeString(s.Var), s.Digest, s.TookMS,
			s.Progress.CPUMS, s.Progress.AllocObjs, sizeString(s.Progress.AllocBytes),
			s.Progress.SpansDone, s.Progress.SpansSeen, s.Progress.SamplesOut, s.Progress.RegionsOut,
			members)
	}
	b.WriteString("</table>")
}

// WriteJSON serves v as indented JSON — the shared debug-console JSON
// writer.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// WriteHTML serves a complete HTML document — the shared debug-console HTML
// writer.
func WriteHTML(w http.ResponseWriter, body string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(body))
}

// PageHeader opens a debug-console HTML document with the shared monospace
// style sheet; PageFooter (the ConsoleFooter constant) closes it. Consoles
// in other packages (the repository catalog) use the same frame so every
// /debug page looks alike.
func PageHeader(title string) string {
	return `<!DOCTYPE html><html><head><title>` + html.EscapeString(title) + `</title><style>
body{font-family:monospace;margin:2em}
table{border-collapse:collapse}
td,th{border:1px solid #999;padding:2px 8px;text-align:left}
pre{background:#f4f4f4;padding:1em;overflow-x:auto}
.bar{background:#8ab;display:inline-block;height:0.8em}
.st-running{color:#06c}.st-done,.st-verified{color:#080}.st-partial,.st-stale{color:#b60}.st-failed,.st-unverified,.err{color:#c00}
.st-canceled{color:#a3a}.st-shed{color:#c60}
</style></head><body>`
}

// PageFooter closes a PageHeader document.
const PageFooter = `</body></html>`

var consoleHeader = PageHeader("queries")

const consoleFooter = PageFooter
