package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// Federation trace headers. A requester stamps every HTTP request of a
// federated query with the query's identity; the serving node attaches its
// own execution profile to that identity in its query registry, so one
// QueryID correlates console entries, slow-log lines and partial-failure
// reports across every node a query touched.
const (
	// HeaderQueryID carries the query's process-spanning identity.
	HeaderQueryID = "X-Query-ID"
	// HeaderParentSpan names the coordinator-side span (e.g. "q.../member1")
	// the remote execution hangs under in the merged profile.
	HeaderParentSpan = "X-Parent-Span"
)

// queryIDSeq disambiguates IDs minted in the same process; the random prefix
// disambiguates processes.
var queryIDSeq atomic.Uint64

// NewQueryID mints a globally unique query identity: "q" + 6 random hex
// bytes + a process-local sequence number. The sequence keeps IDs unique
// even if the random source repeats, and makes same-process IDs sortable by
// creation order.
func NewQueryID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; here the
		// sequence number alone still guarantees process-local uniqueness.
		for i := range b {
			b[i] = 0
		}
	}
	return fmt.Sprintf("q%s-%d", hex.EncodeToString(b[:]), queryIDSeq.Add(1))
}

type queryIDKey struct{}

// WithQueryID returns a context carrying the query identity.
func WithQueryID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, queryIDKey{}, id)
}

// QueryIDFrom extracts the query identity, "" when absent.
func QueryIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(queryIDKey{}).(string)
	return id
}

// EnsureQueryID returns the context's query identity, minting and attaching
// a fresh one when absent.
func EnsureQueryID(ctx context.Context) (context.Context, string) {
	if ctx == nil {
		ctx = context.Background()
	}
	if id := QueryIDFrom(ctx); id != "" {
		return ctx, id
	}
	id := NewQueryID()
	return WithQueryID(ctx, id), id
}

type spanKey struct{}

// WithSpan attaches a live span to the context, so layers that only see a
// context (the federation client's chunked-download loop, for example) can
// hang their stage spans under the caller's without a signature change.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFrom extracts the context's span, nil when absent — and nil spans are
// no-ops everywhere, so callers use the result unconditionally.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}
