package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"path"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Continuous profiling: when a slow query, budget kill, or load shed shows up
// in the metrics, the question is always "what was the process doing *then*?"
// — and by the time anyone attaches to /debug/pprof the moment is gone. The
// Profiler keeps a bounded in-memory ring of recent pprof captures, written
// both on a timer (the continuous part) and at the exact moment something
// goes wrong (slow-query, budget-kill, and shed events trigger a capture),
// so the evidence is already on the server when the operator arrives.
// /debug/prof lists the ring and serves each capture for `go tool pprof`.
//
// Heap captures are synchronous (pprof.Lookup("heap") is a quick snapshot).
// CPU captures need a sampling window and the runtime allows only one CPU
// profile process-wide, so they run on a background goroutine behind a busy
// guard; a trigger that arrives mid-window attaches to the running capture
// rather than failing. Event captures are rate-limited (MinGap) so a
// sustained overload — thousands of shed queries per second — produces a few
// captures, not a capture storm.

var (
	metricProfCaptures = Default().CounterVec("genogo_prof_captures_total",
		"Profiler captures taken, by kind (cpu, heap) and trigger.", "kind", "trigger")
	metricProfEvicted = Default().Counter("genogo_prof_evicted_total",
		"Profiler captures evicted from the ring to make room for newer ones.")
	metricProfSuppressed = Default().Counter("genogo_prof_suppressed_total",
		"Event-triggered captures suppressed by the MinGap rate limit.")
)

// Capture is one stored pprof profile. The pprof bytes are kept internal;
// ListCaptures returns metadata, Get returns the bytes for download.
type Capture struct {
	// ID is the download handle, monotonically increasing per profiler.
	ID int `json:"id"`
	// Kind is "heap" or "cpu".
	Kind string `json:"kind"`
	// Trigger says why the capture exists: "interval", "slow_query",
	// "budget_kill", "shed", or "manual".
	Trigger string `json:"trigger"`
	// QueryID is the query that tripped an event trigger, when known.
	QueryID string `json:"query_id,omitempty"`
	// Taken is when the capture completed.
	Taken time.Time `json:"taken"`
	// WindowMS is the sampling window for CPU captures (0 for heap).
	WindowMS int64 `json:"window_ms,omitempty"`
	// Bytes is the size of the stored profile.
	Bytes int `json:"bytes"`

	data []byte
}

// Profiler keeps the capture ring. The zero value is disabled: every method
// is safe to call and does nothing, so library code can trigger
// unconditionally and only binaries that opt in (gmqld -prof) pay anything.
type Profiler struct {
	// CPUWindow is the sampling window for CPU captures; <= 0 disables CPU
	// capture (heap-only profiling).
	CPUWindow time.Duration
	// MinGap is the minimum spacing between event-triggered captures.
	MinGap time.Duration

	mu       sync.Mutex
	enabled  bool
	ringCap  int
	ring     []*Capture
	nextID   int
	lastTrig time.Time

	cpuBusy atomic.Bool
	stop    chan struct{}
}

// defaultProfiler is the process-wide profiler library code triggers against.
var defaultProfiler = &Profiler{}

// Prof returns the process-wide profiler. It stays disabled (and free) until
// a binary calls Enable.
func Prof() *Profiler { return defaultProfiler }

// Enable turns the profiler on with a ring of ringCap captures. Idempotent;
// ringCap < 1 keeps the previous (or a default 32-slot) ring.
func (p *Profiler) Enable(ringCap int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.enabled = true
	if ringCap >= 1 {
		p.ringCap = ringCap
	} else if p.ringCap == 0 {
		p.ringCap = 32
	}
	if p.MinGap == 0 {
		p.MinGap = 10 * time.Second
	}
}

// Enabled reports whether captures are being taken.
func (p *Profiler) Enabled() bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.enabled
}

// Start launches the background sampler: one heap capture (plus a CPU window,
// if configured) every interval, keeping the ring fresh even when nothing is
// going wrong — the "what does normal look like" baseline regressions are
// compared against. Returns a stop function; Start on a disabled profiler is
// a no-op.
func (p *Profiler) Start(interval time.Duration) (stop func()) {
	if p == nil || !p.Enabled() || interval <= 0 {
		return func() {}
	}
	p.mu.Lock()
	if p.stop != nil {
		p.mu.Unlock()
		return func() {} // already running; owner stops it
	}
	ch := make(chan struct{})
	p.stop = ch
	p.mu.Unlock()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ch:
				return
			case <-t.C:
				p.captureHeap("interval", "")
				p.captureCPUAsync("interval", "")
			}
		}
	}()
	return func() {
		p.mu.Lock()
		if p.stop == ch {
			p.stop = nil
		}
		p.mu.Unlock()
		close(ch)
	}
}

// Trigger records an event-triggered capture: a synchronous heap snapshot and
// (when CPUWindow is set) an asynchronous CPU window, tagged with the trigger
// name and the query that tripped it. Rate-limited by MinGap; a disabled or
// nil profiler ignores the call, so triggering is free unless a binary
// opted in.
func (p *Profiler) Trigger(trigger, queryID string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if !p.enabled {
		p.mu.Unlock()
		return
	}
	now := time.Now()
	if p.MinGap > 0 && !p.lastTrig.IsZero() && now.Sub(p.lastTrig) < p.MinGap {
		p.mu.Unlock()
		metricProfSuppressed.Inc()
		return
	}
	p.lastTrig = now
	p.mu.Unlock()
	p.captureHeap(trigger, queryID)
	p.captureCPUAsync(trigger, queryID)
}

// captureHeap takes a synchronous heap snapshot into the ring.
func (p *Profiler) captureHeap(trigger, queryID string) {
	prof := pprof.Lookup("heap")
	if prof == nil {
		return
	}
	var buf bytes.Buffer
	if err := prof.WriteTo(&buf, 0); err != nil {
		return
	}
	p.store(&Capture{
		Kind: "heap", Trigger: trigger, QueryID: queryID,
		Taken: time.Now(), Bytes: buf.Len(), data: buf.Bytes(),
	})
	metricProfCaptures.With("heap", trigger).Inc()
}

// captureCPUAsync samples a CPU profile for CPUWindow on a fresh goroutine.
// The runtime allows one CPU profile per process, so a capture that finds the
// profiler busy returns immediately — the running window already covers the
// moment the trigger fired.
func (p *Profiler) captureCPUAsync(trigger, queryID string) {
	window := p.CPUWindow
	if window <= 0 {
		return
	}
	if !p.cpuBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer p.cpuBusy.Store(false)
		var buf bytes.Buffer
		if err := pprof.StartCPUProfile(&buf); err != nil {
			return // another CPU profile (e.g. /debug/pprof/profile) is active
		}
		time.Sleep(window)
		pprof.StopCPUProfile()
		p.store(&Capture{
			Kind: "cpu", Trigger: trigger, QueryID: queryID,
			Taken: time.Now(), WindowMS: window.Milliseconds(),
			Bytes: buf.Len(), data: buf.Bytes(),
		})
		metricProfCaptures.With("cpu", trigger).Inc()
	}()
}

// store appends a capture, evicting the oldest beyond the ring capacity.
func (p *Profiler) store(c *Capture) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.enabled {
		return
	}
	p.nextID++
	c.ID = p.nextID
	p.ring = append(p.ring, c)
	for len(p.ring) > p.ringCap {
		p.ring[0] = nil
		p.ring = p.ring[1:]
		metricProfEvicted.Inc()
	}
}

// ListCaptures returns the ring's metadata, newest first.
func (p *Profiler) ListCaptures() []Capture {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Capture, 0, len(p.ring))
	for _, c := range p.ring {
		cc := *c
		cc.data = nil
		out = append(out, cc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	return out
}

// Get returns one capture's metadata and pprof bytes by id.
func (p *Profiler) Get(id int) (Capture, []byte, bool) {
	if p == nil {
		return Capture{}, nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.ring {
		if c.ID == id {
			cc := *c
			cc.data = nil
			return cc, c.data, true
		}
	}
	return Capture{}, nil, false
}

// MountProf registers the capture ring on a mux: GET /debug/prof lists the
// captures as JSON (enabled state, ring metadata); GET /debug/prof/{id}
// downloads one capture as a pprof protobuf ready for `go tool pprof`.
func MountProf(mux *http.ServeMux, p *Profiler) {
	serve := func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		rest := trimPathPrefix(req.URL.Path, "/debug/prof")
		if rest == "" {
			writeJSON(w, map[string]any{
				"enabled":  p.Enabled(),
				"captures": p.ListCaptures(),
			})
			return
		}
		id, err := strconv.Atoi(rest)
		if err != nil {
			http.Error(w, "bad capture id", http.StatusBadRequest)
			return
		}
		meta, data, ok := p.Get(id)
		if !ok {
			http.Error(w, "no such capture (evicted?)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%q", fmt.Sprintf("%s-%d.pprof", meta.Kind, meta.ID)))
		_, _ = w.Write(data)
	}
	mux.HandleFunc("/debug/prof", serve)
	mux.HandleFunc("/debug/prof/", serve)
	RegisterEndpoint(mux, "/debug/prof",
		"continuous profiler capture ring: slow-query pprof captures for download")
}

// trimPathPrefix strips prefix and any leading "/" from p, cleaning the rest
// to a single path element ("" when p is the prefix itself).
func trimPathPrefix(p, prefix string) string {
	rest := path.Clean("/" + p[len(prefix):])
	if rest == "/" {
		return ""
	}
	return rest[1:]
}

// writeJSON serves v as indented JSON.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
