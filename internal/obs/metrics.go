package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's type.
type Kind uint8

// Metric kinds, mirroring the Prometheus exposition TYPE values.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind as the exposition format spells it.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// DefBuckets are the default histogram buckets, in seconds — the classic
// latency ladder from 1ms to 10s.
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// labelKeySep joins label values into a series key (an ASCII unit
// separator). Values are escaped by seriesKey before joining, so even a
// hostile label value containing the separator cannot collide two series or
// corrupt the exposition.
const labelKeySep = "\x1f"

// seriesKey builds the injective map key for one label-value tuple:
// backslashes and separators inside values are escaped, so distinct tuples
// always produce distinct keys (["a\x1f", "b"] vs ["a", "\x1fb"]). The
// original values are stored alongside the series — the key is never
// decoded.
func seriesKey(values []string) string {
	needEscape := false
	for _, v := range values {
		if strings.ContainsAny(v, `\`+labelKeySep) {
			needEscape = true
			break
		}
	}
	if !needEscape {
		return strings.Join(values, labelKeySep) // fast path
	}
	esc := make([]string, len(values))
	for i, v := range values {
		v = strings.ReplaceAll(v, `\`, `\\`)
		esc[i] = strings.ReplaceAll(v, labelKeySep, `\s`)
	}
	return strings.Join(esc, labelKeySep)
}

// Registry holds metric families. Registration is idempotent: asking for an
// already-registered name returns the existing family's handles, so tests
// and independently initialized packages can share series. All methods are
// safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	onScrape []func()
}

// OnScrape registers a hook that runs at the start of every WriteText — the
// place to refresh scrape-time values like uptime. Hooks run outside the
// registry lock and must be safe for concurrent scrapes.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.onScrape = append(r.onScrape, fn)
	r.mu.Unlock()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with a fixed label set.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histograms only

	mu     sync.Mutex
	series map[string]any      // label-values key -> *Counter | *Gauge | *Histogram
	vals   map[string][]string // key -> the original label values (keys are escaped, never decoded)
	keys   []string            // insertion-ordered keys, sorted at exposition
}

// register returns the family for name, creating it on first use. A name
// re-registered with a different kind or label arity is a programming error
// and panics — two packages fighting over one metric name must fail loudly,
// not silently split the series.
func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s with %d labels (was %s with %d)",
				name, kind, len(labels), f.kind, len(f.labels)))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...),
		series: make(map[string]any),
		vals:   make(map[string][]string),
	}
	if kind == KindHistogram {
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		f.buckets = append([]float64(nil), buckets...)
		sort.Float64s(f.buckets)
	}
	r.families[name] = f
	return f
}

// get returns the series for the label values, creating it with mk on first
// use.
func (f *family) get(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := mk()
	f.series[key] = s
	f.vals[key] = append([]string(nil), values...)
	f.keys = append(f.keys, key)
	return s
}

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing metric. The zero value is ready to
// use; counters obtained from a Registry are shared by name.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on first
// use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values, func() any { return new(Counter) }).(*Counter)
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, nil, nil)
	return f.get(nil, func() any { return new(Counter) }).(*Counter)
}

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, KindCounter, labels, nil)}
}

// ---------------------------------------------------------------------------
// Gauge

// Gauge is an integer-valued metric that can go up and down (queue depths,
// pool occupancy, staged results).
type Gauge struct{ v atomic.Int64 }

// Set stores an absolute value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative allowed).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values, func() any { return new(Gauge) }).(*Gauge)
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, nil, nil)
	return f.get(nil, func() any { return new(Gauge) }).(*Gauge)
}

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, KindGauge, labels, nil)}
}

// ---------------------------------------------------------------------------
// Histogram

// Histogram accumulates observations into cumulative buckets, plus a sum and
// a count — enough for rate, mean, and quantile estimates downstream.
// Observation is lock-free: one atomic add on the bucket, a CAS loop on the
// float sum.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []atomic.Int64
	sum    atomicFloat
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the total of all observations.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// atomicFloat is a float64 with atomic add (CAS on the bit pattern).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// Histogram registers (or fetches) an unlabeled histogram. Nil buckets mean
// DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, KindHistogram, nil, buckets)
	return f.get(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec registers (or fetches) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, KindHistogram, labels, buckets)}
}

// ---------------------------------------------------------------------------
// Exposition

// WriteText renders the registry in the Prometheus text exposition format
// (version 0.0.4): families sorted by name, series sorted by label values,
// HELP and TYPE lines emitted even for families with no series yet, so a
// scrape always advertises every metric the process can produce.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	hooks := append([]func(){}, r.onScrape...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.writeText(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) writeText(b *strings.Builder) {
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	f.mu.Lock()
	keys := append([]string(nil), f.keys...)
	series := make(map[string]any, len(keys))
	vals := make(map[string][]string, len(keys))
	for _, k := range keys {
		series[k] = f.series[k]
		vals[k] = f.vals[k]
	}
	f.mu.Unlock()
	sort.Strings(keys)
	for _, key := range keys {
		values := vals[key]
		switch m := series[key].(type) {
		case *Counter:
			fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(f.labels, values, ""), m.Value())
		case *Gauge:
			fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(f.labels, values, ""), m.Value())
		case *Histogram:
			cum := int64(0)
			for i, bound := range m.bounds {
				cum += m.counts[i].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, values, formatFloat(bound)), cum)
			}
			cum += m.counts[len(m.bounds)].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, values, "+Inf"), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, values, ""), formatFloat(m.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, values, ""), m.Count())
		}
	}
}

// labelString renders {a="x",b="y"} (plus le for histogram buckets), or ""
// when there are no labels.
func labelString(names, values []string, le string) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
