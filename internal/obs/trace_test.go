package obs

import (
	"encoding/json"
	"io"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTextLogger writes slog text records to w with timestamps stripped, so
// assertions are deterministic.
func newTextLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{}
			}
			return a
		},
	}))
}

func buildTree() *Span {
	scan1 := &Span{Op: "SCAN", Detail: "SCAN ANNOTATIONS", Mode: "stream", DurationNS: 1e6, SamplesOut: 1, RegionsOut: 50}
	sel := &Span{Op: "SELECT", Detail: "SELECT annType == 'promoter'", Mode: "stream", DurationNS: 3e6, SamplesIn: 1, RegionsIn: 50, SamplesOut: 1, RegionsOut: 45}
	sel.AddChild(scan1)
	scan2 := &Span{Op: "SCAN", Detail: "SCAN ENCODE", Mode: "stream", DurationNS: 2e6, SamplesOut: 40, RegionsOut: 8000, CacheHit: true}
	root := &Span{Op: "MAP", Detail: "MAP peak_count AS COUNT", Mode: "stream", DurationNS: 10e6,
		SamplesIn: 41, RegionsIn: 8045, SamplesOut: 1, RegionsOut: 45, Workers: 4, Fused: nil}
	root.AddChild(sel)
	root.AddChild(scan2)
	return root
}

func TestMetricsSpanRender(t *testing.T) {
	root := buildTree()
	root.ZeroDurations()
	want := `MAP peak_count AS COUNT  [stream w=4] time=0.0ms in=41s/8045r out=1s/45r
  SELECT annType == 'promoter'  [stream] time=0.0ms in=1s/50r out=1s/45r
    SCAN ANNOTATIONS  [stream] time=0.0ms out=1s/50r
  SCAN ENCODE  [stream cached] time=0.0ms out=40s/8000r
`
	if got := root.Render(); got != want {
		t.Errorf("render mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestMetricsSpanSelfAndTop(t *testing.T) {
	root := buildTree()
	// root self = 10ms - (3ms + 2ms) = 5ms; sel self = 3-1 = 2ms.
	if got := root.SelfNS(); got != 5e6 {
		t.Errorf("root self = %d, want 5e6", got)
	}
	top := root.TopBySelf(2)
	if len(top) != 2 || top[0].Op != "MAP" || top[1].Op != "SCAN" && top[1].Op != "SELECT" {
		t.Errorf("unexpected top spans: %v %v", top[0].Op, top[1].Op)
	}
	if top[1].SelfNS() != 2e6 {
		t.Errorf("second self = %d, want 2e6", top[1].SelfNS())
	}
	// Negative self (concurrent children overlap) clamps to zero.
	neg := &Span{DurationNS: 5}
	neg.AddChild(&Span{DurationNS: 10})
	if neg.SelfNS() != 0 {
		t.Errorf("self = %d, want 0", neg.SelfNS())
	}
}

func TestMetricsSpanJSONRoundTrip(t *testing.T) {
	root := buildTree()
	raw, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var back Span
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Render() != root.Render() {
		t.Errorf("round trip changed the profile:\n%s\nvs\n%s", back.Render(), root.Render())
	}
	if !strings.Contains(string(raw), `"cache_hit":true`) {
		t.Errorf("cache hit not marshaled: %s", raw)
	}
}

func TestMetricsSpanConcurrentChildren(t *testing.T) {
	root := NewSpan("UNION")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			root.AddChild(NewSpan("SCAN"))
		}()
	}
	wg.Wait()
	if len(root.Children) != 16 {
		t.Errorf("children = %d, want 16", len(root.Children))
	}
	// nil receiver and nil child are no-ops, not panics.
	var nilSpan *Span
	nilSpan.AddChild(NewSpan("X"))
	root.AddChild(nil)
	if len(root.Children) != 16 {
		t.Errorf("nil child was appended")
	}
}

func TestMetricsSlowQueryLog(t *testing.T) {
	var buf strings.Builder
	log := &SlowQueryLog{Threshold: time.Millisecond, Logger: newTextLogger(&buf)}
	fast := &Span{Op: "MAP", DurationNS: int64(100 * time.Microsecond)}
	log.Observe("FAST", fast)
	if buf.Len() != 0 {
		t.Errorf("fast query logged: %s", buf.String())
	}
	root := buildTree() // 10ms
	log.Observe("RESULT", root)
	out := buf.String()
	for _, want := range []string{"slow query", "query=RESULT", "span1.op=MAP"} {
		if !strings.Contains(out, want) {
			t.Errorf("slow log missing %q:\n%s", want, out)
		}
	}
	// Disabled and nil logs are safe.
	(&SlowQueryLog{}).Observe("X", root)
	var nilLog *SlowQueryLog
	nilLog.Observe("X", root)
}
