package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"sync"
	"time"
)

// QueryStatus is a registry entry's lifecycle position.
type QueryStatus string

// Entry lifecycle: Running until Finish, then one of the terminal states.
const (
	StatusRunning  QueryStatus = "running"
	StatusDone     QueryStatus = "done"
	StatusPartial  QueryStatus = "partial" // degraded-mode federated success
	StatusFailed   QueryStatus = "failed"
	StatusCanceled QueryStatus = "canceled" // lifecycle kill: disconnect, deadline, budget
	StatusShed     QueryStatus = "shed"     // rejected by admission control, never ran
)

// MemberState is the console's view of one federation member's leg of a
// query: which stage it is in (or failed at), how much it returned, and the
// resilience context (retry attempts, breaker position) of its requests.
type MemberState struct {
	Node     string `json:"node"`
	Stage    string `json:"stage"` // "execute", "fetch", "done", or "failed:<stage>"
	Err      string `json:"err,omitempty"`
	Samples  int    `json:"samples"`
	Regions  int    `json:"regions"`
	Attempts int    `json:"attempts,omitempty"`
	Breaker  string `json:"breaker,omitempty"`
	Bytes    int64  `json:"bytes,omitempty"`
}

// QueryEntry is one query's record in a QueryRegistry: identity, script
// digest, timing, per-member state for federated queries, and the live root
// span. All methods are safe for concurrent use; the console reads entries
// while the query executes.
type QueryEntry struct {
	ID string
	// Node is the name of the process-side actor (a node name, "federator",
	// "gmql").
	Node string
	// Var is the materialized variable the query evaluates.
	Var string
	// Digest is a short SHA-256 of the script, stable across nodes.
	Digest string
	Start  time.Time

	mu sync.Mutex
	// parentSpan is the coordinator span a remote execution hangs under
	// (from X-Parent-Span), "" for local or coordinator entries.
	parentSpan string
	status     QueryStatus
	err        string
	end        time.Time
	root       *Span
	members    []MemberState
}

// ScriptDigest is the registry's script identity: the first 12 hex chars of
// the script's SHA-256, matching what every node computes for the same text.
func ScriptDigest(script string) string {
	sum := sha256.Sum256([]byte(script))
	return hex.EncodeToString(sum[:])[:12]
}

// SetRoot publishes the query's live span tree; the console snapshots it for
// mid-flight progress and the finished profile.
func (e *QueryEntry) SetRoot(sp *Span) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.root = sp
	e.mu.Unlock()
}

// SetParentSpan records the coordinator span this execution hangs under.
func (e *QueryEntry) SetParentSpan(ref string) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.parentSpan = ref
	e.mu.Unlock()
}

// ParentSpan reports the coordinator span reference ("" for local queries).
func (e *QueryEntry) ParentSpan() string {
	if e == nil {
		return ""
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.parentSpan
}

// Root snapshots the entry's span tree (nil when the query recorded none).
func (e *QueryEntry) Root() *Span {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	sp := e.root
	e.mu.Unlock()
	return sp.Snapshot()
}

// InitMembers sizes the per-member state table for a federated query.
func (e *QueryEntry) InitMembers(nodes []string) {
	if e == nil {
		return
	}
	ms := make([]MemberState, len(nodes))
	for i, n := range nodes {
		ms[i] = MemberState{Node: n, Stage: "execute"}
	}
	e.mu.Lock()
	e.members = ms
	e.mu.Unlock()
}

// SetMember updates one member's state.
func (e *QueryEntry) SetMember(i int, ms MemberState) {
	if e == nil {
		return
	}
	e.mu.Lock()
	if i >= 0 && i < len(e.members) {
		e.members[i] = ms
	}
	e.mu.Unlock()
}

// Members copies the member state table.
func (e *QueryEntry) Members() []MemberState {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]MemberState(nil), e.members...)
}

// Status reports the entry's lifecycle position.
func (e *QueryEntry) Status() QueryStatus {
	if e == nil {
		return ""
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.status
}

// Err reports the failure text ("" unless StatusFailed).
func (e *QueryEntry) Err() string {
	if e == nil {
		return ""
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Took reports the query's wall time so far (running) or total (finished).
func (e *QueryEntry) Took() time.Duration {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.end.IsZero() {
		return time.Since(e.Start)
	}
	return e.end.Sub(e.Start)
}

// Progress summarizes a live entry from a span snapshot: how many operators
// have finished and the sample/region volume they produced. For a finished
// query SpansDone == SpansSeen and the volumes are the profile totals.
type Progress struct {
	SpansSeen  int `json:"spans_seen"`
	SpansDone  int `json:"spans_done"`
	SamplesOut int `json:"samples_out"`
	RegionsOut int `json:"regions_out"`
	// Resource attribution accumulated over finished operators: CPU time and
	// heap allocations the query has been charged so far (final totals once
	// the query finishes).
	CPUMS      float64 `json:"cpu_ms"`
	AllocObjs  int64   `json:"alloc_objs"`
	AllocBytes int64   `json:"alloc_bytes"`
}

// Progress walks a snapshot of the entry's span tree.
func (e *QueryEntry) Progress() Progress {
	var p Progress
	for _, sp := range e.Root().Flatten() {
		p.SpansSeen++
		if sp.DurationNS > 0 || sp.CacheHit {
			p.SpansDone++
			p.SamplesOut += sp.SamplesOut
			p.RegionsOut += sp.RegionsOut
			r := sp.SelfRes()
			p.CPUMS += float64(r.CPUNS) / 1e6
			p.AllocObjs += r.AllocObjs
			p.AllocBytes += r.AllocBytes
		}
	}
	return p
}

// QueryRegistry tracks the queries a process is running and a ring of
// recently finished ones, feeding the /debug/queries console. A nil registry
// is disabled: Begin returns nil, and all QueryEntry methods on nil receive
// safely via the registry's nil checks at call sites.
type QueryRegistry struct {
	mu     sync.Mutex
	active map[string]*QueryEntry
	recent []*QueryEntry // ring, newest at the highest index
	next   int           // ring write cursor
	keep   int
}

// DefaultRecentQueries is the retention of the process-wide registry's ring
// of finished queries.
const DefaultRecentQueries = 64

// NewQueryRegistry builds a registry retaining the last keep finished
// queries (keep <= 0 means DefaultRecentQueries).
func NewQueryRegistry(keep int) *QueryRegistry {
	if keep <= 0 {
		keep = DefaultRecentQueries
	}
	return &QueryRegistry{active: make(map[string]*QueryEntry), keep: keep}
}

// defaultQueries is the process-wide registry obs.Mount wires the console
// to; every subsystem that runs queries registers entries here by default.
var defaultQueries = NewQueryRegistry(DefaultRecentQueries)

// Queries returns the process-wide query registry.
func Queries() *QueryRegistry { return defaultQueries }

// Begin registers a running query and returns its live entry. The same ID
// beginning twice (a retried federated request reaching the same node)
// replaces the earlier active entry.
func (q *QueryRegistry) Begin(id, node, varName, script string) *QueryEntry {
	if q == nil {
		return nil
	}
	e := &QueryEntry{
		ID: id, Node: node, Var: varName,
		Digest: ScriptDigest(script),
		Start:  time.Now(),
		status: StatusRunning,
	}
	q.mu.Lock()
	q.active[id] = e
	q.mu.Unlock()
	return e
}

// Finish moves the entry from the active table to the recent ring. A nil
// entry (disabled registry) is a no-op. errText == "" finishes as status;
// otherwise the entry fails with that text.
func (q *QueryRegistry) Finish(e *QueryEntry, status QueryStatus, errText string) {
	if q == nil || e == nil {
		return
	}
	e.mu.Lock()
	e.status = status
	e.err = errText
	e.end = time.Now()
	e.mu.Unlock()
	q.mu.Lock()
	if q.active[e.ID] == e {
		delete(q.active, e.ID)
	}
	if len(q.recent) < q.keep {
		q.recent = append(q.recent, e)
	} else {
		q.recent[q.next%q.keep] = e
		q.next++
	}
	q.mu.Unlock()
}

// Active lists running queries, oldest first.
func (q *QueryRegistry) Active() []*QueryEntry {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	out := make([]*QueryEntry, 0, len(q.active))
	for _, e := range q.active {
		out = append(out, e)
	}
	q.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Recent lists finished queries, newest first.
func (q *QueryRegistry) Recent() []*QueryEntry {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	out := make([]*QueryEntry, 0, len(q.recent))
	out = append(out, q.recent...)
	q.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		ei, ej := out[i], out[j]
		ei.mu.Lock()
		endI := ei.end
		ei.mu.Unlock()
		ej.mu.Lock()
		endJ := ej.end
		ej.mu.Unlock()
		if !endI.Equal(endJ) {
			return endI.After(endJ)
		}
		return ei.ID > ej.ID
	})
	return out
}

// Get finds a query by ID, active entries first.
func (q *QueryRegistry) Get(id string) *QueryEntry {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if e := q.active[id]; e != nil {
		return e
	}
	for _, e := range q.recent {
		if e.ID == id {
			return e
		}
	}
	return nil
}
