package obs

import (
	"log/slog"
	"net/http"
	"sync"
	"time"
)

var metricSlowlogDropped = Default().Counter("genogo_slowlog_dropped_total",
	"Slow-query records evicted from the in-memory ring by the entry or byte cap.")

// slowlogMaxQueryLen bounds the query text stored per record — slow-log
// memory must not scale with query size.
const slowlogMaxQueryLen = 256

// SlowRecord is one retained slow-query (or killed-query) event, served from
// /debug/slowlog so the recent history survives log rotation and is
// correlatable with /debug/queries and /debug/prof captures.
type SlowRecord struct {
	Time    time.Time `json:"time"`
	QueryID string    `json:"query_id,omitempty"`
	Query   string    `json:"query"`
	// Status is "slow" for threshold crossings, or the kill status
	// (canceled, killed, shed) for governance events.
	Status string  `json:"status"`
	Reason string  `json:"reason,omitempty"`
	TookMS float64 `json:"took_ms"`
	// Resource attribution from the query's root span, when profiled.
	CPUMS      float64 `json:"cpu_ms,omitempty"`
	AllocObjs  int64   `json:"alloc_objs,omitempty"`
	AllocBytes int64   `json:"alloc_bytes,omitempty"`
	RegionsOut int     `json:"regions_out,omitempty"`
	// Top are the top spans by self time, hottest first.
	Top []SlowSpan `json:"top,omitempty"`
}

// SlowSpan is one inlined hot operator of a slow query.
type SlowSpan struct {
	Op     string  `json:"op"`
	Detail string  `json:"detail,omitempty"`
	SelfMS float64 `json:"self_ms"`
	CPUMS  float64 `json:"cpu_ms,omitempty"`
}

// sizeBytes estimates the record's retained memory for the ring's byte cap.
func (r *SlowRecord) sizeBytes() int {
	n := 160 + len(r.QueryID) + len(r.Query) + len(r.Status) + len(r.Reason)
	for _, s := range r.Top {
		n += 64 + len(s.Op) + len(s.Detail)
	}
	return n
}

// SlowQueryLog emits one structured record per query whose wall time crosses
// Threshold, with the top-3 spans (by self time) inlined — enough to see
// which operator ate the time without shipping the whole profile. Records are
// also retained in a bounded in-memory ring (MaxEntries entries, MaxBytes
// estimated bytes — sustained overload evicts the oldest, counted by
// genogo_slowlog_dropped_total) and each slow-query or governance-kill event
// triggers the continuous profiler, so /debug/prof holds a capture from the
// moment things went wrong.
//
// A nil SlowQueryLog, or one with a non-positive threshold, is disabled and
// safe to call.
type SlowQueryLog struct {
	// Threshold is the minimum query duration worth logging; <= 0 disables.
	Threshold time.Duration
	// Logger receives the records; nil means slog.Default().
	Logger *slog.Logger
	// MaxEntries caps the in-memory ring (default 256; negative disables
	// retention). MaxBytes caps its estimated memory (default 1 MiB).
	MaxEntries int
	MaxBytes   int
	// Profiler receives slow-query/kill triggers; nil means Prof(), the
	// process-wide profiler (free unless the binary enabled it).
	Profiler *Profiler

	mu        sync.Mutex
	ring      []*SlowRecord
	ringBytes int
}

// logger resolves the destination.
func (l *SlowQueryLog) logger() *slog.Logger {
	if l.Logger != nil {
		return l.Logger
	}
	return slog.Default()
}

// profiler resolves the capture target.
func (l *SlowQueryLog) profiler() *Profiler {
	if l.Profiler != nil {
		return l.Profiler
	}
	return Prof()
}

// retain appends the record to the bounded ring.
func (l *SlowQueryLog) retain(r *SlowRecord) {
	maxEntries, maxBytes := l.MaxEntries, l.MaxBytes
	if maxEntries < 0 {
		return
	}
	if maxEntries == 0 {
		maxEntries = 256
	}
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ring = append(l.ring, r)
	l.ringBytes += r.sizeBytes()
	for len(l.ring) > maxEntries || (l.ringBytes > maxBytes && len(l.ring) > 1) {
		l.ringBytes -= l.ring[0].sizeBytes()
		l.ring[0] = nil
		l.ring = l.ring[1:]
		metricSlowlogDropped.Inc()
	}
}

// Recent returns the retained records, newest first.
func (l *SlowQueryLog) Recent() []SlowRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowRecord, 0, len(l.ring))
	for i := len(l.ring) - 1; i >= 0; i-- {
		out = append(out, *l.ring[i])
	}
	return out
}

// MountSlowlog registers GET /debug/slowlog serving the retained ring.
func MountSlowlog(mux *http.ServeMux, l *SlowQueryLog) {
	MountState(mux, "/debug/slowlog",
		"slow query log: recent queries that crossed the latency threshold",
		func() any { return l.Recent() })
}

// truncQuery bounds the stored query text.
func truncQuery(q string) string {
	if len(q) > slowlogMaxQueryLen {
		return q[:slowlogMaxQueryLen] + "..."
	}
	return q
}

// Observe records one finished query. The query string identifies it (a
// variable name, a script digest); root is its profile, which may be nil
// (only the duration is logged then).
func (l *SlowQueryLog) Observe(query string, root *Span) {
	l.ObserveQuery("", query, root)
}

// ObserveQuery is Observe with the query's process-spanning identity: the
// record carries query_id, so slow-log lines correlate with /debug/queries
// console entries and federated partial-failure reports on every node the
// query touched. An empty id logs like Observe.
func (l *SlowQueryLog) ObserveQuery(id, query string, root *Span) {
	if l == nil || l.Threshold <= 0 || root == nil || root.Duration() < l.Threshold {
		return
	}
	res := root.Res()
	rec := &SlowRecord{
		Time: time.Now(), QueryID: id, Query: truncQuery(query),
		Status:    "slow",
		TookMS:    float64(root.DurationNS) / 1e6,
		CPUMS:     float64(res.CPUNS) / 1e6,
		AllocObjs: res.AllocObjs, AllocBytes: res.AllocBytes,
		RegionsOut: root.RegionsOut,
	}
	attrs := []any{
		slog.String("query", query),
		slog.Duration("took", root.Duration()),
		slog.Duration("threshold", l.Threshold),
		slog.Int("regions_out", root.RegionsOut),
	}
	if res.CPUNS > 0 || res.AllocObjs > 0 {
		attrs = append(attrs,
			slog.Duration("cpu", time.Duration(res.CPUNS)),
			slog.Int64("alloc_objs", res.AllocObjs),
			slog.Int64("alloc_bytes", res.AllocBytes),
		)
	}
	if id != "" {
		attrs = append(attrs, slog.String("query_id", id))
	}
	for i, sp := range root.TopBySelf(3) {
		rec.Top = append(rec.Top, SlowSpan{
			Op: sp.Op, Detail: sp.Detail,
			SelfMS: float64(sp.SelfNS()) / 1e6,
			CPUMS:  float64(sp.SelfRes().CPUNS) / 1e6,
		})
		attrs = append(attrs, slog.Group("span"+string(rune('1'+i)),
			slog.String("op", sp.Op),
			slog.String("detail", sp.Detail),
			slog.Duration("self", time.Duration(sp.SelfNS())),
			slog.Duration("self_cpu", time.Duration(sp.SelfRes().CPUNS)),
			slog.Int("samples_out", sp.SamplesOut),
			slog.Int("regions_out", sp.RegionsOut),
		))
	}
	l.logger().Warn("slow query", attrs...)
	l.retain(rec)
	l.profiler().Trigger("slow_query", id)
}

// ObserveKilled records a query that lifecycle governance killed (canceled,
// deadline, budget) or admission control shed. Killed queries log regardless
// of duration — a query shed in microseconds is exactly the overload signal
// the log exists for — but honor the threshold-as-enable convention: a nil
// or disabled log stays silent. took is the query's wall time (zero for shed
// queries that never ran).
func (l *SlowQueryLog) ObserveKilled(id, query, status, reason string, took time.Duration) {
	if l == nil || l.Threshold <= 0 {
		return
	}
	attrs := []any{
		slog.String("query", query),
		slog.String("status", status),
		slog.String("reason", reason),
		slog.Duration("took", took),
	}
	if id != "" {
		attrs = append(attrs, slog.String("query_id", id))
	}
	l.logger().Warn("query killed", attrs...)
	l.retain(&SlowRecord{
		Time: time.Now(), QueryID: id, Query: truncQuery(query),
		Status: status, Reason: reason,
		TookMS: float64(took) / 1e6,
	})
	switch {
	case reason == "budget":
		l.profiler().Trigger("budget_kill", id)
	case status == string(StatusShed):
		l.profiler().Trigger("shed", id)
	}
}
