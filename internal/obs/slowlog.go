package obs

import (
	"log/slog"
	"time"
)

// SlowQueryLog emits one structured record per query whose wall time crosses
// Threshold, with the top-3 spans (by self time) inlined — enough to see
// which operator ate the time without shipping the whole profile.
//
// A nil SlowQueryLog, or one with a non-positive threshold, is disabled and
// safe to call.
type SlowQueryLog struct {
	// Threshold is the minimum query duration worth logging; <= 0 disables.
	Threshold time.Duration
	// Logger receives the records; nil means slog.Default().
	Logger *slog.Logger
}

// logger resolves the destination.
func (l *SlowQueryLog) logger() *slog.Logger {
	if l.Logger != nil {
		return l.Logger
	}
	return slog.Default()
}

// Observe records one finished query. The query string identifies it (a
// variable name, a script digest); root is its profile, which may be nil
// (only the duration is logged then).
func (l *SlowQueryLog) Observe(query string, root *Span) {
	l.ObserveQuery("", query, root)
}

// ObserveQuery is Observe with the query's process-spanning identity: the
// record carries query_id, so slow-log lines correlate with /debug/queries
// console entries and federated partial-failure reports on every node the
// query touched. An empty id logs like Observe.
func (l *SlowQueryLog) ObserveQuery(id, query string, root *Span) {
	if l == nil || l.Threshold <= 0 || root == nil || root.Duration() < l.Threshold {
		return
	}
	attrs := []any{
		slog.String("query", query),
		slog.Duration("took", root.Duration()),
		slog.Duration("threshold", l.Threshold),
		slog.Int("regions_out", root.RegionsOut),
	}
	if id != "" {
		attrs = append(attrs, slog.String("query_id", id))
	}
	for i, sp := range root.TopBySelf(3) {
		attrs = append(attrs, slog.Group("span"+string(rune('1'+i)),
			slog.String("op", sp.Op),
			slog.String("detail", sp.Detail),
			slog.Duration("self", time.Duration(sp.SelfNS())),
			slog.Int("samples_out", sp.SamplesOut),
			slog.Int("regions_out", sp.RegionsOut),
		))
	}
	l.logger().Warn("slow query", attrs...)
}

// ObserveKilled records a query that lifecycle governance killed (canceled,
// deadline, budget) or admission control shed. Killed queries log regardless
// of duration — a query shed in microseconds is exactly the overload signal
// the log exists for — but honor the threshold-as-enable convention: a nil
// or disabled log stays silent. took is the query's wall time (zero for shed
// queries that never ran).
func (l *SlowQueryLog) ObserveKilled(id, query, status, reason string, took time.Duration) {
	if l == nil || l.Threshold <= 0 {
		return
	}
	attrs := []any{
		slog.String("query", query),
		slog.String("status", status),
		slog.String("reason", reason),
		slog.Duration("took", took),
	}
	if id != "" {
		attrs = append(attrs, slog.String("query_id", id))
	}
	l.logger().Warn("query killed", attrs...)
}
