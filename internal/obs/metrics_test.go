package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestMetricsCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	// Registration is idempotent: same handle by name.
	if r.Counter("test_total", "a counter") != c {
		t.Error("re-registration returned a different counter")
	}
	g := r.Gauge("test_depth", "a gauge")
	g.Set(10)
	g.Dec()
	g.Add(-2)
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}
}

func TestMetricsVecSeries(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_by_mode_total", "per mode", "mode")
	v.With("stream").Add(3)
	v.With("serial").Inc()
	v.With("stream").Inc()
	if got := v.With("stream").Value(); got != 4 {
		t.Errorf("stream = %d, want 4", got)
	}
	if got := v.With("serial").Value(); got != 1 {
		t.Errorf("serial = %d, want 1", got)
	}
}

func TestMetricsHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Errorf("sum = %g, want 56.05", h.Sum())
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 3`,
		`test_latency_seconds_bucket{le="10"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		`test_latency_seconds_count 5`,
	} {
		if !strings.Contains(b.String(), line) {
			t.Errorf("exposition missing %q:\n%s", line, b.String())
		}
	}
}

// TestMetricsPrometheusText is the golden test of the exposition encoding:
// deterministic ordering, HELP/TYPE lines for empty families, label escaping.
func TestMetricsPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("zz_empty_total", "registered but never observed", "node")
	c := r.CounterVec("aa_reqs_total", "requests", "method", "code")
	c.With("GET", "200").Add(7)
	c.With("POST", "500").Inc()
	g := r.Gauge("mm_depth", "queue depth")
	g.Set(-3)
	r.CounterVec("esc_total", "odd labels", "v").With(`a"b\c`).Inc()

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_reqs_total requests
# TYPE aa_reqs_total counter
aa_reqs_total{method="GET",code="200"} 7
aa_reqs_total{method="POST",code="500"} 1
# HELP esc_total odd labels
# TYPE esc_total counter
esc_total{v="a\"b\\c"} 1
# HELP mm_depth queue depth
# TYPE mm_depth gauge
mm_depth -3
# HELP zz_empty_total registered but never observed
# TYPE zz_empty_total counter
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestMetricsRegistryConcurrent hammers one registry from many goroutines —
// the -race CI job runs this with -count=2 to shake out registry races.
func TestMetricsRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("conc_total", "x").Inc()
				r.CounterVec("conc_by_g_total", "x", "g").With(string(rune('a' + g%4))).Inc()
				r.Gauge("conc_gauge", "x").Add(1)
				r.Histogram("conc_hist", "x", nil).Observe(float64(i) / 100)
				if i%100 == 0 {
					var b strings.Builder
					_ = r.WriteText(&b)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("conc_total", "x").Value(); got != 8*500 {
		t.Errorf("conc_total = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("conc_hist", "x", nil).Count(); got != 8*500 {
		t.Errorf("hist count = %d, want %d", got, 8*500)
	}
	var sum int64
	for _, l := range []string{"a", "b", "c", "d"} {
		sum += r.CounterVec("conc_by_g_total", "x", "g").With(l).Value()
	}
	if sum != 8*500 {
		t.Errorf("labeled sum = %d, want %d", sum, 8*500)
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "x").Add(2)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "h_total 2") {
		t.Errorf("body = %q", buf[:n])
	}
}

func TestMetricsMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "x")
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("dup", "x")
}
