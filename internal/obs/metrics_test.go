package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestMetricsCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	// Registration is idempotent: same handle by name.
	if r.Counter("test_total", "a counter") != c {
		t.Error("re-registration returned a different counter")
	}
	g := r.Gauge("test_depth", "a gauge")
	g.Set(10)
	g.Dec()
	g.Add(-2)
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}
}

func TestMetricsVecSeries(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_by_mode_total", "per mode", "mode")
	v.With("stream").Add(3)
	v.With("serial").Inc()
	v.With("stream").Inc()
	if got := v.With("stream").Value(); got != 4 {
		t.Errorf("stream = %d, want 4", got)
	}
	if got := v.With("serial").Value(); got != 1 {
		t.Errorf("serial = %d, want 1", got)
	}
}

func TestMetricsHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Errorf("sum = %g, want 56.05", h.Sum())
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 3`,
		`test_latency_seconds_bucket{le="10"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		`test_latency_seconds_count 5`,
	} {
		if !strings.Contains(b.String(), line) {
			t.Errorf("exposition missing %q:\n%s", line, b.String())
		}
	}
}

// TestMetricsPrometheusText is the golden test of the exposition encoding:
// deterministic ordering, HELP/TYPE lines for empty families, label escaping.
func TestMetricsPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("zz_empty_total", "registered but never observed", "node")
	c := r.CounterVec("aa_reqs_total", "requests", "method", "code")
	c.With("GET", "200").Add(7)
	c.With("POST", "500").Inc()
	g := r.Gauge("mm_depth", "queue depth")
	g.Set(-3)
	r.CounterVec("esc_total", "odd labels", "v").With(`a"b\c`).Inc()

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_reqs_total requests
# TYPE aa_reqs_total counter
aa_reqs_total{method="GET",code="200"} 7
aa_reqs_total{method="POST",code="500"} 1
# HELP esc_total odd labels
# TYPE esc_total counter
esc_total{v="a\"b\\c"} 1
# HELP mm_depth queue depth
# TYPE mm_depth gauge
mm_depth -3
# HELP zz_empty_total registered but never observed
# TYPE zz_empty_total counter
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestMetricsRegistryConcurrent hammers one registry from many goroutines —
// the -race CI job runs this with -count=2 to shake out registry races.
func TestMetricsRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("conc_total", "x").Inc()
				r.CounterVec("conc_by_g_total", "x", "g").With(string(rune('a' + g%4))).Inc()
				r.Gauge("conc_gauge", "x").Add(1)
				r.Histogram("conc_hist", "x", nil).Observe(float64(i) / 100)
				if i%100 == 0 {
					var b strings.Builder
					_ = r.WriteText(&b)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("conc_total", "x").Value(); got != 8*500 {
		t.Errorf("conc_total = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("conc_hist", "x", nil).Count(); got != 8*500 {
		t.Errorf("hist count = %d, want %d", got, 8*500)
	}
	var sum int64
	for _, l := range []string{"a", "b", "c", "d"} {
		sum += r.CounterVec("conc_by_g_total", "x", "g").With(l).Value()
	}
	if sum != 8*500 {
		t.Errorf("labeled sum = %d, want %d", sum, 8*500)
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "x").Add(2)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "h_total 2") {
		t.Errorf("body = %q", buf[:n])
	}
}

func TestMetricsMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "x")
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("dup", "x")
}

// TestMetricsExpositionConformance pins the 0.0.4 text-format escaping rules
// for label values: backslash, double quote, and newline must escape; and a
// hostile value containing the internal series-key separator must neither
// corrupt the rendered value nor collide with a different value tuple.
func TestMetricsExpositionConformance(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("paths_total", "Per-path hits.", "path")
	v.With(`C:\data\"x"` + "\nline2").Inc()
	v.With("a\x1fb").Add(5)

	two := r.CounterVec("pair_total", "Two-label family.", "a", "b")
	two.With("x\x1f", "y").Inc()
	two.With("x", "\x1fy").Add(3) // must stay a distinct series

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	// 0.0.4 label-value escaping: \ -> \\, " -> \", newline -> \n.
	if !strings.Contains(text, `path="C:\\data\\\"x\"\nline2"`) {
		t.Errorf("escaping not conformant:\n%s", text)
	}
	// The separator char passes through as-is (it is not escaped by the
	// format), but the full value must survive: both halves on one line.
	if !strings.Contains(text, "path=\"a\x1fb\"") {
		t.Errorf("separator-containing value corrupted:\n%s", text)
	}
	if !strings.Contains(text, "pair_total{a=\"x\x1f\",b=\"y\"} 1") ||
		!strings.Contains(text, "pair_total{a=\"x\",b=\"\x1fy\"} 3") {
		t.Errorf("separator-containing tuples collided:\n%s", text)
	}
	// Exposition lines must parse: every non-comment line is name{...} value.
	for _, line := range strings.Split(strings.ReplaceAll(text, "\\\n", ""), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.LastIndex(line, " ") <= 0 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestMetricsSeriesKeyInjective(t *testing.T) {
	cases := [][2][]string{
		{{"a\x1f", "b"}, {"a", "\x1fb"}},
		{{`a\`, "b"}, {"a", `\b`}},
		{{`a\s`, "b"}, {"a\x1fs", "b"}},
	}
	for _, c := range cases {
		if seriesKey(c[0]) == seriesKey(c[1]) {
			t.Errorf("seriesKey collision: %q vs %q", c[0], c[1])
		}
	}
	// Same tuple -> same key (fetch returns the same series).
	if seriesKey([]string{"x\x1f", "y"}) != seriesKey([]string{"x\x1f", "y"}) {
		t.Error("seriesKey not deterministic")
	}
}

func TestMetricsBuildInfoAndUptime(t *testing.T) {
	var b strings.Builder
	if err := Default().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, "genogo_build_info{version=") ||
		!strings.Contains(text, "go_version=\"go") {
		t.Errorf("build info missing:\n%s", grepLines(text, "genogo_build_info"))
	}
	if !strings.Contains(text, "# TYPE genogo_uptime_seconds gauge") {
		t.Error("uptime gauge not registered")
	}
}

func TestMetricsOnScrapeHook(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("refreshed", "Set by the scrape hook.")
	n := 0
	r.OnScrape(func() { n++; g.Set(int64(n)) })
	var b strings.Builder
	_ = r.WriteText(&b)
	_ = r.WriteText(&b)
	if n != 2 {
		t.Errorf("hook ran %d times, want 2", n)
	}
	if g.Value() != 2 {
		t.Errorf("gauge = %d, want 2", g.Value())
	}
}

func grepLines(text, substr string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
