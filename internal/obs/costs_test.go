package obs

import (
	"strings"
	"sync"
	"testing"
)

func costTree() *Span {
	scan := &Span{Op: "SCAN", Mode: "serial", DurationNS: 2e6,
		RegionsOut: 1000, CPUNS: 1e6, AllocObjs: 100, AllocBytes: 10000}
	sel := &Span{Op: "SELECT", Mode: "serial", DurationNS: 6e6,
		RegionsIn: 1000, RegionsOut: 500, CPUNS: 4e6, AllocObjs: 300, AllocBytes: 30000}
	sel.Children = []*Span{scan}
	return sel
}

func TestCostRegistryObserveTree(t *testing.T) {
	c := NewCostRegistry()
	c.ObserveTree(costTree())
	c.ObserveTree(costTree())
	rows := c.Snapshot()
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (SCAN, SELECT)", len(rows))
	}
	// Sorted by op: SCAN first.
	scan, sel := rows[0], rows[1]
	if scan.Op != "SCAN" || sel.Op != "SELECT" {
		t.Fatalf("order = %s, %s", scan.Op, sel.Op)
	}
	if scan.Spans != 2 || scan.Regions != 2000 {
		t.Errorf("SCAN totals = %+v", scan)
	}
	// SCAN self = its own values (no children): 2e6 ns over 1000 regions.
	if scan.NSPerRegion != 2000 || scan.CPUNSPerRegion != 1000 {
		t.Errorf("SCAN unit costs = %+v", scan)
	}
	// SELECT self: wall 6e6-2e6=4e6 over 1000 in-regions; cpu 4e6-1e6=3e6.
	if sel.NSPerRegion != 4000 || sel.CPUNSPerRegion != 3000 {
		t.Errorf("SELECT unit costs = %+v", sel)
	}
	if sel.AllocsPerRegion != 0.2 || sel.BytesPerRegion != 20 {
		t.Errorf("SELECT alloc costs = %+v", sel)
	}
}

func TestCostRegistrySkipsCachedAndRemote(t *testing.T) {
	c := NewCostRegistry()
	root := costTree()
	root.CacheHit = true
	root.Children[0].Remote = true
	c.ObserveTree(root)
	if rows := c.Snapshot(); len(rows) != 0 {
		t.Errorf("cached/remote spans counted: %+v", rows)
	}
	c.ObserveTree(nil)
	var nilReg *CostRegistry
	nilReg.ObserveTree(costTree())
	if nilReg.Snapshot() != nil {
		t.Error("nil registry snapshot != nil")
	}
}

func TestCostRegistryFusionBuckets(t *testing.T) {
	c := NewCostRegistry()
	fused := &Span{Op: "SELECT", Mode: "stream", Fused: []string{"SELECT", "PROJECT"},
		DurationNS: 1e6, RegionsIn: 100}
	plain := &Span{Op: "SELECT", Mode: "stream", DurationNS: 2e6, RegionsIn: 100}
	c.ObserveTree(fused)
	c.ObserveTree(plain)
	rows := c.Snapshot()
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want separate fused/unfused buckets", len(rows))
	}
	// Unfused sorts before fused within the same op+mode.
	if rows[0].Fused || !rows[1].Fused {
		t.Errorf("sort order: %+v", rows)
	}
}

func TestObserveQueryProfileFeedsHistograms(t *testing.T) {
	root := costTree()
	ObserveQueryProfile(root)
	ObserveQueryProfile(nil) // safe
	var buf strings.Builder
	if err := Default().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, name := range []string{
		"genogo_query_cpu_seconds_bucket{mode=\"serial\"",
		"genogo_query_allocs_bucket{mode=\"serial\"",
		"genogo_query_alloc_bytes_bucket{mode=\"serial\"",
		"genogo_cost_self_ns_total{op=\"SELECT\",mode=\"serial\",fused=\"no\"}",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
}

func TestCostRegistryConcurrent(t *testing.T) {
	c := NewCostRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if g%2 == 0 {
					c.ObserveTree(costTree())
				} else {
					c.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	rows := c.Snapshot()
	if len(rows) != 2 || rows[0].Spans != 400 {
		t.Errorf("after concurrent observes: %+v", rows)
	}
}
