package obs

import (
	"fmt"
	"html"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// The /debug/ index: every Mount* helper registers the endpoint it mounts
// (path + one-line description) against the mux it mounts on, and MountIndex
// serves the resulting table — so an operator can discover
// queries/prof/costs/slowlog/storage/repo/estimates from the service's own
// port without reading docs. The registry is keyed per mux because a binary
// may split its debug surface across listeners (gmqld -metrics-addr).

// Endpoint is one discoverable debug endpoint.
type Endpoint struct {
	Path string `json:"path"`
	Desc string `json:"desc"`
}

var (
	endpointsMu sync.Mutex
	endpointsBy = make(map[*http.ServeMux][]Endpoint)
)

// RegisterEndpoint files one endpoint in the mux's /debug/ index. Mount*
// helpers call it automatically; subsystems mounting handlers by hand (the
// repository catalog console) call it so their endpoints are discoverable
// too. Re-registering a path replaces its description.
func RegisterEndpoint(mux *http.ServeMux, path, desc string) {
	if mux == nil || path == "" {
		return
	}
	endpointsMu.Lock()
	defer endpointsMu.Unlock()
	list := endpointsBy[mux]
	for i := range list {
		if list[i].Path == path {
			list[i].Desc = desc
			return
		}
	}
	endpointsBy[mux] = append(list, Endpoint{Path: path, Desc: desc})
}

// Endpoints lists the endpoints registered on a mux, sorted by path.
func Endpoints(mux *http.ServeMux) []Endpoint {
	endpointsMu.Lock()
	out := append([]Endpoint(nil), endpointsBy[mux]...)
	endpointsMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// MountIndex serves the discovery index on /debug/ (HTML, or JSON with
// ?format=json). Paths under /debug/ with no more specific handler land here
// too and get a 404 that links back to the index.
func MountIndex(mux *http.ServeMux) {
	mux.HandleFunc("/debug/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if r.URL.Path != "/debug/" && r.URL.Path != "/debug" {
			http.Error(w, "unknown debug endpoint; see /debug/ for the index", http.StatusNotFound)
			return
		}
		eps := Endpoints(mux)
		if WantJSON(r) {
			WriteJSON(w, eps)
			return
		}
		var b strings.Builder
		b.WriteString(PageHeader("debug index"))
		fmt.Fprintf(&b, "<h1>debug endpoints</h1><p>%d mounted on this listener</p>", len(eps))
		b.WriteString("<table><tr><th>endpoint</th><th>description</th></tr>")
		for _, ep := range eps {
			fmt.Fprintf(&b, "<tr><td><a href=\"%s\">%s</a></td><td>%s</td></tr>",
				html.EscapeString(ep.Path), html.EscapeString(ep.Path), html.EscapeString(ep.Desc))
		}
		b.WriteString("</table>")
		b.WriteString(PageFooter)
		WriteHTML(w, b.String())
	})
	RegisterEndpoint(mux, "/debug/", "this index: every debug endpoint mounted on this listener")
}
