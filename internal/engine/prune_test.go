package engine

import (
	"strings"
	"testing"

	"genogo/internal/expr"
	"genogo/internal/gdm"
)

// pruneCatalog holds partitions engineered so zone maps can prove some of
// them irrelevant: sample "a" spans chr1 and chr2, sample "b" lives on chr3
// far from everything, and REF covers only chr1's low coordinates.
func pruneCatalog(t *testing.T) MapCatalog {
	t.Helper()
	d := mkDataset(t, "D",
		mkSample("a", map[string]string{"cell": "HeLa"},
			regSpec{"chr1", 100, 200, gdm.StrandNone, 1, "r1"},
			regSpec{"chr1", 300, 400, gdm.StrandNone, 2, "r2"},
			regSpec{"chr2", 1000, 1100, gdm.StrandNone, 3, "r3"}),
		mkSample("b", map[string]string{"cell": "K562"},
			regSpec{"chr3", 50000, 50100, gdm.StrandNone, 4, "r4"}),
	)
	ref := mkDataset(t, "REF",
		mkSample("r", nil,
			regSpec{"chr1", 120, 180, gdm.StrandNone, 0, "g1"}),
	)
	return MapCatalog{"D": d, "REF": ref}
}

func chromEq(chrom string) expr.Node {
	return expr.Cmp{Op: expr.CmpEq, Left: expr.Attr{Name: "chrom"}, Right: expr.Const{Value: gdm.Str(chrom)}}
}

// TestRepoPrunableSelect: a traced SELECT whose region predicate names one
// chromosome counts every other-chromosome partition as prunable, and the
// rendered profile carries the counts.
func TestRepoPrunableSelect(t *testing.T) {
	plan := &SelectOp{Input: &Scan{Dataset: "D"}, Region: chromEq("chr2")}
	for _, cfg := range allConfigs() {
		s := NewSession(cfg, pruneCatalog(t))
		_, root, err := s.EvalProfiled(plan)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Mode, err)
		}
		// Partitions: a/chr1(2r), a/chr2(1r), b/chr3(1r). chr1 and chr3 are
		// provably empty under the predicate.
		if root.PruneParts != 3 || root.PrunableParts != 2 || root.PrunableRegions != 3 {
			t.Errorf("%s: prunable = %dr/%dof%dp, want 3r/2of3p",
				cfg.Mode, root.PrunableRegions, root.PrunableParts, root.PruneParts)
		}
		if !strings.Contains(root.Render(), "prunable=3r/2of3p") {
			t.Errorf("%s: profile missing prunable field:\n%s", cfg.Mode, root.Render())
		}
	}
}

// TestRepoPrunableSelectFused: the stream backend fuses SELECT chains, and
// the innermost SELECT still measures pruning against the chain's source.
func TestRepoPrunableSelectFused(t *testing.T) {
	plan := &SelectOp{
		Input:  &SelectOp{Input: &Scan{Dataset: "D"}, Region: chromEq("chr2")},
		Region: nil,
	}
	s := NewSession(Config{Mode: ModeStream, Workers: 2, MetaFirst: true}, pruneCatalog(t))
	_, root, err := s.EvalProfiled(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Fused) != 2 {
		t.Fatalf("chain not fused: %v", root.Fused)
	}
	if root.PruneParts != 3 || root.PrunableParts != 2 {
		t.Errorf("fused prunable = %dof%dp, want 2of3p", root.PrunableParts, root.PruneParts)
	}
}

// TestRepoPrunableSelectUnconstrained: a predicate with no zone-checkable
// structure records nothing — prunable= must not appear.
func TestRepoPrunableSelectUnconstrained(t *testing.T) {
	gt := expr.Cmp{Op: expr.CmpGt, Left: expr.Attr{Name: "score"}, Right: expr.Const{Value: gdm.Float(1.5)}}
	plan := &SelectOp{Input: &Scan{Dataset: "D"}, Region: gt}
	s := NewSession(Config{Mode: ModeSerial, MetaFirst: true}, pruneCatalog(t))
	_, root, err := s.EvalProfiled(plan)
	if err != nil {
		t.Fatal(err)
	}
	if root.PruneParts != 0 {
		t.Errorf("unconstrained predicate consulted %d partitions", root.PruneParts)
	}
	if strings.Contains(root.Render(), "prunable=") {
		t.Errorf("profile renders prunable for unconstrained predicate:\n%s", root.Render())
	}
}

// TestRepoPrunableJoin: with a distance upper bound, partitions on absent
// chromosomes and partitions beyond the bound are prunable on both sides.
func TestRepoPrunableJoin(t *testing.T) {
	plan := &JoinOp{
		Left:  &Scan{Dataset: "REF"},
		Right: &Scan{Dataset: "D"},
		Args: JoinArgs{
			Pred:   GenometricPred{Conds: []DistCond{{Op: DistLE, Dist: 500}}},
			Output: OutLeft,
		},
	}
	s := NewSession(Config{Mode: ModeSerial, MetaFirst: true}, pruneCatalog(t))
	_, root, err := s.EvalProfiled(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Left: r/chr1(1r) reaches D's chr1 extent — kept. Right: a/chr1(2r)
	// within 500 of REF — kept; a/chr2(1r) and b/chr3(1r) are on
	// chromosomes REF lacks — prunable. 4 partitions consulted, 2 prunable.
	if root.PruneParts != 4 || root.PrunableParts != 2 || root.PrunableRegions != 2 {
		t.Errorf("join prunable = %dr/%dof%dp, want 2r/2of4p",
			root.PrunableRegions, root.PrunableParts, root.PruneParts)
	}
}

// TestRepoPrunableJoinDistance: the distance bound itself prunes a
// same-chromosome partition that is too far away.
func TestRepoPrunableJoinDistance(t *testing.T) {
	left := mkDataset(t, "L",
		mkSample("l", nil, regSpec{"chr1", 100, 200, gdm.StrandNone, 0, "x"}))
	right := mkDataset(t, "R",
		mkSample("near", nil, regSpec{"chr1", 250, 300, gdm.StrandNone, 0, "y"}),
		mkSample("far", nil, regSpec{"chr1", 900000, 900100, gdm.StrandNone, 0, "z"}))
	plan := &JoinOp{
		Left:  &Scan{Dataset: "L"},
		Right: &Scan{Dataset: "R"},
		Args: JoinArgs{
			Pred:   GenometricPred{Conds: []DistCond{{Op: DistLT, Dist: 1000}}},
			Output: OutLeft,
		},
	}
	s := NewSession(Config{Mode: ModeSerial, MetaFirst: true}, MapCatalog{"L": left, "R": right})
	_, root, err := s.EvalProfiled(plan)
	if err != nil {
		t.Fatal(err)
	}
	// l/chr1 kept (near is reachable); near kept; far is 899800 > 999 away.
	if root.PruneParts != 3 || root.PrunableParts != 1 || root.PrunableRegions != 1 {
		t.Errorf("distance prunable = %dr/%dof%dp, want 1r/1of3p",
			root.PrunableRegions, root.PrunableParts, root.PruneParts)
	}
}

// TestRepoPrunableMap: only experiment partitions are prunable (reference
// regions are always emitted), and only when they overlap no reference
// extent on their chromosome.
func TestRepoPrunableMap(t *testing.T) {
	plan := &MapOp{
		Ref:  &Scan{Dataset: "REF"},
		Exp:  &Scan{Dataset: "D"},
		Args: MapArgs{Aggs: countAgg()},
	}
	for _, cfg := range allConfigs() {
		s := NewSession(cfg, pruneCatalog(t))
		_, root, err := s.EvalProfiled(plan)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Mode, err)
		}
		// Experiment partitions: a/chr1 overlaps REF [120,180) — kept;
		// a/chr2 and b/chr3 have no REF extent — prunable. REF's own
		// partition is never consulted.
		if root.PruneParts != 3 || root.PrunableParts != 2 || root.PrunableRegions != 2 {
			t.Errorf("%s: map prunable = %dr/%dof%dp, want 2r/2of3p",
				cfg.Mode, root.PrunableRegions, root.PrunableParts, root.PruneParts)
		}
	}
}
