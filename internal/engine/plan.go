package engine

import (
	"fmt"
	"strings"

	"genogo/internal/expr"
)

// Node is a logical plan node. The GMQL compiler produces Node trees; Run
// executes them against a Catalog under a Config. The plan is
// backend-independent — the same tree runs on the serial, batch and stream
// backends, the architecture claim of Section 4.2 of the paper.
type Node interface {
	// Describe renders the node for EXPLAIN output, with children indented.
	Describe(indent int) string
}

func pad(indent int) string { return strings.Repeat("  ", indent) }

// Scan reads a named dataset from the catalog.
type Scan struct{ Dataset string }

// Describe implements Node.
func (n *Scan) Describe(i int) string { return fmt.Sprintf("%sSCAN %s", pad(i), n.Dataset) }

// SemiJoin is the semijoin clause of SELECT: keep only samples whose values
// of Attrs match (or, Negated, do not match) those of some sample of the
// External dataset — the GMQL mechanism for filtering one dataset's samples
// by the metadata of another.
type SemiJoin struct {
	Attrs    []string
	External Node
	Negated  bool
}

// SelectOp filters samples by metadata and regions by a region predicate.
type SelectOp struct {
	Input    Node
	Meta     expr.MetaPredicate // nil keeps all samples
	Region   expr.Node          // nil keeps all regions
	SemiJoin *SemiJoin          // nil disables the semijoin clause
}

// Describe implements Node.
func (n *SelectOp) Describe(i int) string {
	m, r := "true", "true"
	if n.Meta != nil {
		m = n.Meta.String()
	}
	if n.Region != nil {
		r = n.Region.String()
	}
	if n.SemiJoin != nil {
		op := "IN"
		if n.SemiJoin.Negated {
			op = "NOT IN"
		}
		return fmt.Sprintf("%sSELECT meta: %s; region: %s; semijoin: [%s] %s\n%s\n%s",
			pad(i), m, r, strings.Join(n.SemiJoin.Attrs, ","), op,
			n.Input.Describe(i+1), n.SemiJoin.External.Describe(i+1))
	}
	return fmt.Sprintf("%sSELECT meta: %s; region: %s\n%s", pad(i), m, r, n.Input.Describe(i+1))
}

// ProjectOp rewrites region attributes and prunes metadata.
type ProjectOp struct {
	Input Node
	Args  ProjectArgs
}

// Describe implements Node.
func (n *ProjectOp) Describe(i int) string {
	var items []string
	for _, it := range n.Args.Regions {
		if it.Expr == nil {
			items = append(items, it.Name)
		} else {
			items = append(items, fmt.Sprintf("%s AS %s", it.Name, it.Expr))
		}
	}
	return fmt.Sprintf("%sPROJECT %s\n%s", pad(i), strings.Join(items, ", "), n.Input.Describe(i+1))
}

// ExtendOp adds region aggregates as metadata.
type ExtendOp struct {
	Input Node
	Aggs  []expr.Aggregate
}

// Describe implements Node.
func (n *ExtendOp) Describe(i int) string {
	return fmt.Sprintf("%sEXTEND %s\n%s", pad(i), aggsString(n.Aggs), n.Input.Describe(i+1))
}

// MergeOp collapses sample groups into single samples.
type MergeOp struct {
	Input   Node
	GroupBy []string
}

// Describe implements Node.
func (n *MergeOp) Describe(i int) string {
	return fmt.Sprintf("%sMERGE groupby: [%s]\n%s", pad(i), strings.Join(n.GroupBy, ","), n.Input.Describe(i+1))
}

// GroupOp groups samples by metadata.
type GroupOp struct {
	Input Node
	Args  GroupArgs
}

// Describe implements Node.
func (n *GroupOp) Describe(i int) string {
	return fmt.Sprintf("%sGROUP by: [%s] aggs: %s\n%s",
		pad(i), strings.Join(n.Args.By, ","), aggsString(n.Args.MetaAggs), n.Input.Describe(i+1))
}

// OrderOp sorts samples by metadata and truncates.
type OrderOp struct {
	Input Node
	Args  OrderArgs
}

// Describe implements Node.
func (n *OrderOp) Describe(i int) string {
	var keys []string
	for _, k := range n.Args.Keys {
		dir := "ASC"
		if k.Desc {
			dir = "DESC"
		}
		keys = append(keys, k.Attr+" "+dir)
	}
	return fmt.Sprintf("%sORDER %s top: %d\n%s", pad(i), strings.Join(keys, ", "), n.Args.Top, n.Input.Describe(i+1))
}

// UnionOp concatenates two datasets.
type UnionOp struct{ Left, Right Node }

// Describe implements Node.
func (n *UnionOp) Describe(i int) string {
	return fmt.Sprintf("%sUNION\n%s\n%s", pad(i), n.Left.Describe(i+1), n.Right.Describe(i+1))
}

// DifferenceOp removes left regions overlapping right regions.
type DifferenceOp struct {
	Left, Right Node
	Args        DifferenceArgs
}

// Describe implements Node.
func (n *DifferenceOp) Describe(i int) string {
	return fmt.Sprintf("%sDIFFERENCE joinby: [%s] exact: %v\n%s\n%s",
		pad(i), strings.Join(n.Args.JoinBy, ","), n.Args.Exact,
		n.Left.Describe(i+1), n.Right.Describe(i+1))
}

// MapOp aggregates experiment regions over reference regions.
type MapOp struct {
	Ref, Exp Node
	Args     MapArgs
}

// Describe implements Node.
func (n *MapOp) Describe(i int) string {
	return fmt.Sprintf("%sMAP %s joinby: [%s]\n%s\n%s",
		pad(i), aggsString(n.Args.Aggs), strings.Join(n.Args.JoinBy, ","),
		n.Ref.Describe(i+1), n.Exp.Describe(i+1))
}

// JoinOp is the genometric join.
type JoinOp struct {
	Left, Right Node
	Args        JoinArgs
}

// Describe implements Node.
func (n *JoinOp) Describe(i int) string {
	var conds []string
	for _, c := range n.Args.Pred.Conds {
		conds = append(conds, fmt.Sprintf("%s(%d)", c.Op, c.Dist))
	}
	if n.Args.Pred.MinDistK > 0 {
		conds = append(conds, fmt.Sprintf("MD(%d)", n.Args.Pred.MinDistK))
	}
	switch n.Args.Pred.Stream {
	case StreamUp:
		conds = append(conds, "UP")
	case StreamDown:
		conds = append(conds, "DOWN")
	}
	return fmt.Sprintf("%sJOIN %s output: %s joinby: [%s]\n%s\n%s",
		pad(i), strings.Join(conds, ", "), n.Args.Output, strings.Join(n.Args.JoinBy, ","),
		n.Left.Describe(i+1), n.Right.Describe(i+1))
}

// CoverOp computes accumulation regions.
type CoverOp struct {
	Input Node
	Args  CoverArgs
}

// Describe implements Node.
func (n *CoverOp) Describe(i int) string {
	return fmt.Sprintf("%s%s(%s, %s) groupby: [%s]\n%s",
		pad(i), n.Args.Variant, n.Args.Min, n.Args.Max,
		strings.Join(n.Args.GroupBy, ","), n.Input.Describe(i+1))
}

func aggsString(aggs []expr.Aggregate) string {
	parts := make([]string, len(aggs))
	for i, a := range aggs {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

// Explain renders a whole plan tree.
func Explain(n Node) string { return n.Describe(0) }
