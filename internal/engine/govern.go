package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"genogo/internal/gdm"
	"genogo/internal/obs"
)

// Query lifecycle governance: cancellation, deadlines and resource budgets.
//
// A Session is governed by binding it to a context.Context and a Limits via
// Session.Govern. The governor rides on Config as an unexported pointer, so
// every operator kernel — they all receive the Config by value — observes the
// same governor without any kernel signature changing. Kernels check for
// cancellation at two granularities:
//
//   - forEach gates every work item (sample, pair, per-chrom task) on all
//     three backends, and
//   - long-running inner loops (JOIN anchors, MAP overlaps, COVER entries,
//     DIFFERENCE probes) tick the governor every govTickInterval iterations,
//
// which together bound the cancellation latency by the cost of one tick
// interval of straight-line region work.
//
// A kill unwinds as a govPanic through the existing panic-recovery machinery
// (forEach worker traps, evalPair's right-operand goroutine, Session.Eval's
// recover) and surfaces as a typed error: ErrCanceled, ErrDeadline, or a
// *BudgetError wrapping ErrBudgetExceeded.

// Typed lifecycle errors. Budget violations return a *BudgetError, which
// unwraps to ErrBudgetExceeded; classify any of the three with Killed.
var (
	// ErrCanceled reports a query stopped because its context was canceled
	// (client disconnect, federation leg abort, Ctrl-C).
	ErrCanceled = errors.New("engine: query canceled")
	// ErrDeadline reports a query stopped because its wall-clock deadline
	// expired.
	ErrDeadline = errors.New("engine: query deadline exceeded")
	// ErrBudgetExceeded reports a query killed for exceeding a resource
	// budget.
	ErrBudgetExceeded = errors.New("engine: query budget exceeded")
)

// BudgetError is the typed budget violation: which operator tripped which
// limit, and by how much. It unwraps to ErrBudgetExceeded.
type BudgetError struct {
	// Op is the operator at whose boundary the budget tripped (the offending
	// operator span's name, e.g. "JOIN").
	Op string
	// Detail is the operator's one-line plan description.
	Detail string
	// Resource is "output regions" or "resident bytes".
	Resource string
	// Limit is the configured budget; Used is the observed consumption.
	Limit, Used int64
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("engine: query budget exceeded: %s at operator %s (%s): %d > limit %d",
		e.Resource, e.Op, e.Detail, e.Used, e.Limit)
}

// Unwrap makes errors.Is(err, ErrBudgetExceeded) work.
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// Killed classifies a governance kill: it reports ("canceled"|"deadline"|
// "budget", true) when err is (or wraps) one of the typed lifecycle errors,
// and ("", false) for ordinary query errors. CLIs map the reasons to distinct
// exit codes and servers map them to console states.
func Killed(err error) (reason string, ok bool) {
	switch {
	case err == nil:
		return "", false
	case errors.Is(err, ErrBudgetExceeded):
		return "budget", true
	case errors.Is(err, ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		return "deadline", true
	case errors.Is(err, ErrCanceled), errors.Is(err, context.Canceled):
		return "canceled", true
	}
	return "", false
}

// Limits are the per-query resource budgets. The zero value disables every
// budget: a zero-limits governed session still honors cancellation.
type Limits struct {
	// MaxOutputRegions bounds the region count of any single operator output;
	// <= 0 disables. It is checked at operator boundaries, so one runaway
	// JOIN or COVER is killed before the next operator amplifies it.
	MaxOutputRegions int64
	// MaxResidentBytes bounds the estimated bytes of all operator outputs the
	// session holds resident (the session caches every operator output for
	// subtree sharing, so this is the query's materialized footprint);
	// <= 0 disables.
	MaxResidentBytes int64
	// Deadline is the wall-clock budget for the whole session; <= 0 disables.
	Deadline time.Duration
}

// govTickInterval bounds how many inner-loop iterations a kernel runs between
// governance checks. 1024 keeps the per-iteration cost to an int increment
// while bounding post-cancel straight-line work to microseconds.
const govTickInterval = 1024

// governor carries a session's cancellation signal and budgets into the
// operator kernels via Config.
type governor struct {
	ctx  context.Context
	done <-chan struct{}
	lim  Limits
	// resident accumulates the estimated bytes of uncached operator outputs.
	resident atomic.Int64
	// dead flips once the first check observes cancellation, so forEach's
	// dispatch loop can stop handing out work without panicking itself.
	dead atomic.Bool
}

// killErr maps the governed context's error to the typed lifecycle error.
func (g *governor) killErr() error {
	if errors.Is(g.ctx.Err(), context.DeadlineExceeded) {
		return ErrDeadline
	}
	return ErrCanceled
}

// check panics with a govPanic when the governed context is dead. It is safe
// on a nil governor (ungoverned sessions pay one nil check).
func (g *governor) check() {
	if g == nil {
		return
	}
	if g.ctx.Err() != nil {
		g.dead.Store(true)
		panic(govPanic{g.killErr()})
	}
}

// noteOutput enforces the output-region and resident-byte budgets against one
// uncached operator output. Budget kills return as plain errors (no panic):
// they occur at operator boundaries where the error path already exists.
func (g *governor) noteOutput(n Node, ds *gdm.Dataset) error {
	if g == nil {
		return nil
	}
	if g.lim.MaxOutputRegions > 0 {
		var regions int64
		for i := range ds.Samples {
			regions += int64(len(ds.Samples[i].Regions))
		}
		if regions > g.lim.MaxOutputRegions {
			return g.budgetErr(n, "output regions", g.lim.MaxOutputRegions, regions)
		}
	}
	if g.lim.MaxResidentBytes > 0 {
		if used := g.resident.Add(ds.EstimateBytes()); used > g.lim.MaxResidentBytes {
			return g.budgetErr(n, "resident bytes", g.lim.MaxResidentBytes, used)
		}
	}
	return nil
}

func (g *governor) budgetErr(n Node, resource string, limit, used int64) error {
	g.dead.Store(true)
	detail, _, _ := strings.Cut(n.Describe(0), "\n")
	return &BudgetError{Op: opName(n), Detail: detail, Resource: resource, Limit: limit, Used: used}
}

// govPanic carries a governance kill up the evaluator stack through the same
// recovery machinery that handles worker panics.
type govPanic struct{ err error }

// Govern binds the session to ctx and the given budgets. Evaluation stops
// with ErrCanceled when ctx is canceled, ErrDeadline when ctx's or lim's
// deadline expires, and a *BudgetError when a budget trips. The returned stop
// function releases the deadline timer; call it when done with the session.
// Governing an already-governed session replaces the previous binding.
func (s *Session) Govern(ctx context.Context, lim Limits) (stop func()) {
	if ctx == nil {
		ctx = context.Background()
	}
	cancel := func() {}
	if lim.Deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, lim.Deadline)
	}
	s.e.cfg.gov = &governor{ctx: ctx, done: ctx.Done(), lim: lim}
	return cancel
}

// RunContext is Run under governance: the plan evaluates with ctx's
// cancellation and the given budgets enforced.
func RunContext(ctx context.Context, cfg Config, plan Node, cat Catalog, lim Limits) (*gdm.Dataset, error) {
	s := NewSession(cfg, cat)
	stop := s.Govern(ctx, lim)
	defer stop()
	return s.Eval(plan)
}

// itemGate runs before every forEach work item: the chaos stall hook first
// (so a stuck operator still observes cancellation through done), then the
// cancellation check.
func (c Config) itemGate() {
	if c.Stall != nil {
		var done <-chan struct{}
		if c.gov != nil {
			done = c.gov.done
		}
		c.Stall(done)
	}
	c.gov.check()
}

// tick is the bounded-interval cancellation check for long inner loops; n is
// the caller's loop-local counter. Ungoverned sessions pay one nil check.
func (c Config) tick(n *int) {
	if c.gov == nil {
		return
	}
	*n++
	if *n >= govTickInterval {
		*n = 0
		c.gov.check()
	}
}

// observeKill counts a governance kill in the engine metrics. Called once per
// killed query at the Session boundary — not in check(), which may fire from
// many workers.
func observeKill(err error) {
	if reason, ok := Killed(err); ok {
		if reason == "budget" {
			metricBudgetKills.Inc()
			// A budget kill means a query was eating the machine: capture the
			// moment for /debug/prof (no-op unless the binary enabled it).
			obs.Prof().Trigger("budget_kill", "")
		} else {
			metricCanceled.With(reason).Inc()
		}
	}
}
