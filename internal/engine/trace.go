package engine

import (
	"fmt"
	"strings"
	"time"

	"genogo/internal/gdm"
	"genogo/internal/obs"
)

// Engine metrics, registered against the process-wide registry at package
// init so any binary importing the engine exports them from /metrics.
var (
	metricQueries = obs.Default().CounterVec("genogo_engine_queries_total",
		"Plans evaluated by Session.Eval, by backend mode.", "mode")
	metricCacheHits = obs.Default().Counter("genogo_engine_cache_hits_total",
		"Plan subtrees answered from the session result cache instead of executing.")
	metricWorkersBusy = obs.Default().Gauge("genogo_engine_workers_busy",
		"Worker-pool goroutines currently executing operator kernels.")
	metricBusyNS = obs.Default().CounterVec("genogo_engine_busy_ns_total",
		"Cumulative wall time worker goroutines spent inside operator kernels, by backend mode. busy_ns / (wall * workers) is pool utilization.", "mode")
	metricCanceled = obs.Default().CounterVec("genogo_govern_queries_canceled_total",
		"Queries killed by lifecycle governance, by reason (canceled, deadline).", "reason")
	metricBudgetKills = obs.Default().Counter("genogo_govern_queries_budget_exceeded_total",
		"Queries killed for exceeding a resource budget (output regions or resident bytes).")
)

// opName is the span operator name for a plan node.
func opName(n Node) string {
	switch op := n.(type) {
	case *Scan:
		return "SCAN"
	case *SelectOp:
		return "SELECT"
	case *ProjectOp:
		return "PROJECT"
	case *ExtendOp:
		return "EXTEND"
	case *MergeOp:
		return "MERGE"
	case *GroupOp:
		return "GROUP"
	case *OrderOp:
		return "ORDER"
	case *UnionOp:
		return "UNION"
	case *DifferenceOp:
		return "DIFFERENCE"
	case *MapOp:
		return "MAP"
	case *JoinOp:
		return "JOIN"
	case *CoverOp:
		return op.Args.Variant.String()
	default:
		return fmt.Sprintf("%T", n)
	}
}

// newSpan starts the span for one plan node: operator name, the plan's
// one-line description, and the backend that will run it. The span is armed
// for resource attribution (CPU time and allocations over its execution
// window — obs.ResUsage semantics); FinishRes in finishSpan records the
// delta, so EXPLAIN ANALYZE shows where the cycles and allocations went,
// not just the wall time.
func newSpan(n Node, cfg Config) *obs.Span {
	sp := obs.NewSpan(opName(n))
	sp.Detail, _, _ = strings.Cut(n.Describe(0), "\n")
	sp.Mode = cfg.Mode.String()
	sp.StartRes()
	return sp
}

// fillSpanOutput records the span's output dataset shape. All span mutation
// after publication goes through the mutex-guarded setters, so a live query
// console can snapshot the tree while the query is still executing.
func fillSpanOutput(sp *obs.Span, out *gdm.Dataset) {
	rs := 0
	for i := range out.Samples {
		rs += len(out.Samples[i].Regions)
	}
	sp.SetOutput(len(out.Samples), rs)
}

// finishSpan completes a span once its operator has produced out: the inputs
// total the children's outputs (every input of an operator is a child span),
// and Workers is the parallelism the pool could actually use on that input —
// the realized, not configured, fan-out. Reading the children directly is
// safe here: every child finished before its parent's kernel ran (the
// concurrent right operand of a binary operator synchronizes via channel).
func finishSpan(sp *obs.Span, cfg Config, out *gdm.Dataset, start time.Time) {
	// Resources first: the span bookkeeping below should not be attributed
	// to the operator.
	sp.FinishRes()
	sIn, rIn := 0, 0
	for _, c := range sp.Children {
		sIn += c.SamplesOut
		rIn += c.RegionsOut
	}
	sp.SetInput(sIn, rIn)
	if sIn > 0 {
		sp.SetWorkers(cfg.effectiveWorkers(sIn))
	}
	fillSpanOutput(sp, out)
	sp.Finish(start)
}
