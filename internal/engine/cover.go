package engine

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"genogo/internal/expr"
	"genogo/internal/gdm"
	"genogo/internal/intervals"
)

// CoverBoundKind distinguishes numeric accumulation bounds from the GMQL
// keywords ANY and ALL.
type CoverBoundKind uint8

// Accumulation bound kinds.
const (
	// BoundN is a literal accumulation count.
	BoundN CoverBoundKind = iota
	// BoundAny means "at least one" as a minimum and "no limit" as a maximum.
	BoundAny
	// BoundAll means the number of samples in the group.
	BoundAll
)

// CoverBound is one accumulation bound of COVER(minAcc, maxAcc).
type CoverBound struct {
	Kind CoverBoundKind
	N    int64
}

// String renders the bound in GMQL surface syntax.
func (b CoverBound) String() string {
	switch b.Kind {
	case BoundAny:
		return "ANY"
	case BoundAll:
		return "ALL"
	default:
		return strconv.FormatInt(b.N, 10)
	}
}

// resolve turns the bound into a concrete depth for a group of n samples.
func (b CoverBound) resolve(n int, isMin bool) int64 {
	switch b.Kind {
	case BoundAny:
		if isMin {
			return 1
		}
		return math.MaxInt64
	case BoundAll:
		return int64(n)
	default:
		return b.N
	}
}

// CoverVariant selects the COVER flavor.
type CoverVariant uint8

// COVER variants.
const (
	// CoverStandard merges contiguous qualifying segments into regions.
	CoverStandard CoverVariant = iota
	// CoverFlat extends each qualifying run to the full extent of the
	// original regions contributing to it.
	CoverFlat
	// CoverSummit emits the local depth maxima inside each qualifying run.
	CoverSummit
	// CoverHistogram emits every constant-depth qualifying segment.
	CoverHistogram
)

// String renders the GMQL keyword.
func (v CoverVariant) String() string {
	switch v {
	case CoverStandard:
		return "COVER"
	case CoverFlat:
		return "FLAT"
	case CoverSummit:
		return "SUMMIT"
	case CoverHistogram:
		return "HISTOGRAM"
	default:
		return fmt.Sprintf("COVER(%d)", uint8(v))
	}
}

// CoverArgs parametrizes COVER.
type CoverArgs struct {
	Min, Max CoverBound
	Variant  CoverVariant
	// GroupBy partitions the samples by metadata attributes; COVER runs
	// independently in each group (GMQL "groupby" clause; replicas of the
	// same experiment are the motivating case in the paper). Empty treats
	// the whole dataset as one group.
	GroupBy []string
	// Aggs computes aggregates over the input regions intersecting each
	// output region (e.g. "avg_signal AS AVG(signal)"), appended to the
	// acc_index attribute.
	Aggs []expr.Aggregate
}

// CoverSchema is the output schema of every COVER variant: the accumulation
// index (maximum overlap depth inside the emitted region).
var CoverSchema = gdm.MustSchema(gdm.Field{Name: "acc_index", Type: gdm.KindInt})

// Cover implements GMQL COVER and its FLAT/SUMMIT/HISTOGRAM variants. It
// computes, per sample group and chromosome, the accumulation profile of all
// regions and emits the maximal runs whose depth lies within [min, max].
// Output regions are unstranded; one output sample is produced per group,
// with the union of the group's metadata. Optional aggregates are computed
// over the input regions intersecting each output region.
func Cover(cfg Config, ds *gdm.Dataset, args CoverArgs) (*gdm.Dataset, error) {
	aggIdx := make([]int, len(args.Aggs))
	fields := CoverSchema.Fields()
	for i, a := range args.Aggs {
		in := gdm.KindNull
		if a.Func.NeedsAttr() {
			j, ok := ds.Schema.Index(a.Attr)
			if !ok {
				return nil, fmt.Errorf("cover: unknown attribute %q in schema %s", a.Attr, ds.Schema)
			}
			aggIdx[i] = j
			in = ds.Schema.Field(j).Type
		} else {
			aggIdx[i] = -1
		}
		fields = append(fields, gdm.Field{Name: a.Output, Type: a.Func.ResultKind(in)})
	}
	outSchema, err := gdm.NewSchema(fields...)
	if err != nil {
		return nil, fmt.Errorf("cover: %w", err)
	}

	groups := make(map[string][]*gdm.Sample)
	var order []string
	for _, s := range ds.Samples {
		k := groupKey(s.Meta, args.GroupBy)
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], s)
	}
	sort.Strings(order)
	// Process group members in ID order: the derived sample ID, the metadata
	// union and the entry order feeding tie-sensitive aggregates must not
	// depend on the catalog's sample order (set-shaped provenance, same as
	// MERGE).
	for _, members := range groups {
		sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
	}
	out := gdm.NewDataset(ds.Name, outSchema)
	outSamples := make([]*gdm.Sample, len(order))

	// Tasks span (group, chromosome): COVER of a single group still uses
	// every worker, one chromosome each, mirroring the genomic partitioning
	// of the distributed implementations.
	type task struct {
		group int
		chrom string
		out   []gdm.Region
	}
	tasks := make([]*task, 0, len(order))
	taskIdx := make([][]int, len(order))
	minAccs := make([]int64, len(order))
	maxAccs := make([]int64, len(order))
	for gi, k := range order {
		members := groups[k]
		minAccs[gi] = args.Min.resolve(len(members), true)
		maxAccs[gi] = args.Max.resolve(len(members), false)
		chromSet := make(map[string]bool)
		var chroms []string
		for _, m := range members {
			for _, c := range m.Chroms() {
				if !chromSet[c] {
					chromSet[c] = true
					chroms = append(chroms, c)
				}
			}
		}
		sort.Slice(chroms, func(i, j int) bool { return gdm.CompareChrom(chroms[i], chroms[j]) < 0 })
		for _, c := range chroms {
			taskIdx[gi] = append(taskIdx[gi], len(tasks))
			tasks = append(tasks, &task{group: gi, chrom: c})
		}
	}
	cfg.forEach(len(tasks), func(ti int) {
		tk := tasks[ti]
		members := groups[order[tk.group]]
		// entries index into sources so aggregates can read the
		// contributing regions' attribute values.
		var entries []intervals.Entry
		var sources []*gdm.Region
		var tick int
		for _, m := range members {
			lo, hi := m.ChromRange(tk.chrom)
			for i := lo; i < hi; i++ {
				cfg.tick(&tick)
				r := &m.Regions[i]
				entries = append(entries, intervals.Entry{
					Start: r.Start, Stop: r.Stop, Payload: int32(len(sources))})
				sources = append(sources, r)
			}
		}
		intervals.SortEntries(entries)
		segs := intervals.Coverage(entries)
		regs := coverRegions(segs, entries, minAccs[tk.group], maxAccs[tk.group], args.Variant)
		if len(args.Aggs) > 0 {
			appendCoverAggs(regs, entries, sources, args.Aggs, aggIdx)
		}
		for i := range regs {
			regs[i].Chrom = tk.chrom
		}
		tk.out = regs
	})
	cfg.forEach(len(order), func(gi int) {
		members := groups[order[gi]]
		ids := make([]string, len(members))
		for i, m := range members {
			ids[i] = m.ID
		}
		ns := gdm.NewSample(gdm.DeriveID("cover", ids...))
		for _, m := range members {
			m.Meta.MergeInto(ns.Meta, "")
		}
		ns.Meta.Set("_cover", fmt.Sprintf("%s(%s,%s)", args.Variant, args.Min, args.Max))
		for _, ti := range taskIdx[gi] {
			ns.Regions = append(ns.Regions, tasks[ti].out...)
		}
		ns.SortRegions()
		outSamples[gi] = ns
	})
	out.Samples = outSamples
	return out, nil
}

// appendCoverAggs extends each output region's values with aggregates over
// the input regions intersecting it. Output regions are sorted and disjoint
// (except FLAT, which may overlap after extension), so a fresh sweep per
// output region set is linear in practice.
func appendCoverAggs(regs []gdm.Region, entries []intervals.Entry, sources []*gdm.Region,
	aggs []expr.Aggregate, aggIdx []int) {
	outEntries := make([]intervals.Entry, len(regs))
	for i, r := range regs {
		outEntries[i] = intervals.Entry{Start: r.Start, Stop: r.Stop, Payload: int32(i)}
	}
	intervals.SortEntries(outEntries)
	accs := make([][]*expr.Accumulator, len(regs))
	for i := range accs {
		row := make([]*expr.Accumulator, len(aggs))
		for ai := range aggs {
			row[ai] = expr.NewAccumulator(aggs[ai].Func)
		}
		accs[i] = row
	}
	intervals.SweepOverlaps(outEntries, entries, func(o, e intervals.Entry) bool {
		src := sources[e.Payload]
		for ai := range aggs {
			if aggIdx[ai] < 0 {
				accs[o.Payload][ai].Add(gdm.Null())
			} else {
				accs[o.Payload][ai].Add(src.Values[aggIdx[ai]])
			}
		}
		return true
	})
	for i := range regs {
		for ai := range aggs {
			regs[i].Values = append(regs[i].Values, accs[i][ai].Result())
		}
	}
}

// coverRegions turns one chromosome's coverage profile into output regions
// according to the variant. Chrom is filled in by the caller.
func coverRegions(segs []intervals.CoverSegment, entries []intervals.Entry, minAcc, maxAcc int64, variant CoverVariant) []gdm.Region {
	qualifies := func(d int) bool { return int64(d) >= minAcc && int64(d) <= maxAcc }
	var out []gdm.Region

	switch variant {
	case CoverHistogram:
		for _, s := range segs {
			if qualifies(s.Depth) {
				out = append(out, gdm.Region{Start: s.Start, Stop: s.Stop,
					Values: []gdm.Value{gdm.Int(int64(s.Depth))}})
			}
		}
		return out

	case CoverSummit:
		// A summit is a qualifying segment whose depth is not exceeded by
		// its contiguous neighbours (plateaus emit once).
		for i, s := range segs {
			if !qualifies(s.Depth) {
				continue
			}
			leftLower := i == 0 || segs[i-1].Stop != s.Start || segs[i-1].Depth < s.Depth
			rightLowerOrEqual := i == len(segs)-1 || segs[i+1].Start != s.Stop || segs[i+1].Depth <= s.Depth
			rightStrictlyHigher := i < len(segs)-1 && segs[i+1].Start == s.Stop && segs[i+1].Depth > s.Depth
			if leftLower && rightLowerOrEqual && !rightStrictlyHigher {
				out = append(out, gdm.Region{Start: s.Start, Stop: s.Stop,
					Values: []gdm.Value{gdm.Int(int64(s.Depth))}})
			}
		}
		return out
	}

	// CoverStandard and CoverFlat: merge contiguous qualifying segments
	// into runs, tracking the maximum depth.
	type run struct {
		start, stop int64
		maxDepth    int
	}
	var runs []run
	for _, s := range segs {
		if !qualifies(s.Depth) {
			continue
		}
		if n := len(runs); n > 0 && runs[n-1].stop == s.Start {
			runs[n-1].stop = s.Stop
			if s.Depth > runs[n-1].maxDepth {
				runs[n-1].maxDepth = s.Depth
			}
		} else {
			runs = append(runs, run{s.Start, s.Stop, s.Depth})
		}
	}
	for _, rn := range runs {
		start, stop := rn.start, rn.stop
		if variant == CoverFlat {
			// Extend to the extent of every original region intersecting
			// the run.
			for _, e := range entries {
				if e.Start < rn.stop && rn.start < e.Stop {
					if e.Start < start {
						start = e.Start
					}
					if e.Stop > stop {
						stop = e.Stop
					}
				}
			}
		}
		out = append(out, gdm.Region{Start: start, Stop: stop,
			Values: []gdm.Value{gdm.Int(int64(rn.maxDepth))}})
	}
	return out
}
