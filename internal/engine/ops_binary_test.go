package engine

import (
	"math/rand"
	"testing"

	"genogo/internal/expr"
	"genogo/internal/gdm"
)

func TestUnionBasics(t *testing.T) {
	left := mkDataset(t, "L",
		mkSample("l1", map[string]string{"src": "left"}, regSpec{"chr1", 0, 10, gdm.StrandNone, 1, "a"}))
	rightSchema := gdm.MustSchema(
		gdm.Field{Name: "name", Type: gdm.KindString}, // different order
		gdm.Field{Name: "extra", Type: gdm.KindInt},
		gdm.Field{Name: "score", Type: gdm.KindFloat},
	)
	right := gdm.NewDataset("R", rightSchema)
	rs := gdm.NewSample("r1")
	rs.Meta.Add("src", "right")
	rs.AddRegion(gdm.NewRegion("chr2", 5, 9, gdm.StrandPlus, gdm.Str("b"), gdm.Int(7), gdm.Float(2)))
	right.MustAdd(rs)

	for _, cfg := range allConfigs() {
		out, err := Union(cfg, left, right)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Samples) != 2 {
			t.Fatalf("%s: samples = %d", cfg.Mode, len(out.Samples))
		}
		if !out.Schema.Equal(left.Schema) {
			t.Fatalf("%s: schema = %s", cfg.Mode, out.Schema)
		}
		// Right sample re-laid-out by name: score=2, name="b".
		var r *gdm.Sample
		for _, s := range out.Samples {
			if s.Meta.Matches("src", "right") {
				r = s
			}
		}
		if r == nil {
			t.Fatal("right sample missing")
		}
		if r.Regions[0].Values[0].Float() != 2 || r.Regions[0].Values[1].Str() != "b" {
			t.Errorf("%s: right values = %v", cfg.Mode, r.Regions[0].Values)
		}
		if err := out.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Mode, err)
		}
	}
}

func TestUnionIDCollision(t *testing.T) {
	a := mkDataset(t, "A", mkSample("same", nil, regSpec{"chr1", 0, 1, gdm.StrandNone, 1, "x"}))
	b := mkDataset(t, "B", mkSample("same", nil, regSpec{"chr1", 5, 6, gdm.StrandNone, 2, "y"}))
	out, err := Union(Config{MetaFirst: true}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Samples[0].ID == out.Samples[1].ID {
		t.Error("colliding IDs not re-derived")
	}
	if err := out.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDifferenceOverlap(t *testing.T) {
	left := mkDataset(t, "L", mkSample("l", nil,
		regSpec{"chr1", 0, 100, gdm.StrandNone, 1, "keepNot"},
		regSpec{"chr1", 200, 300, gdm.StrandNone, 1, "keep"},
		regSpec{"chr2", 0, 50, gdm.StrandNone, 1, "keep2"},
	))
	right := mkDataset(t, "R", mkSample("r", nil,
		regSpec{"chr1", 50, 150, gdm.StrandNone, 1, "neg"},
		regSpec{"chr2", 100, 200, gdm.StrandNone, 1, "neg2"},
	))
	for _, cfg := range allConfigs() {
		out, err := Difference(cfg, left, right, DifferenceArgs{})
		if err != nil {
			t.Fatal(err)
		}
		s := out.Samples[0]
		if s.ID != "l" {
			t.Errorf("%s: ID = %q", cfg.Mode, s.ID)
		}
		if len(s.Regions) != 2 {
			t.Fatalf("%s: regions = %v", cfg.Mode, s.Regions)
		}
		if s.Regions[0].Values[1].Str() != "keep" || s.Regions[1].Values[1].Str() != "keep2" {
			t.Errorf("%s: wrong survivors: %v", cfg.Mode, s.Regions)
		}
	}
}

func TestDifferenceExact(t *testing.T) {
	left := mkDataset(t, "L", mkSample("l", nil,
		regSpec{"chr1", 0, 100, gdm.StrandNone, 1, "exact"},
		regSpec{"chr1", 0, 101, gdm.StrandNone, 1, "near"},
	))
	right := mkDataset(t, "R", mkSample("r", nil,
		regSpec{"chr1", 0, 100, gdm.StrandNone, 9, "neg"},
	))
	out, err := Difference(Config{MetaFirst: true}, left, right, DifferenceArgs{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Samples[0].Regions) != 1 || out.Samples[0].Regions[0].Values[1].Str() != "near" {
		t.Errorf("exact difference = %v", out.Samples[0].Regions)
	}
}

func TestDifferenceStrandAware(t *testing.T) {
	left := mkDataset(t, "L", mkSample("l", nil,
		regSpec{"chr1", 0, 100, gdm.StrandPlus, 1, "plus"},
	))
	right := mkDataset(t, "R", mkSample("r", nil,
		regSpec{"chr1", 0, 100, gdm.StrandMinus, 1, "minus"},
	))
	out, err := Difference(Config{MetaFirst: true}, left, right, DifferenceArgs{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Samples[0].Regions) != 1 {
		t.Error("opposite-strand region was removed")
	}
}

func TestDifferenceJoinBy(t *testing.T) {
	left := mkDataset(t, "L",
		mkSample("l1", map[string]string{"cell": "HeLa"}, regSpec{"chr1", 0, 10, gdm.StrandNone, 1, "x"}),
		mkSample("l2", map[string]string{"cell": "K562"}, regSpec{"chr1", 0, 10, gdm.StrandNone, 1, "y"}),
	)
	right := mkDataset(t, "R",
		mkSample("r1", map[string]string{"cell": "HeLa"}, regSpec{"chr1", 5, 15, gdm.StrandNone, 1, "n"}),
	)
	out, err := Difference(Config{MetaFirst: true}, left, right, DifferenceArgs{JoinBy: []string{"cell"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Sample("l1").Regions) != 0 {
		t.Error("HeLa region should have been removed")
	}
	if len(out.Sample("l2").Regions) != 1 {
		t.Error("K562 region should have survived (no matching negative)")
	}
}

func TestMapCount(t *testing.T) {
	ref := mkDataset(t, "PROMS", mkSample("p", nil,
		regSpec{"chr1", 0, 100, gdm.StrandNone, 0, "prom1"},
		regSpec{"chr1", 500, 600, gdm.StrandNone, 0, "prom2"},
		regSpec{"chr2", 0, 100, gdm.StrandNone, 0, "prom3"},
	))
	exp := mkDataset(t, "PEAKS",
		mkSample("e1", map[string]string{"cell": "HeLa"},
			regSpec{"chr1", 10, 20, gdm.StrandNone, 1, "pk1"},
			regSpec{"chr1", 50, 120, gdm.StrandNone, 2, "pk2"},
			regSpec{"chr1", 550, 560, gdm.StrandNone, 3, "pk3"},
			regSpec{"chr3", 0, 10, gdm.StrandNone, 4, "pk4"},
		),
		mkSample("e2", map[string]string{"cell": "K562"},
			regSpec{"chr2", 50, 150, gdm.StrandNone, 5, "pk5"},
		),
	)
	for _, cfg := range allConfigs() {
		out, err := Map(cfg, ref, exp, MapArgs{Aggs: countAgg()})
		if err != nil {
			t.Fatal(err)
		}
		// One output sample per (ref, exp) pair.
		if len(out.Samples) != 2 {
			t.Fatalf("%s: samples = %d", cfg.Mode, len(out.Samples))
		}
		// MAP cardinality law: every output sample has all ref regions.
		for _, s := range out.Samples {
			if len(s.Regions) != 3 {
				t.Fatalf("%s: output regions = %d, want 3", cfg.Mode, len(s.Regions))
			}
		}
		// Schema: ref schema + count.
		ci, ok := out.Schema.Index("count")
		if !ok || out.Schema.Field(ci).Type != gdm.KindInt {
			t.Fatalf("%s: schema = %s", cfg.Mode, out.Schema)
		}
		// Locate the e1 output sample via provenance metadata.
		var s1, s2 *gdm.Sample
		for _, s := range out.Samples {
			if s.Meta.Matches("right.cell", "HeLa") {
				s1 = s
			}
			if s.Meta.Matches("right.cell", "K562") {
				s2 = s
			}
		}
		if s1 == nil || s2 == nil {
			t.Fatalf("%s: provenance metadata missing", cfg.Mode)
		}
		wantS1 := []int64{2, 1, 0} // prom1 gets pk1+pk2, prom2 gets pk3, prom3 none
		for i, w := range wantS1 {
			if got := s1.Regions[i].Values[ci].Int(); got != w {
				t.Errorf("%s: s1 region %d count = %d, want %d", cfg.Mode, i, got, w)
			}
		}
		wantS2 := []int64{0, 0, 1}
		for i, w := range wantS2 {
			if got := s2.Regions[i].Values[ci].Int(); got != w {
				t.Errorf("%s: s2 region %d count = %d, want %d", cfg.Mode, i, got, w)
			}
		}
	}
}

func TestMapAggregates(t *testing.T) {
	ref := mkDataset(t, "R", mkSample("p", nil,
		regSpec{"chr1", 0, 100, gdm.StrandNone, 0, "win"},
	))
	exp := mkDataset(t, "E", mkSample("e", nil,
		regSpec{"chr1", 10, 20, gdm.StrandNone, 2, "a"},
		regSpec{"chr1", 30, 40, gdm.StrandNone, 4, "b"},
		regSpec{"chr1", 200, 210, gdm.StrandNone, 100, "far"},
	))
	out, err := Map(Config{MetaFirst: true}, ref, exp, MapArgs{Aggs: []expr.Aggregate{
		{Output: "n", Func: expr.AggCount},
		{Output: "avg_score", Func: expr.AggAvg, Attr: "score"},
		{Output: "max_score", Func: expr.AggMax, Attr: "score"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	r := out.Samples[0].Regions[0]
	ni, _ := out.Schema.Index("n")
	ai, _ := out.Schema.Index("avg_score")
	mi, _ := out.Schema.Index("max_score")
	if r.Values[ni].Int() != 2 || r.Values[ai].Float() != 3 || r.Values[mi].Float() != 4 {
		t.Errorf("aggs = %v", r.Values)
	}
}

func TestMapStrandCompatibility(t *testing.T) {
	ref := mkDataset(t, "R", mkSample("p", nil,
		regSpec{"chr1", 0, 100, gdm.StrandPlus, 0, "w"},
	))
	exp := mkDataset(t, "E", mkSample("e", nil,
		regSpec{"chr1", 10, 20, gdm.StrandMinus, 1, "m"},
		regSpec{"chr1", 30, 40, gdm.StrandPlus, 1, "p"},
		regSpec{"chr1", 50, 60, gdm.StrandNone, 1, "n"},
	))
	out, err := Map(Config{MetaFirst: true}, ref, exp, MapArgs{Aggs: countAgg()})
	if err != nil {
		t.Fatal(err)
	}
	ci, _ := out.Schema.Index("count")
	if got := out.Samples[0].Regions[0].Values[ci].Int(); got != 2 {
		t.Errorf("count = %d, want 2 (minus-strand peak excluded)", got)
	}
}

func TestMapJoinBy(t *testing.T) {
	ref := mkDataset(t, "R",
		mkSample("r1", map[string]string{"cell": "HeLa"}, regSpec{"chr1", 0, 10, gdm.StrandNone, 0, "w"}),
	)
	exp := mkDataset(t, "E",
		mkSample("e1", map[string]string{"cell": "HeLa"}, regSpec{"chr1", 0, 5, gdm.StrandNone, 1, "a"}),
		mkSample("e2", map[string]string{"cell": "K562"}, regSpec{"chr1", 0, 5, gdm.StrandNone, 1, "b"}),
	)
	out, err := Map(Config{MetaFirst: true}, ref, exp, MapArgs{Aggs: countAgg(), JoinBy: []string{"cell"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Samples) != 1 {
		t.Fatalf("pairs = %d, want 1 (joinby cell)", len(out.Samples))
	}
}

func TestMapUnknownAttr(t *testing.T) {
	ref := mkDataset(t, "R", mkSample("r", nil))
	exp := mkDataset(t, "E", mkSample("e", nil))
	_, err := Map(Config{}, ref, exp, MapArgs{Aggs: []expr.Aggregate{
		{Output: "x", Func: expr.AggSum, Attr: "zzz"},
	}})
	if err == nil {
		t.Error("unknown attribute accepted")
	}
}

// TestMapSweepVsTreeEquivalence is the sweep-vs-tree ablation correctness
// check: both MAP kernels must agree on random data.
func TestMapSweepVsTreeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ref := randomDataset(rng, "REF", 3, 80)
	exp := randomDataset(rng, "EXP", 4, 120)
	sweep, err := Map(Config{Mode: ModeSerial, MetaFirst: true}, ref, exp, MapArgs{Aggs: countAgg()})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Map(Config{Mode: ModeSerial, MetaFirst: true, BinWidth: 4096}, ref, exp, MapArgs{Aggs: countAgg()})
	if err != nil {
		t.Fatal(err)
	}
	datasetsEquivalent(t, "sweep vs tree", sweep, tree)
}
