package engine

import (
	"fmt"

	"genogo/internal/gdm"
)

// ValidateOperatorOutput checks the invariants every operator output must
// satisfy, regardless of backend: a non-nil schema, canonical region order
// inside every sample, region value arity equal to the schema width, typed
// values matching the schema kinds, and unique sample IDs. It is the check
// Config.ValidateOutputs applies after every plan node, and the one the
// differential harness and the invariants tests share.
//
// gdm.Dataset.Validate already covers all of these; this wrapper exists to
// give violations an operator-shaped error prefix so a failing node is
// identifiable in a deep plan.
func ValidateOperatorOutput(op string, ds *gdm.Dataset) error {
	if ds == nil {
		return fmt.Errorf("engine: %s produced a nil dataset", op)
	}
	if ds.Schema == nil {
		return fmt.Errorf("engine: %s produced a dataset with nil schema", op)
	}
	if err := ds.Validate(); err != nil {
		return fmt.Errorf("engine: %s output invariant violated: %w", op, err)
	}
	return nil
}
