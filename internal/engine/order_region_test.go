package engine

import (
	"genogo/internal/expr"
	"testing"

	"genogo/internal/gdm"
)

func TestOrderRegionTop(t *testing.T) {
	ds := mkDataset(t, "D",
		mkSample("s1", map[string]string{"cell": "HeLa"},
			regSpec{"chr1", 0, 10, gdm.StrandNone, 1, "low"},
			regSpec{"chr1", 20, 30, gdm.StrandNone, 9, "high"},
			regSpec{"chr2", 0, 10, gdm.StrandNone, 5, "mid"},
		),
		mkSample("s2", map[string]string{"cell": "K562"},
			regSpec{"chr1", 0, 10, gdm.StrandNone, 3, "only"},
		),
	)
	out, err := Order(Config{MetaFirst: true}, ds, OrderArgs{
		Keys:       []OrderKey{{Attr: "cell"}},
		RegionKeys: []OrderKey{{Attr: "score", Desc: true}},
		RegionTop:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("canonical order lost: %v", err)
	}
	s1 := out.Sample("s1")
	if len(s1.Regions) != 2 {
		t.Fatalf("s1 regions = %d", len(s1.Regions))
	}
	names := map[string]bool{}
	for _, r := range s1.Regions {
		names[r.Values[1].Str()] = true
	}
	if !names["high"] || !names["mid"] || names["low"] {
		t.Errorf("kept = %v, want the 2 best scores", names)
	}
	if len(out.Sample("s2").Regions) != 1 {
		t.Errorf("s2 regions = %d", len(out.Sample("s2").Regions))
	}
}

func TestOrderRegionOnlyKeys(t *testing.T) {
	ds := mkDataset(t, "D",
		mkSample("a", nil,
			regSpec{"chr1", 0, 10, gdm.StrandNone, 2, "x"},
			regSpec{"chr1", 20, 30, gdm.StrandNone, 8, "y"},
		),
	)
	out, err := Order(Config{MetaFirst: true}, ds, OrderArgs{
		RegionKeys: []OrderKey{{Attr: "score", Desc: true}},
		RegionTop:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := out.Samples[0]
	if len(s.Regions) != 1 || s.Regions[0].Values[1].Str() != "y" {
		t.Errorf("regions = %v", s.Regions)
	}
}

func TestOrderRegionErrors(t *testing.T) {
	ds := mkDataset(t, "D", mkSample("a", nil))
	if _, err := Order(Config{}, ds, OrderArgs{
		RegionKeys: []OrderKey{{Attr: "zzz"}},
	}); err == nil {
		t.Error("unknown region key accepted")
	}
}

func TestGroupRegionDedup(t *testing.T) {
	ds := mkDataset(t, "D",
		mkSample("s", map[string]string{"cell": "HeLa"},
			regSpec{"chr1", 0, 10, gdm.StrandNone, 1, "a"},
			regSpec{"chr1", 0, 10, gdm.StrandNone, 3, "b"},
			regSpec{"chr1", 0, 10, gdm.StrandNone, 5, "c"},
			regSpec{"chr1", 20, 30, gdm.StrandNone, 7, "d"},
		),
	)
	out, err := Group(Config{MetaFirst: true}, ds, GroupArgs{
		By: []string{"cell"},
		RegionAggs: []expr.Aggregate{
			{Output: "n", Func: expr.AggCount},
			{Output: "avg", Func: expr.AggAvg, Attr: "score"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	s := out.Samples[0]
	if len(s.Regions) != 2 {
		t.Fatalf("regions = %v", s.Regions)
	}
	ni, _ := out.Schema.Index("n")
	ai, _ := out.Schema.Index("avg")
	if s.Regions[0].Values[ni].Int() != 3 || s.Regions[0].Values[ai].Float() != 3 {
		t.Errorf("dedup aggs = %v", s.Regions[0].Values)
	}
	if s.Regions[1].Values[ni].Int() != 1 || s.Regions[1].Values[ai].Float() != 7 {
		t.Errorf("singleton aggs = %v", s.Regions[1].Values)
	}
	// Unknown attribute in region aggregate.
	if _, err := Group(Config{}, ds, GroupArgs{
		RegionAggs: []expr.Aggregate{{Output: "x", Func: expr.AggSum, Attr: "zzz"}},
	}); err == nil {
		t.Error("unknown region aggregate attribute accepted")
	}
	// Strand-distinct duplicates stay separate.
	ds2 := mkDataset(t, "D2",
		mkSample("s", nil,
			regSpec{"chr1", 0, 10, gdm.StrandPlus, 1, "p"},
			regSpec{"chr1", 0, 10, gdm.StrandMinus, 2, "m"},
		),
	)
	out2, err := Group(Config{MetaFirst: true}, ds2, GroupArgs{
		RegionAggs: []expr.Aggregate{{Output: "n", Func: expr.AggCount}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out2.Samples[0].Regions) != 2 {
		t.Errorf("strand-distinct collapsed: %v", out2.Samples[0].Regions)
	}
}
