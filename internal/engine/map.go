package engine

import (
	"fmt"

	"genogo/internal/expr"
	"genogo/internal/gdm"
	"genogo/internal/intervals"
)

// MapArgs parametrizes MAP.
type MapArgs struct {
	// Aggs lists the aggregates computed over the experiment regions that
	// intersect each reference region. A plain COUNT ("count AS COUNT") is
	// the canonical use (the paper's headline query).
	Aggs []expr.Aggregate
	// JoinBy restricts the (reference, experiment) sample pairs to those
	// agreeing on these metadata attributes. Empty pairs every reference
	// sample with every experiment sample, the GMQL default.
	JoinBy []string
}

// Map implements GMQL MAP, the operation Fig. 4 of the paper builds genome
// spaces from: for every (reference sample, experiment sample) pair it emits
// one output sample holding all the reference regions, each extended with
// aggregates over the experiment regions intersecting it.
//
// The kernel is strategy-dependent (the sweep-vs-tree ablation):
// with Config.BinWidth <= 0 each chromosome is processed with one sorted
// merge sweep; with BinWidth > 0 reference regions are split into genometric
// bins and probe a static interval tree built over the experiment's
// chromosome, the binned strategy of the distributed GMQL implementations.
func Map(cfg Config, ref, exp *gdm.Dataset, args MapArgs) (*gdm.Dataset, error) {
	aggs := args.Aggs
	if len(aggs) == 0 {
		aggs = []expr.Aggregate{{Output: "count", Func: expr.AggCount}}
	}
	aggIdx := make([]int, len(aggs))
	fields := ref.Schema.Fields()
	for i, a := range aggs {
		in := gdm.KindNull
		if a.Func.NeedsAttr() {
			j, ok := exp.Schema.Index(a.Attr)
			if !ok {
				return nil, fmt.Errorf("map: unknown experiment attribute %q in schema %s", a.Attr, exp.Schema)
			}
			aggIdx[i] = j
			in = exp.Schema.Field(j).Type
		} else {
			aggIdx[i] = -1
		}
		fields = append(fields, gdm.Field{Name: a.Output, Type: a.Func.ResultKind(in)})
	}
	schema, err := gdm.NewSchema(fields...)
	if err != nil {
		return nil, fmt.Errorf("map: %w", err)
	}

	pairs := pairings(ref, exp, args.JoinBy)
	out := gdm.NewDataset(ref.Name, schema)
	outSamples := make([]*gdm.Sample, len(pairs))

	// pairState holds the per-pair accumulator matrix. Different
	// chromosomes of one pair touch disjoint reference-region rows, so
	// chromosome tasks of the same pair can run concurrently without locks.
	type pairState struct {
		r, e *gdm.Sample
		// accs[ri][ai] accumulates aggregate ai for reference region ri.
		accs [][]*expr.Accumulator
	}
	states := make([]*pairState, len(pairs))
	type task struct {
		pair int
		cs   chromSpan
	}
	var tasks []task
	for pi, p := range pairs {
		st := &pairState{r: p[0], e: p[1], accs: make([][]*expr.Accumulator, len(p[0].Regions))}
		for ri := range st.accs {
			row := make([]*expr.Accumulator, len(aggs))
			for ai := range aggs {
				row[ai] = expr.NewAccumulator(aggs[ai].Func)
			}
			st.accs[ri] = row
		}
		states[pi] = st
		for _, cs := range chromSpans(p[0]) {
			tasks = append(tasks, task{pair: pi, cs: cs})
		}
	}

	// Phase 1: accumulate, parallel over (pair, chromosome) tasks — both
	// the sample axis and the genomic axis, the two parallelism dimensions
	// of the distributed GMQL implementations.
	cfg.forEach(len(tasks), func(ti int) {
		tk := tasks[ti]
		st := states[tk.pair]
		r, e := st.r, st.e
		var tick int
		feed := func(refIdx, expIdx int32) {
			cfg.tick(&tick)
			rr := &r.Regions[refIdx]
			er := &e.Regions[expIdx]
			if !rr.Strand.Compatible(er.Strand) {
				return
			}
			for ai := range aggs {
				if aggIdx[ai] < 0 {
					st.accs[refIdx][ai].Add(gdm.Null())
				} else {
					st.accs[refIdx][ai].Add(er.Values[aggIdx[ai]])
				}
			}
		}
		cs := tk.cs
		elo, ehi := e.ChromRange(cs.chrom)
		if elo == ehi {
			return
		}
		if cfg.BinWidth > 0 {
			tree := intervals.BuildTree(chromEntries(e, elo, ehi))
			for _, bin := range binSpans(r, cs, cfg.BinWidth) {
				for ri := bin.lo; ri < bin.hi; ri++ {
					reg := &r.Regions[ri]
					refIdx := int32(ri)
					tree.Overlapping(reg.Start, reg.Stop, func(en intervals.Entry) bool {
						feed(refIdx, en.Payload)
						return true
					})
				}
			}
		} else {
			intervals.SweepOverlaps(
				chromEntries(r, cs.lo, cs.hi), chromEntries(e, elo, ehi),
				func(l, x intervals.Entry) bool {
					feed(l.Payload, x.Payload)
					return true
				})
		}
	})

	// Phase 2: finalize output samples, parallel over pairs.
	cfg.forEach(len(pairs), func(pi int) {
		st := states[pi]
		ns := &gdm.Sample{
			ID:      gdm.DeriveID("map", st.r.ID, st.e.ID),
			Meta:    mergeSampleMeta(st.r, st.e),
			Regions: make([]gdm.Region, len(st.r.Regions)),
		}
		for ri := range st.r.Regions {
			src := st.r.Regions[ri]
			vals := make([]gdm.Value, 0, schema.Len())
			vals = append(vals, src.Values...)
			for ai := range aggs {
				vals = append(vals, st.accs[ri][ai].Result())
			}
			src.Values = vals
			ns.Regions[ri] = src
		}
		outSamples[pi] = ns
	})
	out.Samples = outSamples
	return out, nil
}
