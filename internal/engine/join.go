package engine

import (
	"fmt"
	"math"
	"sort"

	"genogo/internal/gdm"
	"genogo/internal/intervals"
)

// DistOp is a genometric distance comparison operator.
type DistOp uint8

// Distance condition operators: DLE (<=), DL (<), DGE (>=), DG (>).
const (
	DistLE DistOp = iota
	DistLT
	DistGE
	DistGT
)

// String renders the GMQL keyword.
func (op DistOp) String() string {
	switch op {
	case DistLE:
		return "DLE"
	case DistLT:
		return "DL"
	case DistGE:
		return "DGE"
	case DistGT:
		return "DG"
	default:
		return fmt.Sprintf("DIST(%d)", uint8(op))
	}
}

// DistCond is one atomic distance condition, e.g. DLE(1000).
type DistCond struct {
	Op   DistOp
	Dist int64
}

func (c DistCond) holds(d int64) bool {
	switch c.Op {
	case DistLE:
		return d <= c.Dist
	case DistLT:
		return d < c.Dist
	case DistGE:
		return d >= c.Dist
	case DistGT:
		return d > c.Dist
	default:
		return false
	}
}

// StreamDir restricts the experiment region's position relative to the
// anchor region's strand (GMQL UPSTREAM/DOWNSTREAM clauses).
type StreamDir uint8

// Stream directions.
const (
	StreamNone StreamDir = iota
	StreamUp
	StreamDown
)

// GenometricPred is the conjunction of genometric clauses of a JOIN:
// distance conditions, an optional minimum-distance clause MD(k) selecting
// the k nearest experiment regions per anchor, and an optional
// upstream/downstream restriction.
type GenometricPred struct {
	Conds    []DistCond
	MinDistK int // MD(k); 0 disables
	Stream   StreamDir
}

// upperBound extracts the tightest "distance <= b" bound implied by the
// conditions; ok is false when no upper bound exists.
func (p GenometricPred) upperBound() (int64, bool) {
	bound := int64(math.MaxInt64)
	ok := false
	for _, c := range p.Conds {
		switch c.Op {
		case DistLE:
			if c.Dist < bound {
				bound = c.Dist
			}
			ok = true
		case DistLT:
			if c.Dist-1 < bound {
				bound = c.Dist - 1
			}
			ok = true
		}
	}
	return bound, ok
}

func (p GenometricPred) holds(d int64) bool {
	for _, c := range p.Conds {
		if !c.holds(d) {
			return false
		}
	}
	return true
}

// JoinOutput selects the coordinates of the regions a genometric JOIN emits.
type JoinOutput uint8

// Join output modes.
const (
	// OutInt emits the intersection of the pair (overlapping pairs only).
	OutInt JoinOutput = iota
	// OutLeft emits the anchor region's coordinates.
	OutLeft
	// OutRight emits the experiment region's coordinates.
	OutRight
	// OutCat emits the contig: from the leftmost start to the rightmost stop.
	OutCat
)

// String renders the GMQL keyword.
func (o JoinOutput) String() string {
	switch o {
	case OutInt:
		return "INT"
	case OutLeft:
		return "LEFT"
	case OutRight:
		return "RIGHT"
	case OutCat:
		return "CAT"
	default:
		return fmt.Sprintf("OUT(%d)", uint8(o))
	}
}

// JoinArgs parametrizes a genometric JOIN.
type JoinArgs struct {
	Pred   GenometricPred
	Output JoinOutput
	JoinBy []string
}

// Join implements GMQL GENOMETRIC JOIN: for every (anchor, experiment)
// sample pair it emits one output sample containing a region for each
// region pair that satisfies the genometric predicate. The output schema is
// the GDM merge of the operand schemas (anchor attributes first).
func Join(cfg Config, left, right *gdm.Dataset, args JoinArgs) (*gdm.Dataset, error) {
	merged, err := mergeSchemas(left.Schema, right.Schema, "right")
	if err != nil {
		return nil, err
	}
	pairs := pairings(left, right, args.JoinBy)
	out := gdm.NewDataset(left.Name, merged.Schema)
	outSamples := make([]*gdm.Sample, len(pairs))

	// Tasks span both parallelism axes: (sample pair, anchor chromosome).
	// Each task owns a private output slice; pair outputs are concatenated
	// and sorted afterwards, so no locks are needed.
	type task struct {
		pair int
		cs   chromSpan
		out  []gdm.Region
	}
	tasks := make([]*task, 0, len(pairs))
	taskIdx := make([][]int, len(pairs))
	for pi, p := range pairs {
		for _, cs := range chromSpans(p[0]) {
			taskIdx[pi] = append(taskIdx[pi], len(tasks))
			tasks = append(tasks, &task{pair: pi, cs: cs})
		}
	}
	cfg.forEach(len(tasks), func(ti int) {
		tk := tasks[ti]
		l, r := pairs[tk.pair][0], pairs[tk.pair][1]
		cs := tk.cs
		rlo, rhi := r.ChromRange(cs.chrom)
		if rlo == rhi {
			return
		}
		rightEntries := chromEntries(r, rlo, rhi)
		var maxRightLen int64
		for _, e := range rightEntries {
			if ln := e.Stop - e.Start; ln > maxRightLen {
				maxRightLen = ln
			}
		}
		var tick int
		for li := cs.lo; li < cs.hi; li++ {
			cfg.tick(&tick)
			anchor := &l.Regions[li]
			for _, cand := range joinCandidates(args.Pred, anchor, rightEntries, maxRightLen) {
				er := &r.Regions[cand.entry.Payload]
				if args.Stream(anchor, er) {
					continue
				}
				reg, ok := joinOutputRegion(args.Output, anchor, er)
				if !ok {
					continue
				}
				vals := make([]gdm.Value, 0, merged.Schema.Len())
				vals = append(vals, anchor.Values...)
				vals = append(vals, er.Values...)
				reg.Values = vals
				tk.out = append(tk.out, reg)
			}
		}
	})
	cfg.forEach(len(pairs), func(pi int) {
		l, r := pairs[pi][0], pairs[pi][1]
		ns := &gdm.Sample{
			ID:   gdm.DeriveID("join", l.ID, r.ID),
			Meta: mergeSampleMeta(l, r),
		}
		for _, ti := range taskIdx[pi] {
			ns.Regions = append(ns.Regions, tasks[ti].out...)
		}
		ns.SortRegions()
		outSamples[pi] = ns
	})
	out.Samples = outSamples
	return out, nil
}

// Stream reports whether the experiment region must be SKIPPED under the
// stream clause (it is on the wrong side of the anchor).
func (a JoinArgs) Stream(anchor, exp *gdm.Region) bool {
	switch a.Pred.Stream {
	case StreamUp:
		return !anchor.Upstream(*exp)
	case StreamDown:
		return !anchor.Downstream(*exp)
	default:
		return false
	}
}

type joinCand struct {
	entry intervals.Entry
	dist  int64
}

// joinCandidates returns the experiment entries satisfying the distance
// conditions for one anchor, applying MD(k) when present. MD(k) is computed
// over all same-chromosome experiment regions, then intersected with the
// distance conditions, per GMQL semantics.
func joinCandidates(pred GenometricPred, anchor *gdm.Region, rightEntries []intervals.Entry, maxRightLen int64) []joinCand {
	var cands []joinCand
	if pred.MinDistK > 0 {
		for _, e := range intervals.Nearest(rightEntries, anchor.Start, anchor.Stop, pred.MinDistK) {
			d := intervals.Distance(anchor.Start, anchor.Stop, e.Start, e.Stop)
			if pred.holds(d) {
				cands = append(cands, joinCand{e, d})
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].entry.Payload < cands[j].entry.Payload })
		return cands
	}
	if bound, ok := pred.upperBound(); ok {
		// Entries are start-sorted. Anything starting beyond
		// anchor.Stop+bound is too far to the right; anything whose stop is
		// before anchor.Start-bound is too far to the left, and with starts
		// at least Start-maxRightLen away that gives a left cut too.
		hi := sort.Search(len(rightEntries), func(i int) bool {
			return rightEntries[i].Start > anchor.Stop+bound
		})
		lo := sort.Search(hi, func(i int) bool {
			return rightEntries[i].Start >= anchor.Start-bound-maxRightLen
		})
		for _, e := range rightEntries[lo:hi] {
			d := intervals.Distance(anchor.Start, anchor.Stop, e.Start, e.Stop)
			if d <= bound && pred.holds(d) {
				cands = append(cands, joinCand{e, d})
			}
		}
		return cands
	}
	// No upper bound and no MD: scan the chromosome (documented O(n·m)
	// fallback; the compiler warns about unbounded genometric joins).
	for _, e := range rightEntries {
		d := intervals.Distance(anchor.Start, anchor.Stop, e.Start, e.Stop)
		if pred.holds(d) {
			cands = append(cands, joinCand{e, d})
		}
	}
	return cands
}

// joinOutputRegion builds the emitted region's coordinates for one pair.
func joinOutputRegion(mode JoinOutput, anchor, exp *gdm.Region) (gdm.Region, bool) {
	strand := anchor.Strand
	if strand == gdm.StrandNone {
		strand = exp.Strand
	} else if exp.Strand != gdm.StrandNone && exp.Strand != strand {
		strand = gdm.StrandNone
	}
	switch mode {
	case OutInt:
		if !anchor.Overlaps(*exp) {
			return gdm.Region{}, false
		}
		inter, _ := anchor.Intersect(*exp)
		inter.Strand = strand
		return inter, true
	case OutLeft:
		return gdm.Region{Chrom: anchor.Chrom, Start: anchor.Start, Stop: anchor.Stop, Strand: anchor.Strand}, true
	case OutRight:
		return gdm.Region{Chrom: exp.Chrom, Start: exp.Start, Stop: exp.Stop, Strand: exp.Strand}, true
	case OutCat:
		start, stop := anchor.Start, anchor.Stop
		if exp.Start < start {
			start = exp.Start
		}
		if exp.Stop > stop {
			stop = exp.Stop
		}
		return gdm.Region{Chrom: anchor.Chrom, Start: start, Stop: stop, Strand: strand}, true
	default:
		return gdm.Region{}, false
	}
}
