package engine

import (
	"math"
	"time"

	"genogo/internal/catalog"
	"genogo/internal/expr"
	"genogo/internal/gdm"
	"genogo/internal/obs"
)

// Pruning-opportunity accounting (ROADMAP item 1's measured target): traced
// SELECT, JOIN and MAP runs consult the same per-(sample, chromosome) zone
// windows the catalog persists and count which partitions provably
// contribute zero output — the data a pruning storage engine would never
// have loaded. The counts ride on the operator's span (EXPLAIN ANALYZE's
// `prunable=`), the cost registry, and the genogo_prune_* counters; the
// kernels themselves still process everything, so the numbers measure the
// opportunity, not a behavior change.

// zonePart is one (sample, chromosome) partition with its zone extents: the
// in-memory equivalent of one catalog ChromStats cell.
type zonePart struct {
	chrom    string
	regions  int
	minStart int64
	maxStop  int64
}

// zoneParts enumerates a dataset's partitions. Samples are canonically
// sorted by (chrom, start, stop), so minStart is the run's first region;
// maxStop needs the scan (a long region can start early and end last).
func zoneParts(ds *gdm.Dataset) []zonePart {
	var out []zonePart
	for _, s := range ds.Samples {
		for _, cs := range chromSpans(s) {
			p := zonePart{
				chrom: cs.chrom, regions: cs.hi - cs.lo,
				minStart: s.Regions[cs.lo].Start, maxStop: s.Regions[cs.lo].Stop,
			}
			for i := cs.lo + 1; i < cs.hi; i++ {
				if s.Regions[i].Stop > p.maxStop {
					p.maxStop = s.Regions[i].Stop
				}
			}
			out = append(out, p)
		}
	}
	return out
}

// chromExtent is the union of every partition window on one chromosome.
type chromExtent struct {
	minStart int64
	maxStop  int64
}

func chromExtents(parts []zonePart) map[string]chromExtent {
	out := make(map[string]chromExtent)
	for _, p := range parts {
		e, ok := out[p.chrom]
		if !ok {
			out[p.chrom] = chromExtent{p.minStart, p.maxStop}
			continue
		}
		if p.minStart < e.minStart {
			e.minStart = p.minStart
		}
		if p.maxStop > e.maxStop {
			e.maxStop = p.maxStop
		}
		out[p.chrom] = e
	}
	return out
}

// observePrunableSelect records how many of a traced SELECT's input
// partitions the region predicate's zone window prunes. Predicates with no
// zone-checkable structure record nothing.
func observePrunableSelect(sp *obs.Span, in *gdm.Dataset, region expr.Node) {
	if sp == nil || in == nil || region == nil {
		return
	}
	w, ok := catalog.PredicateWindow(region)
	if !ok {
		return
	}
	consulted, pparts := 0, 0
	var pregions int64
	for _, p := range zoneParts(in) {
		consulted++
		if w.Prunes(p.chrom, p.minStart, p.maxStop) {
			pparts++
			pregions += int64(p.regions)
		}
	}
	if consulted > 0 {
		sp.SetPrunable(consulted, pparts, pregions)
	}
}

// observePrunableJoin records the zone-prunable partitions of a traced JOIN:
// a partition on a chromosome the other side lacks can never pair, and with
// a distance upper bound (DLE/DL clauses) a partition farther than the bound
// from the other side's whole extent cannot either. MD(k) and stream clauses
// only narrow further, so ignoring them stays sound.
func observePrunableJoin(sp *obs.Span, left, right *gdm.Dataset, pred GenometricPred) {
	if sp == nil || left == nil || right == nil {
		return
	}
	bound, hasBound := pred.upperBound()
	lparts, rparts := zoneParts(left), zoneParts(right)
	lext, rext := chromExtents(lparts), chromExtents(rparts)
	consulted, pparts := 0, 0
	var pregions int64
	count := func(parts []zonePart, other map[string]chromExtent) {
		for _, p := range parts {
			consulted++
			e, ok := other[p.chrom]
			prunable := !ok
			if !prunable && hasBound {
				prunable = p.minStart > satAdd(e.maxStop, bound) ||
					p.maxStop < satSub(e.minStart, bound)
			}
			if prunable {
				pparts++
				pregions += int64(p.regions)
			}
		}
	}
	count(lparts, rext)
	count(rparts, lext)
	if consulted > 0 {
		sp.SetPrunable(consulted, pparts, pregions)
	}
}

// observePrunableMap records the zone-prunable experiment partitions of a
// traced MAP. Reference regions are always emitted (a zero count is still a
// row), so only experiment partitions that overlap no reference extent are
// prunable.
func observePrunableMap(sp *obs.Span, ref, exp *gdm.Dataset) {
	if sp == nil || ref == nil || exp == nil {
		return
	}
	rext := chromExtents(zoneParts(ref))
	eparts := zoneParts(exp)
	consulted, pparts := 0, 0
	var pregions int64
	for _, p := range eparts {
		consulted++
		e, ok := rext[p.chrom]
		if !ok || p.minStart >= e.maxStop || p.maxStop <= e.minStart {
			pparts++
			pregions += int64(p.regions)
		}
	}
	if consulted > 0 {
		sp.SetPrunable(consulted, pparts, pregions)
	}
}

// Pruned execution (the realized counterpart of the accounting above): when
// the session's catalog is a PrunedCatalog, SELECT/JOIN/MAP over Scan inputs
// load those scans through the partition-level read path, skipping every
// partition whose zone window proves it irrelevant — for columnar datasets
// the skipped bytes are never read. Soundness rests on two facts: a skipped
// partition provably contributes zero regions to the pruning operator's
// output (the same proofs the observePrunable* accounting uses), and pruned
// reads keep every sample (possibly region-empty), so sample-level semantics
// — meta filters, sample pairing, zero-count MAP rows — are untouched.
//
// Pruned scan results are query-specific subsets, so they are deliberately
// kept out of the session's plan-node result cache: another consumer of the
// same Scan node still gets the full dataset.

// prunedScan reads one Scan through the catalog's partition-level path,
// recording the realized skip accounting on csp (the scan's pre-attached
// span; nil when untraced).
func (e *evaluator) prunedScan(pc PrunedCatalog, scan *Scan, csp *obs.Span, keep func(chrom string, minStart, maxStop int64) bool) (*gdm.Dataset, error) {
	start := time.Now()
	ds, st, err := pc.DatasetPruned(scan.Dataset, keep)
	if err != nil {
		return nil, err
	}
	if csp != nil {
		csp.SetSkipped(st.Parts, st.SkippedParts, st.SkippedRegions)
		finishSpan(csp, e.cfg, ds, start)
	}
	return ds, nil
}

// windowKeep turns a predicate's zone window into a partition keep function.
func windowKeep(w catalog.Window) func(chrom string, minStart, maxStop int64) bool {
	return func(chrom string, minStart, maxStop int64) bool {
		return !w.Prunes(chrom, minStart, maxStop)
	}
}

// joinKeep keeps a partition that could pair with the other side: its
// chromosome must appear there, and under a distance upper bound its window
// must lie within the bound of the other side's whole-chromosome extent.
func joinKeep(other map[string]chromExtent, bound int64, hasBound bool) func(chrom string, minStart, maxStop int64) bool {
	return func(chrom string, minStart, maxStop int64) bool {
		e, ok := other[chrom]
		if !ok {
			return false
		}
		if hasBound && (minStart > satAdd(e.maxStop, bound) || maxStop < satSub(e.minStart, bound)) {
			return false
		}
		return true
	}
}

// mapKeep keeps an experiment partition that overlaps some reference extent
// (non-overlapping partitions can only contribute zero counts, which MAP
// emits anyway).
func mapKeep(ref map[string]chromExtent) func(chrom string, minStart, maxStop int64) bool {
	return func(chrom string, minStart, maxStop int64) bool {
		e, ok := ref[chrom]
		return ok && minStart < e.maxStop && maxStop > e.minStart
	}
}

// statsExtents folds a manifest stats block into per-chromosome extents —
// the zone view of a dataset that has not been loaded.
func statsExtents(st *catalog.DatasetStats) map[string]chromExtent {
	out := make(map[string]chromExtent)
	for i := range st.Samples {
		for _, cs := range st.Samples[i].Chroms {
			e, ok := out[cs.Chrom]
			if !ok {
				out[cs.Chrom] = chromExtent{cs.MinStart, cs.MaxStop}
				continue
			}
			if cs.MinStart < e.minStart {
				e.minStart = cs.MinStart
			}
			if cs.MaxStop > e.maxStop {
				e.maxStop = cs.MaxStop
			}
			out[cs.Chrom] = e
		}
	}
	return out
}

// trySelectPruned handles SELECT directly over a Scan on a pruning catalog:
// the scan loads only the partitions the region predicate's zone window
// cannot prune. Every skipped partition holds only predicate-rejected
// regions, so the SELECT output is identical to the unpruned path's — which
// also makes caching that output under the SelectOp node (eval's normal
// wrapper) safe.
func (e *evaluator) trySelectPruned(op *SelectOp, sp *obs.Span) (*gdm.Dataset, bool, error) {
	if e.cfg.DisablePruning || op.Region == nil {
		return nil, false, nil
	}
	pc, ok := e.cat.(PrunedCatalog)
	if !ok {
		return nil, false, nil
	}
	scan, ok := op.Input.(*Scan)
	if !ok {
		return nil, false, nil
	}
	w, ok := catalog.PredicateWindow(op.Region)
	if !ok {
		return nil, false, nil
	}
	var csp *obs.Span
	if sp != nil {
		csp = newSpan(scan, e.cfg)
		sp.AddChild(csp)
	}
	in, err := e.prunedScan(pc, scan, csp, windowKeep(w))
	if err != nil {
		return nil, true, err
	}
	meta, err := e.resolveSelectMeta(op, sp)
	if err != nil {
		return nil, true, err
	}
	out, err := Select(e.cfg, in, meta, op.Region)
	return out, true, err
}

// fusedChainSource materializes a fused chain's source. When the innermost
// chain operator is a SELECT whose region predicate yields a zone window and
// the source is a Scan on a pruning catalog, the source loads pruned;
// pruned=true tells the caller the opportunity was realized (its scan span
// carries skipped= accounting) so the prunable= observation is skipped.
func (e *evaluator) fusedChainSource(cur Node, chain []Node, sp *obs.Span) (*gdm.Dataset, bool, error) {
	if !e.cfg.DisablePruning {
		if pc, ok := e.cat.(PrunedCatalog); ok {
			if scan, ok := cur.(*Scan); ok {
				if inner, ok := chain[len(chain)-1].(*SelectOp); ok && inner.Region != nil {
					if w, ok := catalog.PredicateWindow(inner.Region); ok {
						var csp *obs.Span
						if sp != nil {
							csp = newSpan(scan, e.cfg)
							sp.AddChild(csp)
						}
						src, err := e.prunedScan(pc, scan, csp, windowKeep(w))
						return src, true, err
					}
				}
			}
		}
	}
	src, err := e.evalChild(cur, sp)
	return src, false, err
}

// tryMapPruned handles MAP whose experiment input is a Scan on a pruning
// catalog: the reference materializes first (cached like any subplan), and
// the experiment scan skips every partition overlapping no reference extent.
// The two inputs evaluate sequentially here even under the stream backend —
// the experiment's keep function needs the materialized reference.
func (e *evaluator) tryMapPruned(op *MapOp, sp *obs.Span) (*gdm.Dataset, bool, error) {
	if e.cfg.DisablePruning {
		return nil, false, nil
	}
	pc, ok := e.cat.(PrunedCatalog)
	if !ok {
		return nil, false, nil
	}
	scan, ok := op.Exp.(*Scan)
	if !ok {
		return nil, false, nil
	}
	var lsp, rsp *obs.Span
	if sp != nil {
		// Both child spans attach upfront so the profile's child order is the
		// plan order, matching evalPair.
		lsp, rsp = newSpan(op.Ref, e.cfg), newSpan(op.Exp, e.cfg)
		sp.AddChild(lsp)
		sp.AddChild(rsp)
	}
	ref, err := e.eval(op.Ref, lsp)
	if err != nil {
		return nil, true, err
	}
	exp, err := e.prunedScan(pc, scan, rsp, mapKeep(chromExtents(zoneParts(ref))))
	if err != nil {
		return nil, true, err
	}
	out, err := Map(e.cfg, ref, exp, op.Args)
	return out, true, err
}

// tryJoinPruned handles JOIN with at least one Scan input on a pruning
// catalog. A lone Scan side prunes against the materialized other side's
// extents. When both sides are Scans, the left prunes against the right's
// manifest stats (no region data read at all), then the right prunes against
// the materialized — already pruned — left: a left partition removed by the
// stats could pair with no right region anyway, so the narrowed extents
// cannot over-prune the right.
func (e *evaluator) tryJoinPruned(op *JoinOp, sp *obs.Span) (*gdm.Dataset, bool, error) {
	if e.cfg.DisablePruning {
		return nil, false, nil
	}
	pc, ok := e.cat.(PrunedCatalog)
	if !ok {
		return nil, false, nil
	}
	lscan, lok := op.Left.(*Scan)
	rscan, rok := op.Right.(*Scan)
	if !lok && !rok {
		return nil, false, nil
	}
	bound, hasBound := op.Args.Pred.upperBound()
	var lsp, rsp *obs.Span
	if sp != nil {
		lsp, rsp = newSpan(op.Left, e.cfg), newSpan(op.Right, e.cfg)
		sp.AddChild(lsp)
		sp.AddChild(rsp)
	}
	var l, r *gdm.Dataset
	var err error
	switch {
	case lok && rok:
		if st, ok := pc.Stats(rscan.Dataset); ok {
			l, err = e.prunedScan(pc, lscan, lsp, joinKeep(statsExtents(st), bound, hasBound))
		} else {
			l, err = e.eval(op.Left, lsp)
		}
		if err != nil {
			return nil, true, err
		}
		r, err = e.prunedScan(pc, rscan, rsp, joinKeep(chromExtents(zoneParts(l)), bound, hasBound))
	case lok:
		r, err = e.eval(op.Right, rsp)
		if err != nil {
			return nil, true, err
		}
		l, err = e.prunedScan(pc, lscan, lsp, joinKeep(chromExtents(zoneParts(r)), bound, hasBound))
	default:
		l, err = e.eval(op.Left, lsp)
		if err != nil {
			return nil, true, err
		}
		r, err = e.prunedScan(pc, rscan, rsp, joinKeep(chromExtents(zoneParts(l)), bound, hasBound))
	}
	if err != nil {
		return nil, true, err
	}
	out, err := Join(e.cfg, l, r, op.Args)
	return out, true, err
}

func satAdd(a, b int64) int64 {
	if a > 0 && b > math.MaxInt64-a {
		return math.MaxInt64
	}
	return a + b
}

func satSub(a, b int64) int64 {
	if a < 0 && b > 0 && a < math.MinInt64+b {
		return math.MinInt64
	}
	return a - b
}
