package engine

import (
	"math"

	"genogo/internal/catalog"
	"genogo/internal/expr"
	"genogo/internal/gdm"
	"genogo/internal/obs"
)

// Pruning-opportunity accounting (ROADMAP item 1's measured target): traced
// SELECT, JOIN and MAP runs consult the same per-(sample, chromosome) zone
// windows the catalog persists and count which partitions provably
// contribute zero output — the data a pruning storage engine would never
// have loaded. The counts ride on the operator's span (EXPLAIN ANALYZE's
// `prunable=`), the cost registry, and the genogo_prune_* counters; the
// kernels themselves still process everything, so the numbers measure the
// opportunity, not a behavior change.

// zonePart is one (sample, chromosome) partition with its zone extents: the
// in-memory equivalent of one catalog ChromStats cell.
type zonePart struct {
	chrom    string
	regions  int
	minStart int64
	maxStop  int64
}

// zoneParts enumerates a dataset's partitions. Samples are canonically
// sorted by (chrom, start, stop), so minStart is the run's first region;
// maxStop needs the scan (a long region can start early and end last).
func zoneParts(ds *gdm.Dataset) []zonePart {
	var out []zonePart
	for _, s := range ds.Samples {
		for _, cs := range chromSpans(s) {
			p := zonePart{
				chrom: cs.chrom, regions: cs.hi - cs.lo,
				minStart: s.Regions[cs.lo].Start, maxStop: s.Regions[cs.lo].Stop,
			}
			for i := cs.lo + 1; i < cs.hi; i++ {
				if s.Regions[i].Stop > p.maxStop {
					p.maxStop = s.Regions[i].Stop
				}
			}
			out = append(out, p)
		}
	}
	return out
}

// chromExtent is the union of every partition window on one chromosome.
type chromExtent struct {
	minStart int64
	maxStop  int64
}

func chromExtents(parts []zonePart) map[string]chromExtent {
	out := make(map[string]chromExtent)
	for _, p := range parts {
		e, ok := out[p.chrom]
		if !ok {
			out[p.chrom] = chromExtent{p.minStart, p.maxStop}
			continue
		}
		if p.minStart < e.minStart {
			e.minStart = p.minStart
		}
		if p.maxStop > e.maxStop {
			e.maxStop = p.maxStop
		}
		out[p.chrom] = e
	}
	return out
}

// observePrunableSelect records how many of a traced SELECT's input
// partitions the region predicate's zone window prunes. Predicates with no
// zone-checkable structure record nothing.
func observePrunableSelect(sp *obs.Span, in *gdm.Dataset, region expr.Node) {
	if sp == nil || in == nil || region == nil {
		return
	}
	w, ok := catalog.PredicateWindow(region)
	if !ok {
		return
	}
	consulted, pparts := 0, 0
	var pregions int64
	for _, p := range zoneParts(in) {
		consulted++
		if w.Prunes(p.chrom, p.minStart, p.maxStop) {
			pparts++
			pregions += int64(p.regions)
		}
	}
	if consulted > 0 {
		sp.SetPrunable(consulted, pparts, pregions)
	}
}

// observePrunableJoin records the zone-prunable partitions of a traced JOIN:
// a partition on a chromosome the other side lacks can never pair, and with
// a distance upper bound (DLE/DL clauses) a partition farther than the bound
// from the other side's whole extent cannot either. MD(k) and stream clauses
// only narrow further, so ignoring them stays sound.
func observePrunableJoin(sp *obs.Span, left, right *gdm.Dataset, pred GenometricPred) {
	if sp == nil || left == nil || right == nil {
		return
	}
	bound, hasBound := pred.upperBound()
	lparts, rparts := zoneParts(left), zoneParts(right)
	lext, rext := chromExtents(lparts), chromExtents(rparts)
	consulted, pparts := 0, 0
	var pregions int64
	count := func(parts []zonePart, other map[string]chromExtent) {
		for _, p := range parts {
			consulted++
			e, ok := other[p.chrom]
			prunable := !ok
			if !prunable && hasBound {
				prunable = p.minStart > satAdd(e.maxStop, bound) ||
					p.maxStop < satSub(e.minStart, bound)
			}
			if prunable {
				pparts++
				pregions += int64(p.regions)
			}
		}
	}
	count(lparts, rext)
	count(rparts, lext)
	if consulted > 0 {
		sp.SetPrunable(consulted, pparts, pregions)
	}
}

// observePrunableMap records the zone-prunable experiment partitions of a
// traced MAP. Reference regions are always emitted (a zero count is still a
// row), so only experiment partitions that overlap no reference extent are
// prunable.
func observePrunableMap(sp *obs.Span, ref, exp *gdm.Dataset) {
	if sp == nil || ref == nil || exp == nil {
		return
	}
	rext := chromExtents(zoneParts(ref))
	eparts := zoneParts(exp)
	consulted, pparts := 0, 0
	var pregions int64
	for _, p := range eparts {
		consulted++
		e, ok := rext[p.chrom]
		if !ok || p.minStart >= e.maxStop || p.maxStop <= e.minStart {
			pparts++
			pregions += int64(p.regions)
		}
	}
	if consulted > 0 {
		sp.SetPrunable(consulted, pparts, pregions)
	}
}

func satAdd(a, b int64) int64 {
	if a > 0 && b > math.MaxInt64-a {
		return math.MaxInt64
	}
	return a + b
}

func satSub(a, b int64) int64 {
	if a < 0 && b > 0 && a < math.MinInt64+b {
		return math.MinInt64
	}
	return a - b
}
