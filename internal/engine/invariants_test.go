package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"genogo/internal/expr"
	"genogo/internal/gdm"
)

// TestOperatorInvariants checks, for every operator over a battery of random
// datasets, the DESIGN.md invariants: outputs validate (canonical region
// order, typed values, unique sample IDs) and inputs are never mutated.
func TestOperatorInvariants(t *testing.T) {
	cfg := Config{Mode: ModeStream, Workers: 3, MetaFirst: true}
	scoreGt := expr.Cmp{Op: expr.CmpGt, Left: expr.Attr{Name: "score"}, Right: expr.Const{Value: gdm.Float(5)}}
	ops := map[string]func(a, b *gdm.Dataset) (*gdm.Dataset, error){
		"select": func(a, _ *gdm.Dataset) (*gdm.Dataset, error) {
			return Select(cfg, a, expr.MetaExists{Attr: "cell"}, scoreGt)
		},
		"project": func(a, _ *gdm.Dataset) (*gdm.Dataset, error) {
			return Project(cfg, a, ProjectArgs{Regions: []ProjectItem{
				{Name: "score"},
				{Name: "mid", Expr: expr.Arith{Op: expr.OpAdd, Left: expr.Attr{Name: "left"}, Right: expr.Attr{Name: "right"}}},
			}})
		},
		"extend": func(a, _ *gdm.Dataset) (*gdm.Dataset, error) {
			return Extend(cfg, a, []expr.Aggregate{{Output: "n", Func: expr.AggCount}})
		},
		"merge": func(a, _ *gdm.Dataset) (*gdm.Dataset, error) {
			return Merge(cfg, a, []string{"cell"})
		},
		"group": func(a, _ *gdm.Dataset) (*gdm.Dataset, error) {
			return Group(cfg, a, GroupArgs{By: []string{"dataType"},
				MetaAggs: []expr.Aggregate{{Output: "n", Func: expr.AggCountSamp}}})
		},
		"order": func(a, _ *gdm.Dataset) (*gdm.Dataset, error) {
			return Order(cfg, a, OrderArgs{Keys: []OrderKey{{Attr: "cell"}}, Top: 3})
		},
		"union": func(a, b *gdm.Dataset) (*gdm.Dataset, error) {
			return Union(cfg, a, b)
		},
		"difference": func(a, b *gdm.Dataset) (*gdm.Dataset, error) {
			return Difference(cfg, a, b, DifferenceArgs{})
		},
		"map": func(a, b *gdm.Dataset) (*gdm.Dataset, error) {
			return Map(cfg, a, b, MapArgs{Aggs: []expr.Aggregate{
				{Output: "n", Func: expr.AggCount},
				{Output: "avg", Func: expr.AggAvg, Attr: "score"},
			}})
		},
		"join": func(a, b *gdm.Dataset) (*gdm.Dataset, error) {
			return Join(cfg, a, b, JoinArgs{
				Pred:   GenometricPred{Conds: []DistCond{{Op: DistLE, Dist: 200}}},
				Output: OutCat,
			})
		},
		"join-md": func(a, b *gdm.Dataset) (*gdm.Dataset, error) {
			return Join(cfg, a, b, JoinArgs{Pred: GenometricPred{MinDistK: 2}, Output: OutLeft})
		},
		"cover": func(a, _ *gdm.Dataset) (*gdm.Dataset, error) {
			return Cover(cfg, a, CoverArgs{
				Min: CoverBound{Kind: BoundN, N: 2}, Max: CoverBound{Kind: BoundAny}})
		},
	}
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		a := randomDataset(rng, fmt.Sprintf("A%d", trial), 3+trial, 40)
		b := randomDataset(rng, fmt.Sprintf("B%d", trial), 2+trial, 40)
		aClone, bClone := a.Clone(), b.Clone()
		for name, op := range ops {
			out, err := op(a, b)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if err := out.Validate(); err != nil {
				t.Errorf("trial %d %s: invalid output: %v", trial, name, err)
			}
			datasetsEquivalent(t, fmt.Sprintf("trial %d %s input A", trial, name), aClone, a)
			datasetsEquivalent(t, fmt.Sprintf("trial %d %s input B", trial, name), bClone, b)
		}
	}
}

// TestPlanOutputInvariants runs whole multi-operator plans — not single
// kernels — under Config.ValidateOutputs, which re-checks the canonical
// region order, schema-width value arity, typed values and unique sample IDs
// after EVERY plan node. This is the same switch the difftest smoke harness
// flips, so any operator that emits an unsorted or schema-violating
// intermediate fails here and there, not just on hand-picked plans.
func TestPlanOutputInvariants(t *testing.T) {
	scoreGt := expr.Cmp{Op: expr.CmpGt, Left: expr.Attr{Name: "score"}, Right: expr.Const{Value: gdm.Float(2)}}
	plans := func() map[string]Node {
		scanA := &Scan{Dataset: "A"}
		scanB := &Scan{Dataset: "B"}
		return map[string]Node{
			"select-project-extend": &ExtendOp{
				Aggs: []expr.Aggregate{{Output: "n", Func: expr.AggCount}},
				Input: &ProjectOp{
					Args: ProjectArgs{Regions: []ProjectItem{
						{Name: "score"},
						{Name: "len", Expr: expr.Arith{Op: expr.OpSub, Left: expr.Attr{Name: "right"}, Right: expr.Attr{Name: "left"}}},
					}},
					Input: &SelectOp{Input: scanA, Meta: expr.MetaExists{Attr: "cell"}, Region: scoreGt},
				},
			},
			"join-over-union": &JoinOp{
				Left:  &UnionOp{Left: scanA, Right: scanB},
				Right: scanB,
				Args: JoinArgs{Pred: GenometricPred{Conds: []DistCond{{Op: DistLE, Dist: 500}}},
					Output: OutCat},
			},
			"cover-of-map": &CoverOp{
				Input: &MapOp{Ref: scanA, Exp: scanB, Args: MapArgs{Aggs: countAgg()}},
				Args: CoverArgs{Min: CoverBound{Kind: BoundN, N: 1}, Max: CoverBound{Kind: BoundAny},
					Variant: CoverHistogram},
			},
			"order-group-difference": &OrderOp{
				Args: OrderArgs{Keys: []OrderKey{{Attr: "cell"}}, Top: 4},
				Input: &GroupOp{
					Args:  GroupArgs{By: []string{"dataType"}, MetaAggs: []expr.Aggregate{{Output: "n", Func: expr.AggCountSamp}}},
					Input: &DifferenceOp{Left: scanA, Right: scanB},
				},
			},
			"merge-of-select": &MergeOp{
				GroupBy: []string{"cell"},
				Input:   &SelectOp{Input: scanA, Region: scoreGt},
			},
		}
	}
	for trial := 0; trial < 3; trial++ {
		rng := rand.New(rand.NewSource(int64(900 + trial)))
		cat := MapCatalog{
			"A": randomDataset(rng, "A", 4, 50),
			"B": randomDataset(rng, "B", 3, 50),
		}
		for _, cfg := range allConfigs() {
			cfg.ValidateOutputs = true
			for name, plan := range plans() {
				if _, err := Run(cfg, plan, cat); err != nil {
					t.Errorf("trial %d mode=%s plan %s: %v", trial, cfg.Mode, name, err)
				}
			}
		}
	}
}

// TestValidateOutputsCatchesViolations proves the invariant check is live: a
// catalog dataset with out-of-order regions must fail the query as soon as
// any node consumes it with ValidateOutputs on.
func TestValidateOutputsCatchesViolations(t *testing.T) {
	bad := gdm.NewDataset("BAD", peakSchema())
	s := gdm.NewSample("s1")
	s.AddRegion(gdm.NewRegion("chr2", 10, 20, gdm.StrandNone, gdm.Float(1), gdm.Str("r")))
	s.AddRegion(gdm.NewRegion("chr1", 10, 20, gdm.StrandNone, gdm.Float(1), gdm.Str("r")))
	bad.Samples = append(bad.Samples, s) // bypass Add: regions deliberately unsorted
	cfg := Config{Mode: ModeSerial, MetaFirst: true, ValidateOutputs: true}
	_, err := Run(cfg, &Scan{Dataset: "BAD"}, MapCatalog{"BAD": bad})
	if err == nil {
		t.Fatal("unsorted scan output passed ValidateOutputs")
	}
}

// TestMapCardinalityLawProperty: |output sample regions| == |ref sample
// regions| for every pair, across random inputs and backends.
func TestMapCardinalityLawProperty(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		ref := randomDataset(rng, "REF", 1+trial%3, 30)
		exp := randomDataset(rng, "EXP", 2, 30)
		for _, cfg := range allConfigs() {
			out, err := Map(cfg, ref, exp, MapArgs{Aggs: countAgg()})
			if err != nil {
				t.Fatal(err)
			}
			if len(out.Samples) != len(ref.Samples)*len(exp.Samples) {
				t.Fatalf("trial %d: %d output samples, want %d",
					trial, len(out.Samples), len(ref.Samples)*len(exp.Samples))
			}
			// Each output sample corresponds to one ref sample; counts per
			// ref sample size must match.
			sizes := map[int]int{}
			for _, s := range ref.Samples {
				sizes[len(s.Regions)] += len(exp.Samples)
			}
			got := map[int]int{}
			for _, s := range out.Samples {
				got[len(s.Regions)]++
			}
			for n, want := range sizes {
				if got[n] < want {
					t.Fatalf("trial %d: %d samples with %d regions, want >= %d", trial, got[n], n, want)
				}
			}
		}
	}
}

// TestMapCountConservation: the total MAP count equals the number of
// (ref region, exp region) overlapping pairs computed by brute force.
func TestMapCountConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	ref := randomDataset(rng, "REF", 2, 50)
	exp := randomDataset(rng, "EXP", 2, 50)
	out, err := Map(Config{MetaFirst: true}, ref, exp, MapArgs{Aggs: countAgg()})
	if err != nil {
		t.Fatal(err)
	}
	ci, _ := out.Schema.Index("count")
	var got int64
	for _, s := range out.Samples {
		for _, r := range s.Regions {
			got += r.Values[ci].Int()
		}
	}
	var want int64
	for _, rs := range ref.Samples {
		for _, es := range exp.Samples {
			for _, rr := range rs.Regions {
				for _, er := range es.Regions {
					if rr.Overlaps(er) {
						want++
					}
				}
			}
		}
	}
	if got != want {
		t.Errorf("total count = %d, brute force says %d", got, want)
	}
}

// TestDifferenceSubset: every output region exists in the left input.
func TestDifferenceSubsetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	left := randomDataset(rng, "L", 3, 60)
	right := randomDataset(rng, "R", 3, 60)
	out, err := Difference(Config{MetaFirst: true}, left, right, DifferenceArgs{})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range out.Samples {
		src := left.Samples[i]
		if len(s.Regions) > len(src.Regions) {
			t.Fatalf("difference grew sample %s", s.ID)
		}
		// Each surviving region must appear in the source (two-pointer scan
		// over sorted regions).
		j := 0
		for _, r := range s.Regions {
			for j < len(src.Regions) && src.Regions[j].String() != r.String() {
				j++
			}
			if j == len(src.Regions) {
				t.Fatalf("region %s not in source sample %s", r, s.ID)
			}
		}
	}
}

// TestUnionCountProperty: sample count adds up, region count adds up.
func TestUnionCountProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(700))
	a := randomDataset(rng, "A", 4, 30)
	b := randomDataset(rng, "B", 3, 30)
	out, err := Union(Config{MetaFirst: true}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Samples) != 7 {
		t.Errorf("samples = %d", len(out.Samples))
	}
	if out.NumRegions() != a.NumRegions()+b.NumRegions() {
		t.Errorf("regions = %d, want %d", out.NumRegions(), a.NumRegions()+b.NumRegions())
	}
}
