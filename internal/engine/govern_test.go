package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"genogo/internal/expr"
	"genogo/internal/resilience"
)

// cancelLatencyBound is the acceptance bound: a query canceled mid-flight
// must stop all backend workers within this window.
const cancelLatencyBound = 100 * time.Millisecond

// governedConfigs covers every backend the governance layer must stop:
// serial, batch, stream with fusion, stream without fusion.
func governedConfigs() []Config {
	return []Config{
		{Mode: ModeSerial, MetaFirst: true},
		{Mode: ModeBatch, Workers: 3, MetaFirst: true},
		{Mode: ModeStream, Workers: 3, MetaFirst: true},
		{Mode: ModeStream, Workers: 3, MetaFirst: true, DisableFusion: true},
	}
}

func cfgLabel(cfg Config) string {
	return fmt.Sprintf("%s_fusion=%v", cfg.Mode, cfg.Mode == ModeStream && !cfg.DisableFusion)
}

// governedPlan exercises the fused-chain path (two stacked SELECTs), the
// binary evalPair path (UNION evaluates its right operand on a second
// goroutine in stream mode), and the scan path.
func governedPlan(dataset string) Node {
	chain := &SelectOp{
		Input:  &SelectOp{Input: &Scan{Dataset: dataset}, Meta: expr.MetaTrue{}, Region: expr.True{}},
		Meta:   expr.MetaTrue{},
		Region: expr.True{},
	}
	return &UnionOp{Left: chain, Right: &Scan{Dataset: dataset}}
}

func governedCatalog(t *testing.T) MapCatalog {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	return MapCatalog{"peaks": randomDataset(rng, "peaks", 24, 8)}
}

// TestCancelMidFlightStopsWithinBound is the acceptance test for the
// cancellation-latency bound: on every backend, the stuck-operator injector
// wedges the kernels, the query is canceled at a known-stuck moment, and the
// session must return ErrCanceled within cancelLatencyBound.
func TestCancelMidFlightStopsWithinBound(t *testing.T) {
	cat := governedCatalog(t)
	for _, cfg := range governedConfigs() {
		cfg := cfg
		t.Run(cfgLabel(cfg), func(t *testing.T) {
			staller := &resilience.Staller{}
			defer staller.Release()
			cfg.Stall = staller.Hook
			sess := NewSession(cfg, cat)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			stop := sess.Govern(ctx, Limits{})
			defer stop()
			errCh := make(chan error, 1)
			go func() {
				_, err := sess.Eval(governedPlan("peaks"))
				errCh <- err
			}()
			if !staller.WaitStalled(1, 5*time.Second) {
				t.Fatal("no operator entered the stall injector")
			}
			begin := time.Now()
			cancel()
			select {
			case err := <-errCh:
				latency := time.Since(begin)
				if !errors.Is(err, ErrCanceled) {
					t.Fatalf("want ErrCanceled, got %v", err)
				}
				if reason, ok := Killed(err); !ok || reason != "canceled" {
					t.Fatalf("Killed(%v) = %q, %v; want canceled, true", err, reason, ok)
				}
				if latency > cancelLatencyBound {
					t.Fatalf("cancellation latency %v exceeds bound %v", latency, cancelLatencyBound)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("query did not stop after cancellation")
			}
		})
	}
}

// TestCancelDeadline verifies that a session deadline kills a wedged query
// with the typed ErrDeadline.
func TestCancelDeadline(t *testing.T) {
	cat := governedCatalog(t)
	for _, cfg := range governedConfigs() {
		cfg := cfg
		t.Run(cfgLabel(cfg), func(t *testing.T) {
			staller := &resilience.Staller{}
			defer staller.Release()
			cfg.Stall = staller.Hook
			sess := NewSession(cfg, cat)
			stop := sess.Govern(context.Background(), Limits{Deadline: 50 * time.Millisecond})
			defer stop()
			errCh := make(chan error, 1)
			go func() {
				_, err := sess.Eval(governedPlan("peaks"))
				errCh <- err
			}()
			select {
			case err := <-errCh:
				if !errors.Is(err, ErrDeadline) {
					t.Fatalf("want ErrDeadline, got %v", err)
				}
				if reason, ok := Killed(err); !ok || reason != "deadline" {
					t.Fatalf("Killed(%v) = %q, %v; want deadline, true", err, reason, ok)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("deadline did not kill the wedged query")
			}
		})
	}
}

// TestGovernBudgetOutputRegions verifies the per-operator output-region
// budget trips with a typed BudgetError naming the offending operator.
func TestGovernBudgetOutputRegions(t *testing.T) {
	cat := governedCatalog(t)
	for _, cfg := range governedConfigs() {
		cfg := cfg
		t.Run(cfgLabel(cfg), func(t *testing.T) {
			sess := NewSession(cfg, cat)
			stop := sess.Govern(context.Background(), Limits{MaxOutputRegions: 10})
			defer stop()
			_, err := sess.Eval(governedPlan("peaks"))
			if !errors.Is(err, ErrBudgetExceeded) {
				t.Fatalf("want ErrBudgetExceeded, got %v", err)
			}
			var berr *BudgetError
			if !errors.As(err, &berr) {
				t.Fatalf("want *BudgetError, got %T: %v", err, err)
			}
			if berr.Op == "" || berr.Resource != "output regions" || berr.Limit != 10 {
				t.Fatalf("unexpected budget error: %+v", berr)
			}
			if reason, ok := Killed(err); !ok || reason != "budget" {
				t.Fatalf("Killed(%v) = %q, %v; want budget, true", err, reason, ok)
			}
		})
	}
}

// TestGovernBudgetResidentBytes verifies the session-wide resident-byte
// budget trips at an operator boundary.
func TestGovernBudgetResidentBytes(t *testing.T) {
	cat := governedCatalog(t)
	sess := NewSession(Config{Mode: ModeStream, Workers: 3, MetaFirst: true}, cat)
	stop := sess.Govern(context.Background(), Limits{MaxResidentBytes: 64})
	defer stop()
	_, err := sess.Eval(governedPlan("peaks"))
	var berr *BudgetError
	if !errors.As(err, &berr) {
		t.Fatalf("want *BudgetError, got %v", err)
	}
	if berr.Resource != "resident bytes" {
		t.Fatalf("want resident bytes violation, got %+v", berr)
	}
}

// TestGovernedMatchesUngoverned pins that governance with generous budgets
// does not change results.
func TestGovernedMatchesUngoverned(t *testing.T) {
	cat := governedCatalog(t)
	for _, cfg := range governedConfigs() {
		cfg := cfg
		t.Run(cfgLabel(cfg), func(t *testing.T) {
			want, err := NewSession(cfg, cat).Eval(governedPlan("peaks"))
			if err != nil {
				t.Fatal(err)
			}
			sess := NewSession(cfg, cat)
			stop := sess.Govern(context.Background(), Limits{
				MaxOutputRegions: 1 << 30,
				MaxResidentBytes: 1 << 40,
				Deadline:         time.Minute,
			})
			defer stop()
			got, err := sess.Eval(governedPlan("peaks"))
			if err != nil {
				t.Fatal(err)
			}
			datasetsEquivalent(t, cfgLabel(cfg), want, got)
		})
	}
}

// TestCancelRunContext covers the RunContext convenience entry point.
func TestCancelRunContext(t *testing.T) {
	cat := governedCatalog(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, Config{Mode: ModeSerial, MetaFirst: true}, governedPlan("peaks"), cat, Limits{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled from pre-canceled context, got %v", err)
	}
}

// TestKilledClassifier pins the reason classification CLIs and servers key
// exit codes and console states on.
func TestKilledClassifier(t *testing.T) {
	cases := []struct {
		err    error
		reason string
		ok     bool
	}{
		{nil, "", false},
		{errors.New("boom"), "", false},
		{ErrCanceled, "canceled", true},
		{ErrDeadline, "deadline", true},
		{context.Canceled, "canceled", true},
		{context.DeadlineExceeded, "deadline", true},
		{&BudgetError{Op: "JOIN", Resource: "output regions", Limit: 1, Used: 2}, "budget", true},
		{fmt.Errorf("wrapping: %w", ErrCanceled), "canceled", true},
		{fmt.Errorf("wrapping: %w", &BudgetError{}), "budget", true},
	}
	for _, c := range cases {
		reason, ok := Killed(c.err)
		if reason != c.reason || ok != c.ok {
			t.Errorf("Killed(%v) = %q, %v; want %q, %v", c.err, reason, ok, c.reason, c.ok)
		}
	}
}

// TestCancelSlowConsumer verifies the slow-consumer flavor of the injector:
// delayed items finish, the query completes, and the injector saw traffic.
func TestCancelSlowConsumer(t *testing.T) {
	cat := governedCatalog(t)
	staller := &resilience.Staller{Delay: time.Millisecond}
	cfg := Config{Mode: ModeBatch, Workers: 3, MetaFirst: true, Stall: staller.Hook}
	sess := NewSession(cfg, cat)
	stop := sess.Govern(context.Background(), Limits{})
	defer stop()
	if _, err := sess.Eval(governedPlan("peaks")); err != nil {
		t.Fatal(err)
	}
	if staller.Entered() == 0 {
		t.Fatal("slow-consumer injector saw no work items")
	}
}
