package engine

import (
	"strings"
	"sync/atomic"
	"testing"

	"genogo/internal/expr"
	"genogo/internal/gdm"
)

// TestForEachWorkerPanicRepanicsOnCaller: a panic inside a worker goroutine
// must not crash the process; forEach re-raises it on the calling goroutine
// with the worker's stack attached.
func TestForEachWorkerPanicRepanicsOnCaller(t *testing.T) {
	cfg := Config{Mode: ModeBatch, Workers: 4}
	var done atomic.Int64
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was swallowed")
		}
		wp, ok := r.(*workerPanic)
		if !ok {
			t.Fatalf("re-raised value is %T, want *workerPanic", r)
		}
		if wp.val != "boom" {
			t.Errorf("panic value = %v", wp.val)
		}
		if len(wp.stack) == 0 {
			t.Error("worker stack not captured")
		}
		if done.Load() == 0 {
			t.Error("no iterations ran before the panic surfaced")
		}
	}()
	cfg.forEach(64, func(i int) {
		if i == 13 {
			panic("boom")
		}
		done.Add(1)
	})
	t.Fatal("forEach returned normally despite a worker panic")
}

// panicCatalog explodes on any dataset except the ones it was given.
type panicCatalog struct{ ok MapCatalog }

func (c panicCatalog) Dataset(name string) (*gdm.Dataset, error) {
	if ds, err := c.ok.Dataset(name); err == nil {
		return ds, nil
	}
	panic("catalog exploded on " + name)
}

// TestEvalConvertsPanicToError: Session.Eval turns a panic anywhere in the
// evaluation into a returned error — the query fails, the process survives.
func TestEvalConvertsPanicToError(t *testing.T) {
	s := NewSession(Config{Mode: ModeBatch, Workers: 3}, panicCatalog{})
	ds, err := s.Eval(&Scan{Dataset: "x"})
	if err == nil {
		t.Fatal("panic did not surface as an error")
	}
	if ds != nil {
		t.Errorf("got a dataset alongside the error: %v", ds)
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Errorf("error does not identify the panic: %v", err)
	}
}

// TestStreamRightOperandPanicBecomesError: the stream backend evaluates a
// binary operator's right input on its own goroutine; a panic there must
// travel back through the result channel as an error, not kill the process.
func TestStreamRightOperandPanicBecomesError(t *testing.T) {
	left := mkDataset(t, "L", mkSample("s1", nil, regSpec{"chr1", 10, 20, gdm.StrandNone, 1, "a"}))
	s := NewSession(Config{Mode: ModeStream, Workers: 3},
		panicCatalog{ok: MapCatalog{"L": left}})
	ds, err := s.Eval(&UnionOp{Left: &Scan{Dataset: "L"}, Right: &Scan{Dataset: "missing"}})
	if err == nil {
		t.Fatal("right-operand panic did not surface as an error")
	}
	if ds != nil {
		t.Errorf("got a dataset alongside the error: %v", ds)
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Errorf("error does not identify the panic: %v", err)
	}
}

// TestCorruptSampleFailsQueryNotProcess: a region whose Values slice is
// shorter than the schema (one "bad sample") trips an index panic inside an
// operator kernel running on the worker pool. The query must come back as an
// error through the public Run entry point on every parallel backend.
func TestCorruptSampleFailsQueryNotProcess(t *testing.T) {
	ds := gdm.NewDataset("D", peakSchema())
	for i := 0; i < 6; i++ {
		ds.MustAdd(mkSample("ok"+string(rune('0'+i)), nil,
			regSpec{"chr1", int64(10 * i), int64(10*i + 5), gdm.StrandNone, float64(i), "r"}))
	}
	bad := gdm.NewSample("bad")
	bad.Regions = append(bad.Regions, gdm.Region{Chrom: "chr1", Start: 1, Stop: 2}) // no Values
	// Dataset.Add validates value arity, so corrupt data can only arrive
	// through code that bypasses it — which is exactly what this simulates.
	ds.Samples = append(ds.Samples, bad)

	plan := &ExtendOp{
		Input: &Scan{Dataset: "D"},
		Aggs:  []expr.Aggregate{{Output: "maxScore", Attr: "score", Func: expr.AggMax}},
	}
	for _, cfg := range allConfigs() {
		out, err := Run(cfg, plan, MapCatalog{"D": ds})
		if err == nil {
			t.Fatalf("%s: corrupt sample produced no error (out=%v)", cfg.Mode, out)
		}
		if !strings.Contains(err.Error(), "panic") {
			t.Errorf("%s: error does not identify the panic: %v", cfg.Mode, err)
		}
	}
}

// TestJoinSchemaMergeFailureIsError: the schema-merge invariant check must
// return an error rather than panic (its former behaviour).
func TestJoinSchemaMergeFailureIsError(t *testing.T) {
	if _, err := mergeSchemas(peakSchema(), peakSchema(), "right"); err != nil {
		// Name collisions are resolved by tagging, so a healthy merge passes.
		t.Fatalf("healthy merge failed: %v", err)
	}
}
