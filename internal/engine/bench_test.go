package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"genogo/internal/expr"
	"genogo/internal/gdm"
)

// benchData builds a pair of datasets sized for operator micro-benches.
func benchData(samples, regions int) (*gdm.Dataset, *gdm.Dataset) {
	rng := rand.New(rand.NewSource(1))
	return randomDataset(rng, "A", samples, regions), randomDataset(rng, "B", samples, regions)
}

func BenchmarkSelect(b *testing.B) {
	a, _ := benchData(8, 2000)
	pred := expr.Cmp{Op: expr.CmpGt, Left: expr.Attr{Name: "score"}, Right: expr.Const{Value: gdm.Float(5)}}
	for _, cfg := range []Config{
		{Mode: ModeSerial, MetaFirst: true},
		{Mode: ModeStream, Workers: 4, MetaFirst: true},
	} {
		b.Run(cfg.Mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Select(cfg, a, nil, pred); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMapKernel(b *testing.B) {
	ref, exp := benchData(4, 3000)
	for _, c := range []struct {
		name string
		cfg  Config
	}{
		{"sweep", Config{Mode: ModeSerial, MetaFirst: true}},
		{"tree-binned", Config{Mode: ModeSerial, MetaFirst: true, BinWidth: 50000}},
		{"sweep-parallel", Config{Mode: ModeStream, Workers: 4, MetaFirst: true}},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Map(c.cfg, ref, exp, MapArgs{Aggs: countAgg()}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkJoinKernel(b *testing.B) {
	l, r := benchData(3, 2000)
	preds := map[string]GenometricPred{
		"DLE":    {Conds: []DistCond{{Op: DistLE, Dist: 1000}}},
		"MD":     {MinDistK: 2},
		"DLE+MD": {Conds: []DistCond{{Op: DistLE, Dist: 5000}}, MinDistK: 3},
	}
	for name, pred := range preds {
		b.Run(name, func(b *testing.B) {
			cfg := Config{Mode: ModeStream, Workers: 4, MetaFirst: true}
			for i := 0; i < b.N; i++ {
				if _, err := Join(cfg, l, r, JoinArgs{Pred: pred, Output: OutLeft}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCoverKernel(b *testing.B) {
	a, _ := benchData(10, 2000)
	for _, variant := range []CoverVariant{CoverStandard, CoverHistogram, CoverSummit, CoverFlat} {
		b.Run(variant.String(), func(b *testing.B) {
			cfg := Config{Mode: ModeStream, Workers: 4, MetaFirst: true}
			for i := 0; i < b.N; i++ {
				_, err := Cover(cfg, a, CoverArgs{
					Min: CoverBound{Kind: BoundN, N: 2}, Max: CoverBound{Kind: BoundAny},
					Variant: variant,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkForEachOverhead(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := Config{Mode: ModeStream, Workers: w}
			var sink int64
			for i := 0; i < b.N; i++ {
				cfg.forEach(64, func(j int) { sink += int64(j) })
			}
			_ = sink
		})
	}
}
