package engine

import (
	"math/rand"
	"testing"

	"genogo/internal/gdm"
	"genogo/internal/intervals"
)

func joinFixture(t *testing.T) (*gdm.Dataset, *gdm.Dataset) {
	left := mkDataset(t, "GENES", mkSample("g", nil,
		regSpec{"chr1", 1000, 2000, gdm.StrandPlus, 0, "gene1"},
		regSpec{"chr1", 9000, 9500, gdm.StrandMinus, 0, "gene2"},
	))
	right := mkDataset(t, "ENH", mkSample("e", nil,
		regSpec{"chr1", 100, 200, gdm.StrandNone, 1, "e1"},     // 800 upstream of gene1
		regSpec{"chr1", 1500, 1600, gdm.StrandNone, 2, "e2"},   // overlaps gene1
		regSpec{"chr1", 2500, 2600, gdm.StrandNone, 3, "e3"},   // 500 downstream of gene1
		regSpec{"chr1", 9600, 9700, gdm.StrandNone, 4, "e4"},   // 100 from gene2 (upstream wrt -)
		regSpec{"chr1", 50000, 50100, gdm.StrandNone, 5, "e5"}, // far away
	))
	return left, right
}

func joinedNames(t *testing.T, out *gdm.Dataset) map[string][]string {
	t.Helper()
	li, ok := out.Schema.Index("name")
	if !ok {
		t.Fatalf("schema %s has no left name", out.Schema)
	}
	ri, ok := out.Schema.Index("right.name")
	if !ok {
		t.Fatalf("schema %s has no right name", out.Schema)
	}
	got := map[string][]string{}
	for _, s := range out.Samples {
		for _, r := range s.Regions {
			l := r.Values[li].Str()
			got[l] = append(got[l], r.Values[ri].Str())
		}
	}
	return got
}

func TestJoinDLE(t *testing.T) {
	left, right := joinFixture(t)
	for _, cfg := range allConfigs() {
		out, err := Join(cfg, left, right, JoinArgs{
			Pred:   GenometricPred{Conds: []DistCond{{Op: DistLE, Dist: 600}}},
			Output: OutLeft,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := joinedNames(t, out)
		want := map[string][]string{
			"gene1": {"e2", "e3"}, // e1 at 800 excluded, e2 overlap, e3 at 500
			"gene2": {"e4"},
		}
		for g, ws := range want {
			if len(got[g]) != len(ws) {
				t.Fatalf("%s: %s partners = %v, want %v", cfg.Mode, g, got[g], ws)
			}
			seen := map[string]bool{}
			for _, n := range got[g] {
				seen[n] = true
			}
			for _, w := range ws {
				if !seen[w] {
					t.Errorf("%s: %s missing partner %s", cfg.Mode, g, w)
				}
			}
		}
	}
}

func TestJoinDGEAndDLE(t *testing.T) {
	left, right := joinFixture(t)
	out, err := Join(Config{MetaFirst: true}, left, right, JoinArgs{
		Pred: GenometricPred{Conds: []DistCond{
			{Op: DistGE, Dist: 1}, {Op: DistLE, Dist: 600},
		}},
		Output: OutLeft,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := joinedNames(t, out)
	// Overlapping e2 (negative distance) now excluded.
	if len(got["gene1"]) != 1 || got["gene1"][0] != "e3" {
		t.Errorf("gene1 partners = %v", got["gene1"])
	}
}

func TestJoinMD(t *testing.T) {
	left, right := joinFixture(t)
	out, err := Join(Config{MetaFirst: true}, left, right, JoinArgs{
		Pred:   GenometricPred{MinDistK: 1},
		Output: OutLeft,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := joinedNames(t, out)
	if len(got["gene1"]) != 1 || got["gene1"][0] != "e2" {
		t.Errorf("gene1 nearest = %v", got["gene1"])
	}
	if len(got["gene2"]) != 1 || got["gene2"][0] != "e4" {
		t.Errorf("gene2 nearest = %v", got["gene2"])
	}
}

func TestJoinMDWithDistanceFilter(t *testing.T) {
	left, right := joinFixture(t)
	// Nearest to gene1 is the overlapping e2; requiring DGE(1) filters it
	// out, and MD(1) does NOT fall back to the second nearest.
	out, err := Join(Config{MetaFirst: true}, left, right, JoinArgs{
		Pred:   GenometricPred{MinDistK: 1, Conds: []DistCond{{Op: DistGE, Dist: 1}}},
		Output: OutLeft,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := joinedNames(t, out)
	if len(got["gene1"]) != 0 {
		t.Errorf("gene1 = %v, want none", got["gene1"])
	}
	if len(got["gene2"]) != 1 {
		t.Errorf("gene2 = %v", got["gene2"])
	}
}

func TestJoinStreamDirections(t *testing.T) {
	left, right := joinFixture(t)
	up, err := Join(Config{MetaFirst: true}, left, right, JoinArgs{
		Pred:   GenometricPred{Conds: []DistCond{{Op: DistLE, Dist: 1000}}, Stream: StreamUp},
		Output: OutLeft,
	})
	if err != nil {
		t.Fatal(err)
	}
	gotUp := joinedNames(t, up)
	// gene1 is +: upstream = before start. e1 (800 away) qualifies.
	if len(gotUp["gene1"]) != 1 || gotUp["gene1"][0] != "e1" {
		t.Errorf("gene1 upstream = %v", gotUp["gene1"])
	}
	// gene2 is -: upstream = after stop. e4 qualifies.
	if len(gotUp["gene2"]) != 1 || gotUp["gene2"][0] != "e4" {
		t.Errorf("gene2 upstream = %v", gotUp["gene2"])
	}
	down, err := Join(Config{MetaFirst: true}, left, right, JoinArgs{
		Pred:   GenometricPred{Conds: []DistCond{{Op: DistLE, Dist: 1000}}, Stream: StreamDown},
		Output: OutLeft,
	})
	if err != nil {
		t.Fatal(err)
	}
	gotDown := joinedNames(t, down)
	if len(gotDown["gene1"]) != 1 || gotDown["gene1"][0] != "e3" {
		t.Errorf("gene1 downstream = %v", gotDown["gene1"])
	}
	if len(gotDown["gene2"]) != 0 {
		t.Errorf("gene2 downstream = %v", gotDown["gene2"])
	}
}

func TestJoinOutputModes(t *testing.T) {
	left := mkDataset(t, "L", mkSample("l", nil,
		regSpec{"chr1", 100, 200, gdm.StrandPlus, 1, "a"}))
	right := mkDataset(t, "R", mkSample("r", nil,
		regSpec{"chr1", 150, 250, gdm.StrandNone, 2, "b"}))
	cases := []struct {
		mode        JoinOutput
		start, stop int64
	}{
		{OutInt, 150, 200},
		{OutLeft, 100, 200},
		{OutRight, 150, 250},
		{OutCat, 100, 250},
	}
	for _, c := range cases {
		out, err := Join(Config{MetaFirst: true}, left, right, JoinArgs{
			Pred:   GenometricPred{Conds: []DistCond{{Op: DistLE, Dist: 0}}},
			Output: c.mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Samples[0].Regions) != 1 {
			t.Fatalf("%s: regions = %d", c.mode, len(out.Samples[0].Regions))
		}
		r := out.Samples[0].Regions[0]
		if r.Start != c.start || r.Stop != c.stop {
			t.Errorf("%s: [%d,%d), want [%d,%d)", c.mode, r.Start, r.Stop, c.start, c.stop)
		}
		// Merged schema carries both operands' values.
		if len(r.Values) != 4 {
			t.Errorf("%s: values = %v", c.mode, r.Values)
		}
	}
}

func TestJoinIntOnlyEmitsOverlaps(t *testing.T) {
	left := mkDataset(t, "L", mkSample("l", nil, regSpec{"chr1", 0, 100, gdm.StrandNone, 1, "a"}))
	right := mkDataset(t, "R", mkSample("r", nil, regSpec{"chr1", 200, 300, gdm.StrandNone, 2, "b"}))
	out, err := Join(Config{MetaFirst: true}, left, right, JoinArgs{
		Pred:   GenometricPred{Conds: []DistCond{{Op: DistLE, Dist: 1000}}},
		Output: OutInt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Samples[0].Regions) != 0 {
		t.Errorf("INT emitted non-overlapping pair: %v", out.Samples[0].Regions)
	}
}

// TestJoinAgainstBruteForce checks the windowed join kernel against an O(n*m)
// reference on random data, for every backend.
func TestJoinAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	left := randomDataset(rng, "L", 2, 60)
	right := randomDataset(rng, "R", 2, 60)
	pred := GenometricPred{Conds: []DistCond{{Op: DistLE, Dist: 500}, {Op: DistGE, Dist: 0}}}

	type pairKey struct {
		l, r string
	}
	want := map[pairKey]int{}
	for _, ls := range left.Samples {
		for _, rs := range right.Samples {
			for li := range ls.Regions {
				for ri := range rs.Regions {
					lr, rr := &ls.Regions[li], &rs.Regions[ri]
					if lr.Chrom != rr.Chrom {
						continue
					}
					d := intervals.Distance(lr.Start, lr.Stop, rr.Start, rr.Stop)
					if pred.holds(d) {
						want[pairKey{ls.ID, rs.ID}]++
					}
				}
			}
		}
	}
	for _, cfg := range allConfigs() {
		out, err := Join(cfg, left, right, JoinArgs{Pred: pred, Output: OutCat})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, s := range out.Samples {
			total += len(s.Regions)
		}
		wantTotal := 0
		for _, n := range want {
			wantTotal += n
		}
		if total != wantTotal {
			t.Errorf("%s: %d joined regions, brute force says %d", cfg.Mode, total, wantTotal)
		}
	}
}

func coverFixture(t *testing.T) *gdm.Dataset {
	return mkDataset(t, "REPS",
		mkSample("r1", map[string]string{"antibody": "CTCF"},
			regSpec{"chr1", 0, 100, gdm.StrandNone, 1, "a"},
			regSpec{"chr1", 200, 300, gdm.StrandNone, 1, "b"},
		),
		mkSample("r2", map[string]string{"antibody": "CTCF"},
			regSpec{"chr1", 50, 150, gdm.StrandNone, 1, "c"},
			regSpec{"chr1", 210, 260, gdm.StrandNone, 1, "d"},
		),
		mkSample("r3", map[string]string{"antibody": "CTCF"},
			regSpec{"chr1", 60, 90, gdm.StrandNone, 1, "e"},
		),
	)
}

func TestCoverStandard(t *testing.T) {
	ds := coverFixture(t)
	for _, cfg := range allConfigs() {
		out, err := Cover(cfg, ds, CoverArgs{
			Min: CoverBound{Kind: BoundN, N: 2}, Max: CoverBound{Kind: BoundAny},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Samples) != 1 {
			t.Fatalf("%s: samples = %d", cfg.Mode, len(out.Samples))
		}
		s := out.Samples[0]
		// Depth >= 2 on chr1: [50,100) (depths 2,3,2 merge) and [210,260).
		if len(s.Regions) != 2 {
			t.Fatalf("%s: regions = %v", cfg.Mode, s.Regions)
		}
		r0, r1 := s.Regions[0], s.Regions[1]
		if r0.Start != 50 || r0.Stop != 100 || r0.Values[0].Int() != 3 {
			t.Errorf("%s: r0 = %v", cfg.Mode, r0)
		}
		if r1.Start != 210 || r1.Stop != 260 || r1.Values[0].Int() != 2 {
			t.Errorf("%s: r1 = %v", cfg.Mode, r1)
		}
	}
}

func TestCoverAllAndAnyBounds(t *testing.T) {
	ds := coverFixture(t)
	all, err := Cover(Config{MetaFirst: true}, ds, CoverArgs{
		Min: CoverBound{Kind: BoundAll}, Max: CoverBound{Kind: BoundAll},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Depth == 3 only in [60,90).
	s := all.Samples[0]
	if len(s.Regions) != 1 || s.Regions[0].Start != 60 || s.Regions[0].Stop != 90 {
		t.Fatalf("ALL cover = %v", s.Regions)
	}
	anyv, err := Cover(Config{MetaFirst: true}, ds, CoverArgs{
		Min: CoverBound{Kind: BoundAny}, Max: CoverBound{Kind: BoundAny},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Depth >= 1: [0,150) and [200,300).
	s = anyv.Samples[0]
	if len(s.Regions) != 2 || s.Regions[0].Stop != 150 || s.Regions[1].Start != 200 {
		t.Fatalf("ANY cover = %v", s.Regions)
	}
}

func TestCoverHistogram(t *testing.T) {
	ds := coverFixture(t)
	out, err := Cover(Config{MetaFirst: true}, ds, CoverArgs{
		Min: CoverBound{Kind: BoundAny}, Max: CoverBound{Kind: BoundAny},
		Variant: CoverHistogram,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := out.Samples[0]
	// Segments: [0,50)@1 [50,60)@2 [60,90)@3 [90,100)@2 [100,150)@1
	//           [200,210)@1 [210,260)@2 [260,300)@1
	if len(s.Regions) != 8 {
		t.Fatalf("histogram = %v", s.Regions)
	}
	wantDepths := []int64{1, 2, 3, 2, 1, 1, 2, 1}
	for i, w := range wantDepths {
		if got := s.Regions[i].Values[0].Int(); got != w {
			t.Errorf("segment %d depth = %d, want %d", i, got, w)
		}
	}
	// Histogram conservation: sum depth*len == total input length.
	var got, want int64
	for _, r := range s.Regions {
		got += r.Length() * r.Values[0].Int()
	}
	for _, smp := range ds.Samples {
		for _, r := range smp.Regions {
			want += r.Length()
		}
	}
	if got != want {
		t.Errorf("conservation: %d vs %d", got, want)
	}
}

func TestCoverSummit(t *testing.T) {
	ds := coverFixture(t)
	out, err := Cover(Config{MetaFirst: true}, ds, CoverArgs{
		Min: CoverBound{Kind: BoundAny}, Max: CoverBound{Kind: BoundAny},
		Variant: CoverSummit,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := out.Samples[0]
	// Summits: [60,90)@3 (peak of first run) and [210,260)@2 (peak of second).
	if len(s.Regions) != 2 {
		t.Fatalf("summits = %v", s.Regions)
	}
	if s.Regions[0].Start != 60 || s.Regions[0].Stop != 90 || s.Regions[0].Values[0].Int() != 3 {
		t.Errorf("summit 0 = %v", s.Regions[0])
	}
	if s.Regions[1].Start != 210 || s.Regions[1].Stop != 260 || s.Regions[1].Values[0].Int() != 2 {
		t.Errorf("summit 1 = %v", s.Regions[1])
	}
}

func TestCoverFlat(t *testing.T) {
	ds := coverFixture(t)
	out, err := Cover(Config{MetaFirst: true}, ds, CoverArgs{
		Min: CoverBound{Kind: BoundN, N: 2}, Max: CoverBound{Kind: BoundAny},
		Variant: CoverFlat,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := out.Samples[0]
	// Qualifying run [50,100) extends to the extent of contributing regions
	// a [0,100) and c [50,150) and e [60,90): [0,150).
	if len(s.Regions) != 2 {
		t.Fatalf("flat = %v", s.Regions)
	}
	if s.Regions[0].Start != 0 || s.Regions[0].Stop != 150 {
		t.Errorf("flat 0 = %v", s.Regions[0])
	}
	// Run [210,260) extends to b [200,300) and d [210,260): [200,300).
	if s.Regions[1].Start != 200 || s.Regions[1].Stop != 300 {
		t.Errorf("flat 1 = %v", s.Regions[1])
	}
}

func TestCoverGroupBy(t *testing.T) {
	ds := mkDataset(t, "D",
		mkSample("a1", map[string]string{"antibody": "CTCF"}, regSpec{"chr1", 0, 100, gdm.StrandNone, 1, "x"}),
		mkSample("a2", map[string]string{"antibody": "CTCF"}, regSpec{"chr1", 50, 150, gdm.StrandNone, 1, "y"}),
		mkSample("b1", map[string]string{"antibody": "POL2"}, regSpec{"chr1", 60, 70, gdm.StrandNone, 1, "z"}),
	)
	out, err := Cover(Config{MetaFirst: true}, ds, CoverArgs{
		Min: CoverBound{Kind: BoundN, N: 2}, Max: CoverBound{Kind: BoundAny},
		GroupBy: []string{"antibody"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Samples) != 2 {
		t.Fatalf("groups = %d", len(out.Samples))
	}
	var ctcf, pol2 *gdm.Sample
	for _, s := range out.Samples {
		if s.Meta.Matches("antibody", "CTCF") {
			ctcf = s
		} else {
			pol2 = s
		}
	}
	if len(ctcf.Regions) != 1 || ctcf.Regions[0].Start != 50 || ctcf.Regions[0].Stop != 100 {
		t.Errorf("CTCF cover = %v", ctcf.Regions)
	}
	if len(pol2.Regions) != 0 {
		t.Errorf("POL2 cover (single sample, min 2) = %v", pol2.Regions)
	}
}

// TestCoverOutputsNeverOverlap is the COVER invariant from DESIGN.md.
func TestCoverOutputsNeverOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds := randomDataset(rng, "D", 5, 100)
	for _, variant := range []CoverVariant{CoverStandard, CoverFlat, CoverHistogram} {
		out, err := Cover(Config{MetaFirst: true}, ds, CoverArgs{
			Min: CoverBound{Kind: BoundN, N: 2}, Max: CoverBound{Kind: BoundAny},
			Variant: variant,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range out.Samples {
			if !s.RegionsSorted() {
				t.Fatalf("%s: output unsorted", variant)
			}
			for i := 1; i < len(s.Regions); i++ {
				a, b := s.Regions[i-1], s.Regions[i]
				if variant != CoverFlat && a.Chrom == b.Chrom && b.Start < a.Stop {
					t.Fatalf("%s: overlapping outputs %v, %v", variant, a, b)
				}
				if v := s.Regions[i].Values[0].Int(); v < 2 && variant != CoverFlat {
					t.Fatalf("%s: depth %d below min", variant, v)
				}
			}
		}
	}
}
