package engine

import (
	"testing"

	"genogo/internal/expr"
	"genogo/internal/gdm"
)

func twoSampleDataset(t *testing.T) *gdm.Dataset {
	return mkDataset(t, "PEAKS",
		mkSample("s1", map[string]string{"cell": "HeLa", "dataType": "ChipSeq"},
			regSpec{"chr1", 100, 200, gdm.StrandPlus, 5, "a"},
			regSpec{"chr1", 300, 400, gdm.StrandMinus, 1, "b"},
			regSpec{"chr2", 50, 80, gdm.StrandNone, 9, "c"},
		),
		mkSample("s2", map[string]string{"cell": "K562", "dataType": "RnaSeq"},
			regSpec{"chr1", 150, 250, gdm.StrandNone, 3, "d"},
		),
	)
}

func TestSelectMetaOnly(t *testing.T) {
	ds := twoSampleDataset(t)
	for _, cfg := range allConfigs() {
		out, err := Select(cfg, ds, expr.MetaCmp{Attr: "cell", Op: expr.CmpEq, Value: "hela"}, nil)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Mode, err)
		}
		if len(out.Samples) != 1 || out.Samples[0].ID != "s1" {
			t.Fatalf("%s: samples = %v", cfg.Mode, out.Samples)
		}
		if len(out.Samples[0].Regions) != 3 {
			t.Errorf("%s: regions filtered without predicate", cfg.Mode)
		}
	}
}

func TestSelectRegionPredicate(t *testing.T) {
	ds := twoSampleDataset(t)
	pred := expr.Cmp{Op: expr.CmpGe, Left: expr.Attr{Name: "score"}, Right: expr.Const{Value: gdm.Float(4)}}
	for _, cfg := range allConfigs() {
		out, err := Select(cfg, ds, nil, pred)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Samples) != 2 {
			t.Fatalf("%s: samples = %d", cfg.Mode, len(out.Samples))
		}
		if len(out.Samples[0].Regions) != 2 { // scores 5 and 9
			t.Errorf("%s: s1 regions = %d", cfg.Mode, len(out.Samples[0].Regions))
		}
		if len(out.Samples[1].Regions) != 0 {
			t.Errorf("%s: s2 regions = %d", cfg.Mode, len(out.Samples[1].Regions))
		}
	}
}

func TestSelectFixedAttributePredicate(t *testing.T) {
	ds := twoSampleDataset(t)
	pred := expr.Cmp{Op: expr.CmpEq, Left: expr.Attr{Name: "chr"}, Right: expr.Const{Value: gdm.Str("chr2")}}
	out, err := Select(Config{MetaFirst: true}, ds, nil, pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Samples[0].Regions) != 1 || out.Samples[0].Regions[0].Chrom != "chr2" {
		t.Errorf("regions = %v", out.Samples[0].Regions)
	}
}

func TestSelectDoesNotMutateInput(t *testing.T) {
	ds := twoSampleDataset(t)
	before := ds.NumRegions()
	out, err := Select(Config{MetaFirst: true}, ds, nil,
		expr.Cmp{Op: expr.CmpGt, Left: expr.Attr{Name: "score"}, Right: expr.Const{Value: gdm.Float(100)}})
	if err != nil {
		t.Fatal(err)
	}
	out.Samples[0].Meta.Add("mutation", "yes")
	if ds.NumRegions() != before || ds.Samples[0].Meta.Has("mutation") {
		t.Error("Select mutated its input")
	}
}

func TestSelectMetaFirstAblationEquivalence(t *testing.T) {
	ds := twoSampleDataset(t)
	meta := expr.MetaCmp{Attr: "dataType", Op: expr.CmpEq, Value: "ChipSeq"}
	pred := expr.Cmp{Op: expr.CmpGt, Left: expr.Attr{Name: "score"}, Right: expr.Const{Value: gdm.Float(2)}}
	on, err := Select(Config{MetaFirst: true}, ds, meta, pred)
	if err != nil {
		t.Fatal(err)
	}
	off, err := Select(Config{MetaFirst: false}, ds, meta, pred)
	if err != nil {
		t.Fatal(err)
	}
	datasetsEquivalent(t, "meta-first ablation", on, off)
}

func TestSelectBindError(t *testing.T) {
	ds := twoSampleDataset(t)
	if _, err := Select(Config{}, ds, nil, expr.Attr{Name: "missing"}); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestProjectKeepSubset(t *testing.T) {
	ds := twoSampleDataset(t)
	out, err := Project(Config{MetaFirst: true}, ds, ProjectArgs{
		Regions:  []ProjectItem{{Name: "score"}},
		MetaKeep: []string{"cell"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.Len() != 1 || out.Schema.Field(0).Name != "score" {
		t.Fatalf("schema = %s", out.Schema)
	}
	if out.Samples[0].Regions[0].Values[0].Float() != 5 {
		t.Errorf("value = %v", out.Samples[0].Regions[0].Values)
	}
	if out.Samples[0].Meta.Has("dataType") || !out.Samples[0].Meta.Has("cell") {
		t.Error("metadata projection wrong")
	}
}

func TestProjectComputedAttribute(t *testing.T) {
	ds := twoSampleDataset(t)
	out, err := Project(Config{MetaFirst: true}, ds, ProjectArgs{
		Regions: []ProjectItem{
			{Name: "score"},
			{Name: "length", Expr: expr.Arith{Op: expr.OpSub,
				Left: expr.Attr{Name: "right"}, Right: expr.Attr{Name: "left"}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.Field(1) != (gdm.Field{Name: "length", Type: gdm.KindFloat}) {
		t.Fatalf("schema = %s", out.Schema)
	}
	if got := out.Samples[0].Regions[0].Values[1].Float(); got != 100 {
		t.Errorf("length = %v", got)
	}
	if err := out.Validate(); err != nil {
		t.Errorf("invalid output: %v", err)
	}
}

func TestProjectErrors(t *testing.T) {
	ds := twoSampleDataset(t)
	if _, err := Project(Config{}, ds, ProjectArgs{Regions: []ProjectItem{{Name: "zzz"}}}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := Project(Config{}, ds, ProjectArgs{Regions: []ProjectItem{
		{Name: "a"}, {Name: "a"},
	}}); err == nil {
		t.Error("duplicate output accepted")
	}
}

func TestExtend(t *testing.T) {
	ds := twoSampleDataset(t)
	out, err := Extend(Config{MetaFirst: true}, ds, []expr.Aggregate{
		{Output: "region_count", Func: expr.AggCount},
		{Output: "max_score", Func: expr.AggMax, Attr: "score"},
		{Output: "avg_score", Func: expr.AggAvg, Attr: "score"},
	})
	if err != nil {
		t.Fatal(err)
	}
	s1 := out.Sample("s1")
	if s1.Meta.First("region_count") != "3" {
		t.Errorf("region_count = %q", s1.Meta.First("region_count"))
	}
	if s1.Meta.First("max_score") != "9" {
		t.Errorf("max_score = %q", s1.Meta.First("max_score"))
	}
	if s1.Meta.First("avg_score") != "5" {
		t.Errorf("avg_score = %q", s1.Meta.First("avg_score"))
	}
	if _, err := Extend(Config{}, ds, []expr.Aggregate{{Output: "x", Func: expr.AggSum, Attr: "zzz"}}); err == nil {
		t.Error("unknown aggregate attribute accepted")
	}
}

func TestMergeAll(t *testing.T) {
	ds := twoSampleDataset(t)
	out, err := Merge(Config{MetaFirst: true}, ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Samples) != 1 {
		t.Fatalf("samples = %d", len(out.Samples))
	}
	m := out.Samples[0]
	if len(m.Regions) != 4 {
		t.Errorf("regions = %d", len(m.Regions))
	}
	if !m.RegionsSorted() {
		t.Error("merged regions unsorted")
	}
	if !m.Meta.Matches("cell", "HeLa") || !m.Meta.Matches("cell", "K562") {
		t.Error("metadata union missing values")
	}
}

func TestMergeGrouped(t *testing.T) {
	ds := mkDataset(t, "D",
		mkSample("a1", map[string]string{"antibody": "CTCF"}, regSpec{"chr1", 0, 10, gdm.StrandNone, 1, "x"}),
		mkSample("a2", map[string]string{"antibody": "CTCF"}, regSpec{"chr1", 5, 15, gdm.StrandNone, 1, "y"}),
		mkSample("b1", map[string]string{"antibody": "POL2"}, regSpec{"chr2", 0, 5, gdm.StrandNone, 1, "z"}),
	)
	out, err := Merge(Config{MetaFirst: true}, ds, []string{"antibody"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Samples) != 2 {
		t.Fatalf("groups = %d", len(out.Samples))
	}
	var ctcf *gdm.Sample
	for _, s := range out.Samples {
		if s.Meta.Matches("antibody", "CTCF") {
			ctcf = s
		}
	}
	if ctcf == nil || len(ctcf.Regions) != 2 {
		t.Fatalf("CTCF group = %v", ctcf)
	}
}

// TestMergeCoverOrderInsensitive: group-collapsing operators hash their
// members' IDs into the output sample ID and concatenate their regions and
// metadata. All of that must be independent of the catalog's sample order —
// a disk catalog lists samples in filename order ("s10" < "s2"), an
// in-memory one in insertion order, and the two must produce identical
// results (the storage-format axis of the differential oracle reads both
// ways).
func TestMergeCoverOrderInsensitive(t *testing.T) {
	mk := func(reversed bool) *gdm.Dataset {
		// Same coordinates in both samples so merged tie order is visible.
		samples := []*gdm.Sample{
			mkSample("s2", map[string]string{"k": "a"}, regSpec{"chr1", 0, 10, gdm.StrandNone, 1, "x"}),
			mkSample("s10", map[string]string{"k": "b"}, regSpec{"chr1", 0, 10, gdm.StrandNone, 2, "y"}),
		}
		if reversed {
			samples[0], samples[1] = samples[1], samples[0]
		}
		return mkDataset(t, "D", samples...)
	}
	fwd, err := Merge(Config{MetaFirst: true}, mk(false), nil)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := Merge(Config{MetaFirst: true}, mk(true), nil)
	if err != nil {
		t.Fatal(err)
	}
	datasetsEquivalent(t, "merge", fwd, rev)
	if fwd.Samples[0].ID != rev.Samples[0].ID {
		t.Errorf("merge ID depends on sample order: %q != %q", fwd.Samples[0].ID, rev.Samples[0].ID)
	}

	coverArgs := CoverArgs{Min: CoverBound{Kind: BoundN, N: 1}, Max: CoverBound{Kind: BoundAny}}
	cfwd, err := Cover(Config{MetaFirst: true}, mk(false), coverArgs)
	if err != nil {
		t.Fatal(err)
	}
	crev, err := Cover(Config{MetaFirst: true}, mk(true), coverArgs)
	if err != nil {
		t.Fatal(err)
	}
	datasetsEquivalent(t, "cover", cfwd, crev)
	if cfwd.Samples[0].ID != crev.Samples[0].ID {
		t.Errorf("cover ID depends on sample order: %q != %q", cfwd.Samples[0].ID, crev.Samples[0].ID)
	}
}

func TestGroup(t *testing.T) {
	ds := mkDataset(t, "D",
		mkSample("a1", map[string]string{"cell": "HeLa", "q": "2"}),
		mkSample("a2", map[string]string{"cell": "HeLa", "q": "4"}),
		mkSample("b1", map[string]string{"cell": "K562", "q": "10"}),
	)
	out, err := Group(Config{MetaFirst: true}, ds, GroupArgs{
		By: []string{"cell"},
		MetaAggs: []expr.Aggregate{
			{Output: "n_samples", Func: expr.AggCountSamp},
			{Output: "avg_q", Func: expr.AggAvg, Attr: "q"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Samples) != 3 {
		t.Fatalf("samples = %d", len(out.Samples))
	}
	byID := map[string]*gdm.Sample{}
	for _, s := range out.Samples {
		byID[s.ID] = s
	}
	if byID["a1"].Meta.First("_group") != byID["a2"].Meta.First("_group") {
		t.Error("same-cell samples in different groups")
	}
	if byID["a1"].Meta.First("_group") == byID["b1"].Meta.First("_group") {
		t.Error("different-cell samples share a group")
	}
	if byID["a1"].Meta.First("n_samples") != "2" || byID["b1"].Meta.First("n_samples") != "1" {
		t.Errorf("n_samples = %q,%q", byID["a1"].Meta.First("n_samples"), byID["b1"].Meta.First("n_samples"))
	}
	if byID["a2"].Meta.First("avg_q") != "3" {
		t.Errorf("avg_q = %q", byID["a2"].Meta.First("avg_q"))
	}
}

func TestOrder(t *testing.T) {
	ds := mkDataset(t, "D",
		mkSample("x", map[string]string{"p": "0.5"}),
		mkSample("y", map[string]string{"p": "0.01"}),
		mkSample("z", map[string]string{"p": "0.2"}),
	)
	out, err := Order(Config{MetaFirst: true}, ds, OrderArgs{
		Keys: []OrderKey{{Attr: "p"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	gotIDs := []string{out.Samples[0].ID, out.Samples[1].ID, out.Samples[2].ID}
	if gotIDs[0] != "y" || gotIDs[1] != "z" || gotIDs[2] != "x" {
		t.Errorf("order = %v", gotIDs)
	}
	if out.Samples[0].Meta.First("_order") != "1" || out.Samples[2].Meta.First("_order") != "3" {
		t.Error("_order ranks wrong")
	}
	top, err := Order(Config{MetaFirst: true}, ds, OrderArgs{
		Keys: []OrderKey{{Attr: "p", Desc: true}}, Top: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Samples) != 1 || top.Samples[0].ID != "x" {
		t.Errorf("top = %v", top.Samples)
	}
	if _, err := Order(Config{}, ds, OrderArgs{}); err == nil {
		t.Error("no keys accepted")
	}
}

func TestOrderMissingAndNonNumeric(t *testing.T) {
	ds := mkDataset(t, "D",
		mkSample("a", map[string]string{"tag": "beta"}),
		mkSample("b", map[string]string{}),
		mkSample("c", map[string]string{"tag": "alpha"}),
	)
	out, err := Order(Config{MetaFirst: true}, ds, OrderArgs{Keys: []OrderKey{{Attr: "tag"}}})
	if err != nil {
		t.Fatal(err)
	}
	// Missing sorts first, then lexicographic.
	if out.Samples[0].ID != "b" || out.Samples[1].ID != "c" || out.Samples[2].ID != "a" {
		t.Errorf("order = %s,%s,%s", out.Samples[0].ID, out.Samples[1].ID, out.Samples[2].ID)
	}
}

func TestCompareMetaValues(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"1", "2", -1}, {"10", "9", 1}, {"2", "2", 0},
		{"", "x", -1}, {"x", "", 1}, {"", "", 0},
		{"abc", "abd", -1}, {"0.5", "0.05", 1},
		{"1e2", "99", 1},
	}
	for _, c := range cases {
		if got := compareMetaValues(c.a, c.b); (got < 0) != (c.want < 0) || (got > 0) != (c.want > 0) {
			t.Errorf("compareMetaValues(%q,%q) = %d, want sign %d", c.a, c.b, got, c.want)
		}
	}
}
