package engine

import (
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"genogo/internal/catalog"
	"genogo/internal/expr"
	"genogo/internal/gdm"
	"genogo/internal/obs"
)

// Catalog resolves dataset names for Scan nodes.
type Catalog interface {
	Dataset(name string) (*gdm.Dataset, error)
}

// PrunedCatalog is the partition-level dataset-access extension a columnar
// storage engine implements (formats.DirCatalog is the disk implementation):
// the engine can ask for a dataset with every (sample, chromosome) partition
// the keep function rejects skipped — for columnar layouts those partitions'
// bytes are never read, turning the zone-map `prunable=` accounting into
// real skipped I/O. Skipped partitions drop only their regions: every sample
// still appears (possibly region-empty), so sample-level semantics are
// untouched. Stats serves the manifest's persisted partition index without
// loading region data, letting a JOIN of two scans prune each side before
// either is materialized.
type PrunedCatalog interface {
	Catalog
	Stats(name string) (*catalog.DatasetStats, bool)
	DatasetPruned(name string, keep func(chrom string, minStart, maxStop int64) bool) (*gdm.Dataset, catalog.PruneStats, error)
}

// MapCatalog is the in-memory Catalog.
type MapCatalog map[string]*gdm.Dataset

// Dataset implements Catalog.
func (c MapCatalog) Dataset(name string) (*gdm.Dataset, error) {
	ds, ok := c[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown dataset %q", name)
	}
	return ds, nil
}

// Run executes a logical plan against a catalog under the configured
// backend.
//
// All backends share the operator kernels; they differ in scheduling:
//
//   - ModeSerial executes operator-at-a-time with no parallelism.
//   - ModeBatch executes operator-at-a-time, each operator fanning its
//     samples/pairs out to the worker pool and fully materializing its
//     output before the next operator starts (Spark-style stages).
//   - ModeStream additionally fuses chains of sample-local operators
//     (SELECT, PROJECT, EXTEND) into a single pipelined pass per sample —
//     no intermediate dataset is materialized inside a chain — and
//     evaluates the two inputs of binary operators concurrently
//     (Flink-style pipelined dataflow).
func Run(cfg Config, plan Node, cat Catalog) (*gdm.Dataset, error) {
	return NewSession(cfg, cat).Eval(plan)
}

// Session evaluates plans with a shared result cache, so several plans that
// share subtrees (the variables of one GMQL script) each execute the shared
// work once.
type Session struct{ e *evaluator }

// NewSession creates an evaluation session over the catalog.
func NewSession(cfg Config, cat Catalog) *Session {
	return &Session{e: &evaluator{cfg: cfg, cat: cat, cache: make(map[Node]*gdm.Dataset)}}
}

// Eval executes one plan, reusing any cached subtree results.
//
// Panics raised by operator kernels — including worker panics re-raised by
// forEach — are converted into returned errors here, so a malformed sample
// fails its query instead of taking down the process hosting the session
// (the gmqld server runs many queries in one process).
func (s *Session) Eval(plan Node) (ds *gdm.Dataset, err error) {
	defer func() {
		if r := recover(); r != nil {
			ds, err = nil, recoveredError(r)
		}
		observeKill(err)
	}()
	metricQueries.With(s.e.cfg.Mode.String()).Inc()
	return s.e.eval(plan, nil)
}

// EvalProfiled executes one plan like Eval while recording a span tree that
// mirrors the plan: one span per node visited, with wall time, data volumes,
// effective parallelism, fusion-chain membership and cache hits. The root
// span renders as an EXPLAIN ANALYZE-style profile (obs.Span.Render) and
// marshals to JSON for the federated path.
func (s *Session) EvalProfiled(plan Node) (*gdm.Dataset, *obs.Span, error) {
	return s.EvalProfiledLive(plan, nil)
}

// EvalProfiledLive is EvalProfiled with a live-observation hook: when
// publish is non-nil it receives the root span before evaluation begins, so
// a query registry can expose the growing tree to /debug/queries while the
// query runs. Spans mutate only through mutex-guarded setters after
// publication; observers read via obs.Span.Snapshot.
func (s *Session) EvalProfiledLive(plan Node, publish func(*obs.Span)) (ds *gdm.Dataset, root *obs.Span, err error) {
	defer func() {
		if r := recover(); r != nil {
			ds, root, err = nil, nil, recoveredError(r)
		}
		observeKill(err)
	}()
	metricQueries.With(s.e.cfg.Mode.String()).Inc()
	sp := newSpan(plan, s.e.cfg)
	if publish != nil {
		publish(sp)
	}
	ds, err = s.e.eval(plan, sp)
	if err != nil {
		return nil, nil, err
	}
	return ds, sp, nil
}

// recoveredError renders a recovered panic value as a query error. A
// governance kill (govPanic) — raised directly or trapped inside a worker —
// surfaces as its typed lifecycle error, not as a panic report.
func recoveredError(r any) error {
	if gp, ok := r.(govPanic); ok {
		return gp.err
	}
	if wp, ok := r.(*workerPanic); ok {
		if gp, ok := wp.val.(govPanic); ok {
			return gp.err
		}
		return fmt.Errorf("engine: panic in parallel worker: %v\n%s", wp.val, wp.stack)
	}
	return fmt.Errorf("engine: panic during evaluation: %v\n%s", r, debug.Stack())
}

type evaluator struct {
	cfg Config
	cat Catalog
	// cache memoizes results by plan node identity, so a subplan shared by
	// several GMQL variables executes once. Operators never mutate their
	// inputs, which makes sharing results safe.
	mu    sync.Mutex
	cache map[Node]*gdm.Dataset
}

// eval evaluates one node into sp, its (possibly nil) span. A nil span means
// the whole subtree runs untraced — the Eval fast path pays one nil check per
// node and nothing else.
func (e *evaluator) eval(n Node, sp *obs.Span) (*gdm.Dataset, error) {
	e.cfg.gov.check()
	start := time.Now()
	e.mu.Lock()
	if ds, ok := e.cache[n]; ok {
		e.mu.Unlock()
		metricCacheHits.Inc()
		if sp != nil {
			sp.SetCacheHit()
			fillSpanOutput(sp, ds)
			sp.Finish(start)
		}
		return ds, nil
	}
	e.mu.Unlock()
	ds, err := e.evalUncached(n, sp)
	if err != nil {
		return nil, err
	}
	if e.cfg.ValidateOutputs {
		if verr := ValidateOperatorOutput(opName(n), ds); verr != nil {
			return nil, verr
		}
	}
	// Budgets are enforced at operator boundaries: the offending operator is
	// known here, and a runaway output is killed before the next operator
	// amplifies it.
	if berr := e.cfg.gov.noteOutput(n, ds); berr != nil {
		if sp != nil {
			sp.Finish(start)
		}
		return nil, berr
	}
	e.mu.Lock()
	e.cache[n] = ds
	e.mu.Unlock()
	if sp != nil {
		finishSpan(sp, e.cfg, ds, start)
	}
	return ds, nil
}

// evalChild evaluates an input node, creating and attaching its span when the
// parent is traced.
func (e *evaluator) evalChild(n Node, parent *obs.Span) (*gdm.Dataset, error) {
	var sp *obs.Span
	if parent != nil {
		sp = newSpan(n, e.cfg)
		parent.AddChild(sp)
	}
	return e.eval(n, sp)
}

func (e *evaluator) evalUncached(n Node, sp *obs.Span) (*gdm.Dataset, error) {
	if e.cfg.Mode == ModeStream && !e.cfg.DisableFusion {
		if ds, ok, err := e.tryFusedChain(n, sp); ok || err != nil {
			return ds, err
		}
	}
	switch op := n.(type) {
	case *Scan:
		return e.cat.Dataset(op.Dataset)
	case *SelectOp:
		if ds, ok, err := e.trySelectPruned(op, sp); ok || err != nil {
			return ds, err
		}
		in, err := e.evalChild(op.Input, sp)
		if err != nil {
			return nil, err
		}
		meta, err := e.resolveSelectMeta(op, sp)
		if err != nil {
			return nil, err
		}
		observePrunableSelect(sp, in, op.Region)
		return Select(e.cfg, in, meta, op.Region)
	case *ProjectOp:
		in, err := e.evalChild(op.Input, sp)
		if err != nil {
			return nil, err
		}
		return Project(e.cfg, in, op.Args)
	case *ExtendOp:
		in, err := e.evalChild(op.Input, sp)
		if err != nil {
			return nil, err
		}
		return Extend(e.cfg, in, op.Aggs)
	case *MergeOp:
		in, err := e.evalChild(op.Input, sp)
		if err != nil {
			return nil, err
		}
		return Merge(e.cfg, in, op.GroupBy)
	case *GroupOp:
		in, err := e.evalChild(op.Input, sp)
		if err != nil {
			return nil, err
		}
		return Group(e.cfg, in, op.Args)
	case *OrderOp:
		in, err := e.evalChild(op.Input, sp)
		if err != nil {
			return nil, err
		}
		return Order(e.cfg, in, op.Args)
	case *CoverOp:
		in, err := e.evalChild(op.Input, sp)
		if err != nil {
			return nil, err
		}
		return Cover(e.cfg, in, op.Args)
	case *UnionOp:
		l, r, err := e.evalPair(op.Left, op.Right, sp)
		if err != nil {
			return nil, err
		}
		return Union(e.cfg, l, r)
	case *DifferenceOp:
		l, r, err := e.evalPair(op.Left, op.Right, sp)
		if err != nil {
			return nil, err
		}
		return Difference(e.cfg, l, r, op.Args)
	case *MapOp:
		if ds, ok, err := e.tryMapPruned(op, sp); ok || err != nil {
			return ds, err
		}
		l, r, err := e.evalPair(op.Ref, op.Exp, sp)
		if err != nil {
			return nil, err
		}
		observePrunableMap(sp, l, r)
		return Map(e.cfg, l, r, op.Args)
	case *JoinOp:
		if ds, ok, err := e.tryJoinPruned(op, sp); ok || err != nil {
			return ds, err
		}
		l, r, err := e.evalPair(op.Left, op.Right, sp)
		if err != nil {
			return nil, err
		}
		observePrunableJoin(sp, l, r, op.Args.Pred)
		return Join(e.cfg, l, r, op.Args)
	default:
		return nil, fmt.Errorf("engine: unknown plan node %T", n)
	}
}

// evalPair evaluates the two inputs of a binary operator: sequentially for
// the serial and batch backends, concurrently for the stream backend.
func (e *evaluator) evalPair(left, right Node, parent *obs.Span) (*gdm.Dataset, *gdm.Dataset, error) {
	var lsp, rsp *obs.Span
	if parent != nil {
		// Both child spans attach before anything runs: the right operand may
		// execute on another goroutine, and the profile's child order must be
		// the plan order, not the finish order.
		lsp, rsp = newSpan(left, e.cfg), newSpan(right, e.cfg)
		parent.AddChild(lsp)
		parent.AddChild(rsp)
	}
	if e.cfg.Mode != ModeStream {
		l, err := e.eval(left, lsp)
		if err != nil {
			return nil, nil, err
		}
		r, err := e.eval(right, rsp)
		if err != nil {
			return nil, nil, err
		}
		return l, r, nil
	}
	type res struct {
		ds  *gdm.Dataset
		err error
	}
	ch := make(chan res, 1)
	go func() {
		// The right operand runs on its own goroutine; a panic here would be
		// unrecoverable by the caller, so convert it to an error in-channel.
		defer func() {
			if r := recover(); r != nil {
				ch <- res{nil, recoveredError(r)}
			}
		}()
		ds, err := e.eval(right, rsp)
		ch <- res{ds, err}
	}()
	l, lerr := e.eval(left, lsp)
	rres := <-ch
	if lerr != nil {
		return nil, nil, lerr
	}
	if rres.err != nil {
		return nil, nil, rres.err
	}
	return l, rres.ds, nil
}

// resolveSelectMeta composes a SelectOp's metadata predicate with its
// semijoin clause: the external dataset is evaluated (cached, like any
// subplan) and its join-key set becomes an extra metadata filter.
func (e *evaluator) resolveSelectMeta(op *SelectOp, sp *obs.Span) (expr.MetaPredicate, error) {
	if op.SemiJoin == nil {
		return op.Meta, nil
	}
	// The external dataset is a real input of the SELECT, so its span is a
	// child of the select's span like any other operand.
	ext, err := e.evalChild(op.SemiJoin.External, sp)
	if err != nil {
		return nil, err
	}
	keys := make(map[string]bool, len(ext.Samples))
	for _, s := range ext.Samples {
		keys[groupKey(s.Meta, op.SemiJoin.Attrs)] = true
	}
	sj := semiJoinPred{keys: keys, attrs: op.SemiJoin.Attrs, negated: op.SemiJoin.Negated}
	return andMeta(op.Meta, sj), nil
}

// semiJoinPred is the compiled semijoin metadata filter.
type semiJoinPred struct {
	keys    map[string]bool
	attrs   []string
	negated bool
}

// EvalMeta implements expr.MetaPredicate.
func (p semiJoinPred) EvalMeta(md *gdm.Metadata) bool {
	in := p.keys[groupKey(md, p.attrs)]
	if p.negated {
		return !in
	}
	return in
}

// String implements expr.MetaPredicate.
func (p semiJoinPred) String() string {
	op := "IN"
	if p.negated {
		op = "NOT IN"
	}
	return fmt.Sprintf("semijoin([%s] %s external)", strings.Join(p.attrs, ","), op)
}

// fusable reports whether the node is a sample-local stage the stream
// backend can fuse, returning its input.
func fusable(n Node) (input Node, ok bool) {
	switch op := n.(type) {
	case *SelectOp:
		return op.Input, true
	case *ProjectOp:
		return op.Input, true
	case *ExtendOp:
		return op.Input, true
	default:
		return nil, false
	}
}

// tryFusedChain detects a maximal chain of sample-local operators ending at
// n, evaluates the chain's source once, compiles every operator in the chain
// into a stage against the flowing schema, and streams each sample through
// the whole chain in one pass. Returns ok=false when n heads no chain of
// length >= 2 (single operators gain nothing from fusion).
func (e *evaluator) tryFusedChain(n Node, sp *obs.Span) (*gdm.Dataset, bool, error) {
	var chain []Node // outermost first
	cur := n
	for {
		input, ok := fusable(cur)
		if !ok {
			break
		}
		chain = append(chain, cur)
		cur = input
	}
	if len(chain) < 2 {
		return nil, false, nil
	}
	if sp != nil {
		// The whole chain executes as one pass, so it profiles as one span:
		// the head records its members and the chain's source is its child.
		names := make([]string, len(chain))
		for i, c := range chain {
			names[i] = opName(c)
		}
		sp.SetFused(names)
	}
	src, prunedSrc, err := e.fusedChainSource(cur, chain, sp)
	if err != nil {
		return nil, true, err
	}
	// Compile innermost-first so the schema flows through the chain.
	stages := make([]stage, 0, len(chain))
	schema := src.Schema
	for i := len(chain) - 1; i >= 0; i-- {
		var st stage
		var cerr error
		switch op := chain[i].(type) {
		case *SelectOp:
			var meta expr.MetaPredicate
			meta, cerr = e.resolveSelectMeta(op, sp)
			if cerr == nil {
				st, cerr = compileSelect(e.cfg, schema, meta, op.Region)
			}
			if cerr == nil && i == len(chain)-1 && !prunedSrc {
				// Only the innermost SELECT reads straight from the source;
				// zone windows say nothing about intermediate results. A
				// pruned source already realized the opportunity — its scan
				// span carries the skipped= accounting instead.
				observePrunableSelect(sp, src, op.Region)
			}
		case *ProjectOp:
			st, cerr = compileProject(schema, op.Args)
		case *ExtendOp:
			st, cerr = compileExtend(schema, op.Aggs)
		}
		if cerr != nil {
			return nil, true, cerr
		}
		stages = append(stages, st)
		schema = st.schema
	}
	return applyStages(e.cfg, src, src.Name, stages), true, nil
}

// Optimize applies the logical rewrites of the GMQL optimizer:
//
//  1. Consecutive SELECTs merge into one (their predicates AND together), so
//     a fused or materialized chain makes one pass instead of two.
//  2. SELECT over UNION pushes down into both branches, pruning samples
//     before they are copied.
//
// The meta-first sample pruning itself lives in the SELECT kernel (it is an
// execution-time property controlled by Config.MetaFirst).
func Optimize(n Node) Node {
	switch op := n.(type) {
	case *SelectOp:
		op.Input = Optimize(op.Input)
		if op.SemiJoin != nil {
			op.SemiJoin.External = Optimize(op.SemiJoin.External)
		}
		// Merging and pushdown keep predicates sample-local; a semijoin on
		// the outer select would change which external evaluation happens,
		// so rewrites only fire for plain selects.
		if inner, ok := op.Input.(*SelectOp); ok && op.SemiJoin == nil && inner.SemiJoin == nil {
			return &SelectOp{
				Input:  inner.Input,
				Meta:   andMeta(op.Meta, inner.Meta),
				Region: andRegion(op.Region, inner.Region),
			}
		}
		if u, ok := op.Input.(*UnionOp); ok && op.SemiJoin == nil {
			return &UnionOp{
				Left:  Optimize(&SelectOp{Input: u.Left, Meta: op.Meta, Region: op.Region}),
				Right: Optimize(&SelectOp{Input: u.Right, Meta: op.Meta, Region: op.Region}),
			}
		}
		return op
	case *ProjectOp:
		op.Input = Optimize(op.Input)
		return op
	case *ExtendOp:
		op.Input = Optimize(op.Input)
		return op
	case *MergeOp:
		op.Input = Optimize(op.Input)
		return op
	case *GroupOp:
		op.Input = Optimize(op.Input)
		return op
	case *OrderOp:
		op.Input = Optimize(op.Input)
		return op
	case *CoverOp:
		op.Input = Optimize(op.Input)
		return op
	case *UnionOp:
		op.Left, op.Right = Optimize(op.Left), Optimize(op.Right)
		return op
	case *DifferenceOp:
		op.Left, op.Right = Optimize(op.Left), Optimize(op.Right)
		return op
	case *MapOp:
		op.Ref, op.Exp = Optimize(op.Ref), Optimize(op.Exp)
		return op
	case *JoinOp:
		op.Left, op.Right = Optimize(op.Left), Optimize(op.Right)
		return op
	default:
		return n
	}
}

func andMeta(a, b expr.MetaPredicate) expr.MetaPredicate {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	default:
		return expr.MetaAnd{Left: a, Right: b}
	}
}

func andRegion(a, b expr.Node) expr.Node {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	default:
		return expr.And{Left: a, Right: b}
	}
}
