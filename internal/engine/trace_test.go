package engine

import (
	"testing"

	"genogo/internal/gdm"
)

func traceCatalog(t *testing.T) MapCatalog {
	t.Helper()
	ds := mkDataset(t, "D",
		mkSample("a", map[string]string{"cell": "HeLa"},
			regSpec{"chr1", 0, 100, gdm.StrandNone, 1, "r1"},
			regSpec{"chr1", 200, 300, gdm.StrandNone, 2, "r2"}),
		mkSample("b", map[string]string{"cell": "K562"},
			regSpec{"chr1", 50, 150, gdm.StrandNone, 3, "r3"}),
	)
	return MapCatalog{"D": ds}
}

func TestMetricsEffectiveWorkers(t *testing.T) {
	cases := []struct {
		cfg  Config
		n    int
		want int
	}{
		{Config{Mode: ModeSerial, Workers: 8}, 100, 1},
		{Config{Mode: ModeBatch, Workers: 8}, 100, 8},
		{Config{Mode: ModeBatch, Workers: 8}, 3, 3},
		{Config{Mode: ModeBatch, Workers: 8}, 1, 1},
		{Config{Mode: ModeBatch, Workers: 8}, 0, 1},
		{Config{Mode: ModeStream, Workers: 2}, 5, 2},
		{Config{Mode: ModeStream, Workers: 1}, 5, 1},
	}
	for _, c := range cases {
		if got := c.cfg.effectiveWorkers(c.n); got != c.want {
			t.Errorf("effectiveWorkers(mode=%s w=%d, n=%d) = %d, want %d",
				c.cfg.Mode, c.cfg.Workers, c.n, got, c.want)
		}
	}
}

// TestMetricsSpanCacheHit shares one subtree between the two sides of a UNION:
// the second evaluation must come from the session cache and say so in its
// span, and the cache-hit counter must move.
func TestMetricsSpanCacheHit(t *testing.T) {
	shared := &SelectOp{Input: &Scan{Dataset: "D"}}
	plan := &UnionOp{Left: shared, Right: shared}
	for _, cfg := range allConfigs() {
		s := NewSession(cfg, traceCatalog(t))
		ds, root, err := s.EvalProfiled(plan)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Mode, err)
		}
		if len(root.Children) != 2 {
			t.Fatalf("%s: root children = %d, want 2", cfg.Mode, len(root.Children))
		}
		if root.RegionsOut != ds.NumRegions() {
			t.Errorf("%s: root regions_out = %d, dataset has %d", cfg.Mode, root.RegionsOut, ds.NumRegions())
		}
		// Sequential backends see the shared subtree's second evaluation hit
		// the cache. (The stream backend runs both sides concurrently, so
		// whether the race ends in a hit is timing-dependent — not asserted.)
		if cfg.Mode != ModeStream {
			hits := 0
			for _, c := range root.Children {
				if c.CacheHit {
					hits++
				}
			}
			if hits != 1 {
				t.Errorf("%s: cached children = %d, want exactly 1", cfg.Mode, hits)
			}
			l, r := root.Children[0], root.Children[1]
			if l.SamplesOut != r.SamplesOut || l.RegionsOut != r.RegionsOut {
				t.Errorf("%s: children disagree: %ds/%dr vs %ds/%dr",
					cfg.Mode, l.SamplesOut, l.RegionsOut, r.SamplesOut, r.RegionsOut)
			}
		}
		// Re-evaluating on the same session hits the cache at the root, for
		// every backend.
		before := metricCacheHits.Value()
		ds2, root2, err := s.EvalProfiled(plan)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Mode, err)
		}
		if !root2.CacheHit {
			t.Errorf("%s: second evaluation's root not marked cached", cfg.Mode)
		}
		if metricCacheHits.Value() == before {
			t.Errorf("%s: cache-hit counter did not move", cfg.Mode)
		}
		if root2.RegionsOut != ds2.NumRegions() {
			t.Errorf("%s: cached root regions_out = %d, dataset has %d",
				cfg.Mode, root2.RegionsOut, ds2.NumRegions())
		}
	}
}

// TestMetricsSpanFusion checks that a fused chain profiles as one span
// carrying its member list, with the chain's source as its only child.
func TestMetricsSpanFusion(t *testing.T) {
	plan := &SelectOp{Input: &SelectOp{Input: &Scan{Dataset: "D"}}}
	cfg := Config{Mode: ModeStream, Workers: 2, MetaFirst: true}
	s := NewSession(cfg, traceCatalog(t))
	_, root, err := s.EvalProfiled(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Fused) != 2 || root.Fused[0] != "SELECT" || root.Fused[1] != "SELECT" {
		t.Errorf("fused = %v, want [SELECT SELECT]", root.Fused)
	}
	if len(root.Children) != 1 || root.Children[0].Op != "SCAN" {
		t.Fatalf("children = %+v, want one SCAN", root.Children)
	}
	// Fusion off: same plan yields nested SELECT spans instead.
	cfg.DisableFusion = true
	s = NewSession(cfg, traceCatalog(t))
	_, root, err = s.EvalProfiled(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Fused) != 0 {
		t.Errorf("fused = %v with fusion disabled", root.Fused)
	}
	if len(root.Children) != 1 || root.Children[0].Op != "SELECT" {
		t.Fatalf("unfused children = %+v, want nested SELECT", root.Children)
	}
}

// TestMetricsEngineCounters checks the query counter moves per Eval, labeled
// by backend mode (deltas, not absolutes: the registry is process-global).
func TestMetricsEngineCounters(t *testing.T) {
	plan := &SelectOp{Input: &Scan{Dataset: "D"}}
	for _, cfg := range allConfigs() {
		c := metricQueries.With(cfg.Mode.String())
		before := c.Value()
		if _, err := NewSession(cfg, traceCatalog(t)).Eval(plan); err != nil {
			t.Fatal(err)
		}
		if _, _, err := NewSession(cfg, traceCatalog(t)).EvalProfiled(plan); err != nil {
			t.Fatal(err)
		}
		if got := c.Value() - before; got != 2 {
			t.Errorf("mode %s: queries delta = %d, want 2", cfg.Mode, got)
		}
	}
}
