package engine

import (
	"math/rand"
	"strings"
	"testing"

	"genogo/internal/expr"
	"genogo/internal/gdm"
)

// headlinePlan builds the paper's Section 2 query:
//
//	PROMS  = SELECT(annType == 'promoter') ANNOTATIONS;
//	PEAKS  = SELECT(dataType == 'ChipSeq') ENCODE;
//	RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;
func headlinePlan() Node {
	return &MapOp{
		Ref: &SelectOp{
			Input: &Scan{Dataset: "ANNOTATIONS"},
			Meta:  expr.MetaCmp{Attr: "annType", Op: expr.CmpEq, Value: "promoter"},
		},
		Exp: &SelectOp{
			Input: &Scan{Dataset: "ENCODE"},
			Meta:  expr.MetaCmp{Attr: "dataType", Op: expr.CmpEq, Value: "ChipSeq"},
		},
		Args: MapArgs{Aggs: []expr.Aggregate{{Output: "peak_count", Func: expr.AggCount}}},
	}
}

func headlineCatalog(t *testing.T) MapCatalog {
	anns := mkDataset(t, "ANNOTATIONS",
		mkSample("proms", map[string]string{"annType": "promoter"},
			regSpec{"chr1", 0, 1000, gdm.StrandNone, 0, "P1"},
			regSpec{"chr1", 5000, 6000, gdm.StrandNone, 0, "P2"},
		),
		mkSample("genes", map[string]string{"annType": "gene"},
			regSpec{"chr1", 0, 99999, gdm.StrandNone, 0, "G"},
		),
	)
	encode := mkDataset(t, "ENCODE",
		mkSample("chip1", map[string]string{"dataType": "ChipSeq"},
			regSpec{"chr1", 100, 200, gdm.StrandNone, 1, "pk"},
			regSpec{"chr1", 5100, 5200, gdm.StrandNone, 2, "pk"},
			regSpec{"chr1", 5150, 5250, gdm.StrandNone, 3, "pk"},
		),
		mkSample("chip2", map[string]string{"dataType": "ChipSeq"},
			regSpec{"chr1", 900, 1100, gdm.StrandNone, 4, "pk"},
		),
		mkSample("rna1", map[string]string{"dataType": "RnaSeq"},
			regSpec{"chr1", 0, 10, gdm.StrandNone, 5, "rx"},
		),
	)
	return MapCatalog{"ANNOTATIONS": anns, "ENCODE": encode}
}

func TestRunHeadlineQueryAllModes(t *testing.T) {
	cat := headlineCatalog(t)
	var ref *gdm.Dataset
	for _, cfg := range allConfigs() {
		out, err := Run(cfg, headlinePlan(), cat)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		// 1 promoter sample x 2 ChipSeq samples.
		if len(out.Samples) != 2 {
			t.Fatalf("%v: samples = %d", cfg, len(out.Samples))
		}
		ci, ok := out.Schema.Index("peak_count")
		if !ok {
			t.Fatalf("%v: schema = %s", cfg, out.Schema)
		}
		// Total peaks mapped: chip1 contributes 1 (P1) + 2 (P2); chip2
		// contributes 1 (P1, boundary overlap 900-1000).
		total := int64(0)
		for _, s := range out.Samples {
			for _, r := range s.Regions {
				total += r.Values[ci].Int()
			}
		}
		if total != 4 {
			t.Errorf("%v: total mapped peaks = %d, want 4", cfg, total)
		}
		if ref == nil {
			ref = out
		} else {
			datasetsEquivalent(t, cfg.Mode.String(), ref, out)
		}
	}
}

// TestModeEquivalenceRandomPlans runs a library of plan shapes over random
// data on all backends and demands identical results — the core invariant
// behind the paper's framework-independence claim.
func TestModeEquivalenceRandomPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	a := randomDataset(rng, "A", 4, 60)
	b := randomDataset(rng, "B", 3, 60)
	cat := MapCatalog{"A": a, "B": b}
	scoreGt := func(v float64) expr.Node {
		return expr.Cmp{Op: expr.CmpGt, Left: expr.Attr{Name: "score"}, Right: expr.Const{Value: gdm.Float(v)}}
	}
	plans := map[string]Node{
		"select-chain": &SelectOp{
			Input:  &SelectOp{Input: &Scan{Dataset: "A"}, Region: scoreGt(2)},
			Region: scoreGt(5),
		},
		"select-project-extend": &ExtendOp{
			Input: &ProjectOp{
				Input: &SelectOp{Input: &Scan{Dataset: "A"}, Region: scoreGt(3)},
				Args: ProjectArgs{Regions: []ProjectItem{
					{Name: "score"},
					{Name: "len", Expr: expr.Arith{Op: expr.OpSub,
						Left: expr.Attr{Name: "right"}, Right: expr.Attr{Name: "left"}}},
				}},
			},
			Aggs: []expr.Aggregate{{Output: "n", Func: expr.AggCount}},
		},
		"map": &MapOp{
			Ref: &Scan{Dataset: "A"}, Exp: &Scan{Dataset: "B"},
			Args: MapArgs{Aggs: []expr.Aggregate{
				{Output: "n", Func: expr.AggCount},
				{Output: "avg", Func: expr.AggAvg, Attr: "score"},
			}},
		},
		"join": &JoinOp{
			Left: &Scan{Dataset: "A"}, Right: &Scan{Dataset: "B"},
			Args: JoinArgs{
				Pred:   GenometricPred{Conds: []DistCond{{Op: DistLE, Dist: 300}}},
				Output: OutCat,
			},
		},
		"cover": &CoverOp{
			Input: &Scan{Dataset: "A"},
			Args: CoverArgs{Min: CoverBound{Kind: BoundN, N: 2},
				Max: CoverBound{Kind: BoundAny}, Variant: CoverHistogram},
		},
		"difference-union": &DifferenceOp{
			Left:  &UnionOp{Left: &Scan{Dataset: "A"}, Right: &Scan{Dataset: "B"}},
			Right: &Scan{Dataset: "B"},
		},
		"merge-order": &OrderOp{
			Input: &ExtendOp{
				Input: &MergeOp{Input: &Scan{Dataset: "A"}, GroupBy: []string{"cell"}},
				Aggs:  []expr.Aggregate{{Output: "n", Func: expr.AggCount}},
			},
			Args: OrderArgs{Keys: []OrderKey{{Attr: "n", Desc: true}}, Top: 2},
		},
		"group": &GroupOp{
			Input: &Scan{Dataset: "A"},
			Args: GroupArgs{By: []string{"dataType"},
				MetaAggs: []expr.Aggregate{{Output: "n", Func: expr.AggCountSamp}}},
		},
	}
	for name, plan := range plans {
		var ref *gdm.Dataset
		for _, cfg := range allConfigs() {
			out, err := Run(cfg, plan, cat)
			if err != nil {
				t.Fatalf("%s %v: %v", name, cfg, err)
			}
			if ref == nil {
				ref = out
			} else {
				datasetsEquivalent(t, name+"/"+cfg.Mode.String(), ref, out)
			}
		}
	}
}

func TestRunUnknownDataset(t *testing.T) {
	_, err := Run(Config{}, &Scan{Dataset: "NOPE"}, MapCatalog{})
	if err == nil || !strings.Contains(err.Error(), "NOPE") {
		t.Errorf("err = %v", err)
	}
}

func TestRunErrorPropagation(t *testing.T) {
	cat := headlineCatalog(t)
	plans := []Node{
		&SelectOp{Input: &Scan{Dataset: "NOPE"}},
		&ProjectOp{Input: &Scan{Dataset: "ANNOTATIONS"},
			Args: ProjectArgs{Regions: []ProjectItem{{Name: "zzz"}}}},
		&MapOp{Ref: &Scan{Dataset: "NOPE"}, Exp: &Scan{Dataset: "ENCODE"}},
		&MapOp{Ref: &Scan{Dataset: "ANNOTATIONS"}, Exp: &Scan{Dataset: "NOPE"}},
		&UnionOp{Left: &Scan{Dataset: "NOPE"}, Right: &Scan{Dataset: "ENCODE"}},
		&ExtendOp{Input: &Scan{Dataset: "ANNOTATIONS"},
			Aggs: []expr.Aggregate{{Output: "x", Func: expr.AggSum, Attr: "zzz"}}},
	}
	for i, p := range plans {
		for _, cfg := range allConfigs() {
			if _, err := Run(cfg, p, cat); err == nil {
				t.Errorf("plan %d mode %s: error not propagated", i, cfg.Mode)
			}
		}
	}
}

func TestOptimizeMergesSelects(t *testing.T) {
	plan := &SelectOp{
		Input: &SelectOp{
			Input: &Scan{Dataset: "A"},
			Meta:  expr.MetaCmp{Attr: "a", Op: expr.CmpEq, Value: "1"},
		},
		Meta: expr.MetaCmp{Attr: "b", Op: expr.CmpEq, Value: "2"},
	}
	opt := Optimize(plan)
	sel, ok := opt.(*SelectOp)
	if !ok {
		t.Fatalf("optimized to %T", opt)
	}
	if _, ok := sel.Input.(*Scan); !ok {
		t.Fatalf("selects not merged: %s", Explain(opt))
	}
	if !strings.Contains(sel.Meta.String(), "AND") {
		t.Errorf("meta predicates not ANDed: %s", sel.Meta)
	}
}

func TestOptimizePushesSelectThroughUnion(t *testing.T) {
	plan := &SelectOp{
		Input: &UnionOp{Left: &Scan{Dataset: "A"}, Right: &Scan{Dataset: "B"}},
		Meta:  expr.MetaCmp{Attr: "a", Op: expr.CmpEq, Value: "1"},
	}
	opt := Optimize(plan)
	u, ok := opt.(*UnionOp)
	if !ok {
		t.Fatalf("optimized to %T: %s", opt, Explain(opt))
	}
	if _, ok := u.Left.(*SelectOp); !ok {
		t.Error("select not pushed into left branch")
	}
	if _, ok := u.Right.(*SelectOp); !ok {
		t.Error("select not pushed into right branch")
	}
}

func TestOptimizePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	a := randomDataset(rng, "A", 4, 50)
	b := randomDataset(rng, "B", 3, 50)
	cat := MapCatalog{"A": a, "B": b}
	plan := func() Node {
		return &SelectOp{
			Input: &SelectOp{
				Input: &UnionOp{Left: &Scan{Dataset: "A"}, Right: &Scan{Dataset: "B"}},
				Meta:  expr.MetaCmp{Attr: "dataType", Op: expr.CmpEq, Value: "ChipSeq"},
			},
			Region: expr.Cmp{Op: expr.CmpGt, Left: expr.Attr{Name: "score"},
				Right: expr.Const{Value: gdm.Float(4)}},
		}
	}
	cfg := Config{Mode: ModeSerial, MetaFirst: true}
	plain, err := Run(cfg, plan(), cat)
	if err != nil {
		t.Fatal(err)
	}
	optimized, err := Run(cfg, Optimize(plan()), cat)
	if err != nil {
		t.Fatal(err)
	}
	datasetsEquivalent(t, "optimize", plain, optimized)
}

func TestStreamFusionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomDataset(rng, "A", 5, 80)
	cat := MapCatalog{"A": a}
	plan := func() Node {
		return &ExtendOp{
			Input: &ProjectOp{
				Input: &SelectOp{
					Input: &Scan{Dataset: "A"},
					Meta:  expr.MetaCmp{Attr: "dataType", Op: expr.CmpEq, Value: "ChipSeq"},
					Region: expr.Cmp{Op: expr.CmpLt, Left: expr.Attr{Name: "score"},
						Right: expr.Const{Value: gdm.Float(8)}},
				},
				Args: ProjectArgs{Regions: []ProjectItem{{Name: "score"}}},
			},
			Aggs: []expr.Aggregate{{Output: "total", Func: expr.AggSum, Attr: "score"}},
		}
	}
	fused, err := Run(Config{Mode: ModeStream, Workers: 3, MetaFirst: true}, plan(), cat)
	if err != nil {
		t.Fatal(err)
	}
	unfused, err := Run(Config{Mode: ModeStream, Workers: 3, MetaFirst: true, DisableFusion: true}, plan(), cat)
	if err != nil {
		t.Fatal(err)
	}
	datasetsEquivalent(t, "fusion", fused, unfused)
}

func TestExplainCoversAllNodes(t *testing.T) {
	plan := &OrderOp{
		Args: OrderArgs{Keys: []OrderKey{{Attr: "n", Desc: true}}, Top: 3},
		Input: &GroupOp{
			Args: GroupArgs{By: []string{"cell"}, MetaAggs: []expr.Aggregate{{Output: "n", Func: expr.AggCountSamp}}},
			Input: &MergeOp{
				GroupBy: []string{"cell"},
				Input: &CoverOp{
					Args: CoverArgs{Min: CoverBound{Kind: BoundN, N: 2}, Max: CoverBound{Kind: BoundAll}},
					Input: &DifferenceOp{
						Left: &JoinOp{
							Args: JoinArgs{Pred: GenometricPred{
								Conds: []DistCond{{Op: DistLE, Dist: 100}}, MinDistK: 2, Stream: StreamUp},
								Output: OutInt},
							Left: &MapOp{
								Args: MapArgs{Aggs: []expr.Aggregate{{Output: "c", Func: expr.AggCount}}},
								Ref:  &ExtendOp{Input: &Scan{Dataset: "X"}, Aggs: []expr.Aggregate{{Output: "e", Func: expr.AggCount}}},
								Exp: &ProjectOp{Input: &Scan{Dataset: "Y"},
									Args: ProjectArgs{Regions: []ProjectItem{{Name: "a", Expr: expr.Attr{Name: "b"}}}}},
							},
							Right: &Scan{Dataset: "Z"},
						},
						Right: &UnionOp{
							Left:  &SelectOp{Input: &Scan{Dataset: "W"}},
							Right: &Scan{Dataset: "V"},
						},
					},
				},
			},
		},
	}
	text := Explain(plan)
	for _, frag := range []string{
		"ORDER", "GROUP", "MERGE", "COVER(2, ALL)", "DIFFERENCE", "JOIN",
		"DLE(100)", "MD(2)", "UP", "MAP", "EXTEND", "PROJECT", "SELECT",
		"UNION", "SCAN X", "SCAN Y", "SCAN Z", "SCAN W", "SCAN V",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("Explain missing %q:\n%s", frag, text)
		}
	}
}

func TestModeStrings(t *testing.T) {
	if ModeSerial.String() != "serial" || ModeBatch.String() != "batch" || ModeStream.String() != "stream" {
		t.Error("mode names wrong")
	}
	if DistLE.String() != "DLE" || DistGT.String() != "DG" {
		t.Error("dist op names wrong")
	}
	if OutInt.String() != "INT" || OutCat.String() != "CAT" {
		t.Error("output names wrong")
	}
	if CoverStandard.String() != "COVER" || CoverSummit.String() != "SUMMIT" {
		t.Error("cover names wrong")
	}
	if (CoverBound{Kind: BoundAll}).String() != "ALL" || (CoverBound{Kind: BoundN, N: 3}).String() != "3" {
		t.Error("bound names wrong")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Mode != ModeStream || !cfg.MetaFirst || cfg.Workers < 1 {
		t.Errorf("DefaultConfig = %+v", cfg)
	}
	if (Config{Mode: ModeSerial, Workers: 8}).workers() != 1 {
		t.Error("serial must use one worker")
	}
	if (Config{Mode: ModeBatch, Workers: 3}).workers() != 3 {
		t.Error("explicit workers ignored")
	}
}

// TestFusedChainWithSemijoin: the stream backend must resolve the semijoin's
// external dataset even when the SELECT sits inside a fused chain.
func TestFusedChainWithSemijoin(t *testing.T) {
	cat := headlineCatalog(t)
	mkPlan := func() Node {
		return &ExtendOp{
			Input: &SelectOp{
				Input: &Scan{Dataset: "ENCODE"},
				SemiJoin: &SemiJoin{
					Attrs: []string{"dataType"},
					External: &SelectOp{
						Input: &Scan{Dataset: "ENCODE"},
						Meta:  expr.MetaCmp{Attr: "dataType", Op: expr.CmpEq, Value: "RnaSeq"},
					},
				},
			},
			Aggs: []expr.Aggregate{{Output: "n", Func: expr.AggCount}},
		}
	}
	fused, err := Run(Config{Mode: ModeStream, Workers: 2, MetaFirst: true}, mkPlan(), cat)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Run(Config{Mode: ModeSerial, MetaFirst: true}, mkPlan(), cat)
	if err != nil {
		t.Fatal(err)
	}
	datasetsEquivalent(t, "semijoin fusion", serial, fused)
	if len(fused.Samples) != 1 || fused.Samples[0].ID != "rna1" {
		t.Errorf("samples = %v", fused.Samples)
	}
	// Semijoin with a broken external errors out in both paths.
	broken := &SelectOp{
		Input:    &Scan{Dataset: "ENCODE"},
		SemiJoin: &SemiJoin{Attrs: []string{"x"}, External: &Scan{Dataset: "NOPE"}},
	}
	for _, cfg := range allConfigs() {
		if _, err := Run(cfg, &ProjectOp{Input: broken, Args: ProjectArgs{}}, cat); err == nil {
			t.Errorf("%v: broken semijoin external swallowed", cfg)
		}
	}
}
