package engine

import (
	"fmt"

	"genogo/internal/gdm"
	"genogo/internal/intervals"
)

// Union implements GMQL UNION: the result contains every sample of both
// operands. The result schema is the left operand's; right-operand regions
// are re-laid-out onto it by attribute name (unmatched attributes become
// null), realizing GDM schema interoperability. Right sample IDs are
// re-derived when they would collide with a left ID.
func Union(cfg Config, left, right *gdm.Dataset) (*gdm.Dataset, error) {
	schema, mapping := gdm.UnionSchemas(left.Schema, right.Schema)
	out := gdm.NewDataset(left.Name, schema)
	seen := make(map[string]bool, len(left.Samples)+len(right.Samples))
	for _, s := range left.Samples {
		out.Samples = append(out.Samples, s.Clone())
		seen[s.ID] = true
	}
	rightOut := make([]*gdm.Sample, len(right.Samples))
	cfg.forEach(len(right.Samples), func(i int) {
		src := right.Samples[i]
		ns := &gdm.Sample{ID: src.ID, Meta: src.Meta.Clone(), Regions: make([]gdm.Region, len(src.Regions))}
		for ri := range src.Regions {
			r := src.Regions[ri]
			vals := make([]gdm.Value, schema.Len())
			for vi, srcIdx := range mapping {
				if srcIdx >= 0 {
					vals[vi] = r.Values[srcIdx]
				} else {
					vals[vi] = gdm.Null()
				}
			}
			r.Values = vals
			ns.Regions[ri] = r
		}
		rightOut[i] = ns
	})
	for _, ns := range rightOut {
		if seen[ns.ID] {
			ns.ID = gdm.DeriveID("union", ns.ID, "right")
		}
		seen[ns.ID] = true
		out.Samples = append(out.Samples, ns)
	}
	return out, nil
}

// DifferenceArgs parametrizes DIFFERENCE.
type DifferenceArgs struct {
	// JoinBy restricts which right samples count against each left sample:
	// only samples agreeing on these metadata attributes. Empty means all.
	JoinBy []string
	// Exact removes only coordinate-identical regions instead of any
	// overlapping region.
	Exact bool
}

// Difference implements GMQL DIFFERENCE: for every left sample, it removes
// the regions that intersect (or exactly equal, with Exact) at least one
// region of the matching right samples. Left metadata and IDs are preserved.
func Difference(cfg Config, left, right *gdm.Dataset, args DifferenceArgs) (*gdm.Dataset, error) {
	// Partition right samples by join key once.
	rightGroups := make(map[string][]*gdm.Sample)
	for _, s := range right.Samples {
		k := groupKey(s.Meta, args.JoinBy)
		rightGroups[k] = append(rightGroups[k], s)
	}
	out := gdm.NewDataset(left.Name, left.Schema)
	outSamples := make([]*gdm.Sample, len(left.Samples))
	cfg.forEach(len(left.Samples), func(i int) {
		src := left.Samples[i]
		negatives := rightGroups[groupKey(src.Meta, args.JoinBy)]
		drop := make([]bool, len(src.Regions))
		var tick int
		for _, cs := range chromSpans(src) {
			leftEntries := chromEntries(src, cs.lo, cs.hi)
			for _, neg := range negatives {
				nlo, nhi := neg.ChromRange(cs.chrom)
				if nlo == nhi {
					continue
				}
				negEntries := chromEntries(neg, nlo, nhi)
				intervals.SweepOverlaps(leftEntries, negEntries, func(l, r intervals.Entry) bool {
					cfg.tick(&tick)
					lr := &src.Regions[l.Payload]
					rr := &neg.Regions[r.Payload]
					if !lr.Strand.Compatible(rr.Strand) {
						return true
					}
					if args.Exact {
						if lr.Start == rr.Start && lr.Stop == rr.Stop {
							drop[l.Payload] = true
						}
						return true
					}
					drop[l.Payload] = true
					return true
				})
			}
		}
		ns := &gdm.Sample{ID: src.ID, Meta: src.Meta.Clone()}
		for ri := range src.Regions {
			if !drop[ri] {
				ns.Regions = append(ns.Regions, src.Regions[ri])
			}
		}
		outSamples[i] = ns
	})
	out.Samples = outSamples
	return out, nil
}

// pairings enumerates the (left, right) sample pairs that agree on the
// joinBy metadata attributes (every pair when joinBy is empty), in
// deterministic order.
func pairings(left, right *gdm.Dataset, joinBy []string) [][2]*gdm.Sample {
	rightGroups := make(map[string][]*gdm.Sample)
	for _, s := range right.Samples {
		rightGroups[groupKey(s.Meta, joinBy)] = append(rightGroups[groupKey(s.Meta, joinBy)], s)
	}
	var out [][2]*gdm.Sample
	for _, l := range left.Samples {
		for _, r := range rightGroups[groupKey(l.Meta, joinBy)] {
			out = append(out, [2]*gdm.Sample{l, r})
		}
	}
	return out
}

// mergeSampleMeta builds the metadata of a binary-operator result sample:
// left attributes prefixed "left.", right attributes prefixed "right." —
// the provenance tracing the paper calls out ("knowing why resulting
// regions were produced").
func mergeSampleMeta(l, r *gdm.Sample) *gdm.Metadata {
	md := gdm.NewMetadata()
	l.Meta.MergeInto(md, "left")
	r.Meta.MergeInto(md, "right")
	return md
}

// mergeSchemas validates a binary operator's schema merge. Merges are
// checked by the compiler before execution, so a failure here is an engine
// bug — but it surfaces as a query error, failing the query instead of the
// process.
func mergeSchemas(left, right *gdm.Schema, tag string) (gdm.MergedSchema, error) {
	m, err := gdm.MergeSchemas(left, right, tag)
	if err != nil {
		return gdm.MergedSchema{}, fmt.Errorf("engine: schema merge invariant violated: %w", err)
	}
	return m, nil
}
