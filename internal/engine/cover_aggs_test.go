package engine

import (
	"testing"

	"genogo/internal/expr"
	"genogo/internal/gdm"
)

func TestCoverWithAggregates(t *testing.T) {
	ds := mkDataset(t, "D",
		mkSample("a", nil,
			regSpec{"chr1", 0, 100, gdm.StrandNone, 2, "x"},
		),
		mkSample("b", nil,
			regSpec{"chr1", 50, 150, gdm.StrandNone, 4, "y"},
		),
		mkSample("c", nil,
			regSpec{"chr1", 300, 400, gdm.StrandNone, 10, "z"},
		),
	)
	out, err := Cover(Config{MetaFirst: true}, ds, CoverArgs{
		Min: CoverBound{Kind: BoundN, N: 2}, Max: CoverBound{Kind: BoundAny},
		Aggs: []expr.Aggregate{
			{Output: "n", Func: expr.AggCount},
			{Output: "avg_score", Func: expr.AggAvg, Attr: "score"},
			{Output: "max_score", Func: expr.AggMax, Attr: "score"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []string{"acc_index", "n", "avg_score", "max_score"}
	for i, name := range want {
		if out.Schema.Field(i).Name != name {
			t.Fatalf("schema = %s", out.Schema)
		}
	}
	s := out.Samples[0]
	// Only [50,100) reaches depth 2; contributing regions are x and y.
	if len(s.Regions) != 1 {
		t.Fatalf("regions = %v", s.Regions)
	}
	r := s.Regions[0]
	if r.Start != 50 || r.Stop != 100 {
		t.Errorf("region = %v", r)
	}
	ni, _ := out.Schema.Index("n")
	ai, _ := out.Schema.Index("avg_score")
	mi, _ := out.Schema.Index("max_score")
	if r.Values[ni].Int() != 2 {
		t.Errorf("n = %v", r.Values[ni])
	}
	if r.Values[ai].Float() != 3 {
		t.Errorf("avg = %v", r.Values[ai])
	}
	if r.Values[mi].Float() != 4 {
		t.Errorf("max = %v", r.Values[mi])
	}
}

func TestCoverAggregatesAcrossVariantsAndModes(t *testing.T) {
	ds := coverFixture(t)
	for _, variant := range []CoverVariant{CoverStandard, CoverHistogram, CoverSummit, CoverFlat} {
		var ref *gdm.Dataset
		for _, cfg := range allConfigs() {
			out, err := Cover(cfg, ds, CoverArgs{
				Min: CoverBound{Kind: BoundAny}, Max: CoverBound{Kind: BoundAny},
				Variant: variant,
				Aggs:    []expr.Aggregate{{Output: "contrib", Func: expr.AggCount}},
			})
			if err != nil {
				t.Fatalf("%s %s: %v", variant, cfg.Mode, err)
			}
			if err := out.Validate(); err != nil {
				t.Fatalf("%s %s: %v", variant, cfg.Mode, err)
			}
			ci, _ := out.Schema.Index("contrib")
			for _, s := range out.Samples {
				for _, r := range s.Regions {
					if r.Values[ci].Int() < 1 {
						t.Fatalf("%s: output region %v has no contributors", variant, r)
					}
				}
			}
			if ref == nil {
				ref = out
			} else {
				datasetsEquivalent(t, variant.String()+"/"+cfg.Mode.String(), ref, out)
			}
		}
	}
}

func TestCoverAggregateUnknownAttr(t *testing.T) {
	ds := coverFixture(t)
	_, err := Cover(Config{}, ds, CoverArgs{
		Min: CoverBound{Kind: BoundAny}, Max: CoverBound{Kind: BoundAny},
		Aggs: []expr.Aggregate{{Output: "x", Func: expr.AggSum, Attr: "zzz"}},
	})
	if err == nil {
		t.Error("unknown attribute accepted")
	}
}
