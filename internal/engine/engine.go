// Package engine implements the GMQL physical operators (SELECT, PROJECT,
// EXTEND, MERGE, GROUP, ORDER, UNION, DIFFERENCE, genometric JOIN, MAP,
// COVER) over GDM datasets, together with three execution backends that
// share the operator kernels:
//
//   - ModeSerial: a single-goroutine reference implementation;
//   - ModeBatch: stage-materializing, partition-parallel execution in the
//     style of Spark — every operator materializes its whole output before
//     the next operator starts, with work fanned out to a worker pool;
//   - ModeStream: pipelined dataflow in the style of Flink — chains of
//     sample-local operators are fused and samples stream through the chain
//     without intermediate materialization.
//
// The backends realize the paper's Section 4.2 claim that "the two
// implementations differ only in the encoding of about twenty GMQL language
// components, while the compiler, logical optimizer, and APIs are
// independent from the adoption of either framework": internal/gmql compiles
// to the Plan nodes of this package without knowing which mode will run them.
package engine

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"genogo/internal/gdm"
	"genogo/internal/intervals"
)

// Mode selects the execution backend.
type Mode uint8

// Execution backends.
const (
	ModeSerial Mode = iota
	ModeBatch
	ModeStream
)

// String names the backend.
func (m Mode) String() string {
	switch m {
	case ModeSerial:
		return "serial"
	case ModeBatch:
		return "batch"
	case ModeStream:
		return "stream"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Config carries the execution strategy knobs. The zero value is a valid
// serial configuration; DefaultConfig returns the parallel default.
type Config struct {
	// Mode selects the backend.
	Mode Mode
	// Workers bounds the worker pool for the parallel backends;
	// <= 0 means GOMAXPROCS.
	Workers int
	// BinWidth partitions chromosomes into fixed-width genometric bins for
	// the parallel region kernels; <= 0 means one bin per chromosome. This
	// is the binning ablation knob of DESIGN.md.
	BinWidth int64
	// MetaFirst enables the meta-first optimization: metadata predicates
	// prune whole samples before any region is touched. Disabled only for
	// the optimizer ablation.
	MetaFirst bool
	// DisableFusion turns off operator fusion in ModeStream (ablation).
	DisableFusion bool
	// DisablePruning turns off partition-level pruned reads against a
	// PrunedCatalog: every Scan loads its full dataset. The pruned and
	// unpruned paths must produce identical results — this is the ablation
	// knob the prune-correctness tests and the differential harness flip.
	DisablePruning bool
	// ValidateOutputs checks the operator-output invariants (canonical
	// region order, schema-width value arity, typed values, unique sample
	// IDs) after every plan node and fails the query on a violation. It is
	// how the differential harness and the invariants tests assert the
	// DESIGN.md invariants on every operator of every plan, not just
	// hand-picked ones. Off in production: it re-walks every output.
	ValidateOutputs bool
	// Stall is the stuck-operator/slow-consumer chaos hook: when non-nil it
	// runs before every forEach work item. done is the governed session's
	// cancellation signal (nil for ungoverned sessions), so an injected
	// stall that blocks on done still observes cancellation — which is what
	// makes the cancellation-latency bound deterministically testable.
	// Never set in production.
	Stall func(done <-chan struct{})
	// gov is the query lifecycle governor (see govern.go), installed by
	// Session.Govern. It is a pointer so every kernel's by-value Config copy
	// shares it; nil means ungoverned.
	gov *governor
}

// DefaultConfig returns the recommended parallel configuration.
func DefaultConfig() Config {
	return Config{Mode: ModeStream, Workers: runtime.GOMAXPROCS(0), MetaFirst: true}
}

// workers resolves the configured worker count.
func (c Config) workers() int {
	if c.Mode == ModeSerial {
		return 1
	}
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// effectiveWorkers is the parallelism the pool can actually use for n work
// items: never more goroutines than items, and one when the configuration or
// the input is serial. forEach spawns exactly this many workers, and query
// spans record it, so profiles show the realized — not the configured —
// fan-out.
func (c Config) effectiveWorkers(n int) int {
	w := c.workers()
	if w <= 1 || n <= 1 {
		return 1
	}
	if w > n {
		return n
	}
	return w
}

// workerPanic carries a panic out of a worker goroutine, preserving the
// worker's stack for the re-panic on the caller's goroutine.
type workerPanic struct {
	val   any
	stack []byte
}

// forEach runs fn(i) for i in [0,n) according to the configured backend:
// sequentially in serial mode, fanned out over the worker pool otherwise.
// It is the single parallel primitive every operator kernel uses.
//
// A panic inside a worker goroutine would crash the whole process (a
// goroutine's panic cannot be recovered by anyone else), so workers trap
// panics and forEach re-raises the first one on the calling goroutine —
// where Session.Eval converts it into a query error: one bad sample fails
// the query, not the server.
// Every work item additionally passes the governance gate (cancellation check
// plus the chaos stall hook), so a canceled query stops between items on all
// backends; once the governor observes the kill, the dispatch loop stops
// handing out work so the remaining items are never started.
func (c Config) forEach(n int, fn func(i int)) {
	gated := c.gov != nil || c.Stall != nil
	w := c.effectiveWorkers(n)
	mode := c.Mode.String()
	if w <= 1 {
		start := time.Now()
		for i := 0; i < n; i++ {
			if gated {
				c.itemGate()
			}
			fn(i)
		}
		metricBusyNS.With(mode).Add(int64(time.Since(start)))
		return
	}
	metricWorkersBusy.Add(int64(w))
	defer metricWorkersBusy.Add(-int64(w))
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var trapped *workerPanic
	next := make(chan int)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			start := time.Now()
			defer func() { metricBusyNS.With(mode).Add(int64(time.Since(start))) }()
			for i := range next {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() {
								trapped = &workerPanic{val: r, stack: debug.Stack()}
							})
						}
					}()
					if gated {
						c.itemGate()
					}
					fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		if c.gov != nil && c.gov.dead.Load() {
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
	if trapped != nil {
		panic(trapped)
	}
}

// chromEntries converts the regions of one chromosome range [lo,hi) of a
// sample into interval entries whose payloads are region indices.
func chromEntries(s *gdm.Sample, lo, hi int) []intervals.Entry {
	es := make([]intervals.Entry, hi-lo)
	for i := lo; i < hi; i++ {
		r := &s.Regions[i]
		es[i-lo] = intervals.Entry{Start: r.Start, Stop: r.Stop, Payload: int32(i)}
	}
	return es
}

// chromSpan is one chromosome's index range within a sorted sample.
type chromSpan struct {
	chrom  string
	lo, hi int
}

// chromSpans enumerates the chromosome ranges of a canonically sorted sample.
func chromSpans(s *gdm.Sample) []chromSpan {
	var out []chromSpan
	for i := 0; i < len(s.Regions); {
		c := s.Regions[i].Chrom
		j := i
		for j < len(s.Regions) && s.Regions[j].Chrom == c {
			j++
		}
		out = append(out, chromSpan{c, i, j})
		i = j
	}
	return out
}

// binSpans splits a chromosome span into genometric bins of width w (by
// region start coordinate). Regions stay whole: a region belongs to the bin
// containing its start, and bin boundaries never split the slice mid-run.
func binSpans(s *gdm.Sample, cs chromSpan, w int64) []chromSpan {
	if w <= 0 || cs.hi-cs.lo <= 1 {
		return []chromSpan{cs}
	}
	var out []chromSpan
	lo := cs.lo
	for lo < cs.hi {
		bin := s.Regions[lo].Start / w
		hi := lo + 1
		for hi < cs.hi && s.Regions[hi].Start/w == bin {
			hi++
		}
		out = append(out, chromSpan{cs.chrom, lo, hi})
		lo = hi
	}
	return out
}
