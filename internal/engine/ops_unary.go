package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"genogo/internal/expr"
	"genogo/internal/gdm"
)

// sampleTransform is a compiled sample-local operator stage: it maps one
// sample to its output sample, or reports keep=false to drop the sample
// entirely. Stages are pure with respect to their input (they never mutate
// it), which is what makes chains of stages fusable by the stream backend.
type sampleTransform func(s *gdm.Sample) (out *gdm.Sample, keep bool)

// stage couples a compiled transform with the schema of its output.
type stage struct {
	fn     sampleTransform
	schema *gdm.Schema
}

// applyStages runs a dataset through a compiled stage chain, parallelizing
// over samples. This is the shared execution core of the sample-local
// operators: the serial and batch backends call it with one stage per
// operator (materializing in between), the stream backend calls it once
// with the whole fused chain.
func applyStages(cfg Config, ds *gdm.Dataset, name string, stages []stage) *gdm.Dataset {
	if len(stages) == 0 {
		return ds
	}
	out := gdm.NewDataset(name, stages[len(stages)-1].schema)
	results := make([]*gdm.Sample, len(ds.Samples))
	cfg.forEach(len(ds.Samples), func(i int) {
		s := ds.Samples[i]
		for _, st := range stages {
			ns, keep := st.fn(s)
			if !keep {
				return
			}
			s = ns
		}
		results[i] = s
	})
	for _, s := range results {
		if s != nil {
			out.Samples = append(out.Samples, s)
		}
	}
	return out
}

// compileSelect builds the SELECT stage: the metadata predicate drops whole
// samples (the meta-first optimization — no region is touched for pruned
// samples), the region predicate filters regions. Either may be nil.
func compileSelect(cfg Config, schema *gdm.Schema, meta expr.MetaPredicate, region expr.Node) (stage, error) {
	var bound expr.Bound
	if region != nil {
		var err error
		bound, err = region.Bind(schema)
		if err != nil {
			return stage{}, fmt.Errorf("select: %w", err)
		}
	}
	metaFirst := cfg.MetaFirst
	fn := func(s *gdm.Sample) (*gdm.Sample, bool) {
		if meta != nil && metaFirst && !meta.EvalMeta(s.Meta) {
			return nil, false
		}
		ns := &gdm.Sample{ID: s.ID, Meta: s.Meta.Clone()}
		if bound == nil {
			ns.Regions = append([]gdm.Region(nil), s.Regions...)
		} else {
			for ri := range s.Regions {
				if bound.Eval(&s.Regions[ri]).Bool() {
					ns.Regions = append(ns.Regions, s.Regions[ri])
				}
			}
		}
		if meta != nil && !metaFirst && !meta.EvalMeta(ns.Meta) {
			// Ablation path: metadata evaluated after the region work.
			return nil, false
		}
		return ns, true
	}
	return stage{fn: fn, schema: schema}, nil
}

// Select implements GMQL SELECT: the metadata predicate picks samples, the
// region predicate filters regions inside the surviving samples.
func Select(cfg Config, ds *gdm.Dataset, meta expr.MetaPredicate, region expr.Node) (*gdm.Dataset, error) {
	st, err := compileSelect(cfg, ds.Schema, meta, region)
	if err != nil {
		return nil, err
	}
	return applyStages(cfg, ds, ds.Name, []stage{st}), nil
}

// ProjectItem is one output region attribute of PROJECT: either a copy of an
// existing attribute (Expr nil) or a computed expression.
type ProjectItem struct {
	Name string
	Expr expr.Node
}

// ProjectArgs parametrizes PROJECT.
type ProjectArgs struct {
	// Regions lists the output region attributes; nil keeps the schema as is.
	Regions []ProjectItem
	// MetaKeep lists the metadata attributes to retain; nil keeps all.
	MetaKeep []string
}

// compileProject builds the PROJECT stage and its output schema.
func compileProject(schema *gdm.Schema, args ProjectArgs) (stage, error) {
	items := args.Regions
	if items == nil {
		items = make([]ProjectItem, schema.Len())
		for i := 0; i < schema.Len(); i++ {
			items[i] = ProjectItem{Name: schema.Field(i).Name}
		}
	}
	fields := make([]gdm.Field, len(items))
	bounds := make([]expr.Bound, len(items))
	for i, it := range items {
		node := it.Expr
		if node == nil {
			node = expr.Attr{Name: it.Name}
		}
		k, err := expr.InferType(node, schema)
		if err != nil {
			return stage{}, fmt.Errorf("project: %w", err)
		}
		b, err := node.Bind(schema)
		if err != nil {
			return stage{}, fmt.Errorf("project: %w", err)
		}
		fields[i] = gdm.Field{Name: it.Name, Type: k}
		bounds[i] = b
	}
	outSchema, err := gdm.NewSchema(fields...)
	if err != nil {
		return stage{}, fmt.Errorf("project: %w", err)
	}
	fn := func(s *gdm.Sample) (*gdm.Sample, bool) {
		ns := &gdm.Sample{ID: s.ID, Regions: make([]gdm.Region, len(s.Regions))}
		if args.MetaKeep == nil {
			ns.Meta = s.Meta.Clone()
		} else {
			ns.Meta = gdm.NewMetadata()
			for _, attr := range args.MetaKeep {
				for _, v := range s.Meta.Values(attr) {
					ns.Meta.Add(attr, v)
				}
			}
		}
		for ri := range s.Regions {
			r := s.Regions[ri]
			vals := make([]gdm.Value, len(bounds))
			for vi, b := range bounds {
				v := b.Eval(&s.Regions[ri])
				if !v.IsNull() && v.Kind() != fields[vi].Type {
					if cv, err := v.Coerce(fields[vi].Type); err == nil {
						v = cv
					} else {
						v = gdm.Null()
					}
				}
				vals[vi] = v
			}
			r.Values = vals
			ns.Regions[ri] = r
		}
		return ns, true
	}
	return stage{fn: fn, schema: outSchema}, nil
}

// Project implements GMQL PROJECT: it rewrites the variable attributes of
// every region (keeping the fixed coordinate attributes) and optionally
// drops metadata attributes.
func Project(cfg Config, ds *gdm.Dataset, args ProjectArgs) (*gdm.Dataset, error) {
	st, err := compileProject(ds.Schema, args)
	if err != nil {
		return nil, err
	}
	return applyStages(cfg, ds, ds.Name, []stage{st}), nil
}

// compileExtend builds the EXTEND stage: per-sample region aggregates become
// metadata attributes.
func compileExtend(schema *gdm.Schema, aggs []expr.Aggregate) (stage, error) {
	idx := make([]int, len(aggs))
	for i, a := range aggs {
		if !a.Func.NeedsAttr() {
			idx[i] = -1
			continue
		}
		j, ok := schema.Index(a.Attr)
		if !ok {
			return stage{}, fmt.Errorf("extend: unknown attribute %q in schema %s", a.Attr, schema)
		}
		idx[i] = j
	}
	fn := func(s *gdm.Sample) (*gdm.Sample, bool) {
		ns := s.Clone()
		for ai, a := range aggs {
			acc := expr.NewAccumulator(a.Func)
			for ri := range s.Regions {
				if idx[ai] < 0 {
					acc.Add(gdm.Null())
				} else {
					acc.Add(s.Regions[ri].Values[idx[ai]])
				}
			}
			ns.Meta.Set(a.Output, acc.Result().String())
		}
		return ns, true
	}
	return stage{fn: fn, schema: schema}, nil
}

// Extend implements GMQL EXTEND: region aggregates of each sample become new
// metadata attributes of that sample, bridging the region and metadata
// halves of GDM.
func Extend(cfg Config, ds *gdm.Dataset, aggs []expr.Aggregate) (*gdm.Dataset, error) {
	st, err := compileExtend(ds.Schema, aggs)
	if err != nil {
		return nil, err
	}
	return applyStages(cfg, ds, ds.Name, []stage{st}), nil
}

// groupKey builds the grouping key of a sample from metadata attributes: the
// concatenation of the sorted values of each attribute. Samples missing an
// attribute group under the empty value, following GMQL's permissive joinby.
func groupKey(md *gdm.Metadata, attrs []string) string {
	if len(attrs) == 0 {
		return ""
	}
	parts := make([]string, 0, len(attrs))
	for _, a := range attrs {
		vs := append([]string(nil), md.Values(a)...)
		sort.Strings(vs)
		parts = append(parts, strings.Join(vs, "|"))
	}
	return strings.Join(parts, "\x1f")
}

// Merge implements GMQL MERGE: all samples (or all samples sharing the
// groupBy metadata values) collapse into one sample whose regions are the
// sorted concatenation and whose metadata is the union of the group's.
func Merge(cfg Config, ds *gdm.Dataset, groupBy []string) (*gdm.Dataset, error) {
	groups := make(map[string][]*gdm.Sample)
	var order []string
	for _, s := range ds.Samples {
		k := groupKey(s.Meta, groupBy)
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], s)
	}
	sort.Strings(order)
	// A group is a set of parents, not a sequence: process members in ID
	// order so the derived sample ID, the metadata union and the tie order of
	// coordinate-identical regions are all independent of the catalog's
	// sample order (disk catalogs list samples in filename order, in-memory
	// ones in insertion order).
	for _, members := range groups {
		sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
	}
	out := gdm.NewDataset(ds.Name, ds.Schema)
	outSamples := make([]*gdm.Sample, len(order))
	cfg.forEach(len(order), func(gi int) {
		members := groups[order[gi]]
		ids := make([]string, len(members))
		total := 0
		for i, m := range members {
			ids[i] = m.ID
			total += len(m.Regions)
		}
		ns := gdm.NewSample(gdm.DeriveID("merge", ids...))
		ns.Regions = make([]gdm.Region, 0, total)
		for _, m := range members {
			ns.Regions = append(ns.Regions, m.Regions...)
			m.Meta.MergeInto(ns.Meta, "")
		}
		ns.SortRegions()
		outSamples[gi] = ns
	})
	out.Samples = outSamples
	out.SortRegions()
	return out, nil
}

// GroupArgs parametrizes GROUP.
type GroupArgs struct {
	// By lists the metadata attributes defining the groups.
	By []string
	// MetaAggs computes per-group aggregates over metadata values, added to
	// every sample of the group (e.g. "samples AS COUNTSAMP").
	MetaAggs []expr.Aggregate
	// RegionAggs enables the region side of GROUP: coordinate-identical
	// regions within each sample collapse into one, whose variable
	// attributes are these aggregates over the duplicates (e.g.
	// "n AS COUNT, best AS MIN(p_value)"). When empty, regions pass
	// through unchanged.
	RegionAggs []expr.Aggregate
}

// Group implements GMQL GROUP: samples are grouped by metadata attributes,
// each sample gains a "_group" identifier plus the per-group aggregate
// metadata; with RegionAggs, duplicate regions inside each sample are
// collapsed with aggregates.
func Group(cfg Config, ds *gdm.Dataset, args GroupArgs) (*gdm.Dataset, error) {
	outSchema := ds.Schema
	regionIdx := make([]int, len(args.RegionAggs))
	if len(args.RegionAggs) > 0 {
		fields := make([]gdm.Field, 0, len(args.RegionAggs))
		for i, a := range args.RegionAggs {
			in := gdm.KindNull
			if a.Func.NeedsAttr() {
				j, ok := ds.Schema.Index(a.Attr)
				if !ok {
					return nil, fmt.Errorf("group: unknown region attribute %q in schema %s", a.Attr, ds.Schema)
				}
				regionIdx[i] = j
				in = ds.Schema.Field(j).Type
			} else {
				regionIdx[i] = -1
			}
			fields = append(fields, gdm.Field{Name: a.Output, Type: a.Func.ResultKind(in)})
		}
		var err error
		outSchema, err = gdm.NewSchema(fields...)
		if err != nil {
			return nil, fmt.Errorf("group: %w", err)
		}
	}
	return groupImpl(cfg, ds, args, outSchema, regionIdx)
}

func groupImpl(cfg Config, ds *gdm.Dataset, args GroupArgs, outSchema *gdm.Schema, regionIdx []int) (*gdm.Dataset, error) {
	groups := make(map[string][]*gdm.Sample)
	var order []string
	for _, s := range ds.Samples {
		k := groupKey(s.Meta, args.By)
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], s)
	}
	sort.Strings(order)
	gid := make(map[string]int, len(order))
	for i, k := range order {
		gid[k] = i + 1
	}
	out := gdm.NewDataset(ds.Name, outSchema)
	for _, k := range order {
		members := groups[k]
		aggVals := make([]string, len(args.MetaAggs))
		for ai, a := range args.MetaAggs {
			acc := expr.NewAccumulator(a.Func)
			for _, m := range members {
				if a.Func == expr.AggCountSamp {
					acc.Add(gdm.Null())
					continue
				}
				for _, v := range m.Meta.Values(a.Attr) {
					acc.Add(gdm.Str(v))
				}
			}
			aggVals[ai] = acc.Result().String()
		}
		for _, m := range members {
			ns := m.Clone()
			ns.Meta.Set("_group", strconv.Itoa(gid[k]))
			for ai, a := range args.MetaAggs {
				ns.Meta.Set(a.Output, aggVals[ai])
			}
			if len(args.RegionAggs) > 0 {
				ns.Regions = dedupRegions(m.Regions, args.RegionAggs, regionIdx)
			}
			out.Samples = append(out.Samples, ns)
		}
	}
	return out, nil
}

// dedupRegions collapses coordinate-identical runs of canonically sorted
// regions, aggregating their variable attributes.
func dedupRegions(regions []gdm.Region, aggs []expr.Aggregate, aggIdx []int) []gdm.Region {
	var out []gdm.Region
	for i := 0; i < len(regions); {
		j := i
		for j < len(regions) && regions[j].Chrom == regions[i].Chrom &&
			regions[j].Start == regions[i].Start && regions[j].Stop == regions[i].Stop &&
			regions[j].Strand == regions[i].Strand {
			j++
		}
		vals := make([]gdm.Value, len(aggs))
		for ai := range aggs {
			acc := expr.NewAccumulator(aggs[ai].Func)
			for k := i; k < j; k++ {
				if aggIdx[ai] < 0 {
					acc.Add(gdm.Null())
				} else {
					acc.Add(regions[k].Values[aggIdx[ai]])
				}
			}
			vals[ai] = acc.Result()
		}
		r := regions[i]
		r.Values = vals
		out = append(out, r)
		i = j
	}
	return out
}

// OrderKey is one metadata sort key of ORDER.
type OrderKey struct {
	Attr string
	Desc bool
}

// OrderArgs parametrizes ORDER.
type OrderArgs struct {
	Keys []OrderKey
	// Top keeps only the first Top samples after sorting; 0 keeps all.
	Top int
	// RegionKeys sorts regions inside every sample by attribute value;
	// combined with RegionTop it keeps each sample's best regions (e.g. the
	// 5 most significant peaks). Kept regions return to canonical
	// coordinate order, preserving the dataset invariant.
	RegionKeys []OrderKey
	// RegionTop keeps only the first RegionTop regions per sample after
	// region ordering; 0 keeps all.
	RegionTop int
}

// Order implements GMQL ORDER over metadata: samples are sorted by the
// metadata keys (numerically when both values parse as numbers), each sample
// gains an "_order" rank, and the TOP clause truncates the result.
func Order(cfg Config, ds *gdm.Dataset, args OrderArgs) (*gdm.Dataset, error) {
	if len(args.Keys) == 0 && len(args.RegionKeys) == 0 {
		return nil, fmt.Errorf("order: no sort keys")
	}
	if len(args.Keys) == 0 {
		// Region-only ordering: keep sample order, rank = input position.
		args.Keys = nil
	}
	regionCmp, err := compileRegionOrder(ds.Schema, args.RegionKeys)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(ds.Samples))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		sa, sb := ds.Samples[idx[a]], ds.Samples[idx[b]]
		for _, k := range args.Keys {
			c := compareMetaValues(sa.Meta.First(k.Attr), sb.Meta.First(k.Attr))
			if k.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return sa.ID < sb.ID
	})
	if args.Top > 0 && args.Top < len(idx) {
		idx = idx[:args.Top]
	}
	out := gdm.NewDataset(ds.Name, ds.Schema)
	outSamples := make([]*gdm.Sample, len(idx))
	cfg.forEach(len(idx), func(rank int) {
		ns := ds.Samples[idx[rank]].Clone()
		ns.Meta.Set("_order", strconv.Itoa(rank+1))
		if regionCmp != nil {
			sort.SliceStable(ns.Regions, func(a, b int) bool {
				return regionCmp(&ns.Regions[a], &ns.Regions[b])
			})
			if args.RegionTop > 0 && args.RegionTop < len(ns.Regions) {
				ns.Regions = ns.Regions[:args.RegionTop]
			}
			ns.SortRegions() // restore the canonical dataset invariant
		}
		outSamples[rank] = ns
	})
	out.Samples = outSamples
	return out, nil
}

// compileRegionOrder builds a region comparison function from value keys;
// nil keys yield a nil comparator.
func compileRegionOrder(schema *gdm.Schema, keys []OrderKey) (func(a, b *gdm.Region) bool, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	type keyIdx struct {
		idx  int
		desc bool
	}
	kis := make([]keyIdx, len(keys))
	for i, k := range keys {
		j, ok := schema.Index(k.Attr)
		if !ok {
			return nil, fmt.Errorf("order: unknown region attribute %q in schema %s", k.Attr, schema)
		}
		kis[i] = keyIdx{j, k.Desc}
	}
	return func(a, b *gdm.Region) bool {
		for _, k := range kis {
			c := gdm.Compare(a.Values[k.idx], b.Values[k.idx])
			if k.desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	}, nil
}

// compareMetaValues compares metadata values numerically when both parse as
// numbers and lexicographically otherwise; missing values sort first.
func compareMetaValues(a, b string) int {
	if a == b {
		return 0
	}
	if a == "" {
		return -1
	}
	if b == "" {
		return 1
	}
	fa, errA := strconv.ParseFloat(strings.TrimSpace(a), 64)
	fb, errB := strconv.ParseFloat(strings.TrimSpace(b), 64)
	if errA == nil && errB == nil {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a, b)
}
