package engine

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"genogo/internal/expr"
	"genogo/internal/formats"
	"genogo/internal/gdm"
	"genogo/internal/obs"
)

// writeColumnarCatalog materializes datasets in the columnar layout under a
// temp root and returns the disk catalog — the PrunedCatalog the engine's
// partition-skipping read path needs.
func writeColumnarCatalog(t *testing.T, datasets ...*gdm.Dataset) *formats.DirCatalog {
	t.Helper()
	root := t.TempDir()
	for _, ds := range datasets {
		if err := formats.WriteDatasetColumnar(filepath.Join(root, ds.Name), ds); err != nil {
			t.Fatal(err)
		}
	}
	return formats.NewDirCatalog(root)
}

// sumSkipped totals the pruned-read accounting over a span tree.
func sumSkipped(sp *obs.Span) (consulted, skipped int, regions int64) {
	for _, s := range sp.Flatten() {
		consulted += s.PartsConsulted
		skipped += s.PartsSkipped
		regions += s.RegionsSkipped
	}
	return
}

func startCmp(op expr.CmpOp, v int64) expr.Node {
	return expr.Cmp{Op: op, Left: expr.Attr{Name: "start"}, Right: expr.Const{Value: gdm.Int(v)}}
}

func stopCmp(op expr.CmpOp, v int64) expr.Node {
	return expr.Cmp{Op: op, Left: expr.Attr{Name: "stop"}, Right: expr.Const{Value: gdm.Int(v)}}
}

// boundaryDataset has two single-chromosome partitions with hand-computed
// zone windows: sample lo spans [100,200) and sample hi spans [500,600), both
// on chr1.
func boundaryDataset(t *testing.T) *gdm.Dataset {
	t.Helper()
	return mkDataset(t, "B",
		mkSample("lo", nil, regSpec{"chr1", 100, 200, gdm.StrandNone, 1, "lo"}),
		mkSample("hi", nil, regSpec{"chr1", 500, 600, gdm.StrandNone, 2, "hi"}),
	)
}

// TestPrunedSelectBoundary pins the zone-window comparisons at their exact
// off-by-one boundaries: a partition [minStart, maxStop) must be skipped only
// when the predicate window provably clears it, and the pruned result must
// equal the unpruned result either way.
func TestPrunedSelectBoundary(t *testing.T) {
	ds := boundaryDataset(t)
	cases := []struct {
		name        string
		pred        expr.Node
		wantSkipped int
	}{
		// start >= K: lo's maxStop is 200, so 200 is reachable-in-window
		// (kept, conservative) and 201 is provably empty (skipped).
		{"ge-at-maxstop", startCmp(expr.CmpGe, 200), 0},
		{"ge-past-maxstop", startCmp(expr.CmpGe, 201), 1},
		// start > K: window Lo becomes K+1.
		{"gt-at-maxstop-minus-1", startCmp(expr.CmpGt, 199), 0},
		{"gt-at-maxstop", startCmp(expr.CmpGt, 200), 1},
		// stop <= K: hi's minStart is 500, so 500 keeps it and 499 skips it.
		{"le-at-minstart", stopCmp(expr.CmpLe, 500), 0},
		{"le-below-minstart", stopCmp(expr.CmpLe, 499), 1},
		// stop < K: window Hi becomes K-1.
		{"lt-above-minstart", stopCmp(expr.CmpLt, 501), 0},
		{"lt-at-minstart", stopCmp(expr.CmpLt, 500), 1},
		// Both partitions cleared.
		{"window-between-zones", expr.And{Left: startCmp(expr.CmpGe, 250), Right: stopCmp(expr.CmpLe, 450)}, 2},
		// Absent chromosome.
		{"absent-chrom", chromEq("chrM"), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan := &SelectOp{Input: &Scan{Dataset: "B"}, Region: tc.pred}
			cat := writeColumnarCatalog(t, ds)
			got, root, err := NewSession(Config{Mode: ModeSerial, MetaFirst: true}, cat).EvalProfiled(plan)
			if err != nil {
				t.Fatal(err)
			}
			consulted, skipped, _ := sumSkipped(root)
			if consulted != 2 || skipped != tc.wantSkipped {
				t.Errorf("skipped = %d of %d partitions, want %d of 2", skipped, consulted, tc.wantSkipped)
			}
			want, _, err := NewSession(Config{Mode: ModeSerial, MetaFirst: true, DisablePruning: true},
				writeColumnarCatalog(t, ds)).EvalProfiled(plan)
			if err != nil {
				t.Fatal(err)
			}
			datasetsEquivalent(t, tc.name, want, got)
		})
	}
}

// TestPrunedSelectEquivalenceAllModes: pruned reads must be invisible to
// results under every scheduling mode and fusion setting, on a dataset large
// enough to have partitions worth skipping.
func TestPrunedSelectEquivalenceAllModes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := randomDataset(rng, "R", 6, 40)
	oracle := NewSession(Config{Mode: ModeSerial, MetaFirst: true}, MapCatalog{"R": ds})
	preds := []expr.Node{
		chromEq("chr2"),
		startCmp(expr.CmpGe, 60000),
		expr.And{Left: chromEq("chr1"), Right: stopCmp(expr.CmpLe, 30000)},
	}
	configs := append(allConfigs(),
		Config{Mode: ModeStream, Workers: 3, MetaFirst: true, DisableFusion: true})
	for pi, pred := range preds {
		plan := &SelectOp{Input: &Scan{Dataset: "R"}, Region: pred}
		want, err := oracle.Eval(plan)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range configs {
			for _, noPrune := range []bool{false, true} {
				cfg := cfg
				cfg.DisablePruning = noPrune
				got, err := NewSession(cfg, writeColumnarCatalog(t, ds)).Eval(plan)
				if err != nil {
					t.Fatalf("pred %d %s noprune=%v: %v", pi, cfg.Mode, noPrune, err)
				}
				datasetsEquivalent(t, cfg.Mode.String(), want, got)
			}
		}
	}
}

// TestPrunedJoinDistanceBoundary pins the JOIN distance bound at its exact
// edge: regions [100,200) and [700,800) are exactly 500 apart, so DLE 500
// must keep (and match) both partitions while DLE 499 must skip them — on
// both sides, since the left prunes against the right's manifest stats and
// the right against the materialized left.
func TestPrunedJoinDistanceBoundary(t *testing.T) {
	left := mkDataset(t, "L", mkSample("l", nil, regSpec{"chr1", 100, 200, gdm.StrandNone, 1, "a"}))
	right := mkDataset(t, "R", mkSample("r", nil, regSpec{"chr1", 700, 800, gdm.StrandNone, 2, "b"}))
	mk := func(dist int64) *JoinOp {
		return &JoinOp{
			Left:  &Scan{Dataset: "L"},
			Right: &Scan{Dataset: "R"},
			Args: JoinArgs{
				Pred:   GenometricPred{Conds: []DistCond{{Op: DistLE, Dist: dist}}},
				Output: OutLeft,
			},
		}
	}
	run := func(dist int64, noPrune bool) (*gdm.Dataset, *obs.Span) {
		cfg := Config{Mode: ModeSerial, MetaFirst: true, DisablePruning: noPrune}
		ds, root, err := NewSession(cfg, writeColumnarCatalog(t, left, right)).EvalProfiled(mk(dist))
		if err != nil {
			t.Fatal(err)
		}
		return ds, root
	}

	at, root := run(500, false)
	if _, skipped, _ := sumSkipped(root); skipped != 0 {
		t.Errorf("distance exactly at bound skipped %d partitions", skipped)
	}
	if n := len(at.Samples[0].Regions); n != 1 {
		t.Errorf("at-bound join output %d regions, want 1", n)
	}
	past, root := run(499, false)
	if _, skipped, _ := sumSkipped(root); skipped != 2 {
		t.Errorf("distance past bound skipped %d partitions, want 2 (both sides)", skipped)
	}
	for _, dist := range []int64{499, 500} {
		got, _ := run(dist, false)
		want, _ := run(dist, true)
		datasetsEquivalent(t, "join", want, got)
	}
	if n := len(past.Samples[0].Regions); n != 0 {
		t.Errorf("past-bound join output %d regions, want 0", n)
	}
}

// TestPrunedMapBoundary: an experiment partition exactly adjacent to the
// reference extent ([200,300) against [100,200)) provably overlaps nothing
// under half-open coordinates and must be skipped; one overlapping by a
// single base must be kept. Skipped partitions only remove zero counts, so
// pruned ≡ unpruned.
func TestPrunedMapBoundary(t *testing.T) {
	ref := mkDataset(t, "REF", mkSample("r", nil, regSpec{"chr1", 100, 200, gdm.StrandNone, 0, "g"}))
	exp := mkDataset(t, "EXP",
		mkSample("adj", nil, regSpec{"chr1", 200, 300, gdm.StrandNone, 1, "adj"}),
		mkSample("ovl", nil, regSpec{"chr1", 199, 250, gdm.StrandNone, 2, "ovl"}),
	)
	plan := &MapOp{
		Ref:  &Scan{Dataset: "REF"},
		Exp:  &Scan{Dataset: "EXP"},
		Args: MapArgs{Aggs: countAgg()},
	}
	got, root, err := NewSession(Config{Mode: ModeSerial, MetaFirst: true},
		writeColumnarCatalog(t, ref, exp)).EvalProfiled(plan)
	if err != nil {
		t.Fatal(err)
	}
	consulted, skipped, _ := sumSkipped(root)
	if consulted != 2 || skipped != 1 {
		t.Errorf("map skipped %d of %d partitions, want 1 of 2", skipped, consulted)
	}
	want, _, err := NewSession(Config{Mode: ModeSerial, MetaFirst: true, DisablePruning: true},
		writeColumnarCatalog(t, ref, exp)).EvalProfiled(plan)
	if err != nil {
		t.Fatal(err)
	}
	datasetsEquivalent(t, "map", want, got)
	if !strings.Contains(root.Render(), "skipped=") {
		t.Errorf("profile missing skipped accounting:\n%s", root.Render())
	}
}

// TestPrunedScanNotCached: a pruned scan result is a query-specific subset
// and must never enter the plan-node cache — re-evaluating the same Scan node
// in full afterwards has to see every region.
func TestPrunedScanNotCached(t *testing.T) {
	ds := boundaryDataset(t)
	scan := &Scan{Dataset: "B"}
	sess := NewSession(Config{Mode: ModeSerial, MetaFirst: true}, writeColumnarCatalog(t, ds))
	restricted := &SelectOp{Input: scan, Region: startCmp(expr.CmpGe, 450)}
	first, root, err := sess.EvalProfiled(restricted)
	if err != nil {
		t.Fatal(err)
	}
	if _, skipped, _ := sumSkipped(root); skipped != 1 {
		t.Fatalf("restricted select skipped %d partitions, want 1", skipped)
	}
	if n := regionCount(first); n != 1 {
		t.Fatalf("restricted select returned %d regions, want 1", n)
	}
	// The same Scan node, evaluated in full by the same session, must not see
	// the pruned subset.
	full, err := sess.Eval(scan)
	if err != nil {
		t.Fatal(err)
	}
	if n := regionCount(full); n != 2 {
		t.Errorf("full scan after pruned select returned %d regions, want 2", n)
	}
}

func regionCount(ds *gdm.Dataset) int {
	n := 0
	for _, s := range ds.Samples {
		n += len(s.Regions)
	}
	return n
}
