package engine

import (
	"math/rand"
	"testing"

	"genogo/internal/expr"
	"genogo/internal/gdm"
)

// peakSchema is the test schema: one float score, one string name.
func peakSchema() *gdm.Schema {
	return gdm.MustSchema(
		gdm.Field{Name: "score", Type: gdm.KindFloat},
		gdm.Field{Name: "name", Type: gdm.KindString},
	)
}

// mkSample builds a sorted sample from (chrom,start,stop,strand,score,name)
// tuples.
type regSpec struct {
	chrom       string
	start, stop int64
	strand      gdm.Strand
	score       float64
	name        string
}

func mkSample(id string, meta map[string]string, specs ...regSpec) *gdm.Sample {
	s := gdm.NewSample(id)
	for k, v := range meta {
		s.Meta.Add(k, v)
	}
	for _, sp := range specs {
		s.AddRegion(gdm.NewRegion(sp.chrom, sp.start, sp.stop, sp.strand,
			gdm.Float(sp.score), gdm.Str(sp.name)))
	}
	s.SortRegions()
	return s
}

func mkDataset(t *testing.T, name string, samples ...*gdm.Sample) *gdm.Dataset {
	t.Helper()
	ds := gdm.NewDataset(name, peakSchema())
	for _, s := range samples {
		if err := ds.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

// randomDataset builds a reproducible random dataset for property and
// mode-equivalence tests.
func randomDataset(rng *rand.Rand, name string, nSamples, regionsPerSample int) *gdm.Dataset {
	ds := gdm.NewDataset(name, peakSchema())
	chroms := []string{"chr1", "chr2", "chr3", "chrX"}
	cells := []string{"HeLa", "K562", "GM12878"}
	types := []string{"ChipSeq", "RnaSeq", "DnaseSeq"}
	for i := 0; i < nSamples; i++ {
		s := gdm.NewSample(name + "-s" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
		s.Meta.Add("cell", cells[rng.Intn(len(cells))])
		s.Meta.Add("dataType", types[rng.Intn(len(types))])
		s.Meta.Add("replicate", string(rune('1'+rng.Intn(3))))
		for j := 0; j < regionsPerSample; j++ {
			start := rng.Int63n(100000)
			s.AddRegion(gdm.NewRegion(
				chroms[rng.Intn(len(chroms))], start, start+1+rng.Int63n(2000),
				gdm.Strand(rng.Intn(3)-1),
				gdm.Float(rng.Float64()*10), gdm.Str("r")))
		}
		s.SortRegions()
		ds.MustAdd(s)
	}
	return ds
}

// allConfigs returns one config per backend, all with small worker counts to
// shake out concurrency bugs under the race detector.
func allConfigs() []Config {
	return []Config{
		{Mode: ModeSerial, MetaFirst: true},
		{Mode: ModeBatch, Workers: 3, MetaFirst: true},
		{Mode: ModeStream, Workers: 3, MetaFirst: true},
		{Mode: ModeStream, Workers: 3, MetaFirst: true, BinWidth: 5000},
	}
}

// datasetsEquivalent fails the test when the datasets differ in schema,
// sample IDs, metadata or regions. Samples are compared after sorting by ID,
// so backend-dependent ordering does not matter.
func datasetsEquivalent(t *testing.T, label string, want, got *gdm.Dataset) {
	t.Helper()
	if !want.Schema.Equal(got.Schema) {
		t.Fatalf("%s: schemas differ: %s vs %s", label, want.Schema, got.Schema)
	}
	a, b := want.Clone(), got.Clone()
	a.SortRegions()
	b.SortRegions()
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("%s: sample counts: %d vs %d", label, len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		sa, sb := a.Samples[i], b.Samples[i]
		if sa.ID != sb.ID {
			t.Fatalf("%s: sample %d ID: %q vs %q", label, i, sa.ID, sb.ID)
		}
		pa, pb := sa.Meta.Pairs(), sb.Meta.Pairs()
		if len(pa) != len(pb) {
			t.Fatalf("%s: sample %s meta: %v vs %v", label, sa.ID, pa, pb)
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("%s: sample %s meta pair %d: %v vs %v", label, sa.ID, j, pa[j], pb[j])
			}
		}
		if len(sa.Regions) != len(sb.Regions) {
			t.Fatalf("%s: sample %s regions: %d vs %d", label, sa.ID, len(sa.Regions), len(sb.Regions))
		}
		for j := range sa.Regions {
			if sa.Regions[j].String() != sb.Regions[j].String() {
				t.Fatalf("%s: sample %s region %d: %q vs %q",
					label, sa.ID, j, sa.Regions[j], sb.Regions[j])
			}
		}
	}
}

func countAgg() []expr.Aggregate {
	return []expr.Aggregate{{Output: "count", Func: expr.AggCount}}
}
