package resilience

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func chaosServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "0123456789abcdef")
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestChaosDeterministicSchedule(t *testing.T) {
	ts := chaosServer(t)
	run := func() []bool {
		tr := &ChaosTransport{Seed: 42, ErrorRate: 0.3}
		client := &http.Client{Transport: tr}
		var outcomes []bool
		for i := 0; i < 20; i++ {
			resp, err := client.Get(ts.URL)
			if err != nil {
				t.Fatal(err)
			}
			outcomes = append(outcomes, resp.StatusCode == http.StatusOK)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return outcomes
	}
	a, b := run(), run()
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at request %d", i)
		}
		if !a[i] {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("30% error rate injected nothing in 20 requests")
	}
}

func TestChaosDropInjectsConnectionError(t *testing.T) {
	ts := chaosServer(t)
	client := &http.Client{Transport: &ChaosTransport{Seed: 1, DropRate: 1}}
	_, err := client.Get(ts.URL)
	if err == nil {
		t.Fatal("drop rate 1 returned a response")
	}
	if !Retryable(err) {
		t.Fatalf("injected connection error classified permanent: %v", err)
	}
}

func TestChaosLatencyHonorsDeadline(t *testing.T) {
	ts := chaosServer(t)
	tr := &ChaosTransport{Seed: 1, LatencyRate: 1, Latency: 10 * time.Second}
	client := &http.Client{Transport: tr}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("hung request returned")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not fire: waited %v", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestChaosTruncation(t *testing.T) {
	ts := chaosServer(t)
	client := &http.Client{Transport: &ChaosTransport{Seed: 1, TruncateRate: 1}}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "01234567" {
		t.Fatalf("body = %q", body)
	}
}

func TestChaosPassthrough(t *testing.T) {
	ts := chaosServer(t)
	tr := &ChaosTransport{Seed: 1}
	client := &http.Client{Transport: tr}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.HasPrefix(string(body), "0123") || tr.Faults() != 0 {
		t.Fatalf("passthrough corrupted: body=%q faults=%d", body, tr.Faults())
	}
}
