package resilience

import (
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Disk fault classes DiskFaultInjector can inject. Each one simulates damage
// a real storage stack produces: media bit rot, a crash mid-write, a crash
// between the two renames of an atomic directory swap, file loss, and an
// out-of-date manifest.
const (
	DiskFaultBitFlip       = "bit_flip"
	DiskFaultTruncate      = "truncate"
	DiskFaultTornRename    = "torn_rename"
	DiskFaultMissingFile   = "missing_file"
	DiskFaultStaleManifest = "stale_manifest"
)

// AllDiskFaults lists every fault class, in a stable order.
var AllDiskFaults = []string{
	DiskFaultBitFlip, DiskFaultTruncate, DiskFaultTornRename,
	DiskFaultMissingFile, DiskFaultStaleManifest,
}

// DiskFaultInjector deterministically damages native dataset directories for
// chaos tests, the ChaosTransport of the storage layer: one seeded source
// drives every choice (which fault, which file, which byte), so a given
// (seed, call sequence) pair always produces the same damage. Destructive
// classes target sample files rather than schema.txt, keeping injected
// damage within what gmqlfsck can repair; schema damage is exercised by
// aiming InjectFile at it explicitly.
type DiskFaultInjector struct {
	// Seed fixes the damage schedule; 0 seeds from 1.
	Seed int64

	mu       sync.Mutex
	rng      *rand.Rand
	injected []string
}

// Faults returns the fault classes injected so far, in order.
func (d *DiskFaultInjector) Faults() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, len(d.injected))
	copy(out, d.injected)
	return out
}

func (d *DiskFaultInjector) record(class string) {
	d.injected = append(d.injected, class)
	metricDiskFaults.With(class).Inc()
}

// rand returns the seeded source, initializing it on first use. Callers hold
// d.mu.
func (d *DiskFaultInjector) rand() *rand.Rand {
	if d.rng == nil {
		seed := d.Seed
		if seed == 0 {
			seed = 1
		}
		d.rng = rand.New(rand.NewSource(seed))
	}
	return d.rng
}

// Inject damages the dataset directory with one randomly chosen fault class
// and reports which. It fails only on I/O errors, not on fault application:
// every class is applicable to any well-formed dataset directory.
func (d *DiskFaultInjector) Inject(dir string) (string, error) {
	d.mu.Lock()
	class := AllDiskFaults[d.rand().Intn(len(AllDiskFaults))]
	d.mu.Unlock()
	return class, d.InjectClass(dir, class)
}

// InjectClass damages the dataset directory with the given fault class.
func (d *DiskFaultInjector) InjectClass(dir, class string) error {
	switch class {
	case DiskFaultTornRename:
		return d.injectTornRename(dir)
	case DiskFaultStaleManifest:
		return d.injectStaleManifest(dir)
	case DiskFaultMissingFile:
		target, err := d.pickSampleFile(dir, false)
		if err != nil {
			return err
		}
		d.mu.Lock()
		d.record(class)
		d.mu.Unlock()
		return os.Remove(target)
	case DiskFaultBitFlip, DiskFaultTruncate:
		target, err := d.pickSampleFile(dir, false)
		if err != nil {
			return err
		}
		return d.InjectFile(target, class)
	default:
		return fmt.Errorf("diskfault: unknown class %q", class)
	}
}

// InjectFile applies a content-level fault class (bit_flip or truncate) to
// one specific file.
func (d *DiskFaultInjector) InjectFile(path, class string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("diskfault: %s is empty", path)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	rng := d.rand()
	switch class {
	case DiskFaultBitFlip:
		i := rng.Intn(len(data))
		data[i] ^= 1 << uint(rng.Intn(8))
	case DiskFaultTruncate:
		// Keep at least one byte gone, at least zero kept: a crash tore the
		// tail off mid-write.
		data = data[:rng.Intn(len(data))]
	default:
		return fmt.Errorf("diskfault: class %q is not file-level", class)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	d.record(class)
	return nil
}

// InjectFileAt applies a content-level fault at one specific byte offset —
// chaos aimed where a binary format is most sensitive. The caller supplies
// the offsets that matter (e.g. a columnar file's section boundaries from
// formats.ColumnarSectionOffsets); bit_flip flips one bit of the byte at off,
// truncate cuts the file to exactly off bytes.
func (d *DiskFaultInjector) InjectFileAt(path, class string, off int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if off < 0 || off >= int64(len(data)) {
		return fmt.Errorf("diskfault: offset %d outside %s (%d bytes)", off, path, len(data))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	switch class {
	case DiskFaultBitFlip:
		data[off] ^= 1 << uint(d.rand().Intn(8))
	case DiskFaultTruncate:
		data = data[:off]
	default:
		return fmt.Errorf("diskfault: class %q is not file-level", class)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	d.record(class)
	return nil
}

// injectTornRename simulates a crash between the two renames of the atomic
// directory swap: the live directory vanishes and only the ".<name>.old"
// sibling remains.
func (d *DiskFaultInjector) injectTornRename(dir string) error {
	dir = filepath.Clean(dir)
	old := filepath.Join(filepath.Dir(dir), "."+filepath.Base(dir)+".old")
	if err := os.Rename(dir, old); err != nil {
		return err
	}
	d.mu.Lock()
	d.record(DiskFaultTornRename)
	d.mu.Unlock()
	return nil
}

// injectStaleManifest rewrites one sample file with an extra trailing
// comment line (footer recomputed, so the file is self-consistent) without
// touching the manifest — the manifest now describes a file that no longer
// exists in that form.
func (d *DiskFaultInjector) injectStaleManifest(dir string) error {
	// Only text files carry the footer this injection rewrites; columnar
	// datasets still expose their .gdm.meta files to it.
	target, err := d.pickSampleFile(dir, true)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(target)
	if err != nil {
		return err
	}
	// Drop the existing footer, append a comment line, and recompute a fresh
	// footer over the new payload: the file verifies on its own, only the
	// manifest can tell it is not the file the materialization promised.
	lines := strings.Split(string(data), "\n")
	var kept []string
	for _, ln := range lines {
		if strings.HasPrefix(ln, "#gdmsum\t") || ln == "" {
			continue
		}
		kept = append(kept, ln)
	}
	kept = append(kept, "# diskfault: stale-manifest injection")
	payload := []byte(strings.Join(kept, "\n") + "\n")
	sum := crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli))
	footer := fmt.Sprintf("#gdmsum\tcrc32c:%08x\tbytes:%d\n", sum, len(payload))
	if err := os.WriteFile(target, append(payload, footer...), 0o644); err != nil {
		return err
	}
	d.mu.Lock()
	d.record(DiskFaultStaleManifest)
	d.mu.Unlock()
	return nil
}

// pickSampleFile chooses one sample region or metadata file from dir,
// deterministically under the seed. textOnly restricts the choice to
// footer-carrying text files (region/metadata text, not binary .gdmc).
func (d *DiskFaultInjector) pickSampleFile(dir string, textOnly bool) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var files []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || strings.HasPrefix(n, ".") {
			continue
		}
		if strings.HasSuffix(n, ".gdm") || strings.HasSuffix(n, ".gdm.meta") ||
			(!textOnly && strings.HasSuffix(n, ".gdmc")) {
			files = append(files, n)
		}
	}
	if len(files) == 0 {
		return "", fmt.Errorf("diskfault: no sample files in %s", dir)
	}
	sort.Strings(files)
	d.mu.Lock()
	pick := files[d.rand().Intn(len(files))]
	d.mu.Unlock()
	return filepath.Join(dir, pick), nil
}
