package resilience

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Defaults for Retrier fields left at their zero values.
const (
	DefaultBaseDelay = 50 * time.Millisecond
	DefaultMaxDelay  = 2 * time.Second
)

// Budget caps how many retries a group of callers may spend, so a
// fleet-wide degradation produces a bounded burst of extra load instead of
// a retry storm. Successful first attempts slowly refill the budget.
type Budget struct {
	mu     sync.Mutex
	tenths int // tokens, stored in tenths to keep the slow refill exact
	max    int
}

// NewBudget returns a full budget of n retry tokens.
func NewBudget(n int) *Budget {
	if n < 0 {
		n = 0
	}
	return &Budget{tenths: 10 * n, max: 10 * n}
}

// Take consumes one retry token, reporting whether one was available.
func (b *Budget) Take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tenths < 10 {
		return false
	}
	b.tenths -= 10
	return true
}

// Credit refills a tenth of a token, called after a success that needed no
// retry. The slow refill keeps a recovering system from immediately
// re-earning a full storm's worth of retries.
func (b *Budget) Credit() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tenths++
	if b.tenths > b.max {
		b.tenths = b.max
	}
}

// Remaining reports the whole tokens left (for tests and monitoring).
func (b *Budget) Remaining() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tenths / 10
}

// Retrier retries transient failures with capped exponential backoff and
// jitter. The zero value performs exactly one attempt (no retries), so a
// nil or zero Retrier is always safe to embed.
type Retrier struct {
	// MaxAttempts bounds the total number of attempts, including the
	// first; values <= 1 mean no retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles each
	// further retry. Default DefaultBaseDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Default DefaultMaxDelay.
	MaxDelay time.Duration
	// Jitter is the fraction of each delay that is randomized, in [0, 1]:
	// the effective delay is d*(1-Jitter) + rand*d*Jitter. Zero means a
	// deterministic schedule.
	Jitter float64
	// Seed makes the jitter deterministic for tests; 0 seeds from 1.
	Seed int64
	// Budget optionally shares retry tokens across several retriers.
	Budget *Budget
	// Classify decides whether an error is worth retrying.
	// Default Retryable.
	Classify func(error) bool
	// Sleep waits between attempts; tests inject it to run instantly.
	// The default honors ctx cancellation.
	Sleep func(ctx context.Context, d time.Duration) error

	mu  sync.Mutex
	rng *rand.Rand
}

// Backoff returns the planned delay before retry number retry (0-based),
// before jitter. Exported so tests and docs can assert the schedule.
func (r *Retrier) Backoff(retry int) time.Duration {
	base := r.BaseDelay
	if base <= 0 {
		base = DefaultBaseDelay
	}
	cap := r.MaxDelay
	if cap <= 0 {
		cap = DefaultMaxDelay
	}
	d := base
	for i := 0; i < retry; i++ {
		d *= 2
		if d >= cap {
			return cap
		}
	}
	if d > cap {
		d = cap
	}
	return d
}

// jittered applies the configured jitter to a planned delay.
func (r *Retrier) jittered(d time.Duration) time.Duration {
	if r.Jitter <= 0 || d <= 0 {
		return d
	}
	j := r.Jitter
	if j > 1 {
		j = 1
	}
	r.mu.Lock()
	if r.rng == nil {
		seed := r.Seed
		if seed == 0 {
			seed = 1
		}
		r.rng = rand.New(rand.NewSource(seed))
	}
	f := r.rng.Float64()
	r.mu.Unlock()
	fixed := float64(d) * (1 - j)
	return time.Duration(fixed + f*float64(d)*j)
}

// retryAfterHint extracts a server-provided backoff hint from an attempt's
// error chain (zero when there is none).
func retryAfterHint(err error) time.Duration {
	var h RetryAfterHinter
	if errors.As(err, &h) {
		return h.RetryAfterHint()
	}
	return 0
}

func (r *Retrier) sleep(ctx context.Context, d time.Duration) error {
	if r.Sleep != nil {
		return r.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs op, retrying transient failures until an attempt succeeds, the
// attempt limit or retry budget is exhausted, or ctx expires. It returns
// the last attempt's error.
func (r *Retrier) Do(ctx context.Context, op func(ctx context.Context) error) error {
	if r == nil {
		return op(ctx)
	}
	classify := r.Classify
	if classify == nil {
		classify = Retryable
	}
	attempts := r.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			metricRetries.Inc()
		}
		if cerr := ctx.Err(); cerr != nil {
			if err != nil {
				return err
			}
			return cerr
		}
		err = op(ctx)
		if err == nil {
			if attempt == 0 && r.Budget != nil {
				r.Budget.Credit()
			}
			return nil
		}
		if attempt == attempts-1 || !classify(err) {
			return err
		}
		if r.Budget != nil && !r.Budget.Take() {
			return err
		}
		delay := r.jittered(r.Backoff(attempt))
		if hint := retryAfterHint(err); hint > 0 {
			// The server said when it wants to hear from us again (a shed
			// response's Retry-After); its word beats our schedule, capped so
			// a hostile or confused hint cannot park the caller forever.
			cap := r.MaxDelay
			if cap <= 0 {
				cap = DefaultMaxDelay
			}
			if hint > cap {
				hint = cap
			}
			delay = hint
		}
		if serr := r.sleep(ctx, delay); serr != nil {
			return err
		}
	}
	return err
}
