package resilience

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func outageServer(t *testing.T, o *Outage) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(o.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "ok")
	})))
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, url string) error {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.ReadAll(resp.Body)
	return err
}

func TestOutageKillRestart(t *testing.T) {
	o := NewOutage()
	ts := outageServer(t, o)

	if err := get(t, ts.URL); err != nil {
		t.Fatalf("healthy member: %v", err)
	}
	o.Kill()
	if !o.Down() {
		t.Fatal("Kill did not take the member down")
	}
	if err := get(t, ts.URL); err == nil {
		t.Fatal("request to a killed member succeeded")
	}
	o.Restart()
	if err := get(t, ts.URL); err != nil {
		t.Fatalf("restarted member: %v", err)
	}
}

func TestOutageKillFuse(t *testing.T) {
	o := NewOutage()
	ts := outageServer(t, o)

	o.KillAfter(3)
	for i := 0; i < 2; i++ {
		if err := get(t, ts.URL); err != nil {
			t.Fatalf("request %d before the fuse: %v", i+1, err)
		}
	}
	// The third request trips the fuse: it dies with the member.
	if err := get(t, ts.URL); err == nil {
		t.Fatal("fuse-tripping request succeeded")
	}
	if !o.Down() {
		t.Fatal("kill fuse did not take the member down")
	}
	if err := get(t, ts.URL); err == nil {
		t.Fatal("request after the kill succeeded")
	}

	// Two rejected retries, then the third finds the member restarted.
	o.RestartAfter(3)
	for i := 0; i < 2; i++ {
		if err := get(t, ts.URL); err == nil {
			t.Fatalf("request %d while down succeeded", i+1)
		}
	}
	if err := get(t, ts.URL); err != nil {
		t.Fatalf("restart-fuse request: %v", err)
	}
	if o.Down() {
		t.Fatal("restart fuse did not bring the member back")
	}
	if o.Begun() != 8 {
		t.Fatalf("Begun = %d, want 8", o.Begun())
	}
}
