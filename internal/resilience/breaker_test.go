package resilience

import (
	"errors"
	"io"
	"testing"
	"time"
)

// clock is an injectable test clock.
type clock struct{ t time.Time }

func (c *clock) now() time.Time          { return c.t }
func (c *clock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newBreaker(c *clock, threshold int) *Breaker {
	return &Breaker{FailureThreshold: threshold, Cooldown: time.Second, Now: c.now}
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	c := &clock{t: time.Unix(0, 0)}
	b := newBreaker(c, 3)
	fail := io.ErrUnexpectedEOF
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected request %d: %v", i, err)
		}
		b.Report(fail)
		if b.State() != Closed {
			t.Fatalf("opened after %d failures", i+1)
		}
	}
	b.Report(fail)
	if b.State() != Open {
		t.Fatalf("state after threshold = %v", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker admitted a request: %v", err)
	}
}

func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	c := &clock{t: time.Unix(0, 0)}
	b := newBreaker(c, 1)
	b.Report(io.ErrUnexpectedEOF)
	if b.State() != Open {
		t.Fatal("not open")
	}
	c.advance(time.Second)
	if b.State() != HalfOpen {
		t.Fatalf("after cooldown state = %v", b.State())
	}
	// One probe admitted; concurrent requests still rejected.
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second in-flight probe admitted: %v", err)
	}
	b.Report(nil)
	if b.State() != Closed {
		t.Fatalf("successful probe left state %v", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker rejected: %v", err)
	}
}

func TestBreakerHalfOpenProbeReopens(t *testing.T) {
	c := &clock{t: time.Unix(0, 0)}
	b := newBreaker(c, 1)
	b.Report(io.ErrUnexpectedEOF)
	c.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.Report(io.ErrUnexpectedEOF)
	if b.State() != Open {
		t.Fatalf("failed probe left state %v", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("re-opened breaker admitted a request")
	}
	// A fresh cooldown applies after re-opening.
	c.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.Report(nil)
	if b.State() != Closed {
		t.Fatal("recovery failed")
	}
}

func TestBreakerIgnoresCallerErrors(t *testing.T) {
	c := &clock{t: time.Unix(0, 0)}
	b := newBreaker(c, 1)
	// 4xx and parse errors must never trip the breaker.
	for i := 0; i < 10; i++ {
		b.Report(&StatusError{Code: 404, Status: "404 Not Found"})
		b.Report(errors.New("parse error"))
	}
	if b.State() != Closed {
		t.Fatalf("caller errors tripped breaker: %v", b.State())
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	c := &clock{t: time.Unix(0, 0)}
	b := newBreaker(c, 3)
	b.Report(io.ErrUnexpectedEOF)
	b.Report(io.ErrUnexpectedEOF)
	b.Report(nil)
	b.Report(io.ErrUnexpectedEOF)
	b.Report(io.ErrUnexpectedEOF)
	if b.State() != Closed {
		t.Fatal("non-consecutive failures tripped breaker")
	}
	b.Report(io.ErrUnexpectedEOF)
	if b.State() != Open {
		t.Fatal("three consecutive failures did not trip breaker")
	}
}

func TestNilBreakerAlwaysAllows(t *testing.T) {
	var b *Breaker
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Report(io.ErrUnexpectedEOF)
	if b.State() != Closed {
		t.Fatal("nil breaker has state")
	}
}
