// Package resilience provides the fault-tolerance primitives the federated
// and Internet-of-Genomes paths are built on: retry with exponential backoff
// and jitter (Retrier), retry budgets that prevent retry storms (Budget),
// per-endpoint circuit breakers (Breaker), and a deterministic
// fault-injection transport for chaos testing (ChaosTransport).
//
// The paper's Sections 4.4-4.5 place query processing across many
// independently operated nodes, where slow, flaky, and dead hosts are the
// norm. These primitives give every network caller the same vocabulary for
// coping: classify the failure, retry the transient ones under a budget,
// stop hammering endpoints that are down, and bound every wait with a
// context deadline.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"time"
)

// StatusError reports an HTTP response that arrived intact but carried a
// non-success status. Keeping the code lets the retry classifier separate
// server-side transients (5xx, 429) from caller errors (4xx).
type StatusError struct {
	Code   int
	Status string
	Body   string
	// RetryAfter is the server's Retry-After hint on shed responses
	// (429/503): how long it asked the caller to wait before trying again.
	// Zero means the response carried no hint.
	RetryAfter time.Duration
}

// Error implements error.
func (e *StatusError) Error() string {
	if e.Body != "" {
		return fmt.Sprintf("%s: %s", e.Status, e.Body)
	}
	return e.Status
}

// RetryAfterHint implements RetryAfterHinter.
func (e *StatusError) RetryAfterHint() time.Duration { return e.RetryAfter }

// RetryAfterHinter is implemented by errors carrying a server-provided
// backoff hint (HTTP Retry-After). The Retrier honors the hint, capped at
// its MaxDelay, instead of its own backoff schedule for that attempt.
type RetryAfterHinter interface {
	RetryAfterHint() time.Duration
}

// Retryable classifies an error as transient (worth retrying) or permanent.
//
//   - context cancellation and deadline expiry are permanent: the caller
//     gave up, retrying works against it;
//   - HTTP 5xx and 429 are transient, other statuses permanent;
//   - transport-level failures (connection refused/reset, timeouts,
//     unexpected EOF) are transient;
//   - everything else — parse errors, protocol violations — is permanent:
//     the bytes arrived fine and would arrive the same way again.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code >= 500 || se.Code == http.StatusTooManyRequests
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	var ue *url.Error
	if errors.As(err, &ue) {
		// A *url.Error that is not a context error wraps a transport
		// failure: the request never produced a usable response.
		return true
	}
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return true
	}
	return false
}
