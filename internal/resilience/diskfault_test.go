package resilience

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"genogo/internal/formats"
	"genogo/internal/gdm"
)

func faultTestDataset(t *testing.T) (string, string) {
	t.Helper()
	parent := t.TempDir()
	dir := filepath.Join(parent, "DS")
	schema := gdm.MustSchema(gdm.Field{Name: "score", Type: gdm.KindFloat})
	ds := gdm.NewDataset("DS", schema)
	for _, id := range []string{"s1", "s2"} {
		s := gdm.NewSample(id)
		s.Meta.Add("origin", "chaos-test")
		s.AddRegion(gdm.NewRegion("chr1", 10, 20, gdm.StrandPlus, gdm.Float(1)))
		if err := ds.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := formats.WriteDataset(dir, ds); err != nil {
		t.Fatal(err)
	}
	return parent, dir
}

// TestDiskFaultDeterministic: one seed, one damage schedule — byte for byte.
func TestDiskFaultDeterministic(t *testing.T) {
	run := func() ([]string, map[string][]byte) {
		_, dir := faultTestDataset(t)
		inj := &DiskFaultInjector{Seed: 7}
		for i := 0; i < 4; i++ {
			if _, err := inj.Inject(dir); err != nil {
				t.Fatal(err)
			}
			if _, err := os.Stat(dir); os.IsNotExist(err) {
				// A torn rename removed the directory; put it back so the
				// next injection has a target, as the fsck campaign does.
				old := filepath.Join(filepath.Dir(dir), "."+filepath.Base(dir)+".old")
				if err := os.Rename(old, dir); err != nil {
					t.Fatal(err)
				}
			}
		}
		state := make(map[string][]byte)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			state[e.Name()] = data
		}
		return inj.Faults(), state
	}
	f1, s1 := run()
	f2, s2 := run()
	if !reflect.DeepEqual(f1, f2) {
		t.Fatalf("fault schedules differ: %v vs %v", f1, f2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("identical seeds left different on-disk damage")
	}
}

// TestDiskFaultClasses: every class produces its advertised damage, all of
// it detected by the verified read path.
func TestDiskFaultClasses(t *testing.T) {
	for _, class := range AllDiskFaults {
		t.Run(class, func(t *testing.T) {
			_, dir := faultTestDataset(t)
			inj := &DiskFaultInjector{Seed: 11}
			if err := inj.InjectClass(dir, class); err != nil {
				t.Fatal(err)
			}
			if got := inj.Faults(); len(got) != 1 || got[0] != class {
				t.Fatalf("Faults() = %v", got)
			}
			switch class {
			case DiskFaultTornRename:
				if _, err := os.Stat(dir); !os.IsNotExist(err) {
					t.Fatal("dataset directory still present after torn rename")
				}
				old := filepath.Join(filepath.Dir(dir), ".DS.old")
				if _, err := os.Stat(old); err != nil {
					t.Fatalf(".old sibling missing: %v", err)
				}
			case DiskFaultMissingFile:
				// One sample file is gone.
			}
			// Whatever the class, the strict verified read must refuse the
			// damage — zero silent wrong-result loads.
			if _, err := formats.ReadDataset(dir); err == nil {
				t.Fatalf("strict read succeeded on %s damage", class)
			}
		})
	}
}

// TestDiskFaultTargetsSampleFilesOnly: destructive classes never hit
// schema.txt or the manifest, keeping injected damage within what gmqlfsck
// repairs automatically.
func TestDiskFaultTargetsSampleFilesOnly(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		_, dir := faultTestDataset(t)
		before := map[string][]byte{}
		for _, f := range []string{"schema.txt", "manifest.json"} {
			data, err := os.ReadFile(filepath.Join(dir, f))
			if err != nil {
				t.Fatal(err)
			}
			before[f] = data
		}
		inj := &DiskFaultInjector{Seed: seed}
		for _, class := range []string{DiskFaultBitFlip, DiskFaultTruncate, DiskFaultStaleManifest} {
			if err := inj.InjectClass(dir, class); err != nil {
				t.Fatal(err)
			}
		}
		for f, want := range before {
			got, err := os.ReadFile(filepath.Join(dir, f))
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Errorf("seed %d: %s was modified by sample-level fault classes", seed, f)
			}
		}
	}
}

// TestDiskFaultErrors: unknown classes and misuse are errors, not silent
// no-ops.
func TestDiskFaultErrors(t *testing.T) {
	_, dir := faultTestDataset(t)
	inj := &DiskFaultInjector{Seed: 1}
	if err := inj.InjectClass(dir, "meteor_strike"); err == nil {
		t.Error("unknown fault class accepted")
	}
	if err := inj.InjectFile(filepath.Join(dir, "schema.txt"), DiskFaultTornRename); err == nil {
		t.Error("directory-level class accepted by InjectFile")
	}
	if err := inj.InjectClass(t.TempDir(), DiskFaultBitFlip); err == nil {
		t.Error("empty directory accepted for a file-level fault")
	}
}

// TestDiskFaultColumnar: every fault class applies to a columnar dataset
// directory too, and the strict verified read refuses the damage. The
// stale-manifest class, which rewrites text footers, must keep picking the
// .gdm.meta files rather than binary .gdmc ones.
func TestDiskFaultColumnar(t *testing.T) {
	writeColumnar := func(t *testing.T) (string, string) {
		t.Helper()
		parent := t.TempDir()
		dir := filepath.Join(parent, "DS")
		schema := gdm.MustSchema(gdm.Field{Name: "score", Type: gdm.KindFloat})
		ds := gdm.NewDataset("DS", schema)
		for _, id := range []string{"s1", "s2"} {
			s := gdm.NewSample(id)
			s.Meta.Add("origin", "chaos-test")
			s.AddRegion(gdm.NewRegion("chr1", 10, 20, gdm.StrandPlus, gdm.Float(1)))
			if err := ds.Add(s); err != nil {
				t.Fatal(err)
			}
		}
		if err := formats.WriteDatasetColumnar(dir, ds); err != nil {
			t.Fatal(err)
		}
		return parent, dir
	}
	for _, class := range AllDiskFaults {
		t.Run(class, func(t *testing.T) {
			_, dir := writeColumnar(t)
			inj := &DiskFaultInjector{Seed: 3}
			if err := inj.InjectClass(dir, class); err != nil {
				t.Fatal(err)
			}
			if class == DiskFaultStaleManifest {
				// The rewritten file must be a text one: every .gdmc still
				// passes its own structural check.
				entries, err := os.ReadDir(dir)
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range entries {
					if filepath.Ext(e.Name()) != ".gdmc" {
						continue
					}
					path := filepath.Join(dir, e.Name())
					data, err := os.ReadFile(path)
					if err != nil {
						t.Fatal(err)
					}
					if ie := formats.CheckColumnarStructure("DS", path, data); ie != nil {
						t.Fatalf("stale-manifest injection touched binary file %s: %v", e.Name(), ie)
					}
				}
			}
			if _, err := formats.ReadDataset(dir); err == nil {
				t.Fatalf("strict read succeeded on %s damage", class)
			}
		})
	}
}

// TestDiskFaultInjectFileAt: offset-targeted faults land exactly where aimed
// and reject offsets outside the file.
func TestDiskFaultInjectFileAt(t *testing.T) {
	_, dir := faultTestDataset(t)
	path := filepath.Join(dir, "s1.gdm")
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	inj := &DiskFaultInjector{Seed: 5}
	if err := inj.InjectFileAt(path, DiskFaultBitFlip, 3); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range before {
		if before[i] != after[i] {
			if i != 3 {
				t.Fatalf("byte %d changed, aimed at 3", i)
			}
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes changed, want exactly 1", diff)
	}
	if err := inj.InjectFileAt(path, DiskFaultTruncate, 4); err != nil {
		t.Fatal(err)
	}
	if data, _ := os.ReadFile(path); len(data) != 4 {
		t.Fatalf("truncate-at left %d bytes, want 4", len(data))
	}
	if err := inj.InjectFileAt(path, DiskFaultBitFlip, 99); err == nil {
		t.Error("offset past end accepted")
	}
	if err := inj.InjectFileAt(path, DiskFaultBitFlip, -1); err == nil {
		t.Error("negative offset accepted")
	}
	if err := inj.InjectFileAt(path, DiskFaultStaleManifest, 0); err == nil {
		t.Error("non-file-level class accepted")
	}
}
