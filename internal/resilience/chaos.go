package resilience

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ChaosTransport is a deterministic fault-injecting http.RoundTripper for
// chaos tests: with the configured probabilities it injects transient 503
// responses, connection-level errors, extra latency, and truncated bodies.
// All randomness comes from one seeded source, so a given (seed, request
// sequence) pair always injects the same faults.
type ChaosTransport struct {
	// Inner performs the real round trips. Default http.DefaultTransport.
	Inner http.RoundTripper
	// Seed fixes the fault schedule; 0 seeds from 1.
	Seed int64
	// ErrorRate is the probability of answering 503 without calling Inner.
	ErrorRate float64
	// DropRate is the probability of a connection-level error.
	DropRate float64
	// LatencyRate is the probability of delaying a request by Latency.
	// The delay honors the request context, so a deadline still fires.
	LatencyRate float64
	// Latency is the injected delay.
	Latency time.Duration
	// TruncateRate is the probability of delivering only half the body.
	TruncateRate float64

	mu       sync.Mutex
	rng      *rand.Rand
	injected int
}

// Faults reports how many faults have been injected so far.
func (t *ChaosTransport) Faults() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected
}

// roll draws one uniform [0,1) variate from the seeded source.
func (t *ChaosTransport) roll() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rng == nil {
		seed := t.Seed
		if seed == 0 {
			seed = 1
		}
		t.rng = rand.New(rand.NewSource(seed))
	}
	return t.rng.Float64()
}

func (t *ChaosTransport) fault() {
	t.mu.Lock()
	t.injected++
	t.mu.Unlock()
	metricChaosInjections.Inc()
}

// RoundTrip implements http.RoundTripper.
func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.LatencyRate > 0 && t.roll() < t.LatencyRate {
		t.fault()
		timer := time.NewTimer(t.Latency)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	if t.DropRate > 0 && t.roll() < t.DropRate {
		t.fault()
		return nil, fmt.Errorf("chaos: injected connection reset (%s %s)", req.Method, req.URL.Path)
	}
	if t.ErrorRate > 0 && t.roll() < t.ErrorRate {
		t.fault()
		body := "chaos: injected server error"
		return &http.Response{
			Status:        "503 Service Unavailable",
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         req.Proto,
			ProtoMajor:    req.ProtoMajor,
			ProtoMinor:    req.ProtoMinor,
			Header:        http.Header{"Content-Type": []string{"text/plain"}},
			Body:          io.NopCloser(bytes.NewReader([]byte(body))),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	resp, err := inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if t.TruncateRate > 0 && resp.StatusCode == http.StatusOK && t.roll() < t.TruncateRate {
		t.fault()
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		cut := body[:len(body)/2]
		// ContentLength matches the truncated body, so the damage looks
		// like a complete (but corrupt) payload, not a transport error.
		resp.Body = io.NopCloser(bytes.NewReader(cut))
		resp.ContentLength = int64(len(cut))
		resp.Header.Del("Content-Length")
	}
	return resp, err
}
