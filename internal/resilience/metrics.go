package resilience

import "genogo/internal/obs"

// Resilience metrics, registered against the process-wide registry at package
// init so any binary importing the package exports them from /metrics.
var (
	metricRetries = obs.Default().Counter("genogo_resilience_retries_total",
		"Retry attempts performed after a failed first attempt.")
	metricBreakerTransitions = obs.Default().CounterVec("genogo_resilience_breaker_transitions_total",
		"Circuit-breaker state transitions, by destination state.", "to")
	metricChaosInjections = obs.Default().Counter("genogo_resilience_chaos_injections_total",
		"Faults injected by ChaosTransport.")
	metricDiskFaults = obs.Default().CounterVec("genogo_resilience_disk_faults_total",
		"Disk faults injected by DiskFaultInjector, by class.", "class")
)
