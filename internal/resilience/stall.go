package resilience

import (
	"sync"
	"sync/atomic"
	"time"
)

// Staller is the stuck-operator/slow-consumer chaos injector: its Hook blocks
// every engine work item until the injector is released or the governed
// query's cancellation signal fires. Plugged into engine.Config.Stall, it
// makes cancellation-latency bounds deterministically testable — the test
// stalls the operators, cancels the query, and measures how long the workers
// take to observe the kill.
//
// A zero Staller blocks indefinitely (until Release or cancellation); set
// Delay for a slow-consumer flavor that merely delays each item.
type Staller struct {
	// Delay, when positive, turns the injector into a slow consumer: each
	// work item is delayed by Delay (honoring cancellation) instead of
	// blocking until Release.
	Delay time.Duration

	once     sync.Once
	relOnce  sync.Once
	released chan struct{}
	stalled  atomic.Int64
	entered  atomic.Int64
}

func (s *Staller) init() {
	s.once.Do(func() { s.released = make(chan struct{}) })
}

// Hook is the engine stall hook. done is the governed session's cancellation
// signal; a nil done never fires, so an unreleased zero Staller blocks an
// ungoverned session forever — which is the point of the injector.
func (s *Staller) Hook(done <-chan struct{}) {
	s.init()
	s.entered.Add(1)
	metricChaosInjections.Inc()
	s.stalled.Add(1)
	defer s.stalled.Add(-1)
	if s.Delay > 0 {
		timer := time.NewTimer(s.Delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-s.released:
		case <-done:
		}
		return
	}
	select {
	case <-s.released:
	case <-done:
	}
}

// Release unblocks every current and future stalled item. Idempotent.
func (s *Staller) Release() {
	s.init()
	s.relOnce.Do(func() { close(s.released) })
}

// Stalled reports how many work items are blocked in the injector right now.
func (s *Staller) Stalled() int { return int(s.stalled.Load()) }

// Entered reports how many work items have entered the injector in total.
func (s *Staller) Entered() int { return int(s.entered.Load()) }

// WaitStalled blocks until at least n work items are simultaneously stalled
// or the timeout expires, reporting whether the condition was reached. Tests
// use it to cancel a query at a known-stuck moment.
func (s *Staller) WaitStalled(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if s.Stalled() >= n {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return s.Stalled() >= n
}
