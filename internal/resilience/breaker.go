package resilience

import (
	"errors"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState uint8

// Breaker states.
const (
	// Closed: requests flow; failures are counted.
	Closed BreakerState = iota
	// Open: requests are rejected immediately until the cooldown expires.
	Open
	// HalfOpen: one probe request is allowed through; its outcome decides
	// whether the circuit closes again or re-opens.
	HalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// ErrOpen is returned by Breaker.Allow while the circuit is open: the
// endpoint has been failing consistently and is not worth a request.
var ErrOpen = errors.New("resilience: circuit open")

// Breaker is a per-endpoint circuit breaker. After FailureThreshold
// consecutive classified failures the circuit opens: requests fail fast
// with ErrOpen for Cooldown, then a single probe is admitted (half-open);
// a successful probe closes the circuit, a failed one re-opens it.
//
// The zero value is usable with the defaults below. All methods are safe
// for concurrent use.
type Breaker struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// circuit; <= 0 means 5.
	FailureThreshold int
	// Cooldown is how long the circuit stays open before admitting a
	// probe; <= 0 means 5s.
	Cooldown time.Duration
	// Classify decides which errors count as endpoint failures; caller
	// errors (4xx, parse failures) should not trip the breaker.
	// Default Retryable.
	Classify func(error) bool
	// Now is the clock, injectable for tests. Default time.Now.
	Now func() time.Time

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
}

// setState moves the circuit, counting the transition by destination state.
// Callers hold b.mu; a same-state "move" is not a transition.
func (b *Breaker) setState(s BreakerState) {
	if b.state == s {
		return
	}
	b.state = s
	metricBreakerTransitions.With(s.String()).Inc()
}

func (b *Breaker) now() time.Time {
	if b.Now != nil {
		return b.Now()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.FailureThreshold > 0 {
		return b.FailureThreshold
	}
	return 5
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return 5 * time.Second
}

// Allow reports whether a request may proceed, returning ErrOpen when the
// circuit rejects it. A nil return in the half-open state claims the probe
// slot; the caller must follow up with Report.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case Open:
		if b.now().Sub(b.openedAt) < b.cooldown() {
			return ErrOpen
		}
		b.setState(HalfOpen)
		b.probing = true
		return nil
	default: // HalfOpen
		if b.probing {
			return ErrOpen
		}
		b.probing = true
		return nil
	}
}

// Report records a request outcome. Errors the classifier deems permanent
// (caller errors) reset nothing and trip nothing; they are the endpoint
// working as intended.
func (b *Breaker) Report(err error) {
	if b == nil {
		return
	}
	classify := b.Classify
	if classify == nil {
		classify = Retryable
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.setState(Closed)
		b.failures = 0
		b.probing = false
		return
	}
	if !classify(err) {
		if b.state == HalfOpen {
			// A permanent error still proves the endpoint answers.
			b.setState(Closed)
			b.failures = 0
			b.probing = false
		}
		return
	}
	switch b.state {
	case HalfOpen:
		b.setState(Open)
		b.openedAt = b.now()
		b.probing = false
	default:
		b.failures++
		if b.failures >= b.threshold() {
			b.setState(Open)
			b.openedAt = b.now()
		}
	}
}

// State reports the current state, advancing Open to HalfOpen when the
// cooldown has expired (so monitoring sees the same state Allow would).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.now().Sub(b.openedAt) >= b.cooldown() {
		return HalfOpen
	}
	return b.state
}
