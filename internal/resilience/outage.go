package resilience

import (
	"net/http"
	"sync"
)

// Outage is a deterministic member kill/restart injector for chaos tests: it
// wraps an HTTP handler (a whole federation node) and simulates the process
// dying and coming back. While down, every request — including responses
// already in flight — is aborted at the connection level, exactly what a
// client of a killed process observes (connection reset / unexpected EOF),
// so the resilience stack classifies it as transient.
//
// Kills and restarts can fire immediately (Kill/Restart) or on deterministic
// request-count fuses (KillAfter/RestartAfter), which lets a seeded chaos
// campaign schedule "the 3rd request to this member kills it, the 2nd
// request after that finds it restarted" without wall-clock races.
//
// All methods are safe for concurrent use.
type Outage struct {
	mu   sync.Mutex
	down bool
	// killFuse counts down on each begun request while up; reaching zero
	// kills the member, and the triggering request is the first casualty
	// (a mid-query kill from the requester's point of view). -1 is disarmed.
	killFuse int
	// restartFuse counts down on each begun request while down; reaching
	// zero restarts the member and the triggering request is served — the
	// retry that finds the process back. -1 is disarmed.
	restartFuse int
	// begun counts requests that reached the member, for test assertions.
	begun int
}

// NewOutage returns an injector with the member up and both fuses disarmed.
func NewOutage() *Outage {
	return &Outage{killFuse: -1, restartFuse: -1}
}

// Kill takes the member down immediately. In-flight responses abort on
// their next write.
func (o *Outage) Kill() {
	o.mu.Lock()
	o.down = true
	o.killFuse = -1
	o.mu.Unlock()
}

// Restart brings the member back immediately.
func (o *Outage) Restart() {
	o.mu.Lock()
	o.down = false
	o.restartFuse = -1
	o.mu.Unlock()
}

// KillAfter arms the kill fuse: the n-th future request to begin (1-based)
// takes the member down and is itself aborted. n <= 0 disarms.
func (o *Outage) KillAfter(n int) {
	o.mu.Lock()
	if n <= 0 {
		o.killFuse = -1
	} else {
		o.killFuse = n
	}
	o.mu.Unlock()
}

// RestartAfter arms the restart fuse: the n-th request to arrive while the
// member is down (1-based) restarts it and is served normally. n <= 0
// disarms.
func (o *Outage) RestartAfter(n int) {
	o.mu.Lock()
	if n <= 0 {
		o.restartFuse = -1
	} else {
		o.restartFuse = n
	}
	o.mu.Unlock()
}

// Down reports whether the member is currently down.
func (o *Outage) Down() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.down
}

// Begun reports how many requests have reached the member (served, killed,
// or rejected), for test assertions on fuse schedules.
func (o *Outage) Begun() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.begun
}

// begin applies the fuses to one arriving request and reports whether it may
// be served.
func (o *Outage) begin() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.begun++
	if !o.down {
		if o.killFuse > 0 {
			o.killFuse--
			if o.killFuse == 0 {
				o.killFuse = -1
				o.down = true
				return false // the triggering request dies with the member
			}
		}
		return true
	}
	if o.restartFuse > 0 {
		o.restartFuse--
		if o.restartFuse == 0 {
			o.restartFuse = -1
			o.down = false
			return true // the triggering request finds the member back
		}
	}
	return false
}

// Wrap returns h guarded by the outage: requests arriving while the member
// is down (or that trip the kill fuse) abort their connection, and a kill
// that lands mid-response aborts the response at its next write — the
// half-written body a killed process leaves behind.
func (o *Outage) Wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !o.begin() {
			panic(http.ErrAbortHandler)
		}
		h.ServeHTTP(&outageWriter{ResponseWriter: w, o: o}, r)
	})
}

// outageWriter aborts the response as soon as the member dies under it.
type outageWriter struct {
	http.ResponseWriter
	o *Outage
}

func (w *outageWriter) Write(b []byte) (int, error) {
	if w.o.Down() {
		panic(http.ErrAbortHandler)
	}
	return w.ResponseWriter.Write(b)
}

func (w *outageWriter) WriteHeader(status int) {
	if w.o.Down() {
		panic(http.ErrAbortHandler)
	}
	w.ResponseWriter.WriteHeader(status)
}
