package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"
)

func TestBackoffSchedule(t *testing.T) {
	r := &Retrier{BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}
	want := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, 1600 * time.Millisecond,
		2 * time.Second, 2 * time.Second, // capped
	}
	for i, w := range want {
		if got := r.Backoff(i); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestBackoffDefaults(t *testing.T) {
	r := &Retrier{}
	if got := r.Backoff(0); got != DefaultBaseDelay {
		t.Errorf("default base = %v", got)
	}
	if got := r.Backoff(100); got != DefaultMaxDelay {
		t.Errorf("default cap = %v", got)
	}
}

func TestJitterBoundsAndDeterminism(t *testing.T) {
	d := 100 * time.Millisecond
	a := &Retrier{Jitter: 0.5, Seed: 7}
	b := &Retrier{Jitter: 0.5, Seed: 7}
	for i := 0; i < 50; i++ {
		ja, jb := a.jittered(d), b.jittered(d)
		if ja != jb {
			t.Fatalf("same seed diverged: %v vs %v", ja, jb)
		}
		if ja < d/2 || ja > d {
			t.Fatalf("jittered delay %v outside [%v, %v]", ja, d/2, d)
		}
	}
}

// sleepRecorder replaces real sleeping and records the requested delays.
func sleepRecorder(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return nil
	}
}

func TestDoRetriesTransientThenSucceeds(t *testing.T) {
	var delays []time.Duration
	r := &Retrier{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, Sleep: sleepRecorder(&delays)}
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return &StatusError{Code: 503, Status: "503 Service Unavailable"}
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(delays) != len(want) || delays[0] != want[0] || delays[1] != want[1] {
		t.Errorf("delays = %v, want %v", delays, want)
	}
}

func TestDoStopsOnPermanentError(t *testing.T) {
	var delays []time.Duration
	r := &Retrier{MaxAttempts: 5, Sleep: sleepRecorder(&delays)}
	calls := 0
	perm := &StatusError{Code: 404, Status: "404 Not Found"}
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) || calls != 1 || len(delays) != 0 {
		t.Errorf("err=%v calls=%d delays=%v", err, calls, delays)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	var delays []time.Duration
	r := &Retrier{MaxAttempts: 3, Sleep: sleepRecorder(&delays)}
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return io.ErrUnexpectedEOF
	})
	if !errors.Is(err, io.ErrUnexpectedEOF) || calls != 3 || len(delays) != 2 {
		t.Errorf("err=%v calls=%d delays=%v", err, calls, delays)
	}
}

func TestDoHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := &Retrier{MaxAttempts: 10}
	calls := 0
	err := r.Do(ctx, func(context.Context) error {
		calls++
		cancel()
		return io.ErrUnexpectedEOF
	})
	if err == nil || calls != 1 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
}

func TestNilRetrierRunsOnce(t *testing.T) {
	var r *Retrier
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return io.ErrUnexpectedEOF
	})
	if !errors.Is(err, io.ErrUnexpectedEOF) || calls != 1 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
}

func TestBudgetLimitsRetries(t *testing.T) {
	var delays []time.Duration
	budget := NewBudget(3)
	r := &Retrier{MaxAttempts: 10, Budget: budget, Sleep: sleepRecorder(&delays)}
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return io.ErrUnexpectedEOF
	})
	// 1 first attempt + 3 budgeted retries.
	if err == nil || calls != 4 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
	if budget.Remaining() != 0 {
		t.Errorf("remaining = %d", budget.Remaining())
	}
	// Ten clean first attempts credit one whole token back.
	for i := 0; i < 10; i++ {
		if err := r.Do(context.Background(), func(context.Context) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if budget.Remaining() != 1 {
		t.Errorf("after credits remaining = %d", budget.Remaining())
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{fmt.Errorf("wrapped: %w", context.DeadlineExceeded), false},
		{&StatusError{Code: 500, Status: "500"}, true},
		{&StatusError{Code: 503, Status: "503"}, true},
		{&StatusError{Code: http.StatusTooManyRequests, Status: "429"}, true},
		{&StatusError{Code: 404, Status: "404"}, false},
		{&StatusError{Code: 400, Status: "400"}, false},
		{io.ErrUnexpectedEOF, true},
		{io.EOF, true},
		{errors.New("gdm: parse error"), false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestDoHonorsRetryAfterHint(t *testing.T) {
	var delays []time.Duration
	r := &Retrier{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 2 * time.Second, Sleep: sleepRecorder(&delays)}
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		switch calls {
		case 1:
			// A shed response with a hint: the server wants 700ms of quiet,
			// far off the 10ms backoff schedule.
			return &StatusError{Code: 429, Status: "429 Too Many Requests",
				RetryAfter: 700 * time.Millisecond}
		case 2:
			// No hint: the normal backoff schedule resumes (2nd retry = 20ms).
			return &StatusError{Code: 503, Status: "503 Service Unavailable"}
		default:
			return nil
		}
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	want := []time.Duration{700 * time.Millisecond, 20 * time.Millisecond}
	if len(delays) != len(want) || delays[0] != want[0] || delays[1] != want[1] {
		t.Errorf("delays = %v, want %v", delays, want)
	}
}

func TestDoCapsRetryAfterHint(t *testing.T) {
	var delays []time.Duration
	r := &Retrier{MaxAttempts: 2, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 500 * time.Millisecond, Sleep: sleepRecorder(&delays)}
	calls := 0
	_ = r.Do(context.Background(), func(context.Context) error {
		calls++
		if calls == 1 {
			// A hostile hint must not park the caller past MaxDelay.
			return &StatusError{Code: 429, Status: "429 Too Many Requests",
				RetryAfter: time.Hour}
		}
		return nil
	})
	if len(delays) != 1 || delays[0] != 500*time.Millisecond {
		t.Errorf("delays = %v, want [500ms]", delays)
	}
}

func TestDoHintThroughWrappedError(t *testing.T) {
	var delays []time.Duration
	r := &Retrier{MaxAttempts: 2, BaseDelay: 10 * time.Millisecond, Sleep: sleepRecorder(&delays)}
	calls := 0
	_ = r.Do(context.Background(), func(context.Context) error {
		calls++
		if calls == 1 {
			// Clients wrap status errors with request context; the hint must
			// survive the wrapping.
			return fmt.Errorf("POST /query: %w",
				&StatusError{Code: 503, Status: "503", RetryAfter: 200 * time.Millisecond})
		}
		return nil
	})
	if len(delays) != 1 || delays[0] != 200*time.Millisecond {
		t.Errorf("delays = %v, want [200ms]", delays)
	}
}
