package stats

import (
	"math"
	"testing"
)

func TestHypergeometricPMFExact(t *testing.T) {
	// Classic urn: N=10, K=4 successes, draw n=3.
	// P[X=0] = C(4,0)C(6,3)/C(10,3) = 20/120
	// P[X=1] = C(4,1)C(6,2)/C(10,3) = 60/120
	// P[X=2] = C(4,2)C(6,1)/C(10,3) = 36/120
	// P[X=3] = C(4,3)C(6,0)/C(10,3) = 4/120
	cases := []struct {
		k    int
		want float64
	}{
		{0, 20.0 / 120}, {1, 60.0 / 120}, {2, 36.0 / 120}, {3, 4.0 / 120},
	}
	for _, c := range cases {
		got := HypergeometricPMF(c.k, 4, 3, 10)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PMF(%d) = %v, want %v", c.k, got, c.want)
		}
	}
	// Out-of-support values.
	for _, k := range []int{-1, 4, 5} {
		if HypergeometricPMF(k, 4, 3, 10) != 0 {
			t.Errorf("PMF(%d) != 0", k)
		}
	}
	if HypergeometricPMF(1, 4, 3, 0) != 0 || HypergeometricPMF(1, 11, 3, 10) != 0 {
		t.Error("degenerate parameters not zero")
	}
}

func TestHypergeometricPMFSumsToOne(t *testing.T) {
	for _, c := range []struct{ K, n, N int }{
		{4, 3, 10}, {50, 20, 200}, {500, 100, 2000},
	} {
		sum := 0.0
		for k := 0; k <= c.n; k++ {
			sum += HypergeometricPMF(k, c.K, c.n, c.N)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("K=%d n=%d N=%d: sum = %v", c.K, c.n, c.N, sum)
		}
	}
}

func TestHypergeometricPUpper(t *testing.T) {
	// P[X >= 2] with the urn above = (36+4)/120.
	got := HypergeometricPUpper(2, 4, 3, 10)
	if math.Abs(got-40.0/120) > 1e-12 {
		t.Errorf("PUpper(2) = %v", got)
	}
	if HypergeometricPUpper(0, 4, 3, 10) != 1 {
		t.Error("PUpper(0) != 1")
	}
	if p := HypergeometricPUpper(4, 4, 3, 10); p != 0 {
		t.Errorf("impossible tail = %v", p)
	}
	// Monotone non-increasing in k.
	prev := 1.1
	for k := 0; k <= 20; k++ {
		p := HypergeometricPUpper(k, 50, 20, 200)
		if p > prev+1e-12 {
			t.Fatalf("not monotone at k=%d", k)
		}
		prev = p
	}
	// Strong enrichment is tiny: all 20 drawn genes annotated when only
	// 50/2000 are.
	if p := HypergeometricPUpper(20, 50, 20, 2000); p > 1e-20 {
		t.Errorf("extreme enrichment p = %g", p)
	}
}

func TestLnFactorialStirlingAccuracy(t *testing.T) {
	// Compare the Stirling branch against the exact table boundary.
	exact := lnFactTable[170]
	// Recompute 170! via Stirling (force the branch with n just above).
	approx := lnFactorial(171) - math.Log(171)
	if math.Abs(approx-exact) > 1e-8*exact {
		t.Errorf("Stirling mismatch: %v vs %v", approx, exact)
	}
	if !math.IsNaN(lnFactorial(-1)) {
		t.Error("negative factorial not NaN")
	}
}
