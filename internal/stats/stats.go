// Package stats provides the descriptive statistics the paper's vision
// bridges to the query language (Section 4.1) and the GREAT-style
// region-enrichment significance scores its integrated services imitate
// (Section 4.3, ref [18]).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is a five-number-plus description of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
}

// Describe computes a Summary. An empty input yields the zero Summary.
func Describe(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum, sumSq := 0.0, 0.0
	for _, x := range s {
		sum += x
		sumSq += x * x
	}
	n := float64(len(s))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(s),
		Mean:   mean,
		Std:    math.Sqrt(variance),
		Min:    s[0],
		Q1:     Quantile(s, 0.25),
		Median: Quantile(s, 0.5),
		Q3:     Quantile(s, 0.75),
		Max:    s[len(s)-1],
	}
}

// Quantile returns the q-quantile of a SORTED slice using linear
// interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Pearson computes the Pearson correlation of two equal-length vectors.
// It returns 0 when either vector has zero variance.
func Pearson(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("stats: empty vectors")
	}
	ma, mb := Mean(a), Mean(b)
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0, nil
	}
	return cov / math.Sqrt(va*vb), nil
}

// Jaccard computes |A∩B| / |A∪B| from the two set sizes and the
// intersection size.
func Jaccard(sizeA, sizeB, intersection int) float64 {
	union := sizeA + sizeB - intersection
	if union <= 0 {
		return 0
	}
	return float64(intersection) / float64(union)
}

// BinomialZ is the GREAT-style enrichment score: given n trials with
// per-trial success probability p (the fraction of the genome covered by
// the annotation), the z-score of observing k successes. Large positive
// values mean the observed overlap count is far above chance.
func BinomialZ(k, n int, p float64) float64 {
	if n == 0 || p <= 0 || p >= 1 {
		return 0
	}
	mu := float64(n) * p
	sd := math.Sqrt(float64(n) * p * (1 - p))
	if sd == 0 {
		return 0
	}
	return (float64(k) - mu) / sd
}

// BinomialPUpper approximates the upper-tail binomial p-value
// P[X >= k | n, p] with the normal approximation plus continuity
// correction — the significance indication the paper's custom-query
// services report.
func BinomialPUpper(k, n int, p float64) float64 {
	if n == 0 {
		return 1
	}
	if k <= 0 {
		return 1
	}
	mu := float64(n) * p
	sd := math.Sqrt(float64(n) * p * (1 - p))
	if sd == 0 {
		if float64(k) <= mu {
			return 1
		}
		return 0
	}
	z := (float64(k) - 0.5 - mu) / sd
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// FoldChange returns b/a guarding against division by zero with a small
// pseudo-count, the convention of differential-expression analyses.
func FoldChange(a, b float64) float64 {
	const pseudo = 1e-9
	return (b + pseudo) / (a + pseudo)
}

// PrecisionRecallF1 computes retrieval metrics from true/false
// positive/negative counts.
func PrecisionRecallF1(tp, fp, fn int) (precision, recall, f1 float64) {
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	} else {
		precision = 1
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	} else {
		recall = 1
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}
