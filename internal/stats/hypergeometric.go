package stats

import "math"

// The GREAT service [18] reports both a binomial region-based test and a
// hypergeometric gene-based test; this file adds the latter. All
// computation is in log space so large cohort sizes stay finite.

// lnFactorial returns ln(n!) via the Lanczos-free Stirling series, exact for
// small n through a lookup.
func lnFactorial(n int) float64 {
	if n < 0 {
		return math.NaN()
	}
	if n < len(lnFactTable) {
		return lnFactTable[n]
	}
	x := float64(n)
	// Stirling with the 1/(12n) correction is more than enough for
	// p-value work.
	return x*math.Log(x) - x + 0.5*math.Log(2*math.Pi*x) + 1/(12*x)
}

var lnFactTable = func() []float64 {
	t := make([]float64, 171)
	acc := 0.0
	t[0] = 0
	for i := 1; i < len(t); i++ {
		acc += math.Log(float64(i))
		t[i] = acc
	}
	return t
}()

// lnChoose returns ln(C(n,k)).
func lnChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return lnFactorial(n) - lnFactorial(k) - lnFactorial(n-k)
}

// HypergeometricPMF is P[X = k] for a draw of n from a population of size N
// containing K successes.
func HypergeometricPMF(k, K, n, N int) float64 {
	if N <= 0 || n < 0 || K < 0 || n > N || K > N {
		return 0
	}
	if k < 0 || k > n || k > K || n-k > N-K {
		return 0
	}
	return math.Exp(lnChoose(K, k) + lnChoose(N-K, n-k) - lnChoose(N, n))
}

// HypergeometricPUpper is the upper-tail p-value P[X >= k]: the probability
// of seeing at least k annotated genes among n selected genes when K of the
// N genes carry the annotation — GREAT's gene-based enrichment test.
func HypergeometricPUpper(k, K, n, N int) float64 {
	if k <= 0 {
		return 1
	}
	hi := n
	if K < hi {
		hi = K
	}
	p := 0.0
	for x := k; x <= hi; x++ {
		p += HypergeometricPMF(x, K, n, N)
	}
	if p > 1 {
		p = 1
	}
	return p
}
