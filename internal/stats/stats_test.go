package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDescribe(t *testing.T) {
	s := Describe([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || !approx(s.Std, 2, 1e-9) {
		t.Errorf("summary = %+v", s)
	}
	if s.Min != 2 || s.Max != 9 || !approx(s.Median, 4.5, 1e-9) {
		t.Errorf("order stats = %+v", s)
	}
	if z := Describe(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty = %+v", z)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); !approx(got, c.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile not NaN")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty mean not NaN")
	}
}

func TestPearson(t *testing.T) {
	r, err := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil || !approx(r, 1, 1e-9) {
		t.Errorf("perfect correlation = %v, %v", r, err)
	}
	r, _ = Pearson([]float64{1, 2, 3}, []float64{6, 4, 2})
	if !approx(r, -1, 1e-9) {
		t.Errorf("anti-correlation = %v", r)
	}
	r, _ = Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if r != 0 {
		t.Errorf("zero-variance correlation = %v", r)
	}
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Pearson(nil, nil); err == nil {
		t.Error("empty vectors accepted")
	}
}

func TestPearsonBoundsQuick(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n < 2 {
			return true
		}
		for _, v := range append(a[:n], b[:n]...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		r, err := Pearson(a[:n], b[:n])
		return err == nil && r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestJaccard(t *testing.T) {
	if got := Jaccard(10, 10, 5); !approx(got, 5.0/15.0, 1e-9) {
		t.Errorf("Jaccard = %v", got)
	}
	if Jaccard(0, 0, 0) != 0 {
		t.Error("empty Jaccard not 0")
	}
	if Jaccard(5, 5, 5) != 1 {
		t.Error("identical sets Jaccard != 1")
	}
}

func TestBinomialZ(t *testing.T) {
	// Observing exactly the expectation gives z=0.
	if z := BinomialZ(50, 100, 0.5); !approx(z, 0, 1e-9) {
		t.Errorf("z at mean = %v", z)
	}
	// Two sigma above: n=100, p=0.5, sd=5, k=60 -> z=2.
	if z := BinomialZ(60, 100, 0.5); !approx(z, 2, 1e-9) {
		t.Errorf("z = %v", z)
	}
	if BinomialZ(5, 0, 0.5) != 0 || BinomialZ(5, 10, 0) != 0 || BinomialZ(5, 10, 1) != 0 {
		t.Error("degenerate z not 0")
	}
}

func TestBinomialPUpper(t *testing.T) {
	// Far above expectation: tiny p-value.
	if p := BinomialPUpper(90, 100, 0.1); p > 1e-10 {
		t.Errorf("enriched p = %g", p)
	}
	// At or below expectation: large p-value.
	if p := BinomialPUpper(10, 100, 0.5); p < 0.99 {
		t.Errorf("depleted p = %g", p)
	}
	if BinomialPUpper(0, 100, 0.5) != 1 || BinomialPUpper(5, 0, 0.5) != 1 {
		t.Error("degenerate p not 1")
	}
	// Monotone in k.
	prev := 1.1
	for k := 0; k <= 100; k += 10 {
		p := BinomialPUpper(k, 100, 0.3)
		if p > prev+1e-12 {
			t.Fatalf("p-value not monotone at k=%d: %g > %g", k, p, prev)
		}
		prev = p
	}
}

func TestFoldChange(t *testing.T) {
	if fc := FoldChange(2, 6); !approx(fc, 3, 1e-6) {
		t.Errorf("FoldChange = %v", fc)
	}
	if fc := FoldChange(0, 5); math.IsInf(fc, 0) || math.IsNaN(fc) {
		t.Errorf("zero-denominator FoldChange = %v", fc)
	}
}

func TestPrecisionRecallF1(t *testing.T) {
	p, r, f1 := PrecisionRecallF1(8, 2, 2)
	if !approx(p, 0.8, 1e-9) || !approx(r, 0.8, 1e-9) || !approx(f1, 0.8, 1e-9) {
		t.Errorf("p=%v r=%v f1=%v", p, r, f1)
	}
	p, r, f1 = PrecisionRecallF1(0, 0, 0)
	if p != 1 || r != 1 || f1 != 1 {
		t.Errorf("degenerate: p=%v r=%v f1=%v", p, r, f1)
	}
	p, r, f1 = PrecisionRecallF1(0, 5, 5)
	if p != 0 || r != 0 || f1 != 0 {
		t.Errorf("all wrong: p=%v r=%v f1=%v", p, r, f1)
	}
}
