package genospace

import (
	"math/rand"
	"strings"
	"testing"

	"genogo/internal/engine"
	"genogo/internal/expr"
	"genogo/internal/gdm"
	"genogo/internal/synth"
)

// mapResult builds a genuine MAP result: genes as reference, synthetic
// experiments mapped onto them.
func mapResult(t *testing.T, nGenes, nExps int) *gdm.Dataset {
	t.Helper()
	g := synth.New(21)
	genes := g.Genes(nGenes)
	ref := g.Annotations(genes)
	refProms, err := engine.Select(engine.Config{MetaFirst: true}, ref,
		expr.MetaCmp{Attr: "annType", Op: expr.CmpEq, Value: "promoter"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	exp := gdm.NewDataset("EXPS", synth.PeakSchema)
	for i := 0; i < nExps; i++ {
		exp.MustAdd(g.ChipSeq("exp"+string(rune('a'+i)), 800))
	}
	out, err := engine.Map(engine.Config{MetaFirst: true}, refProms, exp, engine.MapArgs{
		Aggs: []expr.Aggregate{{Output: "count", Func: expr.AggCount}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestFromMapResult(t *testing.T) {
	ds := mapResult(t, 50, 4)
	gs, err := FromMapResult(ds, "count")
	if err != nil {
		t.Fatal(err)
	}
	if gs.NumRegions() != 50 || gs.NumExperiments() != 4 {
		t.Fatalf("dims = %dx%d", gs.NumRegions(), gs.NumExperiments())
	}
	// Spot-check the matrix against the dataset.
	ci, _ := ds.Schema.Index("count")
	for j, s := range ds.Samples {
		for i := range s.Regions {
			if gs.Values[i][j] != float64(s.Regions[i].Values[ci].Int()) {
				t.Fatalf("Values[%d][%d] = %v, dataset says %v", i, j, gs.Values[i][j], s.Regions[i].Values[ci])
			}
		}
	}
	// Region labels come from the name attribute.
	if !strings.HasPrefix(gs.RegionLabel(0), "GENE") {
		t.Errorf("label = %q", gs.RegionLabel(0))
	}
	if len(gs.Row(0)) != 4 {
		t.Errorf("row length = %d", len(gs.Row(0)))
	}
}

func TestFromMapResultErrors(t *testing.T) {
	ds := mapResult(t, 10, 2)
	if _, err := FromMapResult(ds, "zzz"); err == nil {
		t.Error("unknown attribute accepted")
	}
	empty := gdm.NewDataset("E", ds.Schema)
	if _, err := FromMapResult(empty, "count"); err == nil {
		t.Error("empty dataset accepted")
	}
	// Region mismatch between samples.
	broken := ds.Clone()
	broken.Samples[1].Regions = broken.Samples[1].Regions[1:]
	if _, err := FromMapResult(broken, "count"); err == nil {
		t.Error("ragged samples accepted")
	}
	shifted := ds.Clone()
	shifted.Samples[1].Regions[0].Start += 7
	if _, err := FromMapResult(shifted, "count"); err == nil {
		t.Error("misaligned regions accepted")
	}
}

// handSpace builds a small genome space with planted correlations.
func handSpace() *GenomeSpace {
	regions := []gdm.Region{
		gdm.NewRegion("chr1", 0, 10, gdm.StrandNone),
		gdm.NewRegion("chr1", 20, 30, gdm.StrandNone),
		gdm.NewRegion("chr1", 40, 50, gdm.StrandNone),
		gdm.NewRegion("chr2", 0, 10, gdm.StrandNone),
	}
	return &GenomeSpace{
		Regions:     regions,
		RegionNames: []string{"A", "B", "C", "D"},
		Experiments: []string{"e1", "e2", "e3", "e4"},
		Values: [][]float64{
			{1, 2, 3, 4}, // A
			{2, 4, 6, 8}, // B: perfectly correlated with A
			{8, 6, 4, 2}, // C: anti-correlated
			{0, 0, 5, 0}, // D: mostly silent
		},
	}
}

func TestBuildNetworkCorrelation(t *testing.T) {
	gs := handSpace()
	net, err := gs.BuildNetwork(MetricCorrelation, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNodes() != 4 {
		t.Fatalf("nodes = %d", net.NumNodes())
	}
	if net.NumEdges() != 1 {
		t.Fatalf("edges = %v", net.Edges)
	}
	e := net.Edges[0]
	if net.Nodes[e.A] != "A" || net.Nodes[e.B] != "B" || e.Weight < 0.99 {
		t.Errorf("edge = %+v", e)
	}
	if net.Degree(e.A) != 1 || net.Degree(3) != 0 {
		t.Error("degrees wrong")
	}
}

func TestBuildNetworkCoActivity(t *testing.T) {
	gs := handSpace()
	net, err := gs.BuildNetwork(MetricCoActivity, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// A, B, C are non-zero in all 4 experiments: 3 pairwise edges at 1.0.
	if net.NumEdges() != 3 {
		t.Fatalf("edges = %v", net.Edges)
	}
	if _, err := gs.BuildNetwork(EdgeMetric(99), 0); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestTopHubsAndComponents(t *testing.T) {
	gs := handSpace()
	net, err := gs.BuildNetwork(MetricCoActivity, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	hubs := net.TopHubs(2)
	if len(hubs) != 2 || hubs[0].Degree != 2 {
		t.Errorf("hubs = %v", hubs)
	}
	comps := net.ConnectedComponents()
	// {A,B,C} and {D}.
	if len(comps) != 2 || comps[0] != 3 || comps[1] != 1 {
		t.Errorf("components = %v", comps)
	}
	if got := net.TopHubs(100); len(got) != 4 {
		t.Errorf("TopHubs(100) = %d", len(got))
	}
}

func TestRegionLabelFallback(t *testing.T) {
	gs := handSpace()
	gs.RegionNames = nil
	if got := gs.RegionLabel(0); got != "chr1:0-10" {
		t.Errorf("fallback label = %q", got)
	}
}

func TestEndToEndFigure4(t *testing.T) {
	// The full Fig. 4 path: MAP result -> genome space -> gene network.
	ds := mapResult(t, 40, 6)
	gs, err := FromMapResult(ds, "count")
	if err != nil {
		t.Fatal(err)
	}
	net, err := gs.BuildNetwork(MetricCorrelation, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNodes() != 40 {
		t.Fatalf("nodes = %d", net.NumNodes())
	}
	total := 0
	for _, c := range net.ConnectedComponents() {
		total += c
	}
	if total != 40 {
		t.Errorf("component sizes sum to %d", total)
	}
}

func TestNetworkDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	_ = rng
	a := mapResult(t, 30, 5)
	b := mapResult(t, 30, 5)
	ga, _ := FromMapResult(a, "count")
	gb, _ := FromMapResult(b, "count")
	na, _ := ga.BuildNetwork(MetricCorrelation, 0.6)
	nb, _ := gb.BuildNetwork(MetricCorrelation, 0.6)
	if na.NumEdges() != nb.NumEdges() {
		t.Errorf("nondeterministic network: %d vs %d edges", na.NumEdges(), nb.NumEdges())
	}
}
