// Package genospace implements Fig. 4 of the paper: the interpretation of a
// GMQL MAP result as a genome space — a tabular space of regions vs.
// experiments — and its further transformation into a weighted gene network
// whose edge weights aggregate region-to-region relationships across
// experiments.
package genospace

import (
	"fmt"
	"sort"

	"genogo/internal/gdm"
	"genogo/internal/stats"
)

// GenomeSpace is the region × experiment matrix in the middle of Fig. 4.
// Row i corresponds to reference region i (shared by every MAP output
// sample); column j corresponds to experiment sample j; Values[i][j] is the
// MAP aggregate of experiment j over region i.
type GenomeSpace struct {
	Regions     []gdm.Region
	RegionNames []string // from the reference "name"-like attribute, if any
	Experiments []string // output sample IDs
	Values      [][]float64
}

// FromMapResult builds the genome space from a MAP result dataset: every
// sample must carry the same reference region list (the MAP cardinality
// law guarantees this for single-reference-sample MAPs). valueAttr names
// the aggregate attribute to extract (e.g. "count").
func FromMapResult(ds *gdm.Dataset, valueAttr string) (*GenomeSpace, error) {
	if len(ds.Samples) == 0 {
		return nil, fmt.Errorf("genospace: empty dataset")
	}
	vi, ok := ds.Schema.Index(valueAttr)
	if !ok {
		return nil, fmt.Errorf("genospace: no attribute %q in schema %s", valueAttr, ds.Schema)
	}
	nameIdx := -1
	for _, cand := range []string{"name", "gene", "id"} {
		if i, ok := ds.Schema.Index(cand); ok {
			nameIdx = i
			break
		}
	}
	first := ds.Samples[0]
	gs := &GenomeSpace{
		Regions:     make([]gdm.Region, len(first.Regions)),
		Experiments: make([]string, len(ds.Samples)),
		Values:      make([][]float64, len(first.Regions)),
	}
	for i := range first.Regions {
		r := first.Regions[i]
		r.Values = nil
		gs.Regions[i] = r
		gs.Values[i] = make([]float64, len(ds.Samples))
	}
	if nameIdx >= 0 {
		gs.RegionNames = make([]string, len(first.Regions))
		for i := range first.Regions {
			gs.RegionNames[i] = first.Regions[i].Values[nameIdx].String()
		}
	}
	for j, s := range ds.Samples {
		gs.Experiments[j] = s.ID
		if len(s.Regions) != len(first.Regions) {
			return nil, fmt.Errorf("genospace: sample %s has %d regions, sample %s has %d — not a genome space",
				s.ID, len(s.Regions), first.ID, len(first.Regions))
		}
		for i := range s.Regions {
			a, b := s.Regions[i], first.Regions[i]
			if a.Chrom != b.Chrom || a.Start != b.Start || a.Stop != b.Stop {
				return nil, fmt.Errorf("genospace: sample %s region %d is %s:%d-%d, expected %s:%d-%d",
					s.ID, i, a.Chrom, a.Start, a.Stop, b.Chrom, b.Start, b.Stop)
			}
			v, _ := s.Regions[i].Values[vi].AsFloat()
			gs.Values[i][j] = v
		}
	}
	return gs, nil
}

// NumRegions returns the number of rows.
func (gs *GenomeSpace) NumRegions() int { return len(gs.Regions) }

// NumExperiments returns the number of columns.
func (gs *GenomeSpace) NumExperiments() int { return len(gs.Experiments) }

// Row returns the value vector of region i across experiments.
func (gs *GenomeSpace) Row(i int) []float64 { return gs.Values[i] }

// RegionLabel returns a human-readable row label.
func (gs *GenomeSpace) RegionLabel(i int) string {
	if gs.RegionNames != nil && gs.RegionNames[i] != "" && gs.RegionNames[i] != "NULL" {
		return gs.RegionNames[i]
	}
	r := gs.Regions[i]
	return fmt.Sprintf("%s:%d-%d", r.Chrom, r.Start, r.Stop)
}

// EdgeMetric selects how a pair of rows is scored when building a network.
type EdgeMetric uint8

// Edge metrics.
const (
	// MetricCorrelation uses Pearson correlation across experiments — two
	// genes interact when their signals co-vary.
	MetricCorrelation EdgeMetric = iota
	// MetricCoActivity uses the count of experiments where both rows are
	// non-zero, normalized by the experiment count.
	MetricCoActivity
)

// Edge is one weighted interaction of the gene network.
type Edge struct {
	A, B   int // region/row indices, A < B
	Weight float64
}

// Network is the right-hand side of Fig. 4: regions as nodes, arcs weighted
// by aggregating relationships across experiments.
type Network struct {
	Nodes  []string
	Edges  []Edge
	degree []int
}

// BuildNetwork scores all row pairs with the metric and keeps edges with
// weight >= threshold. It is O(regions² × experiments): genome spaces fed
// to it are gene-level (the paper's 10K genes), not base-level.
func (gs *GenomeSpace) BuildNetwork(metric EdgeMetric, threshold float64) (*Network, error) {
	n := gs.NumRegions()
	net := &Network{Nodes: make([]string, n), degree: make([]int, n)}
	for i := 0; i < n; i++ {
		net.Nodes[i] = gs.RegionLabel(i)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var w float64
			switch metric {
			case MetricCorrelation:
				var err error
				w, err = stats.Pearson(gs.Values[i], gs.Values[j])
				if err != nil {
					return nil, fmt.Errorf("genospace: %w", err)
				}
			case MetricCoActivity:
				both := 0
				for e := 0; e < gs.NumExperiments(); e++ {
					if gs.Values[i][e] != 0 && gs.Values[j][e] != 0 {
						both++
					}
				}
				w = float64(both) / float64(gs.NumExperiments())
			default:
				return nil, fmt.Errorf("genospace: unknown metric %d", metric)
			}
			if w >= threshold {
				net.Edges = append(net.Edges, Edge{A: i, B: j, Weight: w})
				net.degree[i]++
				net.degree[j]++
			}
		}
	}
	return net, nil
}

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return len(n.Nodes) }

// NumEdges returns the edge count.
func (n *Network) NumEdges() int { return len(n.Edges) }

// Degree returns the degree of node i.
func (n *Network) Degree(i int) int { return n.degree[i] }

// Hub pairs a node with its degree for TopHubs.
type Hub struct {
	Node   string
	Degree int
}

// TopHubs returns the k highest-degree nodes — the regulatory hot spots a
// biologist reads off the gene network.
func (n *Network) TopHubs(k int) []Hub {
	idx := make([]int, len(n.Nodes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if n.degree[idx[a]] != n.degree[idx[b]] {
			return n.degree[idx[a]] > n.degree[idx[b]]
		}
		return n.Nodes[idx[a]] < n.Nodes[idx[b]]
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]Hub, k)
	for i := 0; i < k; i++ {
		out[i] = Hub{Node: n.Nodes[idx[i]], Degree: n.degree[idx[i]]}
	}
	return out
}

// ConnectedComponents returns the sizes of the network's connected
// components in descending order.
func (n *Network) ConnectedComponents() []int {
	parent := make([]int, len(n.Nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range n.Edges {
		ra, rb := find(e.A), find(e.B)
		if ra != rb {
			parent[ra] = rb
		}
	}
	sizes := make(map[int]int)
	for i := range parent {
		sizes[find(i)]++
	}
	out := make([]int, 0, len(sizes))
	for _, s := range sizes {
		out = append(out, s)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
