package genospace

import (
	"math"
	"testing"

	"genogo/internal/gdm"
)

func labeledDataset() *gdm.Dataset {
	schema := gdm.MustSchema(gdm.Field{Name: "count", Type: gdm.KindInt})
	ds := gdm.NewDataset("SPACE", schema)
	mk := func(id, karyotype string, counts ...int64) {
		s := gdm.NewSample(id)
		s.Meta.Add("right.karyotype", karyotype)
		for i, c := range counts {
			s.AddRegion(gdm.NewRegion("chr1", int64(i)*100, int64(i)*100+50, gdm.StrandNone, gdm.Int(c)))
		}
		ds.MustAdd(s)
	}
	// Region 0: strongly phenotype-linked (high in cancer). Region 1: flat.
	// Region 2: anti-linked.
	mk("c1", "cancer", 10, 5, 0)
	mk("c2", "cancer", 9, 5, 1)
	mk("n1", "normal", 1, 5, 9)
	mk("n2", "normal", 0, 5, 10)
	return ds
}

func TestPhenotypeLabels(t *testing.T) {
	ds := labeledDataset()
	labels := PhenotypeLabels(ds, "right.karyotype", "cancer")
	want := []bool{true, true, false, false}
	for i := range want {
		if labels[i] != want[i] {
			t.Errorf("labels[%d] = %v", i, labels[i])
		}
	}
	none := PhenotypeLabels(ds, "missing", "x")
	for _, l := range none {
		if l {
			t.Error("missing attribute labeled true")
		}
	}
}

func TestPhenotypeAssociation(t *testing.T) {
	ds := labeledDataset()
	gs, err := FromMapResult(ds, "count")
	if err != nil {
		t.Fatal(err)
	}
	labels := PhenotypeLabels(ds, "right.karyotype", "cancer")
	assoc, err := gs.PhenotypeAssociation(labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(assoc) != 3 {
		t.Fatalf("associations = %d", len(assoc))
	}
	// Strongest associations first; the flat region must rank last.
	if assoc[2].PointBiserial != 0 {
		t.Errorf("flat region r = %v", assoc[2].PointBiserial)
	}
	// The linked region has r near +1, the anti-linked near -1.
	var pos, neg bool
	for _, a := range assoc[:2] {
		if a.PointBiserial > 0.9 {
			pos = true
			if a.MeanCase <= a.MeanControl {
				t.Errorf("positive association with means %v <= %v", a.MeanCase, a.MeanControl)
			}
		}
		if a.PointBiserial < -0.9 {
			neg = true
		}
	}
	if !pos || !neg {
		t.Errorf("top associations = %+v", assoc[:2])
	}
	for _, a := range assoc {
		if math.Abs(a.PointBiserial) > 1.0000001 {
			t.Errorf("r out of range: %v", a.PointBiserial)
		}
	}
}

func TestPhenotypeAssociationErrors(t *testing.T) {
	ds := labeledDataset()
	gs, err := FromMapResult(ds, "count")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gs.PhenotypeAssociation([]bool{true}); err == nil {
		t.Error("label length mismatch accepted")
	}
	if _, err := gs.PhenotypeAssociation([]bool{true, true, true, true}); err == nil {
		t.Error("all-case labels accepted")
	}
	if _, err := gs.PhenotypeAssociation([]bool{false, false, false, false}); err == nil {
		t.Error("all-control labels accepted")
	}
}
