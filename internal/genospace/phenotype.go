package genospace

import (
	"fmt"
	"math"
	"sort"

	"genogo/internal/gdm"
)

// Section 4.1 of the paper: "several data mining and computational
// intelligence approaches ... can be applied to evaluate relationships
// among genomic data, and between them and biological or clinical features
// of experimental samples expressed in their metadata, i.e., for
// genotype-phenotype correlation analysis". This file provides that bridge:
// phenotype labels are read from the metadata of the MAP result's samples,
// and each genome-space row (region/gene) is scored for association with
// the phenotype.

// PhenotypeLabels extracts a boolean phenotype per experiment column from a
// metadata attribute of the MAP result samples (e.g. attr "right.karyotype",
// value "cancer"). Samples missing the attribute get false.
func PhenotypeLabels(ds *gdm.Dataset, attr, value string) []bool {
	out := make([]bool, len(ds.Samples))
	for i, s := range ds.Samples {
		out[i] = s.Meta.Matches(attr, value)
	}
	return out
}

// Association is one region's phenotype-association score.
type Association struct {
	Region string
	// PointBiserial is the point-biserial correlation between the region's
	// value vector and the phenotype labels, in [-1, 1].
	PointBiserial float64
	// MeanCase and MeanControl are the group means behind the score.
	MeanCase, MeanControl float64
}

// PhenotypeAssociation scores every genome-space row against the labels
// using the point-biserial correlation (the Pearson correlation of a
// continuous variable with a binary one) and returns the rows ranked by
// absolute association, strongest first.
func (gs *GenomeSpace) PhenotypeAssociation(labels []bool) ([]Association, error) {
	if len(labels) != gs.NumExperiments() {
		return nil, fmt.Errorf("genospace: %d labels for %d experiments", len(labels), gs.NumExperiments())
	}
	nCase := 0
	for _, l := range labels {
		if l {
			nCase++
		}
	}
	nCtrl := len(labels) - nCase
	if nCase == 0 || nCtrl == 0 {
		return nil, fmt.Errorf("genospace: phenotype needs both cases (%d) and controls (%d)", nCase, nCtrl)
	}
	out := make([]Association, gs.NumRegions())
	for i := 0; i < gs.NumRegions(); i++ {
		row := gs.Values[i]
		var sumCase, sumCtrl, sum, sumSq float64
		for j, v := range row {
			sum += v
			sumSq += v * v
			if labels[j] {
				sumCase += v
			} else {
				sumCtrl += v
			}
		}
		n := float64(len(row))
		meanCase := sumCase / float64(nCase)
		meanCtrl := sumCtrl / float64(nCtrl)
		mean := sum / n
		variance := sumSq/n - mean*mean
		r := 0.0
		if variance > 0 {
			sd := math.Sqrt(variance)
			r = (meanCase - meanCtrl) / sd *
				math.Sqrt(float64(nCase)*float64(nCtrl)/(n*n))
		}
		out[i] = Association{
			Region:        gs.RegionLabel(i),
			PointBiserial: r,
			MeanCase:      meanCase,
			MeanControl:   meanCtrl,
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		return math.Abs(out[a].PointBiserial) > math.Abs(out[b].PointBiserial)
	})
	return out, nil
}
