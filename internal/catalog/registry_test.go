package catalog

import (
	"testing"
)

func TestRepoRecordManifestStats(t *testing.T) {
	r := NewRegistry()
	ds := testDataset(t, "beds", testSample("s", nil, [3]any{"chr1", 0, 100}))
	st := Compute(ds)
	st.Digest = ds.ContentDigest()
	r.Record(Info{Name: "beds", Digest: st.Digest, Source: SourceManifest, Stats: st, Integrity: "verified"})

	before := LazyScans()
	got, ok := r.Stats("beds")
	if !ok || got != st {
		t.Fatalf("Stats = %v ok=%v, want adopted manifest block", got, ok)
	}
	if LazyScans() != before {
		t.Fatal("usable manifest block must not trigger a scan")
	}
	rows := r.Snapshot()
	if len(rows) != 1 || rows[0].Name != "beds" || rows[0].Regions != 1 || rows[0].Stale {
		t.Fatalf("Snapshot = %+v", rows)
	}
}

func TestRepoLazyScanExactlyOnce(t *testing.T) {
	r := NewRegistry()
	ds := testDataset(t, "legacy", testSample("s", nil, [3]any{"chr1", 5, 50}))
	r.Record(Info{Name: "legacy", Digest: ds.ContentDigest(), Source: SourceScan, Dataset: ds})

	before := LazyScans()
	st, ok := r.Stats("legacy")
	if !ok || st == nil {
		t.Fatal("lazy scan produced no stats")
	}
	if LazyScans() != before+1 {
		t.Fatalf("LazyScans = %d, want %d", LazyScans(), before+1)
	}
	if st.Digest != ds.ContentDigest() {
		t.Fatalf("scan digest = %q", st.Digest)
	}
	// Second access, and the list view, must reuse the cached scan.
	if st2, _ := r.Stats("legacy"); st2 != st {
		t.Fatal("second Stats call rescanned")
	}
	r.Snapshot()
	if LazyScans() != before+1 {
		t.Fatalf("LazyScans after reuse = %d, want %d", LazyScans(), before+1)
	}
}

func TestRepoStaleOnDigestChange(t *testing.T) {
	r := NewRegistry()
	ds := testDataset(t, "d", testSample("s", nil, [3]any{"chr1", 0, 10}))
	r.Record(Info{Name: "d", Digest: ds.ContentDigest(), Source: SourceScan, Dataset: ds})
	if _, ok := r.Stats("d"); !ok {
		t.Fatal("first scan failed")
	}

	// The dataset grows: same name, new digest, no usable block yet.
	ds2 := testDataset(t, "d",
		testSample("s", nil, [3]any{"chr1", 0, 10}),
		testSample("s2", nil, [3]any{"chr2", 0, 10}))
	r.Record(Info{Name: "d", Digest: ds2.ContentDigest(), Source: SourceScan, Dataset: ds2})

	rows := r.Snapshot() // forces the rescan
	if len(rows) != 1 {
		t.Fatalf("Snapshot = %+v", rows)
	}
	if rows[0].Stale {
		t.Fatalf("row still stale after rescan: %+v", rows[0])
	}
	if rows[0].Samples != 2 {
		t.Fatalf("rescan missed the new sample: %+v", rows[0])
	}
	if rows[0].Digest != ds2.ContentDigest() {
		t.Fatalf("digest = %q, want new digest", rows[0].Digest)
	}
}

func TestRepoStaleManifestBlockRescans(t *testing.T) {
	r := NewRegistry()
	ds := testDataset(t, "d", testSample("s", nil, [3]any{"chr1", 0, 10}))
	stale := Compute(ds)
	stale.Digest = "sha256:someone-elses-digest"
	r.Record(Info{Name: "d", Digest: ds.ContentDigest(), Source: SourceManifest,
		Stats: stale, Dataset: ds})

	before := LazyScans()
	st, ok := r.Stats("d")
	if !ok || st == stale {
		t.Fatal("stale manifest block adopted as-is")
	}
	if LazyScans() != before+1 {
		t.Fatal("stale block must trigger exactly one rescan")
	}
	if st.Digest != ds.ContentDigest() {
		t.Fatalf("rescan digest = %q", st.Digest)
	}
}

func TestRepoFutureVersionRescans(t *testing.T) {
	r := NewRegistry()
	ds := testDataset(t, "d", testSample("s", nil, [3]any{"chr1", 0, 10}))
	future := Compute(ds)
	future.Version = StatsVersion + 1
	future.Digest = ds.ContentDigest()
	r.Record(Info{Name: "d", Digest: ds.ContentDigest(), Source: SourceManifest,
		Stats: future, Dataset: ds})
	st, ok := r.Stats("d")
	if !ok || st == future {
		t.Fatal("future-version block must not be adopted")
	}
	if st.Version != StatsVersion {
		t.Fatalf("rescan version = %d", st.Version)
	}
}

func TestRepoDetail(t *testing.T) {
	r := NewRegistry()
	ds := testDataset(t, "d",
		testSample("a", nil, [3]any{"chr1", 0, 100}, [3]any{"chr2", 10, 30}))
	r.Record(Info{Name: "d", Source: SourceMemory, Dataset: ds})
	d, ok := r.Detail("d")
	if !ok {
		t.Fatal("Detail missing")
	}
	if len(d.Chroms) != 2 || d.Chroms[0].Chrom != "chr1" {
		t.Fatalf("Detail chroms = %+v", d.Chroms)
	}
	if d.Stats == nil || len(d.Stats.Samples) != 1 {
		t.Fatalf("Detail stats = %+v", d.Stats)
	}
	if _, ok := r.Detail("nope"); ok {
		t.Fatal("unknown dataset reported present")
	}
}
