package catalog

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newConsoleServer(t *testing.T) (*httptest.Server, *Registry) {
	t.Helper()
	r := NewRegistry()
	ds := testDataset(t, "beds",
		testSample("s1", map[string]string{"cell": "HeLa"},
			[3]any{"chr1", 0, 100}, [3]any{"chr2", 50, 500}))
	r.Record(Info{Name: "beds", Digest: ds.ContentDigest(), Source: SourceMemory,
		Integrity: "verified", Dataset: ds})
	mux := http.NewServeMux()
	MountRepo(mux, r)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, r
}

func TestRepoConsoleList(t *testing.T) {
	srv, _ := newConsoleServer(t)
	resp, err := http.Get(srv.URL + "/debug/repo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{"beds", "/debug/repo/beds", "verified"} {
		if !strings.Contains(body, want) {
			t.Fatalf("list HTML missing %q:\n%s", want, body)
		}
	}
}

func TestRepoConsoleListJSON(t *testing.T) {
	srv, _ := newConsoleServer(t)
	resp, err := http.Get(srv.URL + "/debug/repo?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var doc struct {
		Datasets []DatasetSummary `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Datasets) != 1 || doc.Datasets[0].Name != "beds" || doc.Datasets[0].Regions != 2 {
		t.Fatalf("JSON list = %+v", doc.Datasets)
	}
}

func TestRepoConsoleDetail(t *testing.T) {
	srv, _ := newConsoleServer(t)
	resp, err := http.Get(srv.URL + "/debug/repo/beds")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{"chr1", "chr2", "class=bar", "s1"} {
		if !strings.Contains(body, want) {
			t.Fatalf("detail HTML missing %q:\n%s", want, body)
		}
	}

	resp2, err := http.Get(srv.URL + "/debug/repo/beds?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var d DatasetDetail
	if err := json.NewDecoder(resp2.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if len(d.Chroms) != 2 || d.Chroms[1].MaxStop != 500 {
		t.Fatalf("JSON detail = %+v", d.Chroms)
	}
}

func TestRepoConsoleErrors(t *testing.T) {
	srv, _ := newConsoleServer(t)
	resp, err := http.Get(srv.URL + "/debug/repo/unknown")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown dataset: status %d", resp.StatusCode)
	}
	resp2, err := http.Post(srv.URL+"/debug/repo", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST: status %d, want 405", resp2.StatusCode)
	}
}
